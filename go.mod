module cloudfog

go 1.22
