// Command cloudfogsim runs the CloudFog reproduction experiments and
// prints each paper figure's series as a text table.
//
// Usage:
//
//	cloudfogsim -exp fig4a [-scale quick|full] [-profile peersim|planetlab] [-seed N]
//	cloudfogsim -exp all
//	cloudfogsim -list
//
// The simulator's evaluation loop runs on a worker pool by default
// (-parallel auto-sizes it by GOMAXPROCS); -parallel=0 forces the legacy
// sequential ordering for bisection. Seeded outputs are bit-identical
// either way. -cpuprofile/-memprofile/-trace capture runtime profiles of
// an experiment run for perf work (see README).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strings"

	"cloudfog/internal/experiments"
)

type runner func(experiments.Options) ([]*experiments.Figure, error)

func single(f func(experiments.Options) (*experiments.Figure, error)) runner {
	return func(o experiments.Options) ([]*experiments.Figure, error) {
		fig, err := f(o)
		if err != nil {
			return nil, err
		}
		return []*experiments.Figure{fig}, nil
	}
}

func registry() map[string]runner {
	return map[string]runner{
		"table2": func(o experiments.Options) ([]*experiments.Figure, error) {
			return []*experiments.Figure{experiments.Table2()}, nil
		},
		"fig4a": single(experiments.Fig4a),
		"fig4b": single(experiments.Fig4b),
		"fig5a": single(experiments.Fig5a),
		"fig5b": single(experiments.Fig5b),
		"fig6-8": func(o experiments.Options) ([]*experiments.Figure, error) {
			b, l, c, err := experiments.SystemComparison(o)
			if err != nil {
				return nil, err
			}
			return []*experiments.Figure{b, l, c}, nil
		},
		"fig6":  single(experiments.Fig6),
		"fig7":  single(experiments.Fig7),
		"fig8":  single(experiments.Fig8),
		"fig9a": single(experiments.Fig9a),
		"fig9b": single(experiments.Fig9b),
		"fig10": single(experiments.Fig10),
		"fig11": single(experiments.Fig11),
		"fig12": single(experiments.Fig12),
		"fig13-15": func(o experiments.Options) ([]*experiments.Figure, error) {
			b, l, c, err := experiments.ProvisioningComparison(o)
			if err != nil {
				return nil, err
			}
			return []*experiments.Figure{b, l, c}, nil
		},
		"fig13":                 single(experiments.Fig13),
		"fig14":                 single(experiments.Fig14),
		"fig15":                 single(experiments.Fig15),
		"fig16a":                single(experiments.Fig16a),
		"fig16b":                single(experiments.Fig16b),
		"ablation-assignment":   single(experiments.AblationAssignmentRefinement),
		"ablation-reputation":   single(experiments.AblationReputationScope),
		"ablation-provisioning": single(experiments.AblationProvisioningSelection),
		"ablation-debounce":     single(experiments.AblationAdaptationDebounce),
		"extension-deployment":  single(experiments.ExtensionOptimalDeployment),
	}
}

// allOrder is the run order for -exp all, avoiding the duplicate-sweep
// aliases (fig6/7/8 and fig13/14/15 are covered by the combined runners).
var allOrder = []string{
	"table2", "fig4a", "fig4b", "fig5a", "fig5b", "fig6-8",
	"fig9a", "fig9b", "fig10", "fig11", "fig12", "fig13-15",
	"fig16a", "fig16b",
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cloudfogsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cloudfogsim", flag.ContinueOnError)
	exp := fs.String("exp", "", "experiment to run (see -list), or 'all'")
	output := fs.String("o", "table", "output format: table, json, or csv")
	scale := fs.String("scale", "quick", "experiment scale: quick or full")
	profile := fs.String("profile", "peersim", "environment profile: peersim or planetlab")
	seed := fs.Uint64("seed", 1, "random seed")
	list := fs.Bool("list", false, "list available experiments")
	parallel := fs.Int("parallel", -1, "eval worker pool size: -1 auto (GOMAXPROCS), 0 legacy sequential ordering, N fixed")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write an end-of-run heap profile to this file")
	tracefile := fs.String("trace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *tracefile != "" {
		f, err := os.Create(*tracefile)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer trace.Stop()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cloudfogsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cloudfogsim: memprofile:", err)
			}
		}()
	}

	reg := registry()
	if *list {
		names := make([]string, 0, len(reg))
		for name := range reg {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("available experiments:", strings.Join(names, " "))
		return nil
	}
	if *exp == "" {
		return fmt.Errorf("missing -exp (use -list to see experiments)")
	}

	opts := experiments.Options{Seed: *seed}
	// -parallel speaks the bisection dialect (0 = old sequential ordering,
	// the ISSUE/ROADMAP convention); core.Config.Workers speaks Go's
	// (negative = sequential, 0 = GOMAXPROCS). Translate.
	switch {
	case *parallel < 0:
		opts.Workers = 0 // auto-size by GOMAXPROCS
	case *parallel == 0:
		opts.Workers = -1 // legacy sequential ordering
	default:
		opts.Workers = *parallel
	}
	switch *scale {
	case "quick":
		opts.Scale = experiments.ScaleQuick
	case "full":
		opts.Scale = experiments.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	switch *profile {
	case "peersim":
		opts.Profile = experiments.ProfilePeerSim
	case "planetlab":
		opts.Profile = experiments.ProfilePlanetLab
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}

	names := []string{*exp}
	if *exp == "all" {
		names = allOrder
	}
	for _, name := range names {
		r, ok := reg[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", name)
		}
		figs, err := r(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for _, fig := range figs {
			switch *output {
			case "json":
				enc := json.NewEncoder(os.Stdout)
				if err := enc.Encode(fig); err != nil {
					return fmt.Errorf("%s: encode: %w", name, err)
				}
			case "csv":
				fig.RenderCSV(os.Stdout)
				fmt.Println()
			case "table":
				fig.Render(os.Stdout)
				fmt.Println()
			default:
				return fmt.Errorf("unknown output format %q", *output)
			}
		}
	}
	if *exp == "all" || *exp == "fig16a" || *exp == "fig16b" {
		fmt.Println(experiments.AnnualFleetCost())
	}
	return nil
}
