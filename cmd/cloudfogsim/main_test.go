package main

import (
	"testing"
)

func TestRegistryCoversAllOrder(t *testing.T) {
	reg := registry()
	for _, name := range allOrder {
		if _, ok := reg[name]; !ok {
			t.Errorf("allOrder entry %q missing from registry", name)
		}
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingExperiment(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -exp accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig999"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadScaleAndProfile(t *testing.T) {
	if err := run([]string{"-exp", "table2", "-scale", "huge"}); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-exp", "table2", "-profile", "mars"}); err == nil {
		t.Error("bad profile accepted")
	}
}

func TestRunCheapExperiments(t *testing.T) {
	// table2 and fig16a/b are analytic: they must run instantly.
	for _, exp := range []string{"table2", "fig16a", "fig16b"} {
		if err := run([]string{"-exp", exp}); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestRunCoverageExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage sweep takes a few seconds")
	}
	if err := run([]string{"-exp", "fig4a", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOutputFormats(t *testing.T) {
	if err := run([]string{"-exp", "table2", "-o", "json"}); err != nil {
		t.Error(err)
	}
	if err := run([]string{"-exp", "table2", "-o", "csv"}); err != nil {
		t.Error(err)
	}
	if err := run([]string{"-exp", "table2", "-o", "yaml"}); err == nil {
		t.Error("unknown output format accepted")
	}
}
