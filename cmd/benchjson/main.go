// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a stable JSON document, so benchmark runs can be committed, diffed,
// and uploaded as CI artifacts. It keeps only what regression tracking
// needs — name, iterations, ns/op, B/op, allocs/op — plus the run's
// environment lines (goos/goarch/cpu/pkg).
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./internal/... | benchjson -o BENCH.json
//
// Lines that are not benchmark results are ignored, so the tool can sit at
// the end of any `go test` pipeline. It exits non-zero when the input
// contains no benchmark lines at all — a guard against silently committing
// an empty file when the bench regex matched nothing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in (from the nearest
	// preceding "pkg:" line; empty if none was seen).
	Package string `json:"package,omitempty"`
	// Iterations is the b.N the timing was measured over.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is heap bytes allocated per operation (-benchmem).
	BytesPerOp float64 `json:"bytes_per_op"`
	// AllocsPerOp is heap allocations per operation (-benchmem).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds any custom b.ReportMetric pairs the benchmark emitted
	// (e.g. "fanoutB/tick"), keyed by their unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted JSON root.
type Document struct {
	// Goos, Goarch, CPU describe the machine the run happened on.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks are the parsed results in input order.
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc := Document{Benchmarks: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		r, ok := parseBenchLine(line, pkg)
		if ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("benchjson: read stdin: %v", err)
	}
	if len(doc.Benchmarks) == 0 {
		fatalf("benchjson: no benchmark lines found in input")
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("benchjson: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("benchjson: %v", err)
	}
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkAppendFrame-8   824061   1457 ns/op   0 B/op   0 allocs/op
//
// reporting ok=false for anything that does not look like one.
func parseBenchLine(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, perr := strconv.Atoi(name[i+1:]); perr == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	r := Result{Name: name, Package: pkg, Iterations: iters}
	sawNs := false
	// The rest of the line is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, verr := strconv.ParseFloat(fields[i], 64)
		if verr != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			sawNs = true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			// Custom b.ReportMetric units ride along verbatim. Guard
			// against non-unit trailing tokens: a unit always contains
			// a '/' (per testing's value-unit pair convention).
			if strings.ContainsRune(unit, '/') {
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
			}
		}
	}
	return r, sawNs
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
