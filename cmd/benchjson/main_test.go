package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkAppendFrame-8   824061   1457 ns/op   32 B/op   2 allocs/op", "p")
	if !ok {
		t.Fatal("standard line rejected")
	}
	if r.Name != "AppendFrame" || r.Iterations != 824061 || r.NsPerOp != 1457 ||
		r.BytesPerOp != 32 || r.AllocsPerOp != 2 || r.Package != "p" {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics != nil {
		t.Fatalf("standard units leaked into Metrics: %v", r.Metrics)
	}
}

func TestParseBenchLineCustomMetric(t *testing.T) {
	line := "BenchmarkAoITickFanout/world=40k/visible=512-8   500   1007154 ns/op   93165 fanoutB/tick   0 B/op   0 allocs/op"
	r, ok := parseBenchLine(line, "")
	if !ok {
		t.Fatal("metric line rejected")
	}
	if r.Name != "AoITickFanout/world=40k/visible=512" {
		t.Fatalf("name = %q", r.Name)
	}
	if got := r.Metrics["fanoutB/tick"]; got != 93165 {
		t.Fatalf("fanoutB/tick = %v, want 93165", got)
	}
}

func TestParseBenchLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"ok  \tcloudfog/internal/fognet\t7.283s",
		"PASS",
		"Benchmark only-name-no-iters",
		"BenchmarkX notanumber 12 ns/op",
	} {
		if _, ok := parseBenchLine(line, ""); ok {
			t.Fatalf("accepted %q", line)
		}
	}
}
