// Command cloudsrv runs the CloudFog cloud tier: the authoritative virtual
// world. It admits players, collects their inputs, ticks the world, and
// streams compact update batches to registered supernodes (fogsrv).
//
//	cloudsrv -addr 127.0.0.1:7000 -npcs 8
//
// With -standby it instead runs a warm standby that follows the primary's
// checkpoint/log stream and promotes itself (epoch+1, same listen
// address) when the primary goes silent:
//
//	cloudsrv -addr 127.0.0.1:7001 -standby 127.0.0.1:7000
//
// On SIGTERM/SIGINT a primary shuts down gracefully: it flushes a final
// checkpoint to an attached standby, says goodbye to supernodes and
// players through the normal send queues, and drains them before closing.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cloudfog/internal/fognet"
	"cloudfog/internal/selection"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7000", "listen address")
	tick := flag.Duration("tick", fognet.DefaultTickInterval, "world tick interval")
	npcs := flag.Int("npcs", 8, "NPCs to seed the world with")
	hbInterval := flag.Duration("hb-interval", fognet.DefaultHeartbeatInterval, "supernode heartbeat interval")
	hbMisses := flag.Int("hb-misses", fognet.DefaultHeartbeatMisses, "missed heartbeats before a supernode is evicted")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats print interval (0 = silent)")
	selPolicy := flag.String("selection", "reputation", "candidate-ladder ranking policy: random | reputation | global")
	seed := flag.Uint64("seed", 1, "ladder tie-break shuffle seed")
	ckptEvery := flag.Int("checkpoint-every", fognet.DefaultCheckpointEvery, "ticks between checkpoints streamed to the standby")
	standby := flag.String("standby", "", "run as warm standby following this primary address")
	promoteAfter := flag.Duration("promote-after", fognet.DefaultPromoteAfter, "standby: silence on the primary's stream before promotion")
	flag.Parse()

	policy, err := selection.ParsePolicy(*selPolicy)
	if err != nil {
		log.Fatal(err)
	}
	cfg := fognet.CloudConfig{
		Addr:              *addr,
		TickInterval:      *tick,
		NPCs:              *npcs,
		HeartbeatInterval: *hbInterval,
		HeartbeatMisses:   *hbMisses,
		SelectionPolicy:   policy,
		Seed:              *seed,
		CheckpointEvery:   *ckptEvery,
	}
	if *standby != "" {
		err = runStandby(*addr, *standby, *promoteAfter, *statsEvery, cfg)
	} else {
		err = runPrimary(cfg, *statsEvery)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func runPrimary(cfg fognet.CloudConfig, statsEvery time.Duration) error {
	cloud, err := fognet.NewCloudServer(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("cloudsrv: listening on %s (tick %v, %d NPCs, selection %v)\n",
		cloud.Addr(), cfg.TickInterval, cfg.NPCs, cfg.SelectionPolicy)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var tickCh <-chan time.Time
	if statsEvery > 0 {
		ticker := time.NewTicker(statsEvery)
		defer ticker.Stop()
		tickCh = ticker.C
	}
	for {
		select {
		case <-sig:
			fmt.Println("cloudsrv: draining (final checkpoint, goodbyes) ...")
			cloud.Shutdown()
			fmt.Println("cloudsrv: shut down")
			return nil
		case <-tickCh:
			printCloudStats(cloud)
		}
	}
}

func runStandby(addr, primary string, promoteAfter, statsEvery time.Duration, cfg fognet.CloudConfig) error {
	sb, err := fognet.NewStandby(fognet.StandbyConfig{
		Addr:         addr,
		PrimaryAddr:  primary,
		PromoteAfter: promoteAfter,
		Seed:         cfg.Seed,
		Cloud:        cfg,
	})
	if err != nil {
		return err
	}
	fmt.Printf("cloudsrv: standby on %s following %s (promote after %v of silence)\n",
		sb.Addr(), primary, promoteAfter)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var tickCh <-chan time.Time
	if statsEvery > 0 {
		ticker := time.NewTicker(statsEvery)
		defer ticker.Stop()
		tickCh = ticker.C
	}
	promoted := false
	for {
		select {
		case <-sig:
			if srv := sb.Promoted(); srv != nil {
				fmt.Println("cloudsrv: draining promoted server ...")
				srv.Shutdown()
			}
			sb.Close()
			fmt.Println("cloudsrv: standby shut down")
			return nil
		case <-tickCh:
			if srv := sb.Promoted(); srv != nil {
				if !promoted {
					promoted = true
					s := srv.Stats()
					fmt.Printf("cloudsrv: PROMOTED — serving epoch %d from tick %d on %s\n",
						s.Epoch, s.Tick, sb.Addr())
				}
				printCloudStats(srv)
				continue
			}
			s := sb.Stats()
			fmt.Printf("cloudsrv: standby epoch=%d tick=%d checkpoints=%d log=%d attaches=%d\n",
				s.Epoch, s.LastTick, s.Checkpoints, s.LogEntries, s.Attaches)
		}
	}
}

func printCloudStats(cloud *fognet.CloudServer) {
	s := cloud.Stats()
	fmt.Printf("cloudsrv: epoch=%d ticks=%d supernodes=%d aoi=%d interest=%d keycells=%d players=%d entities=%d update=%0.1f kbit ckpts=%d standby=%v evictions=%d departures=%d qdrops=%d qoe=%d\n",
		s.Epoch, s.Ticks, s.Supernodes, s.AoISupernodes, s.InterestUpdates, s.KeyframeCells,
		s.Players, s.Entities, float64(s.UpdateBits)/1000,
		s.Resilience.Checkpoints, s.StandbyAttached,
		s.Resilience.Evictions, s.Resilience.Departures, s.Resilience.SendQueueDrops,
		s.Resilience.QoEReports)
}
