// Command cloudsrv runs the CloudFog cloud tier: the authoritative virtual
// world. It admits players, collects their inputs, ticks the world, and
// streams compact update batches to registered supernodes (fogsrv).
//
//	cloudsrv -addr 127.0.0.1:7000 -npcs 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cloudfog/internal/fognet"
	"cloudfog/internal/selection"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7000", "listen address")
	tick := flag.Duration("tick", fognet.DefaultTickInterval, "world tick interval")
	npcs := flag.Int("npcs", 8, "NPCs to seed the world with")
	hbInterval := flag.Duration("hb-interval", fognet.DefaultHeartbeatInterval, "supernode heartbeat interval")
	hbMisses := flag.Int("hb-misses", fognet.DefaultHeartbeatMisses, "missed heartbeats before a supernode is evicted")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats print interval (0 = silent)")
	selPolicy := flag.String("selection", "reputation", "candidate-ladder ranking policy: random | reputation | global")
	seed := flag.Uint64("seed", 1, "ladder tie-break shuffle seed")
	flag.Parse()

	policy, err := selection.ParsePolicy(*selPolicy)
	if err != nil {
		log.Fatal(err)
	}
	if err := run(*addr, *tick, *npcs, *hbInterval, *hbMisses, *statsEvery, policy, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, tick time.Duration, npcs int, hbInterval time.Duration, hbMisses int, statsEvery time.Duration, policy selection.Policy, seed uint64) error {
	cloud, err := fognet.NewCloudServer(fognet.CloudConfig{
		Addr:              addr,
		TickInterval:      tick,
		NPCs:              npcs,
		HeartbeatInterval: hbInterval,
		HeartbeatMisses:   hbMisses,
		SelectionPolicy:   policy,
		Seed:              seed,
	})
	if err != nil {
		return err
	}
	defer cloud.Close()
	fmt.Printf("cloudsrv: listening on %s (tick %v, %d NPCs, selection %v)\n", cloud.Addr(), tick, npcs, policy)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var ticker *time.Ticker
	var tickCh <-chan time.Time
	if statsEvery > 0 {
		ticker = time.NewTicker(statsEvery)
		defer ticker.Stop()
		tickCh = ticker.C
	}
	for {
		select {
		case <-sig:
			fmt.Println("cloudsrv: shutting down")
			return nil
		case <-tickCh:
			s := cloud.Stats()
			fmt.Printf("cloudsrv: ticks=%d supernodes=%d players=%d entities=%d update=%0.1f kbit evictions=%d departures=%d qdrops=%d qoe=%d\n",
				s.Ticks, s.Supernodes, s.Players, s.Entities, float64(s.UpdateBits)/1000,
				s.Resilience.Evictions, s.Resilience.Departures, s.Resilience.SendQueueDrops,
				s.Resilience.QoEReports)
		}
	}
}
