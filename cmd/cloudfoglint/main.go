// Command cloudfoglint is the repo's invariant checker: a multichecker
// over the custom analyzers registered in internal/analysis/checkers —
// the five syntactic ones (pooledbuf, conndeadline, guardedby,
// deterministic, noretain) plus the fact-driven interprocedural ones
// (phasepure, allocfree, epochstamp). It runs two ways:
//
// Standalone, over package patterns (the make lint entry point) — this
// is the authoritative mode: facts span the whole module, and unused
// //lint:ignore directives are reported:
//
//	go run ./cmd/cloudfoglint ./...
//	go run ./cmd/cloudfoglint -sarif lint.sarif ./...
//	go run ./cmd/cloudfoglint -baseline lint-baseline.json ./...
//	go run ./cmd/cloudfoglint -write-baseline lint-baseline.json ./...
//
// As a vet tool, one compiled package at a time, driven by the go
// command's JSON cfg protocol (facts are package-local here, so the
// interprocedural analyzers see only intra-package edges):
//
//	go vet -vettool=$(pwd)/bin/cloudfoglint ./...
//
// Both modes print file:line:col: message (analyzer) diagnostics and
// exit non-zero when any survive. Against a baseline, new findings fail
// and so do stale baseline entries — the baseline only shrinks.
// Suppress a diagnostic by annotating the offending line (or the line
// above) with
//
//	//lint:ignore <analyzer> <reason>
//
// See DESIGN.md §11 for the original invariants and the suppression
// policy, §16 for the fact engine, directives, and baseline workflow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cloudfog/internal/analysis"
	"cloudfog/internal/analysis/checkers"
)

var analyzers = checkers.All()

func main() {
	args := os.Args[1:]
	// The go command probes vet tools before use: -V=full must print a
	// version fingerprint, -flags the supported flag set.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Println("cloudfoglint version v1")
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}

	list := flag.Bool("list", false, "list analyzers and exit")
	sarifPath := flag.String("sarif", "", "write diagnostics as SARIF 2.1.0 to this file")
	baselinePath := flag.String("baseline", "", "suppress findings recorded in this baseline; new or stale findings fail")
	writeBaselinePath := flag.String("write-baseline", "", "record current findings to this baseline file and exit 0")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Shared().Run(analyzers, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudfoglint:", err)
		os.Exit(1)
	}
	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		pos := analysis.Shared().Fset.Position(d.Pos)
		findings = append(findings, finding{
			Analyzer: d.Analyzer,
			File:     relPath(pos.Filename),
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  d.Message,
		})
	}
	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, findings, analyzers); err != nil {
			fmt.Fprintln(os.Stderr, "cloudfoglint: writing SARIF:", err)
			os.Exit(1)
		}
	}
	if *writeBaselinePath != "" {
		if err := writeBaseline(*writeBaselinePath, findings); err != nil {
			fmt.Fprintln(os.Stderr, "cloudfoglint: writing baseline:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cloudfoglint: recorded %d finding(s) to %s\n", len(findings), *writeBaselinePath)
		return
	}
	var stale []baselineEntry
	if *baselinePath != "" {
		bf, err := readBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cloudfoglint:", err)
			os.Exit(1)
		}
		findings, stale = applyBaseline(findings, bf)
	}
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
	}
	for _, e := range stale {
		fmt.Printf("%s: stale baseline entry: %q (%s) no longer fires ×%d; remove it from %s\n",
			e.File, e.Message, e.Analyzer, e.Count, *baselinePath)
	}
	if len(findings)+len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "cloudfoglint: %d invariant violation(s), %d stale baseline entr(ies)\n", len(findings), len(stale))
		os.Exit(2)
	}
}

// vetConfig mirrors the fields of the go command's vet cfg file that the
// unit checker needs (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// vetUnit analyzes one package from a vet cfg: the go command has
// already compiled every dependency and tells us where the export data
// lives, so type-checking needs no go list round-trips.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudfoglint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cloudfoglint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Facts are not implemented; write the (empty) output the go command
	// expects so caching works.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "cloudfoglint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var astFiles []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cloudfoglint:", err)
			return 1
		}
		astFiles = append(astFiles, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := conf.Check(cfg.ImportPath, fset, astFiles, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cloudfoglint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := analysis.RunAnalyzers(fset, astFiles, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudfoglint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
