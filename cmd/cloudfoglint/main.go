// Command cloudfoglint is the repo's invariant checker: a multichecker
// over the five custom analyzers in internal/analysis (pooledbuf,
// conndeadline, guardedby, deterministic, noretain). It runs two ways:
//
// Standalone, over package patterns (the make lint entry point):
//
//	go run ./cmd/cloudfoglint ./...
//
// As a vet tool, one compiled package at a time, driven by the go
// command's JSON cfg protocol:
//
//	go vet -vettool=$(pwd)/bin/cloudfoglint ./...
//
// Both modes print file:line:col: message (analyzer) diagnostics and
// exit non-zero when any survive. Suppress a diagnostic by annotating
// the offending line (or the line above) with
//
//	//lint:ignore <analyzer> <reason>
//
// See DESIGN.md §11 for the invariants and the suppression policy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cloudfog/internal/analysis"
	"cloudfog/internal/analysis/checkers"
)

var analyzers = checkers.All()

func main() {
	args := os.Args[1:]
	// The go command probes vet tools before use: -V=full must print a
	// version fingerprint, -flags the supported flag set.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Println("cloudfoglint version v1")
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}

	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Shared().Run(analyzers, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudfoglint:", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", analysis.Shared().Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cloudfoglint: %d invariant violation(s)\n", len(diags))
		os.Exit(2)
	}
}

// vetConfig mirrors the fields of the go command's vet cfg file that the
// unit checker needs (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// vetUnit analyzes one package from a vet cfg: the go command has
// already compiled every dependency and tells us where the export data
// lives, so type-checking needs no go list round-trips.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudfoglint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cloudfoglint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Facts are not implemented; write the (empty) output the go command
	// expects so caching works.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "cloudfoglint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var astFiles []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cloudfoglint:", err)
			return 1
		}
		astFiles = append(astFiles, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := conf.Check(cfg.ImportPath, fset, astFiles, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cloudfoglint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := analysis.RunAnalyzers(fset, astFiles, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudfoglint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
