package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cloudfog/internal/analysis"
)

// finding is one diagnostic resolved to a position: the unit the SARIF
// emitter and the baseline ratchet both work over.
type finding struct {
	Analyzer string
	File     string // module-relative, forward slashes
	Line     int
	Col      int
	Message  string
}

// relPath rewrites an absolute position path relative to the working
// directory so baselines and SARIF survive checkouts at different roots.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err == nil {
		if rel, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(rel, "..") {
			path = rel
		}
	}
	return filepath.ToSlash(path)
}

// --- baseline ratchet -------------------------------------------------

// baselineFile is the committed lint-baseline.json schema. Entries are
// keyed (analyzer, file, message) with an occurrence count — deliberately
// line-insensitive, so moving code around a file does not churn the
// baseline while new findings still surface.
type baselineFile struct {
	Version  int             `json:"version"`
	Findings []baselineEntry `json:"findings"`
}

type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

func (e baselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

func (f finding) key() string {
	return f.Analyzer + "\x00" + f.File + "\x00" + f.Message
}

func readBaseline(path string) (*baselineFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if bf.Version != 1 {
		return nil, fmt.Errorf("%s: unsupported baseline version %d (want 1)", path, bf.Version)
	}
	return &bf, nil
}

// makeBaseline folds findings into sorted baseline entries.
func makeBaseline(findings []finding) *baselineFile {
	counts := map[string]*baselineEntry{}
	for _, f := range findings {
		k := f.key()
		if e, ok := counts[k]; ok {
			e.Count++
			continue
		}
		counts[k] = &baselineEntry{Analyzer: f.Analyzer, File: f.File, Message: f.Message, Count: 1}
	}
	bf := &baselineFile{Version: 1, Findings: []baselineEntry{}}
	for _, e := range counts {
		bf.Findings = append(bf.Findings, *e)
	}
	sort.Slice(bf.Findings, func(i, j int) bool {
		a, b := bf.Findings[i], bf.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return bf
}

func writeBaseline(path string, findings []finding) error {
	data, err := json.MarshalIndent(makeBaseline(findings), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

// applyBaseline splits findings into (new, stale): findings beyond an
// entry's count are new and fail the run; entries whose count exceeds
// what actually fired are stale and also fail — the baseline only
// shrinks, it never pads. Baselined findings in order of appearance are
// the suppressed ones.
func applyBaseline(findings []finding, bf *baselineFile) (fresh []finding, stale []baselineEntry) {
	budget := map[string]int{}
	for _, e := range bf.Findings {
		budget[e.key()] += e.Count
	}
	for _, f := range findings {
		k := f.key()
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	for _, e := range bf.Findings {
		if left := budget[e.key()]; left > 0 {
			e.Count = left
			stale = append(stale, e)
			budget[e.key()] = 0
		}
	}
	return fresh, stale
}

// --- SARIF ------------------------------------------------------------

// SARIF 2.1.0, the minimal subset code-scanning UIs ingest: one run, one
// driver, a rule per analyzer, a result per finding with a physical
// location.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifReport renders every finding (baselined or not — the dashboard
// sees the whole picture; the exit code enforces the ratchet).
func sarifReport(findings []finding, azs []*analysis.Analyzer) *sarifLog {
	rules := make([]sarifRule, 0, len(azs)+1)
	for _, a := range azs {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "unusedignore",
		ShortDescription: sarifMessage{Text: "//lint:ignore directives must suppress a live diagnostic"},
	})
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: f.File},
				Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
			}}},
		})
	}
	return &sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "cloudfoglint", Rules: rules}}, Results: results}},
	}
}

func writeSARIF(path string, findings []finding, azs []*analysis.Analyzer) error {
	data, err := json.MarshalIndent(sarifReport(findings, azs), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}
