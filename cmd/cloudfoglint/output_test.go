package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"cloudfog/internal/analysis"
)

func sampleFindings() []finding {
	return []finding{
		{Analyzer: "allocfree", File: "internal/core/system.go", Line: 40, Col: 3, Message: "allocation on zero-alloc path"},
		{Analyzer: "allocfree", File: "internal/core/system.go", Line: 55, Col: 7, Message: "allocation on zero-alloc path"},
		{Analyzer: "epochstamp", File: "internal/fognet/fog.go", Line: 12, Col: 2, Message: "literal leaves stamp field(s) Tick unset"},
	}
}

func TestMakeBaselineFoldsAndSorts(t *testing.T) {
	bf := makeBaseline(sampleFindings())
	if bf.Version != 1 {
		t.Fatalf("version = %d, want 1", bf.Version)
	}
	if len(bf.Findings) != 2 {
		t.Fatalf("entries = %d, want 2 (same-message findings fold into one count)", len(bf.Findings))
	}
	if e := bf.Findings[0]; e.File != "internal/core/system.go" || e.Count != 2 {
		t.Errorf("first entry = %+v, want system.go ×2 (sorted by file, counted)", e)
	}
	if e := bf.Findings[1]; e.Analyzer != "epochstamp" || e.Count != 1 {
		t.Errorf("second entry = %+v, want epochstamp ×1", e)
	}
}

func TestApplyBaselineSuppressesExact(t *testing.T) {
	findings := sampleFindings()
	fresh, stale := applyBaseline(findings, makeBaseline(findings))
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("fresh=%d stale=%d against own baseline, want 0/0", len(fresh), len(stale))
	}
}

func TestApplyBaselineNewFindingFails(t *testing.T) {
	bf := makeBaseline(sampleFindings()[:1]) // only one allocfree occurrence baselined
	fresh, stale := applyBaseline(sampleFindings(), bf)
	if len(fresh) != 2 {
		t.Fatalf("fresh = %d, want 2 (second allocfree occurrence + epochstamp are new)", len(fresh))
	}
	if len(stale) != 0 {
		t.Fatalf("stale = %d, want 0", len(stale))
	}
	// The baseline is line-insensitive: the suppressed occurrence is the
	// first in report order, so the surviving allocfree finding is line 55.
	if fresh[0].Line != 55 {
		t.Errorf("surviving allocfree finding at line %d, want 55", fresh[0].Line)
	}
}

func TestApplyBaselineStaleEntryFails(t *testing.T) {
	bf := makeBaseline(sampleFindings())
	fresh, stale := applyBaseline(sampleFindings()[:1], bf) // epochstamp fixed, one allocfree fixed
	if len(fresh) != 0 {
		t.Fatalf("fresh = %d, want 0", len(fresh))
	}
	if len(stale) != 2 {
		t.Fatalf("stale = %d, want 2 (shrink-only: fixed findings must leave the baseline)", len(stale))
	}
	for _, e := range stale {
		if e.Count != 1 {
			t.Errorf("stale entry %s count = %d, want 1 remaining", e.Analyzer, e.Count)
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := writeBaseline(path, sampleFindings()); err != nil {
		t.Fatalf("writeBaseline: %v", err)
	}
	bf, err := readBaseline(path)
	if err != nil {
		t.Fatalf("readBaseline: %v", err)
	}
	fresh, stale := applyBaseline(sampleFindings(), bf)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("round-trip mismatch: fresh=%d stale=%d", len(fresh), len(stale))
	}
}

func TestReadBaselineRejectsBadVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	os.WriteFile(path, []byte(`{"version":9,"findings":[]}`), 0o666)
	if _, err := readBaseline(path); err == nil {
		t.Fatal("version 9 accepted, want error")
	}
}

func TestCommittedBaselineIsEmpty(t *testing.T) {
	bf, err := readBaseline(filepath.Join("..", "..", "lint-baseline.json"))
	if err != nil {
		t.Fatalf("committed lint-baseline.json: %v", err)
	}
	if len(bf.Findings) != 0 {
		t.Errorf("committed baseline carries %d finding(s); the tree is supposed to be clean — fix or //lint:ignore instead of baselining", len(bf.Findings))
	}
}

func TestSARIFShape(t *testing.T) {
	azs := []*analysis.Analyzer{{Name: "allocfree", Doc: "no allocs"}, {Name: "epochstamp", Doc: "stamped"}}
	log := sarifReport(sampleFindings(), azs)
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 / 1", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "cloudfoglint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// One rule per analyzer plus the unusedignore audit rule.
	if len(run.Tool.Driver.Rules) != 3 {
		t.Errorf("rules = %d, want 3", len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "allocfree" || r.Level != "error" {
		t.Errorf("result 0 = %+v", r)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/system.go" || loc.Region.StartLine != 40 {
		t.Errorf("location = %+v", loc)
	}
	// The document must survive a marshal round-trip as plain JSON.
	data, err := json.Marshal(log)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if decoded["$schema"] == "" {
		t.Error("missing $schema")
	}
}

func TestSARIFEmptyResultsIsValid(t *testing.T) {
	log := sarifReport(nil, nil)
	data, err := json.Marshal(log)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded sarifLog
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if decoded.Runs[0].Results == nil {
		t.Error("results must marshal as [], not null (SARIF consumers reject null)")
	}
}
