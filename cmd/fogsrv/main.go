// Command fogsrv runs one CloudFog supernode: it registers with the cloud,
// replicates the virtual world from the update stream, and renders and
// streams per-player game video on its stream address.
//
//	fogsrv -cloud 127.0.0.1:7000 -addr 127.0.0.1:7100 -capacity 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cloudfog/internal/fognet"
)

func main() {
	name := flag.String("name", "fog", "supernode name")
	cloudAddr := flag.String("cloud", "127.0.0.1:7000", "cloud server address")
	addr := flag.String("addr", "127.0.0.1:0", "stream listen address")
	capacity := flag.Int("capacity", 8, "max concurrent players")
	frame := flag.Duration("frame", fognet.DefaultFrameInterval, "video frame interval")
	dialTimeout := flag.Duration("dial-timeout", fognet.DefaultDialTimeout, "cloud dial timeout")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats print interval (0 = silent)")
	flag.Parse()

	if err := run(*name, *cloudAddr, *addr, *capacity, *frame, *dialTimeout, *statsEvery); err != nil {
		log.Fatal(err)
	}
}

func run(name, cloudAddr, addr string, capacity int, frame, dialTimeout, statsEvery time.Duration) error {
	fog, err := fognet.NewFogNode(fognet.FogConfig{
		Name:          name,
		CloudAddr:     cloudAddr,
		StreamAddr:    addr,
		Capacity:      capacity,
		FrameInterval: frame,
		DialTimeout:   dialTimeout,
	})
	if err != nil {
		return err
	}
	defer fog.Close()
	fmt.Printf("fogsrv %q: supernode %d streaming on %s (capacity %d)\n",
		name, fog.ID(), fog.StreamAddr(), capacity)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var tickCh <-chan time.Time
	if statsEvery > 0 {
		ticker := time.NewTicker(statsEvery)
		defer ticker.Stop()
		tickCh = ticker.C
	}
	for {
		select {
		case <-sig:
			fmt.Println("fogsrv: shutting down")
			return nil
		case <-tickCh:
			s := fog.Stats()
			fmt.Printf("fogsrv %q: tick=%d attached=%d frames=%d video=%0.1f kbit applied=%d stale=%d reconnects=%d\n",
				name, s.ReplicaTick, s.Attached, s.Frames,
				float64(s.VideoBits)/1000, s.AppliedDeltas, s.StaleDeltas,
				s.Resilience.Reconnects)
		}
	}
}
