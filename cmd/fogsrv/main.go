// Command fogsrv runs one CloudFog supernode: it registers with the cloud,
// replicates the virtual world from the update stream, and renders and
// streams per-player game video on its stream address.
//
//	fogsrv -cloud 127.0.0.1:7000 -addr 127.0.0.1:7100 -capacity 8
//	fogsrv -cloud 127.0.0.1:7000 -transport udp   # offer the datagram video path
//
// On SIGTERM/SIGINT the supernode departs gracefully: buffered player
// actions are flushed upstream and the cloud is told goodbye, so the
// departure is recorded as such rather than as a heartbeat eviction.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cloudfog/internal/fognet"
)

func main() {
	name := flag.String("name", "fog", "supernode name")
	cloudAddr := flag.String("cloud", "127.0.0.1:7000", "cloud server address")
	addr := flag.String("addr", "127.0.0.1:0", "stream listen address")
	capacity := flag.Int("capacity", 8, "max concurrent players")
	frame := flag.Duration("frame", fognet.DefaultFrameInterval, "video frame interval")
	dialTimeout := flag.Duration("dial-timeout", fognet.DefaultDialTimeout, "cloud dial timeout")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats print interval (0 = silent)")
	seed := flag.Uint64("seed", 1, "reconnect-jitter seed")
	transportFlag := flag.String("transport", "tcp",
		"video transport: tcp | udp (udp opens a datagram socket players can upgrade to; TCP stays the control path and the fallback)")
	dgramAddr := flag.String("dgram-addr", "",
		"UDP listen address for -transport udp (default: stream host, ephemeral port)")
	aoi := flag.Bool("aoi", false,
		"subscribe to the cloud's interest-managed (AoI) update stream: report the cells attached players can see and receive per-cell batches instead of the full world")
	aoiMargin := flag.Float64("aoi-margin", fognet.DefaultAoIMargin,
		"AoI hysteresis margin in world units (cells enter at viewport+margin, leave beyond viewport+2×margin); only meaningful with -aoi")
	flag.Parse()

	if *transportFlag != "tcp" && *transportFlag != "udp" {
		log.Fatalf("fogsrv: -transport must be tcp or udp, got %q", *transportFlag)
	}
	if err := run(*name, *cloudAddr, *addr, *capacity, *frame, *dialTimeout, *statsEvery, *seed,
		*transportFlag == "udp", *dgramAddr, *aoi, *aoiMargin); err != nil {
		log.Fatal(err)
	}
}

func run(name, cloudAddr, addr string, capacity int, frame, dialTimeout, statsEvery time.Duration,
	seed uint64, datagram bool, dgramAddr string, aoi bool, aoiMargin float64) error {
	fog, err := fognet.NewFogNode(fognet.FogConfig{
		Name:          name,
		CloudAddr:     cloudAddr,
		StreamAddr:    addr,
		Capacity:      capacity,
		FrameInterval: frame,
		DialTimeout:   dialTimeout,
		Seed:          seed,
		Datagram:      datagram,
		DatagramAddr:  dgramAddr,
		AoI:           aoi,
		AoIMargin:     aoiMargin,
	})
	if err != nil {
		return err
	}
	transport := "tcp"
	if datagram {
		transport = "udp (tcp control + fallback)"
	}
	stream := "full-world"
	if aoi {
		stream = fmt.Sprintf("aoi (margin %g)", aoiMargin)
	}
	fmt.Printf("fogsrv %q: supernode %d streaming on %s (capacity %d, transport %s, updates %s)\n",
		name, fog.ID(), fog.StreamAddr(), capacity, transport, stream)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var tickCh <-chan time.Time
	if statsEvery > 0 {
		ticker := time.NewTicker(statsEvery)
		defer ticker.Stop()
		tickCh = ticker.C
	}
	for {
		select {
		case <-sig:
			fmt.Println("fogsrv: departing (flush buffered actions, goodbye to cloud)")
			fog.Shutdown()
			fmt.Println("fogsrv: shut down")
			return nil
		case <-tickCh:
			s := fog.Stats()
			line := fmt.Sprintf("fogsrv %q: epoch=%d tick=%d attached=%d frames=%d dgrams=%d video=%0.1f kbit applied=%d stale=%d reconnects=%d resumes=%d buffered=%d",
				name, s.Epoch, s.ReplicaTick, s.Attached, s.Frames, s.DatagramFrames,
				float64(s.VideoBits)/1000, s.AppliedDeltas, s.StaleDeltas,
				s.Resilience.Reconnects, s.Resilience.Resumes, s.BufferedNow)
			if aoi {
				line += fmt.Sprintf(" aoi_cells=%d cell_batches=%d keyframes=%d",
					s.InterestCells, s.CellBatches, s.KeyframesApplied)
			}
			fmt.Println(line)
		}
	}
}
