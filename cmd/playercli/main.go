// Command playercli runs a CloudFog thin client: it joins the game through
// the cloud, attaches to a supernode for video, streams synthetic inputs,
// and reports the received stream's statistics.
//
//	playercli -cloud 127.0.0.1:7000 -id 1 -game 3 -adapt -duration 30s
//	playercli -cloud 127.0.0.1:7000 -id 1 -transport udp   # request datagram video
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cloudfog/internal/fognet"
	"cloudfog/internal/game"
	"cloudfog/internal/selection"
)

func main() {
	id := flag.Int("id", 1, "player ID")
	cloudAddr := flag.String("cloud", "127.0.0.1:7000", "cloud server address")
	gameID := flag.Int("game", 3, "game ID from the Table 2 catalog (1-5)")
	adapt := flag.Bool("adapt", false, "enable receiver-driven rate adaptation")
	duration := flag.Duration("duration", 30*time.Second, "how long to play (0 = until interrupted)")
	dialTimeout := flag.Duration("dial-timeout", fognet.DefaultDialTimeout, "connect/attach handshake timeout")
	seed := flag.Uint64("seed", 1, "input generator seed")
	selPolicy := flag.String("selection", "reputation", "failover-ladder ranking policy: random | reputation | global")
	maxRTT := flag.Float64("max-rtt", 0, "drop candidates whose measured RTT exceeds this many ms (0 = no filter)")
	transportFlag := flag.String("transport", "tcp",
		"video transport: tcp | udp (udp requests the datagram upgrade after every supernode attach; TCP stays the control path and the fallback)")
	flag.Parse()

	policy, err := selection.ParsePolicy(*selPolicy)
	if err != nil {
		log.Fatal(err)
	}
	if *transportFlag != "tcp" && *transportFlag != "udp" {
		log.Fatalf("playercli: -transport must be tcp or udp, got %q", *transportFlag)
	}
	if err := run(*id, *cloudAddr, *gameID, *adapt, *duration, *dialTimeout, *seed, policy, *maxRTT,
		*transportFlag == "udp"); err != nil {
		log.Fatal(err)
	}
}

func run(id int, cloudAddr string, gameID int, adapt bool, duration, dialTimeout time.Duration,
	seed uint64, policy selection.Policy, maxRTT float64, datagram bool) error {
	catalog := game.Catalog()
	if gameID < 1 || gameID > len(catalog) {
		return fmt.Errorf("game ID %d out of range 1..%d", gameID, len(catalog))
	}
	g := catalog[gameID-1]
	player, err := fognet.NewPlayerClient(fognet.PlayerConfig{
		PlayerID:          int32(id),
		CloudAddr:         cloudAddr,
		Game:              g,
		Adapt:             adapt,
		DialTimeout:       dialTimeout,
		Seed:              seed,
		Policy:            policy,
		MaxCandidateRTTMs: maxRTT,
		Datagram:          datagram,
	})
	if err != nil {
		return err
	}
	defer player.Close()
	fmt.Printf("playercli %d: playing %q (L%d, %.0f kbps, adapt=%v, transport=%s)\n",
		id, g.Name, g.DefaultQuality, g.Quality().BitrateKbps, adapt,
		map[bool]string{false: "tcp", true: "udp"}[datagram])

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var deadline <-chan time.Time
	if duration > 0 {
		deadline = time.After(duration)
	}
	start := time.Now()
	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
		case <-deadline:
		case <-ticker.C:
			printStats(player, start)
			continue
		}
		printStats(player, start)
		fmt.Println("playercli: leaving")
		return nil
	}
}

func printStats(player *fognet.PlayerClient, start time.Time) {
	s := player.Stats()
	elapsed := time.Since(start).Seconds()
	fmt.Printf("playercli: %5.1fs frames=%d (%.1f fps) video=%.0f kbps L%d switches=%d errors=%d tick=%d migrations=%d fallbacks=%d stall=%dms qoe=%d dgrams=%d lost=%d stale=%d loss=%.3f\n",
		elapsed, s.Frames, float64(s.Frames)/elapsed,
		float64(s.VideoBits)/elapsed/1000, s.Level, s.RateSwitches, s.DecodeErrors, s.LastTick,
		s.Migrations, s.FallbackTransitions, s.StallMs, s.QoEReports,
		s.DatagramFrames, s.DatagramLost, s.DatagramStale, s.LossEWMA)
}
