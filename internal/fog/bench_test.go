package fog

import (
	"testing"

	"cloudfog/internal/geo"
	"cloudfog/internal/netmodel"
	"cloudfog/internal/reputation"
	"cloudfog/internal/rng"
)

// BenchmarkSelectorSelect measures the §3.2 selection hot path: candidate
// fetch, delay filter, reputation ranking, and sequential probing against a
// 64-supernode registry.
func BenchmarkSelectorSelect(b *testing.B) {
	model := netmodel.NewModel(netmodel.Params{}, 1)
	m := NewManager(model)
	r := rng.New(2)
	for i := 0; i < 64; i++ {
		loc := geo.Point{X: 1000 + float64(i%8)*30, Y: 1000 + float64(i/8)*30}
		m.Register(NewSupernode(netmodel.NewSupernodeEndpoint(100+i, loc, r), 3))
	}
	dc := netmodel.NewDatacenterEndpoint(9999, geo.Point{X: 4000, Y: 1950})
	sel := &Selector{Manager: m, Model: model, CloudEndpoint: dc, Policy: PolicyReputation}
	player := netmodel.NewPlayerEndpoint(1, geo.Point{X: 1050, Y: 1050}, r)
	book := reputation.NewBook(reputation.DefaultLambda)
	for i := 0; i < 16; i++ {
		book.Rate(100+i, 0.5+float64(i)/64, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := sel.Select(player, 200, book, 0, r)
		if out.Supernode == nil {
			b.Fatal("selection failed")
		}
		m.Disconnect(player.ID, out.Supernode.ID)
	}
}
