package fog

import (
	"testing"

	"cloudfog/internal/geo"
	"cloudfog/internal/netmodel"
	"cloudfog/internal/reputation"
	"cloudfog/internal/rng"
)

func newTestManager(t *testing.T, n int) (*Manager, *netmodel.Model, *rng.Rand) {
	t.Helper()
	model := netmodel.NewModel(netmodel.Params{}, 1)
	m := NewManager(model)
	r := rng.New(2)
	for i := 0; i < n; i++ {
		loc := geo.Point{X: 1000 + float64(i%10)*30, Y: 1000 + float64(i/10)*30}
		ep := netmodel.NewSupernodeEndpoint(100+i, loc, r)
		m.Register(NewSupernode(ep, 3))
	}
	return m, model, r
}

func playerAt(id int, x, y float64, r *rng.Rand) *netmodel.Endpoint {
	return netmodel.NewPlayerEndpoint(id, geo.Point{X: x, Y: y}, r)
}

func TestSupernodeBasics(t *testing.T) {
	r := rng.New(1)
	ep := netmodel.NewSupernodeEndpoint(5, geo.Point{X: 1, Y: 1}, r)
	sn := NewSupernode(ep, 0) // clamped to 1
	if sn.Capacity != 1 {
		t.Errorf("capacity clamp: %d", sn.Capacity)
	}
	sn = NewSupernode(ep, 4)
	if sn.Available() != 4 || sn.Load() != 0 || !sn.Active {
		t.Error("fresh supernode malformed")
	}
	sn.Active = false
	if sn.Available() != 0 {
		t.Error("inactive supernode advertises capacity")
	}
}

func TestPerStreamIndependentOfLoad(t *testing.T) {
	r := rng.New(1)
	ep := netmodel.NewSupernodeEndpoint(5, geo.Point{X: 1, Y: 1}, r)
	sn := NewSupernode(ep, 10)
	before := sn.PerStreamKbps()
	sn.players[1] = struct{}{}
	sn.players[2] = struct{}{}
	if sn.PerStreamKbps() != before {
		t.Error("per-stream share depends on load; slots are provisioned")
	}
	if before != ep.UploadKbps/10 {
		t.Errorf("per-stream = %v, want upload/capacity", before)
	}
	sn.Throttle = 0.5
	if sn.PerStreamKbps() != before/2 {
		t.Error("throttle not applied to per-stream share")
	}
}

func TestConnectDisconnect(t *testing.T) {
	m, _, _ := newTestManager(t, 1)
	id := m.All()[0].ID
	for i := 0; i < 3; i++ {
		if !m.Connect(i, id) {
			t.Fatalf("connect %d failed", i)
		}
	}
	if m.Connect(99, id) {
		t.Error("connect beyond capacity succeeded")
	}
	if m.Get(id).Load() != 3 {
		t.Errorf("load = %d", m.Get(id).Load())
	}
	m.Disconnect(0, id)
	if m.Get(id).Available() != 1 {
		t.Error("disconnect did not free a slot")
	}
	if m.Connect(5, 424242) {
		t.Error("connect to unknown supernode succeeded")
	}
}

func TestDeactivateDisplacesPlayers(t *testing.T) {
	m, _, _ := newTestManager(t, 1)
	id := m.All()[0].ID
	m.Connect(7, id)
	m.Connect(8, id)
	displaced := m.Deactivate(id)
	if len(displaced) != 2 || displaced[0] != 7 || displaced[1] != 8 {
		t.Errorf("displaced = %v", displaced)
	}
	if m.NumActive() != 0 {
		t.Error("still active after Deactivate")
	}
	if m.Deactivate(id) != nil {
		t.Error("double deactivate returned players")
	}
	m.Activate(id)
	if m.NumActive() != 1 || m.Get(id).Load() != 0 {
		t.Error("reactivation broken")
	}
}

func TestCandidatesForClosestWithCapacity(t *testing.T) {
	m, _, r := newTestManager(t, 30)
	m.CandidateListSize = 5
	player := playerAt(1, 1000, 1000, r)
	cands := m.CandidatesFor(player.Loc)
	if len(cands) != 5 {
		t.Fatalf("candidates = %d", len(cands))
	}
	// Must be sorted by distance.
	prev := -1.0
	for _, sn := range cands {
		d := geo.Distance(player.Loc, sn.Endpoint.Loc)
		if d < prev {
			t.Fatal("candidates not distance-sorted")
		}
		prev = d
	}
	// Fill the nearest candidate; it must drop out of the list.
	first := cands[0]
	for i := 0; i < first.Capacity; i++ {
		m.Connect(1000+i, first.ID)
	}
	for _, sn := range m.CandidatesFor(player.Loc) {
		if sn.ID == first.ID {
			t.Error("full supernode still offered")
		}
	}
}

func TestCandidatesForEmptyManager(t *testing.T) {
	m := NewManager(netmodel.NewModel(netmodel.Params{}, 1))
	if got := m.CandidatesFor(geo.Point{}); len(got) != 0 {
		t.Errorf("candidates from empty registry: %d", len(got))
	}
}

func TestSelectorConnectsNearby(t *testing.T) {
	m, model, r := newTestManager(t, 20)
	dc := netmodel.NewDatacenterEndpoint(9999, geo.Point{X: 4000, Y: 1950})
	sel := &Selector{Manager: m, Model: model, CloudEndpoint: dc, Policy: PolicyRandom}
	player := playerAt(1, 1010, 1010, r)
	out := sel.Select(player, 60, nil, 0, r)
	if out.Supernode == nil {
		t.Fatalf("no supernode selected: %+v", out)
	}
	if out.Supernode.Load() != 1 {
		t.Error("selection did not connect")
	}
	if out.RequestMs <= 0 || out.PingMs <= 0 || out.ProbeMs <= 0 || out.Probed < 1 {
		t.Errorf("latency decomposition empty: %+v", out)
	}
	if out.TotalMs() != out.RequestMs+out.PingMs+out.ProbeMs {
		t.Error("TotalMs inconsistent")
	}
	if out.String() == "" {
		t.Error("empty String")
	}
}

func TestSelectorDelayFilter(t *testing.T) {
	m, model, r := newTestManager(t, 20)
	dc := netmodel.NewDatacenterEndpoint(9999, geo.Point{X: 4000, Y: 1950})
	sel := &Selector{Manager: m, Model: model, CloudEndpoint: dc, Policy: PolicyRandom}
	// A player on the far side of the plane cannot meet a 5 ms one-way
	// threshold to supernodes around (1000, 1000).
	player := playerAt(1, 4400, 2700, r)
	out := sel.Select(player, 5, nil, 0, r)
	if out.Supernode != nil {
		t.Errorf("distant player passed the delay filter: %+v", out)
	}
	if out.Candidates != 0 {
		t.Errorf("qualified candidates = %d", out.Candidates)
	}
}

func TestSelectorSequentialProbing(t *testing.T) {
	m, model, r := newTestManager(t, 6)
	// Fill every supernode except one.
	all := m.All()
	for i, sn := range all {
		if i == len(all)-1 {
			break
		}
		for j := 0; j < sn.Capacity; j++ {
			m.Connect(10000+100*i+j, sn.ID)
		}
	}
	dc := netmodel.NewDatacenterEndpoint(9999, geo.Point{X: 4000, Y: 1950})
	sel := &Selector{Manager: m, Model: model, CloudEndpoint: dc, Policy: PolicyRandom}
	player := playerAt(1, 1020, 1020, r)
	out := sel.Select(player, 100, nil, 0, r)
	if out.Supernode == nil {
		t.Fatal("free supernode not found")
	}
	if out.Supernode.ID != all[len(all)-1].ID {
		t.Errorf("selected %d, want the only free one", out.Supernode.ID)
	}
}

func TestSelectorReputationPrefersRated(t *testing.T) {
	m, model, r := newTestManager(t, 10)
	m.CandidateListSize = 10
	dc := netmodel.NewDatacenterEndpoint(9999, geo.Point{X: 4000, Y: 1950})
	sel := &Selector{Manager: m, Model: model, CloudEndpoint: dc, Policy: PolicyReputation}
	player := playerAt(1, 1050, 1050, r)
	book := reputation.NewBook(0.9)
	target := m.All()[7].ID
	book.Rate(target, 0.95, 0)
	// With one highly-rated candidate and all others unknown (score 0),
	// the rated one must be probed first and chosen.
	out := sel.Select(player, 200, book, 0, r)
	if out.Supernode == nil || out.Supernode.ID != target {
		t.Fatalf("reputation ranking ignored: %+v", out)
	}
	if out.Probed != 1 {
		t.Errorf("probed %d candidates before the top-rated one", out.Probed)
	}
}

func TestSelectorGlobalReputation(t *testing.T) {
	m, model, r := newTestManager(t, 10)
	m.CandidateListSize = 10
	dc := netmodel.NewDatacenterEndpoint(9999, geo.Point{X: 4000, Y: 1950})
	global := reputation.NewGlobalBook(0.9)
	target := m.All()[3].ID
	global.Rate(target, 0.99, 0)
	sel := &Selector{Manager: m, Model: model, CloudEndpoint: dc, Policy: PolicyGlobalReputation, Global: global}
	player := playerAt(1, 1050, 1050, r)
	out := sel.Select(player, 200, nil, 0, r)
	if out.Supernode == nil || out.Supernode.ID != target {
		t.Fatalf("global reputation ranking ignored: %+v", out)
	}
}

func TestSelectorNilBookSafe(t *testing.T) {
	m, model, r := newTestManager(t, 5)
	dc := netmodel.NewDatacenterEndpoint(9999, geo.Point{X: 4000, Y: 1950})
	sel := &Selector{Manager: m, Model: model, CloudEndpoint: dc, Policy: PolicyReputation}
	player := playerAt(1, 1010, 1010, r)
	out := sel.Select(player, 100, nil, 0, r) // must not panic
	if out.Supernode == nil {
		t.Error("selection with nil book failed")
	}
}

func TestAllSortedAndNumActive(t *testing.T) {
	m, _, _ := newTestManager(t, 5)
	all := m.All()
	for i := 1; i < len(all); i++ {
		if all[i].ID <= all[i-1].ID {
			t.Fatal("All() not sorted")
		}
	}
	if m.NumActive() != 5 {
		t.Errorf("NumActive = %d", m.NumActive())
	}
	m.Deactivate(all[0].ID)
	if m.NumActive() != 4 {
		t.Errorf("NumActive after deactivate = %d", m.NumActive())
	}
}

func TestPlayersSorted(t *testing.T) {
	m, _, _ := newTestManager(t, 1)
	id := m.All()[0].ID
	m.Connect(9, id)
	m.Connect(3, id)
	m.Connect(5, id)
	got := m.Get(id).Players()
	if len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 9 {
		t.Errorf("Players = %v", got)
	}
}

func TestSelectorGlobalReputationShufflesUnknowns(t *testing.T) {
	// Regression: under PolicyGlobalReputation, score-0 unknowns used to be
	// probed in deterministic (distance) order, herding every player onto
	// the same supernode. The shared ranker shuffles ties before the stable
	// sort, so the first probe must vary across streams.
	dc := netmodel.NewDatacenterEndpoint(9999, geo.Point{X: 4000, Y: 1950})
	first := map[int]bool{}
	for seed := uint64(0); seed < 24; seed++ {
		m, model, _ := newTestManager(t, 10)
		m.CandidateListSize = 10
		sel := &Selector{Manager: m, Model: model, CloudEndpoint: dc,
			Policy: PolicyGlobalReputation, Global: reputation.NewGlobalBook(0.9)}
		r := rng.New(1000 + seed)
		out := sel.Select(playerAt(1, 1050, 1050, r), 200, nil, 0, r)
		if out.Supernode == nil {
			t.Fatal("selection failed")
		}
		first[out.Supernode.ID] = true
	}
	if len(first) < 3 {
		t.Errorf("unknown candidates herd onto %v under global reputation", first)
	}
}
