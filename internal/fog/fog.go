// Package fog implements the fog layer of CloudFog: the supernodes that
// render and stream game videos, the cloud-side supernode registry, and the
// player-side selection procedure of §3.2 (candidate discovery, delay
// filtering, reputation ranking, sequential capacity probing) together with
// the churn handling of §3.2.2 (migration on supernode failure, candidate
// refresh when supernodes join).
package fog

import (
	"fmt"
	"sort"

	"cloudfog/internal/geo"
	"cloudfog/internal/netmodel"
	"cloudfog/internal/reputation"
	"cloudfog/internal/rng"
	"cloudfog/internal/selection"
)

// Supernode is one fog node: a contributed machine pre-installed with the
// game client that renders and streams game videos for nearby players.
type Supernode struct {
	// ID identifies the supernode (matches its endpoint ID).
	ID int
	// Endpoint is the supernode's network attachment.
	Endpoint *netmodel.Endpoint
	// Capacity is the maximum number of players the supernode can render
	// and stream for simultaneously.
	Capacity int
	// Throttle is the willingness factor in (0, 1]: the fraction of
	// upload capacity the owner currently devotes to players (§3.2.1's
	// third factor; the experiments throttle 1/5 of supernodes to 0.8 and
	// 1/10 to 0.5 with 50% probability each cycle).
	Throttle float64
	// Active marks whether the supernode is currently deployed.
	Active bool

	players map[int]struct{}
}

// NewSupernode creates an active supernode with full willingness.
func NewSupernode(endpoint *netmodel.Endpoint, capacity int) *Supernode {
	if capacity < 1 {
		capacity = 1
	}
	return &Supernode{
		ID:       endpoint.ID,
		Endpoint: endpoint,
		Capacity: capacity,
		Throttle: 1,
		Active:   true,
		players:  make(map[int]struct{}),
	}
}

// Load returns the number of connected players.
func (s *Supernode) Load() int { return len(s.players) }

// Available returns the remaining player slots (0 when inactive).
func (s *Supernode) Available() int {
	if !s.Active {
		return 0
	}
	return s.Capacity - len(s.players)
}

// Players returns the IDs of the connected players.
func (s *Supernode) Players() []int {
	out := make([]int, 0, len(s.players))
	for id := range s.players {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// EffectiveUploadKbps returns the upload bandwidth the supernode currently
// devotes to streaming, after willingness throttling.
func (s *Supernode) EffectiveUploadKbps() float64 {
	return s.Endpoint.UploadKbps * s.Throttle
}

// PerStreamKbps returns the upload bandwidth one player's stream gets. The
// supernode provisions its upload per capacity slot (owners cap the
// per-process bandwidth rather than letting active streams scavenge idle
// slots), so the share is EffectiveUpload / Capacity regardless of the
// instantaneous load. Throttling therefore strictly degrades every stream.
func (s *Supernode) PerStreamKbps() float64 {
	c := s.Capacity
	if c < 1 {
		c = 1
	}
	return s.EffectiveUploadKbps() / float64(c)
}

// Manager is the cloud-side supernode registry: "the cloud stores the
// information of supernodes in the system in a table including their IP
// addresses and available capacities".
type Manager struct {
	model      *netmodel.Model
	supernodes map[int]*Supernode
	// ordered mirrors the registry as a slice sorted by ID: the scan-heavy
	// paths (candidate discovery on every join, active counts) iterate it
	// instead of the map, which is both faster and order-deterministic.
	ordered []*Supernode
	// CandidateListSize is how many physically-close supernodes the cloud
	// returns to a joining player.
	CandidateListSize int
}

// DefaultCandidateListSize is the number of candidates the cloud returns.
const DefaultCandidateListSize = 8

// NewManager creates an empty registry over the given network model.
func NewManager(model *netmodel.Model) *Manager {
	return &Manager{
		model:             model,
		supernodes:        make(map[int]*Supernode),
		CandidateListSize: DefaultCandidateListSize,
	}
}

// Register adds a supernode to the registry, replacing any previous entry
// with the same ID.
func (m *Manager) Register(s *Supernode) {
	if _, exists := m.supernodes[s.ID]; exists {
		for i, o := range m.ordered {
			if o.ID == s.ID {
				m.ordered[i] = s
				break
			}
		}
	} else {
		i := sort.Search(len(m.ordered), func(k int) bool { return m.ordered[k].ID >= s.ID })
		m.ordered = append(m.ordered, nil)
		copy(m.ordered[i+1:], m.ordered[i:])
		m.ordered[i] = s
	}
	m.supernodes[s.ID] = s
}

// Get returns the supernode with the given ID, or nil.
func (m *Manager) Get(id int) *Supernode { return m.supernodes[id] }

// All returns all registered supernodes, active or not, sorted by ID.
func (m *Manager) All() []*Supernode {
	return append([]*Supernode(nil), m.ordered...)
}

// NumActive returns how many supernodes are currently deployed.
func (m *Manager) NumActive() int {
	n := 0
	for _, s := range m.ordered {
		if s.Active {
			n++
		}
	}
	return n
}

// Deactivate takes a supernode out of service (owner leave or failure) and
// returns the IDs of the players it was serving, who must migrate.
func (m *Manager) Deactivate(id int) []int {
	s := m.supernodes[id]
	if s == nil || !s.Active {
		return nil
	}
	s.Active = false
	displaced := s.Players()
	s.players = make(map[int]struct{})
	return displaced
}

// Activate (re)deploys a supernode.
func (m *Manager) Activate(id int) {
	if s := m.supernodes[id]; s != nil {
		s.Active = true
	}
}

// Connect attaches a player to a supernode if it has available capacity,
// reporting success.
func (m *Manager) Connect(playerID, supernodeID int) bool {
	s := m.supernodes[supernodeID]
	if s == nil || s.Available() <= 0 {
		return false
	}
	s.players[playerID] = struct{}{}
	return true
}

// Disconnect detaches a player from a supernode.
func (m *Manager) Disconnect(playerID, supernodeID int) {
	if s := m.supernodes[supernodeID]; s != nil {
		delete(s.players, playerID)
	}
}

// CandidatesFor returns up to CandidateListSize active supernodes with
// available capacity, physically closest to the given location — the
// cloud's answer to a joining player's request (§3.2.1).
func (m *Manager) CandidatesFor(loc geo.Point) []*Supernode {
	// Bounded top-k selection instead of a full sort: the candidate list is
	// tiny (k = CandidateListSize) while the supernode pool is not, and this
	// runs on every join. `top` is kept sorted by (distance, ID) — the same
	// total order the full sort used — so the result is identical and, being
	// unique under that order, independent of map iteration order.
	type cand struct {
		s *Supernode
		d float64
	}
	k := m.CandidateListSize
	if k <= 0 {
		return nil
	}
	top := make([]cand, 0, k)
	for _, s := range m.ordered {
		if s.Available() <= 0 {
			continue
		}
		d := geo.Distance(loc, s.Endpoint.Loc)
		if len(top) == k {
			last := top[k-1]
			if d > last.d || (d == last.d && s.ID > last.s.ID) {
				continue
			}
		}
		i := len(top)
		if i < k {
			top = top[:i+1]
		} else {
			i = k - 1
		}
		for i > 0 && (d < top[i-1].d || (d == top[i-1].d && s.ID < top[i-1].s.ID)) {
			top[i] = top[i-1]
			i--
		}
		top[i] = cand{s: s, d: d}
	}
	out := make([]*Supernode, len(top))
	for i, c := range top {
		out[i] = c.s
	}
	return out
}

// SelectionPolicy controls how a player picks among delay-qualified
// candidates. It is the shared control plane's selection.Policy; the
// aliases below keep the historical names working.
type SelectionPolicy = selection.Policy

const (
	// PolicyRandom picks a random qualified candidate (CloudFog/B, the
	// Fig. 10 baseline).
	PolicyRandom = selection.PolicyRandom
	// PolicyReputation ranks qualified candidates by the player's own
	// reputation book (CloudFog-reputation).
	PolicyReputation = selection.PolicyReputation
	// PolicyGlobalReputation ranks by a shared global reputation — the
	// sybil-vulnerable strawman kept as an ablation.
	PolicyGlobalReputation = selection.PolicyGlobalReputation
)

// Selection is the outcome of a player's supernode-selection procedure,
// including the latency decomposition used by Fig. 9.
type Selection struct {
	// Supernode is the chosen supernode, nil when the player must fall
	// back to the cloud.
	Supernode *Supernode
	// RequestMs is the player<->cloud round trip to fetch candidates.
	RequestMs float64
	// PingMs is the (parallel) delay-test time: the slowest candidate RTT.
	PingMs float64
	// ProbeMs is the sequential capacity-probing time: one RTT per asked
	// candidate until one has capacity.
	ProbeMs float64
	// Probed is how many candidates were asked for capacity.
	Probed int
	// Candidates is how many candidates passed the delay filter.
	Candidates int
}

// TotalMs returns the player-join latency: request + ping tests + probes.
func (sel Selection) TotalMs() float64 { return sel.RequestMs + sel.PingMs + sel.ProbeMs }

// Selector runs the player-side selection procedure.
type Selector struct {
	Manager *Manager
	Model   *netmodel.Model
	// CloudEndpoint is the datacenter the player contacts for candidates.
	CloudEndpoint *netmodel.Endpoint
	// Policy picks the ranking rule.
	Policy SelectionPolicy
	// Global is consulted only under PolicyGlobalReputation.
	Global *reputation.GlobalBook
}

// Select runs §3.2's procedure for the player: fetch candidates from the
// cloud, test transmission delay to all of them, drop those above
// maxDelayMs (L_max, from the game's latency requirement), order the rest
// by policy, then sequentially probe for available capacity and connect to
// the first that accepts. A nil book with PolicyReputation is treated as an
// empty book (all scores zero). The filtering, ranking, and probing are
// delegated to the shared internal/selection pipeline.
func (sel *Selector) Select(player *netmodel.Endpoint, maxDelayMs float64,
	book *reputation.Book, today int, r *rng.Rand) Selection {

	out := Selection{}
	out.RequestMs = sel.Model.PathRTTMs(player, sel.CloudEndpoint)

	cands := sel.Manager.CandidatesFor(player.Loc)
	list := make(selection.List, len(cands))
	for i, s := range cands {
		list[i] = selection.Candidate{
			ID:       s.ID,
			Load:     s.Load(),
			Capacity: s.Capacity,
			RTTMs:    sel.Model.PathRTTMs(player, s.Endpoint),
		}
	}
	var scorer selection.Scorer
	switch sel.Policy {
	case PolicyGlobalReputation:
		if sel.Global != nil {
			scorer = sel.Global
		}
	default:
		if book == nil {
			book = reputation.NewBook(reputation.DefaultLambda)
		}
		scorer = book
	}
	pipe := selection.Pipeline{
		Source: list,
		Ranker: selection.PolicyRanker{Policy: sel.Policy, Scorer: scorer},
	}
	// Sequential capacity probing: one RTT per asked supernode.
	res := pipe.Run(maxDelayMs, today, r, func(c selection.Candidate) bool {
		out.ProbeMs += c.RTTMs
		return sel.Manager.Connect(player.ID, c.ID)
	})
	out.PingMs = res.PingMs
	out.Candidates = res.Candidates
	out.Probed = res.Probed
	if res.OK {
		out.Supernode = sel.Manager.Get(res.Chosen.ID)
	}
	return out
}

// String renders the selection outcome for logs.
func (sel Selection) String() string {
	id := -1
	if sel.Supernode != nil {
		id = sel.Supernode.ID
	}
	return fmt.Sprintf("selection{sn=%d candidates=%d probed=%d total=%.1fms}",
		id, sel.Candidates, sel.Probed, sel.TotalMs())
}
