package render

import (
	"testing"

	"cloudfog/internal/rng"
	"cloudfog/internal/virtualworld"
)

// BenchmarkRender measures rasterizing one 512x384 frame of a 50-entity
// neighborhood — the supernode's per-player per-frame render cost.
func BenchmarkRender(b *testing.B) {
	r := rng.New(1)
	w := virtualworld.New(400, 400)
	for p := 1; p <= 50; p++ {
		w.SpawnAvatar(p, r.Uniform(0, 400), r.Uniform(0, 400))
	}
	s := w.Snapshot()
	renderer := NewRenderer(ResolutionForLevel(3))
	v := ViewportFor(s, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		renderer.Render(s, v)
	}
}
