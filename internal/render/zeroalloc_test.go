package render

import (
	"testing"

	"cloudfog/internal/virtualworld"
)

// testSnapshot builds a small deterministic world with entities inside the
// player-1 viewport.
func testSnapshot(t testing.TB) virtualworld.Snapshot {
	t.Helper()
	w := virtualworld.New(400, 400)
	w.SpawnAvatar(1, 200, 150)
	w.SpawnAvatar(2, 210, 160)
	for i := 0; i < 10; i++ {
		w.Step([]virtualworld.Action{{Player: 1, Kind: virtualworld.ActMove, TargetX: 250, TargetY: 200}})
	}
	return w.Snapshot()
}

// TestRenderIntoMatchesRender pins the buffer-reuse path to the allocating
// one, including after a resolution change (the frame must be resized).
func TestRenderIntoMatchesRender(t *testing.T) {
	s := testSnapshot(t)
	v := ViewportFor(s, 1)
	r := NewRenderer(ResolutionForLevel(3))
	want := r.Render(s, v)
	f := NewFrame(ResolutionForLevel(1)) // wrong size: RenderInto must resize
	r.RenderInto(s, v, f)
	if !want.Equal(f) || want.Tick != f.Tick {
		t.Fatal("RenderInto output differs from Render")
	}
}

// TestRenderIntoSteadyStateAllocs locks in the zero-allocation property of
// the 30 fps fog render loop.
func TestRenderIntoSteadyStateAllocs(t *testing.T) {
	s := testSnapshot(t)
	v := ViewportFor(s, 1)
	r := NewRenderer(ResolutionForLevel(3))
	f := NewFrame(r.Resolution())
	r.RenderInto(s, v, f) // warm-up: grow the culling scratch
	if n := testing.AllocsPerRun(32, func() {
		r.RenderInto(s, v, f)
	}); n != 0 {
		t.Fatalf("RenderInto allocates %.1f/op in steady state, want 0", n)
	}
}
