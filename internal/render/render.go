// Package render implements the supernode-side game-video renderer: it
// turns a virtual-world snapshot into per-player video frames based on the
// player's "viewing position and angle" (§3.1). The paper offloads exactly
// this work from thin clients onto supernodes — "rendering game video is
// relatively less hardware demanding than computation and communication in
// MMOG; most modern computers with discrete graphics cards are sufficient".
//
// The renderer is a deliberately simple software rasterizer: a grayscale
// framebuffer with a background gradient and entities drawn as filled
// discs whose intensity encodes kind and health. What matters for the
// CloudFog pipeline is its contract, not its fidelity: frames are
// deterministic in the snapshot and viewport, differ where the world
// changed, and feed the video encoder (internal/videocodec) that produces
// the Table 2 bitrate ladder.
package render

import (
	"fmt"

	"cloudfog/internal/virtualworld"
)

// Resolution is a frame size in pixels.
type Resolution struct {
	Width  int
	Height int
}

// ResolutionForLevel maps a Table 2 quality level (1..5) to its frame
// resolution.
func ResolutionForLevel(level int) Resolution {
	switch {
	case level <= 1:
		return Resolution{288, 216}
	case level == 2:
		return Resolution{384, 216}
	case level == 3:
		return Resolution{512, 384}
	case level == 4:
		return Resolution{720, 486}
	default:
		return Resolution{1280, 720}
	}
}

// Frame is one rendered grayscale video frame.
type Frame struct {
	// Width, Height are the frame dimensions.
	Width, Height int
	// Pix holds Width*Height luminance bytes, row-major.
	Pix []byte
	// Tick is the world tick the frame depicts.
	Tick uint64
}

// NewFrame allocates a black frame.
func NewFrame(res Resolution) *Frame {
	return &Frame{Width: res.Width, Height: res.Height, Pix: make([]byte, res.Width*res.Height)}
}

// At returns the luminance at (x, y); out-of-bounds reads return 0.
func (f *Frame) At(x, y int) byte {
	if x < 0 || y < 0 || x >= f.Width || y >= f.Height {
		return 0
	}
	return f.Pix[y*f.Width+x]
}

// set writes a pixel, ignoring out-of-bounds writes.
func (f *Frame) set(x, y int, v byte) {
	if x < 0 || y < 0 || x >= f.Width || y >= f.Height {
		return
	}
	f.Pix[y*f.Width+x] = v
}

// Equal reports whether two frames are pixel-identical.
func (f *Frame) Equal(o *Frame) bool {
	if f.Width != o.Width || f.Height != o.Height {
		return false
	}
	for i := range f.Pix {
		if f.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

// DiffFraction returns the fraction of pixels that differ between two
// same-sized frames (1 if sizes differ) — the motion measure the encoder's
// inter-frame compression exploits.
func (f *Frame) DiffFraction(o *Frame) float64 {
	if f.Width != o.Width || f.Height != o.Height || len(f.Pix) == 0 {
		return 1
	}
	diff := 0
	for i := range f.Pix {
		if f.Pix[i] != o.Pix[i] {
			diff++
		}
	}
	return float64(diff) / float64(len(f.Pix))
}

// String summarizes the frame.
func (f *Frame) String() string {
	return fmt.Sprintf("frame{%dx%d tick=%d}", f.Width, f.Height, f.Tick)
}

// Renderer rasterizes world snapshots for one player's viewport.
type Renderer struct {
	res Resolution
	vis []virtualworld.Entity // per-frame culling scratch
}

// NewRenderer creates a renderer at the given resolution.
func NewRenderer(res Resolution) *Renderer {
	if res.Width <= 0 || res.Height <= 0 {
		res = ResolutionForLevel(3)
	}
	return &Renderer{res: res}
}

// Resolution returns the output frame size.
func (r *Renderer) Resolution() Resolution { return r.res }

// entityRadiusPx is the drawn disc radius in pixels.
const entityRadiusPx = 4

// baseLuma returns the disc intensity for an entity: kind bands plus a
// health modulation, so frames change when entities take damage.
func baseLuma(e virtualworld.Entity) byte {
	switch e.Kind {
	case virtualworld.KindAvatar:
		hp := int(e.HP)
		if hp < 0 {
			hp = 0
		}
		return byte(160 + hp*95/virtualworld.MaxHP) // 160..255
	case virtualworld.KindNPC:
		hp := int(e.HP)
		if hp < 0 {
			hp = 0
		}
		return byte(96 + hp*63/virtualworld.MaxHP) // 96..159
	default:
		return 80 // items
	}
}

// Render rasterizes the visible slice of the snapshot for the viewport
// into a fresh frame.
func (r *Renderer) Render(s virtualworld.Snapshot, v virtualworld.Viewport) *Frame {
	f := NewFrame(r.res)
	r.RenderInto(s, v, f)
	return f
}

// RenderInto rasterizes into an existing frame, reusing its pixel buffer:
// zero allocations per frame in steady state. The frame is resized (and
// its buffer regrown) only when the renderer's resolution differs — the
// 30 fps fog streaming loop renders into the same frame every tick.
func (r *Renderer) RenderInto(s virtualworld.Snapshot, v virtualworld.Viewport, f *Frame) {
	if f.Width != r.res.Width || f.Height != r.res.Height || len(f.Pix) != r.res.Width*r.res.Height {
		f.Width, f.Height = r.res.Width, r.res.Height
		if cap(f.Pix) < f.Width*f.Height {
			f.Pix = make([]byte, f.Width*f.Height)
		}
		f.Pix = f.Pix[:f.Width*f.Height]
	}
	f.Tick = s.Tick
	// Background: a screen-space gradient in coarse bands. Keeping it
	// static in screen coordinates mirrors what motion-compensated codecs
	// achieve for panning cameras: successive frames differ mostly where
	// entities moved, which is what the inter-frame compression of the
	// codec (and of LiveRender, which the paper cites) exploits.
	for y := 0; y < f.Height; y++ {
		band := byte(16 + ((y / 16) % 8 * 4))
		row := f.Pix[y*f.Width : (y+1)*f.Width]
		for x := range row {
			row[x] = band
		}
	}
	// Entities, back-to-front by ID for determinism. Culling reuses the
	// renderer's scratch slice so the per-frame loop stays allocation-free.
	r.vis = virtualworld.AppendVisibleEntities(r.vis[:0], s, v)
	for _, e := range r.vis {
		px := int((e.X - (v.CenterX - v.HalfWidth)) / (2 * v.HalfWidth) * float64(f.Width))
		py := int((e.Y - (v.CenterY - v.HalfHeight)) / (2 * v.HalfHeight) * float64(f.Height))
		luma := baseLuma(e)
		// Pose modulation so emotes are visible.
		luma ^= e.State << 2
		for dy := -entityRadiusPx; dy <= entityRadiusPx; dy++ {
			for dx := -entityRadiusPx; dx <= entityRadiusPx; dx++ {
				if dx*dx+dy*dy <= entityRadiusPx*entityRadiusPx {
					f.set(px+dx, py+dy, luma)
				}
			}
		}
	}
}

// ViewHalfWidth and ViewHalfHeight are the fixed viewport half-extents in
// world units. The interest-management layer (fognet AoI) derives its grid
// footprint from the same extents, so the subscribed cells always cover
// what this renderer will draw.
const (
	ViewHalfWidth  = 120.0
	ViewHalfHeight = 90.0
)

// ViewportFor derives a player's viewport from its avatar position in the
// snapshot: a fixed-size window centered on the avatar (or the world
// center when the avatar is absent).
func ViewportFor(s virtualworld.Snapshot, player int) virtualworld.Viewport {
	v := virtualworld.Viewport{
		CenterX: s.Width / 2, CenterY: s.Height / 2,
		HalfWidth: ViewHalfWidth, HalfHeight: ViewHalfHeight,
	}
	for _, e := range s.Entities {
		if e.Kind == virtualworld.KindAvatar && e.Owner == player {
			v.CenterX, v.CenterY = e.X, e.Y
			break
		}
	}
	return v
}
