package render

import (
	"testing"

	"cloudfog/internal/virtualworld"
)

func demoWorld() *virtualworld.World {
	w := virtualworld.New(400, 400)
	w.SpawnAvatar(1, 200, 200)
	w.SpawnAvatar(2, 220, 210)
	w.SpawnNPC(180, 190)
	w.SpawnItem(205, 195)
	return w
}

func TestResolutionForLevel(t *testing.T) {
	tests := []struct {
		level int
		want  Resolution
	}{
		{1, Resolution{288, 216}},
		{2, Resolution{384, 216}},
		{3, Resolution{512, 384}},
		{4, Resolution{720, 486}},
		{5, Resolution{1280, 720}},
		{0, Resolution{288, 216}},
		{9, Resolution{1280, 720}},
	}
	for _, tt := range tests {
		if got := ResolutionForLevel(tt.level); got != tt.want {
			t.Errorf("ResolutionForLevel(%d) = %+v", tt.level, got)
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	w := demoWorld()
	s := w.Snapshot()
	r := NewRenderer(ResolutionForLevel(2))
	v := ViewportFor(s, 1)
	f1 := r.Render(s, v)
	f2 := r.Render(s, v)
	if !f1.Equal(f2) {
		t.Fatal("same snapshot rendered differently")
	}
	if f1.Width != 384 || f1.Height != 216 || len(f1.Pix) != 384*216 {
		t.Fatalf("frame geometry: %+v", f1)
	}
}

func TestRenderShowsEntities(t *testing.T) {
	w := demoWorld()
	s := w.Snapshot()
	r := NewRenderer(ResolutionForLevel(2))
	v := ViewportFor(s, 1)
	withEntities := r.Render(s, v)
	empty := r.Render(virtualworld.Snapshot{Tick: s.Tick, Width: 400, Height: 400}, v)
	if withEntities.Equal(empty) {
		t.Fatal("entities invisible in the frame")
	}
	// The avatar disc must be bright at the frame center.
	c := withEntities.At(withEntities.Width/2, withEntities.Height/2)
	if c < 100 {
		t.Errorf("center luminance %d too dark for an avatar", c)
	}
}

func TestRenderChangesWhenWorldChanges(t *testing.T) {
	w := demoWorld()
	r := NewRenderer(ResolutionForLevel(2))
	s1 := w.Snapshot()
	f1 := r.Render(s1, ViewportFor(s1, 1))
	w.Step([]virtualworld.Action{{Player: 2, Kind: virtualworld.ActMove, TargetX: 300, TargetY: 300}})
	s2 := w.Snapshot()
	f2 := r.Render(s2, ViewportFor(s2, 1))
	if f1.Equal(f2) {
		t.Fatal("world change invisible")
	}
	// The change is local: most pixels should be identical (the premise
	// of inter-frame compression).
	if frac := f1.DiffFraction(f2); frac > 0.2 {
		t.Errorf("diff fraction %v too large for a small move", frac)
	}
}

func TestRenderViewDependent(t *testing.T) {
	w := demoWorld()
	s := w.Snapshot()
	r := NewRenderer(ResolutionForLevel(1))
	f1 := r.Render(s, ViewportFor(s, 1))
	f2 := r.Render(s, ViewportFor(s, 2))
	if f1.Equal(f2) {
		t.Fatal("different viewpoints produced identical frames")
	}
}

func TestViewportForMissingPlayerCentersWorld(t *testing.T) {
	s := virtualworld.Snapshot{Width: 400, Height: 400}
	v := ViewportFor(s, 99)
	if v.CenterX != 200 || v.CenterY != 200 {
		t.Errorf("fallback viewport %+v", v)
	}
}

func TestFrameAtBounds(t *testing.T) {
	f := NewFrame(Resolution{4, 4})
	f.Pix[0] = 9
	if f.At(0, 0) != 9 {
		t.Error("At broken")
	}
	if f.At(-1, 0) != 0 || f.At(0, -1) != 0 || f.At(4, 0) != 0 || f.At(0, 4) != 0 {
		t.Error("out-of-bounds At not zero")
	}
}

func TestDiffFraction(t *testing.T) {
	a := NewFrame(Resolution{2, 2})
	b := NewFrame(Resolution{2, 2})
	if a.DiffFraction(b) != 0 {
		t.Error("identical frames differ")
	}
	b.Pix[0] = 1
	if got := a.DiffFraction(b); got != 0.25 {
		t.Errorf("diff = %v, want 0.25", got)
	}
	c := NewFrame(Resolution{3, 3})
	if a.DiffFraction(c) != 1 {
		t.Error("size mismatch diff != 1")
	}
}

func TestNewRendererDefaults(t *testing.T) {
	r := NewRenderer(Resolution{})
	if r.Resolution() != ResolutionForLevel(3) {
		t.Errorf("default resolution %+v", r.Resolution())
	}
}
