// Fixture: a live-networking package (name outside the simulator set) may
// use wall clocks and timers freely — no diagnostics expected anywhere.
package fognetish

import "time"

func deadline(timeout time.Duration) time.Time {
	return time.Now().Add(timeout)
}

func pace() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	<-t.C
}
