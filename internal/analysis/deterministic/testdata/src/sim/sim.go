// Fixture for the deterministic analyzer: package name "sim" puts it in
// the simulator set, so wall-clock time, global math/rand, and
// map-ordered output must all be flagged.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Positive: wall-clock reads.
func wallClock() float64 {
	start := time.Now() // want `time\.Now in simulator package sim`
	work()
	return float64(time.Since(start)) // want `time\.Since in simulator package sim`
}

// Positive: real timers.
func timers() {
	time.Sleep(time.Millisecond) // want `time\.Sleep in simulator package sim`
}

// Positive: the global math/rand source.
func globalRand() int {
	return rand.Intn(6) // want `global math/rand\.Intn in simulator package sim`
}

// Positive: map iteration order leaking into an output slice.
func unsortedKeys(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want `append to out inside range over map`
	}
	return out
}

// Positive: printing while ranging a map.
func printLoop(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside range over map`
	}
}

// Negative: a seeded private source is deterministic.
func seeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(6)
}

// Negative: collect-then-sort is the blessed pattern.
func sortedKeys(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Negative: order-insensitive reduction over a map.
func sum(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

// Negative: appends to a slice scoped inside the loop body don't outlive
// an iteration.
func perIteration(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// Negative: a documented suppression keeps the wall clock available for
// explicitly opted-in measurement hooks.
func suppressed() time.Time {
	//lint:ignore deterministic fixture demonstrating the suppression convention
	return time.Now()
}

// time.Duration arithmetic and constants are fine.
func work() time.Duration { return 3 * time.Millisecond }
