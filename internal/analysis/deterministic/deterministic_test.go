package deterministic_test

import (
	"testing"

	"cloudfog/internal/analysis/analysistest"
	"cloudfog/internal/analysis/deterministic"
)

func TestDeterministic(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), deterministic.Analyzer, "sim")
}

// TestExemptPackage checks the name gate: the same violations in a
// non-simulator package produce no diagnostics.
func TestExemptPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), deterministic.Analyzer, "fognetish")
}
