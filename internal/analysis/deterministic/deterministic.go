// Package deterministic enforces the simulator's reproducibility
// invariant (DESIGN.md §7): a seeded run must produce byte-identical
// output. Inside the simulator packages — core, fog, sim, experiments,
// selection — it forbids the three classic leaks of nondeterminism:
//
//  1. wall-clock time (time.Now / Since / Sleep / timers),
//  2. the global math/rand source (use the seeded internal/rng streams),
//  3. output whose order inherits map iteration order (appending to an
//     outer slice, or printing, inside a range-over-map without a
//     later sort of that slice in the same function).
//
// Live-networking packages (fognet, faultnet, cmds) are exempt: real I/O
// needs real clocks.
package deterministic

import (
	"go/ast"
	"go/types"

	"cloudfog/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "deterministic",
	Doc:  "forbid wall-clock time, global math/rand, and map-iteration-ordered output in simulator packages",
	Run:  run,
}

// simulatorPkgs are the package *names* the invariant covers. Matching by
// name rather than import path keeps fixtures honest: a testdata package
// named "sim" is checked exactly like internal/sim.
var simulatorPkgs = map[string]bool{
	"core":        true,
	"fog":         true,
	"sim":         true,
	"experiments": true,
	"selection":   true,
	// checkpoint encodes/replays the authoritative world: any wall-clock
	// read or map-order dependence there breaks bit-identical restore.
	"checkpoint": true,
	// The parallel tick pipeline (core/parallel.go) rests its bit-identical
	// guarantee on these: rng supplies the splittable per-shard streams,
	// stats the order-insensitive accumulator/histogram merges, and
	// workload/netmodel the hash-keyed per-player draws the concurrent
	// compute phase is allowed to make.
	"rng":      true,
	"stats":    true,
	"workload": true,
	"netmodel": true,
	// transport is deliberately absent: it is real-I/O code whose deadline
	// and pacing logic legitimately reads the wall clock. Its determinism-
	// critical pieces (Header stamping, RecvTracker ordering) are enforced
	// by epochstamp and the allocfree/phasepure fact walks instead.
}

// wallClockFuncs are the time package functions that read the wall clock
// or real timers.
var wallClockFuncs = map[string]bool{
	"time.Now":       true,
	"time.Since":     true,
	"time.Until":     true,
	"time.Sleep":     true,
	"time.After":     true,
	"time.Tick":      true,
	"time.NewTicker": true,
	"time.NewTimer":  true,
	"time.AfterFunc": true,
}

// randConstructors are math/rand package functions that do NOT touch the
// global source and are therefore allowed (a seeded private source is
// deterministic).
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !simulatorPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapOrder(pass, n.Body)
				}
				return true
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	full := fn.FullName()
	if wallClockFuncs[full] {
		pass.Reportf(call.Pos(),
			"%s in simulator package %s: wall-clock time breaks seeded reproducibility; inject a clock or derive time from the simulated tick", full, pass.Pkg.Name())
		return
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil { // methods on a private *rand.Rand are fine
		return
	}
	if randConstructors[fn.Name()] {
		return
	}
	pass.Reportf(call.Pos(),
		"global %s.%s in simulator package %s: the shared source is unseeded; use the seeded internal/rng streams", path, fn.Name(), pass.Pkg.Name())
}

// checkMapOrder flags range-over-map loops in body whose iteration order
// leaks into output: appends to a slice declared outside the loop that is
// never sorted later in the same function, or direct printing.
func checkMapOrder(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, body, rng)
		return true
	})
}

func checkMapRange(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			target := rootIdentObj(pass, call.Args[0])
			if target == nil {
				return true
			}
			// Only order-sensitive if the slice outlives the loop.
			if target.Pos() > rng.Pos() && target.Pos() < rng.End() {
				return true
			}
			if sortedLater(pass, fnBody, rng, target) {
				return true
			}
			pass.Reportf(call.Pos(),
				"append to %s inside range over map: element order inherits map iteration order; sort %s afterwards or iterate sorted keys", target.Name(), target.Name())
			return true
		}
		if fn := analysis.Callee(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "fmt" && (fn.Name() == "Print" || fn.Name() == "Printf" ||
			fn.Name() == "Println" || fn.Name() == "Fprint" || fn.Name() == "Fprintf" ||
			fn.Name() == "Fprintln") {
			pass.Reportf(call.Pos(),
				"fmt.%s inside range over map: output order inherits map iteration order; iterate sorted keys", fn.Name())
		}
		return true
	})
}

// rootIdentObj resolves the base identifier of e (x, x.f, x[i]) to its
// object.
func rootIdentObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// sortedLater reports whether, after the range loop, the same function
// passes the slice to a sort.* or slices.Sort* call — the canonical
// "collect then sort" pattern.
func sortedLater(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, target types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found || n == nil || n.Pos() < rng.End() {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if rootIdentObj(pass, arg) == target {
				found = true
			}
		}
		return true
	})
	return found
}
