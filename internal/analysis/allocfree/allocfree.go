// Package allocfree turns the repo's runtime AllocsPerRun gates into
// compile-time diagnostics with precise positions (DESIGN.md §16).
//
// A function annotated //cfg:allocfree declares the PR 3/8/9 contract:
// zero heap allocations per call in steady state. The analyzer walks the
// fact call graph from each annotated root and reports every recorded
// allocation construct in any reachable function:
//
//   - calls into known-allocating stdlib (all of fmt, errors.New,
//     strconv/strings/bytes formatting, sort.Slice, json),
//   - make/new and slice/map/&T{} composite literals outside the
//     reuse-or-grow idiom (`if cap(buf) < n { buf = make(...) }` is
//     amortized to zero and exempt),
//   - variable-capturing closures in escaping positions (a closure
//     handed to a callee or goroutine forces its captures to the heap;
//     a non-capturing or invoked-in-place literal is static),
//   - non-pointer-shaped values boxed into interface arguments,
//   - string<->[]byte conversions outside range clauses.
//
// Plain append is never reported: amortized growth against a reused
// buffer is exactly the contract the runtime gates measure, and flagging
// it would outlaw the append-style encoders the wire path is built on.
//
// //cfg:amortized marks a contract boundary the walk does not descend
// into: pool refills, lazy one-time initialization, and keyed-stream
// setup allocate on the cold path by design (newSharedPayload,
// ensureKeyed) while their steady-state cost is zero. The boundary
// function's own annotation is trusted; the AllocsPerRun gates keep it
// honest at runtime.
package allocfree

import (
	"cloudfog/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "functions reachable from //cfg:allocfree roots must not contain allocating constructs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	roots := pass.Facts.WithDirective("allocfree")
	if len(roots) == 0 {
		return nil
	}
	names := make([]string, len(roots))
	for i, r := range roots {
		names[i] = r.Name
	}
	stop := func(ff *analysis.FuncFact) bool { return ff.Directives["amortized"] }
	reached := pass.Facts.Reach(names, stop)
	for name, chain := range reached {
		ff := pass.Facts.Funcs[name]
		if ff == nil {
			continue
		}
		// An amortized boundary reached from a root keeps its cold-path
		// allocations; a function carrying both directives is its own
		// root and is still checked.
		if ff.Directives["amortized"] && !ff.Directives["allocfree"] {
			continue
		}
		for _, site := range ff.Sites {
			if !site.Kind.Alloc() || !pass.LocalPos(site.Pos) {
				continue
			}
			pass.Reportf(site.Pos,
				"allocation on zero-alloc path %s (%s): %s; hoist it off the hot path, reuse a buffer, or mark the callee //cfg:amortized with a reason",
				shortName(name), analysis.FormatChain(chain), site.What)
		}
	}
	return nil
}

func shortName(full string) string { return analysis.ShortFuncName(full) }
