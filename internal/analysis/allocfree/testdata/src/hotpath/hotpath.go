// Package hotpath is a miniature zero-alloc wire path: an annotated send
// root over an append-style encoder, with the allocating constructs the
// analyzer must flag seeded one and two calls below the root.
package hotpath

import "fmt"

type frame struct {
	seq uint64
	buf []byte
}

type sender struct {
	scratch []byte
	sink    func([]byte)
}

// sendFrame is the annotated hot path: the contract is the one the
// AllocsPerRun gates measure, zero allocations in steady state.
//
//cfg:allocfree
func (s *sender) sendFrame(f *frame) {
	if cap(s.scratch) < len(f.buf)+16 {
		s.scratch = make([]byte, 0, 2*len(f.buf)+16) // growth guard: allowed
	}
	s.scratch = appendHeader(s.scratch[:0], f.seq)
	s.scratch = append(s.scratch, f.buf...) // append is always allowed
	s.encode(f)
	s.sink(s.scratch)
}

// appendHeader is the append-style encoder idiom: pure, zero-alloc.
func appendHeader(b []byte, seq uint64) []byte {
	return append(b, byte(seq), byte(seq>>8), byte(seq>>16), byte(seq>>24))
}

// encode sits one call below the root and carries the seeded violations.
func (s *sender) encode(f *frame) {
	trace(f)
	buf := make([]byte, 64) // want `allocation on zero-alloc path.*make outside a cap/len growth guard`
	_ = buf
	tags := []string{"a", "b"} // want `allocation on zero-alloc path.*composite literal`
	_ = tags
	g := &frame{seq: f.seq} // want `allocation on zero-alloc path.*&hotpath.frame`
	_ = g
	s.scratch = refill()
	_ = string(f.buf) // want `allocation on zero-alloc path.*string.*conversion copies`
}

// trace is two calls below the root: the seeded fmt.Sprintf the
// acceptance bar requires, caught through the call graph. The int
// argument is a second, distinct allocation: boxing into fmt's ...any.
func trace(f *frame) {
	_ = fmt.Sprintf("frame %d", f.seq) // want `allocation on zero-alloc path.*fmt.Sprintf call` `allocation on zero-alloc path.*f.seq boxed into interface`
}

// dispatch exercises the closure rules.
//
//cfg:allocfree
func (s *sender) dispatch(f *frame, run func(func())) {
	n := 0
	bump := func() { n++ } // assigned to a local and invoked: static
	bump()
	run(func() { s.sendFrame(f) }) // want `allocation on zero-alloc path.*capturing closure escapes`
	run(stateless)                 // named function value: no capture, no alloc
}

func stateless() {}

// refill is an amortized boundary: reachable from the root via encode,
// but the walk stops here, so the cold-path make is not reported.
//
//cfg:amortized
func refill() []byte {
	return make([]byte, 4096)
}

// coldJoin is not annotated and not reachable from any root: free to
// allocate.
func coldJoin(parts [][]byte) []byte {
	out := make([]byte, 0, 256)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
