package allocfree_test

import (
	"testing"

	"cloudfog/internal/analysis/allocfree"
	"cloudfog/internal/analysis/analysistest"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), allocfree.Analyzer, "hotpath")
}
