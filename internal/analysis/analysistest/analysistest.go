// Package analysistest runs an analyzer over fixture packages under a
// testdata directory and checks its diagnostics against expectations
// written in the fixtures themselves, mirroring
// golang.org/x/tools/go/analysis/analysistest:
//
//	conn.Write(b) // want `Write without a preceding SetWriteDeadline`
//
// Each `// want` comment carries one or more quoted regexes; every
// diagnostic reported on that line must match one of them, and every
// want must be matched by exactly one diagnostic. Fixtures live in
// testdata/src/<pkg>/*.go and may import both the standard library and
// cloudfog packages — the loader type-checks them against real export
// data, so fixture violations exercise the same type-driven matching as
// the production tree.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cloudfog/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	abs, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return abs
}

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run checks analyzer a against every named fixture package under
// testdata/src.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.Shared()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil || len(files) == 0 {
			t.Fatalf("%s: no fixture files in %s", a.Name, dir)
		}
		tp, err := loader.Check(pkg, files)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		wants, err := collectWants(loader.Fset, tp)
		if err != nil {
			t.Fatal(err)
		}
		diags, err := analysis.RunAnalyzers(loader.Fset, tp.Files, tp.Pkg, tp.Info, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			if !consume(wants, pos, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s: %s", a.Name, pos, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none",
					a.Name, w.re, w.file, w.line)
			}
		}
	}
}

func consume(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants extracts every `// want "re"` expectation from the
// fixture's comments.
func collectWants(fset *token.FileSet, tp *analysis.TypedPackage) ([]*want, error) {
	var wants []*want
	for _, f := range tp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				res, err := parseWantPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s: %v", pos, err)
				}
				for _, re := range res {
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// parseWantPatterns splits `"re1" "re2"` (double-quoted or backquoted)
// into compiled regexes.
func parseWantPatterns(s string) ([]*regexp.Regexp, error) {
	var res []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '"':
			end := matchDoubleQuote(s)
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern: %s", s)
			}
			lit = s[:end+1]
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern: %s", s)
			}
			lit = s[:end+2]
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("want patterns must be quoted: %s", s)
		}
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %s: %v", lit, err)
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %s: %v", lit, err)
		}
		res = append(res, re)
		s = strings.TrimSpace(s)
	}
	return res, nil
}

// matchDoubleQuote returns the index of the closing quote of the
// double-quoted literal starting at s[0], honoring backslash escapes.
func matchDoubleQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}
