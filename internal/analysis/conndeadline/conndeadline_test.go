package conndeadline_test

import (
	"testing"

	"cloudfog/internal/analysis/analysistest"
	"cloudfog/internal/analysis/conndeadline"
)

func TestConnDeadline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), conndeadline.Analyzer, "fognet")
}

func TestDatagramConnDeadline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), conndeadline.Analyzer, "transport")
}

func TestExemptPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), conndeadline.Analyzer, "other")
}
