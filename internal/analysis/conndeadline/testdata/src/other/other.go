// Fixture: conn I/O outside the live-networking packages (by package
// name) is out of the invariant's scope — no diagnostics expected.
package other

import "net"

func bareRead(conn net.Conn, buf []byte) (int, error) {
	return conn.Read(buf)
}
