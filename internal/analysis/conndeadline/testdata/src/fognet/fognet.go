// Fixture for the conndeadline analyzer: package name "fognet" puts it
// in the live-networking set.
package fognet

import (
	"bytes"
	"net"
	"time"

	"cloudfog/internal/protocol"
)

// Positive: a bare read blocks forever on a stalled peer.
func bareRead(conn net.Conn, buf []byte) (int, error) {
	return conn.Read(buf) // want `conn\.Read on a net\.Conn without a preceding SetReadDeadline`
}

// Positive: a bare write blocks forever on a full send buffer.
func bareWrite(conn net.Conn, buf []byte) (int, error) {
	return conn.Write(buf) // want `conn\.Write on a net\.Conn without a preceding SetWriteDeadline`
}

// Positive: a read deadline does not bless a write.
func wrongKind(conn net.Conn, buf []byte) (int, error) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
	return conn.Write(buf) // want `conn\.Write on a net\.Conn without a preceding SetWriteDeadline`
}

// Positive: the legacy helpers drive conn I/O just the same.
func legacyHandshake(conn net.Conn) error {
	return protocol.WriteMessage(conn, protocol.MsgBye, nil) // want `WriteMessage drives conn conn without a preceding SetWriteDeadline`
}

// Positive: a deadline set in the enclosing function does not bless a
// spawned closure — it may be cleared before the goroutine runs.
func closureEscapes(conn net.Conn, buf []byte) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
	go func() {
		conn.Read(buf) // want `conn\.Read on a net\.Conn without a preceding SetReadDeadline`
	}()
}

// Negative: deadline then op, the required shape.
func guardedRead(conn net.Conn, buf []byte) (int, error) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
	return conn.Read(buf)
}

// Negative: SetDeadline covers both directions.
func guardedBoth(conn net.Conn, buf []byte) error {
	conn.SetDeadline(time.Now().Add(time.Second))
	if _, err := conn.Write(buf); err != nil {
		return err
	}
	_, err := conn.Read(buf)
	return err
}

// Negative: the legacy helper under a deadline.
func guardedHandshake(conn net.Conn) (protocol.MsgType, []byte, error) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
	return protocol.ReadMessage(conn)
}

// Negative: Read/Write on things that are not conns are out of scope.
func notAConn(buf *bytes.Buffer, p []byte) (int, error) {
	return buf.Read(p)
}

// Negative: a documented, supervised blocking read.
func supervisedLoop(conn net.Conn, buf []byte) error {
	for {
		//lint:ignore conndeadline heartbeat eviction closes conn on liveness failure, unblocking this read
		if _, err := conn.Read(buf); err != nil {
			return err
		}
	}
}
