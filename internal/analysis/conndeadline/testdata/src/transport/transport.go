// Fixture for the conndeadline analyzer: package name "transport" puts
// it in the live-networking set, and its datagram socket methods
// (ReadFromUDPAddrPort/WriteToUDPAddrPort) are I/O operations needing a
// deadline just like stream reads and writes.
package transport

import (
	"net"
	"net/netip"
	"time"
)

// Positive: a bare datagram read blocks forever on a silent peer.
func bareDgramRead(pc *net.UDPConn, buf []byte) (int, netip.AddrPort, error) {
	return pc.ReadFromUDPAddrPort(buf) // want `pc\.ReadFromUDPAddrPort on a datagram socket without a preceding SetReadDeadline`
}

// Positive: a bare datagram write can block on a full socket buffer.
func bareDgramWrite(pc *net.UDPConn, buf []byte, addr netip.AddrPort) (int, error) {
	return pc.WriteToUDPAddrPort(buf, addr) // want `pc\.WriteToUDPAddrPort on a datagram socket without a preceding SetWriteDeadline`
}

// Positive: a read deadline does not bless a write.
func wrongDgramKind(pc *net.UDPConn, buf []byte, addr netip.AddrPort) (int, error) {
	pc.SetReadDeadline(time.Now().Add(time.Second))
	return pc.WriteToUDPAddrPort(buf, addr) // want `pc\.WriteToUDPAddrPort on a datagram socket without a preceding SetWriteDeadline`
}

// Negative: deadline then op, the required shape.
func guardedDgramRead(pc *net.UDPConn, buf []byte) (int, netip.AddrPort, error) {
	pc.SetReadDeadline(time.Now().Add(time.Second))
	return pc.ReadFromUDPAddrPort(buf)
}

// Negative: SetDeadline covers both directions.
func guardedDgramBoth(pc *net.UDPConn, buf []byte, addr netip.AddrPort) error {
	pc.SetDeadline(time.Now().Add(time.Second))
	if _, err := pc.WriteToUDPAddrPort(buf, addr); err != nil {
		return err
	}
	_, _, err := pc.ReadFromUDPAddrPort(buf)
	return err
}

// Negative: a documented, supervised blocking read.
func supervisedDgramLoop(pc *net.UDPConn, buf []byte) error {
	for {
		//lint:ignore conndeadline hello receive loop: close unblocks the read
		if _, _, err := pc.ReadFromUDPAddrPort(buf); err != nil {
			return err
		}
	}
}
