// Package conndeadline enforces the failover-critical I/O rule from the
// fault-tolerant fognet work (DESIGN.md §8): in the live-networking
// packages (fognet, faultnet, transport), every Read or Write on a
// net.Conn — every legacy protocol.ReadMessage/WriteMessage call that
// drives one, and every ReadFromUDPAddrPort/WriteToUDPAddrPort on a
// datagram socket (transport.DatagramConn) — must be preceded, in the
// same function literal, by a matching
// SetReadDeadline/SetWriteDeadline/SetDeadline on the same connection
// expression. A conn without a deadline turns one stalled peer into a
// permanently wedged goroutine, which is exactly the churn §3.2 says the
// system must survive.
//
// Deliberately blocking reads (a supervised loop whose liveness is
// guaranteed by another mechanism, or a pass-through wrapper that
// mirrors its caller's deadlines) are documented at the call site with
// //lint:ignore conndeadline <why>.
package conndeadline

import (
	"go/ast"
	"go/token"
	"go/types"

	"cloudfog/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "conndeadline",
	Doc:  "net.Conn and datagram-socket I/O in fognet, faultnet, and transport needs a deadline set in the same function",
	Run:  run,
}

// livePkgs are the package names carrying real network I/O.
var livePkgs = map[string]bool{"fognet": true, "faultnet": true, "transport": true}

// ioKind distinguishes which deadline blesses an operation.
type ioKind int

const (
	readOp ioKind = iota
	writeOp
	bothOps
)

// wireFuncs maps legacy protocol helpers that perform conn I/O through an
// argument to the kind of deadline they need.
var wireFuncs = map[string]ioKind{
	"cloudfog/internal/protocol.ReadMessage":     readOp,
	"cloudfog/internal/protocol.ReadMessageInto": readOp,
	"cloudfog/internal/protocol.WriteMessage":    writeOp,
}

func run(pass *analysis.Pass) error {
	if !livePkgs[pass.Pkg.Name()] {
		return nil
	}
	netPkg := analysis.ImportedPkg(pass.Pkg, "net")
	if netPkg == nil {
		return nil // no net import anywhere: no conns to check
	}
	connObj := netPkg.Scope().Lookup("Conn")
	if connObj == nil {
		return nil
	}
	connIface, ok := connObj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	c := &checker{pass: pass, connIface: connIface}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.checkFunc(n.Body)
				}
			case *ast.FuncLit:
				c.checkFunc(n.Body)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass      *analysis.Pass
	connIface *types.Interface
}

// blessing is one deadline-setting call observed in a function.
type blessing struct {
	expr string // rendered connection expression
	kind ioKind
	pos  token.Pos
}

// checkFunc scans one function literal: deadline sets bless only I/O that
// follows them within the same literal (a deadline set by an enclosing
// function may be long cleared by the time a spawned closure runs).
func (c *checker) checkFunc(body *ast.BlockStmt) {
	var blessings []blessing
	var inspect func(n ast.Node) bool
	collect := func(call *ast.CallExpr) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		var kind ioKind
		switch sel.Sel.Name {
		case "SetReadDeadline":
			kind = readOp
		case "SetWriteDeadline":
			kind = writeOp
		case "SetDeadline":
			kind = bothOps
		default:
			return
		}
		if _, isMethod := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isMethod {
			return
		}
		blessings = append(blessings, blessing{expr: types.ExprString(sel.X), kind: kind, pos: call.Pos()})
	}
	inspect = func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			collect(call)
		}
		return true
	}
	ast.Inspect(body, inspect)

	blessed := func(expr string, kind ioKind, pos token.Pos) bool {
		for _, b := range blessings {
			if b.pos < pos && b.expr == expr && (b.kind == bothOps || b.kind == kind) {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Datagram socket I/O (transport.DatagramConn and everything that
		// satisfies it, *net.UDPConn included). The method names are
		// unambiguous, so no interface check is needed — anything exposing
		// them is a datagram socket.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "ReadFromUDPAddrPort" || sel.Sel.Name == "WriteToUDPAddrPort") {
			if _, isMethod := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); isMethod {
				kind, deadline := readOp, "SetReadDeadline"
				if sel.Sel.Name == "WriteToUDPAddrPort" {
					kind, deadline = writeOp, "SetWriteDeadline"
				}
				expr := types.ExprString(sel.X)
				if !blessed(expr, kind, call.Pos()) {
					c.pass.Reportf(call.Pos(),
						"%s.%s on a datagram socket without a preceding %s/SetDeadline in this function: a stalled peer wedges this goroutine; set a deadline or document the blocking call with //lint:ignore conndeadline <why>",
						expr, sel.Sel.Name, deadline)
				}
			}
			return true
		}
		// Direct conn.Read / conn.Write method calls.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Read" || sel.Sel.Name == "Write") {
			if _, isMethod := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); isMethod && c.isConn(sel.X) {
				kind, deadline := readOp, "SetReadDeadline"
				if sel.Sel.Name == "Write" {
					kind, deadline = writeOp, "SetWriteDeadline"
				}
				expr := types.ExprString(sel.X)
				if !blessed(expr, kind, call.Pos()) {
					c.pass.Reportf(call.Pos(),
						"%s.%s on a net.Conn without a preceding %s/SetDeadline in this function: a stalled peer wedges this goroutine; set a deadline or document the blocking call with //lint:ignore conndeadline <why>",
						expr, sel.Sel.Name, deadline)
				}
			}
			return true
		}
		// Legacy protocol helpers reading/writing through a conn argument.
		if kind, ok := wireFuncs[analysis.FullName(c.pass.TypesInfo, call)]; ok {
			for _, arg := range call.Args {
				if !c.isConn(arg) {
					continue
				}
				expr := types.ExprString(arg)
				deadline := "SetReadDeadline"
				if kind == writeOp {
					deadline = "SetWriteDeadline"
				}
				if !blessed(expr, kind, call.Pos()) {
					c.pass.Reportf(call.Pos(),
						"%s drives conn %s without a preceding %s/SetDeadline in this function; set a deadline or document the blocking call with //lint:ignore conndeadline <why>",
						analysis.Callee(c.pass.TypesInfo, call).Name(), expr, deadline)
				}
				break
			}
		}
		return true
	})
}

// isConn reports whether e's static type implements net.Conn.
func (c *checker) isConn(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if types.Implements(t, c.connIface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		if types.Implements(types.NewPointer(t), c.connIface) {
			return true
		}
	}
	return false
}
