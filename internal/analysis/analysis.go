// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time and reports Diagnostics. The repo's
// invariant checkers (cmd/cloudfoglint) are built on it because the
// toolchain image carries only the standard library.
//
// The shape mirrors x/tools deliberately — Name/Doc/Run, a Pass with
// Fset/Files/Pkg/TypesInfo and a Report callback — so the analyzers port
// to the real framework unchanged if x/tools ever becomes available.
//
// Suppression: a diagnostic is dropped by the driver when the offending
// line, or the line directly above it, carries a comment of the form
//
//	//lint:ignore <analyzer-name> <reason>
//
// The reason is mandatory; a bare ignore keeps the diagnostic. Diagnostics
// in _test.go files are dropped unconditionally — the invariants guard
// production code paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package via pass and reports violations.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic. Positions must be valid.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver
}

// Callee resolves the *types.Func called by call, or nil when the callee
// is not a statically known function or method (e.g. a call through a
// function-typed variable).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// FullName returns the fully qualified name of the function called by
// call ("path/to/pkg.Func" or "(*path/to/pkg.T).Method"), or "".
func FullName(info *types.Info, call *ast.CallExpr) string {
	if f := Callee(info, call); f != nil {
		return f.FullName()
	}
	return ""
}

// ImportedPkg walks the import graph of pkg and returns the package with
// the given path, or nil. Used to fetch well-known types (net.Conn)
// without a second load.
func ImportedPkg(pkg *types.Package, path string) *types.Package {
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == path {
			return p
		}
		for _, imp := range p.Imports() {
			if got := walk(imp); got != nil {
				return got
			}
		}
		return nil
	}
	return walk(pkg)
}

// ignoreRe matches the suppression comment form. The reason group must be
// non-empty for the suppression to take effect.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s+(\S.*)$`)

// suppressions maps file -> line -> set of analyzer names ignored there.
type suppressions map[string]map[int]map[string]bool

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					sup[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					lines[pos.Line] = names
				}
				names[m[1]] = true
			}
		}
	}
	return sup
}

func (s suppressions) covers(pos token.Position, analyzer string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if names := lines[line]; names != nil && (names[analyzer] || names["cloudfoglint"]) {
			return true
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to one type-checked package and
// returns the surviving diagnostics (suppressions applied, _test.go files
// dropped), sorted by position.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := collectSuppressions(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if strings.HasSuffix(pos.Filename, "_test.go") {
				return
			}
			if sup.covers(pos, name) {
				return
			}
			d.Analyzer = name
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
