// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time and reports Diagnostics. The repo's
// invariant checkers (cmd/cloudfoglint) are built on it because the
// toolchain image carries only the standard library.
//
// The shape mirrors x/tools deliberately — Name/Doc/Run, a Pass with
// Fset/Files/Pkg/TypesInfo and a Report callback — so the analyzers port
// to the real framework unchanged if x/tools ever becomes available.
//
// Suppression: a diagnostic is dropped by the driver when the offending
// line, or the line directly above it, carries a comment of the form
//
//	//lint:ignore <analyzer-name> <reason>
//
// The reason is mandatory; a bare ignore keeps the diagnostic. Diagnostics
// in _test.go files are dropped unconditionally — the invariants guard
// production code paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package via pass and reports violations.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the merged per-function fact index. In standalone runs
	// (make lint) it spans every loaded package, so interprocedural
	// analyzers see the whole call graph; in vet-tool and fixture runs it
	// covers the current package only (the vet protocol hands us one
	// compilation unit at a time — documented in DESIGN.md §16).
	Facts *Facts

	// Report records one diagnostic. Positions must be valid.
	Report func(Diagnostic)
}

// LocalPos reports whether pos lies inside one of the pass's own files.
// Interprocedural analyzers run once per package but walk a module-wide
// call graph; restricting reports to local positions keeps each
// diagnostic attributed to exactly one pass (and thus suppressible by a
// comment in the file that owns it).
func (p *Pass) LocalPos(pos token.Pos) bool {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return true
		}
	}
	return false
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver
}

// Callee resolves the *types.Func called by call, or nil when the callee
// is not a statically known function or method (e.g. a call through a
// function-typed variable).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// FullName returns the fully qualified name of the function called by
// call ("path/to/pkg.Func" or "(*path/to/pkg.T).Method"), or "".
func FullName(info *types.Info, call *ast.CallExpr) string {
	if f := Callee(info, call); f != nil {
		return f.FullName()
	}
	return ""
}

// ImportedPkg walks the import graph of pkg and returns the package with
// the given path, or nil. Used to fetch well-known types (net.Conn)
// without a second load.
func ImportedPkg(pkg *types.Package, path string) *types.Package {
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == path {
			return p
		}
		for _, imp := range p.Imports() {
			if got := walk(imp); got != nil {
				return got
			}
		}
		return nil
	}
	return walk(pkg)
}

// ignoreRe matches the suppression comment form. The reason group must be
// non-empty for the suppression to take effect.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s+(\S.*)$`)

// ignoreEntry is one //lint:ignore directive, with usage tracking for the
// unused-suppression audit.
type ignoreEntry struct {
	analyzer string
	pos      token.Pos
	used     bool
}

// suppressions maps file -> line -> directives on that line.
type suppressions map[string]map[int][]*ignoreEntry

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*ignoreEntry)
					sup[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line],
					&ignoreEntry{analyzer: m[1], pos: c.Pos()})
			}
		}
	}
	return sup
}

func (s suppressions) covers(pos token.Position, analyzer string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, e := range lines[line] {
			if e.analyzer == analyzer || e.analyzer == "cloudfoglint" {
				e.used = true
				hit = true
			}
		}
	}
	return hit
}

// auditUnused reports every directive that suppressed nothing during the
// run, provided its named analyzer was actually in the run set — an
// ignore for an analyzer that didn't run may be load-bearing in a fuller
// run, so it is left alone. Directives in _test.go files are skipped (the
// driver never reports there, so an ignore is inert by construction).
func (s suppressions) auditUnused(fset *token.FileSet, ranNames map[string]bool, report func(Diagnostic)) {
	for file, lines := range s {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		for _, entries := range lines {
			for _, e := range entries {
				if e.used || (!ranNames[e.analyzer] && e.analyzer != "cloudfoglint") {
					continue
				}
				report(Diagnostic{
					Pos:      e.pos,
					Analyzer: "unusedignore",
					Message: fmt.Sprintf(
						"unused //lint:ignore %s: no %s diagnostic is suppressed here; delete the directive",
						e.analyzer, e.analyzer),
				})
			}
		}
	}
}

// RunConfig tunes one RunAnalyzersWith invocation.
type RunConfig struct {
	// Facts is the fact index handed to analyzers. When nil, a
	// package-local index is computed from the pass's own files.
	Facts *Facts
	// AuditIgnores enables the unused-suppression audit. Only meaningful
	// when the full registry runs with module-wide facts — a partial run
	// fires fewer diagnostics, so its unused-ignore signal is noise.
	AuditIgnores bool
}

// RunAnalyzers applies every analyzer to one type-checked package and
// returns the surviving diagnostics (suppressions applied, _test.go files
// dropped), sorted by position. Facts are computed package-locally; the
// module-wide drivers use RunAnalyzersWith.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAnalyzersWith(fset, files, pkg, info, analyzers, RunConfig{})
}

// RunAnalyzersWith is RunAnalyzers with an explicit fact index and audit
// switch.
func RunAnalyzersWith(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, cfg RunConfig) ([]Diagnostic, error) {
	facts := cfg.Facts
	if facts == nil {
		facts = NewFacts()
		ComputeFacts(fset, files, pkg, info, facts)
	}
	sup := collectSuppressions(fset, files)
	var out []Diagnostic
	ranNames := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ranNames[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Facts:     facts,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if strings.HasSuffix(pos.Filename, "_test.go") {
				return
			}
			if sup.covers(pos, name) {
				return
			}
			d.Analyzer = name
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
		}
	}
	if cfg.AuditIgnores {
		sup.auditUnused(fset, ranNames, func(d Diagnostic) { out = append(out, d) })
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
