// Per-package exported facts: a lightweight call-graph and construct
// summary computed once per load and shared by every analyzer that needs
// to reason across function (and package) boundaries. This is the
// dependency-free stand-in for x/tools' analysis facts: instead of
// serialized per-object payloads, the driver computes one FuncFact per
// declared function over every package it loads and hands analyzers the
// merged index via Pass.Facts.
//
// A FuncFact records the function's //cfg: directives, its statically
// resolved callees, and the positions of every construct the downstream
// analyzers care about — global-variable writes, lock acquisitions,
// goroutine/channel use, wall-clock and global-rand reads, map-iteration-
// ordered output, rng streams reached through the receiver or a global,
// and allocating constructs (with the cap/len growth-guard idiom
// exempted). Interprocedural analyzers (phasepure, allocfree) walk the
// call graph with Facts.Reach and report the recorded sites with the call
// chain that makes them reachable.
//
// Directives are comment lines of the form
//
//	//cfg:<name>
//
// in a function's doc comment: computephase and allocfree mark analysis
// roots, applyphase and amortized mark contract boundaries, epochcheck
// blesses discard-rule validators (see the analyzer docs).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// SiteKind classifies one construct recorded in a FuncFact.
type SiteKind int

const (
	// SiteGlobalWrite is an assignment, inc/dec, or address-take whose
	// target roots at a package-level variable.
	SiteGlobalWrite SiteKind = iota
	// SiteLock is a mutex Lock/RLock acquisition.
	SiteLock
	// SiteGo is a go statement.
	SiteGo
	// SiteChan is a channel send, receive, or select.
	SiteChan
	// SiteWallClock is a wall-clock or timer read (time.Now & friends).
	SiteWallClock
	// SiteGlobalRand is a draw from the global math/rand source.
	SiteGlobalRand
	// SiteMapOrdered is output assembled in map-iteration order (append
	// to an outer slice, never sorted later, or printing inside the range).
	SiteMapOrdered
	// SiteForeignRNG is an rng.Rand method call whose receiver roots at
	// the enclosing method's receiver or a package-level variable — a
	// stream whose consumption order depends on scheduling, not on the
	// caller-threaded per-shard stream.
	SiteForeignRNG
	// SiteFuncValueCall is a call through a function-typed value: the
	// callee is invisible to the call graph.
	SiteFuncValueCall
	// SiteAllocCall is a call into a known-allocating stdlib function
	// (fmt, errors, strconv formatting, sort.Slice, ...).
	SiteAllocCall
	// SiteAllocMake is a make/new outside a cap/len growth guard.
	SiteAllocMake
	// SiteAllocLit is a slice/map composite literal or &T{} pointer
	// literal outside a growth guard.
	SiteAllocLit
	// SiteAllocClosure is a variable-capturing closure in an escaping
	// position (call argument, return, field, channel).
	SiteAllocClosure
	// SiteAllocBox is a non-pointer-shaped concrete value converted to an
	// interface (boxing may heap-allocate the value).
	SiteAllocBox
	// SiteAllocConv is a string<->[]byte/[]rune conversion outside a
	// range clause.
	SiteAllocConv
)

// AllocKinds reports whether k is one of the allocation site kinds.
func (k SiteKind) Alloc() bool {
	switch k {
	case SiteAllocCall, SiteAllocMake, SiteAllocLit, SiteAllocClosure, SiteAllocBox, SiteAllocConv:
		return true
	}
	return false
}

// Site is one recorded construct.
type Site struct {
	Kind SiteKind
	Pos  token.Pos
	// What is a short human-readable description of the construct,
	// interpolated into diagnostics ("fmt.Sprintf call", "write to
	// package variable tickCount").
	What string
}

// CallFact is one statically resolved call site.
type CallFact struct {
	// Name is the callee's fully qualified name
	// ("pkg.Func" / "(*pkg.T).Method"); interface methods resolve to the
	// interface's method and therefore match no FuncFact.
	Name string
	Pos  token.Pos
}

// FuncFact is the exported summary of one declared function.
type FuncFact struct {
	// Name is the function's fully qualified name.
	Name string
	// Pos is the declaration position.
	Pos token.Pos
	// Directives holds the //cfg:<name> markers from the doc comment.
	Directives map[string]bool
	// Calls lists the statically resolved call sites in source order.
	Calls []CallFact
	// Sites lists the recorded constructs in source order.
	Sites []Site
}

// Facts is the merged per-function fact index over every loaded package.
type Facts struct {
	Funcs map[string]*FuncFact
}

// NewFacts returns an empty index.
func NewFacts() *Facts { return &Facts{Funcs: make(map[string]*FuncFact)} }

// WithDirective returns every function carrying the named //cfg:
// directive, sorted by name for deterministic traversal order.
func (f *Facts) WithDirective(name string) []*FuncFact {
	var out []*FuncFact
	for _, ff := range f.Funcs {
		if ff.Directives[name] {
			out = append(out, ff)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reach walks the static call graph from the named roots and returns, for
// every reachable function with a fact, the call chain that reaches it
// (root first, the function itself last). Traversal does not descend into
// functions where stop returns true — they are still present in the
// result (the contract boundary is reachable; its internals are not).
// Breadth-first with sorted expansion, so chains are minimal and
// deterministic.
func (f *Facts) Reach(roots []string, stop func(*FuncFact) bool) map[string][]string {
	parent := make(map[string]string)
	reached := make(map[string][]string)
	queue := append([]string(nil), roots...)
	sort.Strings(queue)
	for _, r := range queue {
		parent[r] = ""
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		ff := f.Funcs[name]
		if ff == nil {
			continue // stdlib or interface method: no summary, no descent
		}
		// Reconstruct the chain lazily from parent links.
		var chain []string
		for n := name; n != ""; n = parent[n] {
			chain = append(chain, n)
		}
		for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
			chain[i], chain[j] = chain[j], chain[i]
		}
		reached[name] = chain
		if stop != nil && stop(ff) && len(chain) > 1 {
			continue
		}
		next := make([]string, 0, len(ff.Calls))
		for _, c := range ff.Calls {
			if _, seen := parent[c.Name]; seen {
				continue
			}
			parent[c.Name] = name
			next = append(next, c.Name)
		}
		sort.Strings(next)
		queue = append(queue, next...)
	}
	return reached
}

var directiveRe = regexp.MustCompile(`^//cfg:(\w+)\s*$`)

// Directives extracts //cfg: markers from a doc comment. Exported for
// analyzers that consult annotations directly from the AST (epochstamp's
// //cfg:epochcheck blessing) rather than through the fact index.
func Directives(doc *ast.CommentGroup) map[string]bool { return funcDirectives(doc) }

// funcDirectives extracts //cfg: markers from a doc comment.
func funcDirectives(doc *ast.CommentGroup) map[string]bool {
	if doc == nil {
		return nil
	}
	var dirs map[string]bool
	for _, c := range doc.List {
		if m := directiveRe.FindStringSubmatch(strings.TrimSpace(c.Text)); m != nil {
			if dirs == nil {
				dirs = make(map[string]bool)
			}
			dirs[m[1]] = true
		}
	}
	return dirs
}

// wallClockFullNames are the time-package reads of real clocks/timers.
var wallClockFullNames = map[string]bool{
	"time.Now": true, "time.Since": true, "time.Until": true,
	"time.Sleep": true, "time.After": true, "time.Tick": true,
	"time.NewTicker": true, "time.NewTimer": true, "time.AfterFunc": true,
}

// allocStdlib are stdlib calls that allocate on every invocation. The
// list is deliberately short and high-signal: formatting, error
// construction, string building, and the reflective sorts. Append-style
// stdlib helpers are excluded — amortized growth is the hot paths'
// contract, checked at runtime by the AllocsPerRun gates.
var allocStdlib = map[string]bool{
	"errors.New": true, "errors.Join": true,
	"strconv.Itoa": true, "strconv.FormatInt": true, "strconv.FormatUint": true,
	"strconv.FormatFloat": true, "strconv.Quote": true,
	"strings.Join": true, "strings.Repeat": true, "strings.Replace": true,
	"strings.ReplaceAll": true, "strings.Split": true, "strings.SplitN": true,
	"strings.Fields": true, "strings.ToUpper": true, "strings.ToLower": true,
	"strings.Clone": true, "(*strings.Builder).String": true,
	"bytes.Join": true, "bytes.Repeat": true, "bytes.Clone": true,
	"(*bytes.Buffer).String": true, "bytes.NewBuffer": true, "bytes.NewBufferString": true,
	"sort.Slice": true, "sort.SliceStable": true,
	"encoding/json.Marshal": true, "encoding/json.Unmarshal": true,
	"net.JoinHostPort": true, "(time.Time).Format": true, "(time.Time).String": true,
}

// randGlobalConstructors are math/rand functions that do not touch the
// shared source (mirrors the deterministic analyzer's allowance).
var randGlobalConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// ComputeFacts summarizes every function declared in the package and
// merges the results into idx.
func ComputeFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, idx *Facts) {
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			ff := &FuncFact{
				Name:       obj.FullName(),
				Pos:        fd.Pos(),
				Directives: funcDirectives(fd.Doc),
			}
			fw := &factWalker{fset: fset, info: info, pkg: pkg, fact: ff, fn: fd}
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				fw.recv = info.Defs[fd.Recv.List[0].Names[0]]
			}
			fw.walkBody(fd.Body)
			// _test.go files carry no facts: the invariants guard
			// production paths only.
			if strings.HasSuffix(fset.Position(fd.Pos()).Filename, "_test.go") {
				continue
			}
			idx.Funcs[ff.Name] = ff
		}
	}
}

// factWalker is the per-function traversal state.
type factWalker struct {
	fset  *token.FileSet
	info  *types.Info
	pkg   *types.Package
	fact  *FuncFact
	fn    *ast.FuncDecl
	recv  types.Object // method receiver, nil for plain functions
	stack []ast.Node
}

func (w *factWalker) site(kind SiteKind, pos token.Pos, what string) {
	// A panicking path is not steady state: allocations building the panic
	// value (fmt.Sprintf in the message, boxing into panic's any) never
	// run on the zero-alloc path the gates measure.
	if kind.Alloc() && w.inPanic() {
		return
	}
	w.fact.Sites = append(w.fact.Sites, Site{Kind: kind, Pos: pos, What: what})
}

// inPanic reports whether the current node is an argument of a builtin
// panic call.
func (w *factWalker) inPanic() bool {
	for _, n := range w.stack {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if _, isBuiltin := w.info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
	}
	return false
}

func (w *factWalker) walkBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			w.stack = w.stack[:len(w.stack)-1]
			return true
		}
		w.stack = append(w.stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			w.call(n)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				w.checkGlobalWrite(lhs)
			}
		case *ast.IncDecStmt:
			w.checkGlobalWrite(n.X)
		case *ast.UnaryExpr:
			switch n.Op {
			case token.AND:
				w.checkGlobalWrite(n.X)
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && !w.guarded() {
					w.site(SiteAllocLit, n.Pos(), "&"+typeLabel(w.info, cl)+"{} literal")
				}
			case token.ARROW:
				w.site(SiteChan, n.Pos(), "channel receive")
			}
		case *ast.GoStmt:
			w.site(SiteGo, n.Pos(), "go statement")
		case *ast.SendStmt:
			w.site(SiteChan, n.Pos(), "channel send")
		case *ast.SelectStmt:
			w.site(SiteChan, n.Pos(), "select statement")
		case *ast.RangeStmt:
			w.checkMapRange(n)
		case *ast.CompositeLit:
			w.compositeLit(n)
		case *ast.FuncLit:
			w.funcLit(n)
		}
		return true
	})
}

// parent returns the n-th enclosing node (1 = direct parent of the node
// currently being visited).
func (w *factWalker) parent(n int) ast.Node {
	if len(w.stack) <= n {
		return nil
	}
	return w.stack[len(w.stack)-1-n]
}

// guarded reports whether the current node sits inside an if statement
// whose condition consults cap() or len() — the reuse-or-grow idiom
// (`if cap(buf) < n { buf = make(...) }`) whose allocations are amortized
// to zero in steady state and therefore not alloc sites.
func (w *factWalker) guarded() bool {
	for _, n := range w.stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func (w *factWalker) call(call *ast.CallExpr) {
	// Type conversions parse as calls: string <-> []byte/[]rune copies.
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		w.checkConversion(call, tv.Type)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, ok := w.info.Uses[id].(*types.Builtin); ok {
			if (obj.Name() == "make" || obj.Name() == "new") && !w.guarded() {
				w.site(SiteAllocMake, call.Pos(), obj.Name()+" outside a cap/len growth guard")
			}
			return
		}
	}
	fn := Callee(w.info, call)
	if fn == nil {
		// A call through a function-typed value (not a method, not a
		// builtin): opaque to the call graph.
		if !isTypeExprCall(w.info, call) {
			w.site(SiteFuncValueCall, call.Pos(), "call through function value "+types.ExprString(call.Fun))
		}
		return
	}
	if orig := fn.Origin(); orig != nil {
		fn = orig
	}
	full := fn.FullName()
	w.fact.Calls = append(w.fact.Calls, CallFact{Name: full, Pos: call.Pos()})
	w.checkBoxing(call, fn)
	switch {
	case wallClockFullNames[full]:
		w.site(SiteWallClock, call.Pos(), full+" wall-clock read")
	case allocStdlib[full]:
		w.site(SiteAllocCall, call.Pos(), full+" call")
	}
	if fn.Pkg() != nil {
		switch p := fn.Pkg().Path(); {
		case p == "fmt":
			w.site(SiteAllocCall, call.Pos(), "fmt."+fn.Name()+" call")
		case (p == "math/rand" || p == "math/rand/v2") && signatureRecv(fn) == nil && !randGlobalConstructors[fn.Name()]:
			w.site(SiteGlobalRand, call.Pos(), p+"."+fn.Name()+" draw from the global source")
		}
	}
	w.checkLock(call, fn)
	w.checkRNGReceiver(call, fn)
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func signatureRecv(fn *types.Func) *types.Var {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	return sig.Recv()
}

func isTypeExprCall(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// checkLock records Lock/RLock acquisitions (releases are irrelevant to
// the phase contract: acquiring at all is the signal).
func (w *factWalker) checkLock(call *ast.CallExpr, fn *types.Func) {
	if fn.Name() != "Lock" && fn.Name() != "RLock" {
		return
	}
	recv := signatureRecv(fn)
	if recv == nil {
		return
	}
	if named, ok := deref(recv.Type()).(*types.Named); ok {
		if p := named.Obj().Pkg(); p != nil && p.Path() == "sync" {
			w.site(SiteLock, call.Pos(), fn.Name()+" of "+types.ExprString(call.Fun))
		}
	}
}

// checkRNGReceiver flags rng.Rand draws whose stream roots at the
// enclosing method's receiver or at a package-level variable: such a
// stream is shared mutable state, and its consumption order depends on
// who else draws from it.
func (w *factWalker) checkRNGReceiver(call *ast.CallExpr, fn *types.Func) {
	recv := signatureRecv(fn)
	if recv == nil {
		return
	}
	named, ok := deref(recv.Type()).(*types.Named)
	if !ok || named.Obj().Name() != "Rand" {
		return
	}
	if p := named.Obj().Pkg(); p == nil || !strings.HasSuffix(p.Path(), "internal/rng") {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	root := rootObj(w.info, sel.X)
	if root == nil {
		return
	}
	if root == w.recv {
		w.site(SiteForeignRNG, call.Pos(), "rng draw via receiver stream "+types.ExprString(sel.X))
	} else if v, ok := root.(*types.Var); ok && v.Parent() == w.pkg.Scope() {
		w.site(SiteForeignRNG, call.Pos(), "rng draw via package-level stream "+types.ExprString(sel.X))
	}
}

// checkBoxing flags call arguments where a non-pointer-shaped concrete
// value meets an interface parameter: the conversion may heap-allocate.
// Pointer, channel, map, and function values are pointer-shaped and box
// for free; nil and untyped constants are exempt.
func (w *factWalker) checkBoxing(call *ast.CallExpr, fn *types.Func) {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		// A type parameter's underlying is its constraint interface, but a
		// generic call instantiates — the argument passes concretely,
		// without boxing (slices.SortFunc's S ~[]E takes the slice as-is).
		if _, isTypeParam := pt.(*types.TypeParam); isTypeParam {
			continue
		}
		at := w.info.Types[arg]
		if at.Type == nil || at.IsNil() || at.Value != nil {
			continue
		}
		if types.IsInterface(at.Type) || pointerShaped(at.Type) {
			continue
		}
		w.site(SiteAllocBox, arg.Pos(), types.ExprString(arg)+" boxed into interface "+pt.String())
	}
}

func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Basic:
		// Basic: unsafe.Pointer only; other basics fall through below.
		b, ok := t.Underlying().(*types.Basic)
		return !ok || b.Kind() == types.UnsafePointer
	}
	return false
}

func (w *factWalker) checkConversion(call *ast.CallExpr, to types.Type) {
	from := w.info.Types[call.Args[0]].Type
	if from == nil {
		return
	}
	if !stringByteConv(from, to) {
		return
	}
	// `for range []byte(s)` compiles without a copy.
	if r, ok := w.parent(1).(*ast.RangeStmt); ok && ast.Unparen(r.X) == call {
		return
	}
	w.site(SiteAllocConv, call.Pos(), types.ExprString(call.Fun)+" conversion copies")
}

func stringByteConv(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(from) && isBytes(to)) || (isBytes(from) && isStr(to))
}

func (w *factWalker) compositeLit(cl *ast.CompositeLit) {
	tv, ok := w.info.Types[cl]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
	default:
		return // value struct/array literals live on the stack
	}
	// An element of an enclosing slice/map literal is covered by the
	// outer site; &T{} is recorded at the UnaryExpr.
	switch p := w.parent(1).(type) {
	case *ast.CompositeLit:
		return
	case *ast.KeyValueExpr:
		if _, ok := w.parent(2).(*ast.CompositeLit); ok {
			_ = p
			return
		}
	}
	if w.guarded() {
		return
	}
	w.site(SiteAllocLit, cl.Pos(), typeLabel(w.info, cl)+" composite literal")
}

func typeLabel(info *types.Info, e ast.Expr) string {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		s := tv.Type.String()
		if i := strings.LastIndexByte(s, '/'); i >= 0 && !strings.ContainsAny(s[i:], "]{}") {
			s = s[i+1:]
		}
		return s
	}
	return "composite"
}

// funcLit records a capturing closure in an escaping position. A closure
// assigned to a local and invoked in place compiles without allocation;
// one handed to a callee, returned, stored, or sent forces its captures
// onto the heap.
func (w *factWalker) funcLit(lit *ast.FuncLit) {
	if !w.captures(lit) {
		return
	}
	escaping := false
	switch p := w.parent(1).(type) {
	case *ast.CallExpr:
		if p.Fun == lit {
			// Invoked in place compiles static — unless it is a goroutine
			// body, which always escapes.
			_, escaping = w.parent(2).(*ast.GoStmt)
		} else {
			escaping = true // argument to a callee that may retain it
		}
	case *ast.ReturnStmt, *ast.SendStmt, *ast.KeyValueExpr, *ast.CompositeLit:
		escaping = true
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			switch l := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				// local binding: fine
			case *ast.SelectorExpr, *ast.IndexExpr:
				_ = l
				escaping = true
			}
		}
	}
	if escaping && !w.guarded() {
		w.site(SiteAllocClosure, lit.Pos(), "capturing closure escapes")
	}
}

// captures reports whether lit references variables declared outside
// itself but inside the enclosing function (parameters and receiver
// included). Package-level references are free.
func (w *factWalker) captures(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent() == w.pkg.Scope() {
			return true // package-level
		}
		if v.Pos() < lit.Pos() && v.Pos() >= w.fn.Pos() {
			found = true
		}
		return true
	})
	return found
}

func (w *factWalker) checkGlobalWrite(e ast.Expr) {
	root := rootObj(w.info, e)
	v, ok := root.(*types.Var)
	if !ok || v.IsField() {
		return
	}
	if v.Parent() == w.pkg.Scope() || (v.Pkg() != nil && v.Parent() == v.Pkg().Scope()) {
		w.site(SiteGlobalWrite, e.Pos(), "write to package variable "+v.Name())
	}
}

// checkMapRange records output assembled in map-iteration order: appends
// to a slice that outlives the loop and is never sorted later in the
// same function, or printing inside the range body.
func (w *factWalker) checkMapRange(rng *ast.RangeStmt) {
	tv, ok := w.info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	body := w.fn.Body
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			target := rootObj(w.info, call.Args[0])
			if target == nil {
				return true
			}
			if target.Pos() > rng.Pos() && target.Pos() < rng.End() {
				return true // loop-local: dies with the iteration
			}
			if factSortedLater(w.info, body, rng, target) {
				return true
			}
			w.site(SiteMapOrdered, call.Pos(), "append to "+target.Name()+" in map-iteration order")
			return true
		}
		if fn := Callee(w.info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			strings.HasPrefix(fn.Name(), "Print") {
			w.site(SiteMapOrdered, call.Pos(), "fmt."+fn.Name()+" in map-iteration order")
		}
		return true
	})
}

// factSortedLater mirrors the deterministic analyzer's collect-then-sort
// allowance.
func factSortedLater(info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt, target types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found || n == nil || n.Pos() < rng.End() {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := Callee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if rootObj(info, arg) == target {
				found = true
			}
		}
		return true
	})
	return found
}

// rootObj resolves the base identifier of x, x.f, x[i], *x to its object.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[v]; o != nil {
				return o
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// FormatChain renders a Reach call chain for a diagnostic: the root and
// the immediate path, compressed when long.
func FormatChain(chain []string) string {
	short := make([]string, len(chain))
	for i, c := range chain {
		short[i] = shortFuncName(c)
	}
	if len(short) > 4 {
		return fmt.Sprintf("%s -> ... -> %s -> %s", short[0], short[len(short)-2], short[len(short)-1])
	}
	return strings.Join(short, " -> ")
}

// ShortFuncName trims the package path from a fully qualified function
// name for diagnostics: "(*a/b/c.T).M" -> "(*c.T).M".
func ShortFuncName(full string) string { return shortFuncName(full) }

func shortFuncName(full string) string {
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		prefix := ""
		if strings.HasPrefix(full, "(*") {
			prefix = "(*"
		} else if strings.HasPrefix(full, "(") {
			prefix = "("
		}
		full = prefix + full[i+1:]
	}
	return full
}
