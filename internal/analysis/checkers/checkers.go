// Package checkers is the registry of cloudfoglint analyzers: the single
// list shared by the cmd/cloudfoglint multichecker and the tree-clean
// regression test, so a newly added analyzer is automatically enforced by
// both.
package checkers

import (
	"cloudfog/internal/analysis"
	"cloudfog/internal/analysis/allocfree"
	"cloudfog/internal/analysis/conndeadline"
	"cloudfog/internal/analysis/deterministic"
	"cloudfog/internal/analysis/epochstamp"
	"cloudfog/internal/analysis/guardedby"
	"cloudfog/internal/analysis/noretain"
	"cloudfog/internal/analysis/phasepure"
	"cloudfog/internal/analysis/pooledbuf"
)

// All returns every cloudfoglint analyzer in reporting order: the five
// PR 4 syntactic checkers, then the three PR 10 fact-driven ones.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		pooledbuf.Analyzer,
		conndeadline.Analyzer,
		guardedby.Analyzer,
		deterministic.Analyzer,
		noretain.Analyzer,
		phasepure.Analyzer,
		allocfree.Analyzer,
		epochstamp.Analyzer,
	}
}
