package checkers

import (
	"strings"
	"testing"

	"cloudfog/internal/analysis"
)

// TestTreeClean asserts that the checked-in tree carries zero cloudfoglint
// diagnostics. This is the regression gate the analyzers exist for: fixing
// a violation (or blessing it with //lint:ignore) is part of the change
// that introduces it, never deferred. If this test fails, run
//
//	go run ./cmd/cloudfoglint ./...
//
// for the same diagnostics with file:line positions.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	loader := analysis.Shared()
	diags, err := loader.Run(All(), "cloudfog/...")
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s (%s)", loader.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		t.Errorf("%d diagnostic(s) on HEAD; fix or annotate with //lint:ignore <analyzer> <reason>", len(diags))
	}
}

// TestRegistryComplete guards against an analyzer package existing without
// being wired into the registry (and therefore silently unenforced).
func TestRegistryComplete(t *testing.T) {
	want := []string{"pooledbuf", "conndeadline", "guardedby", "deterministic", "noretain"}
	got := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Name, Doc, or Run", a.Name)
		}
		got[a.Name] = true
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("analyzer %q not registered in checkers.All()", name)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d analyzers, want %d: %s", len(All()), len(want), strings.Join(want, ", "))
	}
}
