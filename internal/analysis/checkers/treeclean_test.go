package checkers

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cloudfog/internal/analysis"
)

// TestTreeClean asserts that the checked-in tree carries zero cloudfoglint
// diagnostics. This is the regression gate the analyzers exist for: fixing
// a violation (or blessing it with //lint:ignore) is part of the change
// that introduces it, never deferred. If this test fails, run
//
//	go run ./cmd/cloudfoglint ./...
//
// for the same diagnostics with file:line positions.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	loader := analysis.Shared()
	diags, err := loader.Run(All(), "cloudfog/...")
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s (%s)", loader.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		t.Errorf("%d diagnostic(s) on HEAD; fix or annotate with //lint:ignore <analyzer> <reason>", len(diags))
	}
}

// registryNames is the full analyzer roster in registration order. The
// sync tests below hold every entry to the same bar: wired into All(),
// fixtures under its package's testdata, and a row in the DESIGN.md §16
// catalog.
var registryNames = []string{
	"pooledbuf", "conndeadline", "guardedby", "deterministic", "noretain",
	"phasepure", "allocfree", "epochstamp",
}

// TestRegistryComplete guards against an analyzer package existing without
// being wired into the registry (and therefore silently unenforced).
func TestRegistryComplete(t *testing.T) {
	got := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Name, Doc, or Run", a.Name)
		}
		got[a.Name] = true
	}
	for _, name := range registryNames {
		if !got[name] {
			t.Errorf("analyzer %q not registered in checkers.All()", name)
		}
	}
	if len(All()) != len(registryNames) {
		t.Errorf("registry has %d analyzers, want %d: %s", len(All()), len(registryNames), strings.Join(registryNames, ", "))
	}
}

// TestRegistryFixtures asserts every registered analyzer ships fixture
// packages: a sibling package internal/analysis/<name> with at least one
// .go file under testdata/src. An analyzer without fixtures has no
// executable specification of what it flags and what it permits.
func TestRegistryFixtures(t *testing.T) {
	for _, a := range All() {
		dir := filepath.Join("..", a.Name, "testdata", "src")
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("analyzer %q has no fixture dir %s: %v", a.Name, dir, err)
			continue
		}
		found := false
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			gofiles, _ := filepath.Glob(filepath.Join(dir, e.Name(), "*.go"))
			if len(gofiles) > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("analyzer %q fixture dir %s contains no package with .go files", a.Name, dir)
		}
	}
}

// TestRegistryDocumented asserts the DESIGN.md §16 analyzer catalog has a
// table row for every registered analyzer (and no row for an analyzer
// that no longer exists): the catalog is the reviewer-facing contract,
// and it goes stale exactly when nothing forces it to move with the
// registry.
func TestRegistryDocumented(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatalf("reading DESIGN.md: %v", err)
	}
	// Catalog rows look like "| `name` | ... |".
	rowRe := regexp.MustCompile("(?m)^\\|\\s*`([a-z]+)`\\s*\\|")
	documented := map[string]bool{}
	for _, m := range rowRe.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]] = true
	}
	registered := map[string]bool{}
	for _, a := range All() {
		registered[a.Name] = true
		if !documented[a.Name] {
			t.Errorf("analyzer %q has no catalog row in DESIGN.md §16 (expected a line starting \"| `%s` |\")", a.Name, a.Name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("DESIGN.md catalog documents %q, which is not in checkers.All(): remove the row or register the analyzer", name)
		}
	}
}
