// Package compute is a miniature two-phase tick pipeline exercising the
// phasepure contract: sharedWrite/lockedHelper/foreignDraw sit two and
// three calls below the annotated root, so every positive here proves
// the interprocedural walk, not a syntactic scan of the root itself.
package compute

import (
	"sync"
	"time"

	"cloudfog/internal/rng"
)

// tickCount is shared mutable state no compute-phase function may touch.
var tickCount int

type world struct {
	mu    sync.Mutex
	slots []float64
	r     *rng.Rand
	tags  map[int]string
}

// evalOne is the compute root: called concurrently per player slot.
//
//cfg:computephase
func evalOne(w *world, i int, r *rng.Rand) {
	w.slots[i] = r.Float64() // per-slot write + per-shard stream: allowed
	helper(w, i)
	w.deeper(r)
}

// helper is one hop below the root.
func helper(w *world, i int) {
	sharedWrite()
	w.mu.Lock() // want `compute-phase impurity.*Lock.*shared mutable state`
	w.mu.Unlock()
}

// sharedWrite is two hops below the root.
func sharedWrite() {
	tickCount++ // want `compute-phase impurity.*write to package variable tickCount`
}

// deeper exercises the clock, foreign-stream, and map-order rules. It is
// a method so the w.r draw roots at the receiver, like System.rng in the
// real pipeline.
func (w *world) deeper(r *rng.Rand) {
	_ = time.Now()      // want `compute-phase impurity.*wall-clock`
	_ = w.r.Float64()   // want `compute-phase impurity.*rng draw.*shared streams`
	_ = r.NormFloat64() // parameter stream: allowed
	var out []string
	for _, tag := range w.tags {
		out = append(out, tag) // want `compute-phase impurity.*map-iteration order`
	}
	_ = out
	applyOne(w) // reaching the apply phase at all is the violation
}

// applyOne is the apply side: single goroutine, canonical order. It may
// do what the compute phase may not — but it must not be reachable from
// a compute root.
//
//cfg:applyphase
func applyOne(w *world) { // want `apply-phase function compute.applyOne is reachable from the compute phase`
	tickCount++ // not reported: inside the apply phase by annotation
}

// orchestrate is NOT reachable from the root; nothing here is reported.
func orchestrate(w *world) {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	tickCount = 0
}
