// Package phasepure enforces the two-phase determinism contract of the
// parallel tick pipeline (DESIGN.md §15) interprocedurally.
//
// The compute phase runs one goroutine per worker over disjoint player
// slots; its results must be bit-identical for any worker count. That
// holds only if every function reachable from a compute root — a
// function annotated //cfg:computephase — stays pure in the contract's
// sense: it may write the slots it owns and draw from the per-shard rng
// stream threaded in as a parameter, and nothing else. Concretely, the
// analyzer walks the fact call graph from each root and reports, in any
// reachable function:
//
//   - writes to package-level variables (shared state, racy and
//     order-dependent),
//   - mutex acquisitions (a lock in the compute phase means shared
//     mutable state — and a worker-count-dependent wait order),
//   - go statements, channel operations, and selects (scheduling order
//     leaks into results),
//   - wall-clock reads and global math/rand draws (the intra-package
//     deterministic analyzer's rules, now applied transitively),
//   - output assembled in map-iteration order,
//   - rng draws through a receiver-rooted or package-level stream: only
//     the per-shard stream passed as a parameter is consumption-order
//     independent of the worker count.
//
// Functions annotated //cfg:applyphase (the single-goroutine apply side:
// canonical-order mutators, metrics sinks) must not be reachable from a
// compute root at all — reaching one is reported at the root's package.
//
// Interprocedural reach uses the module-wide fact index, so the
// authoritative run is the standalone driver (make lint); the vet-tool
// protocol hands the analyzer one package at a time and sees only
// package-local edges.
package phasepure

import (
	"cloudfog/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "phasepure",
	Doc:  "functions reachable from //cfg:computephase roots must not touch shared state, channels, clocks, or foreign rng streams",
	Run:  run,
}

// impureSites are the fact site kinds that break compute-phase purity,
// with the contract clause each violates.
var impureSites = map[analysis.SiteKind]string{
	analysis.SiteGlobalWrite: "the compute phase may write only its own player slots",
	analysis.SiteLock:        "locking in the compute phase implies shared mutable state and a worker-count-dependent wait order",
	analysis.SiteGo:          "the compute phase must not spawn goroutines; the worker pool is the only concurrency",
	analysis.SiteChan:        "channel operations leak scheduling order into results",
	analysis.SiteWallClock:   "wall-clock reads break seeded reproducibility",
	analysis.SiteGlobalRand:  "the global math/rand source is shared across workers",
	analysis.SiteMapOrdered:  "map-iteration order differs per run",
	analysis.SiteForeignRNG:  "only the per-shard rng stream passed as a parameter is safe; shared streams make draw order depend on worker interleaving",
}

func run(pass *analysis.Pass) error {
	roots := pass.Facts.WithDirective("computephase")
	if len(roots) == 0 {
		return nil
	}
	names := make([]string, len(roots))
	for i, r := range roots {
		names[i] = r.Name
	}
	stop := func(ff *analysis.FuncFact) bool { return ff.Directives["applyphase"] }
	reached := pass.Facts.Reach(names, stop)
	for name, chain := range reached {
		ff := pass.Facts.Funcs[name]
		if ff == nil {
			continue
		}
		if ff.Directives["applyphase"] && len(chain) > 1 {
			if pass.LocalPos(ff.Pos) {
				pass.Reportf(ff.Pos,
					"apply-phase function %s is reachable from the compute phase (%s): apply-side mutations must wait for the canonical-order apply loop",
					shortName(name), analysis.FormatChain(chain))
			}
			continue
		}
		for _, site := range ff.Sites {
			why, impure := impureSites[site.Kind]
			if !impure || !pass.LocalPos(site.Pos) {
				continue
			}
			pass.Reportf(site.Pos,
				"compute-phase impurity in %s (%s): %s; %s",
				shortName(name), analysis.FormatChain(chain), site.What, why)
		}
	}
	return nil
}

func shortName(full string) string { return analysis.ShortFuncName(full) }
