package phasepure_test

import (
	"testing"

	"cloudfog/internal/analysis/analysistest"
	"cloudfog/internal/analysis/phasepure"
)

func TestPhasePure(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), phasepure.Analyzer, "compute")
}
