package noretain_test

import (
	"testing"

	"cloudfog/internal/analysis/analysistest"
	"cloudfog/internal/analysis/noretain"
)

func TestNoRetain(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), noretain.Analyzer, "a")
}
