// Fixture for the noretain analyzer, against the real FrameReader
// aliasing contract.
package a

import (
	"io"

	"cloudfog/internal/protocol"
)

type sink struct {
	last []byte
}

var lastGlobal []byte

// Positive: storing the payload in a field retains the alias.
func storeInField(r io.Reader, s *sink) error {
	fr := protocol.NewFrameReader(r)
	for {
		_, payload, err := fr.Next()
		if err != nil {
			return err
		}
		s.last = payload // want `payload payload aliases the frame reader's internal buffer .* stored in field last`
	}
}

// Positive: a map entry outlives the next read.
func storeInMap(r io.Reader, byType map[byte][]byte) error {
	fr := protocol.NewFrameReader(r)
	typ, payload, err := fr.Next()
	if err != nil {
		return err
	}
	byType[byte(typ)] = payload // want `stored in a map or slice element`
	return nil
}

// Positive: channel send hands the alias to another goroutine.
func sendOnChannel(r io.Reader, ch chan []byte) error {
	fr := protocol.NewFrameReader(r)
	_, payload, err := fr.Next()
	if err != nil {
		return err
	}
	ch <- payload // want `sent on a channel`
	return nil
}

// Positive: appending the slice itself (not its bytes) retains it.
func appendElement(r io.Reader) ([][]byte, error) {
	fr := protocol.NewFrameReader(r)
	var frames [][]byte
	for i := 0; i < 3; i++ {
		_, payload, err := fr.Next()
		if err != nil {
			return nil, err
		}
		frames = append(frames, payload) // want `appended as an element`
	}
	return frames, nil
}

// Positive: a subslice aliases the same buffer; composite literals
// outlive the read as soon as they are stored.
type record struct{ body []byte }

func compositeAndSubslice(r io.Reader, global bool) (record, error) {
	fr := protocol.NewFrameReader(r)
	_, payload, err := fr.Next()
	if err != nil {
		return record{}, err
	}
	body := payload[1:]
	if global {
		lastGlobal = body // want `stored in package-level variable lastGlobal`
	}
	return record{body: body}, nil // want `placed in a composite literal`
}

// Positive: a goroutine races the next read over the shared buffer.
func goroutineCapture(r io.Reader, process func([]byte)) error {
	fr := protocol.NewFrameReader(r)
	for {
		_, payload, err := fr.Next()
		if err != nil {
			return err
		}
		go process(payload) // want `captured by a goroutine that races the next read`
	}
}

// Negative: copying the bytes before retaining is the blessed pattern.
func copies(r io.Reader, s *sink) error {
	fr := protocol.NewFrameReader(r)
	_, payload, err := fr.Next()
	if err != nil {
		return err
	}
	s.last = append(s.last[:0], payload...)
	dst := make([]byte, len(payload))
	copy(dst, payload)
	lastGlobal = dst
	return nil
}

// Negative: the caller-owned ReadMessageInto loop reuses its own buffer
// by design, and synchronous calls may borrow the payload freely.
func borrowSynchronously(r io.Reader, decode func([]byte) error) error {
	var buf []byte
	for {
		_, payload, err := protocol.ReadMessageInto(r, buf)
		if err != nil {
			return err
		}
		buf = payload
		if err := decode(payload); err != nil {
			return err
		}
	}
}

// Negative: a documented retention (caller guarantees no further reads).
func documented(r io.Reader, s *sink) error {
	fr := protocol.NewFrameReader(r)
	_, payload, err := fr.Next()
	if err != nil {
		return err
	}
	//lint:ignore noretain the reader is discarded after this final frame
	s.last = payload
	return nil
}
