// Package noretain enforces the FrameReader aliasing contract of
// DESIGN.md §10: the payload slice returned by
// (*protocol.FrameReader).Next or protocol.ReadMessageInto aliases a
// buffer that is overwritten by the next read, so it must not outlive
// the current iteration. Within the receiving function, the payload (or
// any alias or subslice of it) must not be
//
//   - stored into a struct field, map, slice element, or package-level
//     variable,
//   - sent on a channel,
//   - appended as an element (append(frames, p) retains the alias;
//     append(dst[:0], p...) copies and is fine),
//   - placed in a composite literal (the literal outlives the read as
//     soon as it is stored anywhere), or
//   - captured by a go statement's closure (it races the next read).
//
// Code that intentionally hands the bytes off after a copy does so via
// append/copy, which the analyzer recognizes; anything cleverer is
// documented with //lint:ignore noretain <why>.
package noretain

import (
	"go/ast"
	"go/types"

	"cloudfog/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "noretain",
	Doc:  "FrameReader/ReadMessageInto payloads must not be stored past the next read",
	Run:  run,
}

// payloadSources maps function full names to the index of the ephemeral
// payload in their result tuple.
var payloadSources = map[string]int{
	"(*cloudfog/internal/protocol.FrameReader).Next": 1,
	"cloudfog/internal/protocol.ReadMessageInto":     1,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)

	// Pass 1: taint payload results and propagate through plain aliases
	// (q := p, q := p[i:j]). Two sweeps reach aliases declared before a
	// later re-taint in loops.
	for i := 0; i < 2; i++ {
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
				return false // analyzed as its own function
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Rhs) == 1 {
				if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
					if idx, ok := payloadSources[analysis.FullName(pass.TypesInfo, call)]; ok && idx < len(as.Lhs) {
						if id, ok := as.Lhs[idx].(*ast.Ident); ok && id.Name != "_" {
							taintIdent(pass, tainted, id)
						}
						return true
					}
				}
			}
			if len(as.Lhs) == len(as.Rhs) {
				for j, rhs := range as.Rhs {
					if obj := sliceRoot(pass, rhs); obj != nil && tainted[obj] {
						if id, ok := as.Lhs[j].(*ast.Ident); ok && id.Name != "_" {
							taintIdent(pass, tainted, id)
						}
					}
				}
			}
			return true
		})
	}
	if len(tainted) == 0 {
		return
	}

	// Pass 2: find retention points.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false // analyzed as its own function
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for j, rhs := range n.Rhs {
				obj := sliceRoot(pass, rhs)
				if obj == nil || !tainted[obj] {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[j]).(type) {
				case *ast.Ident:
					if v, ok := pass.TypesInfo.ObjectOf(lhs).(*types.Var); ok && isGlobal(v) {
						report(pass, rhs, obj, "stored in package-level variable "+lhs.Name)
					}
				case *ast.SelectorExpr:
					report(pass, rhs, obj, "stored in field "+lhs.Sel.Name)
				case *ast.IndexExpr:
					report(pass, rhs, obj, "stored in a map or slice element")
				}
			}
		case *ast.SendStmt:
			if obj := sliceRoot(pass, n.Value); obj != nil && tainted[obj] {
				report(pass, n.Value, obj, "sent on a channel")
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && !n.Ellipsis.IsValid() {
				for _, arg := range n.Args[1:] {
					if obj := sliceRoot(pass, arg); obj != nil && tainted[obj] {
						report(pass, arg, obj, "appended as an element (append(dst[:0], "+obj.Name()+"...) copies instead)")
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if obj := sliceRoot(pass, e); obj != nil && tainted[obj] {
					report(pass, e, obj, "placed in a composite literal")
				}
			}
		case *ast.GoStmt:
			ast.Inspect(n.Call, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil && tainted[obj] {
						report(pass, id, obj, "captured by a goroutine that races the next read")
					}
				}
				return true
			})
			return false
		}
		return true
	})
}

func taintIdent(pass *analysis.Pass, tainted map[types.Object]bool, id *ast.Ident) {
	if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
		tainted[obj] = true
	}
}

// sliceRoot returns the object of e when e is a bare identifier or a
// subslice of one (p, p[i:j]); deeper expressions (p[i], len(p),
// append(dst[:0], p...)) do not retain the alias.
func sliceRoot(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SliceExpr:
		return sliceRoot(pass, e.X)
	}
	return nil
}

func report(pass *analysis.Pass, at ast.Node, obj types.Object, how string) {
	pass.Reportf(at.Pos(),
		"payload %s aliases the frame reader's internal buffer (overwritten by the next read) and is %s; copy the bytes first or document with //lint:ignore noretain <why>",
		obj.Name(), how)
}

func isGlobal(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
