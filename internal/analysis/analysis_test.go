package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// runOn type-checks one synthetic file and runs the given analyzers over
// it with the unused-suppression audit enabled, returning the surviving
// diagnostics.
func runOn(t *testing.T, src string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	diags, err := RunAnalyzersWith(fset, []*ast.File{f}, pkg, info, analyzers, RunConfig{AuditIgnores: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags, fset
}

// flagGlobals reports every package-level var declaration — a trivial
// analyzer that gives the suppression machinery something to suppress.
var flagGlobals = &Analyzer{
	Name: "flagglobals",
	Doc:  "test analyzer: reports package-level vars",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				pass.Reportf(gd.Pos(), "package-level var")
			}
		}
		return nil
	},
}

func TestUnusedIgnoreReported(t *testing.T) {
	const src = `package p

//lint:ignore flagglobals this const never triggers the analyzer
const x = 1
`
	diags, fset := runOn(t, src, []*Analyzer{flagGlobals})
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %d, want 1 unusedignore; got %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "unusedignore" {
		t.Errorf("analyzer = %q, want unusedignore", d.Analyzer)
	}
	if !strings.Contains(d.Message, "unused //lint:ignore flagglobals") {
		t.Errorf("message = %q, want it to name the dead directive", d.Message)
	}
	if pos := fset.Position(d.Pos); pos.Line != 3 {
		t.Errorf("reported at line %d, want 3 (the directive itself)", pos.Line)
	}
}

func TestUsedIgnoreNotReported(t *testing.T) {
	const src = `package p

//lint:ignore flagglobals intentional global for the test
var x = 1
`
	diags, _ := runOn(t, src, []*Analyzer{flagGlobals})
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %d, want 0 (the ignore suppresses and is therefore used); got %+v", len(diags), diags)
	}
}

func TestIgnoreForAbsentAnalyzerLeftAlone(t *testing.T) {
	// An ignore naming an analyzer outside the run set may be load-bearing
	// in a fuller run; the audit must not call it unused.
	const src = `package p

//lint:ignore someotherlint suppresses a diagnostic this run cannot see
const x = 1
`
	diags, _ := runOn(t, src, []*Analyzer{flagGlobals})
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %d, want 0; got %+v", len(diags), diags)
	}
}

func TestUnusedWildcardIgnoreReported(t *testing.T) {
	// "cloudfoglint" matches every analyzer, so an unused wildcard is
	// always dead weight regardless of the run set.
	const src = `package p

//lint:ignore cloudfoglint nothing fires here
const x = 1
`
	diags, _ := runOn(t, src, []*Analyzer{flagGlobals})
	if len(diags) != 1 || diags[0].Analyzer != "unusedignore" {
		t.Fatalf("diagnostics = %+v, want one unusedignore for the wildcard", diags)
	}
}

func TestBareIgnoreWithoutReasonKeepsDiagnostic(t *testing.T) {
	const src = `package p

//lint:ignore flagglobals
var x = 1
`
	diags, _ := runOn(t, src, []*Analyzer{flagGlobals})
	if len(diags) != 1 || diags[0].Analyzer != "flagglobals" {
		t.Fatalf("diagnostics = %+v, want the flagglobals diagnostic to survive a reasonless ignore", diags)
	}
}
