// Fixture for the guardedby analyzer: a reputation-book-shaped struct
// with annotated fields.
package a

import "sync"

type book struct {
	mu sync.RWMutex
	// ratings is the ledger of Eq. 7 ratings.
	ratings map[int][]float64 // guarded by mu
	total   int               // guarded by mu
	lambda  float64           // immutable after construction: unannotated
}

// Positive: read without the lock.
func (b *book) leakyRead(id int) int {
	return len(b.ratings[id]) // want `field ratings is annotated 'guarded by mu' but is read without b\.mu\.Lock or RLock held`
}

// Positive: write under RLock only.
func (b *book) writeUnderRLock(id int, v float64) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.ratings[id] = append(b.ratings[id], v) // want `field ratings is annotated 'guarded by mu' but is written without b\.mu\.Lock held`
}

// Positive: access after the unlock.
func (b *book) afterUnlock() int {
	b.mu.Lock()
	n := b.total
	b.mu.Unlock()
	return n + b.total // want `field total is annotated 'guarded by mu' but is read without b\.mu\.Lock or RLock held`
}

// Positive: taking the address leaks a write path.
func (b *book) addressEscape() *int {
	return &b.total // want `field total is annotated 'guarded by mu' but is written without b\.mu\.Lock held`
}

// Negative: the canonical lock/defer-unlock shape.
func (b *book) rate(id int, v float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ratings[id] = append(b.ratings[id], v)
	b.total++
}

// Negative: RLock licenses reads.
func (b *book) count(id int) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.ratings[id])
}

// Negative: explicit unlock after the access.
func (b *book) snapshotTotal() int {
	b.mu.RLock()
	n := b.total
	b.mu.RUnlock()
	return n
}

// Negative: unannotated fields are unconstrained.
func (b *book) aging() float64 {
	return b.lambda
}

// Negative: the Locked-suffix convention documents that the caller holds
// the mutex.
func (b *book) countLocked(id int) int {
	return len(b.ratings[id])
}

// Negative: a documented cross-function locking scheme.
func (b *book) external() int {
	//lint:ignore guardedby caller serializes access during single-threaded bootstrap
	return b.total
}
