package guardedby_test

import (
	"testing"

	"cloudfog/internal/analysis/analysistest"
	"cloudfog/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), guardedby.Analyzer, "a")
}
