// Package guardedby enforces the mutex annotations the reputation books
// and fognet tiers rely on (Eq. 7's concurrent rating paths): a struct
// field annotated
//
//	ratings map[int][]Rating // guarded by mu
//
// may only be read while <base>.mu is held via Lock or RLock, and only
// written (assigned, incremented, or address-taken) while held via Lock,
// where <base> is the same expression the access uses (b.ratings needs
// b.mu). The check is an intra-function source-order heuristic: it
// counts Lock/Unlock pairs textually before the access inside the same
// function literal, treats deferred unlocks as held to the end, and
// exempts functions whose name ends in "Locked" (the callee-documents-
// caller convention). Cross-function locking that fits neither shape is
// documented at the access with //lint:ignore guardedby <why>.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"cloudfog/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated 'guarded by <mu>' are only accessed with the mutex held",
	Run:  run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

func run(pass *analysis.Pass) error {
	guards := collectAnnotations(pass)
	if len(guards) == 0 {
		return nil
	}
	c := &checker{pass: pass, guards: guards}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.checkFunc(n.Name.Name, n.Body)
				}
			case *ast.FuncLit:
				c.checkFunc("", n.Body)
			}
			return true
		})
	}
	return nil
}

// collectAnnotations maps annotated field objects to their guarding
// mutex's field name.
func collectAnnotations(pass *analysis.Pass) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := annotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

func annotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

type checker struct {
	pass   *analysis.Pass
	guards map[types.Object]string
}

// lockEvent is one mutex operation in source order.
type lockEvent struct {
	expr     string // "<base>.<mu>"
	pos      token.Pos
	delta    int  // +1 acquire, -1 release
	readOnly bool // RLock/RUnlock
	deferred bool // deferred releases never take effect in-function
}

// access is one use of a guarded field.
type access struct {
	sel   *ast.SelectorExpr
	mu    string // required mutex expression "<base>.<mu>"
	field string
	muFld string
	write bool
}

func (c *checker) checkFunc(name string, body *ast.BlockStmt) {
	if strings.HasSuffix(name, "Locked") {
		return // documented caller-holds-the-lock convention
	}
	writes := writeTargets(body)
	var events []lockEvent
	var accesses []access
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate function, separate discipline
		case *ast.DeferStmt:
			deferred[n.Call] = true
			return true
		case *ast.CallExpr:
			if ev, ok := c.lockEventOf(n); ok {
				ev.deferred = deferred[n]
				events = append(events, ev)
			}
			return true
		case *ast.SelectorExpr:
			obj := c.fieldObj(n)
			if obj == nil {
				return true
			}
			mu, guarded := c.guards[obj]
			if !guarded {
				return true
			}
			accesses = append(accesses, access{
				sel:   n,
				mu:    types.ExprString(n.X) + "." + mu,
				field: obj.Name(),
				muFld: mu,
				write: writes[n],
			})
		}
		return true
	})
	for _, a := range accesses {
		if !held(events, a) {
			verb, need := "read", "Lock or RLock"
			if a.write {
				verb, need = "written", "Lock"
			}
			c.pass.Reportf(a.sel.Sel.Pos(),
				"field %s is annotated 'guarded by %s' but is %s without %s held (intra-function heuristic); acquire %s, use a ...Locked helper, or document with //lint:ignore guardedby <why>",
				a.field, a.muFld, verb, a.mu+"."+need, a.mu)
		}
	}
}

// held replays the lock events textually preceding the access.
func held(events []lockEvent, a access) bool {
	depth := 0
	for _, ev := range events {
		if ev.pos >= a.sel.Pos() || ev.expr != a.mu {
			continue
		}
		if ev.deferred {
			continue // releases at function exit, after the access
		}
		if a.write && ev.readOnly {
			continue // an RLock does not license writes
		}
		depth += ev.delta
	}
	return depth > 0
}

// lockEventOf recognizes <base>.<mu>.Lock/RLock/Unlock/RUnlock() calls.
func (c *checker) lockEventOf(call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var delta int
	var readOnly bool
	switch sel.Sel.Name {
	case "Lock":
		delta = 1
	case "RLock":
		delta, readOnly = 1, true
	case "Unlock":
		delta = -1
	case "RUnlock":
		delta, readOnly = -1, true
	default:
		return lockEvent{}, false
	}
	if _, isMethod := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isMethod {
		return lockEvent{}, false
	}
	return lockEvent{expr: types.ExprString(sel.X), pos: call.Pos(), delta: delta, readOnly: readOnly}, true
}

// fieldObj resolves the field selected by sel, or nil.
func (c *checker) fieldObj(sel *ast.SelectorExpr) types.Object {
	if s, ok := c.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// writeTargets marks every selector that is assigned, incremented, or
// address-taken in body.
func writeTargets(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	writes := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		e = ast.Unparen(e)
		// b.ratings[id] = ... writes through the guarded map/slice
		// header: the exclusive lock is required just the same.
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = ast.Unparen(ix.X)
		}
		if sel, ok := e.(*ast.SelectorExpr); ok {
			writes[sel] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return writes
}
