package epochstamp_test

import (
	"testing"

	"cloudfog/internal/analysis/analysistest"
	"cloudfog/internal/analysis/epochstamp"
)

func TestEpochStamp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), epochstamp.Analyzer, "sender")
}
