// Package sender exercises the epochstamp rules against the real
// cloudfog/internal/protocol and transport message types, the same way
// production senders construct them.
package sender

import (
	"cloudfog/internal/protocol"
	"cloudfog/internal/transport"
	"cloudfog/internal/virtualworld"
)

type conn struct {
	epoch   uint64
	tick    uint64
	seq     uint64
	lastHdr transport.Header
}

// fullStamp sets every stamp field: legal.
func (c *conn) fullStamp(deltas []virtualworld.Delta) protocol.UpdateBatch {
	return protocol.UpdateBatch{Epoch: c.epoch, Tick: c.tick, Deltas: deltas}
}

// halfStamp forgets Tick — the bug class rule 1 exists for.
func (c *conn) halfStamp(deltas []virtualworld.Delta) protocol.UpdateBatch {
	return protocol.UpdateBatch{Epoch: c.epoch, Deltas: deltas} // want `UpdateBatch literal leaves stamp field\(s\) Tick unset`
}

// headerStamp omits two of the three header stamps.
func (c *conn) headerStamp() transport.Header {
	return transport.Header{Kind: transport.DgramFrame, Epoch: c.epoch} // want `Header literal leaves stamp field\(s\) Seq, Tick unset`
}

// zeroThenFill builds the zero value and fills it: exempt (rule 1 only
// covers non-empty literals; a zero literal is not half-stamped).
func (c *conn) zeroThenFill() transport.Header {
	var h transport.Header
	h.Kind = transport.DgramFrame
	h.Epoch, h.Seq, h.Tick = c.epoch, c.seq, c.tick
	return h
}

// rawDiscard copies the §12 discard rule inline instead of routing it
// through a blessed validator: rule 2.
func (c *conn) rawDiscard(h transport.Header) bool {
	if h.Epoch == c.epoch { // equality is not an ordering decision: legal
		return false
	}
	return h.Tick > c.tick // want `ordered comparison on stamp field transport.Header.Tick outside an //cfg:epochcheck validator`
}

// validate is a blessed validator: the same comparison is the §12
// discard rule's one true home.
//
//cfg:epochcheck
func (c *conn) validate(h transport.Header) bool {
	if h.Seq <= c.lastHdr.Seq && h.Epoch == c.lastHdr.Epoch {
		return false
	}
	c.lastHdr = h
	return true
}
