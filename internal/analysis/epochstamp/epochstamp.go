// Package epochstamp enforces the epoch/tick/seq stamping discipline the
// crash-recovery and datagram layers rest on (DESIGN.md §12).
//
// A *stamped type* is a struct declared in a package named "protocol" or
// "transport" that carries at least one exported Epoch, Tick, or Seq
// field. Two rules:
//
//  1. Stamp before send: a non-empty composite literal of a stamped type
//     built outside its defining package must set every stamp field the
//     type has. A half-stamped message (Epoch set, Tick defaulted) is
//     exactly the bug class that made pre-PR 6 resumption replay stale
//     frames. Unkeyed literals set every field and pass by construction;
//     the defining package is exempt (its decoders construct-then-fill).
//
//  2. Check through the validator: ordered comparisons (<, >, <=, >=)
//     on a stamp field implement a freshness/discard decision, and those
//     decisions belong in the blessed validators — RecvTracker.Track for
//     the datagram path, the §12 resume discard rule for reconnects —
//     annotated //cfg:epochcheck. An ordered stamp comparison anywhere
//     else is a raw field copy of the discard rule that will drift from
//     the real one. Equality tests (same epoch? duplicate seq?) are not
//     ordering decisions and stay legal everywhere.
package epochstamp

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cloudfog/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "epochstamp",
	Doc:  "protocol messages must be fully stamped at construction; ordered stamp comparisons belong in //cfg:epochcheck validators",
	Run:  run,
}

// stampFieldNames are the wire-ordering fields the discipline covers.
var stampFieldNames = map[string]bool{"Epoch": true, "Tick": true, "Seq": true}

// stampPkgNames are the defining-package names (matching by name keeps
// fixtures honest, mirroring the deterministic analyzer).
var stampPkgNames = map[string]bool{"protocol": true, "transport": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		var fn *ast.FuncDecl
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fn = n
			case *ast.CompositeLit:
				checkLiteral(pass, n)
			case *ast.BinaryExpr:
				checkComparison(pass, fn, n)
			}
			return true
		})
	}
	return nil
}

// stampedType returns the named struct type and its stamp fields when t
// is a stamped type, or nil.
func stampedType(t types.Type) (*types.Named, []string) {
	named, ok := t.(*types.Named)
	if !ok {
		if a, ok := t.(*types.Alias); ok {
			return stampedType(types.Unalias(a))
		}
		return nil, nil
	}
	p := named.Obj().Pkg()
	if p == nil || !stampPkgNames[p.Name()] {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	var stamps []string
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Exported() && stampFieldNames[f.Name()] {
			stamps = append(stamps, f.Name())
		}
	}
	sort.Strings(stamps)
	return named, stamps
}

// checkLiteral enforces rule 1 on one composite literal.
func checkLiteral(pass *analysis.Pass, cl *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok {
		return
	}
	named, stamps := stampedType(tv.Type)
	if named == nil || len(stamps) == 0 {
		return
	}
	if named.Obj().Pkg() == pass.Pkg {
		return // defining package: decoders construct-then-fill
	}
	if len(cl.Elts) == 0 {
		return // zero value, nothing half-stamped
	}
	set := make(map[string]bool)
	for _, e := range cl.Elts {
		kv, ok := e.(*ast.KeyValueExpr)
		if !ok {
			return // unkeyed literal: every field set
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			set[id.Name] = true
		}
	}
	var missing []string
	for _, s := range stamps {
		if !set[s] {
			missing = append(missing, s)
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.Reportf(cl.Pos(),
		"%s literal leaves stamp field(s) %s unset: stamp every message before send, or the §12 discard rule misorders it",
		typeName(named), strings.Join(missing, ", "))
}

// checkComparison enforces rule 2 on one binary expression.
func checkComparison(pass *analysis.Pass, fn *ast.FuncDecl, be *ast.BinaryExpr) {
	switch be.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return
	}
	field := stampSelector(pass, be.X)
	if field == "" {
		field = stampSelector(pass, be.Y)
	}
	if field == "" {
		return
	}
	if fn != nil && analysis.Directives(fn.Doc)["epochcheck"] {
		return
	}
	pass.Reportf(be.OpPos,
		"ordered comparison on stamp field %s outside an //cfg:epochcheck validator: freshness decisions belong in RecvTracker.Track or the §12 resume discard rule",
		field)
}

// stampSelector reports "Type.Field" when e selects a stamp field of a
// stamped type, else "".
func stampSelector(pass *analysis.Pass, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || !stampFieldNames[sel.Sel.Name] {
		return ""
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	named, stamps := stampedType(deref(s.Recv()))
	if named == nil {
		return ""
	}
	for _, f := range stamps {
		if f == sel.Sel.Name {
			return typeName(named) + "." + f
		}
	}
	return ""
}

func typeName(named *types.Named) string {
	return named.Obj().Pkg().Name() + "." + named.Obj().Name()
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
