// Package loading for the analyzer driver, built on the go toolchain
// itself: `go list -export -deps -json` compiles every dependency into
// the build cache and reports the export-data file per import path, and
// the standard gc importer reads those files back through a lookup
// function. That gives full types.Info for any package in the module —
// including ad-hoc fixture directories under testdata/ — without
// golang.org/x/tools.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
)

// ListedPackage is the subset of `go list -json` output the loader needs.
type ListedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// TypedPackage is one fully type-checked package ready for analyzers.
type TypedPackage struct {
	Listed *ListedPackage
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
}

// Loader resolves import paths to export data (via go list) and
// type-checks source packages against it. A single Loader is safe for
// sequential reuse; Shared() returns a process-wide instance so every
// analyzer test amortizes one `go list` run.
type Loader struct {
	Fset    *token.FileSet
	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// NewLoader returns an empty loader. Export data is discovered lazily.
func NewLoader() *Loader {
	l := &Loader{Fset: token.NewFileSet(), exports: make(map[string]string)}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l
}

var (
	sharedOnce sync.Once
	shared     *Loader
)

// Shared returns the process-wide loader.
func Shared() *Loader {
	sharedOnce.Do(func() { shared = NewLoader() })
	return shared
}

// lookup feeds export data to the gc importer.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		// A path outside everything listed so far (e.g. a fixture
		// importing a stdlib package no module package uses): list it
		// on demand.
		if _, err := l.list(path); err != nil {
			return nil, fmt.Errorf("no export data for %q: %w", path, err)
		}
		l.mu.Lock()
		file, ok = l.exports[path]
		l.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("go list produced no export data for %q", path)
		}
	}
	return os.Open(file)
}

// list runs `go list -export -deps -json` for patterns and records every
// reported export file. It returns the non-DepOnly packages in listing
// order.
func (l *Loader) list(patterns ...string) ([]*ListedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json=Dir,ImportPath,Name,Export,GoFiles,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var roots []*ListedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %v", patterns, err)
		}
		l.mu.Lock()
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		l.mu.Unlock()
		if !p.DepOnly {
			q := p
			roots = append(roots, &q)
		}
	}
	return roots, nil
}

// Load lists the given package patterns, type-checks each matched
// (non-test) package from source, and returns them sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*TypedPackage, error) {
	roots, err := l.list(patterns...)
	if err != nil {
		return nil, err
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })
	var out []*TypedPackage
	for _, p := range roots {
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		tp, err := l.Check(p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		tp.Listed = p
		out = append(out, tp)
	}
	return out, nil
}

// Check parses and type-checks one package from an explicit file list.
// Imports resolve through export data, so the files may live anywhere —
// including testdata fixture directories the go tool ignores.
func (l *Loader) Check(path string, filenames []string) (*TypedPackage, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &TypedPackage{Files: files, Pkg: pkg, Info: info}, nil
}

// Run loads the patterns and applies the analyzers to every matched
// package, returning all surviving diagnostics sorted per package.
//
// Facts are computed over every matched package before any analyzer
// runs, so interprocedural analyzers (phasepure, allocfree) see one call
// graph spanning the whole load — the standalone `make lint` run is the
// authoritative one. The unused-suppression audit is enabled only on
// whole-module patterns ("./...", "cloudfog/..."): a package-list run
// omits the roots whose reachability makes an ignore load-bearing, and
// would call live directives dead.
func (l *Loader) Run(analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	facts := NewFacts()
	for _, tp := range pkgs {
		ComputeFacts(l.Fset, tp.Files, tp.Pkg, tp.Info, facts)
	}
	wholeModule := false
	for _, p := range patterns {
		if p == "./..." || p == "cloudfog/..." {
			wholeModule = true
		}
	}
	cfg := RunConfig{Facts: facts, AuditIgnores: wholeModule}
	var out []Diagnostic
	for _, tp := range pkgs {
		diags, err := RunAnalyzersWith(l.Fset, tp.Files, tp.Pkg, tp.Info, analyzers, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	return out, nil
}
