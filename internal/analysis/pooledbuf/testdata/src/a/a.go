// Fixture for the pooledbuf analyzer, exercising the DESIGN.md §10
// lifecycle rule against the real cloudfog/internal/protocol pool.
package a

import (
	"errors"
	"io"

	"cloudfog/internal/protocol"
)

var errBad = errors.New("bad")

// Positive: leaked on the early error return.
func leakOnErrorPath(w io.Writer, fail bool) error {
	buf := protocol.GetBuffer() // want `not returned to the pool on the path exiting at line \d+`
	buf.B = append(buf.B, 1, 2, 3)
	if fail {
		return errBad // leaks
	}
	_, err := w.Write(buf.B)
	protocol.PutBuffer(buf)
	return err
}

// Positive: never released at all — leaks at the fall-off-the-end exit.
func leakAtEnd() {
	buf := protocol.GetBuffer() // want `not returned to the pool on the path exiting at line \d+`
	buf.B = append(buf.B, 0xff)
}

// Positive: only one arm of the branch releases.
func leakInBranch(n int) int {
	buf := protocol.GetBuffer() // want `not returned to the pool on the path exiting at line \d+`
	if n > 0 {
		protocol.PutBuffer(buf)
		return n
	}
	return -n // leaks
}

// Positive: released in the loop body but a break path escapes first.
func leakOnBreak(chunks [][]byte) {
	for _, c := range chunks {
		buf := protocol.GetBuffer() // want `not returned to the pool on the path exiting at line \d+`
		buf.B = append(buf.B, c...)
		if len(c) == 0 {
			return // leaks this iteration's buffer
		}
		protocol.PutBuffer(buf)
	}
}

// Negative: the canonical defer pairing.
func deferred(w io.Writer) error {
	buf := protocol.GetBuffer()
	defer protocol.PutBuffer(buf)
	var err error
	if buf.B, err = protocol.AppendFrame(buf.B, protocol.MsgHeartbeat, nil); err != nil {
		return err
	}
	_, err = w.Write(buf.B)
	return err
}

// Negative: explicit release on both the error and the success path (the
// snWriter shape).
func explicitBothPaths(w io.Writer, payloads [][]byte) error {
	buf := protocol.GetBuffer()
	var err error
	for _, p := range payloads {
		if buf.B, err = protocol.AppendFrame(buf.B, protocol.MsgUpdateBatch, p); err != nil {
			break
		}
	}
	if err == nil {
		_, err = w.Write(buf.B)
	}
	protocol.PutBuffer(buf)
	return err
}

// Negative: ownership moves into a struct; whoever holds the field
// releases it later (the refcounted sharedPayload shape).
type holder struct{ buf *protocol.Buffer }

func transferToField(h *holder) {
	h.buf = protocol.GetBuffer()
}

// Negative: returning the handle transfers ownership to the caller.
func transferToCaller() *protocol.Buffer {
	buf := protocol.GetBuffer()
	buf.B = append(buf.B, 1)
	return buf
}

// Negative: sending the handle transfers ownership to the receiver.
func transferOnChannel(ch chan *protocol.Buffer) {
	buf := protocol.GetBuffer()
	ch <- buf
}

// Negative: a deferred closure releases on every exit.
func deferredClosure(fail bool) error {
	buf := protocol.GetBuffer()
	defer func() { protocol.PutBuffer(buf) }()
	if fail {
		return errBad
	}
	return nil
}

// Negative: a documented ownership transfer to a helper.
func releaseViaHelper() {
	//lint:ignore pooledbuf flush assumes ownership and returns buf to the pool
	buf := protocol.GetBuffer()
	flush(buf)
}

func flush(buf *protocol.Buffer) { protocol.PutBuffer(buf) }

// Positive: a blank assignment is not a release — the handle is simply
// discarded and the buffer never returns to the pool.
func leakViaBlank() {
	buf := protocol.GetBuffer() // want `pooled buffer from protocol.GetBuffer is not returned`
	buf.B = append(buf.B, 1)
	_ = buf
}

// Positive: returning from inside a for/select loop leaks an acquisition
// made before the loop (the video-session shape without its defer).
func leakFromSelectLoop(stop chan struct{}, ch chan int) {
	buf := protocol.GetBuffer() // want `pooled buffer from protocol.GetBuffer is not returned`
	for {
		select {
		case <-stop:
			return
		case v := <-ch:
			buf.B = append(buf.B, byte(v))
		}
	}
}
