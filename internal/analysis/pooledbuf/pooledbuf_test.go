package pooledbuf_test

import (
	"testing"

	"cloudfog/internal/analysis/analysistest"
	"cloudfog/internal/analysis/pooledbuf"
)

func TestPooledBuf(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), pooledbuf.Analyzer, "a")
}
