// Package pooledbuf enforces the pooled-buffer lifecycle rule of
// DESIGN.md §10: every protocol.GetBuffer() must be matched by a
// protocol.PutBuffer on every path out of the acquiring function —
// including early error returns — unless ownership demonstrably moves
// elsewhere (the handle is returned, stored into a field, sent on a
// channel, or captured by a goroutine/deferred closure, as the
// refcounted sharedPayload fan-out does).
//
// The check is a path-sensitive walk over the structured AST: branches
// of if/switch/select are analyzed separately and a buffer only counts
// as released after a branch point if every surviving branch released
// it. Using the buffer's contents (buf.B) never transfers ownership;
// only the *Buffer handle itself does. Passing the handle to a helper
// other than PutBuffer does NOT count as a release — a helper that
// legitimately assumes ownership must be annotated at the call site
// with //lint:ignore pooledbuf <why>.
package pooledbuf

import (
	"go/ast"
	"go/token"
	"go/types"

	"cloudfog/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "pooledbuf",
	Doc:  "protocol.GetBuffer must reach PutBuffer (or transfer ownership) on every path",
	Run:  run,
}

const (
	getName = "cloudfog/internal/protocol.GetBuffer"
	putName = "cloudfog/internal/protocol.PutBuffer"
)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					analyzeFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				analyzeFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// cell is one tracked buffer acquisition.
type cell struct {
	getPos   token.Pos
	reported bool
}

// state maps each acquisition to whether this path still owes a release.
// A missing cell means "nothing to release on this path".
type state map[*cell]bool // true = live (owed)

func (st state) clone() state {
	c := make(state, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

// fn bundles the per-function walk context.
type fn struct {
	pass *analysis.Pass
	// objs maps a variable (or alias) to its acquisition.
	objs map[types.Object]*cell
}

func analyzeFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	f := &fn{pass: pass, objs: make(map[types.Object]*cell)}
	st := make(state)
	terminated := f.walk(body.List, st)
	if !terminated {
		f.checkExit(st, body.End())
	}
}

// checkExit reports every acquisition still live when a path leaves the
// function at pos.
func (f *fn) checkExit(st state, pos token.Pos) {
	for c, live := range st {
		if live && !c.reported {
			c.reported = true
			exit := f.pass.Fset.Position(pos)
			f.pass.Reportf(c.getPos,
				"pooled buffer from protocol.GetBuffer is not returned to the pool on the path exiting at line %d; call protocol.PutBuffer on every path (or defer it)", exit.Line)
		}
	}
}

// walk interprets stmts in order, mutating st; it reports true when the
// statement list cannot fall through (return/panic on every path).
func (f *fn) walk(stmts []ast.Stmt, st state) bool {
	for _, s := range stmts {
		if f.stmt(s, st) {
			return true
		}
	}
	return false
}

func (f *fn) stmt(s ast.Stmt, st state) (terminated bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		f.assign(s, st)
	case *ast.ExprStmt:
		return f.exprStmt(s.X, st)
	case *ast.DeferStmt:
		f.deferStmt(s, st)
	case *ast.GoStmt:
		// Anything the goroutine captures is its responsibility now.
		f.escapeUses(s.Call, st)
	case *ast.SendStmt:
		f.escapeUses(s.Value, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			f.escapeUses(r, st)
		}
		f.checkExit(st, s.Pos())
		return true
	case *ast.BlockStmt:
		return f.walk(s.List, st)
	case *ast.LabeledStmt:
		return f.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			f.stmt(s.Init, st)
		}
		thenSt := st.clone()
		thenTerm := f.walk(s.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = f.stmt(s.Else, elseSt)
		}
		mergeInto(st, []state{thenSt, elseSt}, []bool{thenTerm, elseTerm})
		return thenTerm && elseTerm
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return f.branches(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			f.stmt(s.Init, st)
		}
		bodySt := st.clone()
		f.walk(s.Body.List, bodySt)
		leniently(st, bodySt)
	case *ast.RangeStmt:
		bodySt := st.clone()
		f.walk(s.Body.List, bodySt)
		leniently(st, bodySt)
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list.
		return true
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, v := range vs.Values {
						if f.isGetCall(v) && i < len(vs.Names) {
							f.bind(vs.Names[i], st)
						}
					}
				}
			}
		}
	}
	return false
}

// branches handles switch/type-switch/select uniformly: every clause is
// a separate path; with no default clause the pre-state also survives.
func (f *fn) branches(s ast.Stmt, st state) bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			f.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			f.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var sts []state
	var terms []bool
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				// The comm op itself may transfer ownership (ch <- buf).
				cs := st.clone()
				f.stmt(c.Comm, cs)
				sts = append(sts, cs)
				terms = append(terms, f.walk(c.Body, cs))
				continue
			}
			stmts = c.Body
		}
		cs := st.clone()
		sts = append(sts, cs)
		terms = append(terms, f.walk(stmts, cs))
	}
	allTerm := len(sts) > 0
	for _, t := range terms {
		allTerm = allTerm && t
	}
	covered := hasDefault
	if _, isSelect := s.(*ast.SelectStmt); isSelect {
		covered = true // a select always runs one clause
	}
	if !covered {
		sts = append(sts, st.clone())
		terms = append(terms, false)
		allTerm = false
	}
	mergeInto(st, sts, terms)
	return allTerm
}

// mergeInto joins branch states: a cell stays owed unless every
// non-terminated branch discharged it.
func mergeInto(st state, branches []state, terminated []bool) {
	cells := make(map[*cell]bool)
	for _, b := range branches {
		for c := range b {
			cells[c] = true
		}
	}
	for c := range st {
		cells[c] = true
	}
	for c := range cells {
		live := false
		any := false
		for i, b := range branches {
			if terminated[i] {
				continue // that path already had its exit check
			}
			any = true
			if b[c] {
				live = true
			}
		}
		if !any {
			live = st[c]
		}
		st[c] = live
	}
}

// leniently folds a loop body's end state into the pre-state: a release
// observed in the body counts (one Get/Put pair per iteration is the
// common shape), but an acquisition made in the body does not leak into
// the post-loop state — its leaks were checked at exits inside the body.
func leniently(st, bodySt state) {
	for c, live := range bodySt {
		if !live {
			st[c] = false
		}
	}
}

func (f *fn) assign(s *ast.AssignStmt, st state) {
	// RHS first: escapes and new acquisitions.
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			if f.isGetCall(rhs) {
				if id, ok := s.Lhs[i].(*ast.Ident); ok {
					f.bind(id, st)
				}
				// Stored straight into a field/map: ownership lives
				// with that structure (e.g. sharedPayload); not tracked.
				continue
			}
			if obj := f.handleObj(rhs); obj != nil {
				if id, ok := s.Lhs[i].(*ast.Ident); ok {
					if isBlank(id) {
						// _ = buf discards nothing; the handle stays owed.
						continue
					}
					// Alias: lhs now owes the same release.
					if lo := f.objOf(id); lo != nil {
						f.objs[lo] = f.objs[obj]
						continue
					}
				}
				// Handle stored into a field, slice, map, or global:
				// ownership transferred.
				if c := f.objs[obj]; c != nil {
					st[c] = false
				}
				continue
			}
			f.escapeUses(rhs, st)
		}
		return
	}
	for _, rhs := range s.Rhs {
		f.escapeUses(rhs, st)
	}
}

func (f *fn) exprStmt(e ast.Expr, st state) (terminated bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if name := analysis.FullName(f.pass.TypesInfo, call); name == putName {
		f.releaseArgs(call, st)
		return false
	}
	if isNoReturnCall(f.pass.TypesInfo, call) {
		return true
	}
	// Other calls (encoders, writers) see the contents; the handle stays
	// owed here.
	return false
}

func (f *fn) deferStmt(s *ast.DeferStmt, st state) {
	if name := analysis.FullName(f.pass.TypesInfo, s.Call); name == putName {
		f.releaseArgs(s.Call, st)
		return
	}
	// defer helper(buf) or defer func() { ... buf ... }(): the deferred
	// code runs on every exit, so treat anything it captures as released.
	f.escapeUses(s.Call, st)
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		f.escapeUses(lit, st)
	}
}

func (f *fn) releaseArgs(call *ast.CallExpr, st state) {
	for _, a := range call.Args {
		if obj := f.handleObj(a); obj != nil {
			if c := f.objs[obj]; c != nil {
				st[c] = false
			}
		}
	}
}

// bind starts tracking a fresh acquisition assigned to id.
func (f *fn) bind(id *ast.Ident, st state) {
	if isBlank(id) {
		return
	}
	obj := f.objOf(id)
	if obj == nil {
		return
	}
	c := &cell{getPos: id.Pos()}
	f.objs[obj] = c
	st[c] = true
}

func (f *fn) objOf(id *ast.Ident) types.Object {
	if o := f.pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return f.pass.TypesInfo.Uses[id]
}

// handleObj returns the tracked object when e is a bare reference to a
// buffer handle (possibly parenthesized); buf.B and friends return nil —
// touching contents is not an ownership event.
func (f *fn) handleObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := f.pass.TypesInfo.Uses[id]
	if obj == nil || f.objs[obj] == nil {
		return nil
	}
	return obj
}

// escapeUses marks every tracked handle referenced *as a handle* inside
// e as transferred. An identifier that only appears as the base of a
// selector (buf.B) is a contents-use and stays owed.
func (f *fn) escapeUses(e ast.Expr, st state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			// Visit only the non-base parts; skip the base identifier.
			if _, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent {
				return false
			}
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := f.pass.TypesInfo.Uses[id]; obj != nil {
				if c := f.objs[obj]; c != nil {
					st[c] = false
				}
			}
		}
		return true
	})
}

func (f *fn) isGetCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return analysis.FullName(f.pass.TypesInfo, call) == getName
}

// isNoReturnCall recognizes calls that never return: panic and the
// conventional process/test aborts.
func isNoReturnCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "panic" {
			return true
		}
	}
	switch analysis.FullName(info, call) {
	case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
		return true
	}
	return false
}

func isBlank(id *ast.Ident) bool { return id.Name == "_" }
