package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almostEq(got, tt.want) {
				t.Errorf("Mean(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); !almostEq(got, 3) {
		t.Errorf("Sum = %v", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance single = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-1, 1}, {101, 5}, {12.5, 1.5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almostEq(got, tt.want) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
	if got := Median(xs); !almostEq(got, 3) {
		t.Errorf("Median = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{4, -2, 9, 0}
	if got := Min(xs); got != -2 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 9 {
		t.Errorf("Max = %v", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("Min/Max of empty should be 0")
	}
}

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.N() != 0 || a.StdDev() != 0 {
		t.Error("zero accumulator should report zeros")
	}
	for _, x := range []float64{2, 4, 6} {
		a.Add(x)
	}
	if a.N() != 3 || !almostEq(a.Mean(), 4) || !almostEq(a.Sum(), 12) {
		t.Errorf("accumulator: n=%d mean=%v sum=%v", a.N(), a.Mean(), a.Sum())
	}
	if a.Min() != 2 || a.Max() != 6 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
	wantVar := Variance([]float64{2, 4, 6})
	if !almostEq(a.Variance(), wantVar) {
		t.Errorf("variance = %v, want %v", a.Variance(), wantVar)
	}
}

func TestAccumulatorAddN(t *testing.T) {
	var a Accumulator
	a.AddN(5, 4)
	if a.N() != 4 || !almostEq(a.Mean(), 5) || a.Variance() != 0 {
		t.Errorf("AddN: n=%d mean=%v var=%v", a.N(), a.Mean(), a.Variance())
	}
}

func TestAccumulatorMerge(t *testing.T) {
	var a, b Accumulator
	for _, x := range []float64{1, 2, 3} {
		a.Add(x)
	}
	for _, x := range []float64{10, 20} {
		b.Add(x)
	}
	a.Merge(&b)
	want := Mean([]float64{1, 2, 3, 10, 20})
	if a.N() != 5 || !almostEq(a.Mean(), want) {
		t.Errorf("merged: n=%d mean=%v want %v", a.N(), a.Mean(), want)
	}
	if a.Min() != 1 || a.Max() != 20 {
		t.Errorf("merged min/max: %v/%v", a.Min(), a.Max())
	}
	var empty Accumulator
	a.Merge(&empty) // no-op
	if a.N() != 5 {
		t.Error("merging empty changed N")
	}
	var c Accumulator
	c.Merge(&a)
	if c.N() != 5 || !almostEq(c.Mean(), a.Mean()) {
		t.Error("merge into empty lost samples")
	}
}

func TestAccumulatorMatchesSliceStats(t *testing.T) {
	// Property: the online accumulator agrees with the slice functions.
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var a Accumulator
		for i, v := range raw {
			xs[i] = float64(v)
			a.Add(float64(v))
		}
		return math.Abs(a.Mean()-Mean(xs)) < 1e-6 &&
			math.Abs(a.Variance()-Variance(xs)) < 1e-4 &&
			a.Min() == Min(xs) && a.Max() == Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Error("empty ratio should be 0")
	}
	r.Observe(true)
	r.Observe(false)
	r.Observe(true)
	r.Observe(true)
	if !almostEq(r.Value(), 0.75) || r.Hits != 3 || r.Total != 4 {
		t.Errorf("ratio = %v (%d/%d)", r.Value(), r.Hits, r.Total)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if h == nil {
		t.Fatal("valid histogram rejected")
	}
	for _, x := range []float64{0.5, 1, 3, 5, 9.9, -1, 100} {
		h.Add(x)
	}
	if h.N() != 7 {
		t.Errorf("N = %d", h.N())
	}
	// -1 clamps to bucket 0; 100 clamps to last bucket.
	if h.Bucket(0) != 3 { // 0.5, 1, -1
		t.Errorf("bucket0 = %d", h.Bucket(0))
	}
	if h.Bucket(4) != 2 { // 9.9, 100
		t.Errorf("bucket4 = %d", h.Bucket(4))
	}
	if h.NumBuckets() != 5 {
		t.Errorf("NumBuckets = %d", h.NumBuckets())
	}
}

func TestHistogramValidation(t *testing.T) {
	if NewHistogram(5, 5, 3) != nil {
		t.Error("hi==lo accepted")
	}
	if NewHistogram(0, 10, 0) != nil {
		t.Error("zero buckets accepted")
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if got := h.CDFAt(5); !almostEq(got, 0.5) {
		t.Errorf("CDF(5) = %v", got)
	}
	if got := h.CDFAt(10); !almostEq(got, 1) {
		t.Errorf("CDF(10) = %v", got)
	}
	var empty Histogram
	_ = empty
	h2 := NewHistogram(0, 1, 2)
	if got := h2.CDFAt(0.5); got != 0 {
		t.Errorf("empty CDF = %v", got)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(3)
	if s := h.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestHistogramPercentile(t *testing.T) {
	// 10000 uniform samples over [0, 100) with 1-unit buckets: percentile
	// estimates must land within one bucket width of the exact quantile.
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 10000; i++ {
		h.Add(float64(i%100) + 0.5)
	}
	for _, p := range []float64{1, 25, 50, 75, 95, 99} {
		got := h.Percentile(p)
		if diff := got - p; diff < -1 || diff > 1 {
			t.Errorf("Percentile(%v) = %v, want within 1 of %v", p, got, p)
		}
	}
	if got := h.Percentile(0); got < 0 || got > 1 {
		t.Errorf("Percentile(0) = %v, want in first bucket", got)
	}
	if got := h.Percentile(100); got < 99 || got > 100 {
		t.Errorf("Percentile(100) = %v, want in last bucket", got)
	}
	var empty *Histogram = NewHistogram(0, 1, 4)
	if got := empty.Percentile(50); got != 0 {
		t.Errorf("empty Percentile = %v, want 0", got)
	}
}

func TestHistogramPercentileMatchesSliceAtScale(t *testing.T) {
	// Cross-check the bucketed estimator against the exact slice-based
	// Percentile on a skewed sample set.
	xs := make([]float64, 0, 5000)
	h := NewHistogram(0, 2000, 4000) // 0.5-wide buckets
	for i := 0; i < 5000; i++ {
		v := float64(i*i%1999) + 0.25
		xs = append(xs, v)
		h.Add(v)
	}
	for _, p := range []float64{50, 95, 99} {
		exact := Percentile(xs, p)
		got := h.Percentile(p)
		if diff := got - exact; diff < -1 || diff > 1 {
			t.Errorf("P%v: histogram %v vs exact %v (diff %v)", p, got, exact, diff)
		}
	}
}

func TestHistogramMergeOrderInsensitive(t *testing.T) {
	// Partition a sample stream three ways; merging the parts in any order
	// must reproduce the sequentially-filled histogram exactly. This is the
	// property the parallel tick workers rely on.
	seqH := NewHistogram(0, 50, 25)
	parts := []*Histogram{
		NewHistogram(0, 50, 25),
		NewHistogram(0, 50, 25),
		NewHistogram(0, 50, 25),
	}
	for i := 0; i < 999; i++ {
		v := float64(i*7%53) - 1 // includes out-of-range values
		seqH.Add(v)
		parts[i%3].Add(v)
	}
	for _, order := range [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
		m := NewHistogram(0, 50, 25)
		for _, idx := range order {
			m.Merge(parts[idx])
		}
		if m.N() != seqH.N() {
			t.Fatalf("order %v: N = %d, want %d", order, m.N(), seqH.N())
		}
		for b := 0; b < seqH.NumBuckets(); b++ {
			if m.Bucket(b) != seqH.Bucket(b) {
				t.Fatalf("order %v: bucket %d = %d, want %d", order, b, m.Bucket(b), seqH.Bucket(b))
			}
		}
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched histograms did not panic")
		}
	}()
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 20, 5)
	b.Add(1)
	a.Merge(b)
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for i := 0; i < 7; i++ {
		h.Add(float64(i))
	}
	h.Reset()
	if h.N() != 0 {
		t.Fatalf("N after Reset = %d", h.N())
	}
	for b := 0; b < h.NumBuckets(); b++ {
		if h.Bucket(b) != 0 {
			t.Fatalf("bucket %d nonzero after Reset", b)
		}
	}
	h.Add(2.5)
	if h.N() != 1 || h.Bucket(1) != 1 {
		t.Fatal("histogram unusable after Reset")
	}
}
