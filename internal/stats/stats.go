// Package stats provides the small statistical toolkit used by the
// CloudFog experiments: summary statistics, online accumulators,
// histograms, and time-series helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Accumulator collects samples online and reports summary statistics
// without retaining every sample.
type Accumulator struct {
	n    int
	sum  float64
	sum2 float64
	min  float64
	max  float64
}

// Add records one sample.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 || x < a.min {
		a.min = x
	}
	if a.n == 0 || x > a.max {
		a.max = x
	}
	a.n++
	a.sum += x
	a.sum2 += x * x
}

// AddN records the same sample n times.
func (a *Accumulator) AddN(x float64, n int) {
	for i := 0; i < n; i++ {
		a.Add(x)
	}
}

// N returns the number of recorded samples.
func (a *Accumulator) N() int { return a.n }

// Sum returns the total of all samples.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns the mean of all samples, or 0 if none were recorded.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Variance returns the population variance of all samples.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	m := a.Mean()
	v := a.sum2/float64(a.n) - m*m
	if v < 0 { // numerical noise
		return 0
	}
	return v
}

// StdDev returns the population standard deviation of all samples.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest recorded sample, or 0 if none were recorded.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest recorded sample, or 0 if none were recorded.
func (a *Accumulator) Max() float64 { return a.max }

// Merge folds another accumulator's samples into a.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n += b.n
	a.sum += b.sum
	a.sum2 += b.sum2
}

// Ratio is a success counter reporting hits/total.
type Ratio struct {
	Hits  int
	Total int
}

// Observe records one trial with the given outcome.
func (r *Ratio) Observe(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns hits/total, or 0 when nothing was observed.
func (r *Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Histogram counts samples into fixed-width buckets over [lo, hi). Samples
// outside the range land in the first or last bucket.
type Histogram struct {
	lo, hi  float64
	width   float64
	buckets []int
	n       int
}

// NewHistogram creates a histogram with nbuckets buckets over [lo, hi).
// It returns nil if the arguments do not describe a valid range.
func NewHistogram(lo, hi float64, nbuckets int) *Histogram {
	if nbuckets <= 0 || hi <= lo {
		return nil
	}
	return &Histogram{
		lo:      lo,
		hi:      hi,
		width:   (hi - lo) / float64(nbuckets),
		buckets: make([]int, nbuckets),
	}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.n++
}

// N returns the number of recorded samples.
func (h *Histogram) N() int { return h.n }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// NumBuckets returns the number of buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Percentile returns the p-th percentile (p in [0, 100]) estimated from the
// bucket counts by linear interpolation inside the bucket containing the
// target rank. It returns 0 when no samples were recorded. Resolution is
// bounded by the bucket width; samples clamped into the edge buckets are
// attributed to those buckets' ranges.
func (h *Histogram) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	// Target rank in [0, n-1], matching Percentile's closest-ranks method.
	rank := p / 100 * float64(h.n-1)
	var below int
	for i, b := range h.buckets {
		if b == 0 {
			continue
		}
		// Ranks below+0 .. below+b-1 fall inside bucket i.
		if rank < float64(below+b) {
			frac := (rank - float64(below) + 0.5) / float64(b)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return h.lo + (float64(i)+frac)*h.width
		}
		below += b
	}
	return h.hi
}

// Merge folds another histogram's counts into h. Both histograms must share
// the same shape (range and bucket count); Merge panics otherwise, since a
// silent mis-merge would corrupt every downstream quantile. Bucket counts
// are integers, so merging is exact and order-insensitive: per-worker
// scratch histograms merged in any order equal one sequentially-filled
// histogram.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	if h.lo != o.lo || h.hi != o.hi || len(h.buckets) != len(o.buckets) {
		panic(fmt.Sprintf("stats: merging mismatched histograms: %v vs %v", h, o))
	}
	for i, b := range o.buckets {
		h.buckets[i] += b
	}
	h.n += o.n
}

// Reset clears all counts, keeping the bucket shape. It lets per-worker
// scratch histograms be reused across ticks without reallocation.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.n = 0
}

// CDFAt returns the empirical CDF evaluated at x.
func (h *Histogram) CDFAt(x float64) float64 {
	if h.n == 0 {
		return 0
	}
	var c int
	for i, b := range h.buckets {
		upper := h.lo + float64(i+1)*h.width
		if upper <= x {
			c += b
		}
	}
	return float64(c) / float64(h.n)
}

// String renders the histogram compactly for debugging.
func (h *Histogram) String() string {
	return fmt.Sprintf("Histogram[%g,%g) n=%d buckets=%d", h.lo, h.hi, h.n, len(h.buckets))
}
