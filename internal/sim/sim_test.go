package sim

import (
	"testing"

	"cloudfog/internal/workload"
)

func TestClock(t *testing.T) {
	c := Clock{Cycle: 2, Subcycle: 5}
	if c.Day() != 2 {
		t.Errorf("Day = %d", c.Day())
	}
	if got := c.AbsoluteSubcycle(); got != 2*24+4 {
		t.Errorf("AbsoluteSubcycle = %d", got)
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}

func TestEngineRunsFullProtocol(t *testing.T) {
	e := Engine{} // defaults: 28 cycles, 21 warm-up
	var begin, sub, end int
	var measuredSubs int
	var lastClock Clock
	e.Run(Hooks{
		BeginCycle: func(cycle int, measured bool) { begin++ },
		Subcycle: func(clock Clock, measured bool) {
			sub++
			lastClock = clock
			if measured {
				measuredSubs++
			}
		},
		EndCycle: func(cycle int, measured bool) { end++ },
	})
	if begin != 28 || end != 28 {
		t.Errorf("cycles: begin=%d end=%d", begin, end)
	}
	if sub != 28*workload.SubcyclesPerCycle {
		t.Errorf("subcycles = %d", sub)
	}
	if measuredSubs != 7*workload.SubcyclesPerCycle {
		t.Errorf("measured subcycles = %d, want last 7 cycles", measuredSubs)
	}
	if lastClock.Cycle != 27 || lastClock.Subcycle != 24 {
		t.Errorf("last clock = %v", lastClock)
	}
}

func TestEngineCustomProtocol(t *testing.T) {
	e := Engine{Cycles: 5, WarmupCycles: 2}
	var measured, unmeasured int
	e.Run(Hooks{
		BeginCycle: func(cycle int, m bool) {
			if m {
				measured++
			} else {
				unmeasured++
			}
		},
	})
	if measured != 3 || unmeasured != 2 {
		t.Errorf("measured=%d unmeasured=%d", measured, unmeasured)
	}
	if e.MeasuredCycles() != 3 {
		t.Errorf("MeasuredCycles = %d", e.MeasuredCycles())
	}
}

func TestEngineNoWarmup(t *testing.T) {
	e := Engine{Cycles: 3, WarmupCycles: -1}
	measured := 0
	e.Run(Hooks{BeginCycle: func(cycle int, m bool) {
		if m {
			measured++
		}
	}})
	if measured != 3 {
		t.Errorf("negative warm-up should mean none; measured=%d", measured)
	}
	if e.MeasuredCycles() != 3 {
		t.Errorf("MeasuredCycles = %d", e.MeasuredCycles())
	}
}

func TestEngineWarmupExceedsCycles(t *testing.T) {
	e := Engine{Cycles: 2, WarmupCycles: 10}
	measured := 0
	e.Run(Hooks{BeginCycle: func(cycle int, m bool) {
		if m {
			measured++
		}
	}})
	if measured != 0 {
		t.Errorf("warm-up > cycles should measure nothing; measured=%d", measured)
	}
	if e.MeasuredCycles() != 0 {
		t.Errorf("MeasuredCycles = %d", e.MeasuredCycles())
	}
}

func TestEngineNilHooks(t *testing.T) {
	// Must not panic with any hook missing.
	Engine{Cycles: 1, WarmupCycles: -1}.Run(Hooks{})
}

func TestSubcycleOrder(t *testing.T) {
	e := Engine{Cycles: 2, WarmupCycles: -1}
	prev := -1
	e.Run(Hooks{Subcycle: func(clock Clock, m bool) {
		abs := clock.AbsoluteSubcycle()
		if abs != prev+1 {
			t.Fatalf("subcycle order broken: %d after %d", abs, prev)
		}
		if clock.Subcycle < 1 || clock.Subcycle > workload.SubcyclesPerCycle {
			t.Fatalf("subcycle out of range: %d", clock.Subcycle)
		}
		prev = abs
	}})
}
