// Package sim provides the cycle-driven simulation engine of the CloudFog
// reproduction — the PeerSim substitute (see DESIGN.md §5).
//
// PeerSim's cycle-based mode advances all nodes in synchronous rounds; the
// paper runs 28 cycles (days) of 24 hourly subcycles each, uses the first
// 21 cycles (3 weeks) as warm-up to accumulate reputation scores, and
// reports averages over the last 7 cycles. Engine reproduces exactly that
// protocol and tells the callback whether the current subcycle is within
// the measured window.
package sim

import (
	"fmt"

	"cloudfog/internal/workload"
)

// Defaults matching the paper's experimental protocol.
const (
	// DefaultCycles is the experiment length in daily cycles.
	DefaultCycles = 28
	// DefaultWarmupCycles is the reputation warm-up (3 weeks).
	DefaultWarmupCycles = 21
)

// Clock is the current simulation time: a 0-based cycle (day) and a 1-based
// subcycle (hour).
type Clock struct {
	// Cycle is the 0-based day index.
	Cycle int
	// Subcycle is the 1-based hour index in [1, 24].
	Subcycle int
}

// Day returns the 0-based day number (an alias of Cycle, named for the
// reputation aging API which counts ages in days).
func (c Clock) Day() int { return c.Cycle }

// AbsoluteSubcycle returns the number of subcycles elapsed since the start
// of the simulation, 0-based.
func (c Clock) AbsoluteSubcycle() int {
	return c.Cycle*workload.SubcyclesPerCycle + c.Subcycle - 1
}

// String renders the clock.
func (c Clock) String() string {
	return fmt.Sprintf("c%02d/h%02d", c.Cycle, c.Subcycle)
}

// Engine drives a cycle-based simulation.
type Engine struct {
	// Cycles is the total number of daily cycles to run. Defaults to
	// DefaultCycles when zero.
	Cycles int
	// WarmupCycles is the number of initial cycles excluded from
	// measurement. Defaults to DefaultWarmupCycles when zero (pass a
	// negative value for no warm-up).
	WarmupCycles int
}

// Hooks are the callbacks the engine invokes. Any nil hook is skipped.
type Hooks struct {
	// BeginCycle runs before the first subcycle of each cycle.
	BeginCycle func(cycle int, measured bool)
	// Subcycle runs for each hourly subcycle.
	Subcycle func(clock Clock, measured bool)
	// EndCycle runs after the last subcycle of each cycle.
	EndCycle func(cycle int, measured bool)
}

// Run executes the configured number of cycles. The measured flag is true
// for cycles past the warm-up window.
func (e Engine) Run(h Hooks) {
	cycles := e.Cycles
	if cycles == 0 {
		cycles = DefaultCycles
	}
	warmup := e.WarmupCycles
	if warmup == 0 {
		warmup = DefaultWarmupCycles
	}
	if warmup < 0 {
		warmup = 0
	}
	if warmup > cycles {
		warmup = cycles
	}
	for cycle := 0; cycle < cycles; cycle++ {
		measured := cycle >= warmup
		if h.BeginCycle != nil {
			h.BeginCycle(cycle, measured)
		}
		if h.Subcycle != nil {
			for sub := 1; sub <= workload.SubcyclesPerCycle; sub++ {
				h.Subcycle(Clock{Cycle: cycle, Subcycle: sub}, measured)
			}
		}
		if h.EndCycle != nil {
			h.EndCycle(cycle, measured)
		}
	}
}

// MeasuredCycles returns how many cycles fall inside the measured window.
func (e Engine) MeasuredCycles() int {
	cycles := e.Cycles
	if cycles == 0 {
		cycles = DefaultCycles
	}
	warmup := e.WarmupCycles
	if warmup == 0 {
		warmup = DefaultWarmupCycles
	}
	if warmup < 0 {
		warmup = 0
	}
	if warmup > cycles {
		warmup = cycles
	}
	return cycles - warmup
}
