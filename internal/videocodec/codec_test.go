package videocodec

import (
	"errors"
	"testing"
	"testing/quick"

	"cloudfog/internal/render"
	"cloudfog/internal/virtualworld"
)

// frameSequence renders a short clip of a moving avatar.
func frameSequence(t *testing.T, n int, level int) []*render.Frame {
	t.Helper()
	w := virtualworld.New(400, 400)
	w.SpawnAvatar(1, 100, 100)
	w.SpawnNPC(140, 120)
	r := render.NewRenderer(render.ResolutionForLevel(level))
	frames := make([]*render.Frame, 0, n)
	for i := 0; i < n; i++ {
		w.Step([]virtualworld.Action{{
			Player: 1, Kind: virtualworld.ActMove, TargetX: 300, TargetY: 300,
		}})
		s := w.Snapshot()
		frames = append(frames, r.Render(s, render.ViewportFor(s, 1)))
	}
	return frames
}

func TestRoundTripLossless(t *testing.T) {
	// With rate control disabled (quant pinned to 1) the codec is
	// lossless: decode(encode(f)) == f for every frame.
	frames := frameSequence(t, 10, 2)
	enc := NewEncoder(0) // no rate control => quant 1
	var dec Decoder
	for i, f := range frames {
		ef := enc.Encode(f)
		got, err := dec.Decode(ef)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !got.Equal(f) {
			t.Fatalf("frame %d not lossless (type %d)", i, ef.Type)
		}
		if got.Tick != f.Tick {
			t.Errorf("tick lost: %d vs %d", got.Tick, f.Tick)
		}
	}
}

func TestRoundTripQuantizedConsistent(t *testing.T) {
	// With quantization, the decoder must still reconstruct exactly what
	// the encoder's reference holds (encoder/decoder stay in lockstep),
	// even if that differs from the source frame.
	frames := frameSequence(t, 40, 1)
	enc := NewEncoder(300)
	var dec Decoder
	var prev *render.Frame
	for i, f := range frames {
		ef := enc.Encode(f)
		got, err := dec.Decode(ef)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if prev != nil && got.Width != prev.Width {
			t.Fatal("dimensions drifted")
		}
		prev = got
	}
}

func TestGOPStructure(t *testing.T) {
	frames := frameSequence(t, 70, 1)
	enc := NewEncoder(0)
	enc.GOP = 30
	for i, f := range frames {
		ef := enc.Encode(f)
		wantI := i%30 == 0
		if (ef.Type == IFrame) != wantI {
			t.Fatalf("frame %d type %d, want I=%v", i, ef.Type, wantI)
		}
	}
}

func TestPFramesSmallerThanIFrames(t *testing.T) {
	frames := frameSequence(t, 30, 2)
	enc := NewEncoder(0)
	enc.GOP = 30
	iBits := enc.Encode(frames[0]).SizeBits()
	pTotal := 0
	for _, f := range frames[1:] {
		pTotal += enc.Encode(f).SizeBits()
	}
	pMean := pTotal / (len(frames) - 1)
	if pMean >= iBits {
		t.Errorf("inter-frame compression ineffective: P mean %d >= I %d", pMean, iBits)
	}
}

func TestRateControlConverges(t *testing.T) {
	// The encoder must steer its output toward the target bitrate.
	target := 500.0 // kbps
	frames := frameSequence(t, 120, 3)
	enc := NewEncoder(target)
	var bits int
	for _, f := range frames[60:] { // after warm-up
		bits += enc.Encode(f).SizeBits()
	}
	// 60 frames at 30 fps = 2 seconds.
	kbps := float64(bits) / 2 / 1000
	if kbps > 4*target {
		t.Errorf("rate control failed: %v kbps vs target %v", kbps, target)
	}
}

func TestLowerTargetCoarserQuant(t *testing.T) {
	framesA := frameSequence(t, 60, 3)
	framesB := frameSequence(t, 60, 3)
	encHigh := NewEncoder(1800)
	encLow := NewEncoder(100)
	for i := range framesA {
		encHigh.Encode(framesA[i])
		encLow.Encode(framesB[i])
	}
	if encLow.Quant() <= encHigh.Quant() {
		t.Errorf("low-rate quant %d not coarser than high-rate %d",
			encLow.Quant(), encHigh.Quant())
	}
}

func TestDecodePFrameWithoutReference(t *testing.T) {
	frames := frameSequence(t, 2, 1)
	enc := NewEncoder(0)
	enc.Encode(frames[0])      // I
	p := enc.Encode(frames[1]) // P
	var freshDecoder Decoder   // never saw the I frame
	if _, err := freshDecoder.Decode(p); !errors.Is(err, ErrNoReference) {
		t.Errorf("err = %v, want ErrNoReference", err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	var dec Decoder
	if _, err := dec.Decode(&EncodedFrame{Type: IFrame, Width: 0, Height: 4}); err == nil {
		t.Error("bad dimensions accepted")
	}
	if _, err := dec.Decode(&EncodedFrame{Type: IFrame, Width: 2, Height: 2, Data: []byte{1}}); err == nil {
		t.Error("odd RLE accepted")
	}
	if _, err := dec.Decode(&EncodedFrame{Type: IFrame, Width: 2, Height: 2, Data: []byte{9, 1}}); err == nil {
		t.Error("overflowing RLE accepted")
	}
	if _, err := dec.Decode(&EncodedFrame{Type: IFrame, Width: 2, Height: 2, Data: []byte{2, 1}}); err == nil {
		t.Error("underflowing RLE accepted")
	}
	if _, err := dec.Decode(&EncodedFrame{Type: 77, Width: 2, Height: 2, Data: []byte{4, 0}}); err == nil {
		t.Error("unknown frame type accepted")
	}
}

func TestRLERoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		enc := rleEncode(data)
		dec, err := rleDecode(enc, len(data))
		if err != nil {
			return false
		}
		if len(dec) != len(data) {
			return false
		}
		for i := range data {
			if dec[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	frames := frameSequence(t, 3, 1)
	enc := NewEncoder(800)
	for _, f := range frames {
		ef := enc.Encode(f)
		buf := ef.Marshal()
		got, err := UnmarshalFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != ef.Type || got.Width != ef.Width || got.Height != ef.Height ||
			got.Quant != ef.Quant || got.Tick != ef.Tick || len(got.Data) != len(ef.Data) {
			t.Fatalf("header mismatch: %+v vs %+v", got, ef)
		}
		for i := range ef.Data {
			if got.Data[i] != ef.Data[i] {
				t.Fatal("payload mismatch")
			}
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalFrame([]byte{1, 2, 3}); err == nil {
		t.Error("short header accepted")
	}
	frames := frameSequence(t, 1, 1)
	buf := NewEncoder(0).Encode(frames[0]).Marshal()
	if _, err := UnmarshalFrame(buf[:len(buf)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestSizeBitsMatchesWire(t *testing.T) {
	frames := frameSequence(t, 1, 1)
	ef := NewEncoder(0).Encode(frames[0])
	if ef.SizeBits() != len(ef.Marshal())*8 {
		t.Errorf("SizeBits %d != wire bits %d", ef.SizeBits(), len(ef.Marshal())*8)
	}
}
