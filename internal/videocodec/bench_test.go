package videocodec

import (
	"testing"

	"cloudfog/internal/render"
	"cloudfog/internal/virtualworld"
)

func benchFrames(b *testing.B, level int) []*render.Frame {
	b.Helper()
	w := virtualworld.New(400, 400)
	w.SpawnAvatar(1, 100, 100)
	r := render.NewRenderer(render.ResolutionForLevel(level))
	frames := make([]*render.Frame, 0, 32)
	for i := 0; i < 32; i++ {
		w.Step([]virtualworld.Action{{Player: 1, Kind: virtualworld.ActMove, TargetX: 300, TargetY: 300}})
		s := w.Snapshot()
		frames = append(frames, r.Render(s, render.ViewportFor(s, 1)))
	}
	return frames
}

// BenchmarkEncode720p measures the per-frame cost of encoding the top
// quality rung.
func BenchmarkEncode720p(b *testing.B) {
	frames := benchFrames(b, 5)
	enc := NewEncoder(1800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(frames[i%len(frames)])
	}
}

// BenchmarkDecode720p measures the client-side decode cost.
func BenchmarkDecode720p(b *testing.B) {
	frames := benchFrames(b, 5)
	enc := NewEncoder(1800)
	encoded := make([]*EncodedFrame, len(frames))
	for i, f := range frames {
		encoded[i] = enc.Encode(f)
	}
	b.ResetTimer()
	var dec Decoder
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(encoded[i%len(encoded)]); err != nil {
			b.Fatal(err)
		}
	}
}
