package videocodec

import (
	"bytes"
	"testing"

	"cloudfog/internal/render"
	"cloudfog/internal/virtualworld"
)

// testFrames renders a deterministic moving-avatar sequence at the given
// quality level — shared input for the equivalence and allocation tests.
func testFrames(t testing.TB, level, n int) []*render.Frame {
	t.Helper()
	w := virtualworld.New(400, 400)
	w.SpawnAvatar(1, 100, 100)
	r := render.NewRenderer(render.ResolutionForLevel(level))
	frames := make([]*render.Frame, 0, n)
	for i := 0; i < n; i++ {
		w.Step([]virtualworld.Action{{Player: 1, Kind: virtualworld.ActMove, TargetX: 300, TargetY: 300}})
		s := w.Snapshot()
		frames = append(frames, r.Render(s, render.ViewportFor(s, 1)))
	}
	return frames
}

// TestEncodeIntoMatchesEncode pins the reuse path to the allocating one:
// two encoders fed the same sequence must produce byte-identical streams.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	frames := testFrames(t, 3, 40) // 40 > GOP, so the sequence spans an I-frame boundary
	a := NewEncoder(600)
	b := NewEncoder(600)
	var ef EncodedFrame
	for i, f := range frames {
		want := a.Encode(f)
		b.EncodeInto(f, &ef)
		if want.Type != ef.Type || want.Quant != ef.Quant || want.Tick != ef.Tick ||
			want.Width != ef.Width || want.Height != ef.Height {
			t.Fatalf("frame %d: header mismatch: %+v vs %+v", i, want, ef)
		}
		if !bytes.Equal(want.Data, ef.Data) {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(want.Data), len(ef.Data))
		}
	}
}

// TestDecodeIntoMatchesDecode pins the aliasing decode path to the copying
// one across I- and P-frames.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	frames := testFrames(t, 3, 40)
	enc := NewEncoder(600)
	var da, db Decoder
	var out render.Frame
	for i, f := range frames {
		ef := enc.Encode(f)
		want, err := da.Decode(ef)
		if err != nil {
			t.Fatalf("frame %d: Decode: %v", i, err)
		}
		if err := db.DecodeInto(ef, &out); err != nil {
			t.Fatalf("frame %d: DecodeInto: %v", i, err)
		}
		if !want.Equal(&out) || want.Tick != out.Tick {
			t.Fatalf("frame %d: decoded frames differ", i)
		}
	}
}

// TestFrameWireRoundTripInto pins the alias-parsing wire path: AppendTo
// then UnmarshalFrameInto must reproduce the frame, with Data aliasing the
// input buffer (no copy).
func TestFrameWireRoundTripInto(t *testing.T) {
	frames := testFrames(t, 2, 3)
	enc := NewEncoder(400)
	src := enc.Encode(frames[1])
	buf := src.AppendTo(nil)
	if len(buf) != src.EncodedSize() {
		t.Fatalf("EncodedSize %d != marshaled length %d", src.EncodedSize(), len(buf))
	}
	var got EncodedFrame
	if err := UnmarshalFrameInto(buf, &got); err != nil {
		t.Fatalf("UnmarshalFrameInto: %v", err)
	}
	if got.Type != src.Type || got.Quant != src.Quant || got.Tick != src.Tick ||
		got.Width != src.Width || got.Height != src.Height || !bytes.Equal(got.Data, src.Data) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, src)
	}
	if len(got.Data) > 0 && &got.Data[0] != &buf[frameHeaderBytes] {
		t.Fatal("UnmarshalFrameInto copied Data; it must alias buf")
	}
}

// TestEncodeIntoSteadyStateAllocs locks in the tentpole property: after
// warm-up, the render→encode hot path allocates nothing per frame.
func TestEncodeIntoSteadyStateAllocs(t *testing.T) {
	frames := testFrames(t, 3, 32)
	enc := NewEncoder(600)
	var ef EncodedFrame
	for _, f := range frames { // warm-up: grow scratch + Data to steady state
		enc.EncodeInto(f, &ef)
	}
	i := 0
	if n := testing.AllocsPerRun(64, func() {
		enc.EncodeInto(frames[i%len(frames)], &ef)
		i++
	}); n != 0 {
		t.Fatalf("EncodeInto allocates %.1f/op in steady state, want 0", n)
	}
}

// TestDecodeIntoSteadyStateAllocs: same property for the thin-client side,
// including the alias-parsing UnmarshalFrameInto step.
func TestDecodeIntoSteadyStateAllocs(t *testing.T) {
	frames := testFrames(t, 3, 32)
	enc := NewEncoder(600)
	wire := make([][]byte, len(frames))
	for i, f := range frames {
		wire[i] = enc.Encode(f).Marshal()
	}
	var dec Decoder
	var ef EncodedFrame
	var out render.Frame
	decodeOne := func(buf []byte) {
		if err := UnmarshalFrameInto(buf, &ef); err != nil {
			t.Fatalf("UnmarshalFrameInto: %v", err)
		}
		if err := dec.DecodeInto(&ef, &out); err != nil {
			t.Fatalf("DecodeInto: %v", err)
		}
	}
	for _, buf := range wire { // warm-up
		decodeOne(buf)
	}
	i := 0
	if n := testing.AllocsPerRun(64, func() {
		decodeOne(wire[i%len(wire)])
		i++
	}); n != 0 {
		t.Fatalf("decode path allocates %.1f/op in steady state, want 0", n)
	}
}

// BenchmarkEncodeInto720p is the reuse-path counterpart of
// BenchmarkEncode720p: same frames, zero allocations.
func BenchmarkEncodeInto720p(b *testing.B) {
	frames := benchFrames(b, 5)
	enc := NewEncoder(1800)
	var ef EncodedFrame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.EncodeInto(frames[i%len(frames)], &ef)
	}
}

// BenchmarkDecodeInto720p is the reuse-path counterpart of
// BenchmarkDecode720p.
func BenchmarkDecodeInto720p(b *testing.B) {
	frames := benchFrames(b, 5)
	enc := NewEncoder(1800)
	encoded := make([]*EncodedFrame, len(frames))
	for i, f := range frames {
		encoded[i] = enc.Encode(f)
	}
	var dec Decoder
	var out render.Frame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.DecodeInto(encoded[i%len(encoded)], &out); err != nil {
			b.Fatal(err)
		}
	}
}
