// Package videocodec implements the game-video encoder/decoder supernodes
// run: frames from internal/render are compressed to the Table 2 bitrate
// ladder with intra-frame (quantization + run-length) and inter-frame
// (previous-frame delta) compression — the compressed-graphics-streaming
// approach of the LiveRender system the paper compares against, reduced to
// its essentials.
//
// The encoder carries a simple rate controller: the quantization step
// adapts per frame so the output stream tracks a target bitrate, which is
// exactly the knob the receiver-driven adaptation of §3.3 turns when it
// changes quality levels.
package videocodec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"cloudfog/internal/game"
	"cloudfog/internal/render"
)

// FrameType distinguishes encoded frames.
type FrameType uint8

const (
	// IFrame is intra-coded: decodable alone.
	IFrame FrameType = 1
	// PFrame is inter-coded: a delta against the previous decoded frame.
	PFrame FrameType = 2
)

// EncodedFrame is one compressed video frame.
type EncodedFrame struct {
	// Type is I or P.
	Type FrameType
	// Width, Height are the frame dimensions.
	Width, Height int
	// Quant is the quantization step used (1 = lossless bucketing).
	Quant uint8
	// Tick is the world tick of the source frame.
	Tick uint64
	// Data is the run-length-encoded payload.
	Data []byte
}

// SizeBits returns the encoded size in bits, including a fixed header
// estimate.
func (e *EncodedFrame) SizeBits() int { return (len(e.Data) + frameHeaderBytes) * 8 }

const frameHeaderBytes = 18

// Encoder compresses a frame stream with I/P frames and rate control.
type Encoder struct {
	// GOP is the group-of-pictures length: an I-frame every GOP frames.
	GOP int
	// TargetKbps is the bitrate the rate controller tracks (0 disables
	// rate control; quantization stays at 1).
	TargetKbps float64

	prev    []byte // previous DECODED (quantized) frame, for P references
	cur     []byte // scratch for the current quantized frame (swapped with prev)
	diff    []byte // scratch for P-frame deltas
	w, h    int
	count   int
	quant   int
	bitsAcc float64 // rolling bits-per-frame average
}

// DefaultGOP is the default group-of-pictures length (one I-frame per
// second at 30 fps).
const DefaultGOP = 30

// NewEncoder creates an encoder targeting the given bitrate. A
// non-positive target disables rate control and pins quantization to 1
// (lossless).
func NewEncoder(targetKbps float64) *Encoder {
	quant := 4
	if targetKbps <= 0 {
		quant = 1
	}
	return &Encoder{GOP: DefaultGOP, TargetKbps: targetKbps, quant: quant}
}

// SetTargetKbps retargets the rate controller (a quality-level switch).
func (e *Encoder) SetTargetKbps(kbps float64) { e.TargetKbps = kbps }

// ForceKeyframe makes the next encoded frame an I-frame, restarting the
// GOP. Senders call it when a receiver (re)joins mid-stream — a
// transport switch, for instance — so the new receiver is not stuck
// undecodable until the GOP rolls over.
func (e *Encoder) ForceKeyframe() { e.count = 0 }

// quantize buckets a luminance value with step q.
func quantize(v byte, q int) byte {
	if q <= 1 {
		return v
	}
	return byte(int(v) / q * q)
}

// Encode compresses one frame. The first frame, every GOP-th frame, and
// any resolution change produce an I-frame; the rest are P-frames.
func (e *Encoder) Encode(f *render.Frame) *EncodedFrame {
	out := &EncodedFrame{}
	e.EncodeInto(f, out)
	return out
}

// EncodeInto compresses one frame into ef, reusing ef.Data's capacity and
// the encoder's internal scratch buffers: zero allocations per frame in
// steady state. ef must not be shared with a previous EncodeInto call
// that is still in flight (the fog streams one frame at a time per
// session, so each session owns one EncodedFrame).
func (e *Encoder) EncodeInto(f *render.Frame, ef *EncodedFrame) {
	if e.GOP <= 0 {
		e.GOP = DefaultGOP
	}
	if e.quant < 1 {
		e.quant = 1
	}
	isI := e.count%e.GOP == 0 || e.prev == nil || e.w != f.Width || e.h != f.Height
	e.count++

	// Quantize into the reusable scratch buffer.
	q := e.quant
	if cap(e.cur) < len(f.Pix) {
		e.cur = make([]byte, len(f.Pix))
	}
	cur := e.cur[:len(f.Pix)]
	for i, v := range f.Pix {
		cur[i] = quantize(v, q)
	}

	if isI {
		ef.Type = IFrame
		ef.Data = rleAppend(ef.Data[:0], cur)
	} else {
		ef.Type = PFrame
		if cap(e.diff) < len(cur) {
			e.diff = make([]byte, len(cur))
		}
		diff := e.diff[:len(cur)]
		prev := e.prev[:len(cur)]
		for i := range cur {
			diff[i] = cur[i] - prev[i]
		}
		ef.Data = rleAppend(ef.Data[:0], diff)
	}
	// Double-buffer: cur becomes the P-frame reference, the old reference
	// becomes next frame's scratch.
	e.prev, e.cur = cur, e.prev
	e.w, e.h = f.Width, f.Height

	ef.Width, ef.Height = f.Width, f.Height
	ef.Quant = uint8(q)
	ef.Tick = f.Tick
	e.adaptQuant(ef.SizeBits())
}

// adaptQuant steers the quantization step toward the target bits/frame.
func (e *Encoder) adaptQuant(lastBits int) {
	if e.TargetKbps <= 0 {
		e.quant = 1
		return
	}
	targetBits := e.TargetKbps * 1000 / game.FrameRate
	// Exponential moving average of output size.
	if e.bitsAcc == 0 {
		e.bitsAcc = float64(lastBits)
	} else {
		e.bitsAcc = 0.8*e.bitsAcc + 0.2*float64(lastBits)
	}
	switch {
	case e.bitsAcc > 1.2*targetBits && e.quant < 64:
		e.quant *= 2
	case e.bitsAcc < 0.5*targetBits && e.quant > 1:
		e.quant /= 2
	}
}

// Quant returns the current quantization step (diagnostics).
func (e *Encoder) Quant() int { return e.quant }

// Decoder reconstructs frames from an encoded stream.
type Decoder struct {
	prev    []byte
	cur     []byte // scratch for the frame being reconstructed
	payload []byte // scratch for the RLE-expanded payload
	w, h    int
}

// Errors returned by Decode.
var (
	ErrNoReference   = errors.New("videocodec: P-frame without a reference frame")
	ErrCorruptStream = errors.New("videocodec: corrupt payload")
)

// Decode reconstructs one frame. The returned frame owns its pixels.
func (d *Decoder) Decode(ef *EncodedFrame) (*render.Frame, error) {
	f := &render.Frame{}
	if err := d.DecodeInto(ef, f); err != nil {
		return nil, err
	}
	pix := make([]byte, len(f.Pix))
	copy(pix, f.Pix)
	f.Pix = pix
	return f, nil
}

// DecodeInto reconstructs one frame into f, reusing the decoder's internal
// buffers: zero allocations per frame in steady state. f.Pix aliases
// decoder-owned memory and is valid only until the next DecodeInto call;
// callers that keep pixels longer must copy them (Decode does).
func (d *Decoder) DecodeInto(ef *EncodedFrame, f *render.Frame) error {
	n := ef.Width * ef.Height
	if n <= 0 {
		return fmt.Errorf("%w: bad dimensions %dx%d", ErrCorruptStream, ef.Width, ef.Height)
	}
	if cap(d.payload) < n {
		d.payload = make([]byte, 0, n)
	}
	payload, err := rleDecodeInto(d.payload[:0], ef.Data, n)
	if err != nil {
		return err
	}
	d.payload = payload[:0]
	if cap(d.cur) < n {
		d.cur = make([]byte, n)
	}
	pix := d.cur[:n]
	switch ef.Type {
	case IFrame:
		copy(pix, payload)
	case PFrame:
		if d.prev == nil || d.w != ef.Width || d.h != ef.Height {
			return ErrNoReference
		}
		prev := d.prev[:n]
		for i := range pix {
			pix[i] = prev[i] + payload[i]
		}
	default:
		return fmt.Errorf("%w: unknown frame type %d", ErrCorruptStream, ef.Type)
	}
	// Double-buffer: pix becomes the P-frame reference, the old reference
	// becomes next frame's scratch.
	d.prev, d.cur = pix, d.prev
	d.w, d.h = ef.Width, ef.Height
	f.Width, f.Height, f.Pix, f.Tick = ef.Width, ef.Height, pix, ef.Tick
	return nil
}

// --- run-length coding ----------------------------------------------------

// rleEncode compresses with byte-level RLE: (count, value) pairs.
func rleEncode(data []byte) []byte {
	return rleAppend(make([]byte, 0, len(data)/4+8), data)
}

// rleAppend compresses data with byte-level RLE, appending (count, value)
// pairs to out; with enough capacity it does not allocate.
func rleAppend(out, data []byte) []byte {
	i := 0
	for i < len(data) {
		v := data[i]
		run := 1
		for i+run < len(data) && data[i+run] == v && run < 255 {
			run++
		}
		out = append(out, byte(run), v)
		i += run
	}
	return out
}

// rleDecode expands an RLE payload to exactly n bytes.
func rleDecode(data []byte, n int) ([]byte, error) {
	return rleDecodeInto(make([]byte, 0, n), data, n)
}

// rleDecodeInto expands an RLE payload to exactly n bytes appended to out;
// with enough capacity it does not allocate.
func rleDecodeInto(out, data []byte, n int) ([]byte, error) {
	if len(data)%2 != 0 {
		return nil, fmt.Errorf("%w: odd RLE length", ErrCorruptStream)
	}
	base := len(out)
	for i := 0; i+1 < len(data); i += 2 {
		run, v := int(data[i]), data[i+1]
		if run == 0 || len(out)-base+run > n {
			return nil, fmt.Errorf("%w: RLE overflow", ErrCorruptStream)
		}
		for j := 0; j < run; j++ {
			out = append(out, v)
		}
	}
	if len(out)-base != n {
		return nil, fmt.Errorf("%w: RLE underflow (%d of %d)", ErrCorruptStream, len(out)-base, n)
	}
	return out, nil
}

// --- wire helpers ----------------------------------------------------------

// Marshal serializes an encoded frame for transport.
func (ef *EncodedFrame) Marshal() []byte {
	return ef.AppendTo(make([]byte, 0, ef.EncodedSize()))
}

// EncodedSize returns the exact Marshal()ed length in bytes.
func (ef *EncodedFrame) EncodedSize() int { return frameHeaderBytes + len(ef.Data) }

// AppendTo appends the serialized frame to buf and returns the extended
// slice; with enough capacity it does not allocate. It implements
// protocol.Appender, so a frame can be framed and flushed in one write:
//
//	buf, err = protocol.AppendMessage(buf[:0], protocol.MsgVideoFrame, ef)
func (ef *EncodedFrame) AppendTo(buf []byte) []byte {
	var hdr [frameHeaderBytes]byte
	hdr[0] = byte(ef.Type)
	hdr[1] = ef.Quant
	binary.BigEndian.PutUint16(hdr[2:], uint16(ef.Width))
	binary.BigEndian.PutUint16(hdr[4:], uint16(ef.Height))
	binary.BigEndian.PutUint64(hdr[6:], ef.Tick)
	binary.BigEndian.PutUint32(hdr[14:], uint32(len(ef.Data)))
	buf = append(buf, hdr[:]...)
	return append(buf, ef.Data...)
}

// UnmarshalFrame parses a serialized encoded frame. The returned frame
// owns its payload (Data is copied out of buf).
func UnmarshalFrame(buf []byte) (*EncodedFrame, error) {
	ef := &EncodedFrame{}
	if err := UnmarshalFrameInto(buf, ef); err != nil {
		return nil, err
	}
	ef.Data = append([]byte(nil), ef.Data...)
	return ef, nil
}

// UnmarshalFrameInto parses a serialized encoded frame into ef without
// copying: ef.Data aliases buf, so it is valid only as long as buf is —
// for a payload from protocol.FrameReader, until the next Next call. The
// thin-client decode loop decodes each frame before reading the next, so
// it never needs the copy.
func UnmarshalFrameInto(buf []byte, ef *EncodedFrame) error {
	if len(buf) < frameHeaderBytes {
		return fmt.Errorf("%w: short frame header", ErrCorruptStream)
	}
	n := int(binary.BigEndian.Uint32(buf[14:]))
	if len(buf) < frameHeaderBytes+n {
		return fmt.Errorf("%w: truncated frame payload", ErrCorruptStream)
	}
	ef.Type = FrameType(buf[0])
	ef.Quant = buf[1]
	ef.Width = int(binary.BigEndian.Uint16(buf[2:]))
	ef.Height = int(binary.BigEndian.Uint16(buf[4:]))
	ef.Tick = binary.BigEndian.Uint64(buf[6:])
	ef.Data = buf[frameHeaderBytes : frameHeaderBytes+n]
	return nil
}
