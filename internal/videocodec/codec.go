// Package videocodec implements the game-video encoder/decoder supernodes
// run: frames from internal/render are compressed to the Table 2 bitrate
// ladder with intra-frame (quantization + run-length) and inter-frame
// (previous-frame delta) compression — the compressed-graphics-streaming
// approach of the LiveRender system the paper compares against, reduced to
// its essentials.
//
// The encoder carries a simple rate controller: the quantization step
// adapts per frame so the output stream tracks a target bitrate, which is
// exactly the knob the receiver-driven adaptation of §3.3 turns when it
// changes quality levels.
package videocodec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"cloudfog/internal/game"
	"cloudfog/internal/render"
)

// FrameType distinguishes encoded frames.
type FrameType uint8

const (
	// IFrame is intra-coded: decodable alone.
	IFrame FrameType = 1
	// PFrame is inter-coded: a delta against the previous decoded frame.
	PFrame FrameType = 2
)

// EncodedFrame is one compressed video frame.
type EncodedFrame struct {
	// Type is I or P.
	Type FrameType
	// Width, Height are the frame dimensions.
	Width, Height int
	// Quant is the quantization step used (1 = lossless bucketing).
	Quant uint8
	// Tick is the world tick of the source frame.
	Tick uint64
	// Data is the run-length-encoded payload.
	Data []byte
}

// SizeBits returns the encoded size in bits, including a fixed header
// estimate.
func (e *EncodedFrame) SizeBits() int { return (len(e.Data) + frameHeaderBytes) * 8 }

const frameHeaderBytes = 18

// Encoder compresses a frame stream with I/P frames and rate control.
type Encoder struct {
	// GOP is the group-of-pictures length: an I-frame every GOP frames.
	GOP int
	// TargetKbps is the bitrate the rate controller tracks (0 disables
	// rate control; quantization stays at 1).
	TargetKbps float64

	prev    []byte // previous DECODED (quantized) frame, for P references
	w, h    int
	count   int
	quant   int
	bitsAcc float64 // rolling bits-per-frame average
}

// DefaultGOP is the default group-of-pictures length (one I-frame per
// second at 30 fps).
const DefaultGOP = 30

// NewEncoder creates an encoder targeting the given bitrate. A
// non-positive target disables rate control and pins quantization to 1
// (lossless).
func NewEncoder(targetKbps float64) *Encoder {
	quant := 4
	if targetKbps <= 0 {
		quant = 1
	}
	return &Encoder{GOP: DefaultGOP, TargetKbps: targetKbps, quant: quant}
}

// SetTargetKbps retargets the rate controller (a quality-level switch).
func (e *Encoder) SetTargetKbps(kbps float64) { e.TargetKbps = kbps }

// quantize buckets a luminance value with step q.
func quantize(v byte, q int) byte {
	if q <= 1 {
		return v
	}
	return byte(int(v) / q * q)
}

// Encode compresses one frame. The first frame, every GOP-th frame, and
// any resolution change produce an I-frame; the rest are P-frames.
func (e *Encoder) Encode(f *render.Frame) *EncodedFrame {
	if e.GOP <= 0 {
		e.GOP = DefaultGOP
	}
	if e.quant < 1 {
		e.quant = 1
	}
	isI := e.count%e.GOP == 0 || e.prev == nil || e.w != f.Width || e.h != f.Height
	e.count++

	// Quantize into a scratch copy.
	q := e.quant
	cur := make([]byte, len(f.Pix))
	for i, v := range f.Pix {
		cur[i] = quantize(v, q)
	}

	var payload []byte
	var ftype FrameType
	if isI {
		ftype = IFrame
		payload = rleEncode(cur)
	} else {
		ftype = PFrame
		diff := make([]byte, len(cur))
		for i := range cur {
			diff[i] = cur[i] - e.prev[i]
		}
		payload = rleEncode(diff)
	}
	e.prev = cur
	e.w, e.h = f.Width, f.Height

	out := &EncodedFrame{
		Type: ftype, Width: f.Width, Height: f.Height,
		Quant: uint8(q), Tick: f.Tick, Data: payload,
	}
	e.adaptQuant(out.SizeBits())
	return out
}

// adaptQuant steers the quantization step toward the target bits/frame.
func (e *Encoder) adaptQuant(lastBits int) {
	if e.TargetKbps <= 0 {
		e.quant = 1
		return
	}
	targetBits := e.TargetKbps * 1000 / game.FrameRate
	// Exponential moving average of output size.
	if e.bitsAcc == 0 {
		e.bitsAcc = float64(lastBits)
	} else {
		e.bitsAcc = 0.8*e.bitsAcc + 0.2*float64(lastBits)
	}
	switch {
	case e.bitsAcc > 1.2*targetBits && e.quant < 64:
		e.quant *= 2
	case e.bitsAcc < 0.5*targetBits && e.quant > 1:
		e.quant /= 2
	}
}

// Quant returns the current quantization step (diagnostics).
func (e *Encoder) Quant() int { return e.quant }

// Decoder reconstructs frames from an encoded stream.
type Decoder struct {
	prev []byte
	w, h int
}

// Errors returned by Decode.
var (
	ErrNoReference   = errors.New("videocodec: P-frame without a reference frame")
	ErrCorruptStream = errors.New("videocodec: corrupt payload")
)

// Decode reconstructs one frame.
func (d *Decoder) Decode(ef *EncodedFrame) (*render.Frame, error) {
	n := ef.Width * ef.Height
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad dimensions %dx%d", ErrCorruptStream, ef.Width, ef.Height)
	}
	payload, err := rleDecode(ef.Data, n)
	if err != nil {
		return nil, err
	}
	pix := make([]byte, n)
	switch ef.Type {
	case IFrame:
		copy(pix, payload)
	case PFrame:
		if d.prev == nil || d.w != ef.Width || d.h != ef.Height {
			return nil, ErrNoReference
		}
		for i := range pix {
			pix[i] = d.prev[i] + payload[i]
		}
	default:
		return nil, fmt.Errorf("%w: unknown frame type %d", ErrCorruptStream, ef.Type)
	}
	d.prev = pix
	d.w, d.h = ef.Width, ef.Height
	return &render.Frame{Width: ef.Width, Height: ef.Height, Pix: pix, Tick: ef.Tick}, nil
}

// --- run-length coding ----------------------------------------------------

// rleEncode compresses with byte-level RLE: (count, value) pairs.
func rleEncode(data []byte) []byte {
	out := make([]byte, 0, len(data)/4+8)
	i := 0
	for i < len(data) {
		v := data[i]
		run := 1
		for i+run < len(data) && data[i+run] == v && run < 255 {
			run++
		}
		out = append(out, byte(run), v)
		i += run
	}
	return out
}

// rleDecode expands an RLE payload to exactly n bytes.
func rleDecode(data []byte, n int) ([]byte, error) {
	if len(data)%2 != 0 {
		return nil, fmt.Errorf("%w: odd RLE length", ErrCorruptStream)
	}
	out := make([]byte, 0, n)
	for i := 0; i+1 < len(data); i += 2 {
		run, v := int(data[i]), data[i+1]
		if run == 0 || len(out)+run > n {
			return nil, fmt.Errorf("%w: RLE overflow", ErrCorruptStream)
		}
		for j := 0; j < run; j++ {
			out = append(out, v)
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("%w: RLE underflow (%d of %d)", ErrCorruptStream, len(out), n)
	}
	return out, nil
}

// --- wire helpers ----------------------------------------------------------

// Marshal serializes an encoded frame for transport.
func (ef *EncodedFrame) Marshal() []byte {
	buf := make([]byte, frameHeaderBytes+len(ef.Data))
	buf[0] = byte(ef.Type)
	buf[1] = ef.Quant
	binary.BigEndian.PutUint16(buf[2:], uint16(ef.Width))
	binary.BigEndian.PutUint16(buf[4:], uint16(ef.Height))
	binary.BigEndian.PutUint64(buf[6:], ef.Tick)
	binary.BigEndian.PutUint32(buf[14:], uint32(len(ef.Data)))
	copy(buf[frameHeaderBytes:], ef.Data)
	return buf
}

// UnmarshalFrame parses a serialized encoded frame.
func UnmarshalFrame(buf []byte) (*EncodedFrame, error) {
	if len(buf) < frameHeaderBytes {
		return nil, fmt.Errorf("%w: short frame header", ErrCorruptStream)
	}
	n := int(binary.BigEndian.Uint32(buf[14:]))
	if len(buf) < frameHeaderBytes+n {
		return nil, fmt.Errorf("%w: truncated frame payload", ErrCorruptStream)
	}
	return &EncodedFrame{
		Type:   FrameType(buf[0]),
		Quant:  buf[1],
		Width:  int(binary.BigEndian.Uint16(buf[2:])),
		Height: int(binary.BigEndian.Uint16(buf[4:])),
		Tick:   binary.BigEndian.Uint64(buf[6:]),
		Data:   append([]byte(nil), buf[frameHeaderBytes:frameHeaderBytes+n]...),
	}, nil
}
