package cloudinfra

import (
	"testing"

	"cloudfog/internal/geo"
	"cloudfog/internal/rng"
)

func newTestCloud(t *testing.T, dcs, servers int) *Cloud {
	t.Helper()
	next := 1000
	c, err := New(dcs, servers, func() int { next++; return next - 1 })
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	alloc := func() int { return 0 }
	if _, err := New(0, 5, alloc); err == nil {
		t.Error("zero datacenters accepted")
	}
	if _, err := New(3, 0, alloc); err == nil {
		t.Error("zero servers accepted")
	}
}

func TestTopology(t *testing.T) {
	c := newTestCloud(t, 3, 4)
	if len(c.Datacenters()) != 3 {
		t.Fatalf("datacenters = %d", len(c.Datacenters()))
	}
	if c.NumServers() != 12 {
		t.Fatalf("servers = %d", c.NumServers())
	}
	seen := map[int]bool{}
	for _, dc := range c.Datacenters() {
		if dc.Endpoint == nil {
			t.Fatal("datacenter missing endpoint")
		}
		for _, s := range dc.Servers {
			if seen[s.ID] {
				t.Fatalf("duplicate server ID %d", s.ID)
			}
			seen[s.ID] = true
			if s.Datacenter != dc.ID {
				t.Errorf("server %d has wrong datacenter", s.ID)
			}
			if got := c.Server(s.ID); got != s {
				t.Errorf("Server(%d) lookup broken", s.ID)
			}
		}
	}
	if c.Server(-1) != nil || c.Server(999) != nil {
		t.Error("out-of-range server lookup not nil")
	}
}

func TestNearestDatacenter(t *testing.T) {
	c := newTestCloud(t, 5, 2)
	for _, dc := range c.Datacenters() {
		got := c.NearestDatacenter(dc.Endpoint.Loc)
		if got.ID != dc.ID {
			t.Errorf("nearest to DC %d returned %d", dc.ID, got.ID)
		}
	}
}

func TestAssignRemoveAndSameServer(t *testing.T) {
	c := newTestCloud(t, 2, 3)
	if err := c.AssignPlayerToServer(7, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignPlayerToServer(8, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignPlayerToServer(9, 5); err != nil {
		t.Fatal(err)
	}
	if !c.SameServer(7, 8) || c.SameServer(7, 9) {
		t.Error("SameServer wrong")
	}
	if c.ServerOf(7).ID != 0 || c.ServerOf(9).ID != 5 {
		t.Error("ServerOf wrong")
	}
	if c.Server(0).Load() != 2 {
		t.Errorf("server 0 load = %d", c.Server(0).Load())
	}
	// Reassignment moves, not duplicates.
	if err := c.AssignPlayerToServer(7, 1); err != nil {
		t.Fatal(err)
	}
	if c.Server(0).Load() != 1 || c.Server(1).Load() != 1 {
		t.Error("reassignment left residue")
	}
	c.RemovePlayer(7)
	if c.ServerOf(7) != nil || c.Server(1).Load() != 0 {
		t.Error("RemovePlayer incomplete")
	}
	c.RemovePlayer(7) // idempotent
	if err := c.AssignPlayerToServer(1, 999); err == nil {
		t.Error("assignment to unknown server accepted")
	}
	if c.SameServer(100, 101) {
		t.Error("unassigned players share a server")
	}
}

func TestAssignPlayerRandom(t *testing.T) {
	c := newTestCloud(t, 2, 10)
	r := rng.New(1)
	dc := c.Datacenters()[1]
	counts := map[int]int{}
	for p := 0; p < 500; p++ {
		s := c.AssignPlayerRandom(p, dc, r)
		if s.Datacenter != 1 {
			t.Fatal("random assignment left the datacenter")
		}
		counts[s.ID]++
	}
	for _, srv := range dc.Servers {
		if counts[srv.ID] == 0 {
			t.Errorf("server %d never chosen", srv.ID)
		}
	}
}

func TestInteractionCommMs(t *testing.T) {
	c := newTestCloud(t, 1, 2)
	c.AssignPlayerToServer(1, 0)
	c.AssignPlayerToServer(2, 0)
	c.AssignPlayerToServer(3, 1)
	if got := c.InteractionCommMs(1, 2); got != IntraServerCommMs {
		t.Errorf("same-server comm = %v", got)
	}
	if got := c.InteractionCommMs(1, 3); got != CrossServerCommMs {
		t.Errorf("cross-server comm = %v", got)
	}
	if got := c.InteractionCommMs(1, 99); got != CrossServerCommMs {
		t.Errorf("unassigned partner comm = %v (conservative case)", got)
	}
}

func TestUpdateBandwidth(t *testing.T) {
	if got := UpdateBandwidthKbps(10, 150); got != 1500 {
		t.Errorf("update bandwidth = %v", got)
	}
	if got := UpdateBandwidthKbps(10, 0); got != 10*DefaultUpdateKbps {
		t.Errorf("default update bandwidth = %v", got)
	}
	if got := UpdateBandwidthKbps(0, 150); got != 0 {
		t.Errorf("no supernodes should cost nothing: %v", got)
	}
}

func TestDatacentersUseStandardSites(t *testing.T) {
	c := newTestCloud(t, 4, 1)
	sites := geo.DatacenterSites(4)
	for i, dc := range c.Datacenters() {
		if dc.Endpoint.Loc != sites[i] {
			t.Errorf("datacenter %d at %+v, want %+v", i, dc.Endpoint.Loc, sites[i])
		}
	}
}
