package cloudinfra

import (
	"testing"

	"cloudfog/internal/protocol"
	"cloudfog/internal/rng"
	"cloudfog/internal/virtualworld"
)

// TestUpdateStreamMatchesLambda cross-validates the simulator's Λ constant
// (DefaultUpdateKbps, the cloud->supernode update bandwidth) against the
// actual wire-encoded update stream of the virtual-world substrate under a
// busy neighborhood: ~100 concurrently-acting avatars at 20 ticks/second.
// The simulator's Λ must be the right order of magnitude — neither a
// hand-wave nor video-sized.
func TestUpdateStreamMatchesLambda(t *testing.T) {
	const (
		players        = 100
		ticksPerSecond = 20
		seconds        = 5
	)
	r := rng.New(1)
	w := virtualworld.New(1024, 1024)
	for p := 1; p <= players; p++ {
		w.SpawnAvatar(p, r.Uniform(0, 1024), r.Uniform(0, 1024))
	}
	var bits int
	for tick := 0; tick < ticksPerSecond*seconds; tick++ {
		var actions []virtualworld.Action
		for p := 1; p <= players; p++ {
			// A typical input mix: mostly movement, some combat.
			if r.Bool(0.8) {
				actions = append(actions, virtualworld.Action{
					Player: p, Kind: virtualworld.ActMove,
					TargetX: r.Uniform(0, 1024), TargetY: r.Uniform(0, 1024),
				})
			}
		}
		deltas := w.Step(actions)
		batch := protocol.UpdateBatch{Tick: w.Tick(), Deltas: deltas}
		bits += batch.SizeBits()
	}
	kbps := float64(bits) / seconds / 1000
	t.Logf("measured update stream: %.1f kbps for %d active avatars", kbps, players)
	// Λ in the simulator is 150 kbps per supernode. The measured stream
	// for a full busy neighborhood must be within an order of magnitude
	// (interest management trims it further in practice).
	if kbps < DefaultUpdateKbps/3 || kbps > DefaultUpdateKbps*10 {
		t.Errorf("measured Λ %.1f kbps is not commensurate with the simulator's %v kbps",
			kbps, float64(DefaultUpdateKbps))
	}
	// And it must be far below a single game-video stream (~1200 kbps x
	// the supernode's players): the premise of the whole system.
	if kbps > 1200*players/10 {
		t.Errorf("update stream %.1f kbps not meaningfully below video scale", kbps)
	}
}
