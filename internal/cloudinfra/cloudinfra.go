// Package cloudinfra models the cloud side of CloudFog: datacenters, the
// servers inside them, player-to-server allocation, the inter-server
// communication cost that the social-network-based server assignment
// attacks, and the update stream the cloud pushes to supernodes.
//
// In CloudFog the cloud keeps the single authoritative copy of the virtual
// world: it collects player actions, computes the new game state, and sends
// compact update messages (bandwidth Λ per supernode) to the fog. Servers
// within a datacenter each own a partition of the players; when two players
// on different servers interact, their servers must exchange state, adding
// server-communication latency to the response path (§3.4).
package cloudinfra

import (
	"fmt"

	"cloudfog/internal/geo"
	"cloudfog/internal/netmodel"
	"cloudfog/internal/rng"
)

// Default model constants.
const (
	// DefaultUpdateKbps is Λ: the bandwidth of the cloud->supernode update
	// stream. Updates carry object/avatar state, not video, so they are an
	// order of magnitude smaller than a game video stream.
	DefaultUpdateKbps = 150

	// IntraServerCommMs is the state-exchange latency when interacting
	// players share a server (memory/local bus).
	IntraServerCommMs = 2
	// CrossServerCommMs is the state-exchange latency when interacting
	// players sit on different servers in a datacenter (network hop plus
	// synchronization round).
	CrossServerCommMs = 30
)

// Server is one game server inside a datacenter.
type Server struct {
	// ID is unique across the whole cloud.
	ID int
	// Datacenter is the owning datacenter's ID.
	Datacenter int
	// Players is the set of player IDs currently allocated to the server.
	Players map[int]struct{}
}

// Load returns the number of players allocated to the server.
func (s *Server) Load() int { return len(s.Players) }

// Datacenter is one cloud datacenter.
type Datacenter struct {
	// ID is the datacenter index.
	ID int
	// Endpoint is the datacenter's network attachment.
	Endpoint *netmodel.Endpoint
	// Servers are the game servers hosted inside.
	Servers []*Server
}

// Cloud is the set of datacenters plus the player->server allocation.
type Cloud struct {
	datacenters []*Datacenter
	servers     []*Server // flattened, indexed by Server.ID
	byPlayer    map[int]*Server
}

// New builds a cloud of nDatacenters datacenters (placed on the standard
// sites of geo.DatacenterSites), each hosting serversPerDC servers.
// Endpoint IDs are drawn from idAlloc, a caller-supplied counter, so they
// never collide with player or supernode endpoint IDs.
func New(nDatacenters, serversPerDC int, idAlloc func() int) (*Cloud, error) {
	if nDatacenters <= 0 {
		return nil, fmt.Errorf("cloudinfra: need at least one datacenter, got %d", nDatacenters)
	}
	if serversPerDC <= 0 {
		return nil, fmt.Errorf("cloudinfra: need at least one server per datacenter, got %d", serversPerDC)
	}
	sites := geo.DatacenterSites(nDatacenters)
	c := &Cloud{byPlayer: make(map[int]*Server)}
	serverID := 0
	for i, site := range sites {
		dc := &Datacenter{
			ID:       i,
			Endpoint: netmodel.NewDatacenterEndpoint(idAlloc(), site),
		}
		for j := 0; j < serversPerDC; j++ {
			s := &Server{ID: serverID, Datacenter: i, Players: make(map[int]struct{})}
			serverID++
			dc.Servers = append(dc.Servers, s)
			c.servers = append(c.servers, s)
		}
		c.datacenters = append(c.datacenters, dc)
	}
	return c, nil
}

// Datacenters returns the cloud's datacenters.
func (c *Cloud) Datacenters() []*Datacenter { return c.datacenters }

// NumServers returns the total number of servers across datacenters.
func (c *Cloud) NumServers() int { return len(c.servers) }

// Server returns the server with the given ID, or nil.
func (c *Cloud) Server(id int) *Server {
	if id < 0 || id >= len(c.servers) {
		return nil
	}
	return c.servers[id]
}

// NearestDatacenter returns the datacenter closest to the given location.
func (c *Cloud) NearestDatacenter(loc geo.Point) *Datacenter {
	pts := make([]geo.Point, len(c.datacenters))
	for i, dc := range c.datacenters {
		pts[i] = dc.Endpoint.Loc
	}
	i, _ := geo.Nearest(loc, pts)
	return c.datacenters[i]
}

// AssignPlayerToServer allocates a player to an explicit server, replacing
// any previous allocation.
func (c *Cloud) AssignPlayerToServer(playerID, serverID int) error {
	s := c.Server(serverID)
	if s == nil {
		return fmt.Errorf("cloudinfra: no server %d", serverID)
	}
	c.RemovePlayer(playerID)
	s.Players[playerID] = struct{}{}
	c.byPlayer[playerID] = s
	return nil
}

// AssignPlayerRandom allocates a player to a uniformly random server of the
// given datacenter — the baseline assignment of Fig. 12 and the rule for
// friendless newcomers.
func (c *Cloud) AssignPlayerRandom(playerID int, dc *Datacenter, r *rng.Rand) *Server {
	s := dc.Servers[r.Intn(len(dc.Servers))]
	c.RemovePlayer(playerID)
	s.Players[playerID] = struct{}{}
	c.byPlayer[playerID] = s
	return s
}

// ServerOf returns the server the player is allocated to, or nil.
func (c *Cloud) ServerOf(playerID int) *Server { return c.byPlayer[playerID] }

// RemovePlayer deallocates the player, if allocated.
func (c *Cloud) RemovePlayer(playerID int) {
	if s, ok := c.byPlayer[playerID]; ok {
		delete(s.Players, playerID)
		delete(c.byPlayer, playerID)
	}
}

// SameServer reports whether two players are allocated to the same server.
func (c *Cloud) SameServer(a, b int) bool {
	sa, sb := c.byPlayer[a], c.byPlayer[b]
	return sa != nil && sa == sb
}

// InteractionCommMs returns the server-communication component of the
// response latency for an interaction between two players: intra-server
// when co-located, cross-server otherwise (also when either player is not
// allocated, the conservative case).
func (c *Cloud) InteractionCommMs(a, b int) float64 {
	if c.SameServer(a, b) {
		return IntraServerCommMs
	}
	return CrossServerCommMs
}

// UpdateBandwidthKbps returns the total cloud egress spent on supernode
// update streams: Λ times the number of active supernodes.
func UpdateBandwidthKbps(activeSupernodes int, updateKbps float64) float64 {
	if updateKbps <= 0 {
		updateKbps = DefaultUpdateKbps
	}
	return updateKbps * float64(activeSupernodes)
}
