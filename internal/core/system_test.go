package core

import (
	"testing"

	"cloudfog/internal/sim"
	"cloudfog/internal/streaming"
	"cloudfog/internal/workload"
)

func TestDecisionRandStable(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	sysA, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The decision streams must be identical across systems with the same
	// seed — the property that makes cross-system comparisons fair.
	a := sysA.decisionRand("game", 5, 2, 7).Float64()
	b := sysB.decisionRand("game", 5, 2, 7).Float64()
	if a != b {
		t.Errorf("decision streams diverge: %v vs %v", a, b)
	}
	// ... and different across purposes, players, and times.
	if a == sysA.decisionRand("partner", 5, 2, 7).Float64() {
		t.Error("purpose does not separate streams")
	}
	if a == sysA.decisionRand("game", 6, 2, 7).Float64() {
		t.Error("player does not separate streams")
	}
	if a == sysA.decisionRand("game", 5, 3, 7).Float64() {
		t.Error("cycle does not separate streams")
	}
}

func TestDecisionRandStableAcrossModes(t *testing.T) {
	// Core guarantee: Cloud and CloudFog runs of the same seed draw the
	// same game choices per (player, day).
	cfgA := quickConfig(ModeCloud)
	cfgB := quickConfig(ModeCloudFog)
	sysA, _ := NewSystem(cfgA)
	sysB, _ := NewSystem(cfgB)
	for p := 0; p < 20; p++ {
		a := sysA.decisionRand("game", p, 1, 1).Float64()
		b := sysB.decisionRand("game", p, 1, 1).Float64()
		if a != b {
			t.Fatalf("mode changed the decision stream for player %d", p)
		}
	}
}

func TestLinkForSupernodeVsCloud(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	cfg.AlwaysOn = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(2, 0)
	// After the run everyone left; re-join a player manually through one
	// subcycle to inspect links.
	clock := sim.Clock{Cycle: 2, Subcycle: 1}
	r := sys.rRun.SplitNamed("test")
	var fogP, cloudP *Player
	for _, p := range sys.players {
		sys.ps.session[p.ID] = workload.Session{Start: 1, Duration: 24}
		sys.join(p, clock, false, r)
		if sys.ps.src[p.ID] == srcSupernode && fogP == nil {
			fogP = p
		}
		if sys.ps.src[p.ID] == srcCloud && cloudP == nil {
			cloudP = p
		}
		if fogP != nil && cloudP != nil {
			break
		}
	}
	if fogP == nil {
		t.Fatal("no fog-served player found")
	}
	link, oneway := sys.linkFor(fogP, clock)
	if link.EffectiveKbps <= 0 || link.OneWayMs <= 0 || oneway != link.OneWayMs {
		t.Errorf("fog link malformed: %+v oneway=%v", link, oneway)
	}
	if cloudP != nil {
		cl, _ := sys.linkFor(cloudP, clock)
		if cl.EffectiveKbps <= 0 {
			t.Errorf("cloud link malformed: %+v", cl)
		}
	}
}

func TestInteractionCommBounds(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	cfg.AlwaysOn = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Run(3, 1)
	// Mean server-communication latency sits between the intra- and
	// cross-server costs (plus nothing else in cloud-state modes).
	comm := m.ServerCommMs.Mean()
	if comm < 2 || comm > 30 {
		t.Errorf("mean comm %v outside [intra, cross]", comm)
	}
}

func TestSessionMeterFeedsSatisfaction(t *testing.T) {
	var meter streaming.Meter
	meter.Observe(1, 1, 10)
	if !meter.Satisfied() {
		t.Error("perfect session unsatisfied")
	}
}

func TestChurnPoolConservation(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	cfg.Arrivals = &workload.ArrivalScript{OffPeakPerMinute: 0.5, PeakPerMinute: 2}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(4, 1)
	// Every player is either online or back in the arrival pool: nobody
	// leaks out of the churn cycle.
	online := 0
	for _, p := range sys.players {
		if p.Online() {
			online++
		}
	}
	// finalize() closed all sessions, so everyone must be pooled.
	if online != 0 {
		t.Errorf("%d players online after finalize", online)
	}
	if got := len(sys.arrivalPool); got != cfg.Players {
		t.Errorf("arrival pool holds %d of %d players", got, cfg.Players)
	}
}

func TestFleetUtilizationBounds(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := sys.fleetUtilization()
	if u < 0.2 || u > 1 {
		t.Errorf("bootstrap utilization %v outside [0.2, 1]", u)
	}
}

func TestQualityLevelsWithinGameDefault(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	cfg.AlwaysOn = true
	cfg.Strategies = Strategies{Adaptation: true}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Run(4, 2)
	if m.QualityLevel.Max() > 5 || m.QualityLevel.Min() < 1 {
		t.Errorf("quality levels out of ladder: [%v, %v]",
			m.QualityLevel.Min(), m.QualityLevel.Max())
	}
	// Adaptation must sometimes deliver below the maximum rung.
	if m.QualityLevel.Min() == 5 {
		t.Error("adaptation never shed quality")
	}
}
