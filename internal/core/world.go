package core

import (
	"fmt"
	"sort"

	"cloudfog/internal/cloudinfra"
	"cloudfog/internal/fog"
	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/netmodel"
	"cloudfog/internal/provisioning"
	"cloudfog/internal/reputation"
	"cloudfog/internal/rng"
	"cloudfog/internal/selection"
	"cloudfog/internal/social"
	"cloudfog/internal/workload"
)

// sourceKind describes where a player's game video comes from.
type sourceKind uint8

const (
	srcNone sourceKind = iota
	srcCloud
	srcSupernode
	srcCDN
)

// Player is one end user of the simulated system. It is a thin handle: the
// identity fields below are stable for the player's lifetime, while the hot
// per-cycle state (online flag, video source, session schedule, meters)
// lives in the System's playerStore slices at index ID.
type Player struct {
	// ID is the player's dense index in [0, Players).
	ID int
	// Endpoint is the player's network attachment.
	Endpoint *netmodel.Endpoint
	// Behavior is the player's daily play-time class.
	Behavior workload.BehaviorClass
	// Game is the title the player currently plays.
	Game game.Game
	// Book is the player's private reputation ledger.
	Book *reputation.Book

	// st points back to the store holding this player's per-cycle state.
	st *playerStore
}

// Online reports whether the player is currently in a session.
func (p *Player) Online() bool { return p.st.online[p.ID] }

// cdnServer is an EdgeCloud-style edge server: state + render + stream.
type cdnServer struct {
	Index    int
	Endpoint *netmodel.Endpoint
	Capacity int
	players  map[int]struct{}
}

func (s *cdnServer) available() int { return s.Capacity - len(s.players) }

// supernodeMeta carries per-supernode simulation state beyond fog.Supernode.
type supernodeMeta struct {
	// throttleGroup is the owner's willingness profile: 1.0 (always
	// willing), 0.8, or 0.5 (throttles with 50% probability per cycle).
	throttleGroup float64
	// prevSupported is N_i from the previous provisioning slot.
	prevSupported int
	// supportedThisSlot accumulates distinct serving load this slot.
	supportedThisSlot int
}

// System is one simulated deployment of a gaming system.
type System struct {
	cfg   Config
	model *netmodel.Model
	games []game.Game

	players []*Player
	// ps holds the hot per-cycle player state (see playerStore).
	ps    *playerStore
	graph *social.Graph
	// friends[i] is player i's friend list, sorted ascending — precomputed
	// once from the immutable graph so the per-subcycle interaction scan
	// neither allocates nor re-sorts.
	friends [][]int32

	cloud      *cloudinfra.Cloud
	fogMgr     *fog.Manager
	selector   *fog.Selector
	snMeta     map[int]*supernodeMeta
	cdn        []*cdnServer
	forecaster *provisioning.Forecaster
	coplay     *social.CoPlayRecorder
	// lastAssignCycle is the cycle of the most recent weekly assignment.
	lastAssignCycle int

	metrics Metrics

	rBuild *rng.Rand
	rRun   *rng.Rand

	// churn-mode state (arrival-script experiments)
	arrivalPool []int // offline player IDs available to join

	// shards partitions player indices by region for the parallel tick
	// workers (see parallel.go). Built once: regions are static.
	shards [][]int32
	// evalResults is the per-player result buffer of the parallel eval
	// phase, reused every subcycle.
	evalResults []evalResult
	// seqScratch is the eval scratch of the sequential path and of the
	// control-plane phases (join), which always run single-threaded.
	seqScratch evalScratch
	// workerScratch holds one evalScratch per parallel worker.
	workerScratch []evalScratch
	// shardRands buffers the per-shard streams derived each subcycle.
	shardRands []*rng.Rand

	// assignment scratch (see assignStateServer): per-server friend counts
	// and the touched-server list, reused across joins at zero allocations.
	srvCount   []int32
	srvTouched []int32
	// friendGameScratch collects online friends' game IDs during join.
	friendGameScratch []int
}

// NewSystem builds a deployment from cfg. Construction is deterministic in
// cfg.Seed.
func NewSystem(cfg Config) (*System, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	master := rng.New(cfg.Seed)
	s := &System{
		cfg:    cfg,
		games:  game.Catalog(),
		snMeta: make(map[int]*supernodeMeta),
		rBuild: master.SplitNamed("build"),
		rRun:   master.SplitNamed("run"),
	}
	s.model = netmodel.NewModel(cfg.Net, cfg.Seed^0xc10dF09)
	if err := s.buildWorld(); err != nil {
		return nil, err
	}
	return s, nil
}

// Config returns the normalized configuration of the system.
func (s *System) Config() Config { return s.cfg }

// Model returns the system's network model.
func (s *System) Model() *netmodel.Model { return s.model }

// Players returns the player population.
func (s *System) Players() []*Player { return s.players }

// Graph returns the friendship graph.
func (s *System) Graph() *social.Graph { return s.graph }

// Fog returns the supernode registry (nil outside ModeCloudFog).
func (s *System) Fog() *fog.Manager { return s.fogMgr }

// Cloud returns the datacenter infrastructure.
func (s *System) Cloud() *cloudinfra.Cloud { return s.cloud }

func (s *System) buildWorld() error {
	cfg := s.cfg
	nextID := 0
	idAlloc := func() int { nextID++; return nextID - 1 }

	placer := geo.NewPlacer(nil)
	rPlace := s.rBuild.SplitNamed("place")
	rNet := s.rBuild.SplitNamed("net")
	rBehavior := s.rBuild.SplitNamed("behavior")

	// Players.
	s.ps = newPlayerStore(cfg.Players)
	s.players = make([]*Player, cfg.Players)
	for i := 0; i < cfg.Players; i++ {
		ep := netmodel.NewPlayerEndpoint(idAlloc(), placer.PlacePlayer(rPlace), rNet)
		p := &Player{
			ID:       i,
			Endpoint: ep,
			Behavior: workload.SampleBehavior(rBehavior),
			Book:     reputation.NewBook(cfg.Lambda),
			Game:     s.games[rBehavior.Intn(len(s.games))],
		}
		if idx := s.ps.alloc(p); idx != i {
			return fmt.Errorf("player store allocated index %d for player %d", idx, i)
		}
		s.players[i] = p
	}

	// Social graph: power-law friends (skew 1.5) planted over guilds.
	s.graph = social.Generate(social.GenerateConfig{
		N:    cfg.Players,
		Skew: 1.5,
	}, s.rBuild.SplitNamed("social"))
	// The graph is immutable after Generate: freeze each player's friend
	// list, sorted, so the hot interaction path never allocates or sorts.
	s.friends = make([][]int32, cfg.Players)
	for i := 0; i < cfg.Players; i++ {
		fs := s.graph.Friends(i)
		out := make([]int32, len(fs))
		for j, f := range fs {
			out[j] = int32(f)
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		s.friends[i] = out
	}
	// Implicit friendships: co-play within the recent week (§3.4).
	s.coplay = social.NewCoPlayRecorder(0, 0)

	// Cloud datacenters.
	cloud, err := cloudinfra.New(cfg.Datacenters, cfg.ServersPerDC, idAlloc)
	if err != nil {
		return fmt.Errorf("build cloud: %w", err)
	}
	s.cloud = cloud
	for _, p := range s.players {
		s.ps.dc[p.ID] = int32(s.cloud.NearestDatacenter(p.Endpoint.Loc).ID)
	}
	s.buildShards()

	switch cfg.Mode {
	case ModeCloudFog:
		s.buildFog(idAlloc)
	case ModeCDN:
		s.buildCDN(placer, idAlloc)
	case ModeCloud:
		// nothing extra
	}
	return nil
}

// buildFog deploys supernodes from the candidate pool. Candidates are
// sampled from the player population's geography (contributed machines live
// where players live), with capacities Pareto(α=2).
func (s *System) buildFog(idAlloc func() int) {
	cfg := s.cfg
	rFog := s.rBuild.SplitNamed("fog")
	s.fogMgr = fog.NewManager(s.model)
	s.fogMgr.CandidateListSize = cfg.CandidateListSize

	placer := geo.NewPlacer(nil)
	for i := 0; i < cfg.SupernodeCandidates; i++ {
		// Contributed machines are a mix of players' own computers
		// (metro-clustered) and organizations' idle desktops (spread out).
		loc := placer.PlacePlayer(rFog)
		if rFog.Bool(0.4) {
			loc = placer.PlaceUniform(rFog)
		}
		ep := netmodel.NewSupernodeEndpoint(idAlloc(), loc, rFog)
		capacity := netmodel.SupernodeCapacity(rFog, cfg.SupernodeCapacityMin, cfg.SupernodeCapacityMax)
		// A supernode only advertises the slots its uplink can feed with
		// headroom above the top-ladder bitrate (~5 Mbps per slot), so
		// streams survive congestion dips — part of the "superior network
		// connection" requirement of §3.1.1.
		if byBW := int(ep.UploadKbps / 5000); capacity > byBW && byBW >= 1 {
			capacity = byBW
		}
		if cfg.ForcedSupernodeLoad > 0 {
			capacity = cfg.ForcedSupernodeLoad
		}
		sn := fog.NewSupernode(ep, capacity)
		sn.Active = i < cfg.Supernodes
		s.fogMgr.Register(sn)

		meta := &supernodeMeta{throttleGroup: 1}
		// 1/5 of supernodes throttle to 80%, a further 1/10 to 50%.
		switch {
		case i%5 == 1:
			meta.throttleGroup = 0.8
		case i%10 == 4:
			meta.throttleGroup = 0.5
		}
		s.snMeta[sn.ID] = meta
	}

	// Policies live in internal/selection, the §3.2 engine shared with the
	// live fognet prototype; fog re-exports them for compatibility.
	policy := selection.PolicyRandom
	if cfg.Strategies.Reputation {
		policy = selection.PolicyReputation
	}
	s.selector = &fog.Selector{
		Manager:       s.fogMgr,
		Model:         s.model,
		CloudEndpoint: s.cloud.Datacenters()[0].Endpoint,
		Policy:        policy,
	}
}

// buildCDN deploys randomly distributed CDN servers (EdgeCloud).
func (s *System) buildCDN(placer *geo.Placer, idAlloc func() int) {
	rCDN := s.rBuild.SplitNamed("cdn")
	for i := 0; i < s.cfg.CDNServers; i++ {
		ep := netmodel.NewSupernodeEndpoint(idAlloc(), placer.PlaceUniform(rCDN), rCDN)
		ep.UploadKbps = 200000 // CDN servers have specialized resources
		ep.DownloadKbps = 200000
		ep.AccessRTTMs = 2
		s.cdn = append(s.cdn, &cdnServer{
			Index:    i,
			Endpoint: ep,
			Capacity: s.cfg.CDNServerCapacity,
			players:  make(map[int]struct{}),
		})
	}
}

// nearestCDNWithCapacity returns the closest CDN server that can take one
// more player, or nil.
func (s *System) nearestCDNWithCapacity(loc geo.Point) *cdnServer {
	var best *cdnServer
	bestD := 0.0
	for _, srv := range s.cdn {
		if srv.available() <= 0 {
			continue
		}
		d := geo.Distance(loc, srv.Endpoint.Loc)
		if best == nil || d < bestD {
			best, bestD = srv, d
		}
	}
	return best
}

// onlineFriends appends player id's currently-online friends to buf (which
// it first truncates) and returns it. The result is ascending by ID — the
// precomputed friends list is sorted and filtering preserves order.
func (s *System) onlineFriends(id int, buf []int32) []int32 {
	buf = buf[:0]
	for _, f := range s.friends[id] {
		if s.ps.online[f] {
			buf = append(buf, f)
		}
	}
	return buf
}
