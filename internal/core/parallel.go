package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cloudfog/internal/game"
	"cloudfog/internal/rng"
	"cloudfog/internal/sim"
	"cloudfog/internal/stats"
)

// The parallel tick pipeline.
//
// The streaming-evaluation phase — the simulator's hot loop — runs in two
// steps with a strict determinism contract:
//
//  1. compute: every online player's evaluation (computeEval) runs
//     independently, possibly concurrently, writing into that player's
//     private evalResult slot. Compute touches only per-player state and
//     draws randomness exclusively from hash-keyed decision streams
//     (decisionRand, netmodel.CongestionFactor), which depend on
//     (seed, player, cycle, subcycle) alone — never on execution order.
//  2. apply: a single goroutine walks players in ascending index — the
//     canonical schedule — committing each result's shared-state effects
//     (float metric Adds, co-play records, egress sums) via applyEval.
//
// Because step 1 is order-independent and step 2 replays the exact
// floating-point operation sequence of the historical sequential loop, the
// seeded output is bit-identical for ANY worker count, including the
// -parallel=0 legacy ordering (which interleaves compute and apply per
// player; the interleaving is immaterial precisely because compute never
// reads the state apply mutates). The only phase output assembled outside
// canonical order is the response-latency histogram: workers fill private
// scratch histograms and the integer bucket counts merge exactly in any
// order (stats.Histogram.Merge).

// shardSize is the target player count per work unit. Shards partition each
// region's players; workers claim whole shards via an atomic cursor, so the
// unit must be large enough to amortize the claim and small enough to
// balance load across heterogeneous regions.
const shardSize = 2048

// evalResult is one player's per-subcycle evaluation outcome: everything
// applyEval needs to commit shared-state effects in canonical order.
type evalResult struct {
	bitrate       float64
	respMs        float64
	commMs        float64
	level         game.QualityLevel
	fogServed     bool
	cloud         bool
	coplayPartner int32
	coplayRecord  bool
}

// evalScratch is worker-local scratch reused across players and subcycles.
type evalScratch struct {
	// friends buffers the online-friends filter (onlineFriends).
	friends []int32
	// respHist collects response latencies for quantile estimation; merged
	// into Metrics.ResponseLatencyHist after each eval phase.
	respHist *stats.Histogram
	// keyed is the reusable generator for hash-keyed per-player draws
	// (partner choice, congestion factor): reseeded before every use, so it
	// carries no state between players and stays worker-local.
	keyed *rng.Rand
}

// ensureHist lazily allocates the worker-local latency histogram: one
// allocation per worker per run, zero in steady state.
//
//cfg:amortized
func (sc *evalScratch) ensureHist() {
	if sc.respHist == nil {
		sc.respHist = newResponseHist()
	}
}

// ensureKeyed lazily allocates the reusable keyed-draw generator: one
// allocation per worker per run, zero in steady state.
//
//cfg:amortized
func (sc *evalScratch) ensureKeyed() *rng.Rand {
	if sc.keyed == nil {
		sc.keyed = rng.New(0)
	}
	return sc.keyed
}

// buildShards partitions player indices by region (nearest datacenter) into
// work units for the eval phase. Regions are static after construction, so
// this runs once. Within a shard, and across shards of one region, indices
// stay ascending.
func (s *System) buildShards() {
	byDC := make([][]int32, s.cfg.Datacenters)
	for i := range s.players {
		dc := s.ps.dc[i]
		byDC[dc] = append(byDC[dc], int32(i))
	}
	s.shards = s.shards[:0]
	for _, region := range byDC {
		for start := 0; start < len(region); start += shardSize {
			end := start + shardSize
			if end > len(region) {
				end = len(region)
			}
			s.shards = append(s.shards, region[start:end])
		}
	}
	s.evalResults = make([]evalResult, len(s.players))
}

// workerCount resolves cfg.Workers: negative forces the legacy sequential
// ordering, zero sizes the pool by GOMAXPROCS, positive is taken literally.
func (s *System) workerCount() int {
	switch {
	case s.cfg.Workers < 0:
		return 0 // legacy sequential path
	case s.cfg.Workers == 0:
		return runtime.GOMAXPROCS(0)
	default:
		return s.cfg.Workers
	}
}

// evalPhase runs the streaming evaluation for one subcycle and returns the
// online-player count and the cloud egress sum. rSub is the subcycle's
// control stream; the parallel path derives one child stream per shard from
// it, in shard order, so any eval-phase consumer of shard randomness is
// pinned to the shard, not the worker.
func (s *System) evalPhase(clock sim.Clock, measured bool, rSub *rng.Rand) (online int, cloudEgressKbps float64) {
	w := s.workerCount()
	if w == 0 {
		return s.evalSequential(clock, measured, rSub)
	}

	// Per-shard streams, derived in shard index order before any worker
	// starts: the k-th shard's stream is a pure function of (seed, k).
	if cap(s.shardRands) < len(s.shards) {
		s.shardRands = make([]*rng.Rand, len(s.shards))
	}
	shardRands := s.shardRands[:len(s.shards)]
	for i := range shardRands {
		shardRands[i] = rSub.Split()
	}
	if len(s.workerScratch) < w {
		s.workerScratch = make([]evalScratch, w)
	}

	// Compute: workers claim shards via an atomic cursor. Which worker
	// evaluates which shard is scheduling-dependent and deliberately
	// irrelevant: results land in per-player slots, and scratch histograms
	// merge order-insensitively.
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(sc *evalScratch) {
			defer wg.Done()
			for {
				c := int(cursor.Add(1) - 1)
				if c >= len(s.shards) {
					return
				}
				r := shardRands[c]
				for _, idx := range s.shards[c] {
					if !s.ps.online[idx] {
						continue
					}
					s.computeEval(int(idx), clock, measured, r, sc, &s.evalResults[idx])
				}
			}
		}(&s.workerScratch[k])
	}
	wg.Wait()

	// Apply, in canonical (ascending player index) order.
	for i := range s.players {
		if !s.ps.online[i] {
			continue
		}
		online++
		res := &s.evalResults[i]
		s.applyEval(i, clock, measured, res)
		if res.cloud {
			cloudEgressKbps += res.bitrate
		}
	}
	if measured {
		for k := 0; k < w; k++ {
			s.mergeRespHist(&s.workerScratch[k])
		}
	}
	return online, cloudEgressKbps
}

// evalSequential is the legacy ordering (-parallel=0): one pass over the
// players in index order, applying each result as it is computed. Kept for
// bisection — its output is asserted bit-identical to the parallel path by
// the equivalence tests.
//
//cfg:allocfree
func (s *System) evalSequential(clock sim.Clock, measured bool, rSub *rng.Rand) (online int, cloudEgressKbps float64) {
	sc := &s.seqScratch
	for i := range s.players {
		if !s.ps.online[i] {
			continue
		}
		online++
		res := &s.evalResults[i]
		s.computeEval(i, clock, measured, rSub, sc, res)
		s.applyEval(i, clock, measured, res)
		if res.cloud {
			cloudEgressKbps += res.bitrate
		}
	}
	if measured {
		s.mergeRespHist(sc)
	}
	return online, cloudEgressKbps
}

// mergeRespHist folds a scratch histogram into the run metrics and resets
// it for the next phase.
func (s *System) mergeRespHist(sc *evalScratch) {
	if sc.respHist == nil || sc.respHist.N() == 0 {
		return
	}
	s.metrics.ensureHist()
	s.metrics.ResponseLatencyHist.Merge(sc.respHist)
	sc.respHist.Reset()
}
