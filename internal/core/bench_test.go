package core

import (
	"runtime"
	"testing"

	"cloudfog/internal/workload"
)

// The scale benchmarks behind `make bench-sim-json` / BENCH_sim.json. Each
// row simulates a full seeded deployment and reports:
//
//   - playerticks/s — player-subcycle evaluations per wall second, the
//     simulator's throughput. The Seq/Par pairs at one scale share a config
//     except for Config.Workers, so their ratio is the parallel speedup
//     (≈1 on a single-core runner; the ≥5× acceptance bar applies to the
//     multi-core CI runner that regenerates this file).
//   - heapMB/run — the Go heap footprint after the run, the streaming-
//     metrics memory bar: O(1) in players means the 1M row stays within CI
//     memory limits instead of accumulating 24M raw float64 samples.
//
// The 10k row is the paper's PeerSim deployment (CloudFog/A, every player
// concurrent — the heaviest per-tick path: fog selection, adaptation,
// reputation). The 100k and 1M rows scale the population in ModeCloud,
// which isolates the tick loop itself: fog capacity is fixed by the paper's
// deployment, so at 100× population the fog would serve a sliver of players
// and the run would measure cloud fallback anyway.

func benchSimConfig(players int) Config {
	cfg := PeerSim()
	cfg.AlwaysOn = true
	if players <= cfg.Players {
		cfg.Strategies = AllStrategies()
		return cfg
	}
	cfg.Mode = ModeCloud
	cfg.Players = players
	cfg.SupernodeCandidates = 1 // skip building an unused 100k-node fog
	return cfg
}

func runSimBench(b *testing.B, players, cycles, workers int) {
	cfg := benchSimConfig(players)
	cfg.Workers = workers
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sys.Run(cycles, 0)
	}
	ticks := float64(players) * float64(workload.SubcyclesPerCycle) * float64(cycles) * float64(b.N)
	b.ReportMetric(ticks/b.Elapsed().Seconds(), "playerticks/s")
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapSys)/1e6, "heapMB/run")
}

func BenchmarkSimPlayers10kSeq(b *testing.B)  { runSimBench(b, 10_000, 2, -1) }
func BenchmarkSimPlayers10kPar(b *testing.B)  { runSimBench(b, 10_000, 2, 0) }
func BenchmarkSimPlayers100kSeq(b *testing.B) { runSimBench(b, 100_000, 1, -1) }
func BenchmarkSimPlayers100kPar(b *testing.B) { runSimBench(b, 100_000, 1, 0) }
func BenchmarkSimPlayers1MPar(b *testing.B)   { runSimBench(b, 1_000_000, 1, 0) }
