package core

import (
	"testing"

	"cloudfog/internal/sim"
	"cloudfog/internal/workload"
)

// quickConfig returns a small deployment that runs in milliseconds.
func quickConfig(mode Mode) Config {
	cfg := PeerSim()
	cfg.Mode = mode
	cfg.Players = 300
	cfg.Supernodes = 25
	cfg.SupernodeCandidates = 40
	cfg.CDNServers = 12
	cfg.Seed = 7
	return cfg
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := NewSystem(Config{Players: 10}); err == nil {
		t.Error("zero datacenters accepted")
	}
}

func TestNormalizeDefaults(t *testing.T) {
	cfg, err := Config{Players: 100, Datacenters: 2}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != ModeCloudFog || cfg.ServersPerDC != 50 || cfg.Lambda != 0.9 ||
		cfg.Theta != 0.5 || cfg.UpdateKbps != 150 || cfg.CandidateListSize != 8 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.SupernodeCandidates != 10 {
		t.Errorf("candidate pool default = %d, want players/10", cfg.SupernodeCandidates)
	}
}

func TestModeString(t *testing.T) {
	if ModeCloud.String() != "Cloud" || ModeCDN.String() != "CDN" ||
		ModeCloudFog.String() != "CloudFog" || Mode(0).String() != "unknown" {
		t.Error("Mode.String mismatch")
	}
}

func TestWorldConstruction(t *testing.T) {
	sys, err := NewSystem(quickConfig(ModeCloudFog))
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Players()) != 300 {
		t.Errorf("players = %d", len(sys.Players()))
	}
	if sys.Graph().N() != 300 {
		t.Error("graph size mismatch")
	}
	if sys.Fog() == nil {
		t.Fatal("fog missing in CloudFog mode")
	}
	if got := sys.Fog().NumActive(); got != 25 {
		t.Errorf("active supernodes = %d", got)
	}
	if len(sys.Fog().All()) != 40 {
		t.Errorf("candidate pool = %d", len(sys.Fog().All()))
	}
	if sys.Cloud().NumServers() != 5*50 {
		t.Errorf("servers = %d", sys.Cloud().NumServers())
	}
	// Every player has a nearest-datacenter assignment and an endpoint.
	for _, p := range sys.Players() {
		if p.Endpoint == nil {
			t.Fatal("player without endpoint")
		}
		if dc := sys.ps.dc[p.ID]; dc < 0 || dc >= 5 {
			t.Fatalf("player dc = %d", dc)
		}
	}
}

func TestCloudModeHasNoFog(t *testing.T) {
	sys, err := NewSystem(quickConfig(ModeCloud))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Fog() != nil {
		t.Error("cloud mode built a fog")
	}
}

func TestRunProducesMetrics(t *testing.T) {
	sys, err := NewSystem(quickConfig(ModeCloudFog))
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Run(4, 2)
	snap := m.Snapshot()
	if snap.Sessions == 0 {
		t.Fatal("no sessions measured")
	}
	if snap.MeanResponseLatencyMs <= 0 {
		t.Error("no response latency recorded")
	}
	if snap.MeanContinuity <= 0 || snap.MeanContinuity > 1 {
		t.Errorf("continuity = %v", snap.MeanContinuity)
	}
	if snap.MeanCloudEgressMbps < 0 {
		t.Error("negative egress")
	}
	if snap.MeanPlayerJoinMs <= 0 {
		t.Error("no join latency recorded")
	}
	if snap.FogServedFraction <= 0 {
		t.Error("fog served nobody")
	}
	if snap.MeanOnlinePlayers <= 0 {
		t.Error("nobody online")
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() Snapshot {
		sys, err := NewSystem(quickConfig(ModeCloudFog))
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run(3, 1).Snapshot()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same-seed runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestSeedChangesResults(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	sysA, _ := NewSystem(cfg)
	cfg.Seed = 99
	sysB, _ := NewSystem(cfg)
	a := sysA.Run(3, 1).Snapshot()
	b := sysB.Run(3, 1).Snapshot()
	if a == b {
		t.Error("different seeds produced identical snapshots")
	}
}

func TestModesOrderings(t *testing.T) {
	// The headline result at small scale: CloudFog consumes far less
	// cloud bandwidth than Cloud, and Cloud consumes the most.
	snaps := map[Mode]Snapshot{}
	for _, mode := range []Mode{ModeCloud, ModeCDN, ModeCloudFog} {
		cfg := quickConfig(mode)
		cfg.AlwaysOn = true
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		snaps[mode] = sys.Run(4, 2).Snapshot()
	}
	if !(snaps[ModeCloud].MeanCloudEgressMbps > snaps[ModeCDN].MeanCloudEgressMbps) {
		t.Errorf("egress: Cloud %v <= CDN %v",
			snaps[ModeCloud].MeanCloudEgressMbps, snaps[ModeCDN].MeanCloudEgressMbps)
	}
	if !(snaps[ModeCDN].MeanCloudEgressMbps > snaps[ModeCloudFog].MeanCloudEgressMbps) {
		t.Errorf("egress: CDN %v <= CloudFog %v",
			snaps[ModeCDN].MeanCloudEgressMbps, snaps[ModeCloudFog].MeanCloudEgressMbps)
	}
	if !(snaps[ModeCloudFog].MeanResponseLatencyMs < snaps[ModeCloud].MeanResponseLatencyMs) {
		t.Errorf("latency: CloudFog %v >= Cloud %v",
			snaps[ModeCloudFog].MeanResponseLatencyMs, snaps[ModeCloud].MeanResponseLatencyMs)
	}
}

func TestAdvancedBeatsBasic(t *testing.T) {
	run := func(s Strategies) Snapshot {
		cfg := quickConfig(ModeCloudFog)
		cfg.AlwaysOn = true
		cfg.Strategies = s
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run(8, 4).Snapshot()
	}
	basic := run(Strategies{})
	advanced := run(AllStrategies())
	if advanced.MeanContinuity <= basic.MeanContinuity {
		t.Errorf("CloudFog/A continuity %v <= /B %v",
			advanced.MeanContinuity, basic.MeanContinuity)
	}
	if advanced.MeanResponseLatencyMs >= basic.MeanResponseLatencyMs {
		t.Errorf("CloudFog/A latency %v >= /B %v",
			advanced.MeanResponseLatencyMs, basic.MeanResponseLatencyMs)
	}
}

func TestSupernodeFailureMigration(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	cfg.AlwaysOn = true
	cfg.FailSupernodesPerCycle = 3
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Run(4, 1)
	if m.MigrationMs.N() == 0 {
		t.Fatal("failure injection produced no migrations")
	}
	if m.MigrationMs.Mean() <= 0 {
		t.Error("zero migration latency")
	}
	// Fleet must be stable: failed supernodes rejoin.
	if got := sys.Fog().NumActive(); got != cfg.Supernodes {
		t.Errorf("active supernodes after failures = %d, want %d", got, cfg.Supernodes)
	}
}

func TestFailSupernodesDirect(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	cfg.AlwaysOn = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(2, 0)
	// After the run everyone is offline (finalize), so failing supernodes
	// displaces no online players.
	if n := sys.FailSupernodes(2, sim.Clock{Cycle: 2, Subcycle: 1}); n != 0 {
		t.Errorf("migrated %d players after finalize", n)
	}
	if sys.FailSupernodes(0, sim.Clock{}) != 0 {
		t.Error("failing zero supernodes migrated players")
	}
}

func TestChurnModeArrivals(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	cfg.Arrivals = &workload.ArrivalScript{OffPeakPerMinute: 0.5, PeakPerMinute: 2}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Run(4, 1)
	snap := m.Snapshot()
	if snap.MeanOnlinePlayers <= 0 {
		t.Fatal("churn mode produced no online players")
	}
	if snap.Sessions == 0 {
		t.Fatal("churn mode recorded no sessions")
	}
}

func TestProvisioningScalesFleet(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	cfg.Arrivals = &workload.ArrivalScript{OffPeakPerMinute: 0.5, PeakPerMinute: 3}
	cfg.Strategies = Strategies{Provisioning: true}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Run(6, 2)
	if m.ActiveSupernodes.N() == 0 {
		t.Fatal("no supernode counts recorded")
	}
	// Provisioning must actually vary the fleet (min < max).
	if m.ActiveSupernodes.Min() >= m.ActiveSupernodes.Max() {
		t.Errorf("fleet never varied: min=%v max=%v",
			m.ActiveSupernodes.Min(), m.ActiveSupernodes.Max())
	}
}

func TestFixedPoolHolds(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	cfg.Arrivals = &workload.ArrivalScript{OffPeakPerMinute: 0.5, PeakPerMinute: 3}
	cfg.FixedSupernodePool = 10
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Run(4, 1)
	if m.ActiveSupernodes.Min() != 10 || m.ActiveSupernodes.Max() != 10 {
		t.Errorf("fixed pool varied: min=%v max=%v",
			m.ActiveSupernodes.Min(), m.ActiveSupernodes.Max())
	}
}

func TestSocialAssignmentReducesComm(t *testing.T) {
	run := func(social bool) Snapshot {
		cfg := quickConfig(ModeCloudFog)
		cfg.Players = 600
		cfg.Datacenters = 1
		cfg.ServersPerDC = 20
		cfg.AlwaysOn = true
		cfg.Strategies = Strategies{SocialAssignment: social}
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run(4, 2).Snapshot()
	}
	with, without := run(true), run(false)
	if with.MeanServerCommMs >= without.MeanServerCommMs {
		t.Errorf("social assignment did not cut server comm: %v vs %v",
			with.MeanServerCommMs, without.MeanServerCommMs)
	}
	if with.MeanModularity <= 0 {
		t.Errorf("modularity %v not positive", with.MeanModularity)
	}
	if with.MeanServerAssignMs <= 0 {
		t.Error("assignment latency not recorded")
	}
}

func TestSnapshotOtherLatencyDecomposition(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := sys.Run(3, 1).Snapshot()
	sum := snap.MeanServerCommMs + snap.MeanOtherLatencyMs
	if diff := sum - snap.MeanResponseLatencyMs; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("decomposition broken: %v + %v != %v",
			snap.MeanServerCommMs, snap.MeanOtherLatencyMs, snap.MeanResponseLatencyMs)
	}
}

func TestForcedSupernodeLoad(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	cfg.ForcedSupernodeLoad = 7
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sn := range sys.Fog().All() {
		if sn.Capacity != 7 {
			t.Fatalf("supernode capacity %d, want forced 7", sn.Capacity)
		}
	}
}

func TestPlanetLabProfile(t *testing.T) {
	cfg := PlanetLab()
	cfg.Players = 200
	cfg.Supernodes = 10
	cfg.SupernodeCandidates = 15
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := sys.Run(3, 1).Snapshot()
	if snap.Sessions == 0 {
		t.Error("PlanetLab profile produced no sessions")
	}
	if len(sys.Cloud().Datacenters()) != 2 {
		t.Errorf("PlanetLab datacenters = %d", len(sys.Cloud().Datacenters()))
	}
}

func TestCoverageStudy(t *testing.T) {
	cfg := PeerSim()
	cfg.Players = 800
	cs, err := NewCoverageStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ths := []float64{30, 70, 110}
	cov5 := cs.CoverageVsDatacenters(5, ths)
	cov25 := cs.CoverageVsDatacenters(25, ths)
	for i := range ths {
		if cov5[i] < 0 || cov5[i] > 1 {
			t.Fatalf("coverage out of range: %v", cov5[i])
		}
		if cov25[i] < cov5[i]-1e-9 {
			t.Errorf("more datacenters reduced coverage at %vms: %v -> %v",
				ths[i], cov5[i], cov25[i])
		}
	}
	// Stricter requirements cover fewer players.
	if !(cov5[0] <= cov5[1] && cov5[1] <= cov5[2]) {
		t.Errorf("coverage not monotone in requirement: %v", cov5)
	}
	// Supernodes help beyond the datacenter baseline.
	base := cs.CoverageVsSupernodes(0, ths)
	many := cs.CoverageVsSupernodes(300, ths)
	for i := range ths {
		if many[i] < base[i]-1e-9 {
			t.Errorf("supernodes reduced coverage at %vms", ths[i])
		}
	}
	if many[1] <= base[1] {
		t.Errorf("300 supernodes did not raise 70ms coverage: %v vs %v", many[1], base[1])
	}
}

func TestCoverageStudyValidation(t *testing.T) {
	if _, err := NewCoverageStudy(Config{}); err == nil {
		t.Error("invalid coverage config accepted")
	}
}

// TestStateDigestDeterministic is the simulator-side replay assertion the
// recovery work leans on: identical configs driven through the full
// protocol land on the identical state digest, and a different seed lands
// elsewhere.
func TestStateDigestDeterministic(t *testing.T) {
	run := func(seed uint64) uint64 {
		cfg := quickConfig(ModeCloudFog)
		cfg.Seed = seed
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(2, 1)
		return sys.StateDigest()
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed diverged: %#x vs %#x", a, b)
	}
	if c := run(8); c == a {
		t.Errorf("different seed produced identical digest %#x", c)
	}
}
