package core

import (
	"cloudfog/internal/adaptation"
	"cloudfog/internal/streaming"
	"cloudfog/internal/workload"
)

// playerStore keeps the hot per-cycle player state in parallel slices
// (structure-of-arrays) indexed by the player's dense index. The tick loops
// touch online/src/session for every player every subcycle; packing those
// fields contiguously keeps the scans cache-dense instead of chasing one
// heap object per player, and gives the parallel tick workers plain slices
// to index without sharing Player structs.
//
// A *Player stays the public handle: it carries the cold identity fields
// (endpoint, behavior, reputation book) plus a back-pointer here, so
// existing call sites keep working. The invariant throughout the simulator
// is dense index == Player.ID == player endpoint ID.
type playerStore struct {
	// online reports whether the slot's player is in a session.
	online []bool
	// src is where the player's video comes from (srcNone when offline).
	src []sourceKind
	// supernode is the serving supernode ID when src == srcSupernode.
	supernode []int32
	// cdnServer is the serving CDN server index when src == srcCDN.
	cdnServer []int32
	// dc is the player's nearest datacenter index (static after build).
	dc []int32
	// session is the player's play schedule for the current cycle.
	session []workload.Session
	// meter accumulates the current session's streaming quality.
	meter []streaming.Meter
	// ctrl is the per-session rate controller, valid while ctrlOn is set.
	// Controllers are stored by value and Reset per session, so steady-state
	// session churn allocates nothing.
	ctrl []adaptation.Controller
	// ctrlOn marks slots whose controller is live for the current session.
	ctrlOn []bool
	// handles maps a dense index back to its Player handle (nil for freed
	// slots).
	handles []*Player
	// free is the LIFO free-list of released dense indices.
	free []int32
}

func newPlayerStore(capacity int) *playerStore {
	return &playerStore{
		online:    make([]bool, 0, capacity),
		src:       make([]sourceKind, 0, capacity),
		supernode: make([]int32, 0, capacity),
		cdnServer: make([]int32, 0, capacity),
		dc:        make([]int32, 0, capacity),
		session:   make([]workload.Session, 0, capacity),
		meter:     make([]streaming.Meter, 0, capacity),
		ctrl:      make([]adaptation.Controller, 0, capacity),
		ctrlOn:    make([]bool, 0, capacity),
		handles:   make([]*Player, 0, capacity),
	}
}

// len returns the number of slots (live + freed).
func (ps *playerStore) len() int { return len(ps.handles) }

// alloc claims a slot for p, reusing a freed index when one is available,
// and wires the handle's back-pointer. The returned index is the player's
// dense identity; callers must keep p.ID equal to it.
func (ps *playerStore) alloc(p *Player) int {
	var i int
	if n := len(ps.free); n > 0 {
		i = int(ps.free[n-1])
		ps.free = ps.free[:n-1]
		ps.online[i] = false
		ps.src[i] = srcNone
		ps.supernode[i] = 0
		ps.cdnServer[i] = 0
		ps.dc[i] = 0
		ps.session[i] = workload.Session{}
		ps.meter[i] = streaming.Meter{}
		ps.ctrl[i] = adaptation.Controller{}
		ps.ctrlOn[i] = false
	} else {
		i = len(ps.handles)
		ps.online = append(ps.online, false)
		ps.src = append(ps.src, srcNone)
		ps.supernode = append(ps.supernode, 0)
		ps.cdnServer = append(ps.cdnServer, 0)
		ps.dc = append(ps.dc, 0)
		ps.session = append(ps.session, workload.Session{})
		ps.meter = append(ps.meter, streaming.Meter{})
		ps.ctrl = append(ps.ctrl, adaptation.Controller{})
		ps.ctrlOn = append(ps.ctrlOn, false)
		ps.handles = append(ps.handles, nil)
	}
	ps.handles[i] = p
	p.st = ps
	return i
}

// release returns slot i to the free-list. The fixed-population experiment
// protocol never releases players, but dynamic-population scenarios (and
// the churn arrival scripts, should they grow true departures) need slots
// to be recyclable without compacting the arrays — indices are identities.
func (ps *playerStore) release(i int) {
	ps.handles[i] = nil
	ps.online[i] = false
	ps.src[i] = srcNone
	ps.ctrlOn[i] = false
	ps.free = append(ps.free, int32(i))
}
