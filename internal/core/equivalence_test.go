package core

import (
	"testing"

	"cloudfog/internal/workload"
)

// The parallel determinism contract (parallel.go): for any worker count,
// a seeded run's outputs — metrics snapshot, quantiles, and the full state
// digest — are bit-identical to the legacy sequential ordering
// (Workers < 0). These tests are the enforcement; they are what lets
// `-parallel` default to on.

// equivalenceConfigs covers every code path whose interleaving could
// plausibly diverge under concurrency: fog selection with all strategies
// (co-play recording, adaptation, provisioning), the plain cloud and CDN
// baselines, churn-mode arrivals, and supernode failure injection.
func equivalenceConfigs() map[string]Config {
	cloudFog := quickConfig(ModeCloudFog)
	cloudFog.Strategies = AllStrategies()

	alwaysOn := quickConfig(ModeCloudFog)
	alwaysOn.Strategies = AllStrategies()
	alwaysOn.AlwaysOn = true

	churn := quickConfig(ModeCloudFog)
	churn.Arrivals = &workload.ArrivalScript{OffPeakPerMinute: 0.5, PeakPerMinute: 2}

	failures := quickConfig(ModeCloudFog)
	failures.FailSupernodesPerCycle = 2

	return map[string]Config{
		"cloudfog-advanced": cloudFog,
		"cloudfog-alwayson": alwaysOn,
		"cloud":             quickConfig(ModeCloud),
		"cdn":               quickConfig(ModeCDN),
		"churn":             churn,
		"failures":          failures,
	}
}

func runWithWorkers(t *testing.T, cfg Config, workers, cycles, warmup int) (Snapshot, uint64) {
	t.Helper()
	cfg.Workers = workers
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Run(cycles, warmup)
	return m.Snapshot(), sys.StateDigest()
}

func TestParallelEquivalence(t *testing.T) {
	const cycles, warmup = 3, 1
	for name, cfg := range equivalenceConfigs() {
		t.Run(name, func(t *testing.T) {
			wantSnap, wantDigest := runWithWorkers(t, cfg, -1, cycles, warmup)
			for _, workers := range []int{0, 1, 2, 4, 8} {
				snap, digest := runWithWorkers(t, cfg, workers, cycles, warmup)
				if snap != wantSnap {
					t.Errorf("workers=%d: snapshot diverged from sequential\n got %+v\nwant %+v",
						workers, snap, wantSnap)
				}
				if digest != wantDigest {
					t.Errorf("workers=%d: state digest %x, sequential %x", workers, digest, wantDigest)
				}
			}
		})
	}
}

// TestParallelEquivalenceHistogram pins the quantile path specifically:
// per-worker scratch histograms merged in scheduler-dependent order must
// reproduce the sequential histogram's exact bucket counts.
func TestParallelEquivalenceHistogram(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	cfg.Strategies = AllStrategies()
	cfg.AlwaysOn = true

	build := func(workers int) *Metrics {
		cfg.Workers = workers
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run(3, 1)
	}
	seq := build(-1)
	par := build(6)
	if seq.ResponseLatencyHist == nil || par.ResponseLatencyHist == nil {
		t.Fatal("response latency histogram not collected")
	}
	if seq.ResponseLatencyHist.N() == 0 {
		t.Fatal("histogram empty")
	}
	if got, want := par.ResponseLatencyHist.N(), seq.ResponseLatencyHist.N(); got != want {
		t.Fatalf("histogram N: parallel %d, sequential %d", got, want)
	}
	for b := 0; b < seq.ResponseLatencyHist.NumBuckets(); b++ {
		if got, want := par.ResponseLatencyHist.Bucket(b), seq.ResponseLatencyHist.Bucket(b); got != want {
			t.Fatalf("bucket %d: parallel %d, sequential %d", b, got, want)
		}
	}
	for _, p := range []float64{50, 95, 99} {
		if got, want := par.ResponseLatencyHist.Percentile(p), seq.ResponseLatencyHist.Percentile(p); got != want {
			t.Fatalf("P%v: parallel %v, sequential %v", p, got, want)
		}
	}
}

// TestWorkersConfigResolution documents the -parallel knob mapping.
func TestWorkersConfigResolution(t *testing.T) {
	cfg := quickConfig(ModeCloud)
	for _, tc := range []struct {
		workers    int
		sequential bool
	}{
		{workers: -1, sequential: true},
		{workers: 0, sequential: false},
		{workers: 3, sequential: false},
	} {
		cfg.Workers = tc.workers
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := sys.workerCount()
		if tc.sequential && got != 0 {
			t.Errorf("Workers=%d resolved to %d workers, want sequential", tc.workers, got)
		}
		if !tc.sequential && got < 1 {
			t.Errorf("Workers=%d resolved to %d workers, want >= 1", tc.workers, got)
		}
		if tc.workers > 0 && got != tc.workers {
			t.Errorf("Workers=%d resolved to %d", tc.workers, got)
		}
	}
}

// TestPlayerStoreFreeList exercises the dense-index recycling that dynamic
// populations rely on.
func TestPlayerStoreFreeList(t *testing.T) {
	ps := newPlayerStore(4)
	players := make([]*Player, 3)
	for i := range players {
		players[i] = &Player{ID: i}
		if got := ps.alloc(players[i]); got != i {
			t.Fatalf("alloc #%d returned %d", i, got)
		}
	}
	ps.online[1] = true
	ps.release(1)
	if ps.handles[1] != nil || ps.online[1] {
		t.Fatal("release did not clear slot state")
	}
	// The freed index is reused before the store grows.
	p := &Player{ID: 1}
	if got := ps.alloc(p); got != 1 {
		t.Fatalf("alloc after release returned %d, want 1", got)
	}
	if ps.len() != 3 {
		t.Fatalf("store len %d, want 3", ps.len())
	}
	if ps.handles[1] != p || p.st != ps {
		t.Fatal("realloc did not rewire handle")
	}
	// Fresh slots keep growing past the free-list.
	if got := ps.alloc(&Player{ID: 3}); got != 3 {
		t.Fatalf("growth alloc returned %d, want 3", got)
	}
}
