package core

import (
	"math"
	"time"

	"cloudfog/internal/adaptation"
	"cloudfog/internal/assignment"
	"cloudfog/internal/cloudinfra"
	"cloudfog/internal/geo"
	"cloudfog/internal/provisioning"
	"cloudfog/internal/rng"
	"cloudfog/internal/sim"
	"cloudfog/internal/streaming"
	"cloudfog/internal/workload"
)

// Simulation tuning constants.
const (
	// adaptationStepsPerSubcycle is how many controller observations run
	// per hourly subcycle; the controller settles to its quasi-steady
	// quality level within a few steps.
	adaptationStepsPerSubcycle = 8
	// adaptationStepSec is the simulated spacing of controller steps.
	adaptationStepSec = 5.0
	// wideAreaFullPenaltyKm is the path length at which the full
	// WideAreaBWPenalty applies.
	wideAreaFullPenaltyKm = 3000.0
	// supernodeRegistrationMs is the cloud-side processing time of a
	// supernode registration, on top of the network round trips.
	supernodeRegistrationMs = 50.0
	// lMaxFactor converts a game's response-latency requirement into the
	// player's supernode transmission-delay threshold L_max (§3.2.1).
	lMaxFactor = 0.5
)

// Run executes the paper's experimental protocol: `cycles` daily cycles of
// 24 subcycles, with the first `warmupCycles` excluded from measurement.
// Zero arguments select the paper's defaults (28 cycles, 21 warm-up).
// Run can be called once per System.
func (s *System) Run(cycles, warmupCycles int) *Metrics {
	engine := sim.Engine{Cycles: cycles, WarmupCycles: warmupCycles}
	s.forecaster = s.newForecaster()
	s.initArrivalPool()
	engine.Run(sim.Hooks{
		BeginCycle: s.beginCycle,
		Subcycle:   s.stepSubcycle,
		EndCycle:   s.endCycle,
	})
	s.finalize(cycles)
	return &s.metrics
}

// Metrics returns the metrics collected so far.
func (s *System) Metrics() *Metrics { return &s.metrics }

func (s *System) newForecaster() *provisioning.Forecaster {
	windows := 24 * 7 / s.cfg.ProvisionWindowHours
	f, err := provisioning.NewForecaster(windows, 0.3, 0.5)
	if err != nil {
		// Window hours are validated in normalize; this cannot happen.
		panic(err)
	}
	return f
}

func (s *System) initArrivalPool() {
	if s.cfg.Arrivals == nil {
		return
	}
	s.arrivalPool = s.arrivalPool[:0]
	for _, p := range s.players {
		s.arrivalPool = append(s.arrivalPool, p.ID)
	}
}

// ---- cycle hooks -------------------------------------------------------

func (s *System) beginCycle(cycle int, measured bool) {
	r := s.rRun.SplitNamed("cycle")
	// Supernode willingness: throttled groups throttle with 50%
	// probability each cycle.
	if s.fogMgr != nil {
		for _, sn := range s.fogMgr.All() {
			meta := s.snMeta[sn.ID]
			if meta.throttleGroup < 1 && r.Bool(0.5) {
				sn.Throttle = meta.throttleGroup
			} else {
				sn.Throttle = 1
			}
		}
	}
	// Daily session schedule (population mode only).
	if s.cfg.Arrivals == nil {
		if s.cfg.AlwaysOn {
			allDay := workload.Session{Start: 1, Duration: workload.SubcyclesPerCycle}
			for i := range s.ps.session {
				s.ps.session[i] = allDay
			}
		} else {
			for i, p := range s.players {
				s.ps.session[i] = workload.ScheduleDay(p.Behavior, r)
			}
		}
	}
	// Weekly social-network-based server reassignment.
	if s.cfg.Strategies.SocialAssignment && cycle%7 == 0 {
		s.lastAssignCycle = cycle
		s.runServerAssignment(r)
	}
	// Fixed supernode pool for churn baselines.
	if s.fogMgr != nil && !s.cfg.Strategies.Provisioning && s.cfg.FixedSupernodePool > 0 {
		s.applyFixedPool(cycle, measured)
	}
}

func (s *System) stepSubcycle(clock sim.Clock, measured bool) {
	r := s.rRun.SplitNamed("sub")
	// Churn-mode arrivals.
	if s.cfg.Arrivals != nil {
		s.spawnArrivals(clock, r)
	}
	// Session transitions.
	for i, p := range s.players {
		active := s.ps.session[i].Active(clock.Subcycle)
		switch {
		case active && !s.ps.online[i]:
			s.join(p, clock, measured, r)
		case !active && s.ps.online[i]:
			s.leave(p, clock, measured)
		}
	}
	// Dynamic supernode provisioning at window boundaries.
	if s.fogMgr != nil && s.cfg.Strategies.Provisioning &&
		(clock.Subcycle-1)%s.cfg.ProvisionWindowHours == 0 {
		s.provisionStep(clock, measured, r)
	}
	// Injected supernode failures (Fig. 9 migration study): the chosen
	// supernodes drop their players (who migrate) and then rejoin service,
	// keeping the fleet size stable across injections.
	if s.fogMgr != nil && s.cfg.FailSupernodesPerCycle > 0 && measured && clock.Subcycle == 12 {
		for _, id := range s.failSupernodeIDs(s.cfg.FailSupernodesPerCycle, clock) {
			s.fogMgr.Activate(id)
		}
	}
	// Streaming evaluation: the hot phase. See parallel.go for the worker
	// pool and the determinism contract that keeps its output bit-identical
	// to the sequential ordering for any worker count.
	online, cloudEgressKbps := s.evalPhase(clock, measured, r)
	if s.fogMgr != nil {
		active := s.fogMgr.NumActive()
		cloudEgressKbps += cloudinfra.UpdateBandwidthKbps(active, s.cfg.UpdateKbps)
		if measured {
			s.metrics.ActiveSupernodes.Add(float64(active))
		}
		// Track per-slot supernode load for provisioning ranking.
		for _, sn := range s.fogMgr.All() {
			if meta := s.snMeta[sn.ID]; sn.Load() > meta.supportedThisSlot {
				meta.supportedThisSlot = sn.Load()
			}
		}
	}
	if measured {
		s.metrics.CloudEgressMbps.Add(cloudEgressKbps / 1000)
		s.metrics.OnlinePlayers.Add(float64(online))
	}
}

func (s *System) endCycle(cycle int, measured bool) {
	// AlwaysOn sessions span exactly one day: close them at day end so the
	// player rates its supernode and re-selects tomorrow, as a daily-play
	// population would.
	if s.cfg.AlwaysOn && s.cfg.Arrivals == nil {
		clock := sim.Clock{Cycle: cycle, Subcycle: workload.SubcyclesPerCycle}
		for i, p := range s.players {
			if s.ps.online[i] {
				s.leave(p, clock, measured)
			}
		}
	}
	// Reputation pruning bounds memory for long runs.
	if cycle%7 == 6 {
		for _, p := range s.players {
			p.Book.Prune(cycle, 60)
		}
	}
}

// finalize closes any session still open when the simulation ends so its
// metrics are recorded.
func (s *System) finalize(cycles int) {
	if cycles == 0 {
		cycles = sim.DefaultCycles
	}
	clock := sim.Clock{Cycle: cycles - 1, Subcycle: workload.SubcyclesPerCycle}
	for i, p := range s.players {
		if s.ps.online[i] {
			s.leave(p, clock, true)
		}
	}
}

// ---- joins, leaves, migration ------------------------------------------

func (s *System) join(p *Player, clock sim.Clock, measured bool, r *rng.Rand) {
	ps := s.ps
	ps.online[p.ID] = true
	ps.meter[p.ID] = streaming.Meter{}

	// Friend-driven game choice, with a 20% independent-taste chance so
	// the catalog never collapses onto a single title by pure cascade.
	// The choice draws from a stream keyed by (player, day) so that the
	// game mix evolves identically across compared systems — otherwise
	// herding noise would dominate cross-system comparisons.
	rGame := s.decisionRand("game", p.ID, clock.Cycle, clock.Subcycle)
	friendGames := s.friendGameScratch[:0]
	if !rGame.Bool(0.2) {
		s.seqScratch.friends = s.onlineFriends(p.ID, s.seqScratch.friends)
		for _, f := range s.seqScratch.friends {
			friendGames = append(friendGames, s.players[f].Game.ID)
		}
	}
	p.Game = workload.ChooseGame(friendGames, s.games, rGame)
	s.friendGameScratch = friendGames

	// State-server assignment inside the player's datacenter.
	s.assignStateServer(p, r)

	// Video source selection.
	dcEp := s.cloud.Datacenters()[ps.dc[p.ID]].Endpoint
	var joinMs float64
	switch s.cfg.Mode {
	case ModeCloudFog:
		// L_max comes from the game's latency requirement (§3.2.1), and a
		// supernode is never worth using when the player's own datacenter
		// path is already faster.
		lmax := p.Game.LatencyRequirementMs * lMaxFactor
		if dcOneWay := s.model.OneWayMs(p.Endpoint, dcEp); dcOneWay < lmax {
			lmax = dcOneWay
		}
		sel := s.selector.Select(p.Endpoint, lmax, p.Book, clock.Day(), r)
		joinMs = sel.TotalMs()
		if sel.Supernode != nil {
			ps.src[p.ID] = srcSupernode
			ps.supernode[p.ID] = int32(sel.Supernode.ID)
			joinMs += s.model.PathRTTMs(p.Endpoint, sel.Supernode.Endpoint)
		} else {
			ps.src[p.ID] = srcCloud
			joinMs += s.model.PathRTTMs(p.Endpoint, dcEp)
		}
	case ModeCDN:
		srv := s.nearestCDNWithCapacity(p.Endpoint.Loc)
		// Like a supernode, a CDN server only helps a player it can reach
		// within the game's delay threshold — and only when it beats the
		// player's own datacenter path; players out of reach stay on the
		// cloud ("not all users in CDN are able to connect to a nearby
		// server due to the shortage of servers").
		if srv != nil &&
			s.model.PathRTTMs(p.Endpoint, srv.Endpoint)/2 <= p.Game.LatencyRequirementMs*lMaxFactor &&
			s.model.PathRTTMs(p.Endpoint, srv.Endpoint) <= s.model.PathRTTMs(p.Endpoint, dcEp) {
			ps.src[p.ID] = srcCDN
			ps.cdnServer[p.ID] = int32(srv.Index)
			srv.players[p.ID] = struct{}{}
			joinMs = s.model.PathRTTMs(p.Endpoint, srv.Endpoint) * 2
		} else {
			ps.src[p.ID] = srcCloud
			joinMs = s.model.PathRTTMs(p.Endpoint, dcEp) * 2
		}
	default:
		ps.src[p.ID] = srcCloud
		joinMs = s.model.PathRTTMs(p.Endpoint, dcEp) * 2
	}

	// Encoding-rate controller: receiver-driven adaptation is a CloudFog
	// strategy; the baselines stream at the game's fixed default rate.
	disabled := !(s.cfg.Mode == ModeCloudFog && s.cfg.Strategies.Adaptation)
	ps.ctrl[p.ID].Reset(adaptation.Config{
		Theta:    s.cfg.Theta,
		Rho:      p.Game.ToleranceDegree,
		MaxLevel: p.Game.DefaultQuality,
		Disabled: disabled,
		Debounce: s.cfg.AdaptationDebounce,
	}, p.Game.DefaultQuality)
	ps.ctrlOn[p.ID] = true

	if measured {
		s.metrics.PlayerJoinMs.Add(joinMs)
	}
}

func (s *System) leave(p *Player, clock sim.Clock, measured bool) {
	ps := s.ps
	if !ps.online[p.ID] {
		return
	}
	src := ps.src[p.ID]
	meter := &ps.meter[p.ID]
	if src == srcSupernode {
		// Rate the supernode with the session's playback continuity.
		if meter.Observed() {
			p.Book.Rate(int(ps.supernode[p.ID]), meter.Continuity(), clock.Day())
		}
		s.fogMgr.Disconnect(p.ID, int(ps.supernode[p.ID]))
	}
	if src == srcCDN {
		delete(s.cdn[ps.cdnServer[p.ID]].players, p.ID)
	}
	if measured && meter.Observed() {
		cont := meter.Continuity()
		s.metrics.Continuity.Add(cont)
		if src == srcSupernode || src == srcCDN {
			s.metrics.ContinuityFog.Add(cont)
		} else {
			s.metrics.ContinuityCloudServed.Add(cont)
		}
		if p.Game.ID >= 1 && p.Game.ID < len(s.metrics.ContinuityByGame) {
			s.metrics.ContinuityByGame[p.Game.ID].Add(cont)
		}
		s.metrics.Satisfied.Observe(meter.Satisfied())
		if ps.ctrlOn[p.ID] {
			s.metrics.BitrateSwitches.Add(float64(ps.ctrl[p.ID].Switches()))
		}
	}
	ps.online[p.ID] = false
	ps.src[p.ID] = srcNone
	ps.ctrlOn[p.ID] = false
	// Churn mode: the player returns to the arrival pool for a future
	// Poisson arrival.
	if s.cfg.Arrivals != nil {
		ps.session[p.ID] = workload.Session{}
		s.arrivalPool = append(s.arrivalPool, p.ID)
	}
}

// migrate reconnects a displaced player after its supernode left service:
// the player probes its candidate list for a new supernode and falls back
// to the cloud (§3.2.2). The paper measures this as migration latency.
func (s *System) migrate(p *Player, clock sim.Clock, measured bool, r *rng.Rand) {
	ps := s.ps
	if !ps.online[p.ID] {
		return
	}
	meter := &ps.meter[p.ID]
	if meter.Observed() && ps.src[p.ID] == srcSupernode {
		p.Book.Rate(int(ps.supernode[p.ID]), meter.Continuity(), clock.Day())
	}
	lmax := p.Game.LatencyRequirementMs * lMaxFactor
	dcEp := s.cloud.Datacenters()[ps.dc[p.ID]].Endpoint
	if dcOneWay := s.model.OneWayMs(p.Endpoint, dcEp); dcOneWay < lmax {
		lmax = dcOneWay
	}
	sel := s.selector.Select(p.Endpoint, lmax, p.Book, clock.Day(), r)
	var migrationMs float64
	if sel.Supernode != nil {
		ps.src[p.ID] = srcSupernode
		ps.supernode[p.ID] = int32(sel.Supernode.ID)
		// The candidate list is already known; migration pays the delay
		// tests, capacity probes, and the reconnect round trip. No game
		// state transfers: the cloud holds it all.
		migrationMs = sel.PingMs + sel.ProbeMs + s.model.PathRTTMs(p.Endpoint, sel.Supernode.Endpoint)
	} else {
		ps.src[p.ID] = srcCloud
		migrationMs = sel.RequestMs + sel.PingMs + sel.ProbeMs + s.model.PathRTTMs(p.Endpoint, dcEp)
	}
	if measured {
		s.metrics.MigrationMs.Add(migrationMs)
	}
}

// FailSupernodes deactivates n random active supernodes and migrates their
// players — the failure-injection used by the Fig. 9 migration study.
// It returns the number of players that migrated.
func (s *System) FailSupernodes(n int, clock sim.Clock) int {
	before := s.metrics.MigrationMs.N()
	s.failSupernodeIDs(n, clock)
	return s.metrics.MigrationMs.N() - before
}

// failSupernodeIDs deactivates n random active supernodes, migrates their
// players, and returns the failed supernode IDs.
func (s *System) failSupernodeIDs(n int, clock sim.Clock) []int {
	if s.fogMgr == nil || n <= 0 {
		return nil
	}
	r := s.rRun.SplitNamed("fail")
	var active []int
	for _, sn := range s.fogMgr.All() {
		if sn.Active {
			active = append(active, sn.ID)
		}
	}
	r.Shuffle(len(active), func(i, j int) { active[i], active[j] = active[j], active[i] })
	if n > len(active) {
		n = len(active)
	}
	failed := active[:n]
	for _, id := range failed {
		for _, playerID := range s.fogMgr.Deactivate(id) {
			p := s.playerByEndpointID(playerID)
			if p != nil && s.ps.online[p.ID] {
				s.migrate(p, clock, true, r)
			}
		}
	}
	return failed
}

// playerByEndpointID maps an endpoint ID back to the player. Player
// endpoints are allocated first, so endpoint ID == player index.
func (s *System) playerByEndpointID(id int) *Player {
	if id < 0 || id >= len(s.players) {
		return nil
	}
	return s.players[id]
}

func (s *System) spawnArrivals(clock sim.Clock, r *rng.Rand) {
	n := s.cfg.Arrivals.ArrivalsInSubcycle(clock.Subcycle, r)
	for i := 0; i < n && len(s.arrivalPool) > 0; i++ {
		idx := r.Intn(len(s.arrivalPool))
		id := s.arrivalPool[idx]
		s.arrivalPool[idx] = s.arrivalPool[len(s.arrivalPool)-1]
		s.arrivalPool = s.arrivalPool[:len(s.arrivalPool)-1]
		dur := 1 + r.Intn(3)
		s.ps.session[id] = workload.Session{Start: clock.Subcycle, Duration: dur}
	}
}

// ---- state-server assignment --------------------------------------------

func (s *System) assignStateServer(p *Player, r *rng.Rand) {
	if s.cloud.ServerOf(p.ID) != nil {
		return // sticky assignment (weekly reassignment may move it)
	}
	dc := s.cloud.Datacenters()[s.ps.dc[p.ID]]
	if s.cfg.Strategies.SocialAssignment {
		// Join the server hosting most of the player's friends (any
		// datacenter; game state can live anywhere). Counts accumulate in a
		// dense per-server scratch slice — server IDs are contiguous from 0
		// — with a touched-list so clearing costs O(friends), not
		// O(servers), and the whole scan allocates nothing.
		if len(s.srvCount) < s.cloud.NumServers() {
			s.srvCount = make([]int32, s.cloud.NumServers())
		}
		touched := s.srvTouched[:0]
		for _, f := range s.friends[p.ID] {
			if srv := s.cloud.ServerOf(int(f)); srv != nil {
				if s.srvCount[srv.ID] == 0 {
					touched = append(touched, int32(srv.ID))
				}
				s.srvCount[srv.ID]++
			}
		}
		// Winner: highest friend count, smallest server ID on ties — the
		// same result the historical map scan converged to.
		bestID, bestN := -1, int32(0)
		for _, id := range touched {
			n := s.srvCount[id]
			if n > bestN || (n == bestN && int(id) < bestID) {
				bestID, bestN = int(id), n
			}
			s.srvCount[id] = 0
		}
		s.srvTouched = touched
		if bestID >= 0 {
			if err := s.cloud.AssignPlayerToServer(p.ID, bestID); err == nil {
				return
			}
		}
	}
	s.cloud.AssignPlayerRandom(p.ID, dc, r)
}

// runServerAssignment runs the periodic community-based reassignment over
// the whole player population — "given z servers, this problem turns to
// finding z network communities" — and records its wall-clock latency (the
// "server assignment latency" of Fig. 9). A player's game state can live on
// any server; what matters is that interacting friends share one. The
// assignment graph combines explicit friendships with the implicit ones
// inferred from recent co-play (§3.4's two friendship schemes).
func (s *System) runServerAssignment(r *rng.Rand) {
	var start time.Time
	if s.cfg.WallClock != nil {
		start = s.cfg.WallClock()
	}
	cycle := s.lastAssignCycle
	graph := s.coplay.AugmentGraph(s.graph, cycle)
	s.coplay.Prune(cycle)
	z := s.cloud.NumServers()
	res, err := assignment.Assign(graph, assignment.Config{
		Servers: z,
		H1:      s.cfg.AssignH1,
		H2:      s.cfg.AssignH2,
	}, r)
	if err != nil {
		return
	}
	for _, p := range s.players {
		if err := s.cloud.AssignPlayerToServer(p.ID, res.Community[p.ID]%z); err != nil {
			// Server IDs are 0..z-1 by construction; this cannot fail,
			// but never silently corrupt assignments.
			panic(err)
		}
	}
	s.metrics.Modularity.Add(res.Modularity)
	if s.cfg.WallClock != nil {
		s.metrics.ServerAssignmentMs.Add(float64(s.cfg.WallClock().Sub(start)) / float64(time.Millisecond))
	} else {
		s.metrics.ServerAssignmentMs.Add(modeledAssignMs(graph.N(), res.Iterations))
	}
}

// modeledAssignMs converts the work a server-assignment run performed into
// a deterministic latency estimate. The greedy seeding and each refinement
// iteration both visit every vertex and score its neighborhood, so the op
// count is n·(iterations+1); 50 ns per vertex visit puts the estimate in
// the tens-of-milliseconds range the wall clock used to report for the
// PeerSim deployment. Unlike a wall-clock reading, this is a pure function
// of the seeded run, so experiment outputs are byte-identical across
// machines and runs (the `deterministic` lint analyzer enforces that no
// simulator package reads real time).
func modeledAssignMs(n, iterations int) float64 {
	const msPerVertexVisit = 50e-6 // 50 ns, expressed in milliseconds
	return float64(n) * float64(iterations+1) * msPerVertexVisit
}

// ---- provisioning --------------------------------------------------------

func (s *System) avgSupernodeCapacity() float64 {
	all := s.fogMgr.All()
	if len(all) == 0 {
		return 1
	}
	var sum float64
	for _, sn := range all {
		sum += float64(sn.Capacity)
	}
	return sum / float64(len(all))
}

// fleetUtilization estimates what fraction of active supernode capacity is
// actually usable, from current loads. Bootstrap value 0.5 before any load
// is observed.
func (s *System) fleetUtilization() float64 {
	var load, capacity float64
	for _, sn := range s.fogMgr.All() {
		if sn.Active {
			load += float64(sn.Load())
			capacity += float64(sn.Capacity)
		}
	}
	if capacity == 0 || load == 0 {
		return 0.5
	}
	u := load / capacity
	if u < 0.2 {
		u = 0.2
	}
	return u
}

func (s *System) provisionStep(clock sim.Clock, measured bool, r *rng.Rand) {
	online := 0
	for _, on := range s.ps.online {
		if on {
			online++
		}
	}
	s.forecaster.Observe(float64(online))
	pred := s.forecaster.Forecast()
	// Ĉ in Eq. 15 is the EFFECTIVE average capacity: nominal capacity
	// discounted by the fleet's observed slot utilization, since locality
	// mismatches leave part of each supernode's nominal capacity unusable.
	effCap := s.avgSupernodeCapacity() * s.fleetUtilization()
	want := provisioning.SupernodeCount(pred, s.cfg.ProvisionEpsilon, effCap)
	if want < 1 {
		want = 1
	}
	all := s.fogMgr.All()
	if want > len(all) {
		want = len(all)
	}
	cands := make([]provisioning.Candidate, len(all))
	for i, sn := range all {
		cands[i] = provisioning.Candidate{ID: sn.ID, PrevSupported: s.snMeta[sn.ID].prevSupported}
	}
	selected := provisioning.Select(cands, want, r)
	keep := make(map[int]bool, len(selected))
	for _, c := range selected {
		keep[c.ID] = true
	}
	// Never withdraw a supernode that is actively serving players or was
	// busy in the previous slot: provisioning trims idle reserve, it does
	// not evict live sessions.
	for _, sn := range all {
		if sn.Active && (sn.Load() > 0 || s.snMeta[sn.ID].prevSupported > 0) {
			keep[sn.ID] = true
		}
	}
	dcEp := s.cloud.Datacenters()[0].Endpoint
	for _, sn := range all {
		switch {
		case keep[sn.ID] && !sn.Active:
			s.fogMgr.Activate(sn.ID)
			if measured {
				// Registration: connect to the cloud plus processing.
				s.metrics.SupernodeJoinMs.Add(
					s.model.PathRTTMs(sn.Endpoint, dcEp)*1.5 + supernodeRegistrationMs)
			}
		case !keep[sn.ID] && sn.Active:
			for _, playerID := range s.fogMgr.Deactivate(sn.ID) {
				if p := s.playerByEndpointID(playerID); p != nil {
					s.migrate(p, clock, measured, r)
				}
			}
		}
		// Roll the load window.
		meta := s.snMeta[sn.ID]
		meta.prevSupported = meta.supportedThisSlot
		meta.supportedThisSlot = 0
	}
}

// applyFixedPool keeps exactly FixedSupernodePool supernodes active — the
// static baseline the churn experiments compare against.
func (s *System) applyFixedPool(cycle int, measured bool) {
	want := s.cfg.FixedSupernodePool
	all := s.fogMgr.All()
	for i, sn := range all {
		shouldBeActive := i < want
		if shouldBeActive && !sn.Active {
			s.fogMgr.Activate(sn.ID)
		} else if !shouldBeActive && sn.Active {
			clock := sim.Clock{Cycle: cycle, Subcycle: 1}
			r := s.rRun.SplitNamed("pool")
			for _, playerID := range s.fogMgr.Deactivate(sn.ID) {
				if p := s.playerByEndpointID(playerID); p != nil {
					s.migrate(p, clock, measured, r)
				}
			}
		}
	}
}

// ---- streaming evaluation -------------------------------------------------

// computeEval evaluates player i's delivery quality for one subcycle and
// fills out. It mutates only player-i state (rate controller, session
// meter) plus the worker-local scratch, and draws randomness only from
// hash-keyed decision streams (decisionRand, CongestionFactor) or the
// per-shard stream r — never from shared generators — so shards can run
// concurrently without changing any seeded output. Shared-state effects
// (metric accumulation, co-play recording, egress sums) are described in
// out and applied later by applyEval in canonical player order.
//
//cfg:computephase
//cfg:allocfree
func (s *System) computeEval(i int, clock sim.Clock, measured bool, r *rng.Rand, sc *evalScratch, out *evalResult) {
	_ = r // reserved: eval-phase randomness is currently all hash-keyed
	ps := s.ps
	p := s.players[i]
	link, _ := s.linkForR(p, clock, sc.ensureKeyed())
	commMs, partner, record := s.interactionCommMs(p, clock, sc)

	// Let the rate controller settle against this subcycle's conditions.
	ctrl := &ps.ctrl[i]
	if ps.ctrlOn[i] && s.cfg.Mode == ModeCloudFog && s.cfg.Strategies.Adaptation {
		base := float64(clock.AbsoluteSubcycle()) * 3600
		for k := 0; k < adaptationStepsPerSubcycle; k++ {
			delivered := streaming.DeliveredKbps(link, ctrl.BitrateKbps())
			ctrl.Observe(base+float64(k+1)*adaptationStepSec, delivered)
		}
	}
	bitrate := p.Game.Quality().BitrateKbps
	level := p.Game.DefaultQuality
	if ps.ctrlOn[i] {
		bitrate = ctrl.BitrateKbps()
		level = ctrl.Level()
	}

	// The response loop of a packet is action upload (one-way to the
	// renderer) + render + video downlink. The server-communication term
	// affects state freshness between interacting players and is reported
	// in the response-latency decomposition (Fig. 12), but it does not
	// delay individual video packets, so it stays out of the on-time
	// budget.
	budget := p.Game.LatencyRequirementMs - s.cfg.RenderMs - link.OneWayMs
	pOn := streaming.OnTimeProbability(link, bitrate, budget)
	respMs := link.OneWayMs + commMs + s.cfg.RenderMs +
		streaming.NetworkLatencyMs(link, bitrate) + streaming.PlayoutDelayMs
	if math.IsInf(respMs, 1) {
		respMs = 10 * p.Game.LatencyRequirementMs
	}
	ps.meter[i].Observe(1, pOn, respMs)

	if measured {
		// Quantiles come from per-worker scratch histograms: bucket counts
		// are integers, so the post-phase merge is exact in any order.
		sc.ensureHist()
		sc.respHist.Add(respMs)
	}

	*out = evalResult{
		bitrate:       bitrate,
		respMs:        respMs,
		commMs:        commMs,
		level:         level,
		fogServed:     ps.src[i] == srcSupernode,
		cloud:         ps.src[i] == srcCloud,
		coplayPartner: partner,
		coplayRecord:  record,
	}
}

// applyEval commits player i's eval result to shared state: co-play
// recording and the float metric accumulators. Callers invoke it in
// ascending player index — the canonical schedule — so the sequence of
// floating-point Adds is identical whether the compute phase ran on one
// goroutine or many.
//
//cfg:applyphase
//cfg:allocfree
func (s *System) applyEval(i int, clock sim.Clock, measured bool, res *evalResult) {
	if res.coplayRecord {
		s.coplay.Record(i, int(res.coplayPartner), clock.Cycle)
	}
	if measured {
		s.metrics.ResponseLatencyMs.Add(res.respMs)
		s.metrics.ServerCommMs.Add(res.commMs)
		s.metrics.QualityLevel.Add(float64(res.level))
		s.metrics.FogServed.Observe(res.fogServed)
	}
}

// linkFor builds the delivery link of the player's current video source and
// returns it with the one-way action latency to the renderer.
func (s *System) linkFor(p *Player, clock sim.Clock) (streaming.Link, float64) {
	return s.linkForR(p, clock, nil)
}

// linkForR is linkFor with a caller-supplied scratch Rand for the keyed
// congestion draw (nil falls back to an allocating draw — same value).
func (s *System) linkForR(p *Player, clock sim.Clock, kr *rng.Rand) (streaming.Link, float64) {
	ps := s.ps
	var srcEp = s.cloud.Datacenters()[ps.dc[p.ID]].Endpoint
	perStream := s.cfg.ServerStreamKbps
	switch ps.src[p.ID] {
	case srcSupernode:
		sn := s.fogMgr.Get(int(ps.supernode[p.ID]))
		srcEp = sn.Endpoint
		perStream = sn.PerStreamKbps()
	case srcCDN:
		srv := s.cdn[ps.cdnServer[p.ID]]
		srcEp = srv.Endpoint
		perStream = srv.Endpoint.UploadKbps / float64(max(1, len(srv.players)))
		if perStream > s.cfg.ServerStreamKbps {
			perStream = s.cfg.ServerStreamKbps
		}
	}
	var oneway, cong float64
	if kr != nil {
		oneway = s.model.OneWayMsR(kr, srcEp, p.Endpoint)
		cong = s.model.CongestionFactorR(kr, p.ID, clock.Cycle, clock.Subcycle)
	} else {
		oneway = s.model.OneWayMs(srcEp, p.Endpoint)
		cong = s.model.CongestionFactor(p.ID, clock.Cycle, clock.Subcycle)
	}
	dist := geo.Distance(srcEp.Loc, p.Endpoint.Loc)
	pathCap := p.Endpoint.DownloadKbps *
		(1 - s.cfg.WideAreaBWPenalty*math.Min(1, dist/wideAreaFullPenaltyKm))
	eff := math.Min(perStream, pathCap) * cong
	return streaming.Link{
		OneWayMs:      oneway,
		EffectiveKbps: eff,
		BaseJitterMs:  streaming.DefaultBaseJitterMs + s.cfg.JitterPerOnewayMs*oneway,
	}, oneway
}

// interactionCommMs returns the server-communication component of the
// response latency: the player interacts with a random online friend; if
// their game state lives on different servers, the servers must exchange
// state (§3.4). When the interaction should feed the co-play record that
// infers implicit friendships for the weekly reassignment, it reports the
// partner and record=true; the caller commits the record via applyEval so
// the shared recorder sees one canonical write order.
func (s *System) interactionCommMs(p *Player, clock sim.Clock, sc *evalScratch) (ms float64, partner int32, record bool) {
	sc.friends = s.onlineFriends(p.ID, sc.friends)
	friends := sc.friends
	if len(friends) == 0 {
		return cloudinfra.IntraServerCommMs, -1, false
	}
	rPartner := sc.ensureKeyed()
	rPartner.Reseed(s.decisionKey("partner", p.ID, clock.Cycle, clock.Subcycle))
	partner = friends[rPartner.Intn(len(friends))]
	if s.cfg.Strategies.SocialAssignment && clock.Subcycle == s.ps.session[p.ID].Start {
		// One co-play record per pair per session keeps the window compact.
		record = true
	}
	partnerP := s.players[partner]
	if s.cfg.Mode == ModeCDN {
		return s.cdnPairCommMs(p, partnerP, rPartner), partner, record
	}
	// Cloud-computed state (Cloud and CloudFog): interacting players whose
	// game state lives on the same server exchange state in memory; pairs
	// on different servers pay a server-to-server synchronization round.
	if s.cloud.SameServer(p.ID, partnerP.ID) {
		return cloudinfra.IntraServerCommMs, partner, record
	}
	return cloudinfra.CrossServerCommMs, partner, record
}

// cdnCoordinationFactor discounts the wide-area leg of a cross-edge-server
// state exchange: the exchange is pipelined with gameplay, so only a
// fraction of the one-way latency lands on the response path. CDN servers
// each compute state for their own players, so interacting players on
// different edge servers force a wide-area state exchange between them
// ("the servers need to cooperate with each other to compute new game
// status, which leads to relatively long latency").
const cdnCoordinationFactor = 0.1

// cdnPairCommMs computes the CDN-mode state-exchange cost. kr is scratch
// for the keyed wide-area latency draws (reseeded per use; the partner
// selection that preceded it is already complete).
func (s *System) cdnPairCommMs(p, partner *Player, kr *rng.Rand) float64 {
	ps := s.ps
	hostOf := func(q *Player) *cdnServer {
		if ps.src[q.ID] == srcCDN {
			return s.cdn[ps.cdnServer[q.ID]]
		}
		return nil
	}
	ha, hb := hostOf(p), hostOf(partner)
	switch {
	case ha != nil && hb != nil && ha == hb:
		return cloudinfra.IntraServerCommMs
	case ha != nil && hb != nil:
		return cdnCoordinationFactor*s.model.OneWayMsR(kr, ha.Endpoint, hb.Endpoint) +
			cloudinfra.CrossServerCommMs
	case ha == nil && hb == nil:
		// Both players spilled to the cloud: ordinary cloud-server comm.
		if s.cloud.SameServer(p.ID, partner.ID) {
			return cloudinfra.IntraServerCommMs
		}
		return cloudinfra.CrossServerCommMs
	default:
		// One on an edge server, one on the cloud.
		var edge *cdnServer
		var dc int32
		if ha != nil {
			edge, dc = ha, ps.dc[partner.ID]
		} else {
			edge, dc = hb, ps.dc[p.ID]
		}
		return cdnCoordinationFactor*s.model.OneWayMsR(kr, edge.Endpoint, s.cloud.Datacenters()[dc].Endpoint) +
			cloudinfra.CrossServerCommMs
	}
}

// decisionRand returns a deterministic stream for a per-player decision,
// keyed by purpose, player, and time — independent of how much randomness
// other subsystems consumed, so compared systems make identical draws.
func (s *System) decisionRand(purpose string, playerID, cycle, subcycle int) *rng.Rand {
	return rng.New(s.decisionKey(purpose, playerID, cycle, subcycle))
}

// decisionKey is the hash behind decisionRand; hot loops reseed a scratch
// Rand with it (rng.Reseed) instead of allocating a fresh one per decision.
func (s *System) decisionKey(purpose string, playerID, cycle, subcycle int) uint64 {
	h := s.cfg.Seed
	for _, c := range []byte(purpose) {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	h = (h ^ uint64(playerID)) * 0x100000001b3
	h = (h ^ uint64(cycle)) * 0x100000001b3
	h = (h ^ uint64(subcycle)) * 0x100000001b3
	return h
}
