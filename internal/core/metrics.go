package core

import (
	"cloudfog/internal/stats"
)

// Metrics aggregates everything a simulation run measures, over the
// post-warm-up window only.
type Metrics struct {
	// ResponseLatencyMs accumulates total response latency per online
	// player per subcycle (playout + action + server comm + update +
	// render + stream).
	ResponseLatencyMs stats.Accumulator
	// ServerCommMs accumulates the server-communication component alone
	// (the Fig. 12 decomposition).
	ServerCommMs stats.Accumulator
	// Continuity accumulates per-session playback continuity.
	Continuity stats.Accumulator
	// ContinuityFog / ContinuityCloudServed break continuity down by the
	// session's final video source (diagnostics).
	ContinuityFog         stats.Accumulator
	ContinuityCloudServed stats.Accumulator
	// ContinuityByGame breaks continuity down by game ID (1-based; index 0
	// unused).
	ContinuityByGame [6]stats.Accumulator
	// Satisfied counts sessions meeting the 95% on-time bar.
	Satisfied stats.Ratio
	// CloudEgressMbps accumulates the cloud's total egress per subcycle:
	// game-video streams served directly by datacenters plus, for
	// CloudFog, the Λ update streams to active supernodes.
	CloudEgressMbps stats.Accumulator
	// PlayerJoinMs accumulates player-join latency (candidate request +
	// parallel delay tests + sequential capacity probes).
	PlayerJoinMs stats.Accumulator
	// MigrationMs accumulates the latency of reconnecting to a new
	// supernode after the serving supernode fails or is withdrawn.
	MigrationMs stats.Accumulator
	// SupernodeJoinMs accumulates supernode registration latency.
	SupernodeJoinMs stats.Accumulator
	// ServerAssignmentMs accumulates the wall-clock time of each periodic
	// social-network-based server assignment run.
	ServerAssignmentMs stats.Accumulator
	// FogServed counts player-subcycles served by supernodes vs total.
	FogServed stats.Ratio
	// QualityLevel accumulates the encoding quality level delivered.
	QualityLevel stats.Accumulator
	// BitrateSwitches counts adaptation bitrate changes per session.
	BitrateSwitches stats.Accumulator
	// OnlinePlayers accumulates the concurrent online count per subcycle.
	OnlinePlayers stats.Accumulator
	// ActiveSupernodes accumulates the deployed supernode count per
	// subcycle.
	ActiveSupernodes stats.Accumulator
	// Modularity accumulates the Γ achieved by assignment runs.
	Modularity stats.Accumulator
	// ResponseLatencyHist buckets every measured response-latency sample so
	// quantiles (P50/P95/P99) are available without retaining raw samples —
	// memory stays O(buckets), not O(players × subcycles). Created lazily
	// by ensureHist.
	ResponseLatencyHist *stats.Histogram
}

// Response-latency histogram shape: 0.5 ms buckets over [0, 2000) ms.
// Samples beyond 2 s (the pathological +Inf-latency clamp) land in the last
// bucket; every realistic response latency resolves to half a millisecond.
const (
	respHistMaxMs   = 2000
	respHistBuckets = 4000
)

func newResponseHist() *stats.Histogram {
	return stats.NewHistogram(0, respHistMaxMs, respHistBuckets)
}

// ensureHist makes the latency histogram usable on a zero-value Metrics:
// one allocation per Metrics lifetime, zero in steady state.
//
//cfg:amortized
func (m *Metrics) ensureHist() {
	if m.ResponseLatencyHist == nil {
		m.ResponseLatencyHist = newResponseHist()
	}
}

// Snapshot is a compact, copyable summary of a Metrics for reporting.
type Snapshot struct {
	MeanResponseLatencyMs float64
	// ResponseLatencyP50Ms/P95Ms/P99Ms are bucket-interpolated quantiles
	// from ResponseLatencyHist (0.5 ms resolution).
	ResponseLatencyP50Ms float64
	ResponseLatencyP95Ms float64
	ResponseLatencyP99Ms float64
	MeanServerCommMs     float64
	MeanOtherLatencyMs   float64
	MeanContinuity       float64
	SatisfiedFraction    float64
	MeanCloudEgressMbps  float64
	MeanPlayerJoinMs     float64
	MeanMigrationMs      float64
	MeanSupernodeJoinMs  float64
	MeanServerAssignMs   float64
	FogServedFraction    float64
	MeanQualityLevel     float64
	MeanOnlinePlayers    float64
	MeanActiveSupernodes float64
	MeanModularity       float64
	Sessions             int
}

// Snapshot summarizes the metrics.
func (m *Metrics) Snapshot() Snapshot {
	var p50, p95, p99 float64
	if m.ResponseLatencyHist != nil {
		p50 = m.ResponseLatencyHist.Percentile(50)
		p95 = m.ResponseLatencyHist.Percentile(95)
		p99 = m.ResponseLatencyHist.Percentile(99)
	}
	return Snapshot{
		MeanResponseLatencyMs: m.ResponseLatencyMs.Mean(),
		ResponseLatencyP50Ms:  p50,
		ResponseLatencyP95Ms:  p95,
		ResponseLatencyP99Ms:  p99,
		MeanServerCommMs:      m.ServerCommMs.Mean(),
		MeanOtherLatencyMs:    m.ResponseLatencyMs.Mean() - m.ServerCommMs.Mean(),
		MeanContinuity:        m.Continuity.Mean(),
		SatisfiedFraction:     m.Satisfied.Value(),
		MeanCloudEgressMbps:   m.CloudEgressMbps.Mean(),
		MeanPlayerJoinMs:      m.PlayerJoinMs.Mean(),
		MeanMigrationMs:       m.MigrationMs.Mean(),
		MeanSupernodeJoinMs:   m.SupernodeJoinMs.Mean(),
		MeanServerAssignMs:    m.ServerAssignmentMs.Mean(),
		FogServedFraction:     m.FogServed.Value(),
		MeanQualityLevel:      m.QualityLevel.Mean(),
		MeanOnlinePlayers:     m.OnlinePlayers.Mean(),
		MeanActiveSupernodes:  m.ActiveSupernodes.Mean(),
		MeanModularity:        m.Modularity.Mean(),
		Sessions:              m.Satisfied.Total,
	}
}
