package core

import (
	"testing"

	"cloudfog/internal/sim"
	"cloudfog/internal/workload"
)

// Steady-state allocation regression tests for the per-tick hot paths. The
// scratch buffers (evalScratch, srvCount/srvTouched, friendGameScratch, the
// reseedable keyed Rand) exist so that once warm, a subcycle allocates
// nothing per player; these tests are the gate that keeps it that way.

// TestEvalPhaseSteadyStateAllocs pins the streaming-evaluation loop — the
// code every player pays every subcycle — at zero allocations per phase
// once scratch buffers are warm (sequential path; the parallel path spawns
// its workers per phase by design).
func TestEvalPhaseSteadyStateAllocs(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	cfg.Strategies = AllStrategies()
	cfg.AlwaysOn = true
	cfg.Workers = -1
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.rRun.SplitNamed("alloc-test")
	join := sim.Clock{Cycle: 0, Subcycle: 1}
	for i, p := range sys.players {
		sys.ps.session[i] = workload.Session{Start: 1, Duration: 24}
		sys.join(p, join, false, r)
	}
	// Subcycle 3 != any session start, so no co-play records are due and
	// the phase's shared-state writes are pure accumulator arithmetic.
	clock := sim.Clock{Cycle: 0, Subcycle: 3}
	allocs := testing.AllocsPerRun(10, func() {
		sys.evalPhase(clock, true, r)
	})
	if allocs != 0 {
		t.Errorf("evalPhase allocates %v times per phase in steady state, want 0", allocs)
	}
}

// TestAssignStateServerAllocs pins the social server-assignment scan (dense
// per-server counts + touched list) at zero allocations per join.
func TestAssignStateServerAllocs(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	cfg.Strategies = AllStrategies()
	cfg.AlwaysOn = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(2, 0) // every player ends up with a sticky server assignment
	p := sys.players[len(sys.players)/2]
	r := sys.rRun.SplitNamed("alloc-test")
	allocs := testing.AllocsPerRun(100, func() {
		sys.cloud.RemovePlayer(p.ID)
		sys.assignStateServer(p, r)
	})
	if allocs != 0 {
		t.Errorf("assignStateServer allocates %v times per join in steady state, want 0", allocs)
	}
}

// TestSpawnArrivalsAllocs pins churn-mode arrival processing at zero
// allocations per subcycle: pool draws swap-remove in place and session
// writes land in the SoA store.
func TestSpawnArrivalsAllocs(t *testing.T) {
	cfg := quickConfig(ModeCloudFog)
	cfg.Arrivals = &workload.ArrivalScript{OffPeakPerMinute: 0.5, PeakPerMinute: 2}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.initArrivalPool()
	r := sys.rRun.SplitNamed("alloc-test")
	clock := sim.Clock{Cycle: 0, Subcycle: 12}
	allocs := testing.AllocsPerRun(50, func() {
		sys.spawnArrivals(clock, r)
	})
	if allocs != 0 {
		t.Errorf("spawnArrivals allocates %v times per subcycle, want 0", allocs)
	}
}
