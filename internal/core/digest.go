package core

import "sort"

// StateDigest is the simulator-side analogue of checkpoint.State.Hash: an
// FNV-1a digest over the deployment's session state in canonical order.
// Two systems built from the same Config and driven through the same
// protocol must agree on it at every point — it is the cheap assertion
// that a replayed or restored run is bit-identical, without diffing the
// whole world. Fields that are pure measurement (meters, metrics) are
// excluded: they describe the run, not the state the run depends on.
func (s *System) StateDigest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	u64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= prime64
		}
	}
	i64 := func(v int) { u64(uint64(int64(v))) }
	b := func(v bool) {
		if v {
			u64(1)
		} else {
			u64(0)
		}
	}
	// Player state is stored densely by ID (SoA slices) — already canonical.
	for _, p := range s.players {
		i := p.ID
		i64(i)
		b(s.ps.online[i])
		i64(int(s.ps.src[i]))
		i64(int(s.ps.supernode[i]))
		i64(int(s.ps.cdnServer[i]))
		i64(int(s.ps.dc[i]))
	}
	// Supernode meta lives in a map; sort the IDs before folding.
	ids := make([]int, 0, len(s.snMeta))
	for id := range s.snMeta {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		m := s.snMeta[id]
		i64(id)
		i64(m.prevSupported)
		i64(m.supportedThisSlot)
	}
	// Churn-mode arrival pool order is part of the replayable state.
	for _, id := range s.arrivalPool {
		i64(id)
	}
	i64(s.lastAssignCycle)
	return h
}
