package core

import (
	"math"

	"cloudfog/internal/game"
	"cloudfog/internal/geo"
	"cloudfog/internal/netmodel"
	"cloudfog/internal/rng"
	"cloudfog/internal/streaming"
)

// CoverageStudy reproduces the static user-coverage analysis of Fig. 4/5:
// given a player population, it computes for each player the best (lowest)
// unloaded network response latency achievable from a set of serving points
// — datacenters or supernodes — and reports the fraction of players whose
// latency meets each requirement threshold.
//
// "A user is covered by a datacenter or a supernode if the response latency
// is no more than the latency requirement of the user's game."
type CoverageStudy struct {
	cfg     Config
	model   *netmodel.Model
	players []*netmodel.Endpoint
}

// NewCoverageStudy samples a player population from cfg (Players, Seed,
// Net are used).
func NewCoverageStudy(cfg Config) (*CoverageStudy, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	master := rng.New(cfg.Seed)
	placer := geo.NewPlacer(nil)
	rPlace := master.SplitNamed("place")
	rNet := master.SplitNamed("net")
	cs := &CoverageStudy{
		cfg:   cfg,
		model: netmodel.NewModel(cfg.Net, cfg.Seed^0xc10dF09),
	}
	cs.players = make([]*netmodel.Endpoint, cfg.Players)
	for i := range cs.players {
		cs.players[i] = netmodel.NewPlayerEndpoint(i, placer.PlacePlayer(rPlace), rNet)
	}
	return cs, nil
}

// bestResponseMs returns the lowest unloaded network response latency the
// player can get from any of the serving endpoints: action one-way +
// render + stream one-way + transmission + mean jitter, at the given
// bitrate.
func (cs *CoverageStudy) bestResponseMs(p *netmodel.Endpoint, servers []*netmodel.Endpoint, perStreamKbps, bitrate float64) float64 {
	best := math.Inf(1)
	for _, srv := range servers {
		oneway := cs.model.OneWayMs(srv, p)
		dist := geo.Distance(srv.Loc, p.Loc)
		pathCap := p.DownloadKbps * (1 - cs.cfg.WideAreaBWPenalty*math.Min(1, dist/wideAreaFullPenaltyKm))
		link := streaming.Link{
			OneWayMs:      oneway,
			EffectiveKbps: math.Min(perStreamKbps, pathCap),
			BaseJitterMs:  streaming.DefaultBaseJitterMs + cs.cfg.JitterPerOnewayMs*oneway,
		}
		resp := oneway + cs.cfg.RenderMs + streaming.NetworkLatencyMs(link, bitrate)
		if resp < best {
			best = resp
		}
	}
	return best
}

// CoverageVsDatacenters returns, for each threshold in thresholdsMs, the
// fraction of players covered when nDatacenters datacenters serve the
// population directly (the Fig. 4(a)/5(a) series).
func (cs *CoverageStudy) CoverageVsDatacenters(nDatacenters int, thresholdsMs []float64) []float64 {
	sites := geo.DatacenterSites(nDatacenters)
	servers := make([]*netmodel.Endpoint, len(sites))
	for i, site := range sites {
		servers[i] = netmodel.NewDatacenterEndpoint(1_000_000+i, site)
	}
	return cs.coverage(servers, cs.cfg.ServerStreamKbps, thresholdsMs)
}

// CoverageVsSupernodes returns, for each threshold, the fraction of players
// covered when nSupernodes supernodes (placed like the player population)
// serve them, alongside the default datacenters (the Fig. 4(b)/5(b)
// series). A player is covered if EITHER a supernode or a datacenter meets
// the threshold — matching the paper's "covered by a datacenter or a
// supernode".
func (cs *CoverageStudy) CoverageVsSupernodes(nSupernodes int, thresholdsMs []float64) []float64 {
	master := rng.New(cs.cfg.Seed + 7)
	placer := geo.NewPlacer(nil)
	rFog := master.SplitNamed("fog")
	servers := make([]*netmodel.Endpoint, 0, nSupernodes+cs.cfg.Datacenters)
	for i := 0; i < nSupernodes; i++ {
		loc := placer.PlacePlayer(rFog)
		if rFog.Bool(0.4) {
			loc = placer.PlaceUniform(rFog)
		}
		servers = append(servers, netmodel.NewSupernodeEndpoint(2_000_000+i, loc, rFog))
	}
	for i, site := range geo.DatacenterSites(cs.cfg.Datacenters) {
		servers = append(servers, netmodel.NewDatacenterEndpoint(1_000_000+i, site))
	}
	// Supernodes stream one video at a time in the unloaded analysis; use
	// the server per-stream rate as the cap for both server kinds.
	return cs.coverage(servers, cs.cfg.ServerStreamKbps, thresholdsMs)
}

func (cs *CoverageStudy) coverage(servers []*netmodel.Endpoint, perStreamKbps float64, thresholdsMs []float64) []float64 {
	// Use the mid-ladder bitrate as the paper's representative stream.
	bitrate := game.MustQuality(4).BitrateKbps
	covered := make([]int, len(thresholdsMs))
	for _, p := range cs.players {
		best := cs.bestResponseMs(p, servers, perStreamKbps, bitrate)
		for ti, th := range thresholdsMs {
			if best <= th {
				covered[ti]++
			}
		}
	}
	out := make([]float64, len(thresholdsMs))
	for i, c := range covered {
		out[i] = float64(c) / float64(len(cs.players))
	}
	return out
}
