// Package core implements the CloudFog system of Lin & Shen — the paper's
// primary contribution — together with the two comparison systems of its
// evaluation: the plain cloud-gaming model ("Cloud") and the EdgeCloud-style
// CDN-augmented model ("CDN").
//
// A System wires the substrates together: the network model, the cloud
// datacenters, the fog of supernodes, the social graph, the workload
// generator, and the four QoS strategies (reputation-based supernode
// selection, receiver-driven encoding rate adaptation, social-network-based
// server assignment, dynamic supernode provisioning). Strategy flags turn
// each on or off, which is how the paper's CloudFog/B (basic) and
// CloudFog/A (advanced) variants, and every per-strategy figure, are
// expressed.
package core

import (
	"fmt"
	"time"

	"cloudfog/internal/netmodel"
	"cloudfog/internal/trace"
	"cloudfog/internal/workload"
)

// Mode selects which gaming system a simulation runs.
type Mode int

const (
	// ModeCloud is the conventional cloud-gaming model: datacenters
	// compute state, render, and stream to every player.
	ModeCloud Mode = iota + 1
	// ModeCDN is the EdgeCloud-style hybrid: CDN servers near users take
	// over state computation, rendering, and streaming for the players
	// they can reach; everyone else uses the cloud.
	ModeCDN
	// ModeCloudFog is the paper's system: the cloud computes state and
	// pushes updates to supernodes, which render and stream.
	ModeCloudFog
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeCloud:
		return "Cloud"
	case ModeCDN:
		return "CDN"
	case ModeCloudFog:
		return "CloudFog"
	default:
		return "unknown"
	}
}

// Strategies toggles the four CloudFog QoS strategies. The zero value is
// CloudFog/B (basic); AllStrategies() is CloudFog/A (advanced).
type Strategies struct {
	// Reputation enables reputation-based supernode selection (§3.2).
	Reputation bool
	// Adaptation enables receiver-driven encoding rate adaptation (§3.3).
	Adaptation bool
	// SocialAssignment enables social-network-based server assignment
	// (§3.4).
	SocialAssignment bool
	// Provisioning enables dynamic supernode provisioning (§3.5).
	Provisioning bool
}

// AllStrategies returns the CloudFog/A strategy set.
func AllStrategies() Strategies {
	return Strategies{Reputation: true, Adaptation: true, SocialAssignment: true, Provisioning: true}
}

// Config describes one simulated deployment.
type Config struct {
	// Mode selects the gaming system.
	Mode Mode
	// Players is the total player population (online and offline).
	Players int
	// Supernodes is the number of deployed supernodes (ModeCloudFog).
	Supernodes int
	// SupernodeCandidates is the size of the contributable-machine pool
	// ("10% of players have the capacity to be supernodes"). Defaults to
	// max(Supernodes, Players/10).
	SupernodeCandidates int
	// CDNServers is the number of CDN servers (ModeCDN).
	CDNServers int
	// CDNServerCapacity is the per-CDN-server player capacity.
	CDNServerCapacity int
	// Datacenters is the number of main cloud datacenters.
	Datacenters int
	// ServersPerDC is the number of game servers per datacenter.
	ServersPerDC int
	// Strategies toggles the QoS strategies (ModeCloudFog).
	Strategies Strategies
	// Seed drives all randomness; equal configs reproduce bit-for-bit.
	Seed uint64
	// Net overrides network-model parameters (zero fields take defaults).
	Net netmodel.Params
	// UpdateKbps is Λ, the cloud->supernode update stream bandwidth.
	UpdateKbps float64
	// CandidateListSize is how many supernode candidates the cloud
	// returns to a joining player.
	CandidateListSize int
	// Lambda is the reputation aging factor.
	Lambda float64
	// Theta is the adaptation adjust-down threshold θ.
	Theta float64
	// AdaptationDebounce is the number of consecutive agreeing buffer
	// estimates required before the encoding rate changes (0 = the
	// controller default).
	AdaptationDebounce int
	// AssignH1 and AssignH2 are the server-assignment refinement bounds.
	AssignH1 int
	AssignH2 int
	// WallClock, when non-nil, supplies real time for the server-assignment
	// latency metric (Fig. 9). The simulator itself never reads the wall
	// clock: with WallClock nil (the default, and what every experiment
	// uses) the latency is modeled deterministically from the work the
	// assignment run performed, so seeded runs reproduce bit-for-bit.
	WallClock func() time.Time
	// ProvisionEpsilon is ε, the provisioning headroom factor.
	ProvisionEpsilon float64
	// ProvisionWindowHours is m, the forecasting window (paper: 4 h).
	ProvisionWindowHours int
	// FixedSupernodePool, when Provisioning is off in a churn experiment,
	// caps the active supernodes to a constant pool of this size
	// (0 = all deployed supernodes stay active).
	FixedSupernodePool int
	// SupernodeCapacityMin / Max clamp the Pareto capacity draw.
	SupernodeCapacityMin int
	SupernodeCapacityMax int
	// ForcedSupernodeLoad, when positive, pins every supernode's capacity
	// to this value — the per-supernode load sweep of Fig. 10/11.
	ForcedSupernodeLoad int

	// WideAreaBWPenalty is the fractional bandwidth loss of a
	// full-distance wide-area path (inter-domain bottlenecks).
	WideAreaBWPenalty float64
	// JitterPerOnewayMs adds per-frame queueing jitter proportional to
	// the one-way path latency (more hops, more variance).
	JitterPerOnewayMs float64
	// ServerStreamKbps is the per-stream upload a datacenter or CDN
	// server devotes to one player.
	ServerStreamKbps float64
	// RenderMs is the supernode/CDN render time per response.
	RenderMs float64

	// FailSupernodesPerCycle injects supernode failures: during every
	// measured cycle, this many random active supernodes are withdrawn at
	// mid-day, forcing their players to migrate (the Fig. 9 migration
	// study).
	FailSupernodesPerCycle int

	// AlwaysOn keeps every player online for the full day — the
	// concurrent-player sweeps of Fig. 6-8 vary the number of players
	// "playing games concurrently".
	AlwaysOn bool

	// Arrivals switches the workload into churn mode: instead of the
	// diurnal schedule, players join in Poisson bursts at the script's
	// rates (the Fig. 13–15 experiments).
	Arrivals *workload.ArrivalScript

	// Workers controls the streaming-evaluation worker pool (parallel.go):
	// 0 (the default) sizes it by GOMAXPROCS, a positive value is a fixed
	// pool size, and a negative value forces the legacy single-pass
	// sequential ordering. Seeded outputs are bit-identical across all
	// settings — the knob exists for bisection and benchmarking, not
	// correctness.
	Workers int
}

// Default tuning constants.
const (
	DefaultWideAreaBWPenalty = 0.45
	DefaultJitterPerOnewayMs = 0.08
	DefaultServerStreamKbps  = 6000
	DefaultRenderMs          = 2
	DefaultProvisionEpsilon  = 0.15
	DefaultProvisionWindow   = 4
)

// PeerSim returns the paper's simulation profile: 10,000 players, 600
// supernodes, 5 datacenters of 50 servers, 300 CDN servers.
func PeerSim() Config {
	return Config{
		Mode:                 ModeCloudFog,
		Players:              10000,
		Supernodes:           600,
		CDNServers:           300,
		CDNServerCapacity:    30,
		Datacenters:          5,
		ServersPerDC:         50,
		Seed:                 1,
		UpdateKbps:           150,
		CandidateListSize:    8,
		Lambda:               0.9,
		Theta:                0.5,
		AssignH1:             100,
		AssignH2:             10,
		ProvisionEpsilon:     DefaultProvisionEpsilon,
		ProvisionWindowHours: DefaultProvisionWindow,
		SupernodeCapacityMin: 15,
		SupernodeCapacityMax: 60,
		WideAreaBWPenalty:    DefaultWideAreaBWPenalty,
		JitterPerOnewayMs:    DefaultJitterPerOnewayMs,
		ServerStreamKbps:     DefaultServerStreamKbps,
		RenderMs:             DefaultRenderMs,
	}
}

// PlanetLab returns the testbed profile: 750 nodes, 30 supernodes, 2
// datacenters, with a heavier-tailed wide-area latency trace (the
// substitution for the real PlanetLab deployment, DESIGN.md §5).
func PlanetLab() Config {
	cfg := PeerSim()
	cfg.Players = 750
	cfg.Supernodes = 30
	cfg.SupernodeCandidates = 30
	cfg.CDNServers = 15
	cfg.Datacenters = 2
	cfg.Net.Trace = trace.WideArea()
	return cfg
}

// normalize fills defaults and validates.
func (c Config) normalize() (Config, error) {
	if c.Players <= 0 {
		return c, fmt.Errorf("core: Players must be positive, got %d", c.Players)
	}
	if c.Datacenters <= 0 {
		return c, fmt.Errorf("core: Datacenters must be positive, got %d", c.Datacenters)
	}
	if c.Mode == 0 {
		c.Mode = ModeCloudFog
	}
	if c.ServersPerDC <= 0 {
		c.ServersPerDC = 50
	}
	if c.SupernodeCandidates <= 0 {
		c.SupernodeCandidates = c.Players / 10
	}
	if c.SupernodeCandidates < c.Supernodes {
		c.SupernodeCandidates = c.Supernodes
	}
	if c.CDNServerCapacity <= 0 {
		c.CDNServerCapacity = 30
	}
	if c.UpdateKbps <= 0 {
		c.UpdateKbps = 150
	}
	if c.CandidateListSize <= 0 {
		c.CandidateListSize = 8
	}
	if c.Lambda <= 0 || c.Lambda >= 1 {
		c.Lambda = 0.9
	}
	if c.Theta <= 0 || c.Theta > 1 {
		c.Theta = 0.5
	}
	if c.AssignH1 <= 0 {
		c.AssignH1 = 100
	}
	if c.AssignH2 <= 0 {
		c.AssignH2 = 10
	}
	if c.ProvisionEpsilon <= 0 {
		c.ProvisionEpsilon = DefaultProvisionEpsilon
	}
	if c.ProvisionWindowHours <= 0 {
		c.ProvisionWindowHours = DefaultProvisionWindow
	}
	if c.SupernodeCapacityMin <= 0 {
		c.SupernodeCapacityMin = 3
	}
	if c.SupernodeCapacityMax < c.SupernodeCapacityMin {
		c.SupernodeCapacityMax = c.SupernodeCapacityMin * 10
	}
	if c.WideAreaBWPenalty <= 0 || c.WideAreaBWPenalty >= 1 {
		c.WideAreaBWPenalty = DefaultWideAreaBWPenalty
	}
	if c.JitterPerOnewayMs <= 0 {
		c.JitterPerOnewayMs = DefaultJitterPerOnewayMs
	}
	if c.ServerStreamKbps <= 0 {
		c.ServerStreamKbps = DefaultServerStreamKbps
	}
	if c.RenderMs <= 0 {
		c.RenderMs = DefaultRenderMs
	}
	return c, nil
}
