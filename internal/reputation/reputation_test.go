package reputation

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewBookClampsLambda(t *testing.T) {
	for _, bad := range []float64{-1, 0, 1, 2} {
		if got := NewBook(bad).Lambda(); got != DefaultLambda {
			t.Errorf("NewBook(%v).Lambda() = %v, want default", bad, got)
		}
	}
	if got := NewBook(0.8).Lambda(); got != 0.8 {
		t.Errorf("valid lambda rejected: %v", got)
	}
}

func TestScoreNoHistoryIsZero(t *testing.T) {
	b := NewBook(0.9)
	if got := b.Score(1, 10); got != 0 {
		t.Errorf("unknown supernode score = %v, want 0 per the paper", got)
	}
}

func TestScoreSingleRating(t *testing.T) {
	b := NewBook(0.9)
	b.Rate(1, 0.8, 5)
	// Same-day score: 0.8 * 0.9^0 / 1 = 0.8.
	if got := b.Score(1, 5); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("same-day score = %v", got)
	}
	// Three days later: 0.8 * 0.9^3.
	want := 0.8 * math.Pow(0.9, 3)
	if got := b.Score(1, 8); math.Abs(got-want) > 1e-12 {
		t.Errorf("aged score = %v, want %v", got, want)
	}
}

func TestScoreEquation7(t *testing.T) {
	// s_ij = (1/N_r) * sum_k r_k * lambda^d_k, checked against a hand
	// computation with two ratings.
	b := NewBook(0.5)
	b.Rate(7, 1.0, 0)
	b.Rate(7, 0.5, 2)
	// On day 3: (1.0*0.5^3 + 0.5*0.5^1) / 2 = (0.125 + 0.25)/2 = 0.1875.
	if got := b.Score(7, 3); math.Abs(got-0.1875) > 1e-12 {
		t.Errorf("Eq.7 score = %v, want 0.1875", got)
	}
}

func TestRatingClamped(t *testing.T) {
	b := NewBook(0.9)
	b.Rate(1, 1.7, 0)
	b.Rate(2, -0.4, 0)
	if got := b.Score(1, 0); got != 1 {
		t.Errorf("overflow rating score = %v", got)
	}
	if got := b.Score(2, 0); got != 0 {
		t.Errorf("underflow rating score = %v", got)
	}
}

func TestScoreDecaysWithAgeProperty(t *testing.T) {
	// Property: for any rating history, the score never increases as the
	// evaluation day advances (all ratings only age).
	f := func(vals []uint8, seed uint8) bool {
		b := NewBook(0.9)
		for i, v := range vals {
			b.Rate(1, float64(v)/255, i)
		}
		last := len(vals)
		s1 := b.Score(1, last)
		s2 := b.Score(1, last+3)
		return s2 <= s1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScoreBoundedProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		b := NewBook(0.9)
		for i, v := range vals {
			b.Rate(3, float64(v)/255, i)
		}
		s := b.Score(3, len(vals))
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecentRatingsDominate(t *testing.T) {
	// A supernode that was bad long ago but good recently must outscore
	// one that was good long ago but bad recently.
	b := NewBook(0.8)
	b.Rate(1, 0.1, 0)
	b.Rate(1, 0.9, 20)
	b.Rate(2, 0.9, 0)
	b.Rate(2, 0.1, 20)
	if b.Score(1, 20) <= b.Score(2, 20) {
		t.Errorf("recency weighting broken: %v vs %v", b.Score(1, 20), b.Score(2, 20))
	}
}

func TestNumRatingsAndForget(t *testing.T) {
	b := NewBook(0.9)
	b.Rate(1, 0.5, 0)
	b.Rate(1, 0.6, 1)
	if b.NumRatings(1) != 2 {
		t.Errorf("NumRatings = %d", b.NumRatings(1))
	}
	b.Forget(1)
	if b.NumRatings(1) != 0 || b.Score(1, 2) != 0 {
		t.Error("Forget did not clear history")
	}
}

func TestPrune(t *testing.T) {
	b := NewBook(0.9)
	b.Rate(1, 0.5, 0)
	b.Rate(1, 0.6, 50)
	b.Rate(2, 0.7, 0)
	b.Prune(60, 30)
	if b.NumRatings(1) != 1 {
		t.Errorf("supernode 1 ratings after prune = %d, want 1", b.NumRatings(1))
	}
	if b.NumRatings(2) != 0 {
		t.Errorf("supernode 2 ratings after prune = %d, want 0", b.NumRatings(2))
	}
}

func TestRanked(t *testing.T) {
	b := NewBook(0.9)
	b.Rate(10, 0.9, 5)
	b.Rate(20, 0.5, 5)
	// 30 unknown -> score 0 -> last; ties broken by ascending ID.
	got := b.Ranked([]int{30, 20, 10, 40}, 5)
	want := []int{10, 20, 30, 40}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranked = %v, want %v", got, want)
		}
	}
}

func TestRankedEmpty(t *testing.T) {
	b := NewBook(0.9)
	if got := b.Ranked(nil, 0); len(got) != 0 {
		t.Errorf("Ranked(nil) = %v", got)
	}
}

func TestNegativeAgeTreatedAsZero(t *testing.T) {
	b := NewBook(0.9)
	b.Rate(1, 0.8, 10)
	// Evaluating "before" the rating day must not amplify the rating.
	if got := b.Score(1, 5); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("future rating score = %v, want 0.8", got)
	}
}

func TestGlobalBook(t *testing.T) {
	g := NewGlobalBook(0.9)
	if g.Score(1, 0) != 0 {
		t.Error("empty global score not 0")
	}
	g.Rate(1, 0.8, 0)
	g.Rate(1, 0.6, 0)
	if got := g.Score(1, 0); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("global score = %v, want 0.7", got)
	}
	// Sybil attack surface the paper warns about: many fake ratings swing
	// the global score — demonstrating why CloudFog uses per-player books.
	for i := 0; i < 100; i++ {
		g.Rate(1, 1.0, 0)
	}
	if g.Score(1, 0) < 0.95 {
		t.Error("expected the global book to be swayed by rating floods")
	}
	if NewGlobalBook(5).Score(9, 3) != 0 {
		t.Error("lambda clamp broken for global book")
	}
}

func TestBooksConcurrencySafe(t *testing.T) {
	// The fognet cloud rates supernodes from concurrent player connections
	// while ranking ladders; run under -race.
	b := NewBook(0.9)
	g := NewGlobalBook(0.9)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := (w*200 + i) % 16
				b.Rate(id, float64(i%10)/10, i%7)
				g.Rate(id, float64(i%10)/10, i%7)
				_ = b.Score(id, i%7)
				_ = g.Score(id, i%7)
				_ = b.NumRatings(id)
				_ = g.NumRatings(id)
				if i%50 == 0 {
					b.Prune(i%7, 3)
					_ = b.Ranked([]int{0, 1, 2, 3}, i%7)
					b.Forget(15)
				}
			}
		}(w)
	}
	wg.Wait()
	if b.NumRatings(0) == 0 || g.NumRatings(0) == 0 {
		t.Error("concurrent ratings lost")
	}
}
