package reputation

import "slices"

// This file is the checkpoint surface of the GlobalBook: the fognet
// cloud's ladder ranking is reputation-driven, so a promoted standby must
// restore the exact rating history or its candidate ordering would diverge
// from the failed primary's (DESIGN.md §12).

// BookEntry is the rating history of one supernode.
type BookEntry struct {
	// SupernodeID identifies the rated supernode.
	SupernodeID int
	// Ratings is the history, oldest first.
	Ratings []Rating
}

// BookState is a serializable snapshot of a GlobalBook, with entries
// sorted by supernode ID so the encoding is canonical.
type BookState struct {
	// Lambda is the aging factor.
	Lambda float64
	// Entries holds per-supernode histories, ascending by SupernodeID.
	Entries []BookEntry
}

// StateInto captures the book into st, reusing st's backing arrays
// (including each entry's Ratings slice). With a quiesced book this
// performs zero allocations once capacities stabilize, keeping periodic
// checkpoint encodes off the steady-state allocation budget.
func (g *GlobalBook) StateInto(st *BookState) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	st.Lambda = g.lambda
	entries := st.Entries[:0]
	for id, rs := range g.ratings {
		if len(entries) < cap(entries) {
			entries = entries[:len(entries)+1]
		} else {
			entries = append(entries, BookEntry{})
		}
		e := &entries[len(entries)-1]
		e.SupernodeID = id
		e.Ratings = append(e.Ratings[:0], rs...)
	}
	slices.SortFunc(entries, func(a, b BookEntry) int { return a.SupernodeID - b.SupernodeID })
	st.Entries = entries
}

// State captures the book into a fresh BookState.
func (g *GlobalBook) State() BookState {
	var st BookState
	g.StateInto(&st)
	return st
}

// RestoreGlobalBook rebuilds a GlobalBook from a captured state. Scores
// computed by the restored book are bit-identical to the source's.
func RestoreGlobalBook(st BookState) *GlobalBook {
	g := NewGlobalBook(st.Lambda)
	g.mu.Lock()
	for _, e := range st.Entries {
		if len(e.Ratings) == 0 {
			continue
		}
		g.ratings[e.SupernodeID] = append([]Rating(nil), e.Ratings...)
	}
	g.mu.Unlock()
	return g
}
