package reputation

import "testing"

func TestGlobalBookStateRoundTrip(t *testing.T) {
	g := NewGlobalBook(0.8)
	g.Rate(3, 0.9, 1)
	g.Rate(1, 0.4, 2)
	g.Rate(3, 0.7, 5)
	g.Rate(2, 1.0, 3)

	st := g.State()
	if st.Lambda != 0.8 {
		t.Fatalf("lambda: %v", st.Lambda)
	}
	// Canonical order: ascending supernode ID.
	wantIDs := []int{1, 2, 3}
	if len(st.Entries) != len(wantIDs) {
		t.Fatalf("entries: %d", len(st.Entries))
	}
	for i, id := range wantIDs {
		if st.Entries[i].SupernodeID != id {
			t.Fatalf("entry %d: got id %d want %d", i, st.Entries[i].SupernodeID, id)
		}
	}

	r := RestoreGlobalBook(st)
	for id := 1; id <= 3; id++ {
		for day := 0; day < 10; day++ {
			if got, want := r.Score(id, day), g.Score(id, day); got != want {
				t.Fatalf("score(%d,%d): %v != %v", id, day, got, want)
			}
		}
		if r.NumRatings(id) != g.NumRatings(id) {
			t.Fatalf("ratings count for %d differ", id)
		}
	}
}

func TestGlobalBookStateIsACopy(t *testing.T) {
	g := NewGlobalBook(0.9)
	g.Rate(1, 0.5, 1)
	st := g.State()
	g.Rate(1, 0.1, 2) // must not leak into the captured state
	if len(st.Entries[0].Ratings) != 1 {
		t.Fatalf("captured state aliases live book: %v", st.Entries[0].Ratings)
	}
	st.Entries[0].Ratings[0].Value = 0 // nor the other way
	if got := g.Score(1, 1); got == 0 {
		t.Fatal("mutating state mutated live book")
	}
}

func TestStateIntoSteadyStateAllocs(t *testing.T) {
	g := NewGlobalBook(0.9)
	for id := 1; id <= 8; id++ {
		for k := 0; k < 20; k++ {
			g.Rate(id, 0.5, k)
		}
	}
	var st BookState
	g.StateInto(&st) // warm capacities
	allocs := testing.AllocsPerRun(100, func() { g.StateInto(&st) })
	if allocs != 0 {
		t.Fatalf("StateInto allocated %v/op on a quiesced book", allocs)
	}
}
