// Package reputation implements the reputation-based supernode selection
// strategy of §3.2 of the CloudFog paper.
//
// Each player keeps its OWN ratings of the supernodes that served it — no
// opinions are gathered from other players, which makes the scheme immune
// to sybil attacks and collusion (a design decision the paper motivates
// explicitly). After each gaming session the player rates the supernode
// with the observed playback continuity; the overall score is the
// age-weighted average of Eq. 7:
//
//	s_ij = (1/N_r) * sum_k  r_k * lambda^(d_k)
//
// where r_k is the k-th rating, d_k its age in days, and lambda in (0, 1)
// the aging factor, so recent interactions dominate.
//
// Book and GlobalBook are safe for concurrent use: the simulator drives
// them single-threaded, but the fognet prototype's cloud rates supernodes
// from concurrent player connections.
package reputation

import (
	"math"
	"sort"
	"sync"
)

// Rating is one playback-continuity rating a player gave a supernode.
type Rating struct {
	// Value is the rating in [0, 1] (the session's playback continuity).
	Value float64
	// Day is the simulation day (cycle) the rating was recorded on.
	Day int
}

// Book is one player's private reputation ledger over supernodes.
// The zero value is not usable; create with NewBook.
type Book struct {
	mu      sync.RWMutex
	lambda  float64
	ratings map[int][]Rating // supernode ID -> ratings, oldest first; guarded by mu
}

// DefaultLambda is the default aging factor. The paper leaves λ ∈ (0,1);
// 0.9 gives a ~7-day half-life matching the weekly play patterns it models.
const DefaultLambda = 0.9

// NewBook creates a reputation book with aging factor lambda. Lambda is
// clamped into (0, 1): values outside default to DefaultLambda.
func NewBook(lambda float64) *Book {
	if lambda <= 0 || lambda >= 1 {
		lambda = DefaultLambda
	}
	return &Book{lambda: lambda, ratings: make(map[int][]Rating)}
}

// Lambda returns the aging factor in use.
func (b *Book) Lambda() float64 { return b.lambda }

// Rate records a rating of the given supernode. Values are clamped to
// [0, 1].
func (b *Book) Rate(supernodeID int, value float64, day int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ratings[supernodeID] = append(b.ratings[supernodeID], Rating{Value: clamp01(value), Day: day})
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// score computes Eq. 7 over a rating list.
func score(rs []Rating, lambda float64, today int) float64 {
	if len(rs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rs {
		age := today - r.Day
		if age < 0 {
			age = 0
		}
		sum += r.Value * math.Pow(lambda, float64(age))
	}
	return sum / float64(len(rs))
}

// Score returns the overall reputation score s_ij of the supernode as seen
// from this book on the given day (Eq. 7). Supernodes with no prior
// interactions score 0, per the paper.
func (b *Book) Score(supernodeID int, today int) float64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return score(b.ratings[supernodeID], b.lambda, today)
}

// NumRatings returns how many ratings this book holds for the supernode.
func (b *Book) NumRatings(supernodeID int) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.ratings[supernodeID])
}

// Forget drops all ratings of the given supernode (e.g. after it
// permanently leaves the system).
func (b *Book) Forget(supernodeID int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.ratings, supernodeID)
}

// Prune discards ratings older than maxAgeDays as of today, bounding memory
// for long-lived players. Ratings aged beyond the horizon contribute
// lambda^age ~ 0 anyway.
func (b *Book) Prune(today, maxAgeDays int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, rs := range b.ratings {
		kept := rs[:0]
		for _, r := range rs {
			if today-r.Day <= maxAgeDays {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			delete(b.ratings, id)
		} else {
			b.ratings[id] = kept
		}
	}
}

// Ranked orders the candidate supernode IDs by descending reputation score
// on the given day, breaking ties by ascending ID for determinism. This is
// the ordered preference list the player probes sequentially for available
// capacity (§3.2.2).
func (b *Book) Ranked(candidates []int, today int) []int {
	type scored struct {
		id    int
		score float64
	}
	b.mu.RLock()
	ss := make([]scored, len(candidates))
	for i, id := range candidates {
		ss[i] = scored{id: id, score: score(b.ratings[id], b.lambda, today)}
	}
	b.mu.RUnlock()
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].id < ss[j].id
	})
	out := make([]int, len(ss))
	for i, s := range ss {
		out[i] = s.id
	}
	return out
}

// GlobalBook aggregates ratings from ALL players, the strawman scheme the
// paper rejects as vulnerable to sybil attacks and collusion. It is kept as
// an ablation baseline (see DESIGN.md §6) and reused by the fognet cloud,
// whose ladder ranking aggregates every player's QoE reports by design.
type GlobalBook struct {
	mu      sync.RWMutex
	lambda  float64
	ratings map[int][]Rating // guarded by mu
}

// NewGlobalBook creates a global reputation aggregator with the given aging
// factor (clamped like NewBook).
func NewGlobalBook(lambda float64) *GlobalBook {
	if lambda <= 0 || lambda >= 1 {
		lambda = DefaultLambda
	}
	return &GlobalBook{lambda: lambda, ratings: make(map[int][]Rating)}
}

// Rate records a rating of a supernode by any player.
func (g *GlobalBook) Rate(supernodeID int, value float64, day int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ratings[supernodeID] = append(g.ratings[supernodeID], Rating{Value: clamp01(value), Day: day})
}

// Score returns the aggregate age-weighted score of the supernode.
func (g *GlobalBook) Score(supernodeID int, today int) float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return score(g.ratings[supernodeID], g.lambda, today)
}

// NumRatings returns how many ratings the book holds for the supernode.
func (g *GlobalBook) NumRatings(supernodeID int) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.ratings[supernodeID])
}
