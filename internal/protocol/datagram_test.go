package protocol

import (
	"bytes"
	"testing"
)

func TestDatagramRequestRoundTrip(t *testing.T) {
	m := DatagramRequest{PlayerID: 4711}
	got, err := UnmarshalDatagramRequest(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("round trip %+v, want %+v", got, m)
	}
}

func TestDatagramReplyRoundTrip(t *testing.T) {
	for _, m := range []DatagramReply{
		{OK: true, Addr: "127.0.0.1:9999", Token: 0xfeedface, Epoch: 3},
		{OK: false, Reason: "datagram video disabled"},
		{},
	} {
		got, err := UnmarshalDatagramReply(m.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if got != m {
			t.Errorf("round trip %+v, want %+v", got, m)
		}
	}
}

func TestDatagramUnmarshalRejectsTruncated(t *testing.T) {
	full := DatagramReply{OK: true, Addr: "x", Reason: "y"}.Marshal()
	for i := 0; i < len(full); i++ {
		if _, err := UnmarshalDatagramReply(full[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	if _, err := UnmarshalDatagramRequest(nil); err == nil {
		t.Error("empty request accepted")
	}
}

func TestDatagramMsgTypeNames(t *testing.T) {
	if MsgDatagramRequest.String() != "datagram-request" ||
		MsgDatagramReply.String() != "datagram-reply" {
		t.Error("missing String() names for datagram messages")
	}
}

// FuzzStreamFramingParity pins the transport-seam refactor to the legacy
// stream framing byte-for-byte: for any message type and payload, the
// append-style encoder, the legacy writer, and both readers must agree on
// the exact bytes. The TCP transport carries control messages,
// checkpoints, and resume handshakes — none of them may shift by a bit.
func FuzzStreamFramingParity(f *testing.F) {
	f.Add(uint8(MsgVideoFrame), []byte("frame"))
	f.Add(uint8(MsgBye), []byte{})
	f.Add(uint8(MsgCheckpoint), bytes.Repeat([]byte{0xA5}, 1024))
	f.Add(uint8(MsgDatagramReply), DatagramReply{OK: true, Addr: "a"}.Marshal())
	f.Fuzz(func(t *testing.T, typ uint8, payload []byte) {
		appended, err := AppendFrame(nil, MsgType(typ), payload)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		var legacy bytes.Buffer
		if err := WriteMessage(&legacy, MsgType(typ), payload); err != nil {
			t.Fatalf("WriteMessage: %v", err)
		}
		if !bytes.Equal(appended, legacy.Bytes()) {
			t.Fatalf("append framing %x differs from legacy framing %x", appended, legacy.Bytes())
		}
		// Both readers recover the identical message.
		rtyp, rpayload, err := ReadMessage(bytes.NewReader(appended))
		if err != nil || rtyp != MsgType(typ) || !bytes.Equal(rpayload, payload) {
			t.Fatalf("ReadMessage: %v %v", rtyp, err)
		}
		fr := NewFrameReader(bytes.NewReader(appended))
		ftyp, fpayload, err := fr.Next()
		if err != nil || ftyp != MsgType(typ) || !bytes.Equal(fpayload, payload) {
			t.Fatalf("FrameReader: %v %v", ftyp, err)
		}
	})
}
