package protocol

import "cloudfog/internal/virtualworld"

// This file encodes the interest-management messages of DESIGN.md §14:
// fogs report their players' AoI footprint upstream (InterestUpdate) and
// the cloud answers with per-cell slices of the Λ update stream
// (CellBatch) instead of the full-world MsgUpdateBatch. Both follow the
// PR 3 conventions: AppendTo append-encoders, DecodeInto decoders that
// reuse the destination's slice capacity, arithmetic size accounting.

// InterestUpdate is a supernode's AoI subscription: the set of grid cells
// covering its attached players' viewports plus the hysteresis margin,
// and the player IDs themselves so the cloud can widen the set with the
// authoritative avatar positions (the fog's replica view of a player it
// just gained may be stale).
type InterestUpdate struct {
	// Gen is a fog-local generation counter; the cloud keeps the highest
	// seen so a reordered/duplicated update can never roll the set back.
	Gen uint32
	// CellSize is the grid cell edge the footprint was computed with. A
	// mismatch with the cloud's geometry voids the update (the supernode
	// stays full-world) rather than mis-mapping cell IDs.
	CellSize float64
	// Players are the attached player IDs, ascending.
	Players []int32
	// Cells are the subscribed cell IDs, ascending.
	Cells []uint32
}

// Marshal encodes the message.
func (m InterestUpdate) Marshal() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded message to buf and returns the extended
// slice; with enough capacity it does not allocate.
func (m InterestUpdate) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.u32(m.Gen)
	w.f64(m.CellSize)
	w.u32(uint32(len(m.Players)))
	for _, p := range m.Players {
		w.i32(p)
	}
	w.u32(uint32(len(m.Cells)))
	for _, c := range m.Cells {
		w.u32(c)
	}
	return w.buf
}

// EncodedSize returns the exact Marshal()ed length in bytes.
func (m InterestUpdate) EncodedSize() int {
	return 4 + 8 + 4 + 4*len(m.Players) + 4 + 4*len(m.Cells)
}

// UnmarshalInterestUpdate decodes the message.
func UnmarshalInterestUpdate(buf []byte) (InterestUpdate, error) {
	var m InterestUpdate
	err := DecodeInterestUpdate(buf, &m)
	return m, err
}

// DecodeInterestUpdate decodes into m, reusing m.Players' and m.Cells'
// capacity. On error m holds partially decoded data and must not be used.
func DecodeInterestUpdate(buf []byte, m *InterestUpdate) error {
	r := &reader{buf: buf}
	m.Gen = r.u32()
	m.CellSize = r.f64()
	m.Players = m.Players[:0]
	np := int(r.u32())
	if np > MaxPayload/4 {
		return ErrTooLarge
	}
	for i := 0; i < np && r.err == nil; i++ {
		m.Players = append(m.Players, r.i32())
	}
	m.Cells = m.Cells[:0]
	nc := int(r.u32())
	if nc > MaxPayload/4 {
		return ErrTooLarge
	}
	for i := 0; i < nc && r.err == nil; i++ {
		m.Cells = append(m.Cells, r.u32())
	}
	return r.finish()
}

// CellBatch carries one tick's deltas for one grid cell — one slice of
// the Λ stream, encoded once per dirty cell and fanned to exactly the
// supernodes subscribed to that cell.
type CellBatch struct {
	// Epoch is the authority epoch of the sending cloud (same semantics
	// as UpdateBatch.Epoch).
	Epoch uint64
	// Tick is the world tick the deltas belong to.
	Tick uint64
	// Cell is the grid cell the deltas fall in, or virtualworld.CellNone
	// for position-less deltas (removals and session events) that every
	// subscriber receives.
	Cell uint32
	// Keyframe marks a cell-enter seed: Deltas is the cell's complete
	// entity population, and the receiver prunes in-cell entities the
	// batch does not mention.
	Keyframe bool
	// Deltas are the changed (or, for a keyframe, all) entities, sorted
	// by ID.
	Deltas []virtualworld.Delta
}

// Marshal encodes the message.
func (m CellBatch) Marshal() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded message to buf and returns the extended
// slice; with enough capacity it does not allocate.
func (m CellBatch) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.u64(m.Epoch)
	w.u64(m.Tick)
	w.u32(m.Cell)
	if m.Keyframe {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u32(uint32(len(m.Deltas)))
	for _, d := range m.Deltas {
		w.u32(uint32(d.ID))
		if d.Removed {
			w.u8(1)
		} else {
			w.u8(0)
			putEntity(&w, d.Entity)
		}
	}
	return w.buf
}

// UnmarshalCellBatch decodes the message.
func UnmarshalCellBatch(buf []byte) (CellBatch, error) {
	var m CellBatch
	err := DecodeCellBatch(buf, &m)
	return m, err
}

// DecodeCellBatch decodes into m, reusing m.Deltas' capacity — the
// allocation-free decode for the supernode's per-tick apply loop. On
// error m holds partially decoded data and must not be used.
func DecodeCellBatch(buf []byte, m *CellBatch) error {
	r := &reader{buf: buf}
	m.Epoch = r.u64()
	m.Tick = r.u64()
	m.Cell = r.u32()
	m.Keyframe = r.u8() == 1
	m.Deltas = m.Deltas[:0]
	n := int(r.u32())
	if n > MaxPayload/5 {
		return ErrTooLarge
	}
	for i := 0; i < n && r.err == nil; i++ {
		id := virtualworld.EntityID(r.u32())
		if r.u8() == 1 {
			m.Deltas = append(m.Deltas, virtualworld.Delta{ID: id, Removed: true})
		} else {
			m.Deltas = append(m.Deltas, virtualworld.Delta{ID: id, Entity: getEntity(r)})
		}
	}
	return r.finish()
}

// SizeBits returns the encoded size in bits (Λ accounting).
func (m CellBatch) SizeBits() int { return m.EncodedSize() * 8 }

// EncodedSize returns the exact Marshal()ed length in bytes.
func (m CellBatch) EncodedSize() int {
	n := 8 + 8 + 4 + 1 + 4 // epoch + tick + cell + keyframe + delta count
	for _, d := range m.Deltas {
		n += 4 + 1
		if !d.Removed {
			n += EntityWireBytes
		}
	}
	return n
}
