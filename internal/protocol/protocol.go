// Package protocol defines the wire protocol of the CloudFog prototype:
// the messages exchanged between the cloud (authoritative game state), the
// fog (supernodes rendering and streaming video), and players (thin
// clients), exactly the three-tier interaction of Fig. 1 of the paper:
//
//	player -> cloud      user input (world actions)
//	player -> supernode  packets of view-dependent work, rate changes
//	cloud  -> supernode  world update stream (the Λ bandwidth)
//	supernode -> player  encoded game video
//
// Messages are length-prefixed binary frames:
//
//	uint32 payload length | uint8 message type | payload
//
// Encoding is hand-rolled big-endian binary (stdlib only, no reflection on
// the hot paths). Every message type has Marshal/Unmarshal pairs and a
// round-trip test.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"cloudfog/internal/virtualworld"
)

// MsgType identifies a protocol message.
type MsgType uint8

// Message types.
const (
	// MsgSupernodeHello registers a supernode with the cloud.
	MsgSupernodeHello MsgType = iota + 1
	// MsgSupernodeWelcome acknowledges registration with a world seed.
	MsgSupernodeWelcome
	// MsgPlayerJoin asks the cloud to admit a player.
	MsgPlayerJoin
	// MsgJoinReply returns the player's serving supernode address.
	MsgJoinReply
	// MsgAction carries a player input to the cloud.
	MsgAction
	// MsgUpdateBatch carries one tick's world deltas to a supernode.
	MsgUpdateBatch
	// MsgPlayerAttach attaches a player session to a supernode.
	MsgPlayerAttach
	// MsgAttachReply acknowledges the attach.
	MsgAttachReply
	// MsgVideoFrame carries one encoded video frame to a player.
	MsgVideoFrame
	// MsgRateChange asks the supernode for a different quality level —
	// the receiver-driven adaptation signal of §3.3.
	MsgRateChange
	// MsgProbe asks a supernode whether it has available capacity.
	MsgProbe
	// MsgProbeReply answers a capacity probe.
	MsgProbeReply
	// MsgBye ends a session gracefully.
	MsgBye
	// MsgHeartbeat is the cloud's liveness ping to a supernode. Supernodes
	// are contributed desktops (§3.2.2): the cloud must detect the ones
	// that silently vanish and evict them.
	MsgHeartbeat
	// MsgHeartbeatAck answers a heartbeat with the supernode's replica
	// progress, doubling as a cheap health report.
	MsgHeartbeatAck
	// MsgCandidateUpdate pushes a refreshed failover ladder to a player
	// when the supernode set changes (registration, eviction, departure)
	// or the ranking shifts, so migrations never target stale addresses.
	MsgCandidateUpdate
	// MsgQoEReport carries a player's rating of a supernode to the cloud —
	// the feedback that drives the live reputation book behind the ranked
	// candidate ladder (§3.2's rating step, reported upward instead of
	// kept private because the cloud builds the ladder).
	MsgQoEReport
	// MsgStandbyHello registers a warm standby with the primary cloud; the
	// primary answers with a full checkpoint and then streams the per-tick
	// delta log (DESIGN.md §12).
	MsgStandbyHello
	// MsgCheckpoint carries one encoded internal/checkpoint State to the
	// standby. The payload is opaque to this package — the checkpoint
	// format is versioned independently of the wire protocol.
	MsgCheckpoint
	// MsgLogEntry carries one encoded per-tick delta-log entry to the
	// standby (opaque payload, like MsgCheckpoint). Sent every tick even
	// when empty: the stream doubles as the primary's liveness signal.
	MsgLogEntry
	// MsgResume asks a (possibly just-promoted) cloud to continue an
	// existing supernode or player session after the primary was lost,
	// instead of a full rejoin.
	MsgResume
	// MsgResumeReply answers a resume with the authoritative epoch/tick
	// and whatever the resuming peer needs to reconverge.
	MsgResumeReply
	// MsgDatagramRequest asks the serving node, on an attached video
	// session, to move the video stream to the unreliable datagram
	// transport (-transport udp). Control traffic stays on this stream.
	MsgDatagramRequest
	// MsgDatagramReply answers with the node's datagram endpoint and the
	// session token the player's hello datagram must echo. OK=false means
	// the node does not offer datagram video and TCP streaming continues.
	MsgDatagramReply
	// MsgInterestUpdate reports a supernode's area-of-interest footprint
	// to the cloud: the grid cells its attached players' viewports (plus
	// hysteresis margin) cover. The cloud then narrows that supernode's
	// update stream to the subscribed cells. A supernode that never sends
	// one stays on the full-world stream (DESIGN.md §14).
	MsgInterestUpdate
	// MsgCellBatch carries one tick's deltas for one grid cell to a
	// subscribed supernode — the AoI-filtered replacement for
	// MsgUpdateBatch. A keyframe cell batch carries the cell's complete
	// entity population (sent when a supernode gains the cell); the
	// CellNone sentinel carries position-less deltas (removals, session
	// events) broadcast to every subscriber.
	MsgCellBatch
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgSupernodeHello:
		return "supernode-hello"
	case MsgSupernodeWelcome:
		return "supernode-welcome"
	case MsgPlayerJoin:
		return "player-join"
	case MsgJoinReply:
		return "join-reply"
	case MsgAction:
		return "action"
	case MsgUpdateBatch:
		return "update-batch"
	case MsgPlayerAttach:
		return "player-attach"
	case MsgAttachReply:
		return "attach-reply"
	case MsgVideoFrame:
		return "video-frame"
	case MsgRateChange:
		return "rate-change"
	case MsgProbe:
		return "probe"
	case MsgProbeReply:
		return "probe-reply"
	case MsgBye:
		return "bye"
	case MsgHeartbeat:
		return "heartbeat"
	case MsgHeartbeatAck:
		return "heartbeat-ack"
	case MsgCandidateUpdate:
		return "candidate-update"
	case MsgQoEReport:
		return "qoe-report"
	case MsgStandbyHello:
		return "standby-hello"
	case MsgCheckpoint:
		return "checkpoint"
	case MsgLogEntry:
		return "log-entry"
	case MsgResume:
		return "resume"
	case MsgResumeReply:
		return "resume-reply"
	case MsgDatagramRequest:
		return "datagram-request"
	case MsgDatagramReply:
		return "datagram-reply"
	case MsgInterestUpdate:
		return "interest-update"
	case MsgCellBatch:
		return "cell-batch"
	default:
		return "unknown"
	}
}

// Protocol limits.
const (
	// MaxPayload bounds a single message (16 MiB), protecting receivers
	// from hostile length prefixes.
	MaxPayload = 16 << 20
	headerLen  = 5
)

// Errors.
var (
	ErrTooLarge  = errors.New("protocol: payload exceeds MaxPayload")
	ErrTruncated = errors.New("protocol: truncated payload")
)

// WriteMessage frames and writes one message. It costs two Write calls and
// a header allocation per message; the hot paths use AppendFrame /
// AppendMessage into a caller-owned buffer and flush once instead.
func WriteMessage(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrTooLarge
	}
	hdr := make([]byte, headerLen)
	binary.BigEndian.PutUint32(hdr, uint32(len(payload)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("write payload: %w", err)
		}
	}
	return nil
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (MsgType, []byte, error) {
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxPayload {
		return 0, nil, ErrTooLarge
	}
	t := MsgType(hdr[4])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("read payload: %w", err)
	}
	return t, payload, nil
}

// --- binary helpers ---------------------------------------------------------

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) i32(v int32)  { w.u32(uint32(v)) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *writer) str(s string) {
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) i32() int32   { return int32(r.u32()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) str() string {
	n := int(r.u16())
	if !r.need(n) {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("protocol: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// --- entity / delta encoding -------------------------------------------------

func putEntity(w *writer, e virtualworld.Entity) {
	w.u32(uint32(e.ID))
	w.u8(uint8(e.Kind))
	w.i32(int32(e.Owner))
	w.f64(e.X)
	w.f64(e.Y)
	w.f64(e.Facing)
	w.u16(uint16(e.HP))
	w.u8(e.State)
	w.u32(e.Version)
}

func getEntity(r *reader) virtualworld.Entity {
	return virtualworld.Entity{
		ID:      virtualworld.EntityID(r.u32()),
		Kind:    virtualworld.EntityKind(r.u8()),
		Owner:   int(r.i32()),
		X:       r.f64(),
		Y:       r.f64(),
		Facing:  r.f64(),
		HP:      int16(r.u16()),
		State:   r.u8(),
		Version: r.u32(),
	}
}

// EntityWireBytes is the encoded size of one entity (for Λ accounting).
const EntityWireBytes = 4 + 1 + 4 + 8 + 8 + 8 + 2 + 1 + 4

// --- messages ---------------------------------------------------------------

// SupernodeHello registers a supernode.
type SupernodeHello struct {
	// Name is a human-readable supernode identifier.
	Name string
	// Capacity is the advertised max concurrent players.
	Capacity int
	// StreamAddr is where players should connect for video.
	StreamAddr string
}

// Marshal encodes the message.
func (m SupernodeHello) Marshal() []byte {
	w := &writer{}
	w.str(m.Name)
	w.u16(uint16(m.Capacity))
	w.str(m.StreamAddr)
	return w.buf
}

// UnmarshalSupernodeHello decodes the message.
func UnmarshalSupernodeHello(buf []byte) (SupernodeHello, error) {
	r := &reader{buf: buf}
	m := SupernodeHello{Name: r.str(), Capacity: int(r.u16())}
	m.StreamAddr = r.str()
	return m, r.finish()
}

// SupernodeWelcome seeds a newly-registered supernode's replica.
type SupernodeWelcome struct {
	// SupernodeID is the cloud-assigned identifier.
	SupernodeID uint32
	// Epoch is the cloud's authority epoch; the supernode presents it when
	// resuming after a failover.
	Epoch uint64
	// StandbyAddr is the warm standby's control endpoint ("" when none).
	StandbyAddr string
	// Snapshot is the full world state to seed from.
	Snapshot virtualworld.Snapshot
}

// Marshal encodes the message.
func (m SupernodeWelcome) Marshal() []byte {
	w := &writer{}
	w.u32(m.SupernodeID)
	w.u64(m.Epoch)
	w.str(m.StandbyAddr)
	w.u64(m.Snapshot.Tick)
	w.f64(m.Snapshot.Width)
	w.f64(m.Snapshot.Height)
	w.u32(uint32(len(m.Snapshot.Entities)))
	for _, e := range m.Snapshot.Entities {
		putEntity(w, e)
	}
	return w.buf
}

// UnmarshalSupernodeWelcome decodes the message.
func UnmarshalSupernodeWelcome(buf []byte) (SupernodeWelcome, error) {
	r := &reader{buf: buf}
	m := SupernodeWelcome{SupernodeID: r.u32(), Epoch: r.u64(), StandbyAddr: r.str()}
	m.Snapshot.Tick = r.u64()
	m.Snapshot.Width = r.f64()
	m.Snapshot.Height = r.f64()
	n := int(r.u32())
	if n > MaxPayload/EntityWireBytes {
		return m, ErrTooLarge
	}
	for i := 0; i < n && r.err == nil; i++ {
		m.Snapshot.Entities = append(m.Snapshot.Entities, getEntity(r))
	}
	return m, r.finish()
}

// PlayerJoin admits a player to the game.
type PlayerJoin struct {
	// PlayerID identifies the player.
	PlayerID int32
	// GameID selects the title (Table 2 catalog).
	GameID uint8
	// SpawnX, SpawnY is the requested spawn position.
	SpawnX, SpawnY float64
}

// Marshal encodes the message.
func (m PlayerJoin) Marshal() []byte {
	w := &writer{}
	w.i32(m.PlayerID)
	w.u8(m.GameID)
	w.f64(m.SpawnX)
	w.f64(m.SpawnY)
	return w.buf
}

// UnmarshalPlayerJoin decodes the message.
func UnmarshalPlayerJoin(buf []byte) (PlayerJoin, error) {
	r := &reader{buf: buf}
	m := PlayerJoin{PlayerID: r.i32(), GameID: r.u8(), SpawnX: r.f64(), SpawnY: r.f64()}
	return m, r.finish()
}

// CandidateInfo describes one candidate supernode on the wire: everything
// a player needs to run the §3.2 selection pipeline client-side instead of
// trusting list position.
type CandidateInfo struct {
	// Addr is the supernode's streaming address.
	Addr string
	// Load is the supernode's player count as of its last heartbeat ack.
	Load uint16
	// Capacity is the supernode's advertised max concurrent players.
	Capacity uint16
	// MeasuredRTTMs is the round trip to the candidate; negative when the
	// sender has no measurement (the cloud cannot ping on the player's
	// behalf — players fill this from their own probes).
	MeasuredRTTMs float64
	// Score is the candidate's reputation score in the sender's book.
	Score float64
}

func putCandidateInfo(w *writer, c CandidateInfo) {
	w.str(c.Addr)
	w.u16(c.Load)
	w.u16(c.Capacity)
	w.f64(c.MeasuredRTTMs)
	w.f64(c.Score)
}

func getCandidateInfo(r *reader) CandidateInfo {
	return CandidateInfo{
		Addr:          r.str(),
		Load:          r.u16(),
		Capacity:      r.u16(),
		MeasuredRTTMs: r.f64(),
		Score:         r.f64(),
	}
}

// JoinReply tells the player where to stream from.
type JoinReply struct {
	// OK reports admission.
	OK bool
	// Epoch is the admitting cloud's authority epoch; the player presents
	// it when resuming after a failover (DESIGN.md §12).
	Epoch uint64
	// Tick is the world tick at admission.
	Tick uint64
	// Candidates are the candidate supernodes, ranked best first — the
	// cloud's candidate list of §3.2, with the load/capacity/score data
	// the player re-ranks by.
	Candidates []CandidateInfo
	// CloudStreamAddr is the cloud's own streaming endpoint, the fallback
	// for players that no supernode accepts ("normal nodes that cannot
	// find nearby supernodes directly connect to the cloud").
	CloudStreamAddr string
	// StandbyAddr is the warm standby's control endpoint, where sessions
	// resume if this cloud dies ("" when no standby is attached).
	StandbyAddr string
	// Reason explains a rejection.
	Reason string
}

// Marshal encodes the message.
func (m JoinReply) Marshal() []byte {
	w := &writer{}
	if m.OK {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u64(m.Epoch)
	w.u64(m.Tick)
	w.u16(uint16(len(m.Candidates)))
	for _, c := range m.Candidates {
		putCandidateInfo(w, c)
	}
	w.str(m.CloudStreamAddr)
	w.str(m.StandbyAddr)
	w.str(m.Reason)
	return w.buf
}

// UnmarshalJoinReply decodes the message.
func UnmarshalJoinReply(buf []byte) (JoinReply, error) {
	r := &reader{buf: buf}
	m := JoinReply{OK: r.u8() == 1, Epoch: r.u64(), Tick: r.u64()}
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		m.Candidates = append(m.Candidates, getCandidateInfo(r))
	}
	m.CloudStreamAddr = r.str()
	m.StandbyAddr = r.str()
	m.Reason = r.str()
	return m, r.finish()
}

// ActionMsg carries one player input.
type ActionMsg struct {
	// Action is the world action.
	Action virtualworld.Action
}

// Marshal encodes the message.
func (m ActionMsg) Marshal() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded message to buf and returns the extended
// slice; with enough capacity it does not allocate.
func (m ActionMsg) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.i32(int32(m.Action.Player))
	w.u8(uint8(m.Action.Kind))
	w.f64(m.Action.TargetX)
	w.f64(m.Action.TargetY)
	w.u32(uint32(m.Action.TargetEntity))
	w.u8(m.Action.StateTag)
	return w.buf
}

// UnmarshalActionMsg decodes the message.
func UnmarshalActionMsg(buf []byte) (ActionMsg, error) {
	r := &reader{buf: buf}
	m := ActionMsg{Action: virtualworld.Action{
		Player:       int(r.i32()),
		Kind:         virtualworld.ActionKind(r.u8()),
		TargetX:      r.f64(),
		TargetY:      r.f64(),
		TargetEntity: virtualworld.EntityID(r.u32()),
		StateTag:     r.u8(),
	}}
	return m, r.finish()
}

// UpdateBatch carries one tick's deltas — the Λ update stream.
type UpdateBatch struct {
	// Epoch is the authority epoch of the sending cloud. A supernode that
	// sees the epoch advance knows a standby was promoted and its replica
	// may hold state the new authority never committed.
	Epoch uint64
	// Tick is the world tick the deltas belong to.
	Tick uint64
	// Deltas are the changed entities.
	Deltas []virtualworld.Delta
}

// Marshal encodes the message.
func (m UpdateBatch) Marshal() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded message to buf and returns the extended
// slice; with enough capacity it does not allocate.
func (m UpdateBatch) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.u64(m.Epoch)
	w.u64(m.Tick)
	w.u32(uint32(len(m.Deltas)))
	for _, d := range m.Deltas {
		w.u32(uint32(d.ID))
		if d.Removed {
			w.u8(1)
		} else {
			w.u8(0)
			putEntity(&w, d.Entity)
		}
	}
	return w.buf
}

// UnmarshalUpdateBatch decodes the message.
func UnmarshalUpdateBatch(buf []byte) (UpdateBatch, error) {
	var m UpdateBatch
	err := DecodeUpdateBatch(buf, &m)
	return m, err
}

// DecodeUpdateBatch decodes into m, reusing m.Deltas' capacity — the
// allocation-free decode for the supernode's per-tick apply loop. On error
// m holds partially decoded data and must not be used.
func DecodeUpdateBatch(buf []byte, m *UpdateBatch) error {
	r := &reader{buf: buf}
	m.Epoch = r.u64()
	m.Tick = r.u64()
	m.Deltas = m.Deltas[:0]
	n := int(r.u32())
	if n > MaxPayload/5 {
		return ErrTooLarge
	}
	for i := 0; i < n && r.err == nil; i++ {
		id := virtualworld.EntityID(r.u32())
		if r.u8() == 1 {
			m.Deltas = append(m.Deltas, virtualworld.Delta{ID: id, Removed: true})
		} else {
			m.Deltas = append(m.Deltas, virtualworld.Delta{ID: id, Entity: getEntity(r)})
		}
	}
	return r.finish()
}

// SizeBits returns the encoded size of the batch in bits (Λ accounting),
// computed arithmetically — no allocation, no throwaway Marshal.
func (m UpdateBatch) SizeBits() int { return m.EncodedSize() * 8 }

// EncodedSize returns the exact Marshal()ed length in bytes.
func (m UpdateBatch) EncodedSize() int {
	n := 8 + 8 + 4 // epoch + tick + delta count
	for _, d := range m.Deltas {
		n += 4 + 1 // entity ID + removed flag
		if !d.Removed {
			n += EntityWireBytes
		}
	}
	return n
}

// PlayerAttach attaches a player's video session to a supernode.
type PlayerAttach struct {
	// PlayerID identifies the player.
	PlayerID int32
	// QualityLevel is the initial Table 2 quality level (1..5).
	QualityLevel uint8
}

// Marshal encodes the message.
func (m PlayerAttach) Marshal() []byte {
	w := &writer{}
	w.i32(m.PlayerID)
	w.u8(m.QualityLevel)
	return w.buf
}

// UnmarshalPlayerAttach decodes the message.
func UnmarshalPlayerAttach(buf []byte) (PlayerAttach, error) {
	r := &reader{buf: buf}
	m := PlayerAttach{PlayerID: r.i32(), QualityLevel: r.u8()}
	return m, r.finish()
}

// AttachReply acknowledges a video attach.
type AttachReply struct {
	// OK reports acceptance (false when the supernode is at capacity —
	// the sequential capacity probing of §3.2.2 moves on).
	OK bool
	// Reason explains a rejection.
	Reason string
}

// Marshal encodes the message.
func (m AttachReply) Marshal() []byte {
	w := &writer{}
	if m.OK {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.str(m.Reason)
	return w.buf
}

// UnmarshalAttachReply decodes the message.
func UnmarshalAttachReply(buf []byte) (AttachReply, error) {
	r := &reader{buf: buf}
	m := AttachReply{OK: r.u8() == 1}
	m.Reason = r.str()
	return m, r.finish()
}

// RateChange is the receiver-driven quality switch.
type RateChange struct {
	// QualityLevel is the requested Table 2 level (1..5).
	QualityLevel uint8
}

// Marshal encodes the message.
func (m RateChange) Marshal() []byte { return []byte{m.QualityLevel} }

// AppendTo appends the encoded message to buf and returns the extended
// slice; with enough capacity it does not allocate.
func (m RateChange) AppendTo(buf []byte) []byte { return append(buf, m.QualityLevel) }

// UnmarshalRateChange decodes the message.
func UnmarshalRateChange(buf []byte) (RateChange, error) {
	r := &reader{buf: buf}
	m := RateChange{QualityLevel: r.u8()}
	return m, r.finish()
}

// Heartbeat is the cloud's liveness ping.
type Heartbeat struct {
	// Seq is the monotonically increasing heartbeat sequence number.
	Seq uint32
}

// Marshal encodes the message.
func (m Heartbeat) Marshal() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded message to buf and returns the extended
// slice; with enough capacity it does not allocate.
func (m Heartbeat) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.u32(m.Seq)
	return w.buf
}

// UnmarshalHeartbeat decodes the message.
func UnmarshalHeartbeat(buf []byte) (Heartbeat, error) {
	r := &reader{buf: buf}
	m := Heartbeat{Seq: r.u32()}
	return m, r.finish()
}

// HeartbeatAck answers a heartbeat.
type HeartbeatAck struct {
	// Seq echoes the heartbeat sequence number being answered.
	Seq uint32
	// ReplicaTick is the supernode's latest applied world tick, letting
	// the cloud spot replicas that are alive but falling behind.
	ReplicaTick uint64
	// Attached is the supernode's current player count.
	Attached uint16
}

// Marshal encodes the message.
func (m HeartbeatAck) Marshal() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded message to buf and returns the extended
// slice; with enough capacity it does not allocate.
func (m HeartbeatAck) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.u32(m.Seq)
	w.u64(m.ReplicaTick)
	w.u16(m.Attached)
	return w.buf
}

// UnmarshalHeartbeatAck decodes the message.
func UnmarshalHeartbeatAck(buf []byte) (HeartbeatAck, error) {
	r := &reader{buf: buf}
	m := HeartbeatAck{Seq: r.u32(), ReplicaTick: r.u64(), Attached: r.u16()}
	return m, r.finish()
}

// CandidateUpdate refreshes a player's failover ladder after the supernode
// set or its ranking changes. Semantically it is the live-update
// counterpart of the JoinReply candidate list (§3.2.2 churn handling).
type CandidateUpdate struct {
	// Candidates are the surviving candidate supernodes, ranked best
	// first.
	Candidates []CandidateInfo
	// CloudStreamAddr is the cloud's own fallback streaming endpoint.
	CloudStreamAddr string
	// StandbyAddr is the warm standby's control endpoint ("" when none),
	// refreshed so players always know where to resume.
	StandbyAddr string
}

// Marshal encodes the message.
func (m CandidateUpdate) Marshal() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded message to buf and returns the extended
// slice; with enough capacity it does not allocate.
func (m CandidateUpdate) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.u16(uint16(len(m.Candidates)))
	for _, c := range m.Candidates {
		putCandidateInfo(&w, c)
	}
	w.str(m.CloudStreamAddr)
	w.str(m.StandbyAddr)
	return w.buf
}

// UnmarshalCandidateUpdate decodes the message.
func UnmarshalCandidateUpdate(buf []byte) (CandidateUpdate, error) {
	r := &reader{buf: buf}
	var m CandidateUpdate
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		m.Candidates = append(m.Candidates, getCandidateInfo(r))
	}
	m.CloudStreamAddr = r.str()
	m.StandbyAddr = r.str()
	return m, r.finish()
}

// QoEReport is a player's rating of a supernode, sent to the cloud on the
// control connection. Healthy sessions report periodically with high
// ratings; a stall or a forced fallback reports immediately with rating 0,
// demoting the supernode in every player's next ladder.
type QoEReport struct {
	// PlayerID identifies the reporting player (must match the control
	// connection's admitted player).
	PlayerID int32
	// Addr is the stream address of the supernode being rated.
	Addr string
	// Rating is the session-quality rating in [0, 1] (playback
	// continuity, per §3.2's rating rule).
	Rating float64
	// Stalled marks a report triggered by a stall/migration rather than a
	// periodic checkpoint.
	Stalled bool
	// Fallback marks that the failure drove the player onto the cloud's
	// own stream — the expensive outcome the fog tier exists to avoid.
	Fallback bool
}

// Marshal encodes the message.
func (m QoEReport) Marshal() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded message to buf and returns the extended
// slice; with enough capacity it does not allocate.
func (m QoEReport) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.i32(m.PlayerID)
	w.str(m.Addr)
	w.f64(m.Rating)
	var flags uint8
	if m.Stalled {
		flags |= 1
	}
	if m.Fallback {
		flags |= 2
	}
	w.u8(flags)
	return w.buf
}

// UnmarshalQoEReport decodes the message.
func UnmarshalQoEReport(buf []byte) (QoEReport, error) {
	r := &reader{buf: buf}
	m := QoEReport{PlayerID: r.i32(), Addr: r.str(), Rating: r.f64()}
	flags := r.u8()
	m.Stalled = flags&1 != 0
	m.Fallback = flags&2 != 0
	return m, r.finish()
}

// ProbeReply answers a capacity probe.
type ProbeReply struct {
	// Available is the number of free player slots.
	Available int
}

// Marshal encodes the message.
func (m ProbeReply) Marshal() []byte {
	w := &writer{}
	w.u16(uint16(m.Available))
	return w.buf
}

// UnmarshalProbeReply decodes the message.
func UnmarshalProbeReply(buf []byte) (ProbeReply, error) {
	r := &reader{buf: buf}
	m := ProbeReply{Available: int(r.u16())}
	return m, r.finish()
}

// StandbyHello registers a warm standby with the primary. The primary
// replies with a MsgCheckpoint (full state) and then streams MsgLogEntry
// every tick; supernodes and players learn Addr through welcome/join/
// candidate messages so they know where to resume.
type StandbyHello struct {
	// Addr is the standby's own control endpoint (where it will serve
	// resumption after promotion).
	Addr string
}

// Marshal encodes the message.
func (m StandbyHello) Marshal() []byte {
	w := &writer{}
	w.str(m.Addr)
	return w.buf
}

// UnmarshalStandbyHello decodes the message.
func UnmarshalStandbyHello(buf []byte) (StandbyHello, error) {
	r := &reader{buf: buf}
	m := StandbyHello{Addr: r.str()}
	return m, r.finish()
}

// Resume session kinds.
const (
	// ResumeSupernode resumes a supernode's cloud link.
	ResumeSupernode uint8 = 1
	// ResumePlayer resumes a player's control connection.
	ResumePlayer uint8 = 2
)

// Resume asks a cloud (typically a just-promoted standby) to continue an
// existing session. The presented epoch/tick let the authority decide
// whether the peer's retained state is a valid prefix of the restored
// history or must be discarded (DESIGN.md §12 epoch rules).
type Resume struct {
	// Kind is ResumeSupernode or ResumePlayer.
	Kind uint8
	// PlayerID identifies the resuming player (ResumePlayer only).
	PlayerID int32
	// Epoch is the last authority epoch the peer was attached to.
	Epoch uint64
	// Tick is the last authoritative tick the peer observed.
	Tick uint64
	// Name is the supernode's identifier (ResumeSupernode only).
	Name string
	// Capacity is the supernode's advertised capacity (ResumeSupernode
	// only).
	Capacity int
	// StreamAddr is the supernode's player-facing address (ResumeSupernode
	// only).
	StreamAddr string
}

// Marshal encodes the message.
func (m Resume) Marshal() []byte {
	w := &writer{}
	w.u8(m.Kind)
	w.i32(m.PlayerID)
	w.u64(m.Epoch)
	w.u64(m.Tick)
	w.str(m.Name)
	w.u16(uint16(m.Capacity))
	w.str(m.StreamAddr)
	return w.buf
}

// UnmarshalResume decodes the message.
func UnmarshalResume(buf []byte) (Resume, error) {
	r := &reader{buf: buf}
	m := Resume{Kind: r.u8(), PlayerID: r.i32(), Epoch: r.u64(), Tick: r.u64()}
	m.Name = r.str()
	m.Capacity = int(r.u16())
	m.StreamAddr = r.str()
	return m, r.finish()
}

// ResumeReply answers a Resume. For supernodes it carries a fresh replica
// seed (replicas may hold ticks the restored history never committed, so
// they always reseed); for players it carries the refreshed failover
// ladder. A refused resume (OK=false) means the authority does not know
// the session — the peer falls back to a full join.
type ResumeReply struct {
	// OK reports acceptance.
	OK bool
	// Discard tells the peer its retained state ran ahead of the restored
	// history (it observed ticks from the dead primary that the new
	// authority never committed) and any locally buffered derived state
	// must be dropped rather than replayed.
	Discard bool
	// Epoch is the answering cloud's authority epoch.
	Epoch uint64
	// Tick is the current authoritative tick.
	Tick uint64
	// SupernodeID is the (re-)assigned supernode ID (ResumeSupernode only).
	SupernodeID uint32
	// HasSnapshot marks that Snapshot is present (ResumeSupernode only).
	HasSnapshot bool
	// Snapshot reseeds the supernode's replica.
	Snapshot virtualworld.Snapshot
	// Candidates is the refreshed failover ladder (ResumePlayer only).
	Candidates []CandidateInfo
	// CloudStreamAddr is the answering cloud's fallback stream endpoint.
	CloudStreamAddr string
	// StandbyAddr is the next standby's endpoint ("" when none yet).
	StandbyAddr string
	// Reason explains a refusal.
	Reason string
}

// Marshal encodes the message.
func (m ResumeReply) Marshal() []byte {
	w := &writer{}
	var flags uint8
	if m.OK {
		flags |= 1
	}
	if m.Discard {
		flags |= 2
	}
	if m.HasSnapshot {
		flags |= 4
	}
	w.u8(flags)
	w.u64(m.Epoch)
	w.u64(m.Tick)
	w.u32(m.SupernodeID)
	if m.HasSnapshot {
		w.u64(m.Snapshot.Tick)
		w.f64(m.Snapshot.Width)
		w.f64(m.Snapshot.Height)
		w.u32(uint32(len(m.Snapshot.Entities)))
		for _, e := range m.Snapshot.Entities {
			putEntity(w, e)
		}
	}
	w.u16(uint16(len(m.Candidates)))
	for _, c := range m.Candidates {
		putCandidateInfo(w, c)
	}
	w.str(m.CloudStreamAddr)
	w.str(m.StandbyAddr)
	w.str(m.Reason)
	return w.buf
}

// UnmarshalResumeReply decodes the message.
func UnmarshalResumeReply(buf []byte) (ResumeReply, error) {
	r := &reader{buf: buf}
	var m ResumeReply
	flags := r.u8()
	m.OK = flags&1 != 0
	m.Discard = flags&2 != 0
	m.HasSnapshot = flags&4 != 0
	m.Epoch = r.u64()
	m.Tick = r.u64()
	m.SupernodeID = r.u32()
	if m.HasSnapshot {
		m.Snapshot.Tick = r.u64()
		m.Snapshot.Width = r.f64()
		m.Snapshot.Height = r.f64()
		n := int(r.u32())
		if n > MaxPayload/EntityWireBytes {
			return m, ErrTooLarge
		}
		for i := 0; i < n && r.err == nil; i++ {
			m.Snapshot.Entities = append(m.Snapshot.Entities, getEntity(r))
		}
	}
	nc := int(r.u16())
	for i := 0; i < nc && r.err == nil; i++ {
		m.Candidates = append(m.Candidates, getCandidateInfo(r))
	}
	m.CloudStreamAddr = r.str()
	m.StandbyAddr = r.str()
	m.Reason = r.str()
	return m, r.finish()
}

// DatagramRequest asks the serving node to move the attached video
// session's frames onto the unreliable datagram transport.
type DatagramRequest struct {
	// PlayerID must match the attached player (the session's owner).
	PlayerID int32
}

// Marshal encodes the message.
func (m DatagramRequest) Marshal() []byte {
	w := &writer{}
	w.i32(m.PlayerID)
	return w.buf
}

// UnmarshalDatagramRequest decodes the message.
func UnmarshalDatagramRequest(buf []byte) (DatagramRequest, error) {
	r := &reader{buf: buf}
	m := DatagramRequest{PlayerID: r.i32()}
	return m, r.finish()
}

// DatagramReply answers a DatagramRequest. When OK, Addr is the node's
// datagram endpoint, Token identifies the session (the player's hello
// datagram and every frame header echo it), and Epoch stamps the stream's
// authority epoch. When !OK the session keeps streaming over TCP.
type DatagramReply struct {
	// OK reports whether datagram video is offered.
	OK bool
	// Addr is the node's datagram ("udp host:port") endpoint.
	Addr string
	// Token is the session token frames and hellos carry.
	Token uint64
	// Epoch is the authority epoch the frame headers will be stamped with.
	Epoch uint64
	// Reason explains a refusal.
	Reason string
}

// Marshal encodes the message.
func (m DatagramReply) Marshal() []byte {
	w := &writer{}
	if m.OK {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.str(m.Addr)
	w.u64(m.Token)
	w.u64(m.Epoch)
	w.str(m.Reason)
	return w.buf
}

// UnmarshalDatagramReply decodes the message.
func UnmarshalDatagramReply(buf []byte) (DatagramReply, error) {
	r := &reader{buf: buf}
	m := DatagramReply{OK: r.u8() == 1}
	m.Addr = r.str()
	m.Token = r.u64()
	m.Epoch = r.u64()
	m.Reason = r.str()
	return m, r.finish()
}
