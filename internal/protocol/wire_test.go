package protocol

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"cloudfog/internal/virtualworld"
)

func testBatch(n int) UpdateBatch {
	batch := UpdateBatch{Tick: 42}
	for i := 0; i < n; i++ {
		d := virtualworld.Delta{
			ID: virtualworld.EntityID(i + 1),
			Entity: virtualworld.Entity{
				ID: virtualworld.EntityID(i + 1), Kind: virtualworld.KindAvatar,
				Owner: i, X: float64(i), Y: float64(2 * i), HP: 100, Version: uint32(i),
			},
		}
		if i%7 == 3 {
			d = virtualworld.Delta{ID: virtualworld.EntityID(i + 1), Removed: true}
		}
		batch.Deltas = append(batch.Deltas, d)
	}
	return batch
}

// TestAppendToMatchesMarshal pins the append encoders to the Marshal wire
// format, byte for byte.
func TestAppendToMatchesMarshal(t *testing.T) {
	batch := testBatch(25)
	for name, pair := range map[string][2][]byte{
		"update-batch":  {batch.Marshal(), batch.AppendTo(nil)},
		"heartbeat":     {Heartbeat{Seq: 9}.Marshal(), Heartbeat{Seq: 9}.AppendTo(nil)},
		"heartbeat-ack": {HeartbeatAck{Seq: 9, ReplicaTick: 77, Attached: 3}.Marshal(), HeartbeatAck{Seq: 9, ReplicaTick: 77, Attached: 3}.AppendTo(nil)},
		"action": {
			ActionMsg{Action: virtualworld.Action{Player: 4, Kind: virtualworld.ActMove, TargetX: 1, TargetY: 2}}.Marshal(),
			ActionMsg{Action: virtualworld.Action{Player: 4, Kind: virtualworld.ActMove, TargetX: 1, TargetY: 2}}.AppendTo(nil),
		},
		"candidate-update": {
			CandidateUpdate{Candidates: []CandidateInfo{{Addr: "a:1", Load: 1, Capacity: 2, MeasuredRTTMs: -1, Score: 0.5}}, CloudStreamAddr: "c:1"}.Marshal(),
			CandidateUpdate{Candidates: []CandidateInfo{{Addr: "a:1", Load: 1, Capacity: 2, MeasuredRTTMs: -1, Score: 0.5}}, CloudStreamAddr: "c:1"}.AppendTo(nil),
		},
		"qoe-report": {
			QoEReport{PlayerID: 3, Addr: "f:1", Rating: 0.5, Stalled: true}.Marshal(),
			QoEReport{PlayerID: 3, Addr: "f:1", Rating: 0.5, Stalled: true}.AppendTo(nil),
		},
		"rate-change": {RateChange{QualityLevel: 4}.Marshal(), RateChange{QualityLevel: 4}.AppendTo(nil)},
	} {
		if !bytes.Equal(pair[0], pair[1]) {
			t.Errorf("%s: AppendTo differs from Marshal\n  marshal: %x\n  append:  %x", name, pair[0], pair[1])
		}
	}
	// Appending onto an existing prefix leaves the prefix intact.
	prefix := []byte{0xAA, 0xBB}
	out := batch.AppendTo(prefix)
	if !bytes.Equal(out[:2], prefix) || !bytes.Equal(out[2:], batch.Marshal()) {
		t.Error("AppendTo corrupted the buffer prefix")
	}
}

// TestAppendFrameMatchesWriteMessage pins the single-buffer framing to the
// WriteMessage wire format.
func TestAppendFrameMatchesWriteMessage(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7}
	var legacy bytes.Buffer
	if err := WriteMessage(&legacy, MsgAction, payload); err != nil {
		t.Fatal(err)
	}
	framed, err := AppendFrame(nil, MsgAction, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), framed) {
		t.Errorf("AppendFrame differs from WriteMessage:\n  %x\n  %x", legacy.Bytes(), framed)
	}
	// AppendMessage (in-place encode + patched length) produces the same
	// frame as AppendFrame over a pre-marshalled payload.
	batch := testBatch(10)
	viaPayload, err := AppendFrame(nil, MsgUpdateBatch, batch.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	viaMessage, err := AppendMessage(nil, MsgUpdateBatch, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaPayload, viaMessage) {
		t.Error("AppendMessage differs from AppendFrame over Marshal")
	}
}

// TestAppendFrameOversize mirrors WriteMessage's MaxPayload guard.
func TestAppendFrameOversize(t *testing.T) {
	if _, err := AppendFrame(nil, MsgAction, make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize AppendFrame err = %v", err)
	}
	buf := []byte{0xEE}
	out, err := AppendMessage(buf, MsgVideoFrame, oversizeAppender{})
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize AppendMessage err = %v", err)
	}
	if len(out) != 1 || out[0] != 0xEE {
		t.Errorf("oversize AppendMessage did not restore buf: %x", out)
	}
}

type oversizeAppender struct{}

func (oversizeAppender) AppendTo(buf []byte) []byte {
	return append(buf, make([]byte, MaxPayload+1)...)
}

// TestFrameReaderRoundTrip drains a multi-message stream through the
// reusable-buffer reader and checks it against ReadMessage.
func TestFrameReaderRoundTrip(t *testing.T) {
	batch := testBatch(30)
	var stream []byte
	var err error
	msgs := []struct {
		typ     MsgType
		payload []byte
	}{
		{MsgUpdateBatch, batch.Marshal()},
		{MsgHeartbeat, Heartbeat{Seq: 1}.Marshal()},
		{MsgBye, nil},
		{MsgUpdateBatch, testBatch(3).Marshal()},
	}
	for _, m := range msgs {
		if stream, err = AppendFrame(stream, m.typ, m.payload); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(stream))
	for i, want := range msgs {
		typ, payload, err := fr.Next()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if typ != want.typ || !bytes.Equal(payload, want.payload) {
			t.Fatalf("message %d: got %v (%d bytes), want %v (%d bytes)",
				i, typ, len(payload), want.typ, len(want.payload))
		}
	}
	if _, _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("post-stream Next err = %v", err)
	}
}

// TestFrameReaderHostileLength mirrors ReadMessage's MaxPayload guard.
func TestFrameReaderHostileLength(t *testing.T) {
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(MsgAction)}
	fr := NewFrameReader(bytes.NewReader(hostile))
	if _, _, err := fr.Next(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("hostile length err = %v", err)
	}
}

// TestFrameReaderTruncated distinguishes a clean EOF (between frames) from
// a truncated payload.
func TestFrameReaderTruncated(t *testing.T) {
	stream, _ := AppendFrame(nil, MsgAction, []byte{1, 2, 3})
	fr := NewFrameReader(bytes.NewReader(stream[:len(stream)-1]))
	if _, _, err := fr.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated payload err = %v", err)
	}
}

// repeatStream replays one encoded stream forever — an infinite message
// source with zero per-read allocation, for steady-state measurements.
type repeatStream struct {
	data []byte
	off  int
}

func (rs *repeatStream) Read(p []byte) (int, error) {
	if rs.off == len(rs.data) {
		rs.off = 0
	}
	n := copy(p, rs.data[rs.off:])
	rs.off += n
	return n, nil
}

// TestFrameReaderSteadyStateAllocs pins the reader's zero-allocation
// steady state: after the internal buffer has grown to fit the largest
// message, Next must not allocate.
func TestFrameReaderSteadyStateAllocs(t *testing.T) {
	stream, err := AppendFrame(nil, MsgUpdateBatch, testBatch(100).Marshal())
	if err != nil {
		t.Fatal(err)
	}
	stream, err = AppendFrame(stream, MsgHeartbeat, Heartbeat{Seq: 5}.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&repeatStream{data: stream})
	// Warm up: grow the buffer to the stream's high-water mark.
	for i := 0; i < 4; i++ {
		if _, _, err := fr.Next(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := fr.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("FrameReader.Next steady state: %.1f allocs/op, want 0", allocs)
	}
}

// TestAppendEncoderAllocs pins the append encoders' zero-allocation steady
// state: encoding and framing into a buffer with capacity must not
// allocate.
func TestAppendEncoderAllocs(t *testing.T) {
	// Pass messages by pointer: boxing a struct value into the Appender
	// interface would allocate per call; a pointer to an already-escaped
	// value does not.
	batch := testBatch(100)
	buf := make([]byte, 0, batch.EncodedSize()+HeaderLen)
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = AppendMessage(buf[:0], MsgUpdateBatch, &batch)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendMessage steady state: %.1f allocs/op, want 0", allocs)
	}

	hb := HeartbeatAck{Seq: 1, ReplicaTick: 2, Attached: 3}
	small := make([]byte, 0, 64)
	allocs = testing.AllocsPerRun(100, func() {
		var err error
		small, err = AppendMessage(small[:0], MsgHeartbeatAck, &hb)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendMessage(heartbeat-ack) steady state: %.1f allocs/op, want 0", allocs)
	}
}

// TestDecodeUpdateBatchSteadyStateAllocs pins the reusable decode: with a
// warm Deltas slice, DecodeUpdateBatch must not allocate.
func TestDecodeUpdateBatchSteadyStateAllocs(t *testing.T) {
	payload := testBatch(100).Marshal()
	var m UpdateBatch
	if err := DecodeUpdateBatch(payload, &m); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeUpdateBatch(payload, &m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeUpdateBatch steady state: %.1f allocs/op, want 0", allocs)
	}
}

// TestUpdateBatchEncodedSize pins the arithmetic size against the real
// encoder across delta mixes.
func TestUpdateBatchEncodedSize(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64} {
		b := testBatch(n)
		if got, want := b.EncodedSize(), len(b.Marshal()); got != want {
			t.Errorf("EncodedSize(%d deltas) = %d, want %d", n, got, want)
		}
		if got, want := b.SizeBits(), len(b.Marshal())*8; got != want {
			t.Errorf("SizeBits(%d deltas) = %d, want %d", n, got, want)
		}
	}
}

// TestBufferPool exercises the pooled scratch buffers' contract.
func TestBufferPool(t *testing.T) {
	b := GetBuffer()
	if len(b.B) != 0 {
		t.Errorf("fresh buffer has length %d", len(b.B))
	}
	b.B = append(b.B, 1, 2, 3)
	PutBuffer(b)
	b2 := GetBuffer()
	if len(b2.B) != 0 {
		t.Errorf("recycled buffer has length %d", len(b2.B))
	}
	PutBuffer(b2)
	PutBuffer(nil) // must not panic
}

// FuzzReadMessage fuzzes the framing round-trip: any stream the reader
// accepts must re-encode to the identical bytes, and the reader must agree
// with the legacy ReadMessage.
func FuzzReadMessage(f *testing.F) {
	seed1, _ := AppendFrame(nil, MsgUpdateBatch, testBatch(5).Marshal())
	seed2, _ := AppendFrame(nil, MsgBye, nil)
	seed2, _ = AppendFrame(seed2, MsgHeartbeat, []byte{0, 0, 0, 9})
	f.Add(seed1)
	f.Add(seed2)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Add([]byte{0, 0, 0, 2, 5, 0xAB}) // truncated payload
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		legacy := bytes.NewReader(data)
		var reencoded []byte
		for {
			typ, payload, err := fr.Next()
			ltyp, lpayload, lerr := ReadMessage(legacy)
			if (err == nil) != (lerr == nil) {
				t.Fatalf("FrameReader err %v vs ReadMessage err %v", err, lerr)
			}
			if err != nil {
				break
			}
			if typ != ltyp || !bytes.Equal(payload, lpayload) {
				t.Fatalf("FrameReader (%v, %d bytes) disagrees with ReadMessage (%v, %d bytes)",
					typ, len(payload), ltyp, len(lpayload))
			}
			reencoded, err = AppendFrame(reencoded, typ, payload)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		}
		if len(reencoded) > 0 && !bytes.Equal(reencoded, data[:len(reencoded)]) {
			t.Fatalf("re-encoded stream differs from input prefix")
		}
	})
}
