package protocol

import (
	"testing"

	"cloudfog/internal/virtualworld"
)

func TestStandbyHelloRoundTrip(t *testing.T) {
	m := StandbyHello{Addr: "127.0.0.1:9200"}
	got, err := UnmarshalStandbyHello(m.Marshal())
	if err != nil || got != m {
		t.Errorf("round trip: %+v, %v", got, err)
	}
	if _, err := UnmarshalStandbyHello([]byte{0xFF}); err == nil {
		t.Error("garbage standby hello accepted")
	}
}

func TestResumeRoundTrip(t *testing.T) {
	for _, m := range []Resume{
		{Kind: ResumePlayer, PlayerID: 42, Epoch: 3, Tick: 9999},
		{Kind: ResumeSupernode, Epoch: 1, Tick: 17, Name: "fog-2", Capacity: 12, StreamAddr: "127.0.0.1:9001"},
	} {
		got, err := UnmarshalResume(m.Marshal())
		if err != nil || got != m {
			t.Errorf("round trip: %+v -> %+v, %v", m, got, err)
		}
	}
	if _, err := UnmarshalResume([]byte{1, 2}); err == nil {
		t.Error("short resume accepted")
	}
}

func TestResumeReplyRoundTrip(t *testing.T) {
	w := virtualworld.New(200, 200)
	w.SpawnAvatar(4, 10, 10)
	w.SpawnNPC(20, 20)

	sn := ResumeReply{
		OK: true, Discard: true, Epoch: 2, Tick: 555, SupernodeID: 7,
		HasSnapshot: true, Snapshot: w.Snapshot(),
		CloudStreamAddr: "127.0.0.1:9100", StandbyAddr: "127.0.0.1:9200",
	}
	got, err := UnmarshalResumeReply(sn.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.OK || !got.Discard || got.Epoch != 2 || got.Tick != 555 ||
		got.SupernodeID != 7 || !got.HasSnapshot || !got.Snapshot.Equal(sn.Snapshot) ||
		got.Snapshot.Tick != sn.Snapshot.Tick || got.StandbyAddr != sn.StandbyAddr {
		t.Errorf("supernode reply round trip: %+v", got)
	}

	pl := ResumeReply{
		OK: true, Epoch: 2, Tick: 600,
		Candidates: []CandidateInfo{
			{Addr: "a:1", Load: 1, Capacity: 4, MeasuredRTTMs: -1, Score: 0.8},
			{Addr: "b:2"},
		},
		CloudStreamAddr: "127.0.0.1:9100",
	}
	got, err = UnmarshalResumeReply(pl.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.OK || got.HasSnapshot || len(got.Candidates) != 2 ||
		got.Candidates[0] != pl.Candidates[0] || got.CloudStreamAddr != pl.CloudStreamAddr {
		t.Errorf("player reply round trip: %+v", got)
	}

	refuse := ResumeReply{Reason: "unknown session"}
	got, err = UnmarshalResumeReply(refuse.Marshal())
	if err != nil || got.OK || got.Reason != "unknown session" {
		t.Errorf("refusal round trip: %+v, %v", got, err)
	}

	if _, err := UnmarshalResumeReply([]byte{4, 0}); err == nil {
		t.Error("truncated resume reply accepted")
	}
}

// TestEpochStamps pins the failover metadata added to the pre-existing
// messages: epoch/tick on admissions and update batches, standby
// addresses on ladder refreshes and welcomes.
func TestEpochStamps(t *testing.T) {
	jr := JoinReply{OK: true, Epoch: 5, Tick: 1234, CloudStreamAddr: "c:1", StandbyAddr: "s:2"}
	got, err := UnmarshalJoinReply(jr.Marshal())
	if err != nil || got.Epoch != 5 || got.Tick != 1234 || got.StandbyAddr != "s:2" {
		t.Errorf("join reply stamps: %+v, %v", got, err)
	}

	ub := UpdateBatch{Epoch: 9, Tick: 77}
	gb, err := UnmarshalUpdateBatch(ub.Marshal())
	if err != nil || gb.Epoch != 9 || gb.Tick != 77 {
		t.Errorf("update batch stamps: %+v, %v", gb, err)
	}
	if ub.EncodedSize() != len(ub.Marshal()) {
		t.Error("EncodedSize out of sync with encoding")
	}

	sw := SupernodeWelcome{SupernodeID: 3, Epoch: 4, StandbyAddr: "s:9"}
	gw, err := UnmarshalSupernodeWelcome(sw.Marshal())
	if err != nil || gw.Epoch != 4 || gw.StandbyAddr != "s:9" {
		t.Errorf("welcome stamps: %+v, %v", gw, err)
	}

	cu := CandidateUpdate{CloudStreamAddr: "c:1", StandbyAddr: "s:2"}
	gc, err := UnmarshalCandidateUpdate(cu.Marshal())
	if err != nil || gc.StandbyAddr != "s:2" {
		t.Errorf("candidate update stamps: %+v, %v", gc, err)
	}
}
