// Zero-allocation wire path: append-style framing into caller-owned
// buffers and a frame reader that reuses one growable buffer per
// connection.
//
// The classic WriteMessage/ReadMessage pair costs two Write syscalls plus a
// fresh header and payload allocation per message. At the prototype's
// rates — 30 fps × players on the fog tier, one update batch per supernode
// per tick on the cloud — that overhead IS the throughput ceiling, so the
// hot paths use this file instead:
//
//	buf = buf[:0]
//	buf, err = AppendMessage(buf, MsgVideoFrame, frame) // header + payload
//	conn.Write(buf)                                     // one syscall
//
// and on the receive side:
//
//	fr := NewFrameReader(conn)
//	typ, payload, err := fr.Next() // payload valid until the next call
//
// Buffer ownership rules (see DESIGN.md §10):
//
//   - AppendTo/AppendFrame/AppendMessage never retain buf; the caller owns
//     it before and after the call.
//   - FrameReader owns its internal buffer; the payload returned by Next
//     aliases it and is valid only until the next Next call. Decoders that
//     keep payload bytes must copy them.
//   - GetBuffer/PutBuffer hand out pooled scratch buffers; a buffer goes
//     back to the pool only after the write that drains it has returned.
package protocol

import (
	"encoding/binary"
	"io"
	"sync"
)

// HeaderLen is the length-prefix frame header size in bytes
// (uint32 payload length + uint8 message type).
const HeaderLen = headerLen

// Appender is a message with an append-style encoder. All hot-path
// messages (UpdateBatch, Heartbeat/Ack, ActionMsg, CandidateUpdate,
// QoEReport, RateChange) implement it, as does videocodec.EncodedFrame.
type Appender interface {
	// AppendTo appends the encoded message to buf and returns the
	// extended slice.
	AppendTo(buf []byte) []byte
}

// AppendFrame appends one framed message — 5-byte header plus payload — to
// buf and returns the extended slice. With enough capacity it does not
// allocate, and the result flushes in a single Write.
func AppendFrame(buf []byte, t MsgType, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return buf, ErrTooLarge
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, byte(t))
	return append(buf, payload...), nil
}

// AppendMessage frames a message directly into buf: it reserves the
// header, encodes the payload in place with m.AppendTo, and patches the
// length — no intermediate payload slice at all.
func AppendMessage(buf []byte, t MsgType, m Appender) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, byte(t))
	buf = m.AppendTo(buf)
	n := len(buf) - start - headerLen
	if n > MaxPayload {
		return buf[:start], ErrTooLarge
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(n))
	return buf, nil
}

// ReadMessageInto reads one framed message, reusing buf's capacity for the
// payload. It returns the payload (aliasing buf when it fits, a freshly
// grown slice otherwise); callers keep the returned slice as next call's
// buf to stay allocation-free:
//
//	typ, buf, err = ReadMessageInto(r, buf)
func ReadMessageInto(r io.Reader, buf []byte) (MsgType, []byte, error) {
	if cap(buf) < headerLen {
		buf = make([]byte, headerLen, 512)
	}
	hdr := buf[:headerLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, buf[:0], err
	}
	n := int(binary.BigEndian.Uint32(hdr))
	if n > MaxPayload {
		return 0, buf[:0], ErrTooLarge
	}
	t := MsgType(hdr[4])
	if cap(buf) < n {
		buf = make([]byte, n, grow(cap(buf), n))
	}
	payload := buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, buf[:0], err
	}
	return t, payload, nil
}

// grow picks the next buffer capacity: at least need, doubling from have
// so repeated slightly-larger messages do not reallocate every time.
func grow(have, need int) int {
	c := have * 2
	if c < 512 {
		c = 512
	}
	if c < need {
		c = need
	}
	if c > MaxPayload {
		c = MaxPayload
	}
	if c < need { // need == MaxPayload edge
		c = need
	}
	return c
}

// FrameReader reads framed messages from one connection, reusing a single
// growable buffer: zero allocations per message in steady state. The
// payload returned by Next is valid only until the next Next call.
type FrameReader struct {
	r   io.Reader
	buf []byte
}

// NewFrameReader wraps r. One FrameReader per connection, one goroutine at
// a time.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Next reads one framed message. The returned payload aliases the reader's
// internal buffer: it is overwritten by the next call, so decoders that
// retain bytes must copy them.
func (fr *FrameReader) Next() (MsgType, []byte, error) {
	t, payload, err := ReadMessageInto(fr.r, fr.buf[:0])
	//lint:ignore noretain the reader owns the buffer payload aliases; recycling it here IS the contract
	fr.buf = payload[:0]
	return t, payload, err
}

// --- pooled scratch buffers -------------------------------------------------

// Buffer is a pooled byte slice. The slice lives in B so callers can grow
// it in place (append semantics) while the wrapper keeps Put allocation
// free.
type Buffer struct{ B []byte }

var bufPool = sync.Pool{
	New: func() any { return &Buffer{B: make([]byte, 0, 4096)} },
}

// GetBuffer returns a zero-length pooled buffer. The caller owns it until
// PutBuffer; on hot paths the buffer must return to the pool only after
// the Write that flushes it has returned (never while a queued message
// still references it).
func GetBuffer() *Buffer {
	return bufPool.Get().(*Buffer)
}

// PutBuffer returns a buffer to the pool. The caller must not touch b (or
// any slice of b.B) afterwards.
func PutBuffer(b *Buffer) {
	if b == nil {
		return
	}
	b.B = b.B[:0]
	bufPool.Put(b)
}
