package protocol

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"cloudfog/internal/virtualworld"
)

func TestFramingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4, 5}
	if err := WriteMessage(&buf, MsgAction, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgAction || !bytes.Equal(got, payload) {
		t.Errorf("read %v %v", typ, got)
	}
}

func TestFramingEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, MsgBye, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadMessage(&buf)
	if err != nil || typ != MsgBye || len(got) != 0 {
		t.Errorf("empty round trip: %v %v %v", typ, got, err)
	}
}

func TestFramingMultipleMessages(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteMessage(&buf, MsgProbe, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		_, got, err := ReadMessage(&buf)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("message %d: %v %v", i, got, err)
		}
	}
	if _, _, err := ReadMessage(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("post-stream read err = %v", err)
	}
}

func TestFramingRejectsOversize(t *testing.T) {
	if err := WriteMessage(io.Discard, MsgAction, make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize write err = %v", err)
	}
	// A hostile length prefix must be rejected without allocating.
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(MsgAction)}
	if _, _, err := ReadMessage(bytes.NewReader(hostile)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("hostile length err = %v", err)
	}
}

func TestFramingTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	WriteMessage(&buf, MsgAction, []byte{1, 2, 3})
	trunc := buf.Bytes()[:buf.Len()-1]
	if _, _, err := ReadMessage(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestMsgTypeString(t *testing.T) {
	for typ := MsgSupernodeHello; typ <= MsgQoEReport; typ++ {
		if typ.String() == "unknown" {
			t.Errorf("type %d unnamed", typ)
		}
	}
	if MsgType(200).String() != "unknown" {
		t.Error("unknown type misnamed")
	}
}

func TestSupernodeHelloRoundTrip(t *testing.T) {
	m := SupernodeHello{Name: "fog-3", Capacity: 17, StreamAddr: "127.0.0.1:9000"}
	got, err := UnmarshalSupernodeHello(m.Marshal())
	if err != nil || got != m {
		t.Errorf("round trip: %+v, %v", got, err)
	}
}

func TestSupernodeWelcomeRoundTrip(t *testing.T) {
	w := virtualworld.New(300, 300)
	w.SpawnAvatar(1, 10, 20)
	w.SpawnNPC(100, 150)
	w.SpawnItem(200, 250)
	m := SupernodeWelcome{SupernodeID: 42, Snapshot: w.Snapshot()}
	got, err := UnmarshalSupernodeWelcome(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.SupernodeID != 42 || !got.Snapshot.Equal(m.Snapshot) ||
		got.Snapshot.Width != 300 || got.Snapshot.Tick != m.Snapshot.Tick {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestPlayerJoinRoundTrip(t *testing.T) {
	m := PlayerJoin{PlayerID: -7, GameID: 3, SpawnX: 12.5, SpawnY: 700.25}
	got, err := UnmarshalPlayerJoin(m.Marshal())
	if err != nil || got != m {
		t.Errorf("round trip: %+v, %v", got, err)
	}
}

func TestJoinReplyRoundTrip(t *testing.T) {
	m := JoinReply{OK: true, Candidates: []CandidateInfo{
		{Addr: "a:1", Load: 2, Capacity: 4, MeasuredRTTMs: -1, Score: 0.9},
		{Addr: "b:2", Load: 0, Capacity: 8, MeasuredRTTMs: 12.5, Score: 0.5},
		{Addr: "c:3"},
	}}
	got, err := UnmarshalJoinReply(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.OK || len(got.Candidates) != 3 || got.Candidates[1] != m.Candidates[1] ||
		got.Candidates[0].Score != 0.9 || got.Candidates[0].MeasuredRTTMs != -1 {
		t.Errorf("round trip: %+v", got)
	}
	deny := JoinReply{OK: false, Reason: "full"}
	got, err = UnmarshalJoinReply(deny.Marshal())
	if err != nil || got.OK || got.Reason != "full" {
		t.Errorf("deny round trip: %+v, %v", got, err)
	}
}

func TestActionRoundTripProperty(t *testing.T) {
	f := func(player int32, kind uint8, tx, ty float64, target uint32, tag uint8) bool {
		m := ActionMsg{Action: virtualworld.Action{
			Player:       int(player),
			Kind:         virtualworld.ActionKind(kind),
			TargetX:      tx,
			TargetY:      ty,
			TargetEntity: virtualworld.EntityID(target),
			StateTag:     tag,
		}}
		got, err := UnmarshalActionMsg(m.Marshal())
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUpdateBatchRoundTrip(t *testing.T) {
	m := UpdateBatch{
		Tick: 99,
		Deltas: []virtualworld.Delta{
			{ID: 1, Entity: virtualworld.Entity{
				ID: 1, Kind: virtualworld.KindAvatar, Owner: 5,
				X: 1.5, Y: 2.5, Facing: 0.7, HP: 88, State: 2, Version: 31,
			}},
			{ID: 9, Removed: true},
			{ID: 2, Entity: virtualworld.Entity{
				ID: 2, Kind: virtualworld.KindItem, Owner: -1, X: 3, Y: 4, Version: 1,
			}},
		},
	}
	got, err := UnmarshalUpdateBatch(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Tick != 99 || len(got.Deltas) != 3 {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range m.Deltas {
		if got.Deltas[i] != m.Deltas[i] {
			t.Errorf("delta %d: %+v vs %+v", i, got.Deltas[i], m.Deltas[i])
		}
	}
	if m.SizeBits() != len(m.Marshal())*8 {
		t.Error("SizeBits mismatch")
	}
}

func TestUpdateBatchEmpty(t *testing.T) {
	m := UpdateBatch{Tick: 3}
	got, err := UnmarshalUpdateBatch(m.Marshal())
	if err != nil || got.Tick != 3 || len(got.Deltas) != 0 {
		t.Errorf("empty batch: %+v, %v", got, err)
	}
}

func TestPlayerAttachAndReplyRoundTrip(t *testing.T) {
	a := PlayerAttach{PlayerID: 12, QualityLevel: 4}
	gotA, err := UnmarshalPlayerAttach(a.Marshal())
	if err != nil || gotA != a {
		t.Errorf("attach: %+v, %v", gotA, err)
	}
	r := AttachReply{OK: false, Reason: "at capacity"}
	gotR, err := UnmarshalAttachReply(r.Marshal())
	if err != nil || gotR != r {
		t.Errorf("reply: %+v, %v", gotR, err)
	}
}

func TestRateChangeRoundTrip(t *testing.T) {
	m := RateChange{QualityLevel: 2}
	got, err := UnmarshalRateChange(m.Marshal())
	if err != nil || got != m {
		t.Errorf("round trip: %+v, %v", got, err)
	}
}

func TestProbeReplyRoundTrip(t *testing.T) {
	m := ProbeReply{Available: 9}
	got, err := UnmarshalProbeReply(m.Marshal())
	if err != nil || got != m {
		t.Errorf("round trip: %+v, %v", got, err)
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	m := Heartbeat{Seq: 77}
	got, err := UnmarshalHeartbeat(m.Marshal())
	if err != nil || got != m {
		t.Errorf("round trip: %+v, %v", got, err)
	}
	a := HeartbeatAck{Seq: 77, ReplicaTick: 123456, Attached: 6}
	gotA, err := UnmarshalHeartbeatAck(a.Marshal())
	if err != nil || gotA != a {
		t.Errorf("ack round trip: %+v, %v", gotA, err)
	}
}

func TestCandidateUpdateRoundTrip(t *testing.T) {
	m := CandidateUpdate{
		Candidates: []CandidateInfo{
			{Addr: "10.0.0.1:7100", Load: 3, Capacity: 4, MeasuredRTTMs: -1, Score: 0.8},
			{Addr: "10.0.0.2:7100", Capacity: 2, MeasuredRTTMs: -1, Score: 0.5},
		},
		CloudStreamAddr: "10.0.0.9:7000",
	}
	got, err := UnmarshalCandidateUpdate(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Candidates) != 2 || got.Candidates[1] != m.Candidates[1] ||
		got.CloudStreamAddr != m.CloudStreamAddr {
		t.Errorf("round trip: %+v", got)
	}
	// An empty ladder (all supernodes gone) still round-trips.
	empty := CandidateUpdate{CloudStreamAddr: "c:1"}
	got, err = UnmarshalCandidateUpdate(empty.Marshal())
	if err != nil || len(got.Candidates) != 0 || got.CloudStreamAddr != "c:1" {
		t.Errorf("empty round trip: %+v, %v", got, err)
	}
}

func TestQoEReportRoundTrip(t *testing.T) {
	for _, m := range []QoEReport{
		{PlayerID: 7, Addr: "10.0.0.1:7100", Rating: 1},
		{PlayerID: -2, Addr: "f:1", Rating: 0, Stalled: true},
		{PlayerID: 9, Addr: "f:2", Rating: 0.25, Stalled: true, Fallback: true},
	} {
		got, err := UnmarshalQoEReport(m.Marshal())
		if err != nil || got != m {
			t.Errorf("round trip: %+v -> %+v, %v", m, got, err)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalSupernodeHello([]byte{0xFF}); err == nil {
		t.Error("garbage hello accepted")
	}
	if _, err := UnmarshalPlayerJoin([]byte{1, 2}); err == nil {
		t.Error("short join accepted")
	}
	if _, err := UnmarshalUpdateBatch([]byte{0}); err == nil {
		t.Error("short batch accepted")
	}
	if _, err := UnmarshalActionMsg(nil); err == nil {
		t.Error("empty action accepted")
	}
	// Trailing bytes are an error, not silently ignored.
	m := RateChange{QualityLevel: 1}
	if _, err := UnmarshalRateChange(append(m.Marshal(), 0xEE)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// A batch claiming absurdly many deltas must fail fast. The count
	// field sits after the epoch and tick words.
	huge := UpdateBatch{Tick: 1}.Marshal()
	huge[16], huge[17], huge[18], huge[19] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := UnmarshalUpdateBatch(huge); err == nil {
		t.Error("hostile delta count accepted")
	}
}

func TestEntityWireBytesAccurate(t *testing.T) {
	w := &writer{}
	putEntity(w, virtualworld.Entity{})
	if len(w.buf) != EntityWireBytes {
		t.Errorf("EntityWireBytes = %d, actual %d", EntityWireBytes, len(w.buf))
	}
}
