package protocol

import (
	"io"
	"testing"

	"cloudfog/internal/virtualworld"
)

// BenchmarkUpdateBatchMarshal measures encoding one 100-delta update batch
// — the cloud's per-supernode per-tick serialization cost.
func BenchmarkUpdateBatchMarshal(b *testing.B) {
	batch := UpdateBatch{Tick: 1}
	for i := 0; i < 100; i++ {
		batch.Deltas = append(batch.Deltas, virtualworld.Delta{
			ID: virtualworld.EntityID(i + 1),
			Entity: virtualworld.Entity{
				ID: virtualworld.EntityID(i + 1), Kind: virtualworld.KindAvatar,
				Owner: i, X: float64(i), Y: float64(i), HP: 100, Version: uint32(i),
			},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Marshal()
	}
}

// BenchmarkUpdateBatchUnmarshal measures the supernode-side decode cost.
func BenchmarkUpdateBatchUnmarshal(b *testing.B) {
	batch := UpdateBatch{Tick: 1}
	for i := 0; i < 100; i++ {
		batch.Deltas = append(batch.Deltas, virtualworld.Delta{
			ID:     virtualworld.EntityID(i + 1),
			Entity: virtualworld.Entity{ID: virtualworld.EntityID(i + 1), Version: 1},
		})
	}
	buf := batch.Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalUpdateBatch(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateBatchAppendTo measures the append-style encode into a
// warm buffer — the zero-allocation replacement for Marshal on the
// cloud's per-tick path.
func BenchmarkUpdateBatchAppendTo(b *testing.B) {
	batch := benchBatch(100)
	buf := make([]byte, 0, batch.EncodedSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = batch.AppendTo(buf[:0])
	}
}

// BenchmarkUpdateBatchDecodeInto measures the reusable decode — the
// zero-allocation replacement for UnmarshalUpdateBatch on the supernode's
// apply loop.
func BenchmarkUpdateBatchDecodeInto(b *testing.B) {
	payload := benchBatch(100).Marshal()
	var m UpdateBatch
	// Warm m.Deltas to steady-state capacity: the first decode's slice
	// growth is a one-time cost per connection, not a per-op one, and
	// amortizing it over the fixed -benchtime iteration count used to
	// show up as a phantom 7 B/op.
	if err := DecodeUpdateBatch(payload, &m); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeUpdateBatch(payload, &m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteMessage is the legacy wire path — Marshal, then a framed
// WriteMessage (two Write calls, fresh header and payload per message).
// It is the baseline the append-path benchmarks below are measured
// against.
func BenchmarkWriteMessage(b *testing.B) {
	batch := benchBatch(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteMessage(io.Discard, MsgUpdateBatch, batch.Marshal()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendFrame is the replacement wire path: encode the message
// and its frame header into one reused buffer and flush with a single
// Write. Steady state must be 0 allocs/op.
func BenchmarkAppendFrame(b *testing.B) {
	batch := benchBatch(100)
	buf := make([]byte, 0, batch.EncodedSize()+HeaderLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendMessage(buf[:0], MsgUpdateBatch, &batch)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Discard.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadMessage is the legacy receive path: a fresh header and
// payload allocation per message.
func BenchmarkReadMessage(b *testing.B) {
	stream, err := AppendFrame(nil, MsgUpdateBatch, benchBatch(100).Marshal())
	if err != nil {
		b.Fatal(err)
	}
	rs := &repeatStream{data: stream}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadMessage(rs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameReader is the replacement receive path: one growable
// buffer per connection, reused across messages. Steady state must be
// 0 allocs/op.
func BenchmarkFrameReader(b *testing.B) {
	stream, err := AppendFrame(nil, MsgUpdateBatch, benchBatch(100).Marshal())
	if err != nil {
		b.Fatal(err)
	}
	fr := NewFrameReader(&repeatStream{data: stream})
	if _, _, err := fr.Next(); err != nil { // warm the buffer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fr.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCellBatchAppendTo measures encoding one dirty cell's batch —
// the cloud's per-cell per-tick serialization cost under AoI fan-out.
func BenchmarkCellBatchAppendTo(b *testing.B) {
	batch := CellBatch{Tick: 1, Cell: 7, Deltas: benchBatch(20).Deltas}
	buf := make([]byte, 0, batch.EncodedSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = batch.AppendTo(buf[:0])
	}
}

// BenchmarkCellBatchDecodeInto measures the fog-side per-cell decode.
func BenchmarkCellBatchDecodeInto(b *testing.B) {
	payload := CellBatch{Tick: 1, Cell: 7, Deltas: benchBatch(20).Deltas}.Marshal()
	var m CellBatch
	if err := DecodeCellBatch(payload, &m); err != nil { // warm capacity
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeCellBatch(payload, &m); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBatch(n int) UpdateBatch {
	batch := UpdateBatch{Tick: 1}
	for i := 0; i < n; i++ {
		batch.Deltas = append(batch.Deltas, virtualworld.Delta{
			ID: virtualworld.EntityID(i + 1),
			Entity: virtualworld.Entity{
				ID: virtualworld.EntityID(i + 1), Kind: virtualworld.KindAvatar,
				Owner: i, X: float64(i), Y: float64(i), HP: 100, Version: uint32(i),
			},
		})
	}
	return batch
}
