package protocol

import (
	"testing"

	"cloudfog/internal/virtualworld"
)

// BenchmarkUpdateBatchMarshal measures encoding one 100-delta update batch
// — the cloud's per-supernode per-tick serialization cost.
func BenchmarkUpdateBatchMarshal(b *testing.B) {
	batch := UpdateBatch{Tick: 1}
	for i := 0; i < 100; i++ {
		batch.Deltas = append(batch.Deltas, virtualworld.Delta{
			ID: virtualworld.EntityID(i + 1),
			Entity: virtualworld.Entity{
				ID: virtualworld.EntityID(i + 1), Kind: virtualworld.KindAvatar,
				Owner: i, X: float64(i), Y: float64(i), HP: 100, Version: uint32(i),
			},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Marshal()
	}
}

// BenchmarkUpdateBatchUnmarshal measures the supernode-side decode cost.
func BenchmarkUpdateBatchUnmarshal(b *testing.B) {
	batch := UpdateBatch{Tick: 1}
	for i := 0; i < 100; i++ {
		batch.Deltas = append(batch.Deltas, virtualworld.Delta{
			ID:     virtualworld.EntityID(i + 1),
			Entity: virtualworld.Entity{ID: virtualworld.EntityID(i + 1), Version: 1},
		})
	}
	buf := batch.Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalUpdateBatch(buf); err != nil {
			b.Fatal(err)
		}
	}
}
