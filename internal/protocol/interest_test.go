package protocol

import (
	"testing"

	"cloudfog/internal/virtualworld"
)

func TestInterestUpdateRoundTrip(t *testing.T) {
	cases := []InterestUpdate{
		{},
		{Gen: 1, CellSize: 64, Players: []int32{3}, Cells: []uint32{0, 1, 16, 17}},
		{Gen: 9000, CellSize: 32.5, Players: []int32{-1, 0, 7, 2048}, Cells: []uint32{255}},
		{Gen: 2, CellSize: 64, Cells: []uint32{virtualworld.CellNone}},
	}
	for _, m := range cases {
		got, err := UnmarshalInterestUpdate(m.Marshal())
		if err != nil {
			t.Fatalf("unmarshal %+v: %v", m, err)
		}
		if got.Gen != m.Gen || got.CellSize != m.CellSize ||
			len(got.Players) != len(m.Players) || len(got.Cells) != len(m.Cells) {
			t.Fatalf("round trip %+v -> %+v", m, got)
		}
		for i := range m.Players {
			if got.Players[i] != m.Players[i] {
				t.Fatalf("players differ: %v vs %v", got.Players, m.Players)
			}
		}
		for i := range m.Cells {
			if got.Cells[i] != m.Cells[i] {
				t.Fatalf("cells differ: %v vs %v", got.Cells, m.Cells)
			}
		}
		if got, want := m.EncodedSize(), len(m.Marshal()); got != want {
			t.Fatalf("EncodedSize = %d, want %d", got, want)
		}
	}
}

func TestInterestUpdateTruncated(t *testing.T) {
	buf := InterestUpdate{Gen: 1, CellSize: 64, Players: []int32{1, 2}, Cells: []uint32{3, 4}}.Marshal()
	for i := 0; i < len(buf); i++ {
		if _, err := UnmarshalInterestUpdate(buf[:i]); err == nil {
			t.Fatalf("truncation at %d not detected", i)
		}
	}
}

func testCellBatch(n int) CellBatch {
	m := CellBatch{Epoch: 3, Tick: 77, Cell: 12, Keyframe: true}
	for i := 0; i < n; i++ {
		m.Deltas = append(m.Deltas, virtualworld.Delta{
			ID: virtualworld.EntityID(i + 1),
			Entity: virtualworld.Entity{
				ID: virtualworld.EntityID(i + 1), Kind: virtualworld.KindNPC,
				Owner: -1, X: float64(i), Y: float64(2 * i), HP: 50, Version: uint32(i + 1),
			},
		})
	}
	if n > 1 {
		m.Deltas[n-1] = virtualworld.Delta{ID: virtualworld.EntityID(n), Removed: true}
	}
	return m
}

func TestCellBatchRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64} {
		m := testCellBatch(n)
		got, err := UnmarshalCellBatch(m.Marshal())
		if err != nil {
			t.Fatalf("unmarshal n=%d: %v", n, err)
		}
		if got.Epoch != m.Epoch || got.Tick != m.Tick || got.Cell != m.Cell ||
			got.Keyframe != m.Keyframe || len(got.Deltas) != len(m.Deltas) {
			t.Fatalf("round trip n=%d: %+v -> %+v", n, m, got)
		}
		for i := range m.Deltas {
			if got.Deltas[i] != m.Deltas[i] {
				t.Fatalf("delta %d differs: %+v vs %+v", i, got.Deltas[i], m.Deltas[i])
			}
		}
		if got, want := m.EncodedSize(), len(m.Marshal()); got != want {
			t.Fatalf("EncodedSize(n=%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCellBatchTruncated(t *testing.T) {
	buf := testCellBatch(3).Marshal()
	for i := 0; i < len(buf); i++ {
		if _, err := UnmarshalCellBatch(buf[:i]); err == nil {
			t.Fatalf("truncation at %d not detected", i)
		}
	}
}

// TestDecodeCellBatchSteadyStateAllocs pins the fog-side per-cell decode
// at zero allocations once the delta slice capacity is warm — the same
// bar DecodeUpdateBatch holds.
func TestDecodeCellBatchSteadyStateAllocs(t *testing.T) {
	payload := testCellBatch(64).Marshal()
	var m CellBatch
	if err := DecodeCellBatch(payload, &m); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeCellBatch(payload, &m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeCellBatch steady state: %.1f allocs/op, want 0", allocs)
	}
}

// TestDecodeInterestUpdateSteadyStateAllocs pins the cloud-side decode.
func TestDecodeInterestUpdateSteadyStateAllocs(t *testing.T) {
	payload := InterestUpdate{Gen: 4, CellSize: 64,
		Players: []int32{1, 2, 3, 4}, Cells: []uint32{0, 1, 2, 3, 16, 17, 18, 19}}.Marshal()
	var m InterestUpdate
	if err := DecodeInterestUpdate(payload, &m); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeInterestUpdate(payload, &m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeInterestUpdate steady state: %.1f allocs/op, want 0", allocs)
	}
}
