package virtualworld

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDefaults(t *testing.T) {
	w := New(0, -5)
	width, height := w.Size()
	if width != DefaultWidth || height != DefaultHeight {
		t.Errorf("size = %v x %v", width, height)
	}
	if w.Tick() != 0 || w.NumEntities() != 0 {
		t.Error("fresh world not empty")
	}
	if w.String() == "" {
		t.Error("empty String")
	}
}

func TestSpawnAvatarIdempotent(t *testing.T) {
	w := New(100, 100)
	a := w.SpawnAvatar(1, 10, 10)
	b := w.SpawnAvatar(1, 90, 90)
	if a != b {
		t.Error("second spawn created a new avatar")
	}
	if w.Avatar(1) != a {
		t.Error("Avatar lookup broken")
	}
	if a.HP != MaxHP || a.Kind != KindAvatar || a.Owner != 1 {
		t.Errorf("avatar malformed: %+v", a)
	}
}

func TestSpawnClampsPosition(t *testing.T) {
	w := New(100, 100)
	a := w.SpawnAvatar(1, -50, 400)
	if a.X != 0 || a.Y != 100 {
		t.Errorf("spawn not clamped: %v, %v", a.X, a.Y)
	}
}

func TestRemovePlayer(t *testing.T) {
	w := New(100, 100)
	a := w.SpawnAvatar(1, 10, 10)
	w.RemovePlayer(1)
	if w.Avatar(1) != nil || w.Entity(a.ID) != nil {
		t.Error("avatar not removed")
	}
	w.RemovePlayer(1) // idempotent
}

func TestMoveStepsTowardTarget(t *testing.T) {
	w := New(1000, 1000)
	a := w.SpawnAvatar(1, 100, 100)
	deltas := w.Step([]Action{{Player: 1, Kind: ActMove, TargetX: 200, TargetY: 100}})
	if len(deltas) != 1 || deltas[0].ID != a.ID {
		t.Fatalf("deltas = %+v", deltas)
	}
	if a.X != 100+MoveSpeed || a.Y != 100 {
		t.Errorf("avatar at %v,%v after one move tick", a.X, a.Y)
	}
	if math.Abs(a.Facing) > 1e-9 {
		t.Errorf("facing = %v", a.Facing)
	}
	// Target closer than MoveSpeed: arrive exactly.
	w.Step([]Action{{Player: 1, Kind: ActMove, TargetX: a.X + 2, TargetY: 100}})
	if a.X != 100+MoveSpeed+2 {
		t.Errorf("short move overshot: %v", a.X)
	}
}

func TestMoveNoOpProducesNoDelta(t *testing.T) {
	w := New(100, 100)
	a := w.SpawnAvatar(1, 50, 50)
	deltas := w.Step([]Action{{Player: 1, Kind: ActMove, TargetX: 50, TargetY: 50}})
	if len(deltas) != 0 {
		t.Errorf("no-op move produced deltas: %+v", deltas)
	}
	if a.Version != 1 {
		t.Errorf("version bumped: %d", a.Version)
	}
}

func TestAttackInRange(t *testing.T) {
	w := New(200, 200)
	w.SpawnAvatar(1, 50, 50)
	victim := w.SpawnAvatar(2, 60, 50)
	deltas := w.Step([]Action{{Player: 1, Kind: ActAttack, TargetEntity: victim.ID}})
	if victim.HP != MaxHP-AttackDamage {
		t.Errorf("victim HP = %d", victim.HP)
	}
	if len(deltas) != 2 {
		t.Errorf("deltas = %d, want attacker+victim", len(deltas))
	}
}

func TestAttackOutOfRange(t *testing.T) {
	w := New(500, 500)
	w.SpawnAvatar(1, 10, 10)
	victim := w.SpawnAvatar(2, 400, 400)
	deltas := w.Step([]Action{{Player: 1, Kind: ActAttack, TargetEntity: victim.ID}})
	if victim.HP != MaxHP || len(deltas) != 0 {
		t.Error("out-of-range attack landed")
	}
}

func TestAttackCannotHitItemsOrSelf(t *testing.T) {
	w := New(200, 200)
	a := w.SpawnAvatar(1, 50, 50)
	item := w.SpawnItem(52, 52)
	if got := w.Step([]Action{{Player: 1, Kind: ActAttack, TargetEntity: item.ID}}); len(got) != 0 {
		t.Error("attacked an item")
	}
	if got := w.Step([]Action{{Player: 1, Kind: ActAttack, TargetEntity: a.ID}}); len(got) != 0 {
		t.Error("attacked self")
	}
}

func TestKilledNPCDespawns(t *testing.T) {
	w := New(200, 200)
	w.SpawnAvatar(1, 50, 50)
	npc := w.SpawnNPC(55, 50)
	hits := int(math.Ceil(float64(MaxHP) / AttackDamage))
	var lastDeltas []Delta
	for i := 0; i < hits; i++ {
		lastDeltas = w.Step([]Action{{Player: 1, Kind: ActAttack, TargetEntity: npc.ID}})
	}
	if w.Entity(npc.ID) != nil {
		t.Fatal("dead NPC still present")
	}
	foundRemoval := false
	for _, d := range lastDeltas {
		if d.Removed && d.ID == npc.ID {
			foundRemoval = true
		}
	}
	if !foundRemoval {
		t.Errorf("no removal delta: %+v", lastDeltas)
	}
}

func TestKilledAvatarRespawns(t *testing.T) {
	w := New(200, 200)
	w.SpawnAvatar(1, 50, 50)
	victim := w.SpawnAvatar(2, 55, 50)
	hits := int(math.Ceil(float64(MaxHP) / AttackDamage))
	for i := 0; i < hits; i++ {
		w.Step([]Action{{Player: 1, Kind: ActAttack, TargetEntity: victim.ID}})
	}
	if victim.HP != MaxHP {
		t.Errorf("avatar not respawned: HP=%d", victim.HP)
	}
	if victim.X != 8 || victim.Y != 8 {
		t.Errorf("respawn position %v,%v", victim.X, victim.Y)
	}
}

func TestPickUp(t *testing.T) {
	w := New(200, 200)
	w.SpawnAvatar(1, 50, 50)
	item := w.SpawnItem(55, 50)
	far := w.SpawnItem(150, 150)
	deltas := w.Step([]Action{{Player: 1, Kind: ActPickUp, TargetEntity: item.ID}})
	if w.Entity(item.ID) != nil {
		t.Error("item not collected")
	}
	foundRemoval := false
	for _, d := range deltas {
		if d.Removed && d.ID == item.ID {
			foundRemoval = true
		}
	}
	if !foundRemoval {
		t.Error("no item removal delta")
	}
	if got := w.Step([]Action{{Player: 1, Kind: ActPickUp, TargetEntity: far.ID}}); len(got) != 0 {
		t.Error("picked up a distant item")
	}
}

func TestEmote(t *testing.T) {
	w := New(100, 100)
	a := w.SpawnAvatar(1, 50, 50)
	w.Step([]Action{{Player: 1, Kind: ActEmote, StateTag: 7}})
	if a.State != 7 {
		t.Errorf("state = %d", a.State)
	}
}

func TestDeadOrMissingActorIgnored(t *testing.T) {
	w := New(100, 100)
	if got := w.Step([]Action{{Player: 99, Kind: ActMove, TargetX: 1, TargetY: 1}}); len(got) != 0 {
		t.Error("ghost player acted")
	}
}

func TestStepDeterministicOrder(t *testing.T) {
	// Two attack actions submitted in different orders must resolve
	// identically (sorted by player ID).
	build := func() (*World, *Entity) {
		w := New(200, 200)
		w.SpawnAvatar(1, 50, 50)
		w.SpawnAvatar(2, 55, 50)
		npc := w.SpawnNPC(52, 52)
		return w, npc
	}
	w1, npc1 := build()
	w1.Step([]Action{
		{Player: 2, Kind: ActAttack, TargetEntity: npc1.ID},
		{Player: 1, Kind: ActAttack, TargetEntity: npc1.ID},
	})
	w2, npc2 := build()
	w2.Step([]Action{
		{Player: 1, Kind: ActAttack, TargetEntity: npc2.ID},
		{Player: 2, Kind: ActAttack, TargetEntity: npc2.ID},
	})
	if npc1.HP != npc2.HP {
		t.Errorf("order-dependent outcome: %d vs %d", npc1.HP, npc2.HP)
	}
	if !w1.Snapshot().Equal(w2.Snapshot()) {
		t.Error("snapshots diverge under reordered input")
	}
}

func TestVersionsMonotoneProperty(t *testing.T) {
	// Property: entity versions never decrease across ticks.
	f := func(moves []uint8) bool {
		w := New(300, 300)
		a := w.SpawnAvatar(1, 150, 150)
		lastVersion := a.Version
		for _, m := range moves {
			w.Step([]Action{{
				Player: 1, Kind: ActMove,
				TargetX: float64(m), TargetY: float64(255 - m),
			}})
			if a.Version < lastVersion {
				return false
			}
			lastVersion = a.Version
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPositionsStayInWorldProperty(t *testing.T) {
	f := func(targets []int16) bool {
		w := New(200, 200)
		a := w.SpawnAvatar(1, 100, 100)
		for _, tgt := range targets {
			w.Step([]Action{{
				Player: 1, Kind: ActMove,
				TargetX: float64(tgt), TargetY: float64(-tgt),
			}})
			if a.X < 0 || a.X > 200 || a.Y < 0 || a.Y > 200 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	w := New(100, 100)
	w.SpawnAvatar(1, 10, 10)
	s := w.Snapshot()
	w.Step([]Action{{Player: 1, Kind: ActMove, TargetX: 90, TargetY: 90}})
	if s.Entities[0].X != 10 {
		t.Error("snapshot mutated by later ticks")
	}
	if s.Tick != 0 || w.Tick() != 1 {
		t.Error("tick bookkeeping wrong")
	}
}

func TestEntitiesSorted(t *testing.T) {
	w := New(100, 100)
	w.SpawnNPC(1, 1)
	w.SpawnAvatar(1, 2, 2)
	w.SpawnItem(3, 3)
	es := w.Entities()
	for i := 1; i < len(es); i++ {
		if es[i].ID <= es[i-1].ID {
			t.Fatal("Entities not sorted")
		}
	}
}
