package virtualworld

import (
	"math"
	"sort"
)

// This file is the uniform-grid spatial index behind interest management:
// the world keeps every entity bucketed into a fixed grid of square cells,
// maintained incrementally at each mutation (no per-tick rebuild), so the
// cloud can answer "which entities live in cell c" and "which cells does
// this viewport overlap" in time proportional to the answer, not to the
// world. Cells are the unit of the AoI-filtered update stream: deltas are
// bucketed by cell, supernodes subscribe to cell sets, and a supernode
// that gains a cell is seeded with the cell's full state (DESIGN.md §14).

// DefaultCellSize is the grid cell edge length in world units. It is a
// protocol-visible constant: fogs derive their interest footprint with the
// same geometry the cloud buckets deltas with, and an InterestUpdate
// carrying a different cell size is rejected (the supernode stays on the
// full-world stream). 64 units ≈ half a viewport half-width, so a player
// footprint is a handful of cells and one avatar step (MoveSpeed=8) can
// never out-run a one-cell hysteresis margin in a single tick.
const DefaultCellSize = 64.0

// CellNone is the sentinel cell ID for deltas with no position: removals
// and membership (session) events. They are broadcast to every subscribed
// supernode regardless of its interest set — removals are cheap to apply,
// and skipping them would leave ghosts in cells the supernode never
// re-enters.
const CellNone = ^uint32(0)

// GridGeom is the pure geometry of a grid: world dimensions quantized
// into Cols×Rows square cells of edge CellSize. It is value-copyable and
// shared verbatim by the cloud (bucketing) and the fogs (footprint
// computation), so a cell ID means the same rectangle on both sides.
type GridGeom struct {
	// CellSize is the cell edge length in world units.
	CellSize float64
	// Cols, Rows are the grid dimensions in cells.
	Cols, Rows int
	// Width, Height are the world dimensions the grid covers.
	Width, Height float64
}

// Geometry builds the grid geometry for a world of the given size.
// Non-positive dimensions take the world defaults; a non-positive cell
// size takes DefaultCellSize. The last column/row absorbs any remainder
// (and the world's max edge, which clampPos can produce).
func Geometry(width, height, cellSize float64) GridGeom {
	if width <= 0 {
		width = DefaultWidth
	}
	if height <= 0 {
		height = DefaultHeight
	}
	if cellSize <= 0 {
		cellSize = DefaultCellSize
	}
	cols := int(math.Ceil(width / cellSize))
	rows := int(math.Ceil(height / cellSize))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return GridGeom{CellSize: cellSize, Cols: cols, Rows: rows, Width: width, Height: height}
}

// NumCells returns the total cell count.
func (g GridGeom) NumCells() int { return g.Cols * g.Rows }

// CellOf maps a position to its cell ID (row-major). Positions are
// clamped to the world, and the max edge folds into the last column/row,
// matching Region.Contains' max-exclusive-except-world-edge convention.
func (g GridGeom) CellOf(x, y float64) uint32 {
	col := int(x / g.CellSize)
	if col < 0 {
		col = 0
	} else if col >= g.Cols {
		col = g.Cols - 1
	}
	row := int(y / g.CellSize)
	if row < 0 {
		row = 0
	} else if row >= g.Rows {
		row = g.Rows - 1
	}
	return uint32(row*g.Cols + col)
}

// CellRect returns the rectangle a cell covers. The max edge is exclusive
// except for the last column/row, which extends to the world edge so the
// union of all cells is exactly the world.
func (g GridGeom) CellRect(c uint32) (minX, minY, maxX, maxY float64) {
	col := int(c) % g.Cols
	row := int(c) / g.Cols
	minX = float64(col) * g.CellSize
	minY = float64(row) * g.CellSize
	maxX = minX + g.CellSize
	maxY = minY + g.CellSize
	if col == g.Cols-1 {
		maxX = g.Width
	}
	if row == g.Rows-1 {
		maxY = g.Height
	}
	return minX, minY, maxX, maxY
}

// AppendCellsInRect appends (in ascending cell-ID order) every cell
// overlapping the rectangle to dst and returns the extended slice. The
// rectangle is clamped to the world; with enough capacity in dst this
// does not allocate.
func (g GridGeom) AppendCellsInRect(dst []uint32, minX, minY, maxX, maxY float64) []uint32 {
	if maxX < minX || maxY < minY {
		return dst
	}
	c0 := int(math.Max(0, minX) / g.CellSize)
	r0 := int(math.Max(0, minY) / g.CellSize)
	c1 := int(math.Min(g.Width, maxX) / g.CellSize)
	r1 := int(math.Min(g.Height, maxY) / g.CellSize)
	if c0 >= g.Cols {
		c0 = g.Cols - 1
	}
	if r0 >= g.Rows {
		r0 = g.Rows - 1
	}
	if c1 >= g.Cols {
		c1 = g.Cols - 1
	}
	if r1 >= g.Rows {
		r1 = g.Rows - 1
	}
	for row := r0; row <= r1; row++ {
		base := uint32(row * g.Cols)
		for col := c0; col <= c1; col++ {
			dst = append(dst, base+uint32(col))
		}
	}
	return dst
}

// Grid is the incrementally maintained spatial index: per-cell entity ID
// lists, kept sorted so every read is deterministic. It is derived state —
// a function of the entity positions alone — which is why checkpoints do
// not carry it: Restore rebuilds a bit-identical grid from the snapshot
// (asserted by TestRestoreRebuildsGridBitIdentical).
type Grid struct {
	geo   GridGeom
	cells [][]EntityID
	count int
}

// NewGrid creates an empty grid with the given geometry.
func NewGrid(geo GridGeom) *Grid {
	return &Grid{geo: geo, cells: make([][]EntityID, geo.NumCells())}
}

// Geom returns the grid geometry.
func (g *Grid) Geom() GridGeom { return g.geo }

// Len returns the number of indexed entities.
func (g *Grid) Len() int { return g.count }

// CellLen returns the number of entities in a cell.
func (g *Grid) CellLen(c uint32) int {
	if int(c) >= len(g.cells) {
		return 0
	}
	return len(g.cells[c])
}

// AppendCell appends the cell's entity IDs (ascending) to dst and returns
// the extended slice; with enough capacity it does not allocate.
func (g *Grid) AppendCell(dst []EntityID, c uint32) []EntityID {
	if int(c) >= len(g.cells) {
		return dst
	}
	return append(dst, g.cells[c]...)
}

// Insert indexes an entity at a position.
func (g *Grid) Insert(id EntityID, x, y float64) {
	c := g.geo.CellOf(x, y)
	cell := g.cells[c]
	i := sort.Search(len(cell), func(i int) bool { return cell[i] >= id })
	if i < len(cell) && cell[i] == id {
		return
	}
	cell = append(cell, 0)
	copy(cell[i+1:], cell[i:])
	cell[i] = id
	g.cells[c] = cell
	g.count++
}

// Remove unindexes an entity; x, y must be its indexed position.
func (g *Grid) Remove(id EntityID, x, y float64) {
	c := g.geo.CellOf(x, y)
	cell := g.cells[c]
	i := sort.Search(len(cell), func(i int) bool { return cell[i] >= id })
	if i >= len(cell) || cell[i] != id {
		return
	}
	g.cells[c] = append(cell[:i], cell[i+1:]...)
	g.count--
}

// Move re-indexes an entity that moved from (ox, oy) to (nx, ny). Moves
// within one cell are free; cross-cell moves are one sorted removal plus
// one sorted insertion.
func (g *Grid) Move(id EntityID, ox, oy, nx, ny float64) {
	oc := g.geo.CellOf(ox, oy)
	nc := g.geo.CellOf(nx, ny)
	if oc == nc {
		return
	}
	g.Remove(id, ox, oy)
	g.Insert(id, nx, ny)
}

// Digest folds the full grid contents (cell by cell, IDs in order) into
// an FNV-1a hash — the bit-identity fingerprint restore tests compare.
func (g *Grid) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	for c, cell := range g.cells {
		if len(cell) == 0 {
			continue
		}
		mix(uint64(c))
		mix(uint64(len(cell)))
		for _, id := range cell {
			mix(uint64(id))
		}
	}
	return h
}
