package virtualworld

import (
	"testing"
	"testing/quick"

	"cloudfog/internal/rng"
)

// driveWorld runs a random-but-deterministic workload over the world,
// streaming deltas to the replica, and returns both.
func driveWorld(t *testing.T, ticks int, seed uint64, shuffle bool) (*World, *Replica) {
	t.Helper()
	r := rng.New(seed)
	w := New(400, 400)
	for p := 1; p <= 8; p++ {
		w.SpawnAvatar(p, r.Uniform(0, 400), r.Uniform(0, 400))
	}
	for i := 0; i < 5; i++ {
		w.SpawnNPC(r.Uniform(0, 400), r.Uniform(0, 400))
		w.SpawnItem(r.Uniform(0, 400), r.Uniform(0, 400))
	}
	rep := NewReplica(400, 400)
	rep.Seed(w.Snapshot())
	for tick := 0; tick < ticks; tick++ {
		var actions []Action
		for p := 1; p <= 8; p++ {
			switch r.Intn(4) {
			case 0:
				actions = append(actions, Action{Player: p, Kind: ActMove,
					TargetX: r.Uniform(0, 400), TargetY: r.Uniform(0, 400)})
			case 1:
				target := EntityID(r.Intn(w.NumEntities()) + 1)
				actions = append(actions, Action{Player: p, Kind: ActAttack, TargetEntity: target})
			case 2:
				target := EntityID(r.Intn(w.NumEntities()) + 1)
				actions = append(actions, Action{Player: p, Kind: ActPickUp, TargetEntity: target})
			default:
				actions = append(actions, Action{Player: p, Kind: ActEmote, StateTag: uint8(r.Intn(4))})
			}
		}
		deltas := w.Step(actions)
		if shuffle {
			r.Shuffle(len(deltas), func(i, j int) { deltas[i], deltas[j] = deltas[j], deltas[i] })
		}
		rep.Apply(w.Tick(), deltas)
	}
	return w, rep
}

func TestReplicaConverges(t *testing.T) {
	w, rep := driveWorld(t, 200, 1, false)
	if !w.Snapshot().Equal(rep.Snapshot()) {
		t.Fatal("replica diverged from the authoritative world")
	}
	if rep.Tick() != w.Tick() {
		t.Errorf("ticks differ: %d vs %d", rep.Tick(), w.Tick())
	}
	if rep.AppliedDeltas() == 0 {
		t.Error("no deltas applied")
	}
}

func TestReplicaConvergesUnderReordering(t *testing.T) {
	// Within-tick delta reordering must not break convergence (updates
	// are per-entity and versioned).
	w, rep := driveWorld(t, 200, 2, true)
	if !w.Snapshot().Equal(rep.Snapshot()) {
		t.Fatal("replica diverged under reordered deltas")
	}
}

func TestReplicaDiscardsStale(t *testing.T) {
	rep := NewReplica(100, 100)
	e := Entity{ID: 1, Kind: KindAvatar, Owner: 1, X: 10, Y: 10, Version: 5}
	rep.Apply(1, []Delta{{ID: 1, Entity: e}})
	old := e
	old.X = 99
	old.Version = 3
	rep.Apply(2, []Delta{{ID: 1, Entity: old}})
	got, ok := rep.Entity(1)
	if !ok || got.X != 10 {
		t.Errorf("stale delta applied: %+v", got)
	}
	if rep.StaleDeltas() != 1 {
		t.Errorf("stale count = %d", rep.StaleDeltas())
	}
}

func TestReplicaDuplicateDeliveryIdempotent(t *testing.T) {
	w, rep := driveWorld(t, 20, 3, false)
	// Re-deliver the final state twice via a full snapshot round trip.
	snap := w.Snapshot()
	var dup []Delta
	for _, e := range snap.Entities {
		dup = append(dup, Delta{ID: e.ID, Entity: e})
	}
	rep.Apply(w.Tick(), dup)
	rep.Apply(w.Tick(), dup)
	if !w.Snapshot().Equal(rep.Snapshot()) {
		t.Fatal("duplicate delivery corrupted replica")
	}
}

func TestReplicaSeed(t *testing.T) {
	w := New(100, 100)
	w.SpawnAvatar(1, 5, 5)
	w.SpawnNPC(60, 60)
	rep := NewReplica(0, 0)
	rep.Seed(w.Snapshot())
	if rep.NumEntities() != 2 {
		t.Errorf("seeded entities = %d", rep.NumEntities())
	}
	if !w.Snapshot().Equal(rep.Snapshot()) {
		t.Error("seed mismatch")
	}
}

func TestReplicaRemoval(t *testing.T) {
	rep := NewReplica(100, 100)
	rep.Apply(1, []Delta{{ID: 4, Entity: Entity{ID: 4, Kind: KindItem, Version: 1}}})
	rep.Apply(2, []Delta{{ID: 4, Removed: true}})
	if _, ok := rep.Entity(4); ok {
		t.Error("removed entity still present")
	}
	// Removing again is harmless.
	rep.Apply(3, []Delta{{ID: 4, Removed: true}})
}

func TestSnapshotEqualProperty(t *testing.T) {
	// Property: a snapshot equals itself and differs after any mutation.
	f := func(seed uint64) bool {
		w, _ := driveWorld(t, 5, seed%100, false)
		s := w.Snapshot()
		if !s.Equal(s) {
			return false
		}
		w.Step([]Action{{Player: 1, Kind: ActEmote, StateTag: 99}})
		return !s.Equal(w.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
