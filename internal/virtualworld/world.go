// Package virtualworld implements the authoritative MMOG game-state
// substrate that CloudFog's cloud layer runs: "the server collects action
// information from all involved players in the system and performs the
// computation of the new game state of the virtual world (including the
// new shape and position of objects and states of avatars)".
//
// The world is a bounded 2D plane populated by avatars (player-controlled)
// and objects (NPCs, items). Players submit Actions (move, attack, emote,
// pick up); a tick applies every pending action, resolves combat, and
// produces per-entity deltas. The world is spatially partitioned into
// regions (the kd-tree partitioning of Bezerra et al. that the paper's
// related work builds on) so that load balancing and interest management —
// which entities a given viewpoint needs — are cheap.
//
// This is the state the cloud computes and the source of the compact
// update stream (Λ) pushed to supernodes; package updates encodes the
// deltas, and internal/render turns replica snapshots into per-player
// frames on the fog side.
package virtualworld

import (
	"fmt"
	"math"
	"sort"
)

// World dimensions, in abstract world units.
const (
	DefaultWidth  = 1024.0
	DefaultHeight = 1024.0
)

// EntityKind distinguishes world entities.
type EntityKind uint8

const (
	// KindAvatar is a player-controlled character.
	KindAvatar EntityKind = iota + 1
	// KindNPC is a computer-controlled character.
	KindNPC
	// KindItem is a pickable object.
	KindItem
)

// String returns the kind name.
func (k EntityKind) String() string {
	switch k {
	case KindAvatar:
		return "avatar"
	case KindNPC:
		return "npc"
	case KindItem:
		return "item"
	default:
		return "unknown"
	}
}

// EntityID identifies an entity within a world.
type EntityID uint32

// Entity is one object of the virtual world.
type Entity struct {
	// ID is the entity's identifier.
	ID EntityID
	// Kind is the entity class.
	Kind EntityKind
	// Owner is the player ID controlling an avatar (-1 otherwise).
	Owner int
	// X, Y is the position.
	X, Y float64
	// Facing is the orientation in radians.
	Facing float64
	// HP is hit points (avatars and NPCs).
	HP int16
	// State is an opaque animation/pose state tag.
	State uint8
	// Version increments on every mutation; deltas carry it so replicas
	// can discard stale updates.
	Version uint32
}

// clone returns a copy of the entity.
func (e *Entity) clone() *Entity {
	c := *e
	return &c
}

// ActionKind enumerates the player actions of the game.
type ActionKind uint8

const (
	// ActMove steers the avatar toward a target point.
	ActMove ActionKind = iota + 1
	// ActAttack strikes a target entity within range.
	ActAttack
	// ActPickUp collects a nearby item.
	ActPickUp
	// ActEmote changes the avatar's pose/state.
	ActEmote
)

// String returns the action name.
func (a ActionKind) String() string {
	switch a {
	case ActMove:
		return "move"
	case ActAttack:
		return "attack"
	case ActPickUp:
		return "pickup"
	case ActEmote:
		return "emote"
	default:
		return "unknown"
	}
}

// Action is one player input, as delivered to the cloud.
type Action struct {
	// Player is the acting player's ID.
	Player int
	// Kind is the action type.
	Kind ActionKind
	// TargetX, TargetY is the destination of a move.
	TargetX, TargetY float64
	// TargetEntity is the victim of an attack or the item of a pickup.
	TargetEntity EntityID
	// StateTag is the pose for an emote.
	StateTag uint8
}

// Gameplay tuning constants.
const (
	// MoveSpeed is avatar movement per tick, in world units.
	MoveSpeed = 8.0
	// AttackRange is the maximum strike distance.
	AttackRange = 24.0
	// AttackDamage is hit points removed per strike.
	AttackDamage = 12
	// PickUpRange is the maximum collect distance.
	PickUpRange = 12.0
	// MaxHP is the avatar spawn/respawn hit points.
	MaxHP = 100
)

// World is the authoritative game state. It is not safe for concurrent
// use; the cloud serializes ticks per shard.
type World struct {
	width, height float64
	entities      map[EntityID]*Entity
	byOwner       map[int]EntityID
	nextID        EntityID
	tick          uint64
	// grid is the uniform spatial index over entity positions, maintained
	// incrementally at every mutation site (spawn, move, despawn, restore)
	// so interest-managed fan-out never rebuilds it per tick. It is pure
	// derived state: checkpoints don't carry it, Restore re-derives it.
	grid *Grid
}

// New creates an empty world of the given size (non-positive dimensions
// take the defaults).
func New(width, height float64) *World {
	if width <= 0 {
		width = DefaultWidth
	}
	if height <= 0 {
		height = DefaultHeight
	}
	return &World{
		width:    width,
		height:   height,
		entities: make(map[EntityID]*Entity),
		byOwner:  make(map[int]EntityID),
		nextID:   1,
		grid:     NewGrid(Geometry(width, height, DefaultCellSize)),
	}
}

// Grid returns the world's spatial index. Callers must treat it as
// read-only; it is maintained by the world's own mutation paths.
func (w *World) Grid() *Grid { return w.grid }

// Size returns the world dimensions.
func (w *World) Size() (width, height float64) { return w.width, w.height }

// Tick returns the current tick number.
func (w *World) Tick() uint64 { return w.tick }

// NumEntities returns the entity count.
func (w *World) NumEntities() int { return len(w.entities) }

// clampPos keeps a position on the plane.
func (w *World) clampPos(x, y float64) (float64, float64) {
	return math.Max(0, math.Min(w.width, x)), math.Max(0, math.Min(w.height, y))
}

// SpawnAvatar creates (or returns the existing) avatar for a player at the
// given position.
func (w *World) SpawnAvatar(player int, x, y float64) *Entity {
	if id, ok := w.byOwner[player]; ok {
		return w.entities[id]
	}
	x, y = w.clampPos(x, y)
	e := &Entity{
		ID:    w.nextID,
		Kind:  KindAvatar,
		Owner: player,
		X:     x, Y: y,
		HP:      MaxHP,
		Version: 1,
	}
	w.nextID++
	w.entities[e.ID] = e
	w.byOwner[player] = e.ID
	w.grid.Insert(e.ID, e.X, e.Y)
	return e
}

// SpawnNPC creates an NPC at the given position.
func (w *World) SpawnNPC(x, y float64) *Entity {
	x, y = w.clampPos(x, y)
	e := &Entity{ID: w.nextID, Kind: KindNPC, Owner: -1, X: x, Y: y, HP: MaxHP, Version: 1}
	w.nextID++
	w.entities[e.ID] = e
	w.grid.Insert(e.ID, e.X, e.Y)
	return e
}

// SpawnItem creates an item at the given position.
func (w *World) SpawnItem(x, y float64) *Entity {
	x, y = w.clampPos(x, y)
	e := &Entity{ID: w.nextID, Kind: KindItem, Owner: -1, X: x, Y: y, Version: 1}
	w.nextID++
	w.entities[e.ID] = e
	w.grid.Insert(e.ID, e.X, e.Y)
	return e
}

// RemovePlayer despawns a player's avatar (logout).
func (w *World) RemovePlayer(player int) {
	if id, ok := w.byOwner[player]; ok {
		if e := w.entities[id]; e != nil {
			w.grid.Remove(id, e.X, e.Y)
		}
		delete(w.entities, id)
		delete(w.byOwner, player)
	}
}

// Avatar returns the player's avatar, or nil.
func (w *World) Avatar(player int) *Entity {
	if id, ok := w.byOwner[player]; ok {
		return w.entities[id]
	}
	return nil
}

// Entity returns the entity with the given ID, or nil.
func (w *World) Entity(id EntityID) *Entity { return w.entities[id] }

// Entities returns all entities sorted by ID (deterministic order).
func (w *World) Entities() []*Entity {
	out := make([]*Entity, 0, len(w.entities))
	for _, e := range w.entities {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Delta records one entity change produced by a tick.
type Delta struct {
	// ID is the changed entity.
	ID EntityID
	// Removed marks a despawn; the remaining fields are zero.
	Removed bool
	// Entity is the post-change entity state (a copy).
	Entity Entity
}

// Step advances the world one tick: every action is applied in a
// deterministic order (by player ID), combat resolves, and the set of
// changed entities is returned as deltas — the payload of the cloud's
// update stream to supernodes.
func (w *World) Step(actions []Action) []Delta {
	w.tick++
	changed := make(map[EntityID]bool)
	removed := make(map[EntityID]bool)

	sorted := append([]Action(nil), actions...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Player < sorted[j].Player })

	for _, a := range sorted {
		actor := w.Avatar(a.Player)
		if actor == nil || actor.HP <= 0 {
			continue
		}
		switch a.Kind {
		case ActMove:
			if w.applyMove(actor, a.TargetX, a.TargetY) {
				changed[actor.ID] = true
			}
		case ActAttack:
			if victim := w.applyAttack(actor, a.TargetEntity); victim != nil {
				changed[actor.ID] = true
				changed[victim.ID] = true
				if victim.HP <= 0 && victim.Kind == KindNPC {
					w.grid.Remove(victim.ID, victim.X, victim.Y)
					delete(w.entities, victim.ID)
					removed[victim.ID] = true
				}
			}
		case ActPickUp:
			if item := w.applyPickUp(actor, a.TargetEntity); item != nil {
				changed[actor.ID] = true
				removed[item.ID] = true
			}
		case ActEmote:
			actor.State = a.StateTag
			actor.Version++
			changed[actor.ID] = true
		}
	}

	// Respawn dead avatars at the origin corner with full HP.
	for _, id := range w.sortedOwnedIDs() {
		e := w.entities[id]
		if e != nil && e.Kind == KindAvatar && e.HP <= 0 {
			ox, oy := e.X, e.Y
			e.HP = MaxHP
			e.X, e.Y = w.clampPos(8, 8)
			e.Version++
			w.grid.Move(e.ID, ox, oy, e.X, e.Y)
			changed[e.ID] = true
		}
	}

	deltas := make([]Delta, 0, len(changed)+len(removed))
	for _, e := range w.Entities() {
		if changed[e.ID] && !removed[e.ID] {
			deltas = append(deltas, Delta{ID: e.ID, Entity: *e})
		}
	}
	rm := make([]EntityID, 0, len(removed))
	for id := range removed {
		rm = append(rm, id)
	}
	sort.Slice(rm, func(i, j int) bool { return rm[i] < rm[j] })
	for _, id := range rm {
		deltas = append(deltas, Delta{ID: id, Removed: true})
	}
	return deltas
}

func (w *World) sortedOwnedIDs() []EntityID {
	ids := make([]EntityID, 0, len(w.byOwner))
	for _, id := range w.byOwner {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (w *World) applyMove(actor *Entity, tx, ty float64) bool {
	tx, ty = w.clampPos(tx, ty)
	dx, dy := tx-actor.X, ty-actor.Y
	dist := math.Hypot(dx, dy)
	if dist == 0 {
		return false
	}
	step := math.Min(MoveSpeed, dist)
	ox, oy := actor.X, actor.Y
	actor.X += dx / dist * step
	actor.Y += dy / dist * step
	actor.Facing = math.Atan2(dy, dx)
	actor.Version++
	w.grid.Move(actor.ID, ox, oy, actor.X, actor.Y)
	return true
}

func (w *World) applyAttack(actor *Entity, target EntityID) *Entity {
	victim := w.entities[target]
	if victim == nil || victim.ID == actor.ID || victim.Kind == KindItem {
		return nil
	}
	if math.Hypot(victim.X-actor.X, victim.Y-actor.Y) > AttackRange {
		return nil
	}
	victim.HP -= AttackDamage
	victim.Version++
	actor.State = 1 // attacking pose
	actor.Version++
	return victim
}

func (w *World) applyPickUp(actor *Entity, target EntityID) *Entity {
	item := w.entities[target]
	if item == nil || item.Kind != KindItem {
		return nil
	}
	if math.Hypot(item.X-actor.X, item.Y-actor.Y) > PickUpRange {
		return nil
	}
	w.grid.Remove(item.ID, item.X, item.Y)
	delete(w.entities, item.ID)
	actor.Version++
	return item
}

// Snapshot is an immutable copy of the world at a tick, for replicas and
// renderers.
type Snapshot struct {
	// Tick is the world tick the snapshot was taken at.
	Tick uint64
	// Width, Height are the world dimensions.
	Width, Height float64
	// Entities are copies, sorted by ID.
	Entities []Entity
}

// Snapshot captures the current world state.
func (w *World) Snapshot() Snapshot {
	es := w.Entities()
	out := Snapshot{Tick: w.tick, Width: w.width, Height: w.height,
		Entities: make([]Entity, len(es))}
	for i, e := range es {
		out.Entities[i] = *e
	}
	return out
}

// String renders a summary.
func (w *World) String() string {
	return fmt.Sprintf("world{%gx%g tick=%d entities=%d}", w.width, w.height, w.tick, len(w.entities))
}
