package virtualworld

// RegionIndex accelerates RegionOf's linear scan with the same uniform
// grid the interest layer uses: each grid cell precomputes the region
// indices whose rectangles overlap it, so a point lookup probes only the
// handful of regions sharing its cell. Build once per partition (regions
// change only on re-partition, not per query); Lookup then matches
// RegionOf exactly, including the nearest-center fallback for points on
// the world's max edge.
type RegionIndex struct {
	geo     GridGeom
	regions []Region
	// cells[c] lists the indices of regions overlapping cell c, ascending.
	cells [][]int32
}

// NewRegionIndex builds the lookup structure for a partition of a
// width×height world.
func NewRegionIndex(regions []Region, width, height float64) *RegionIndex {
	geo := Geometry(width, height, DefaultCellSize)
	idx := &RegionIndex{
		geo:     geo,
		regions: append([]Region(nil), regions...),
		cells:   make([][]int32, geo.NumCells()),
	}
	var scratch []uint32
	for i, r := range regions {
		// Overlap test is on closed rectangles: a region whose max edge
		// coincides with a cell's min edge does not cover any of the
		// cell's points, but including it is harmless (Contains filters),
		// so the epsilon bookkeeping isn't worth it.
		scratch = geo.AppendCellsInRect(scratch[:0], r.MinX, r.MinY, r.MaxX, r.MaxY)
		for _, c := range scratch {
			idx.cells[c] = append(idx.cells[c], int32(i))
		}
	}
	return idx
}

// Lookup returns the index of the region containing the point, or the
// nearest region for the max-edge case — the same answer as
// RegionOf(regions, x, y), in O(regions-per-cell) instead of O(regions).
func (ri *RegionIndex) Lookup(x, y float64) int {
	c := ri.geo.CellOf(x, y)
	for _, i := range ri.cells[c] {
		if ri.regions[i].Contains(x, y) {
			return int(i)
		}
	}
	// Max-edge case (or a point outside every region): defer to the
	// legacy fallback so the two paths stay answer-identical.
	return RegionOf(ri.regions, x, y)
}

// NumRegions returns the number of indexed regions.
func (ri *RegionIndex) NumRegions() int { return len(ri.regions) }
