package virtualworld

import "sort"

// Replica is the supernode-side copy of the virtual world. The cloud
// computes the authoritative state and streams deltas; the replica applies
// them ("the supernodes update the virtual world" — §3.1), discarding
// stale updates by entity version, and serves snapshots to the renderer.
type Replica struct {
	width, height float64
	entities      map[EntityID]Entity
	byOwner       map[int]EntityID
	tick          uint64
	applied       int
	stale         int
}

// NewReplica creates an empty replica for a world of the given dimensions.
func NewReplica(width, height float64) *Replica {
	if width <= 0 {
		width = DefaultWidth
	}
	if height <= 0 {
		height = DefaultHeight
	}
	return &Replica{
		width: width, height: height,
		entities: make(map[EntityID]Entity),
		byOwner:  make(map[int]EntityID),
	}
}

// Apply folds one tick's deltas into the replica. Updates older than the
// replica's current version of an entity are discarded (out-of-order or
// duplicated delivery).
func (r *Replica) Apply(tick uint64, deltas []Delta) {
	if tick > r.tick {
		r.tick = tick
	}
	for _, d := range deltas {
		if d.Removed {
			r.removeEntity(d.ID)
			r.applied++
			continue
		}
		if cur, ok := r.entities[d.ID]; ok && cur.Version >= d.Entity.Version {
			r.stale++
			continue
		}
		r.setEntity(d.Entity)
		r.applied++
	}
}

// setEntity stores an entity copy, maintaining the owner index.
func (r *Replica) setEntity(e Entity) {
	r.entities[e.ID] = e
	if e.Kind == KindAvatar && e.Owner >= 0 {
		r.byOwner[e.Owner] = e.ID
	}
}

// removeEntity deletes an entity, maintaining the owner index.
func (r *Replica) removeEntity(id EntityID) {
	e, ok := r.entities[id]
	if !ok {
		return
	}
	delete(r.entities, id)
	if e.Kind == KindAvatar && e.Owner >= 0 && r.byOwner[e.Owner] == id {
		delete(r.byOwner, e.Owner)
	}
}

// AvatarPos returns the position of a player's avatar in the replica, and
// whether the replica knows it. This is what a fog derives its interest
// footprint from: the replica's view of where its attached players are.
func (r *Replica) AvatarPos(player int) (x, y float64, ok bool) {
	id, ok := r.byOwner[player]
	if !ok {
		return 0, 0, false
	}
	e, ok := r.entities[id]
	if !ok {
		return 0, 0, false
	}
	return e.X, e.Y, true
}

// ApplyCellKeyframe folds a cell-enter keyframe into the replica: deltas
// is the complete entity population of cell c (sorted by ID), so any
// replica entity inside the cell that the keyframe does not mention was
// removed while the fog was unsubscribed and is deleted here — the rule
// that makes partial world views converge without per-entity tombstones.
// The deltas then apply with the usual version staleness check.
func (r *Replica) ApplyCellKeyframe(tick uint64, geo GridGeom, c uint32, deltas []Delta) {
	if tick > r.tick {
		r.tick = tick
	}
	for id, e := range r.entities {
		if geo.CellOf(e.X, e.Y) != c {
			continue
		}
		i := sort.Search(len(deltas), func(i int) bool { return deltas[i].ID >= id })
		if i < len(deltas) && deltas[i].ID == id {
			continue
		}
		r.removeEntity(id)
		r.applied++
	}
	for _, d := range deltas {
		if d.Removed {
			r.removeEntity(d.ID)
			r.applied++
			continue
		}
		if cur, ok := r.entities[d.ID]; ok && cur.Version >= d.Entity.Version {
			r.stale++
			continue
		}
		r.setEntity(d.Entity)
		r.applied++
	}
}

// Seed initializes the replica from a full snapshot (the state transferred
// when a supernode joins).
func (r *Replica) Seed(s Snapshot) {
	r.tick = s.Tick
	r.width, r.height = s.Width, s.Height
	r.entities = make(map[EntityID]Entity, len(s.Entities))
	r.byOwner = make(map[int]EntityID)
	for _, e := range s.Entities {
		r.setEntity(e)
	}
}

// Size returns the replica's world dimensions.
func (r *Replica) Size() (width, height float64) { return r.width, r.height }

// Tick returns the latest applied tick.
func (r *Replica) Tick() uint64 { return r.tick }

// NumEntities returns the replica's entity count.
func (r *Replica) NumEntities() int { return len(r.entities) }

// AppliedDeltas returns how many deltas have been applied.
func (r *Replica) AppliedDeltas() int { return r.applied }

// StaleDeltas returns how many deltas were discarded as stale.
func (r *Replica) StaleDeltas() int { return r.stale }

// Entity returns the replica's copy of an entity and whether it exists.
func (r *Replica) Entity(id EntityID) (Entity, bool) {
	e, ok := r.entities[id]
	return e, ok
}

// Snapshot captures the replica state, sorted by entity ID.
func (r *Replica) Snapshot() Snapshot {
	out := Snapshot{Tick: r.tick, Width: r.width, Height: r.height,
		Entities: make([]Entity, 0, len(r.entities))}
	for _, e := range r.entities {
		out.Entities = append(out.Entities, e)
	}
	sort.Slice(out.Entities, func(i, j int) bool { return out.Entities[i].ID < out.Entities[j].ID })
	return out
}

// Equal reports whether two snapshots contain identical entity states —
// used to verify replica convergence.
func (s Snapshot) Equal(o Snapshot) bool {
	if len(s.Entities) != len(o.Entities) {
		return false
	}
	for i := range s.Entities {
		if s.Entities[i] != o.Entities[i] {
			return false
		}
	}
	return true
}
