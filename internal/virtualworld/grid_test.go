package virtualworld

import (
	"math/rand"
	"testing"
)

func TestGeometryCellOfClamps(t *testing.T) {
	geo := Geometry(DefaultWidth, DefaultHeight, DefaultCellSize)
	if geo.Cols != 16 || geo.Rows != 16 {
		t.Fatalf("geometry = %dx%d, want 16x16", geo.Cols, geo.Rows)
	}
	if c := geo.CellOf(0, 0); c != 0 {
		t.Fatalf("CellOf(0,0) = %d, want 0", c)
	}
	// The world's max edge (reachable via clampPos) folds into the last
	// cell rather than indexing out of range.
	if c := geo.CellOf(DefaultWidth, DefaultHeight); c != uint32(geo.NumCells()-1) {
		t.Fatalf("CellOf(max) = %d, want %d", c, geo.NumCells()-1)
	}
	if c := geo.CellOf(-5, -5); c != 0 {
		t.Fatalf("CellOf(negative) = %d, want 0", c)
	}
}

func TestGeometryCellRectPartitionsWorld(t *testing.T) {
	geo := Geometry(1000, 700, 64) // non-divisible: last col/row absorb the remainder
	for c := uint32(0); c < uint32(geo.NumCells()); c++ {
		minX, minY, maxX, maxY := geo.CellRect(c)
		if maxX <= minX || maxY <= minY {
			t.Fatalf("cell %d: degenerate rect [%g,%g)x[%g,%g)", c, minX, maxX, minY, maxY)
		}
		// Every interior point of the rect maps back to the cell.
		if got := geo.CellOf((minX+maxX)/2, (minY+maxY)/2); got != c {
			t.Fatalf("cell %d: center maps to %d", c, got)
		}
	}
	_, _, maxX, maxY := geo.CellRect(uint32(geo.NumCells() - 1))
	if maxX != 1000 || maxY != 700 {
		t.Fatalf("last cell rect ends at (%g,%g), want world edge (1000,700)", maxX, maxY)
	}
}

func TestGeometryAppendCellsInRect(t *testing.T) {
	geo := Geometry(DefaultWidth, DefaultHeight, DefaultCellSize)
	cells := geo.AppendCellsInRect(nil, 0, 0, DefaultWidth, DefaultHeight)
	if len(cells) != geo.NumCells() {
		t.Fatalf("full-world rect yields %d cells, want %d", len(cells), geo.NumCells())
	}
	for i := 1; i < len(cells); i++ {
		if cells[i] <= cells[i-1] {
			t.Fatalf("cells not ascending at %d: %d <= %d", i, cells[i], cells[i-1])
		}
	}
	// A sub-cell rect straddling a corner touches exactly the 4 cells
	// around it.
	cells = geo.AppendCellsInRect(nil, 60, 60, 70, 70)
	if len(cells) != 4 {
		t.Fatalf("corner rect yields %d cells, want 4 (%v)", len(cells), cells)
	}
	// An off-world rect clamps instead of indexing out of range.
	cells = geo.AppendCellsInRect(nil, -100, -100, -50, 2000)
	if len(cells) != geo.Rows {
		t.Fatalf("clamped rect yields %d cells, want one column of %d", len(cells), geo.Rows)
	}
}

// rebuiltGrid indexes a world's entities from scratch — the reference the
// incrementally maintained grid must match bit-for-bit.
func rebuiltGrid(w *World) *Grid {
	g := NewGrid(w.Grid().Geom())
	for _, e := range w.Entities() {
		g.Insert(e.ID, e.X, e.Y)
	}
	return g
}

// TestGridIncrementalMatchesRebuild drives a world through every mutation
// path — spawns, moves, combat kills, pickups, respawns, logouts — and
// checks after each tick that the incrementally maintained index equals a
// from-scratch rebuild.
func TestGridIncrementalMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := New(0, 0)
	for p := 0; p < 12; p++ {
		w.SpawnAvatar(p, rng.Float64()*DefaultWidth, rng.Float64()*DefaultHeight)
	}
	var npcs, items []EntityID
	for i := 0; i < 40; i++ {
		npcs = append(npcs, w.SpawnNPC(rng.Float64()*DefaultWidth, rng.Float64()*DefaultHeight).ID)
		items = append(items, w.SpawnItem(rng.Float64()*DefaultWidth, rng.Float64()*DefaultHeight).ID)
	}
	for tick := 0; tick < 200; tick++ {
		var actions []Action
		for p := 0; p < 12; p++ {
			switch rng.Intn(4) {
			case 0:
				actions = append(actions, Action{Player: p, Kind: ActMove,
					TargetX: rng.Float64() * DefaultWidth, TargetY: rng.Float64() * DefaultHeight})
			case 1:
				actions = append(actions, Action{Player: p, Kind: ActAttack,
					TargetEntity: npcs[rng.Intn(len(npcs))]})
			case 2:
				actions = append(actions, Action{Player: p, Kind: ActPickUp,
					TargetEntity: items[rng.Intn(len(items))]})
			case 3:
				actions = append(actions, Action{Player: p, Kind: ActEmote, StateTag: uint8(tick)})
			}
		}
		w.Step(actions)
		if tick == 100 {
			w.RemovePlayer(3)
			w.SpawnAvatar(3, 10, 10)
		}
		if got, want := w.Grid().Digest(), rebuiltGrid(w).Digest(); got != want {
			t.Fatalf("tick %d: incremental grid digest %x != rebuilt %x", tick, got, want)
		}
		if w.Grid().Len() != w.NumEntities() {
			t.Fatalf("tick %d: grid has %d entities, world has %d", tick, w.Grid().Len(), w.NumEntities())
		}
	}
}

// TestRestoreRebuildsGridBitIdentical is the checkpoint equivalence
// argument: the grid is derived state, so a world restored from a
// snapshot re-derives an index bit-identical to the primary's without the
// checkpoint carrying it.
func TestRestoreRebuildsGridBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := New(0, 0)
	for p := 0; p < 8; p++ {
		w.SpawnAvatar(p, rng.Float64()*DefaultWidth, rng.Float64()*DefaultHeight)
	}
	for i := 0; i < 30; i++ {
		w.SpawnNPC(rng.Float64()*DefaultWidth, rng.Float64()*DefaultHeight)
	}
	for tick := 0; tick < 50; tick++ {
		var actions []Action
		for p := 0; p < 8; p++ {
			actions = append(actions, Action{Player: p, Kind: ActMove,
				TargetX: rng.Float64() * DefaultWidth, TargetY: rng.Float64() * DefaultHeight})
		}
		w.Step(actions)
	}
	restored := Restore(w.Snapshot(), w.NextID())
	if got, want := restored.Grid().Digest(), w.Grid().Digest(); got != want {
		t.Fatalf("restored grid digest %x != primary %x", got, want)
	}
	// SetEntity/RemoveEntity (delta-log replay) keep the index in step too.
	e := w.SpawnNPC(500, 500)
	restored.SetEntity(*e)
	w.Step([]Action{{Player: 0, Kind: ActMove, TargetX: 0, TargetY: 0}})
	restored.SetEntity(*w.Avatar(0))
	restored.SetTick(w.Tick())
	w.RemoveEntity(e.ID)
	restored.RemoveEntity(e.ID)
	if got, want := restored.Grid().Digest(), w.Grid().Digest(); got != want {
		t.Fatalf("after replay ops: restored grid digest %x != primary %x", got, want)
	}
}

func TestGridAppendCellSorted(t *testing.T) {
	g := NewGrid(Geometry(DefaultWidth, DefaultHeight, DefaultCellSize))
	// Insert out of ID order into one cell.
	for _, id := range []EntityID{9, 3, 7, 1, 5} {
		g.Insert(id, 10, 10)
	}
	ids := g.AppendCell(nil, g.Geom().CellOf(10, 10))
	want := []EntityID{1, 3, 5, 7, 9}
	if len(ids) != len(want) {
		t.Fatalf("cell has %d ids, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("cell ids = %v, want %v", ids, want)
		}
	}
	g.Remove(5, 10, 10)
	if g.CellLen(g.Geom().CellOf(10, 10)) != 4 || g.Len() != 4 {
		t.Fatalf("after remove: cell len %d grid len %d, want 4/4", g.CellLen(g.Geom().CellOf(10, 10)), g.Len())
	}
	// Cross-cell move relocates, same-cell move is a no-op.
	g.Move(1, 10, 10, 900, 900)
	if g.CellLen(g.Geom().CellOf(900, 900)) != 1 {
		t.Fatal("cross-cell move did not relocate")
	}
	g.Move(3, 10, 10, 12, 12)
	if g.CellLen(g.Geom().CellOf(10, 10)) != 3 {
		t.Fatal("same-cell move changed occupancy")
	}
}

func TestReplicaAvatarPos(t *testing.T) {
	r := NewReplica(0, 0)
	if _, _, ok := r.AvatarPos(4); ok {
		t.Fatal("empty replica reports an avatar")
	}
	r.Apply(1, []Delta{{ID: 2, Entity: Entity{ID: 2, Kind: KindAvatar, Owner: 4, X: 100, Y: 200, Version: 1}}})
	x, y, ok := r.AvatarPos(4)
	if !ok || x != 100 || y != 200 {
		t.Fatalf("AvatarPos = (%g,%g,%v), want (100,200,true)", x, y, ok)
	}
	r.Apply(2, []Delta{{ID: 2, Removed: true}})
	if _, _, ok := r.AvatarPos(4); ok {
		t.Fatal("removed avatar still reported")
	}
}

func TestReplicaApplyCellKeyframe(t *testing.T) {
	geo := Geometry(DefaultWidth, DefaultHeight, DefaultCellSize)
	r := NewReplica(0, 0)
	// Stale view of cell (10,10): entities 1 and 2 in-cell, 3 elsewhere.
	r.Apply(1, []Delta{
		{ID: 1, Entity: Entity{ID: 1, Kind: KindNPC, Owner: -1, X: 10, Y: 10, Version: 5}},
		{ID: 2, Entity: Entity{ID: 2, Kind: KindItem, Owner: -1, X: 20, Y: 20, Version: 1}},
		{ID: 3, Entity: Entity{ID: 3, Kind: KindNPC, Owner: -1, X: 500, Y: 500, Version: 1}},
	})
	// Keyframe for the cell: entity 1 moved (newer version), entity 2 is
	// gone, entity 4 appeared. Entity 3 is out-of-cell and must survive.
	c := geo.CellOf(10, 10)
	r.ApplyCellKeyframe(9, geo, c, []Delta{
		{ID: 1, Entity: Entity{ID: 1, Kind: KindNPC, Owner: -1, X: 12, Y: 10, Version: 6}},
		{ID: 4, Entity: Entity{ID: 4, Kind: KindItem, Owner: -1, X: 30, Y: 30, Version: 2}},
	})
	if r.Tick() != 9 {
		t.Fatalf("tick = %d, want 9", r.Tick())
	}
	if _, ok := r.Entity(2); ok {
		t.Fatal("entity 2 not pruned by keyframe")
	}
	if e, ok := r.Entity(1); !ok || e.X != 12 || e.Version != 6 {
		t.Fatalf("entity 1 = %+v, want updated copy", e)
	}
	if _, ok := r.Entity(4); !ok {
		t.Fatal("entity 4 not added by keyframe")
	}
	if _, ok := r.Entity(3); !ok {
		t.Fatal("out-of-cell entity 3 pruned")
	}
	// A keyframe never resurrects staleness: an older version in the
	// keyframe loses to a newer replica copy.
	r.ApplyCellKeyframe(10, geo, c, []Delta{
		{ID: 1, Entity: Entity{ID: 1, Kind: KindNPC, Owner: -1, X: 0, Y: 0, Version: 3}},
		{ID: 4, Entity: Entity{ID: 4, Kind: KindItem, Owner: -1, X: 30, Y: 30, Version: 2}},
	})
	if e, _ := r.Entity(1); e.Version != 6 {
		t.Fatalf("stale keyframe overwrote entity 1: %+v", e)
	}
}

func TestRegionIndexMatchesRegionOf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := New(0, 0)
	for p := 0; p < 64; p++ {
		w.SpawnAvatar(p, rng.Float64()*DefaultWidth, rng.Float64()*DefaultHeight)
	}
	for _, n := range []int{1, 2, 7, 16, 33} {
		regions := PartitionKD(w.Snapshot(), n)
		idx := NewRegionIndex(regions, DefaultWidth, DefaultHeight)
		for i := 0; i < 2000; i++ {
			x := rng.Float64() * DefaultWidth
			y := rng.Float64() * DefaultHeight
			if got, want := idx.Lookup(x, y), RegionOf(regions, x, y); got != want {
				t.Fatalf("n=%d (%g,%g): Lookup=%d RegionOf=%d", n, x, y, got, want)
			}
		}
		// Max-edge and corner cases hit the shared fallback.
		for _, pt := range [][2]float64{{DefaultWidth, DefaultHeight}, {DefaultWidth, 5}, {5, DefaultHeight}, {0, 0}} {
			if got, want := idx.Lookup(pt[0], pt[1]), RegionOf(regions, pt[0], pt[1]); got != want {
				t.Fatalf("n=%d edge (%g,%g): Lookup=%d RegionOf=%d", n, pt[0], pt[1], got, want)
			}
		}
	}
}

func BenchmarkGridMove(b *testing.B) {
	g := NewGrid(Geometry(DefaultWidth, DefaultHeight, DefaultCellSize))
	for id := EntityID(1); id <= 1024; id++ {
		g.Insert(id, float64(id%1024), float64((id*7)%1024))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := EntityID(i%1024 + 1)
		ox, oy := float64(id%1024), float64((id*7)%1024)
		g.Move(id, ox, oy, ox+MoveSpeed, oy)
		g.Move(id, ox+MoveSpeed, oy, ox, oy)
	}
}

// BenchmarkRegionOf is the legacy linear scan; BenchmarkRegionIndexLookup
// is the grid-accelerated replacement. Same query stream on a 64-region
// partition.
func regionBenchSetup() ([]Region, *RegionIndex, *rand.Rand) {
	rng := rand.New(rand.NewSource(5))
	w := New(0, 0)
	for p := 0; p < 256; p++ {
		w.SpawnAvatar(p, rng.Float64()*DefaultWidth, rng.Float64()*DefaultHeight)
	}
	regions := PartitionKD(w.Snapshot(), 64)
	return regions, NewRegionIndex(regions, DefaultWidth, DefaultHeight), rng
}

func BenchmarkRegionOf(b *testing.B) {
	regions, _, rng := regionBenchSetup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RegionOf(regions, rng.Float64()*DefaultWidth, rng.Float64()*DefaultHeight)
	}
}

func BenchmarkRegionIndexLookup(b *testing.B) {
	_, idx, rng := regionBenchSetup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Lookup(rng.Float64()*DefaultWidth, rng.Float64()*DefaultHeight)
	}
}
