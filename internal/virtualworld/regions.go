package virtualworld

import (
	"math"
	"sort"
)

// Region is an axis-aligned rectangle of the virtual world, the unit of
// server load balancing.
type Region struct {
	// MinX, MinY, MaxX, MaxY bound the region (max-exclusive except at
	// the world edge).
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether the point lies in the region.
func (r Region) Contains(x, y float64) bool {
	return x >= r.MinX && x < r.MaxX && y >= r.MinY && y < r.MaxY
}

// Area returns the region's area.
func (r Region) Area() float64 { return (r.MaxX - r.MinX) * (r.MaxY - r.MinY) }

// PartitionKD splits the world into n regions with a kd-tree over the
// avatar positions, the load-balancing mechanism of Bezerra et al. that
// MMOG server farms use: each split halves the heaviest region along its
// longer axis at the median avatar, so every region carries a comparable
// number of avatars. n is rounded down to a reachable region count
// (at least 1).
func PartitionKD(s Snapshot, n int) []Region {
	if n < 1 {
		n = 1
	}
	type node struct {
		region  Region
		avatars []Entity
	}
	var avatars []Entity
	for _, e := range s.Entities {
		if e.Kind == KindAvatar {
			avatars = append(avatars, e)
		}
	}
	root := node{
		region:  Region{MinX: 0, MinY: 0, MaxX: s.Width, MaxY: s.Height},
		avatars: avatars,
	}
	nodes := []node{root}
	for len(nodes) < n {
		// Split the region with the most avatars; stop when nothing is
		// splittable.
		best := -1
		for i, nd := range nodes {
			if len(nd.avatars) >= 2 && (best < 0 || len(nd.avatars) > len(nodes[best].avatars)) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		nd := nodes[best]
		r := nd.region
		vertical := (r.MaxX - r.MinX) >= (r.MaxY - r.MinY)
		sorted := append([]Entity(nil), nd.avatars...)
		if vertical {
			sort.Slice(sorted, func(i, j int) bool { return sorted[i].X < sorted[j].X })
		} else {
			sort.Slice(sorted, func(i, j int) bool { return sorted[i].Y < sorted[j].Y })
		}
		mid := len(sorted) / 2
		var cut float64
		if vertical {
			cut = (sorted[mid-1].X + sorted[mid].X) / 2
			if cut <= r.MinX || cut >= r.MaxX {
				cut = (r.MinX + r.MaxX) / 2
			}
		} else {
			cut = (sorted[mid-1].Y + sorted[mid].Y) / 2
			if cut <= r.MinY || cut >= r.MaxY {
				cut = (r.MinY + r.MaxY) / 2
			}
		}
		var left, right node
		if vertical {
			left.region = Region{MinX: r.MinX, MinY: r.MinY, MaxX: cut, MaxY: r.MaxY}
			right.region = Region{MinX: cut, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
		} else {
			left.region = Region{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: cut}
			right.region = Region{MinX: r.MinX, MinY: cut, MaxX: r.MaxX, MaxY: r.MaxY}
		}
		for _, a := range nd.avatars {
			if left.region.Contains(a.X, a.Y) {
				left.avatars = append(left.avatars, a)
			} else {
				right.avatars = append(right.avatars, a)
			}
		}
		nodes[best] = left
		nodes = append(nodes, right)
	}
	out := make([]Region, len(nodes))
	for i, nd := range nodes {
		out[i] = nd.region
	}
	return out
}

// RegionOf returns the index of the region containing the point, or the
// nearest region when the point sits exactly on the world's max edge.
func RegionOf(regions []Region, x, y float64) int {
	for i, r := range regions {
		if r.Contains(x, y) {
			return i
		}
	}
	// Max-edge case: pick the region whose center is closest.
	best, bestD := 0, math.Inf(1)
	for i, r := range regions {
		cx, cy := (r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2
		if d := math.Hypot(cx-x, cy-y); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Viewport is a player's view into the world: the basis of interest
// management ("renders game video for n_i based on n_i's viewing position
// and angle") and of the view-dependent work supernodes do.
type Viewport struct {
	// CenterX, CenterY is the view center (usually the avatar position).
	CenterX, CenterY float64
	// HalfWidth, HalfHeight are the view extents.
	HalfWidth, HalfHeight float64
}

// Contains reports whether an entity position is visible.
func (v Viewport) Contains(x, y float64) bool {
	return math.Abs(x-v.CenterX) <= v.HalfWidth && math.Abs(y-v.CenterY) <= v.HalfHeight
}

// VisibleEntities returns the snapshot entities inside the viewport,
// sorted by ID — the interest set a supernode renders (and the only
// entities whose updates matter for that player, the content-adaptation
// insight of Hemmati et al. the paper cites).
func VisibleEntities(s Snapshot, v Viewport) []Entity {
	return AppendVisibleEntities(nil, s, v)
}

// AppendVisibleEntities appends the snapshot's entities inside the
// viewport to dst and returns the extended slice; with enough capacity it
// does not allocate. The renderer's per-frame culling uses this with a
// reused scratch slice.
func AppendVisibleEntities(dst []Entity, s Snapshot, v Viewport) []Entity {
	for _, e := range s.Entities {
		if v.Contains(e.X, e.Y) {
			dst = append(dst, e)
		}
	}
	return dst
}

// FilterDeltas returns only the deltas that matter to the viewport:
// changes of visible entities plus all removals (cheap to apply, avoids
// ghosts). This is the interest-managed update stream a bandwidth-aware
// cloud sends per supernode neighborhood.
func FilterDeltas(deltas []Delta, v Viewport) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Removed || v.Contains(d.Entity.X, d.Entity.Y) {
			out = append(out, d)
		}
	}
	return out
}
