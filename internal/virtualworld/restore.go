package virtualworld

import "slices"

// This file is the checkpoint/restore surface of the world: everything the
// cloud tier needs to snapshot the authoritative state without allocating
// on the tick path and to rebuild a bit-identical World on a warm standby
// (internal/checkpoint drives these; see DESIGN.md §12).

// NextID returns the next entity ID the world will assign. It is part of
// the checkpointed state: after entity removals, max(ID)+1 under-counts,
// so a restored world must carry the allocator position explicitly to
// keep post-restore spawns bit-identical to the primary's.
func (w *World) NextID() EntityID { return w.nextID }

// SetNextID moves the entity ID allocator. Used by delta-log replay; it
// never moves backwards past an existing entity's ID.
func (w *World) SetNextID(id EntityID) {
	if id > w.nextID {
		w.nextID = id
		return
	}
	w.nextID = id
	for eid := range w.entities {
		if eid >= w.nextID {
			w.nextID = eid + 1
		}
	}
}

// SetTick moves the tick counter (delta-log replay).
func (w *World) SetTick(tick uint64) { w.tick = tick }

// SetEntity inserts or overwrites an entity with a full post-change copy,
// maintaining the owner index. This is how a standby folds logged deltas
// (which carry complete entity states) into a restored world.
func (w *World) SetEntity(e Entity) {
	c := e
	if old, ok := w.entities[c.ID]; ok {
		w.grid.Move(c.ID, old.X, old.Y, c.X, c.Y)
	} else {
		w.grid.Insert(c.ID, c.X, c.Y)
	}
	w.entities[c.ID] = &c
	if c.Kind == KindAvatar && c.Owner >= 0 {
		w.byOwner[c.Owner] = c.ID
	}
	if c.ID >= w.nextID {
		w.nextID = c.ID + 1
	}
}

// RemoveEntity deletes an entity by ID, maintaining the owner index.
func (w *World) RemoveEntity(id EntityID) {
	e, ok := w.entities[id]
	if !ok {
		return
	}
	w.grid.Remove(id, e.X, e.Y)
	delete(w.entities, id)
	if e.Kind == KindAvatar && e.Owner >= 0 && w.byOwner[e.Owner] == id {
		delete(w.byOwner, e.Owner)
	}
}

// Restore rebuilds an authoritative World from a snapshot plus the ID
// allocator position. The result is bit-identical to the world the
// snapshot was taken from: same entities, same owner index, same tick,
// same next ID — so a promoted standby continues the exact state machine.
func Restore(s Snapshot, nextID EntityID) *World {
	w := New(s.Width, s.Height)
	w.tick = s.Tick
	for _, e := range s.Entities {
		w.SetEntity(e)
	}
	if nextID > w.nextID {
		w.nextID = nextID
	}
	return w
}

// SnapshotInto captures the current state into s, reusing s.Entities'
// backing array. Once capacity stabilizes this performs zero allocations,
// which keeps the checkpoint encode off the tick-path allocation budget.
func (w *World) SnapshotInto(s *Snapshot) {
	s.Tick = w.tick
	s.Width, s.Height = w.width, w.height
	s.Entities = s.Entities[:0]
	for _, e := range w.entities {
		s.Entities = append(s.Entities, *e)
	}
	slices.SortFunc(s.Entities, func(a, b Entity) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
}
