package virtualworld

import (
	"math"
	"testing"

	"cloudfog/internal/rng"
)

func crowdedSnapshot(t *testing.T, n int, seed uint64) Snapshot {
	t.Helper()
	r := rng.New(seed)
	w := New(1024, 1024)
	for p := 1; p <= n; p++ {
		// Clustered population: half in one corner, half spread out.
		if r.Bool(0.5) {
			w.SpawnAvatar(p, r.Uniform(0, 200), r.Uniform(0, 200))
		} else {
			w.SpawnAvatar(p, r.Uniform(0, 1024), r.Uniform(0, 1024))
		}
	}
	return w.Snapshot()
}

func TestPartitionKDCoversWorld(t *testing.T) {
	s := crowdedSnapshot(t, 100, 1)
	regions := PartitionKD(s, 8)
	if len(regions) != 8 {
		t.Fatalf("regions = %d", len(regions))
	}
	// Total area equals the world's.
	var area float64
	for _, r := range regions {
		if r.Area() <= 0 {
			t.Fatalf("degenerate region %+v", r)
		}
		area += r.Area()
	}
	if math.Abs(area-1024*1024) > 1e-6 {
		t.Errorf("areas sum to %v", area)
	}
	// Every avatar belongs to exactly one region.
	for _, e := range s.Entities {
		count := 0
		for _, r := range regions {
			if r.Contains(e.X, e.Y) {
				count++
			}
		}
		if count != 1 && e.X < 1024 && e.Y < 1024 {
			t.Fatalf("entity at %v,%v in %d regions", e.X, e.Y, count)
		}
	}
}

func TestPartitionKDBalances(t *testing.T) {
	s := crowdedSnapshot(t, 400, 2)
	regions := PartitionKD(s, 8)
	counts := make([]int, len(regions))
	for _, e := range s.Entities {
		counts[RegionOf(regions, e.X, e.Y)]++
	}
	minC, maxC := counts[0], counts[0]
	for _, c := range counts {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	// The kd split balances load: no region should carry more than ~3x
	// the lightest (uniform grid over this clustered population would be
	// far worse).
	if maxC > 3*minC+5 {
		t.Errorf("kd partition unbalanced: min=%d max=%d", minC, maxC)
	}
}

func TestPartitionKDEdgeCases(t *testing.T) {
	empty := Snapshot{Width: 100, Height: 100}
	if got := PartitionKD(empty, 4); len(got) != 1 {
		t.Errorf("empty world split into %d regions", len(got))
	}
	if got := PartitionKD(empty, 0); len(got) != 1 {
		t.Errorf("n=0 produced %d regions", len(got))
	}
	w := New(100, 100)
	w.SpawnAvatar(1, 50, 50)
	if got := PartitionKD(w.Snapshot(), 4); len(got) != 1 {
		t.Errorf("single avatar split into %d regions", len(got))
	}
}

func TestRegionOfMaxEdge(t *testing.T) {
	s := crowdedSnapshot(t, 50, 3)
	regions := PartitionKD(s, 4)
	// The exact max corner is contained by no region (max-exclusive);
	// RegionOf must still return a valid index.
	idx := RegionOf(regions, 1024, 1024)
	if idx < 0 || idx >= len(regions) {
		t.Errorf("max-edge region = %d", idx)
	}
}

func TestViewport(t *testing.T) {
	v := Viewport{CenterX: 100, CenterY: 100, HalfWidth: 50, HalfHeight: 30}
	if !v.Contains(100, 100) || !v.Contains(150, 130) {
		t.Error("viewport excludes interior points")
	}
	if v.Contains(151, 100) || v.Contains(100, 131) {
		t.Error("viewport includes exterior points")
	}
}

func TestVisibleEntities(t *testing.T) {
	w := New(400, 400)
	w.SpawnAvatar(1, 100, 100)
	w.SpawnNPC(120, 110)
	w.SpawnNPC(350, 350)
	v := Viewport{CenterX: 100, CenterY: 100, HalfWidth: 60, HalfHeight: 60}
	vis := VisibleEntities(w.Snapshot(), v)
	if len(vis) != 2 {
		t.Fatalf("visible = %d, want 2", len(vis))
	}
	for i := 1; i < len(vis); i++ {
		if vis[i].ID <= vis[i-1].ID {
			t.Fatal("visible entities not sorted")
		}
	}
}

func TestFilterDeltas(t *testing.T) {
	v := Viewport{CenterX: 0, CenterY: 0, HalfWidth: 10, HalfHeight: 10}
	deltas := []Delta{
		{ID: 1, Entity: Entity{ID: 1, X: 5, Y: 5}},     // visible
		{ID: 2, Entity: Entity{ID: 2, X: 500, Y: 500}}, // invisible
		{ID: 3, Removed: true},                         // always kept
	}
	got := FilterDeltas(deltas, v)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Errorf("filtered = %+v", got)
	}
}
