package virtualworld

import "testing"

// buildBusyWorld produces a world with spawn/remove history so that the
// ID allocator is ahead of max(ID)+1 in interesting ways.
func buildBusyWorld() *World {
	w := New(256, 256)
	w.SpawnAvatar(1, 10, 10)
	w.SpawnAvatar(2, 50, 50)
	npc := w.SpawnNPC(30, 30)
	w.SpawnItem(12, 12)
	w.SpawnItem(60, 60)
	// Kill the NPC through combat so it is removed mid-sequence.
	for i := 0; i < 12; i++ {
		w.Step([]Action{
			{Player: 1, Kind: ActMove, TargetX: 30, TargetY: 30},
			{Player: 2, Kind: ActAttack, TargetEntity: npc.ID},
		})
	}
	w.SpawnAvatar(3, 100, 100) // allocated after the removal
	w.Step([]Action{{Player: 3, Kind: ActEmote, StateTag: 2}})
	return w
}

func TestRestoreBitIdentical(t *testing.T) {
	w := buildBusyWorld()
	snap := w.Snapshot()
	r := Restore(snap, w.NextID())

	if !r.Snapshot().Equal(snap) {
		t.Fatal("restored snapshot differs from source")
	}
	if r.Tick() != w.Tick() {
		t.Fatalf("tick: got %d want %d", r.Tick(), w.Tick())
	}
	if r.NextID() != w.NextID() {
		t.Fatalf("nextID: got %d want %d", r.NextID(), w.NextID())
	}

	// The state machines must stay in lockstep: identical inputs produce
	// identical deltas and identical follow-on spawns.
	acts := []Action{
		{Player: 1, Kind: ActMove, TargetX: 5, TargetY: 5},
		{Player: 3, Kind: ActEmote, StateTag: 7},
	}
	d1, d2 := w.Step(acts), r.Step(acts)
	if len(d1) != len(d2) {
		t.Fatalf("delta count diverged: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("delta %d diverged: %+v vs %+v", i, d1[i], d2[i])
		}
	}
	a1, a2 := w.SpawnAvatar(9, 1, 1), r.SpawnAvatar(9, 1, 1)
	if *a1 != *a2 {
		t.Fatalf("post-restore spawn diverged: %+v vs %+v", *a1, *a2)
	}
}

func TestSetEntityRemoveEntityMaintainIndexes(t *testing.T) {
	w := New(0, 0)
	av := Entity{ID: 7, Kind: KindAvatar, Owner: 3, X: 1, Y: 2, HP: 50, Version: 4}
	w.SetEntity(av)
	if got := w.Avatar(3); got == nil || got.ID != 7 {
		t.Fatalf("owner index not maintained: %+v", got)
	}
	if w.NextID() != 8 {
		t.Fatalf("nextID not advanced past inserted ID: %d", w.NextID())
	}
	// Overwrite with a newer version: same identity, updated state.
	av.HP = 10
	av.Version = 9
	w.SetEntity(av)
	if got := w.Entity(7); got.HP != 10 || got.Version != 9 {
		t.Fatalf("overwrite lost state: %+v", got)
	}
	w.RemoveEntity(7)
	if w.Avatar(3) != nil {
		t.Fatal("owner index kept a removed avatar")
	}
	if w.Entity(7) != nil {
		t.Fatal("entity survived removal")
	}
	// Removing a non-existent ID is a no-op.
	w.RemoveEntity(99)
}

func TestSetNextIDNeverOrphansAllocator(t *testing.T) {
	w := New(0, 0)
	w.SpawnNPC(1, 1) // ID 1
	w.SpawnNPC(2, 2) // ID 2
	w.SetNextID(1)   // attempt to move backwards past a live entity
	if w.NextID() != 3 {
		t.Fatalf("allocator moved behind a live ID: %d", w.NextID())
	}
	w.SetNextID(40)
	if w.NextID() != 40 {
		t.Fatalf("allocator did not advance: %d", w.NextID())
	}
}

func TestSnapshotIntoMatchesSnapshotAndReusesMemory(t *testing.T) {
	w := buildBusyWorld()
	want := w.Snapshot()

	var s Snapshot
	w.SnapshotInto(&s)
	if !s.Equal(want) || s.Tick != want.Tick || s.Width != want.Width || s.Height != want.Height {
		t.Fatal("SnapshotInto differs from Snapshot")
	}

	// Steady state: repeat captures into the same Snapshot allocate nothing.
	allocs := testing.AllocsPerRun(100, func() { w.SnapshotInto(&s) })
	if allocs != 0 {
		t.Fatalf("SnapshotInto allocated %v/op at steady state", allocs)
	}
}
