package virtualworld

import (
	"testing"

	"cloudfog/internal/rng"
)

// BenchmarkStep measures one authoritative world tick with 200 acting
// avatars — the cloud's per-tick computation cost.
func BenchmarkStep(b *testing.B) {
	r := rng.New(1)
	w := New(1024, 1024)
	for p := 1; p <= 200; p++ {
		w.SpawnAvatar(p, r.Uniform(0, 1024), r.Uniform(0, 1024))
	}
	actions := make([]Action, 0, 200)
	for p := 1; p <= 200; p++ {
		actions = append(actions, Action{
			Player: p, Kind: ActMove,
			TargetX: r.Uniform(0, 1024), TargetY: r.Uniform(0, 1024),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step(actions)
	}
}

// BenchmarkReplicaApply measures the supernode-side cost of folding one
// tick's deltas into a replica.
func BenchmarkReplicaApply(b *testing.B) {
	r := rng.New(2)
	w := New(1024, 1024)
	for p := 1; p <= 200; p++ {
		w.SpawnAvatar(p, r.Uniform(0, 1024), r.Uniform(0, 1024))
	}
	var actions []Action
	for p := 1; p <= 200; p++ {
		actions = append(actions, Action{Player: p, Kind: ActMove, TargetX: 500, TargetY: 500})
	}
	deltas := w.Step(actions)
	rep := NewReplica(1024, 1024)
	rep.Seed(w.Snapshot())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.Apply(w.Tick(), deltas)
	}
}

// BenchmarkPartitionKD measures the kd-tree region split over 2,000
// avatars.
func BenchmarkPartitionKD(b *testing.B) {
	r := rng.New(3)
	w := New(1024, 1024)
	for p := 1; p <= 2000; p++ {
		w.SpawnAvatar(p, r.Uniform(0, 1024), r.Uniform(0, 1024))
	}
	s := w.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PartitionKD(s, 16)
	}
}
