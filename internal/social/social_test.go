package social

import (
	"math"
	"testing"
	"testing/quick"

	"cloudfog/internal/rng"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	if g.N() != 4 || g.NumEdges() != 0 {
		t.Fatal("fresh graph malformed")
	}
	if !g.AddEdge(0, 1) {
		t.Error("AddEdge(0,1) failed")
	}
	if g.AddEdge(0, 1) || g.AddEdge(1, 0) {
		t.Error("duplicate edge accepted")
	}
	if g.AddEdge(2, 2) {
		t.Error("self-loop accepted")
	}
	if g.AddEdge(-1, 0) || g.AddEdge(0, 4) {
		t.Error("out-of-range edge accepted")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge not symmetric")
	}
	if g.HasEdge(0, 2) || g.HasEdge(-1, 5) {
		t.Error("phantom edge")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Error("degree wrong")
	}
	if fs := g.Friends(0); len(fs) != 1 || fs[0] != 1 {
		t.Errorf("Friends(0) = %v", fs)
	}
}

func TestGenerateProperties(t *testing.T) {
	g := Generate(GenerateConfig{N: 2000, Skew: 1.5}, rng.New(1))
	if g.N() != 2000 {
		t.Fatalf("N = %d", g.N())
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges generated")
	}
	meanDeg := float64(2*g.NumEdges()) / 2000
	if meanDeg < 2 || meanDeg > 20 {
		t.Errorf("mean degree %v implausible", meanDeg)
	}
	// Power-law: some players must have far more friends than the mean.
	maxDeg := 0
	for i := 0; i < 2000; i++ {
		if d := g.Degree(i); d > maxDeg {
			maxDeg = d
		}
	}
	if float64(maxDeg) < 3*meanDeg {
		t.Errorf("degree distribution lacks a tail: max %d mean %v", maxDeg, meanDeg)
	}
}

func TestGenerateGuildsAreCommunities(t *testing.T) {
	// The planted guild structure must make a guild-aligned partition far
	// more modular than a random one.
	r := rng.New(2)
	cfg := GenerateConfig{N: 1000, Skew: 1.5, GuildSizeMin: 20, GuildSizeMax: 20}
	g := Generate(cfg, r)
	guildOf := make([]int, 1000)
	for i := range guildOf {
		guildOf[i] = i / 20
	}
	z := 50
	guildGamma := Modularity(g, guildOf, z)
	random := make([]int, 1000)
	for i := range random {
		random[i] = r.Intn(z)
	}
	randomGamma := Modularity(g, random, z)
	if guildGamma < 0.4 {
		t.Errorf("guild partition modularity %v too low", guildGamma)
	}
	if guildGamma <= randomGamma+0.2 {
		t.Errorf("guild partition (%v) not clearly better than random (%v)", guildGamma, randomGamma)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenerateConfig{N: 300}, rng.New(9))
	b := Generate(GenerateConfig{N: 300}, rng.New(9))
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i := 0; i < 300; i++ {
		if a.Degree(i) != b.Degree(i) {
			t.Fatalf("degrees differ at %d", i)
		}
	}
}

func TestGenerateTiny(t *testing.T) {
	if g := Generate(GenerateConfig{N: 0}, rng.New(1)); g.N() != 0 {
		t.Error("empty graph mishandled")
	}
	if g := Generate(GenerateConfig{N: 1}, rng.New(1)); g.NumEdges() != 0 {
		t.Error("single-node graph has edges")
	}
	g := Generate(GenerateConfig{N: 2}, rng.New(1))
	if g.N() != 2 {
		t.Error("two-node graph malformed")
	}
}

func TestModularityBoundsProperty(t *testing.T) {
	// Property: modularity of any partition lies in [-1, 1].
	f := func(seed uint64, zRaw uint8) bool {
		r := rng.New(seed)
		g := Generate(GenerateConfig{N: 120}, r)
		z := int(zRaw%12) + 1
		community := make([]int, 120)
		for i := range community {
			community[i] = r.Intn(z)
		}
		gamma := Modularity(g, community, z)
		return gamma >= -1-1e-9 && gamma <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestModularitySingleCommunityIsZero(t *testing.T) {
	g := Generate(GenerateConfig{N: 100}, rng.New(3))
	community := make([]int, 100) // all zeros
	// tr(Q)=1, ||Q^2|| = 1 -> Γ = 0 for the trivial partition.
	if gamma := Modularity(g, community, 1); math.Abs(gamma) > 1e-9 {
		t.Errorf("single-community modularity = %v, want 0", gamma)
	}
}

func TestModularityEdgeCases(t *testing.T) {
	g := NewGraph(5)
	if Modularity(g, make([]int, 5), 2) != 0 {
		t.Error("edgeless graph modularity != 0")
	}
	g.AddEdge(0, 1)
	if Modularity(g, []int{0, 0, 1, 1, 1}, 0) != 0 {
		t.Error("z=0 modularity != 0")
	}
	// Out-of-range community labels are skipped, not panicking.
	_ = Modularity(g, []int{-1, 7, 0, 0, 0}, 2)
}

func TestModularityPerfectSplit(t *testing.T) {
	// Two disconnected cliques split into their own communities: Γ = 1/2
	// for equal halves (1 - sum p_a^2 = 1 - 2*(1/2)^2).
	g := NewGraph(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
			g.AddEdge(i+4, j+4)
		}
	}
	community := []int{0, 0, 0, 0, 1, 1, 1, 1}
	if gamma := Modularity(g, community, 2); math.Abs(gamma-0.5) > 1e-9 {
		t.Errorf("perfect split modularity = %v, want 0.5", gamma)
	}
}

func TestCoPlayRecorder(t *testing.T) {
	c := NewCoPlayRecorder(2, 7)
	c.Record(1, 2, 0)
	c.Record(2, 1, 1) // symmetric pair key
	c.Record(1, 2, 2)
	if got := c.CoPlayCount(1, 2, 3); got != 3 {
		t.Errorf("CoPlayCount = %d", got)
	}
	if got := c.CoPlayCount(2, 1, 3); got != 3 {
		t.Errorf("CoPlayCount not symmetric: %d", got)
	}
	if !c.ImplicitFriends(1, 2, 3) {
		t.Error("3 > 2 co-plays should be implicit friends")
	}
	// Outside the window the events age out.
	if c.ImplicitFriends(1, 2, 20) {
		t.Error("stale co-plays still counted")
	}
	c.Record(3, 3, 0) // self-records ignored
	if c.CoPlayCount(3, 3, 0) != 0 {
		t.Error("self co-play recorded")
	}
}

func TestCoPlayDefaults(t *testing.T) {
	c := NewCoPlayRecorder(0, 0)
	if c.Threshold != 3 || c.WindowDays != 7 {
		t.Errorf("defaults: %d, %d", c.Threshold, c.WindowDays)
	}
}

func TestCoPlayPrune(t *testing.T) {
	c := NewCoPlayRecorder(1, 7)
	c.Record(1, 2, 0)
	c.Record(1, 2, 10)
	c.Prune(12)
	if got := c.CoPlayCount(1, 2, 12); got != 1 {
		t.Errorf("after prune count = %d", got)
	}
}

func TestAugmentGraph(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1)
	c := NewCoPlayRecorder(2, 7)
	for day := 0; day < 3; day++ {
		c.Record(2, 3, day)
	}
	c.Record(3, 4, 0) // below threshold
	aug := c.AugmentGraph(g, 3)
	if !aug.HasEdge(0, 1) {
		t.Error("explicit friendship lost")
	}
	if !aug.HasEdge(2, 3) {
		t.Error("implicit friendship not added")
	}
	if aug.HasEdge(3, 4) {
		t.Error("sub-threshold pair became friends")
	}
	if g.HasEdge(2, 3) {
		t.Error("AugmentGraph mutated the original")
	}
}
