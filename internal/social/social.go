// Package social models the player social network of the CloudFog paper:
// explicit in-game friendships, implicit friendships inferred from co-play
// records, and the Newman–Girvan modularity measure (Eq. 13) that the
// social-network-based server assignment optimizes.
package social

import (
	"sort"

	"cloudfog/internal/rng"
)

// Graph is an undirected friendship graph over players 0..N-1.
type Graph struct {
	n   int
	adj []map[int]struct{}
	m   int // number of edges
}

// NewGraph creates an empty graph over n players.
func NewGraph(n int) *Graph {
	adj := make([]map[int]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int]struct{})
	}
	return &Graph{n: n, adj: adj}
}

// N returns the number of players.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// AddEdge adds an undirected friendship edge. Self-loops and duplicates are
// ignored. It reports whether a new edge was added.
func (g *Graph) AddEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	if _, ok := g.adj[u][v]; ok {
		return false
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.m++
	return true
}

// HasEdge reports whether u and v are friends.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// Friends returns F(i): the friend set of player i, in ascending ID order.
// The deterministic order matters: simulation results must be reproducible
// from a seed, and map iteration order is not.
func (g *Graph) Friends(i int) []int {
	out := make([]int, 0, len(g.adj[i]))
	for v := range g.adj[i] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Degree returns the number of friends of player i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// GenerateConfig controls synthetic friendship graph generation.
type GenerateConfig struct {
	// N is the number of players.
	N int
	// MaxFriends bounds the per-player friend count sampled from the
	// power law. Defaults to 50.
	MaxFriends int
	// Skew is the power-law skew factor. The paper uses 1.5.
	Skew float64
	// GuildSizeMin / GuildSizeMax bound the planted guild sizes. MMOG
	// friendships concentrate inside guilds/clans, the community
	// structure the social-network-based server assignment exploits.
	// Defaults: 15 and 50.
	GuildSizeMin int
	GuildSizeMax int
	// InGuildProbability is the chance a friendship edge stays inside the
	// player's guild. Defaults to 0.8.
	InGuildProbability float64
}

func (c GenerateConfig) withDefaults() GenerateConfig {
	if c.MaxFriends <= 0 {
		c.MaxFriends = 50
	}
	if c.Skew <= 0 {
		c.Skew = 1.5
	}
	if c.GuildSizeMin <= 0 {
		c.GuildSizeMin = 15
	}
	if c.GuildSizeMax < c.GuildSizeMin {
		c.GuildSizeMax = c.GuildSizeMin + 35
	}
	if c.InGuildProbability <= 0 || c.InGuildProbability > 1 {
		c.InGuildProbability = 0.8
	}
	return c
}

// Generate builds a friendship graph where "the number of friends for each
// player follows power-law distribution with skew factor of 1.5", planted
// over a guild structure: most edges stay within a player's guild, a
// minority cross guilds. Guilds give the graph the community structure
// that real MMOG populations exhibit ("social friends always play
// together") and that the server assignment mines.
func Generate(cfg GenerateConfig, r *rng.Rand) *Graph {
	cfg = cfg.withDefaults()
	g := NewGraph(cfg.N)
	if cfg.N < 2 {
		return g
	}
	// Partition players into guilds of random size.
	guildOf := make([]int, cfg.N)
	var guilds [][]int
	for start := 0; start < cfg.N; {
		size := cfg.GuildSizeMin
		if cfg.GuildSizeMax > cfg.GuildSizeMin {
			size += r.Intn(cfg.GuildSizeMax - cfg.GuildSizeMin + 1)
		}
		end := start + size
		if end > cfg.N {
			end = cfg.N
		}
		members := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			guildOf[i] = len(guilds)
			members = append(members, i)
		}
		guilds = append(guilds, members)
		start = end
	}

	targets := make([]int, cfg.N)
	for i := range targets {
		targets[i] = r.Zipf(cfg.MaxFriends, cfg.Skew)
	}
	for i := 0; i < cfg.N; i++ {
		attempts := 0
		for g.Degree(i) < targets[i] && attempts < 8*targets[i]+16 {
			attempts++
			var v int
			if r.Bool(cfg.InGuildProbability) {
				members := guilds[guildOf[i]]
				v = members[r.Intn(len(members))]
			} else {
				v = r.Intn(cfg.N)
			}
			if v == i || g.HasEdge(i, v) {
				continue
			}
			g.AddEdge(i, v)
		}
	}
	return g
}

// CoPlayRecorder tracks how often pairs of players play together within a
// sliding window, implementing the paper's implicit-friendship rule: when
// two players co-play more than Threshold times within the recent week,
// they are regarded as implicit friends.
type CoPlayRecorder struct {
	// Threshold is υ, the co-play count above which an implicit
	// friendship is declared.
	Threshold int
	// WindowDays is the sliding window length (the paper uses one week).
	WindowDays int

	counts map[[2]int][]int // pair -> days of co-play events
}

// NewCoPlayRecorder creates a recorder with the given threshold and window.
// Non-positive arguments default to threshold 3 and a 7-day window.
func NewCoPlayRecorder(threshold, windowDays int) *CoPlayRecorder {
	if threshold <= 0 {
		threshold = 3
	}
	if windowDays <= 0 {
		windowDays = 7
	}
	return &CoPlayRecorder{
		Threshold:  threshold,
		WindowDays: windowDays,
		counts:     make(map[[2]int][]int),
	}
}

func pairKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// Record notes that u and v played together on the given day.
func (c *CoPlayRecorder) Record(u, v, day int) {
	if u == v {
		return
	}
	k := pairKey(u, v)
	c.counts[k] = append(c.counts[k], day)
}

// CoPlayCount returns CP_uv: how many co-play events fall within the window
// ending today.
func (c *CoPlayRecorder) CoPlayCount(u, v, today int) int {
	var n int
	for _, d := range c.counts[pairKey(u, v)] {
		if today-d < c.WindowDays && today-d >= 0 {
			n++
		}
	}
	return n
}

// ImplicitFriends reports whether u and v qualify as implicit friends as of
// today (CP_uv > Threshold within the window).
func (c *CoPlayRecorder) ImplicitFriends(u, v, today int) bool {
	return c.CoPlayCount(u, v, today) > c.Threshold
}

// AugmentGraph returns a copy of g with implicit-friendship edges added for
// every recorded pair exceeding the threshold as of today.
func (c *CoPlayRecorder) AugmentGraph(g *Graph, today int) *Graph {
	out := NewGraph(g.N())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Friends(u) {
			if u < v {
				out.AddEdge(u, v)
			}
		}
	}
	for k := range c.counts {
		if c.ImplicitFriends(k[0], k[1], today) {
			out.AddEdge(k[0], k[1])
		}
	}
	return out
}

// Prune discards co-play events older than the window as of today.
func (c *CoPlayRecorder) Prune(today int) {
	for k, days := range c.counts {
		kept := days[:0]
		for _, d := range days {
			if today-d < c.WindowDays {
				kept = append(kept, d)
			}
		}
		if len(kept) == 0 {
			delete(c.counts, k)
		} else {
			c.counts[k] = kept
		}
	}
}

// Modularity computes the Newman–Girvan modularity Γ (Eq. 13) of a
// partition of the graph's players into communities. community[i] is the
// community index of player i, in [0, z). Higher Γ means friends are more
// concentrated within communities. Returns 0 for a graph without edges.
func Modularity(g *Graph, community []int, z int) float64 {
	if g.NumEdges() == 0 || z <= 0 {
		return 0
	}
	// q[a][b]: fraction of edge endpoints connecting communities a and b.
	intra := make([]float64, z)  // q_aa
	degSum := make([]float64, z) // p_a = sum_b q_ab, via endpoint counting
	m2 := float64(2 * g.NumEdges())
	for u := 0; u < g.N(); u++ {
		cu := community[u]
		if cu < 0 || cu >= z {
			continue
		}
		for _, v := range g.Friends(u) {
			cv := community[v]
			if cv < 0 || cv >= z {
				continue
			}
			degSum[cu] += 1 / m2
			if cu == cv {
				// Each intra edge is visited twice (u->v and v->u).
				intra[cu] += 1 / m2
			}
		}
	}
	var gamma float64
	for a := 0; a < z; a++ {
		gamma += intra[a] - degSum[a]*degSum[a]
	}
	return gamma
}
