// Package fognet is the runnable networked prototype of the CloudFog
// architecture: a cloud server that owns the authoritative virtual world,
// fog nodes (supernodes) that replicate it and render/stream per-player
// video, and thin player clients — the three tiers of Fig. 1 of the paper,
// speaking internal/protocol over TCP.
//
// The prototype is what a downstream adopter would run: the cloud ticks
// the world and fans out compact update batches (the Λ stream), fog nodes
// apply them to replicas, render frames for each attached player's
// viewport, encode them at the player's current Table 2 quality level, and
// stream them; players drive the receiver-driven rate adaptation of §3.3
// against the measured delivery rate.
//
// Supernodes are contributed desktops (§3.2.2), so every tier defends
// itself: the cloud heartbeats supernodes and evicts the silent ones, the
// per-supernode send queues are bounded and writes carry deadlines (one
// stalled supernode cannot stall the Λ fan-out), fog nodes reconnect to
// the cloud with jittered exponential backoff and resync their replicas,
// and players enforce read deadlines on the video stream and fail over
// down the ladder serving supernode → candidates → cloud fallback.
//
// All components follow the same lifecycle contract: a constructor that
// starts listening, a Start/run goroutine owned by the component, and a
// Close that stops every goroutine and waits for them to exit.
package fognet

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cloudfog/internal/checkpoint"
	"cloudfog/internal/game"
	"cloudfog/internal/protocol"
	"cloudfog/internal/reputation"
	"cloudfog/internal/rng"
	"cloudfog/internal/selection"
	"cloudfog/internal/transport"
	"cloudfog/internal/virtualworld"
)

// DefaultTickInterval is the world tick period (20 Hz).
const DefaultTickInterval = 50 * time.Millisecond

// DefaultCheckpointEvery is the checkpoint cadence in ticks: with the
// default 20 Hz tick the standby receives a full world image once a
// second, and the per-tick delta log covers everything in between.
const DefaultCheckpointEvery = 20

// Liveness and robustness defaults. Tests lower the intervals.
const (
	// DefaultHeartbeatInterval is how often the cloud pings supernodes.
	DefaultHeartbeatInterval = time.Second
	// DefaultHeartbeatMisses is how many unanswered heartbeats evict a
	// supernode.
	DefaultHeartbeatMisses = 3
	// DefaultWriteTimeout bounds any single protocol write. The timeout
	// policy lives on the transport seam; re-exported for compatibility.
	DefaultWriteTimeout = transport.DefaultWriteTimeout
	// DefaultSendQueueLen bounds the per-supernode outbound queue.
	DefaultSendQueueLen = 64
	// DefaultDialTimeout bounds connection establishment.
	DefaultDialTimeout = transport.DefaultDialTimeout
)

// DialFunc establishes an outbound connection; it exists so tests and the
// chaos demo can route dials through faultnet injectors. It is the
// transport seam's dial hook.
type DialFunc = transport.DialFunc

// CloudConfig parameterizes a CloudServer.
type CloudConfig struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// TickInterval is the world tick period. Defaults to
	// DefaultTickInterval.
	TickInterval time.Duration
	// WorldWidth, WorldHeight size the virtual world (defaults apply).
	WorldWidth, WorldHeight float64
	// NPCs seeds the world with this many NPCs on a grid.
	NPCs int
	// HeartbeatInterval is the supernode liveness ping period. Defaults
	// to DefaultHeartbeatInterval.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many consecutive unanswered heartbeats evict
	// a supernode. Defaults to DefaultHeartbeatMisses.
	HeartbeatMisses int
	// WriteTimeout bounds every protocol write. Defaults to
	// DefaultWriteTimeout.
	WriteTimeout time.Duration
	// SendQueueLen bounds the per-supernode outbound queue; when it is
	// full, further messages are dropped (and counted) rather than
	// blocking the tick loop. Defaults to DefaultSendQueueLen.
	SendQueueLen int
	// WrapConn, when set, wraps every accepted connection — the faultnet
	// injection point for chaos tests.
	WrapConn func(net.Conn) net.Conn
	// SelectionPolicy ranks the candidate ladders pushed to players
	// (§3.2 via internal/selection). Defaults to
	// selection.PolicyReputation, scoring supernodes by the cloud's live
	// QoE book.
	SelectionPolicy selection.Policy
	// Seed drives the deterministic tie-break shuffle of the ladder
	// ranking.
	Seed uint64
	// Epoch is the authority epoch this server ticks in. Zero means 1 (a
	// fresh primary); a promoted standby passes its checkpoint epoch + 1
	// so every client can tell a failover happened from the stamps alone.
	Epoch uint64
	// CheckpointEvery is the checkpoint cadence in ticks. Defaults to
	// DefaultCheckpointEvery. Checkpoints flow to the attached standby;
	// without one, none are encoded.
	CheckpointEvery int
	// Listener, when set, is used instead of listening on Addr: a
	// promoted standby hands over the listener it already advertised, so
	// resuming clients land on the address they were told before the
	// crash.
	Listener net.Listener
	// Restore, when set, seeds the server from a recovered checkpoint
	// instead of an empty world: entities, tick, ID allocator, player
	// sessions, reputation book, and RNG stream all resume exactly where
	// the checkpoint (plus replayed delta log) left them.
	Restore *checkpoint.State
}

// CloudServer is the authoritative game-state tier.
type CloudServer struct {
	cfg CloudConfig
	// tc is the transport seam's timeout policy: handshake deadlines and
	// write bounds for every accepted connection flow from here.
	tc       transport.Config
	listener net.Listener
	// epoch is the authority epoch; immutable for the server's lifetime
	// (a failover starts a new CloudServer with a higher epoch).
	epoch uint64
	// restoredHash / restoredTick fingerprint the canonical checkpoint
	// state this server was restored from (zero when seeded fresh);
	// immutable after construction.
	restoredHash uint64
	restoredTick uint64

	mu            sync.Mutex
	world         *virtualworld.World
	pending       []virtualworld.Action
	supernodes    map[uint32]*supernodeConn // guarded by mu
	nextSNID      uint32
	players       map[int32]*playerConn // guarded by mu
	ticks         int64
	fallbackBits  int64
	fallbackCount int64
	fallbackLive  int
	hbSeq         uint32
	resil         CloudResilience

	// standby is the attached warm standby, fed through the same bounded
	// queue + coalescing writer machinery as a supernode; standbyAddr is
	// what it advertised, stamped into replies so clients know where to
	// resume. Both guarded by mu.
	standby     *supernodeConn
	standbyAddr string
	// sessionDeltas are membership changes (avatar spawns and removals)
	// accumulated since the last tick, folded into that tick's fan-out
	// and delta-log entry so replicas and the standby track joins and
	// departures exactly. Guarded by mu.
	sessionDeltas []virtualworld.Delta
	// resumable holds player IDs recovered from a checkpoint that have
	// not reconnected yet: their avatars live in the restored world and
	// MsgResume re-admits them without a rejoin. Guarded by mu.
	resumable map[int32]bool
	// ckpt is the reused checkpoint capture scratch: state is gathered
	// in place so a checkpoint tick allocates nothing beyond first-time
	// growth. Guarded by mu.
	ckpt checkpoint.State
	// logEntry is the delta-log encode scratch; only the tick loop
	// touches it.
	logEntry checkpoint.LogEntry
	// AoI fan-out state. aoi buckets each tick's deltas by grid cell;
	// fanSNs, keyPlan, and keyDeltas are tick-loop capture/keyframe
	// scratch, all reused across ticks so the steady-state fan-out
	// allocates nothing. aoiIDScratch/aoiCellScratch back the keyframe
	// and interest-widening lookups. Only keyframe gathering and the
	// interest counters run under mu; the rest is tick-loop-owned.
	aoi             aoiPlan
	fanSNs          []fanSN
	keyPlan         []keyItem
	keyDeltas       []virtualworld.Delta
	aoiIDScratch    []virtualworld.EntityID
	aoiCellScratch  []uint32
	interestUpdates int64 // guarded by mu
	keyframeCells   int64 // guarded by mu

	// Hot-path counters live outside mu: the per-supernode writer
	// goroutines and the non-blocking enqueue bump them on every tick
	// fan-out, and taking the server mutex there would make the writers
	// contend with the tick loop itself.
	updateBits atomic.Int64
	queueDrops atomic.Int64

	// Live §3.2 selection control plane: QoE reports from players feed
	// book, and candidateInfosLocked ranks the ladder with ranker. addrIDs maps
	// stream addresses to stable reputation IDs so a supernode keeps its
	// history across reconnects (connection IDs are reassigned).
	book       *reputation.GlobalBook
	addrIDs    map[string]int
	nextAddrID int
	ranker     selection.PolicyRanker
	rankRand   *rng.Rand
	started    time.Time

	stop chan struct{}
	wg   sync.WaitGroup
}

// CloudResilience groups the cloud's failure-handling counters.
type CloudResilience struct {
	// Evictions counts supernodes removed for missed heartbeats.
	Evictions int64
	// Departures counts supernodes whose connection simply closed.
	Departures int64
	// HeartbeatsSent / HeartbeatAcks count the liveness traffic.
	HeartbeatsSent int64
	HeartbeatAcks  int64
	// SendQueueDrops counts messages dropped because a supernode's
	// bounded send queue was full — the stalls that never reached the
	// tick loop.
	SendQueueDrops int64
	// CandidateUpdates counts failover-ladder refreshes pushed to
	// players.
	CandidateUpdates int64
	// QoEReports counts player ratings absorbed into the reputation book.
	QoEReports int64
	// Checkpoints counts full world checkpoints encoded for the standby.
	Checkpoints int64
	// StandbyAttaches counts warm standbys that registered.
	StandbyAttaches int64
	// ResumedSupernodes / ResumedPlayers count MsgResume re-admissions —
	// clients that survived a failover without a full rejoin.
	ResumedSupernodes int64
	ResumedPlayers    int64
	// ForwardedActions counts player inputs that arrived via a supernode
	// (buffered at the fog tier during a cloud outage and flushed
	// upstream after recovery).
	ForwardedActions int64
}

// sharedPayload is a reference-counted pooled payload fanned out to many
// per-supernode send queues at once (the tick's update batch, the
// heartbeat ping). The encode buffer returns to the protocol pool only
// when the last writer has flushed it — the pool-lifecycle rule of
// DESIGN.md §10. Refs lost to a dying writer (messages still queued when
// the connection closes) simply strand the buffer for the GC; the pool
// never sees a buffer that anyone might still read.
type sharedPayload struct {
	buf  *protocol.Buffer
	refs atomic.Int32
}

var sharedPayloadPool = sync.Pool{New: func() any { return &sharedPayload{} }}

// newSharedPayload takes a pooled buffer and arms it for refs readers.
// Pool refills amortize to zero in steady state.
//
//cfg:amortized
func newSharedPayload(refs int) *sharedPayload {
	sp := sharedPayloadPool.Get().(*sharedPayload)
	sp.buf = protocol.GetBuffer()
	sp.refs.Store(int32(refs))
	return sp
}

// release drops one reference; the last one returns both the buffer and
// the wrapper to their pools.
func (sp *sharedPayload) release() {
	if sp == nil {
		return
	}
	if sp.refs.Add(-1) == 0 {
		protocol.PutBuffer(sp.buf)
		sp.buf = nil
		sharedPayloadPool.Put(sp)
	}
}

// outMsg is one queued message for a supernode writer. payload aliases
// shared.buf.B when shared is non-nil; the writer must release(shared)
// only after the payload has been flushed (or dropped).
type outMsg struct {
	typ     protocol.MsgType
	payload []byte
	shared  *sharedPayload
}

type supernodeConn struct {
	id         uint32
	name       string
	streamAddr string
	capacity   int
	conn       net.Conn
	sendQ      chan outMsg
	done       chan struct{}
	stopOnce   sync.Once
	// missed counts consecutive unanswered heartbeats (cloud mu).
	missed int
	// lastAttached is the player count from the latest heartbeat ack
	// (cloud mu) — the load the ladder ranking sorts by.
	lastAttached int
	// interest is the supernode's AoI cell subscription, nil until the fog
	// reports one (nil = legacy full-world stream). The set itself is
	// immutable; updates swap the pointer (cloud mu).
	interest *interestSet
	// pendingKey lists cells gained by the latest interest update, each
	// owed a full-state keyframe on the next tick (cloud mu).
	pendingKey []uint32
}

// playerConn is a player's control connection; sendMu serializes the
// cloud's pushes (join reply, candidate updates) onto it.
type playerConn struct {
	conn   net.Conn
	sendMu sync.Mutex
}

// NewCloudServer starts a cloud server listening on cfg.Addr.
func NewCloudServer(cfg CloudConfig) (*CloudServer, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = DefaultTickInterval
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = DefaultHeartbeatMisses
	}
	tc := transport.Config{WriteTimeout: cfg.WriteTimeout}.WithDefaults()
	cfg.WriteTimeout = tc.WriteTimeout
	if cfg.SendQueueLen <= 0 {
		cfg.SendQueueLen = DefaultSendQueueLen
	}
	if cfg.SelectionPolicy == 0 {
		cfg.SelectionPolicy = selection.PolicyReputation
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = DefaultCheckpointEvery
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 1
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		// WrapConn is applied in acceptLoop rather than via the
		// transport's listener wrapper so a handed-over standby listener
		// gets identical fault injection.
		ln, err = transport.TCP{Config: tc}.Listen(cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("cloud listen: %w", err)
		}
	}
	world := virtualworld.New(cfg.WorldWidth, cfg.WorldHeight)
	book := reputation.NewGlobalBook(reputation.DefaultLambda)
	rankRand := rng.New(cfg.Seed).SplitNamed("cloud-ladder")
	addrIDs := make(map[string]int)
	resumable := make(map[int32]bool)
	var restoredHash, restoredTick uint64
	if cfg.Restore != nil {
		// Resume the recovered authority exactly where the checkpoint
		// (plus any replayed delta log) left it: same entities, tick, ID
		// allocator, sessions, reputation history, and RNG position.
		world = cfg.Restore.RestoreWorld()
		book = reputation.RestoreGlobalBook(cfg.Restore.Book)
		rankRand = rng.Restore(cfg.Restore.RNG)
		for _, a := range cfg.Restore.AddrIDs {
			addrIDs[a.Addr] = int(a.ID)
		}
		for _, id := range cfg.Restore.Sessions {
			resumable[id] = true
		}
		// Fingerprint the restored state (cfg.Restore must be canonical):
		// any independent replay of the same checkpoint+log must land on
		// this exact hash, and failover tests assert that it does.
		restoredHash = checkpoint.Hash(cfg.Restore.AppendTo(nil))
		restoredTick = cfg.Restore.World.Tick
	} else {
		width, height := world.Size()
		for i := 0; i < cfg.NPCs; i++ {
			world.SpawnNPC(
				width*float64(i%4+1)/5,
				height*float64(i/4+1)/5,
			)
		}
	}
	s := &CloudServer{
		cfg:          cfg,
		tc:           tc,
		listener:     ln,
		epoch:        cfg.Epoch,
		restoredHash: restoredHash,
		restoredTick: restoredTick,
		world:        world,
		supernodes:   make(map[uint32]*supernodeConn),
		players:      make(map[int32]*playerConn),
		resumable:    resumable,
		nextSNID:     1,
		book:         book,
		addrIDs:      addrIDs,
		// Address IDs are allocated densely and never freed, so the
		// restored allocator position is exactly the table size.
		nextAddrID: len(addrIDs),
		ranker:     selection.PolicyRanker{Policy: cfg.SelectionPolicy, Scorer: optimisticScorer{book}},
		rankRand:   rankRand,
		started:    time.Now(),
		stop:       make(chan struct{}),
	}
	s.wg.Add(3)
	go s.acceptLoop()
	go s.tickLoop()
	go s.heartbeatLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *CloudServer) Addr() string { return s.listener.Addr().String() }

// Close stops the server and waits for all connection goroutines.
func (s *CloudServer) Close() error {
	select {
	case <-s.stop:
		return nil // already closed
	default:
	}
	close(s.stop)
	err := s.listener.Close()
	s.mu.Lock()
	sns := make([]*supernodeConn, 0, len(s.supernodes)+1)
	for _, sn := range s.supernodes {
		sns = append(sns, sn)
	}
	if s.standby != nil {
		sns = append(sns, s.standby)
	}
	for _, p := range s.players {
		p.conn.Close()
	}
	s.mu.Unlock()
	for _, sn := range sns {
		sn.shutdown()
	}
	s.wg.Wait()
	return err
}

// Shutdown is the graceful variant of Close: it flushes a final
// checkpoint to the standby, says goodbye to every supernode and player,
// and gives the writer queues one WriteTimeout to drain before tearing
// the sockets down. Safe to call more than once; later calls fall
// through to Close.
func (s *CloudServer) Shutdown() error {
	select {
	case <-s.stop:
		return nil // already closed
	default:
	}
	s.mu.Lock()
	standby := s.standby
	var ckpt *sharedPayload
	if standby != nil {
		ckpt = s.encodeCheckpointLocked(1)
	}
	sns := make([]*supernodeConn, 0, len(s.supernodes))
	for _, sn := range s.supernodes {
		sns = append(sns, sn)
	}
	players := make([]*playerConn, 0, len(s.players))
	for _, p := range s.players {
		players = append(players, p)
	}
	s.mu.Unlock()

	if standby != nil {
		s.enqueue(standby, outMsg{typ: protocol.MsgCheckpoint, payload: ckpt.buf.B, shared: ckpt})
	}
	if len(sns) > 0 {
		// An empty-payload Bye per supernode through the normal queues,
		// so it lands after anything already in flight.
		for _, sn := range sns {
			s.enqueue(sn, outMsg{typ: protocol.MsgBye})
		}
	}
	for _, p := range players {
		p.sendMu.Lock()
		p.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		protocol.WriteMessage(p.conn, protocol.MsgBye, nil)
		p.conn.SetWriteDeadline(time.Time{})
		p.sendMu.Unlock()
	}
	// Drain: wait (bounded) for the coalescing writers to flush what was
	// queued above before closing their sockets out from under them.
	deadline := time.Now().Add(s.cfg.WriteTimeout)
	for time.Now().Before(deadline) {
		busy := false
		if standby != nil && len(standby.sendQ) > 0 {
			busy = true
		}
		for _, sn := range sns {
			if len(sn.sendQ) > 0 {
				busy = true
				break
			}
		}
		if !busy {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return s.Close()
}

// shutdown stops the supernode's writer and closes its connection; safe to
// call more than once.
func (sn *supernodeConn) shutdown() {
	sn.stopOnce.Do(func() { close(sn.done) })
	sn.conn.Close()
}

// Stats reports cloud-side counters.
type CloudStats struct {
	// Ticks is how many world ticks ran.
	Ticks int64
	// Tick is the authoritative world tick (it starts past zero on a
	// restored server).
	Tick uint64
	// Epoch is the authority epoch this server ticks in.
	Epoch uint64
	// StandbyAttached reports whether a warm standby is following.
	StandbyAttached bool
	// RestoredHash / RestoredTick fingerprint the canonical checkpoint
	// state this server was restored from; zero when seeded fresh. Any
	// independent replay of the same checkpoint+log must reproduce
	// RestoredHash exactly.
	RestoredHash uint64
	RestoredTick uint64
	// UpdateBits is the total update-stream egress (the Λ traffic),
	// full-world batches and AoI cell batches combined.
	UpdateBits int64
	// Supernodes is the number of registered supernodes.
	Supernodes int
	// AoISupernodes is how many of them run interest-managed (cell-batch)
	// streams; the rest get the legacy full-world stream.
	AoISupernodes int
	// InterestUpdates counts accepted AoI subscription changes.
	InterestUpdates int64
	// KeyframeCells counts cell-enter keyframes sent.
	KeyframeCells int64
	// Players is the number of admitted players.
	Players int
	// Entities is the current world entity count.
	Entities int
	// FallbackBits is the video egress of cloud-streamed (fallback)
	// players — the expensive traffic CloudFog exists to avoid.
	FallbackBits int64
	// FallbackPlayers is the number of live cloud-streamed sessions.
	FallbackPlayers int
	// FallbackFrames is the total frames the cloud rendered itself.
	FallbackFrames int64
	// Resilience groups the failure-handling counters.
	Resilience CloudResilience
}

// Stats snapshots the counters.
func (s *CloudServer) Stats() CloudStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	resil := s.resil
	resil.SendQueueDrops = s.queueDrops.Load()
	aoiSNs := 0
	for _, sn := range s.supernodes {
		if sn.interest != nil {
			aoiSNs++
		}
	}
	return CloudStats{
		Ticks:           s.ticks,
		Tick:            s.world.Tick(),
		Epoch:           s.epoch,
		StandbyAttached: s.standby != nil,
		RestoredHash:    s.restoredHash,
		RestoredTick:    s.restoredTick,
		UpdateBits:      s.updateBits.Load(),
		Supernodes:      len(s.supernodes),
		AoISupernodes:   aoiSNs,
		InterestUpdates: s.interestUpdates,
		KeyframeCells:   s.keyframeCells,
		Players:         len(s.players),
		Entities:        s.world.NumEntities(),
		FallbackBits:    s.fallbackBits,
		FallbackPlayers: s.fallbackLive,
		FallbackFrames:  s.fallbackCount,
		Resilience:      resil,
	}
}

func (s *CloudServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		if s.cfg.WrapConn != nil {
			conn = s.cfg.WrapConn(conn)
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// tickLoop advances the world and fans out update batches.
func (s *CloudServer) tickLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.tickOnce()
		}
	}
}

func (s *CloudServer) tickOnce() {
	s.mu.Lock()
	actions := s.pending
	s.pending = nil
	nSession := len(s.sessionDeltas)
	deltas := s.world.Step(actions)
	if nSession > 0 {
		// Fold membership changes (avatar spawns, departures) into the
		// tick's delta stream so replicas and the standby's log both see
		// them; Step's own deltas follow and overwrite where they overlap.
		deltas = append(s.sessionDeltas, deltas...)
		s.sessionDeltas = s.sessionDeltas[:0]
	}
	s.ticks++
	tick := s.world.Tick()
	nextID := s.world.NextID()
	geo := s.world.Grid().Geom()
	// Capture the fan-out targets and each one's interest set into the
	// reused scratch: after the unlock the tick loop reads only this
	// capture (interest sets are immutable once installed).
	s.fanSNs = s.fanSNs[:0]
	aoiCount := 0
	for _, sn := range s.supernodes {
		s.fanSNs = append(s.fanSNs, fanSN{sn: sn, interest: sn.interest})
		if sn.interest != nil {
			aoiCount++
		}
	}
	// Gather pending cell-enter keyframes while the lock is held: the
	// payload is the cell's current (post-Step) entity population, read
	// straight off the world grid.
	s.keyPlan = s.keyPlan[:0]
	s.keyDeltas = s.keyDeltas[:0]
	for _, f := range s.fanSNs {
		for _, c := range f.sn.pendingKey {
			off := int32(len(s.keyDeltas))
			s.keyDeltas = s.appendCellStateLocked(s.keyDeltas, c)
			s.keyPlan = append(s.keyPlan, keyItem{sn: f.sn, cell: c, off: off, n: int32(len(s.keyDeltas)) - off})
			s.keyframeCells++
		}
		f.sn.pendingKey = f.sn.pendingKey[:0]
	}
	standby := s.standby
	var ckpt *sharedPayload
	if standby != nil && s.ticks%int64(s.cfg.CheckpointEvery) == 0 {
		// Capture right after Step, while no actions are pending: the
		// checkpoint is a clean tick boundary.
		ckpt = s.encodeCheckpointLocked(1)
	}
	s.mu.Unlock()

	if standby != nil {
		// One delta-log entry per tick, even when empty: the entry stream
		// doubles as the liveness signal the standby's promotion timer
		// watches. The standby always gets the full-world stream — it must
		// be able to take over for every cell.
		s.logEntry.Epoch = s.epoch
		s.logEntry.Tick = tick
		s.logEntry.NextID = nextID
		s.logEntry.Deltas = deltas
		lp := newSharedPayload(1)
		lp.buf.B = s.logEntry.AppendTo(lp.buf.B[:0])
		s.logEntry.Deltas = nil
		s.enqueue(standby, outMsg{typ: protocol.MsgLogEntry, payload: lp.buf.B, shared: lp})
		if ckpt != nil {
			s.enqueue(standby, outMsg{typ: protocol.MsgCheckpoint, payload: ckpt.buf.B, shared: ckpt})
		}
	}

	// Cell-enter keyframes flush even on quiet ticks: a fog that just
	// subscribed must not wait for the cell to change before seeing it.
	for _, k := range s.keyPlan {
		kb := protocol.CellBatch{Epoch: s.epoch, Tick: tick, Cell: k.cell,
			Keyframe: true, Deltas: s.keyDeltas[k.off : k.off+k.n]}
		sp := newSharedPayload(1)
		sp.buf.B = kb.AppendTo(sp.buf.B[:0])
		s.enqueue(k.sn, outMsg{typ: protocol.MsgCellBatch, payload: sp.buf.B, shared: sp})
	}

	if len(deltas) == 0 || len(s.fanSNs) == 0 {
		return
	}
	if n := len(s.fanSNs) - aoiCount; n > 0 {
		// Legacy path for supernodes with no interest set: the full batch,
		// encoded once into a pooled, reference-counted buffer shared by
		// every such queue, exactly as before AoI existed.
		batch := protocol.UpdateBatch{Epoch: s.epoch, Tick: tick, Deltas: deltas}
		sp := newSharedPayload(n)
		sp.buf.B = batch.AppendTo(sp.buf.B[:0])
		for _, f := range s.fanSNs {
			if f.interest != nil {
				continue
			}
			// Enqueue only: the per-supernode writer goroutine does the
			// blocking work, so a stalled supernode can never stall this
			// fan-out.
			s.enqueue(f.sn, outMsg{typ: protocol.MsgUpdateBatch, payload: sp.buf.B, shared: sp})
		}
	}
	if aoiCount == 0 {
		return
	}
	// AoI fan-out: bucket the tick's deltas by grid cell once, then encode
	// each dirty cell once and hand it only to the supernodes subscribed
	// to that cell. Per-tick cost is O(deltas + dirty cells × supernodes),
	// independent of world size.
	s.aoi.build(geo, deltas, nSession)
	if len(s.aoi.global) > 0 {
		// Position-less deltas (removals, session events) go to every AoI
		// subscriber under the CellNone sentinel.
		gb := protocol.CellBatch{Epoch: s.epoch, Tick: tick,
			Cell: virtualworld.CellNone, Deltas: s.aoi.global}
		sp := newSharedPayload(aoiCount)
		sp.buf.B = gb.AppendTo(sp.buf.B[:0])
		for _, f := range s.fanSNs {
			if f.interest != nil {
				s.enqueue(f.sn, outMsg{typ: protocol.MsgCellBatch, payload: sp.buf.B, shared: sp})
			}
		}
	}
	for i := 0; i < s.aoi.numDirty(); i++ {
		cell := s.aoi.cell(i)
		subs := 0
		for _, f := range s.fanSNs {
			if f.interest != nil && f.interest.has(cell) {
				subs++
			}
		}
		if subs == 0 {
			continue // nobody watches this cell: zero encode, zero gather
		}
		_, cd := s.aoi.cellDeltas(i)
		cb := protocol.CellBatch{Epoch: s.epoch, Tick: tick, Cell: cell, Deltas: cd}
		sp := newSharedPayload(subs)
		sp.buf.B = cb.AppendTo(sp.buf.B[:0])
		for _, f := range s.fanSNs {
			if f.interest != nil && f.interest.has(cell) {
				s.enqueue(f.sn, outMsg{typ: protocol.MsgCellBatch, payload: sp.buf.B, shared: sp})
			}
		}
	}
}

// encodeCheckpointLocked captures the full authoritative state — world,
// ID allocator, player sessions, address→reputation-ID table, QoE book,
// and ladder RNG — into the reused checkpoint scratch and encodes it
// into a fresh shared payload armed for refs readers. Caller holds mu.
//
//cfg:allocfree
func (s *CloudServer) encodeCheckpointLocked(refs int) *sharedPayload {
	st := &s.ckpt
	st.Epoch = s.epoch
	s.world.SnapshotInto(&st.World)
	st.NextID = s.world.NextID()
	st.Sessions = st.Sessions[:0]
	for id := range s.players {
		st.Sessions = append(st.Sessions, id)
	}
	for id := range s.resumable {
		// Sessions recovered from the previous epoch that have not
		// resumed yet stay resumable across chained failovers.
		if _, live := s.players[id]; !live {
			st.Sessions = append(st.Sessions, id)
		}
	}
	st.AddrIDs = st.AddrIDs[:0]
	for addr, id := range s.addrIDs {
		st.AddrIDs = append(st.AddrIDs, checkpoint.AddrID{Addr: addr, ID: int32(id)})
	}
	s.book.StateInto(&st.Book)
	st.RNG = s.rankRand.State()
	st.Canonicalize()
	s.resil.Checkpoints++
	sp := newSharedPayload(refs)
	sp.buf.B = st.AppendTo(sp.buf.B[:0])
	return sp
}

// enqueue offers a message to the supernode's bounded send queue without
// ever blocking; full queues drop (and count) the message, releasing its
// shared-payload reference.
//
//cfg:allocfree
func (s *CloudServer) enqueue(sn *supernodeConn, m outMsg) bool {
	select {
	case sn.sendQ <- m:
		return true
	default:
		m.shared.release()
		s.queueDrops.Add(1)
		return false
	}
}

// snWriter is the single writer for one supernode connection, and it
// coalesces: when it wakes it drains everything queued, appends each
// message's frame into one pooled buffer, sets one write deadline, and
// flushes with a single Write — a supernode that fell a few messages
// behind costs one syscall to catch up, not one per message. The first
// failure closes the connection, which the read loop observes and
// unregisters.
func (s *CloudServer) snWriter(sn *supernodeConn) {
	defer s.wg.Done()
	var pending []outMsg // reused drain list
	for {
		select {
		case <-sn.done:
			return
		case m := <-sn.sendQ:
			pending = append(pending[:0], m)
		drain:
			for {
				select {
				case m2 := <-sn.sendQ:
					pending = append(pending, m2)
				default:
					break drain
				}
			}
			buf := protocol.GetBuffer()
			var batchBits int64
			var err error
			for _, m := range pending {
				if buf.B, err = protocol.AppendFrame(buf.B, m.typ, m.payload); err != nil {
					break
				}
				if m.typ == protocol.MsgUpdateBatch || m.typ == protocol.MsgCellBatch {
					batchBits += int64(len(m.payload)+protocol.HeaderLen) * 8
				}
			}
			if err == nil {
				sn.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
				_, err = sn.conn.Write(buf.B)
			}
			// Flush (or failure) done: drop the shared-payload references,
			// then the scratch buffer.
			for i := range pending {
				pending[i].shared.release()
				pending[i] = outMsg{}
			}
			protocol.PutBuffer(buf)
			if err != nil {
				sn.conn.Close()
				return
			}
			s.updateBits.Add(batchBits)
		}
	}
}

// heartbeatLoop pings every supernode each interval and evicts the ones
// that miss cfg.HeartbeatMisses consecutive replies (§3.2.2: supernodes
// are unreliable contributed desktops; the cloud must notice churn).
func (s *CloudServer) heartbeatLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.heartbeatOnce()
		}
	}
}

func (s *CloudServer) heartbeatOnce() {
	s.mu.Lock()
	s.hbSeq++
	seq := s.hbSeq
	var ping, evict []*supernodeConn
	for _, sn := range s.supernodes {
		if sn.missed >= s.cfg.HeartbeatMisses {
			evict = append(evict, sn)
			continue
		}
		sn.missed++
		ping = append(ping, sn)
	}
	s.resil.HeartbeatsSent += int64(len(ping))
	s.mu.Unlock()

	if len(ping) > 0 {
		sp := newSharedPayload(len(ping))
		sp.buf.B = protocol.Heartbeat{Seq: seq}.AppendTo(sp.buf.B[:0])
		for _, sn := range ping {
			s.enqueue(sn, outMsg{typ: protocol.MsgHeartbeat, payload: sp.buf.B, shared: sp})
		}
	}
	for _, sn := range evict {
		s.unregisterSupernode(sn, true)
	}
}

// unregisterSupernode removes a supernode (eviction or departure), stops
// its writer, and pushes the refreshed candidate ladder to every player.
func (s *CloudServer) unregisterSupernode(sn *supernodeConn, evicted bool) {
	s.mu.Lock()
	cur, present := s.supernodes[sn.id]
	if present && cur == sn {
		delete(s.supernodes, sn.id)
		if evicted {
			s.resil.Evictions++
		} else {
			s.resil.Departures++
		}
	} else {
		present = false
	}
	s.mu.Unlock()
	sn.shutdown()
	if present {
		s.broadcastCandidates()
	}
}

// optimisticScorer scores supernodes by the cloud's QoE book with an
// optimistic prior: a supernode nobody has reported on yet scores 0.5,
// between proven-good (→1) and proven-bad (→0). Unknowns are therefore
// tried before demoted supernodes but after established ones — without the
// prior, a freshly-stalled supernode (score ~0) would be indistinguishable
// from a brand-new one.
type optimisticScorer struct{ book *reputation.GlobalBook }

// unknownScore is the prior for supernodes with no QoE reports.
const unknownScore = 0.5

func (o optimisticScorer) Score(id, today int) float64 {
	if o.book.NumRatings(id) == 0 {
		return unknownScore
	}
	return o.book.Score(id, today)
}

// qoeDayMinutes is the wall-clock length of one reputation "day": the
// aging unit of Eq. 7, compressed so a long-running cloud forgets old
// incidents within the hour rather than within the week.
const qoeDayMinutes = 1

// day is the cloud's reputation clock (mu not required).
func (s *CloudServer) day() int {
	return int(time.Since(s.started).Minutes()) / qoeDayMinutes
}

// addrID returns the stable reputation ID for a stream address, allocating
// one on first sight (caller holds mu). Keyed by address, not connection
// ID, so a supernode keeps its reputation across reconnects.
func (s *CloudServer) addrID(addr string) int {
	id, ok := s.addrIDs[addr]
	if !ok {
		id = s.nextAddrID
		s.nextAddrID++
		s.addrIDs[addr] = id
	}
	return id
}

// candidateInfosLocked snapshots the current failover ladder — the caller
// must hold mu — ranked by
// the shared §3.2 pipeline: candidates carry their last-acked load,
// advertised capacity, and live QoE score, ordered best-first by the
// configured policy (the alphabetical sort this replaces ignored all
// three). Candidates are pre-sorted by stable ID so the deterministic
// tie-break shuffle is meaningful despite map iteration order.
func (s *CloudServer) candidateInfosLocked() []protocol.CandidateInfo {
	cands := make([]selection.Candidate, 0, len(s.supernodes))
	for _, sn := range s.supernodes {
		cands = append(cands, selection.Candidate{
			ID:       s.addrID(sn.streamAddr),
			Addr:     sn.streamAddr,
			Load:     sn.lastAttached,
			Capacity: sn.capacity,
			RTTMs:    -1, // the cloud cannot ping on the player's behalf
		})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ID < cands[j].ID })
	s.ranker.Rank(cands, s.day(), s.rankRand)
	out := make([]protocol.CandidateInfo, len(cands))
	for i, c := range cands {
		out[i] = protocol.CandidateInfo{
			Addr:          c.Addr,
			Load:          uint16(c.Load),
			Capacity:      uint16(c.Capacity),
			MeasuredRTTMs: -1,
			Score:         c.Score,
		}
	}
	return out
}

// Candidates returns the current ranked failover ladder — what the next
// joining player would receive. Exposed for tests and operational
// inspection.
func (s *CloudServer) Candidates() []protocol.CandidateInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.candidateInfosLocked()
}

// recordQoE absorbs a player's rating into the reputation book. Stall and
// fallback reports re-rank the ladder immediately and push it to every
// player; periodic healthy reports wait for the next natural refresh.
func (s *CloudServer) recordQoE(rep protocol.QoEReport) {
	s.mu.Lock()
	id, known := s.addrIDs[rep.Addr]
	if !known {
		// Never seen this address as a supernode: a bogus or stale
		// report; absorbing it would let players mint reputation IDs.
		s.mu.Unlock()
		return
	}
	s.book.Rate(id, rep.Rating, s.day())
	s.resil.QoEReports++
	s.mu.Unlock()
	if rep.Stalled || rep.Fallback {
		s.broadcastCandidates()
	}
}

// broadcastCandidates pushes the current ladder to every admitted player,
// best-effort with write deadlines, so migrations never chase a stale
// address list.
func (s *CloudServer) broadcastCandidates() {
	s.mu.Lock()
	update := protocol.CandidateUpdate{
		Candidates:      s.candidateInfosLocked(),
		CloudStreamAddr: s.Addr(),
		StandbyAddr:     s.standbyAddr,
	}
	players := make([]*playerConn, 0, len(s.players))
	for _, p := range s.players {
		players = append(players, p)
	}
	sns := make([]*supernodeConn, 0, len(s.supernodes))
	for _, sn := range s.supernodes {
		sns = append(sns, sn)
	}
	s.mu.Unlock()
	// One pooled buffer holds the framed update for every player; the
	// writes are synchronous, so it goes back to the pool after the loop.
	buf := protocol.GetBuffer()
	defer protocol.PutBuffer(buf)
	var err error
	if buf.B, err = protocol.AppendMessage(buf.B[:0], protocol.MsgCandidateUpdate, &update); err != nil {
		return
	}
	var sent int64
	for _, p := range players {
		p.sendMu.Lock()
		p.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		_, err := p.conn.Write(buf.B)
		p.conn.SetWriteDeadline(time.Time{})
		p.sendMu.Unlock()
		if err == nil {
			sent++
		}
	}
	// Supernodes get the same update through their coalescing queues —
	// they only care about StandbyAddr (the failover rung their own
	// reconnect ladder needs), but a stale ladder is how a supernode ends
	// up orphaned after a failover, so keep them current too.
	if len(sns) > 0 {
		update.Candidates = nil // framed fresh: candidates are for players
		sp := newSharedPayload(len(sns))
		sp.buf.B = update.AppendTo(sp.buf.B[:0])
		for _, sn := range sns {
			s.enqueue(sn, outMsg{typ: protocol.MsgCandidateUpdate, payload: sp.buf.B, shared: sp})
		}
	}
	s.mu.Lock()
	s.resil.CandidateUpdates += sent
	s.mu.Unlock()
}

// handleConn dispatches on the first message: supernode registration or
// player admission. The first message carries a deadline so a silent
// connection cannot pin this goroutine.
func (s *CloudServer) handleConn(conn net.Conn) {
	defer s.wg.Done()
	conn.SetReadDeadline(time.Now().Add(s.tc.HandshakeTimeout))
	typ, payload, err := protocol.ReadMessage(conn)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	switch typ {
	case protocol.MsgSupernodeHello:
		s.serveSupernode(conn, payload)
	case protocol.MsgPlayerJoin:
		s.servePlayer(conn, payload)
	case protocol.MsgStandbyHello:
		s.serveStandby(conn, payload)
	case protocol.MsgResume:
		s.serveResume(conn, payload)
	case protocol.MsgProbe:
		// Fallback streaming session: the cloud itself renders for
		// players no supernode accepted. The cloud never refuses —
		// it is the last resort (and the bandwidth bill shows it).
		s.serveFallbackStream(conn)
	default:
		conn.Close()
	}
}

// serveStandby attaches a warm standby: it gets an immediate full
// checkpoint, then every tick's delta-log entry (and periodic fresh
// checkpoints) through the same bounded-queue coalescing writer a
// supernode uses. A newer standby replaces an older one.
func (s *CloudServer) serveStandby(conn net.Conn, payload []byte) {
	hello, err := protocol.UnmarshalStandbyHello(payload)
	if err != nil {
		conn.Close()
		return
	}
	sb := &supernodeConn{
		name:       "standby",
		streamAddr: hello.Addr,
		conn:       conn,
		sendQ:      make(chan outMsg, s.cfg.SendQueueLen),
		done:       make(chan struct{}),
	}
	s.mu.Lock()
	prev := s.standby
	s.standby = sb
	s.standbyAddr = hello.Addr
	s.resil.StandbyAttaches++
	// Seed the follower inside the same critical section that installs
	// it: the queue is empty, so the checkpoint is guaranteed to precede
	// any log entry the tick loop enqueues afterwards.
	ckpt := s.encodeCheckpointLocked(1)
	sb.sendQ <- outMsg{typ: protocol.MsgCheckpoint, payload: ckpt.buf.B, shared: ckpt}
	s.mu.Unlock()
	if prev != nil {
		prev.shutdown()
	}
	s.wg.Add(1)
	go s.snWriter(sb)
	// Everyone's failover address just changed.
	s.broadcastCandidates()

	// The standby sends nothing in steady state; the read blocks until
	// the follower drops, which is how the primary notices it is alone
	// again.
	fr := protocol.NewFrameReader(conn)
	for {
		if _, _, rerr := fr.Next(); rerr != nil {
			break
		}
	}
	s.mu.Lock()
	if s.standby == sb {
		s.standby = nil
		s.standbyAddr = ""
	}
	s.mu.Unlock()
	sb.shutdown()
	s.broadcastCandidates()
}

// serveResume dispatches an epoch-stamped session resumption — the
// post-failover path that lets supernodes and players continue on a
// promoted standby without a full rejoin.
func (s *CloudServer) serveResume(conn net.Conn, payload []byte) {
	req, err := protocol.UnmarshalResume(payload)
	if err != nil {
		conn.Close()
		return
	}
	switch req.Kind {
	case protocol.ResumeSupernode:
		s.resumeSupernode(conn, req)
	case protocol.ResumePlayer:
		s.resumePlayer(conn, req)
	default:
		conn.Close()
	}
}

// resumeSupernode re-admits a supernode after a failover: it is
// registered like a fresh one, but the reply tells it the new epoch and
// authoritative tick and carries a full snapshot to reseed its replica.
// Discard is set when the supernode's replica ran ahead of the restored
// history (ticks the crashed primary computed but never checkpointed or
// logged) — those ticks are authoritatively gone.
//
//cfg:epochcheck
func (s *CloudServer) resumeSupernode(conn net.Conn, req protocol.Resume) {
	s.mu.Lock()
	sn := &supernodeConn{
		id:         s.nextSNID,
		name:       req.Name,
		streamAddr: req.StreamAddr,
		capacity:   req.Capacity,
		conn:       conn,
		sendQ:      make(chan outMsg, s.cfg.SendQueueLen),
		done:       make(chan struct{}),
	}
	s.nextSNID++
	s.supernodes[sn.id] = sn
	snap := s.world.Snapshot()
	reply := protocol.ResumeReply{
		OK:              true,
		Discard:         req.Epoch != s.epoch && req.Tick > snap.Tick,
		Epoch:           s.epoch,
		Tick:            snap.Tick,
		SupernodeID:     sn.id,
		HasSnapshot:     true,
		Snapshot:        snap,
		CloudStreamAddr: s.Addr(),
		StandbyAddr:     s.standbyAddr,
	}
	s.resil.ResumedSupernodes++
	s.mu.Unlock()

	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	err := protocol.WriteMessage(conn, protocol.MsgResumeReply, reply.Marshal())
	conn.SetWriteDeadline(time.Time{})
	if err != nil {
		s.unregisterSupernode(sn, false)
		return
	}
	s.broadcastCandidates()
	s.wg.Add(1)
	go s.snWriter(sn)
	s.snReadLoop(sn, conn)
}

// serveFallbackStream answers the probe and runs a cloud-rendered video
// session, exactly like a supernode but from the authoritative world.
func (s *CloudServer) serveFallbackStream(conn net.Conn) {
	defer conn.Close()
	reply := protocol.ProbeReply{Available: 1 << 15} // effectively unbounded
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if protocol.WriteMessage(conn, protocol.MsgProbeReply, reply.Marshal()) != nil {
		return
	}
	conn.SetReadDeadline(time.Now().Add(s.tc.HandshakeTimeout))
	typ, payload, err := protocol.ReadMessage(conn)
	if err != nil || typ != protocol.MsgPlayerAttach {
		return
	}
	conn.SetReadDeadline(time.Time{})
	attach, err := protocol.UnmarshalPlayerAttach(payload)
	if err != nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if protocol.WriteMessage(conn, protocol.MsgAttachReply, protocol.AttachReply{OK: true}.Marshal()) != nil {
		return
	}
	conn.SetWriteDeadline(time.Time{})
	s.mu.Lock()
	s.fallbackLive++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.fallbackLive--
		s.mu.Unlock()
	}()
	// The cloud's fallback stream never upgrades to datagrams (nil
	// offer): the last rung of the ladder favors the transport that
	// works everywhere over the one that performs best.
	runVideoSession(conn, attach.PlayerID, game.QualityLevel(attach.QualityLevel),
		DefaultFrameInterval, s.cfg.WriteTimeout, s, cloudFallbackCounters{s}, s, nil, s.stop, &s.wg)
}

// submitAction implements actionSink for cloud-fallback video sessions:
// the cloud is the authority, so rerouted inputs go straight into the
// pending queue (the video-session reader already verified the sender).
func (s *CloudServer) submitAction(a virtualworld.Action) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.world.Avatar(a.Player) == nil {
		return false
	}
	s.pending = append(s.pending, a)
	return true
}

// currentSnapshot implements snapshotSource over the authoritative world.
func (s *CloudServer) currentSnapshot() virtualworld.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.world.Snapshot()
}

// cloudFallbackCounters routes fallback-session egress into the cloud's
// bandwidth accounting.
type cloudFallbackCounters struct{ s *CloudServer }

func (c cloudFallbackCounters) addFrame(bits int) {
	c.s.mu.Lock()
	c.s.fallbackBits += int64(bits)
	c.s.fallbackCount++
	c.s.mu.Unlock()
}

func (s *CloudServer) serveSupernode(conn net.Conn, payload []byte) {
	hello, err := protocol.UnmarshalSupernodeHello(payload)
	if err != nil {
		conn.Close()
		return
	}
	s.mu.Lock()
	sn := &supernodeConn{
		id:         s.nextSNID,
		name:       hello.Name,
		streamAddr: hello.StreamAddr,
		capacity:   hello.Capacity,
		conn:       conn,
		sendQ:      make(chan outMsg, s.cfg.SendQueueLen),
		done:       make(chan struct{}),
	}
	s.nextSNID++
	s.supernodes[sn.id] = sn
	welcome := protocol.SupernodeWelcome{
		SupernodeID: sn.id,
		Epoch:       s.epoch,
		StandbyAddr: s.standbyAddr,
		Snapshot:    s.world.Snapshot(),
	}
	s.mu.Unlock()

	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	err = protocol.WriteMessage(conn, protocol.MsgSupernodeWelcome, welcome.Marshal())
	conn.SetWriteDeadline(time.Time{})
	if err != nil {
		s.unregisterSupernode(sn, false)
		return
	}
	// The new supernode changes every player's best failover ladder.
	s.broadcastCandidates()
	s.wg.Add(1)
	go s.snWriter(sn)
	s.snReadLoop(sn, conn)
}

// snReadLoop is the shared supernode read loop: heartbeat acks flow back
// here, along with player actions the supernode buffered and forwarded
// during a cloud outage. A read error means the supernode left or was
// evicted. The reader reuses one buffer per connection; every message is
// decoded into owned values before the next read.
func (s *CloudServer) snReadLoop(sn *supernodeConn, conn net.Conn) {
	fr := protocol.NewFrameReader(conn)
	var iu protocol.InterestUpdate // decode scratch, reused per message
readLoop:
	for {
		typ, payload, rerr := fr.Next()
		if rerr != nil {
			break
		}
		switch typ {
		case protocol.MsgInterestUpdate:
			if ierr := protocol.DecodeInterestUpdate(payload, &iu); ierr != nil {
				continue
			}
			s.applyInterest(sn, &iu)
		case protocol.MsgHeartbeatAck:
			ack, aerr := protocol.UnmarshalHeartbeatAck(payload)
			if aerr != nil {
				continue
			}
			s.mu.Lock()
			sn.missed = 0
			// The ack doubles as a load report: the attached-player count
			// feeds the availability sort of the candidate ladder.
			sn.lastAttached = int(ack.Attached)
			s.resil.HeartbeatAcks++
			s.mu.Unlock()
		case protocol.MsgAction:
			// A registered supernode relays inputs its players could not
			// deliver directly (buffered through the outage window). The
			// supernode is a trusted tier, but the action must still name
			// an admitted avatar.
			am, aerr := protocol.UnmarshalActionMsg(payload)
			if aerr != nil {
				continue
			}
			s.mu.Lock()
			if s.world.Avatar(am.Action.Player) != nil {
				s.pending = append(s.pending, am.Action)
				s.resil.ForwardedActions++
			}
			s.mu.Unlock()
		case protocol.MsgBye:
			// Graceful supernode departure (fogsrv SIGTERM): record it
			// now instead of waiting for the socket to die.
			break readLoop
		}
	}
	s.unregisterSupernode(sn, false)
}

func (s *CloudServer) servePlayer(conn net.Conn, payload []byte) {
	join, err := protocol.UnmarshalPlayerJoin(payload)
	if err != nil {
		conn.Close()
		return
	}
	pc := &playerConn{conn: conn}
	s.mu.Lock()
	av := s.world.SpawnAvatar(int(join.PlayerID), join.SpawnX, join.SpawnY)
	// The spawn is a membership change the next tick's delta stream (and
	// the standby's log) must carry.
	s.sessionDeltas = append(s.sessionDeltas, virtualworld.Delta{ID: av.ID, Entity: *av})
	old := s.players[join.PlayerID]
	s.players[join.PlayerID] = pc
	delete(s.resumable, join.PlayerID) // a full join supersedes any resumable claim
	// Candidate ladder: registered supernodes ranked by the shared §3.2
	// pipeline (load, capacity, live QoE score).
	cands := s.candidateInfosLocked()
	tick := s.world.Tick()
	standbyAddr := s.standbyAddr
	s.mu.Unlock()
	if old != nil && old != pc {
		old.conn.Close()
	}

	reply := protocol.JoinReply{
		OK:              true,
		Epoch:           s.epoch,
		Tick:            tick,
		Candidates:      cands,
		CloudStreamAddr: s.Addr(),
		StandbyAddr:     standbyAddr,
	}
	pc.sendMu.Lock()
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	err = protocol.WriteMessage(conn, protocol.MsgJoinReply, reply.Marshal())
	conn.SetWriteDeadline(time.Time{})
	pc.sendMu.Unlock()
	if err != nil {
		s.dropPlayer(join.PlayerID, pc)
		return
	}
	s.playerLoop(conn, join.PlayerID, pc)
}

// resumePlayer re-admits a player session after a failover. A session is
// resumable when its avatar survived into the restored world (directly,
// or listed in the checkpoint's session table); the avatar keeps its
// exact position, HP, and state — no respawn. Unknown sessions are
// refused and fall back to a full rejoin.
//
//cfg:epochcheck
func (s *CloudServer) resumePlayer(conn net.Conn, req protocol.Resume) {
	pc := &playerConn{conn: conn}
	var (
		old         *playerConn
		cands       []protocol.CandidateInfo
		tick        uint64
		standbyAddr string
	)
	s.mu.Lock()
	known := s.world.Avatar(int(req.PlayerID)) != nil || s.resumable[req.PlayerID]
	if known {
		if s.world.Avatar(int(req.PlayerID)) == nil {
			// Session table said resumable but the avatar is gone (departed
			// after the checkpoint, removal replayed from the log): treat the
			// resume as a fresh spawn rather than refusing the player.
			width, height := s.world.Size()
			av := s.world.SpawnAvatar(int(req.PlayerID), width/2, height/2)
			s.sessionDeltas = append(s.sessionDeltas, virtualworld.Delta{ID: av.ID, Entity: *av})
		}
		old = s.players[req.PlayerID]
		s.players[req.PlayerID] = pc
		delete(s.resumable, req.PlayerID)
		cands = s.candidateInfosLocked()
		tick = s.world.Tick()
		standbyAddr = s.standbyAddr
		s.resil.ResumedPlayers++
	}
	s.mu.Unlock()
	if !known {
		//lint:ignore epochstamp refusal reply: OK=false carries no orderable state, the client falls back to a full rejoin
		refuse := protocol.ResumeReply{Reason: "unknown session"}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		protocol.WriteMessage(conn, protocol.MsgResumeReply, refuse.Marshal())
		conn.Close()
		return
	}
	if old != nil && old != pc {
		old.conn.Close()
	}

	reply := protocol.ResumeReply{
		OK: true,
		// Discard tells the client its retained state ran ahead of the
		// restored history: inputs it sent against ticks beyond Tick were
		// never committed and should be dropped, not replayed.
		Discard:         req.Epoch != s.epoch && req.Tick > tick,
		Epoch:           s.epoch,
		Tick:            tick,
		Candidates:      cands,
		CloudStreamAddr: s.Addr(),
		StandbyAddr:     standbyAddr,
	}
	pc.sendMu.Lock()
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	err := protocol.WriteMessage(conn, protocol.MsgResumeReply, reply.Marshal())
	conn.SetWriteDeadline(time.Time{})
	pc.sendMu.Unlock()
	if err != nil {
		s.dropPlayer(req.PlayerID, pc)
		return
	}
	s.playerLoop(conn, req.PlayerID, pc)
}

// playerLoop is the shared action loop: the player streams inputs until
// it leaves. The reader reuses one buffer per connection; every message
// is decoded into owned values before the next read.
func (s *CloudServer) playerLoop(conn net.Conn, playerID int32, pc *playerConn) {
	fr := protocol.NewFrameReader(conn)
	for {
		typ, payload, err := fr.Next()
		if err != nil {
			break
		}
		switch typ {
		case protocol.MsgAction:
			am, aerr := protocol.UnmarshalActionMsg(payload)
			if aerr != nil || am.Action.Player != int(playerID) {
				continue // never let a player act for another
			}
			s.mu.Lock()
			s.pending = append(s.pending, am.Action)
			s.mu.Unlock()
		case protocol.MsgQoEReport:
			rep, rerr := protocol.UnmarshalQoEReport(payload)
			if rerr != nil || rep.PlayerID != playerID {
				continue // never let a player rate on another's behalf
			}
			s.recordQoE(rep)
		case protocol.MsgBye:
			s.dropPlayer(playerID, pc)
			return
		}
	}
	s.dropPlayer(playerID, pc)
}

func (s *CloudServer) dropPlayer(id int32, pc *playerConn) {
	s.mu.Lock()
	if s.players[id] == pc {
		delete(s.players, id)
		if av := s.world.Avatar(int(id)); av != nil {
			// The departure is a membership change the delta stream and
			// the standby's log must carry.
			s.sessionDeltas = append(s.sessionDeltas, virtualworld.Delta{ID: av.ID, Removed: true})
		}
		s.world.RemovePlayer(int(id))
	}
	s.mu.Unlock()
	pc.conn.Close()
}
