// Package fognet is the runnable networked prototype of the CloudFog
// architecture: a cloud server that owns the authoritative virtual world,
// fog nodes (supernodes) that replicate it and render/stream per-player
// video, and thin player clients — the three tiers of Fig. 1 of the paper,
// speaking internal/protocol over TCP.
//
// The prototype is what a downstream adopter would run: the cloud ticks
// the world and fans out compact update batches (the Λ stream), fog nodes
// apply them to replicas, render frames for each attached player's
// viewport, encode them at the player's current Table 2 quality level, and
// stream them; players drive the receiver-driven rate adaptation of §3.3
// against the measured delivery rate.
//
// All components follow the same lifecycle contract: a constructor that
// starts listening, a Start/run goroutine owned by the component, and a
// Close that stops every goroutine and waits for them to exit.
package fognet

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/protocol"
	"cloudfog/internal/virtualworld"
)

// DefaultTickInterval is the world tick period (20 Hz).
const DefaultTickInterval = 50 * time.Millisecond

// CloudConfig parameterizes a CloudServer.
type CloudConfig struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// TickInterval is the world tick period. Defaults to
	// DefaultTickInterval.
	TickInterval time.Duration
	// WorldWidth, WorldHeight size the virtual world (defaults apply).
	WorldWidth, WorldHeight float64
	// NPCs seeds the world with this many NPCs on a grid.
	NPCs int
}

// CloudServer is the authoritative game-state tier.
type CloudServer struct {
	cfg      CloudConfig
	listener net.Listener

	mu            sync.Mutex
	world         *virtualworld.World
	pending       []virtualworld.Action
	supernodes    map[uint32]*supernodeConn
	nextSNID      uint32
	players       map[int32]net.Conn
	updateBits    int64
	ticks         int64
	fallbackBits  int64
	fallbackCount int64
	fallbackLive  int

	stop chan struct{}
	wg   sync.WaitGroup
}

type supernodeConn struct {
	id         uint32
	name       string
	streamAddr string
	capacity   int
	conn       net.Conn
	sendMu     sync.Mutex
}

// NewCloudServer starts a cloud server listening on cfg.Addr.
func NewCloudServer(cfg CloudConfig) (*CloudServer, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = DefaultTickInterval
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cloud listen: %w", err)
	}
	s := &CloudServer{
		cfg:        cfg,
		listener:   ln,
		world:      virtualworld.New(cfg.WorldWidth, cfg.WorldHeight),
		supernodes: make(map[uint32]*supernodeConn),
		players:    make(map[int32]net.Conn),
		nextSNID:   1,
		stop:       make(chan struct{}),
	}
	width, height := s.world.Size()
	for i := 0; i < cfg.NPCs; i++ {
		s.world.SpawnNPC(
			width*float64(i%4+1)/5,
			height*float64(i/4+1)/5,
		)
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.tickLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *CloudServer) Addr() string { return s.listener.Addr().String() }

// Close stops the server and waits for all connection goroutines.
func (s *CloudServer) Close() error {
	select {
	case <-s.stop:
		return nil // already closed
	default:
	}
	close(s.stop)
	err := s.listener.Close()
	s.mu.Lock()
	for _, sn := range s.supernodes {
		sn.conn.Close()
	}
	for _, c := range s.players {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Stats reports cloud-side counters.
type CloudStats struct {
	// Ticks is how many world ticks ran.
	Ticks int64
	// UpdateBits is the total update-stream egress (the Λ traffic).
	UpdateBits int64
	// Supernodes is the number of registered supernodes.
	Supernodes int
	// Players is the number of admitted players.
	Players int
	// Entities is the current world entity count.
	Entities int
	// FallbackBits is the video egress of cloud-streamed (fallback)
	// players — the expensive traffic CloudFog exists to avoid.
	FallbackBits int64
	// FallbackPlayers is the number of live cloud-streamed sessions.
	FallbackPlayers int
	// FallbackFrames is the total frames the cloud rendered itself.
	FallbackFrames int64
}

// Stats snapshots the counters.
func (s *CloudServer) Stats() CloudStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CloudStats{
		Ticks:           s.ticks,
		UpdateBits:      s.updateBits,
		Supernodes:      len(s.supernodes),
		Players:         len(s.players),
		Entities:        s.world.NumEntities(),
		FallbackBits:    s.fallbackBits,
		FallbackPlayers: s.fallbackLive,
		FallbackFrames:  s.fallbackCount,
	}
}

func (s *CloudServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// tickLoop advances the world and fans out update batches.
func (s *CloudServer) tickLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.tickOnce()
		}
	}
}

func (s *CloudServer) tickOnce() {
	s.mu.Lock()
	actions := s.pending
	s.pending = nil
	deltas := s.world.Step(actions)
	s.ticks++
	tick := s.world.Tick()
	sns := make([]*supernodeConn, 0, len(s.supernodes))
	for _, sn := range s.supernodes {
		sns = append(sns, sn)
	}
	s.mu.Unlock()

	if len(deltas) == 0 || len(sns) == 0 {
		return
	}
	batch := protocol.UpdateBatch{Tick: tick, Deltas: deltas}
	payload := batch.Marshal()
	var bits int64
	for _, sn := range sns {
		sn.sendMu.Lock()
		err := protocol.WriteMessage(sn.conn, protocol.MsgUpdateBatch, payload)
		sn.sendMu.Unlock()
		if err != nil {
			// The read loop of this supernode connection will observe the
			// failure and unregister it.
			continue
		}
		bits += int64(len(payload)+5) * 8
	}
	s.mu.Lock()
	s.updateBits += bits
	s.mu.Unlock()
}

// handleConn dispatches on the first message: supernode registration or
// player admission.
func (s *CloudServer) handleConn(conn net.Conn) {
	defer s.wg.Done()
	typ, payload, err := protocol.ReadMessage(conn)
	if err != nil {
		conn.Close()
		return
	}
	switch typ {
	case protocol.MsgSupernodeHello:
		s.serveSupernode(conn, payload)
	case protocol.MsgPlayerJoin:
		s.servePlayer(conn, payload)
	case protocol.MsgProbe:
		// Fallback streaming session: the cloud itself renders for
		// players no supernode accepted. The cloud never refuses —
		// it is the last resort (and the bandwidth bill shows it).
		s.serveFallbackStream(conn)
	default:
		conn.Close()
	}
}

// serveFallbackStream answers the probe and runs a cloud-rendered video
// session, exactly like a supernode but from the authoritative world.
func (s *CloudServer) serveFallbackStream(conn net.Conn) {
	defer conn.Close()
	reply := protocol.ProbeReply{Available: 1 << 15} // effectively unbounded
	if protocol.WriteMessage(conn, protocol.MsgProbeReply, reply.Marshal()) != nil {
		return
	}
	typ, payload, err := protocol.ReadMessage(conn)
	if err != nil || typ != protocol.MsgPlayerAttach {
		return
	}
	attach, err := protocol.UnmarshalPlayerAttach(payload)
	if err != nil {
		return
	}
	if protocol.WriteMessage(conn, protocol.MsgAttachReply, protocol.AttachReply{OK: true}.Marshal()) != nil {
		return
	}
	s.mu.Lock()
	s.fallbackLive++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.fallbackLive--
		s.mu.Unlock()
	}()
	runVideoSession(conn, attach.PlayerID, game.QualityLevel(attach.QualityLevel),
		DefaultFrameInterval, s, cloudFallbackCounters{s}, s.stop, &s.wg)
}

// currentSnapshot implements snapshotSource over the authoritative world.
func (s *CloudServer) currentSnapshot() virtualworld.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.world.Snapshot()
}

// cloudFallbackCounters routes fallback-session egress into the cloud's
// bandwidth accounting.
type cloudFallbackCounters struct{ s *CloudServer }

func (c cloudFallbackCounters) addFrame(bits int) {
	c.s.mu.Lock()
	c.s.fallbackBits += int64(bits)
	c.s.fallbackCount++
	c.s.mu.Unlock()
}

func (s *CloudServer) serveSupernode(conn net.Conn, payload []byte) {
	hello, err := protocol.UnmarshalSupernodeHello(payload)
	if err != nil {
		conn.Close()
		return
	}
	s.mu.Lock()
	sn := &supernodeConn{
		id:         s.nextSNID,
		name:       hello.Name,
		streamAddr: hello.StreamAddr,
		capacity:   hello.Capacity,
		conn:       conn,
	}
	s.nextSNID++
	s.supernodes[sn.id] = sn
	welcome := protocol.SupernodeWelcome{SupernodeID: sn.id, Snapshot: s.world.Snapshot()}
	s.mu.Unlock()

	sn.sendMu.Lock()
	err = protocol.WriteMessage(conn, protocol.MsgSupernodeWelcome, welcome.Marshal())
	sn.sendMu.Unlock()
	if err == nil {
		// Block on the connection until the supernode leaves; it sends
		// nothing further (updates flow the other way).
		for {
			if _, _, rerr := protocol.ReadMessage(conn); rerr != nil {
				break
			}
		}
	}
	s.mu.Lock()
	delete(s.supernodes, sn.id)
	s.mu.Unlock()
	conn.Close()
}

func (s *CloudServer) servePlayer(conn net.Conn, payload []byte) {
	join, err := protocol.UnmarshalPlayerJoin(payload)
	if err != nil {
		conn.Close()
		return
	}
	s.mu.Lock()
	s.world.SpawnAvatar(int(join.PlayerID), join.SpawnX, join.SpawnY)
	s.players[join.PlayerID] = conn
	// Candidate list: registered supernode stream addresses, stable order.
	addrs := make([]string, 0, len(s.supernodes))
	for _, sn := range s.supernodes {
		addrs = append(addrs, sn.streamAddr)
	}
	sort.Strings(addrs)
	s.mu.Unlock()

	reply := protocol.JoinReply{
		OK:              true,
		SupernodeAddrs:  addrs,
		CloudStreamAddr: s.Addr(),
	}
	if err := protocol.WriteMessage(conn, protocol.MsgJoinReply, reply.Marshal()); err != nil {
		s.dropPlayer(join.PlayerID, conn)
		return
	}

	// Action loop: the player streams inputs until it leaves.
	for {
		typ, payload, err := protocol.ReadMessage(conn)
		if err != nil {
			break
		}
		switch typ {
		case protocol.MsgAction:
			am, aerr := protocol.UnmarshalActionMsg(payload)
			if aerr != nil || am.Action.Player != int(join.PlayerID) {
				continue // never let a player act for another
			}
			s.mu.Lock()
			s.pending = append(s.pending, am.Action)
			s.mu.Unlock()
		case protocol.MsgBye:
			s.dropPlayer(join.PlayerID, conn)
			return
		}
	}
	s.dropPlayer(join.PlayerID, conn)
}

func (s *CloudServer) dropPlayer(id int32, conn net.Conn) {
	s.mu.Lock()
	if s.players[id] == conn {
		delete(s.players, id)
		s.world.RemovePlayer(int(id))
	}
	s.mu.Unlock()
	conn.Close()
}
