// Package fognet is the runnable networked prototype of the CloudFog
// architecture: a cloud server that owns the authoritative virtual world,
// fog nodes (supernodes) that replicate it and render/stream per-player
// video, and thin player clients — the three tiers of Fig. 1 of the paper,
// speaking internal/protocol over TCP.
//
// The prototype is what a downstream adopter would run: the cloud ticks
// the world and fans out compact update batches (the Λ stream), fog nodes
// apply them to replicas, render frames for each attached player's
// viewport, encode them at the player's current Table 2 quality level, and
// stream them; players drive the receiver-driven rate adaptation of §3.3
// against the measured delivery rate.
//
// Supernodes are contributed desktops (§3.2.2), so every tier defends
// itself: the cloud heartbeats supernodes and evicts the silent ones, the
// per-supernode send queues are bounded and writes carry deadlines (one
// stalled supernode cannot stall the Λ fan-out), fog nodes reconnect to
// the cloud with jittered exponential backoff and resync their replicas,
// and players enforce read deadlines on the video stream and fail over
// down the ladder serving supernode → candidates → cloud fallback.
//
// All components follow the same lifecycle contract: a constructor that
// starts listening, a Start/run goroutine owned by the component, and a
// Close that stops every goroutine and waits for them to exit.
package fognet

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/protocol"
	"cloudfog/internal/reputation"
	"cloudfog/internal/rng"
	"cloudfog/internal/selection"
	"cloudfog/internal/virtualworld"
)

// DefaultTickInterval is the world tick period (20 Hz).
const DefaultTickInterval = 50 * time.Millisecond

// Liveness and robustness defaults. Tests lower the intervals.
const (
	// DefaultHeartbeatInterval is how often the cloud pings supernodes.
	DefaultHeartbeatInterval = time.Second
	// DefaultHeartbeatMisses is how many unanswered heartbeats evict a
	// supernode.
	DefaultHeartbeatMisses = 3
	// DefaultWriteTimeout bounds any single protocol write.
	DefaultWriteTimeout = 2 * time.Second
	// DefaultSendQueueLen bounds the per-supernode outbound queue.
	DefaultSendQueueLen = 64
	// DefaultDialTimeout bounds connection establishment.
	DefaultDialTimeout = 5 * time.Second
	// handshakeTimeout bounds the first message of a new connection, so a
	// connect-and-hang client cannot pin a handler goroutine forever.
	handshakeTimeout = 5 * time.Second
)

// DialFunc establishes an outbound connection; it exists so tests and the
// chaos demo can route dials through faultnet injectors.
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// CloudConfig parameterizes a CloudServer.
type CloudConfig struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// TickInterval is the world tick period. Defaults to
	// DefaultTickInterval.
	TickInterval time.Duration
	// WorldWidth, WorldHeight size the virtual world (defaults apply).
	WorldWidth, WorldHeight float64
	// NPCs seeds the world with this many NPCs on a grid.
	NPCs int
	// HeartbeatInterval is the supernode liveness ping period. Defaults
	// to DefaultHeartbeatInterval.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many consecutive unanswered heartbeats evict
	// a supernode. Defaults to DefaultHeartbeatMisses.
	HeartbeatMisses int
	// WriteTimeout bounds every protocol write. Defaults to
	// DefaultWriteTimeout.
	WriteTimeout time.Duration
	// SendQueueLen bounds the per-supernode outbound queue; when it is
	// full, further messages are dropped (and counted) rather than
	// blocking the tick loop. Defaults to DefaultSendQueueLen.
	SendQueueLen int
	// WrapConn, when set, wraps every accepted connection — the faultnet
	// injection point for chaos tests.
	WrapConn func(net.Conn) net.Conn
	// SelectionPolicy ranks the candidate ladders pushed to players
	// (§3.2 via internal/selection). Defaults to
	// selection.PolicyReputation, scoring supernodes by the cloud's live
	// QoE book.
	SelectionPolicy selection.Policy
	// Seed drives the deterministic tie-break shuffle of the ladder
	// ranking.
	Seed uint64
}

// CloudServer is the authoritative game-state tier.
type CloudServer struct {
	cfg      CloudConfig
	listener net.Listener

	mu            sync.Mutex
	world         *virtualworld.World
	pending       []virtualworld.Action
	supernodes    map[uint32]*supernodeConn // guarded by mu
	nextSNID      uint32
	players       map[int32]*playerConn // guarded by mu
	ticks         int64
	fallbackBits  int64
	fallbackCount int64
	fallbackLive  int
	hbSeq         uint32
	resil         CloudResilience

	// Hot-path counters live outside mu: the per-supernode writer
	// goroutines and the non-blocking enqueue bump them on every tick
	// fan-out, and taking the server mutex there would make the writers
	// contend with the tick loop itself.
	updateBits atomic.Int64
	queueDrops atomic.Int64

	// Live §3.2 selection control plane: QoE reports from players feed
	// book, and candidateInfosLocked ranks the ladder with ranker. addrIDs maps
	// stream addresses to stable reputation IDs so a supernode keeps its
	// history across reconnects (connection IDs are reassigned).
	book       *reputation.GlobalBook
	addrIDs    map[string]int
	nextAddrID int
	ranker     selection.PolicyRanker
	rankRand   *rng.Rand
	started    time.Time

	stop chan struct{}
	wg   sync.WaitGroup
}

// CloudResilience groups the cloud's failure-handling counters.
type CloudResilience struct {
	// Evictions counts supernodes removed for missed heartbeats.
	Evictions int64
	// Departures counts supernodes whose connection simply closed.
	Departures int64
	// HeartbeatsSent / HeartbeatAcks count the liveness traffic.
	HeartbeatsSent int64
	HeartbeatAcks  int64
	// SendQueueDrops counts messages dropped because a supernode's
	// bounded send queue was full — the stalls that never reached the
	// tick loop.
	SendQueueDrops int64
	// CandidateUpdates counts failover-ladder refreshes pushed to
	// players.
	CandidateUpdates int64
	// QoEReports counts player ratings absorbed into the reputation book.
	QoEReports int64
}

// sharedPayload is a reference-counted pooled payload fanned out to many
// per-supernode send queues at once (the tick's update batch, the
// heartbeat ping). The encode buffer returns to the protocol pool only
// when the last writer has flushed it — the pool-lifecycle rule of
// DESIGN.md §10. Refs lost to a dying writer (messages still queued when
// the connection closes) simply strand the buffer for the GC; the pool
// never sees a buffer that anyone might still read.
type sharedPayload struct {
	buf  *protocol.Buffer
	refs atomic.Int32
}

var sharedPayloadPool = sync.Pool{New: func() any { return &sharedPayload{} }}

// newSharedPayload takes a pooled buffer and arms it for refs readers.
func newSharedPayload(refs int) *sharedPayload {
	sp := sharedPayloadPool.Get().(*sharedPayload)
	sp.buf = protocol.GetBuffer()
	sp.refs.Store(int32(refs))
	return sp
}

// release drops one reference; the last one returns both the buffer and
// the wrapper to their pools.
func (sp *sharedPayload) release() {
	if sp == nil {
		return
	}
	if sp.refs.Add(-1) == 0 {
		protocol.PutBuffer(sp.buf)
		sp.buf = nil
		sharedPayloadPool.Put(sp)
	}
}

// outMsg is one queued message for a supernode writer. payload aliases
// shared.buf.B when shared is non-nil; the writer must release(shared)
// only after the payload has been flushed (or dropped).
type outMsg struct {
	typ     protocol.MsgType
	payload []byte
	shared  *sharedPayload
}

type supernodeConn struct {
	id         uint32
	name       string
	streamAddr string
	capacity   int
	conn       net.Conn
	sendQ      chan outMsg
	done       chan struct{}
	stopOnce   sync.Once
	// missed counts consecutive unanswered heartbeats (cloud mu).
	missed int
	// lastAttached is the player count from the latest heartbeat ack
	// (cloud mu) — the load the ladder ranking sorts by.
	lastAttached int
}

// playerConn is a player's control connection; sendMu serializes the
// cloud's pushes (join reply, candidate updates) onto it.
type playerConn struct {
	conn   net.Conn
	sendMu sync.Mutex
}

// NewCloudServer starts a cloud server listening on cfg.Addr.
func NewCloudServer(cfg CloudConfig) (*CloudServer, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = DefaultTickInterval
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = DefaultHeartbeatMisses
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.SendQueueLen <= 0 {
		cfg.SendQueueLen = DefaultSendQueueLen
	}
	if cfg.SelectionPolicy == 0 {
		cfg.SelectionPolicy = selection.PolicyReputation
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cloud listen: %w", err)
	}
	book := reputation.NewGlobalBook(reputation.DefaultLambda)
	s := &CloudServer{
		cfg:        cfg,
		listener:   ln,
		world:      virtualworld.New(cfg.WorldWidth, cfg.WorldHeight),
		supernodes: make(map[uint32]*supernodeConn),
		players:    make(map[int32]*playerConn),
		nextSNID:   1,
		book:       book,
		addrIDs:    make(map[string]int),
		ranker:     selection.PolicyRanker{Policy: cfg.SelectionPolicy, Scorer: optimisticScorer{book}},
		rankRand:   rng.New(cfg.Seed).SplitNamed("cloud-ladder"),
		started:    time.Now(),
		stop:       make(chan struct{}),
	}
	width, height := s.world.Size()
	for i := 0; i < cfg.NPCs; i++ {
		s.world.SpawnNPC(
			width*float64(i%4+1)/5,
			height*float64(i/4+1)/5,
		)
	}
	s.wg.Add(3)
	go s.acceptLoop()
	go s.tickLoop()
	go s.heartbeatLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *CloudServer) Addr() string { return s.listener.Addr().String() }

// Close stops the server and waits for all connection goroutines.
func (s *CloudServer) Close() error {
	select {
	case <-s.stop:
		return nil // already closed
	default:
	}
	close(s.stop)
	err := s.listener.Close()
	s.mu.Lock()
	sns := make([]*supernodeConn, 0, len(s.supernodes))
	for _, sn := range s.supernodes {
		sns = append(sns, sn)
	}
	for _, p := range s.players {
		p.conn.Close()
	}
	s.mu.Unlock()
	for _, sn := range sns {
		sn.shutdown()
	}
	s.wg.Wait()
	return err
}

// shutdown stops the supernode's writer and closes its connection; safe to
// call more than once.
func (sn *supernodeConn) shutdown() {
	sn.stopOnce.Do(func() { close(sn.done) })
	sn.conn.Close()
}

// Stats reports cloud-side counters.
type CloudStats struct {
	// Ticks is how many world ticks ran.
	Ticks int64
	// UpdateBits is the total update-stream egress (the Λ traffic).
	UpdateBits int64
	// Supernodes is the number of registered supernodes.
	Supernodes int
	// Players is the number of admitted players.
	Players int
	// Entities is the current world entity count.
	Entities int
	// FallbackBits is the video egress of cloud-streamed (fallback)
	// players — the expensive traffic CloudFog exists to avoid.
	FallbackBits int64
	// FallbackPlayers is the number of live cloud-streamed sessions.
	FallbackPlayers int
	// FallbackFrames is the total frames the cloud rendered itself.
	FallbackFrames int64
	// Resilience groups the failure-handling counters.
	Resilience CloudResilience
}

// Stats snapshots the counters.
func (s *CloudServer) Stats() CloudStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	resil := s.resil
	resil.SendQueueDrops = s.queueDrops.Load()
	return CloudStats{
		Ticks:           s.ticks,
		UpdateBits:      s.updateBits.Load(),
		Supernodes:      len(s.supernodes),
		Players:         len(s.players),
		Entities:        s.world.NumEntities(),
		FallbackBits:    s.fallbackBits,
		FallbackPlayers: s.fallbackLive,
		FallbackFrames:  s.fallbackCount,
		Resilience:      resil,
	}
}

func (s *CloudServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		if s.cfg.WrapConn != nil {
			conn = s.cfg.WrapConn(conn)
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// tickLoop advances the world and fans out update batches.
func (s *CloudServer) tickLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.tickOnce()
		}
	}
}

func (s *CloudServer) tickOnce() {
	s.mu.Lock()
	actions := s.pending
	s.pending = nil
	deltas := s.world.Step(actions)
	s.ticks++
	tick := s.world.Tick()
	sns := make([]*supernodeConn, 0, len(s.supernodes))
	for _, sn := range s.supernodes {
		sns = append(sns, sn)
	}
	s.mu.Unlock()

	if len(deltas) == 0 || len(sns) == 0 {
		return
	}
	// Encode the batch once into a pooled, reference-counted buffer shared
	// by every supernode queue: one encode per tick regardless of fan-out
	// width, and the buffer returns to the pool after the last flush.
	batch := protocol.UpdateBatch{Tick: tick, Deltas: deltas}
	sp := newSharedPayload(len(sns))
	sp.buf.B = batch.AppendTo(sp.buf.B[:0])
	for _, sn := range sns {
		// Enqueue only: the per-supernode writer goroutine does the
		// blocking work, so a stalled supernode can never stall this
		// fan-out.
		s.enqueue(sn, outMsg{typ: protocol.MsgUpdateBatch, payload: sp.buf.B, shared: sp})
	}
}

// enqueue offers a message to the supernode's bounded send queue without
// ever blocking; full queues drop (and count) the message, releasing its
// shared-payload reference.
func (s *CloudServer) enqueue(sn *supernodeConn, m outMsg) bool {
	select {
	case sn.sendQ <- m:
		return true
	default:
		m.shared.release()
		s.queueDrops.Add(1)
		return false
	}
}

// snWriter is the single writer for one supernode connection, and it
// coalesces: when it wakes it drains everything queued, appends each
// message's frame into one pooled buffer, sets one write deadline, and
// flushes with a single Write — a supernode that fell a few messages
// behind costs one syscall to catch up, not one per message. The first
// failure closes the connection, which the read loop observes and
// unregisters.
func (s *CloudServer) snWriter(sn *supernodeConn) {
	defer s.wg.Done()
	var pending []outMsg // reused drain list
	for {
		select {
		case <-sn.done:
			return
		case m := <-sn.sendQ:
			pending = append(pending[:0], m)
		drain:
			for {
				select {
				case m2 := <-sn.sendQ:
					pending = append(pending, m2)
				default:
					break drain
				}
			}
			buf := protocol.GetBuffer()
			var batchBits int64
			var err error
			for _, m := range pending {
				if buf.B, err = protocol.AppendFrame(buf.B, m.typ, m.payload); err != nil {
					break
				}
				if m.typ == protocol.MsgUpdateBatch {
					batchBits += int64(len(m.payload)+protocol.HeaderLen) * 8
				}
			}
			if err == nil {
				sn.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
				_, err = sn.conn.Write(buf.B)
			}
			// Flush (or failure) done: drop the shared-payload references,
			// then the scratch buffer.
			for i := range pending {
				pending[i].shared.release()
				pending[i] = outMsg{}
			}
			protocol.PutBuffer(buf)
			if err != nil {
				sn.conn.Close()
				return
			}
			s.updateBits.Add(batchBits)
		}
	}
}

// heartbeatLoop pings every supernode each interval and evicts the ones
// that miss cfg.HeartbeatMisses consecutive replies (§3.2.2: supernodes
// are unreliable contributed desktops; the cloud must notice churn).
func (s *CloudServer) heartbeatLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.heartbeatOnce()
		}
	}
}

func (s *CloudServer) heartbeatOnce() {
	s.mu.Lock()
	s.hbSeq++
	seq := s.hbSeq
	var ping, evict []*supernodeConn
	for _, sn := range s.supernodes {
		if sn.missed >= s.cfg.HeartbeatMisses {
			evict = append(evict, sn)
			continue
		}
		sn.missed++
		ping = append(ping, sn)
	}
	s.resil.HeartbeatsSent += int64(len(ping))
	s.mu.Unlock()

	if len(ping) > 0 {
		sp := newSharedPayload(len(ping))
		sp.buf.B = protocol.Heartbeat{Seq: seq}.AppendTo(sp.buf.B[:0])
		for _, sn := range ping {
			s.enqueue(sn, outMsg{typ: protocol.MsgHeartbeat, payload: sp.buf.B, shared: sp})
		}
	}
	for _, sn := range evict {
		s.unregisterSupernode(sn, true)
	}
}

// unregisterSupernode removes a supernode (eviction or departure), stops
// its writer, and pushes the refreshed candidate ladder to every player.
func (s *CloudServer) unregisterSupernode(sn *supernodeConn, evicted bool) {
	s.mu.Lock()
	cur, present := s.supernodes[sn.id]
	if present && cur == sn {
		delete(s.supernodes, sn.id)
		if evicted {
			s.resil.Evictions++
		} else {
			s.resil.Departures++
		}
	} else {
		present = false
	}
	s.mu.Unlock()
	sn.shutdown()
	if present {
		s.broadcastCandidates()
	}
}

// optimisticScorer scores supernodes by the cloud's QoE book with an
// optimistic prior: a supernode nobody has reported on yet scores 0.5,
// between proven-good (→1) and proven-bad (→0). Unknowns are therefore
// tried before demoted supernodes but after established ones — without the
// prior, a freshly-stalled supernode (score ~0) would be indistinguishable
// from a brand-new one.
type optimisticScorer struct{ book *reputation.GlobalBook }

// unknownScore is the prior for supernodes with no QoE reports.
const unknownScore = 0.5

func (o optimisticScorer) Score(id, today int) float64 {
	if o.book.NumRatings(id) == 0 {
		return unknownScore
	}
	return o.book.Score(id, today)
}

// qoeDayMinutes is the wall-clock length of one reputation "day": the
// aging unit of Eq. 7, compressed so a long-running cloud forgets old
// incidents within the hour rather than within the week.
const qoeDayMinutes = 1

// day is the cloud's reputation clock (mu not required).
func (s *CloudServer) day() int {
	return int(time.Since(s.started).Minutes()) / qoeDayMinutes
}

// addrID returns the stable reputation ID for a stream address, allocating
// one on first sight (caller holds mu). Keyed by address, not connection
// ID, so a supernode keeps its reputation across reconnects.
func (s *CloudServer) addrID(addr string) int {
	id, ok := s.addrIDs[addr]
	if !ok {
		id = s.nextAddrID
		s.nextAddrID++
		s.addrIDs[addr] = id
	}
	return id
}

// candidateInfosLocked snapshots the current failover ladder — the caller
// must hold mu — ranked by
// the shared §3.2 pipeline: candidates carry their last-acked load,
// advertised capacity, and live QoE score, ordered best-first by the
// configured policy (the alphabetical sort this replaces ignored all
// three). Candidates are pre-sorted by stable ID so the deterministic
// tie-break shuffle is meaningful despite map iteration order.
func (s *CloudServer) candidateInfosLocked() []protocol.CandidateInfo {
	cands := make([]selection.Candidate, 0, len(s.supernodes))
	for _, sn := range s.supernodes {
		cands = append(cands, selection.Candidate{
			ID:       s.addrID(sn.streamAddr),
			Addr:     sn.streamAddr,
			Load:     sn.lastAttached,
			Capacity: sn.capacity,
			RTTMs:    -1, // the cloud cannot ping on the player's behalf
		})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ID < cands[j].ID })
	s.ranker.Rank(cands, s.day(), s.rankRand)
	out := make([]protocol.CandidateInfo, len(cands))
	for i, c := range cands {
		out[i] = protocol.CandidateInfo{
			Addr:          c.Addr,
			Load:          uint16(c.Load),
			Capacity:      uint16(c.Capacity),
			MeasuredRTTMs: -1,
			Score:         c.Score,
		}
	}
	return out
}

// Candidates returns the current ranked failover ladder — what the next
// joining player would receive. Exposed for tests and operational
// inspection.
func (s *CloudServer) Candidates() []protocol.CandidateInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.candidateInfosLocked()
}

// recordQoE absorbs a player's rating into the reputation book. Stall and
// fallback reports re-rank the ladder immediately and push it to every
// player; periodic healthy reports wait for the next natural refresh.
func (s *CloudServer) recordQoE(rep protocol.QoEReport) {
	s.mu.Lock()
	id, known := s.addrIDs[rep.Addr]
	if !known {
		// Never seen this address as a supernode: a bogus or stale
		// report; absorbing it would let players mint reputation IDs.
		s.mu.Unlock()
		return
	}
	s.book.Rate(id, rep.Rating, s.day())
	s.resil.QoEReports++
	s.mu.Unlock()
	if rep.Stalled || rep.Fallback {
		s.broadcastCandidates()
	}
}

// broadcastCandidates pushes the current ladder to every admitted player,
// best-effort with write deadlines, so migrations never chase a stale
// address list.
func (s *CloudServer) broadcastCandidates() {
	s.mu.Lock()
	update := protocol.CandidateUpdate{
		Candidates:      s.candidateInfosLocked(),
		CloudStreamAddr: s.Addr(),
	}
	players := make([]*playerConn, 0, len(s.players))
	for _, p := range s.players {
		players = append(players, p)
	}
	s.mu.Unlock()
	// One pooled buffer holds the framed update for every player; the
	// writes are synchronous, so it goes back to the pool after the loop.
	buf := protocol.GetBuffer()
	defer protocol.PutBuffer(buf)
	var err error
	if buf.B, err = protocol.AppendMessage(buf.B[:0], protocol.MsgCandidateUpdate, &update); err != nil {
		return
	}
	var sent int64
	for _, p := range players {
		p.sendMu.Lock()
		p.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		_, err := p.conn.Write(buf.B)
		p.conn.SetWriteDeadline(time.Time{})
		p.sendMu.Unlock()
		if err == nil {
			sent++
		}
	}
	s.mu.Lock()
	s.resil.CandidateUpdates += sent
	s.mu.Unlock()
}

// handleConn dispatches on the first message: supernode registration or
// player admission. The first message carries a deadline so a silent
// connection cannot pin this goroutine.
func (s *CloudServer) handleConn(conn net.Conn) {
	defer s.wg.Done()
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	typ, payload, err := protocol.ReadMessage(conn)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	switch typ {
	case protocol.MsgSupernodeHello:
		s.serveSupernode(conn, payload)
	case protocol.MsgPlayerJoin:
		s.servePlayer(conn, payload)
	case protocol.MsgProbe:
		// Fallback streaming session: the cloud itself renders for
		// players no supernode accepted. The cloud never refuses —
		// it is the last resort (and the bandwidth bill shows it).
		s.serveFallbackStream(conn)
	default:
		conn.Close()
	}
}

// serveFallbackStream answers the probe and runs a cloud-rendered video
// session, exactly like a supernode but from the authoritative world.
func (s *CloudServer) serveFallbackStream(conn net.Conn) {
	defer conn.Close()
	reply := protocol.ProbeReply{Available: 1 << 15} // effectively unbounded
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if protocol.WriteMessage(conn, protocol.MsgProbeReply, reply.Marshal()) != nil {
		return
	}
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	typ, payload, err := protocol.ReadMessage(conn)
	if err != nil || typ != protocol.MsgPlayerAttach {
		return
	}
	conn.SetReadDeadline(time.Time{})
	attach, err := protocol.UnmarshalPlayerAttach(payload)
	if err != nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if protocol.WriteMessage(conn, protocol.MsgAttachReply, protocol.AttachReply{OK: true}.Marshal()) != nil {
		return
	}
	conn.SetWriteDeadline(time.Time{})
	s.mu.Lock()
	s.fallbackLive++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.fallbackLive--
		s.mu.Unlock()
	}()
	runVideoSession(conn, attach.PlayerID, game.QualityLevel(attach.QualityLevel),
		DefaultFrameInterval, s.cfg.WriteTimeout, s, cloudFallbackCounters{s}, s.stop, &s.wg)
}

// currentSnapshot implements snapshotSource over the authoritative world.
func (s *CloudServer) currentSnapshot() virtualworld.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.world.Snapshot()
}

// cloudFallbackCounters routes fallback-session egress into the cloud's
// bandwidth accounting.
type cloudFallbackCounters struct{ s *CloudServer }

func (c cloudFallbackCounters) addFrame(bits int) {
	c.s.mu.Lock()
	c.s.fallbackBits += int64(bits)
	c.s.fallbackCount++
	c.s.mu.Unlock()
}

func (s *CloudServer) serveSupernode(conn net.Conn, payload []byte) {
	hello, err := protocol.UnmarshalSupernodeHello(payload)
	if err != nil {
		conn.Close()
		return
	}
	s.mu.Lock()
	sn := &supernodeConn{
		id:         s.nextSNID,
		name:       hello.Name,
		streamAddr: hello.StreamAddr,
		capacity:   hello.Capacity,
		conn:       conn,
		sendQ:      make(chan outMsg, s.cfg.SendQueueLen),
		done:       make(chan struct{}),
	}
	s.nextSNID++
	s.supernodes[sn.id] = sn
	welcome := protocol.SupernodeWelcome{SupernodeID: sn.id, Snapshot: s.world.Snapshot()}
	s.mu.Unlock()

	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	err = protocol.WriteMessage(conn, protocol.MsgSupernodeWelcome, welcome.Marshal())
	conn.SetWriteDeadline(time.Time{})
	if err != nil {
		s.unregisterSupernode(sn, false)
		return
	}
	// The new supernode changes every player's best failover ladder.
	s.broadcastCandidates()
	s.wg.Add(1)
	go s.snWriter(sn)

	// Read loop: heartbeat acks flow back here; anything else is ignored.
	// A read error means the supernode left or was evicted. The reader
	// reuses one buffer per connection; acks are decoded before the next
	// read, so nothing aliases it across iterations.
	fr := protocol.NewFrameReader(conn)
	for {
		typ, payload, rerr := fr.Next()
		if rerr != nil {
			break
		}
		if typ != protocol.MsgHeartbeatAck {
			continue
		}
		ack, aerr := protocol.UnmarshalHeartbeatAck(payload)
		if aerr != nil {
			continue
		}
		s.mu.Lock()
		sn.missed = 0
		// The ack doubles as a load report: the attached-player count
		// feeds the availability sort of the candidate ladder.
		sn.lastAttached = int(ack.Attached)
		s.resil.HeartbeatAcks++
		s.mu.Unlock()
	}
	s.unregisterSupernode(sn, false)
}

func (s *CloudServer) servePlayer(conn net.Conn, payload []byte) {
	join, err := protocol.UnmarshalPlayerJoin(payload)
	if err != nil {
		conn.Close()
		return
	}
	pc := &playerConn{conn: conn}
	s.mu.Lock()
	s.world.SpawnAvatar(int(join.PlayerID), join.SpawnX, join.SpawnY)
	s.players[join.PlayerID] = pc
	// Candidate ladder: registered supernodes ranked by the shared §3.2
	// pipeline (load, capacity, live QoE score).
	cands := s.candidateInfosLocked()
	s.mu.Unlock()

	reply := protocol.JoinReply{
		OK:              true,
		Candidates:      cands,
		CloudStreamAddr: s.Addr(),
	}
	pc.sendMu.Lock()
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	err = protocol.WriteMessage(conn, protocol.MsgJoinReply, reply.Marshal())
	conn.SetWriteDeadline(time.Time{})
	pc.sendMu.Unlock()
	if err != nil {
		s.dropPlayer(join.PlayerID, pc)
		return
	}

	// Action loop: the player streams inputs until it leaves. The reader
	// reuses one buffer per connection; every message is decoded into
	// owned values before the next read.
	fr := protocol.NewFrameReader(conn)
	for {
		typ, payload, err := fr.Next()
		if err != nil {
			break
		}
		switch typ {
		case protocol.MsgAction:
			am, aerr := protocol.UnmarshalActionMsg(payload)
			if aerr != nil || am.Action.Player != int(join.PlayerID) {
				continue // never let a player act for another
			}
			s.mu.Lock()
			s.pending = append(s.pending, am.Action)
			s.mu.Unlock()
		case protocol.MsgQoEReport:
			rep, rerr := protocol.UnmarshalQoEReport(payload)
			if rerr != nil || rep.PlayerID != join.PlayerID {
				continue // never let a player rate on another's behalf
			}
			s.recordQoE(rep)
		case protocol.MsgBye:
			s.dropPlayer(join.PlayerID, pc)
			return
		}
	}
	s.dropPlayer(join.PlayerID, pc)
}

func (s *CloudServer) dropPlayer(id int32, pc *playerConn) {
	s.mu.Lock()
	if s.players[id] == pc {
		delete(s.players, id)
		s.world.RemovePlayer(int(id))
	}
	s.mu.Unlock()
	pc.conn.Close()
}
