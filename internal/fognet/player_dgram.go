package fognet

import (
	"net"
	"net/netip"
	"time"

	"cloudfog/internal/protocol"
	"cloudfog/internal/transport"
)

// dgHelloAttempts bounds how many hellos the player sends before
// abandoning the upgrade and staying on TCP. Hellos are datagrams too —
// any one of them can be lost — so the handshake is repeat-until-frame.
const dgHelloAttempts = 8

// dgResult is how a datagram video session ended.
type dgResult int

const (
	// dgClosed: the client is shutting down.
	dgClosed dgResult = iota
	// dgStall: the datagram stream went silent past VideoReadTimeout;
	// treat it like any other stream failure and migrate.
	dgStall
	// dgNoUpgrade: the hello handshake never completed, so the fog never
	// switched away from TCP; resume reading the existing stream.
	dgNoUpgrade
)

// runDatagramVideo is the player's unreliable video path: it opens a UDP
// socket, helloes the fog's datagram endpoint with the offered token
// until the first frame arrives, then receives frames until the client
// closes or the stream stalls. conn is the session's TCP connection,
// which keeps carrying control (rate changes out, nothing expected in)
// for the duration.
//
// Ordering discipline: every datagram is classified by the RecvTracker —
// only Fresh frames are decoded, so a frame older than one already shown
// is never delivered, no matter how it was lost, duplicated, or
// reordered in flight. The tracker's window accounting feeds the
// adaptation controller the loss fraction TCP would have hidden.
func (p *PlayerClient) runDatagramVideo(conn net.Conn, rep protocol.DatagramReply, st *videoRecvState) dgResult {
	raddr, aerr := netip.ParseAddrPort(rep.Addr)
	if aerr != nil {
		return dgNoUpgrade
	}
	pc, lerr := transport.ListenDatagram(":0")
	if lerr != nil {
		return dgNoUpgrade
	}
	var dc transport.DatagramConn = pc
	if p.cfg.WrapDatagram != nil {
		dc = p.cfg.WrapDatagram(pc)
	}
	p.mu.Lock()
	p.videoDgram = dc // published so Close can unblock the read below
	lostBase, reorderBase := p.dgLost, p.dgReordered
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.videoDgram = nil
		p.mu.Unlock()
		dc.Close()
	}()

	var tr transport.RecvTracker
	// syncTracker republishes the tracker's gap accounting (lost and
	// late-filled) under the client's lock; stale and duplicate drops are
	// counted as they happen.
	syncTracker := func() {
		ts := tr.Stats()
		p.mu.Lock()
		p.dgLost = lostBase + int64(ts.Lost)
		p.dgReordered = reorderBase + int64(ts.Reordered)
		p.mu.Unlock()
	}
	// lossFn gives maybeAdapt the window's datagram loss fraction.
	lossFn := func() float64 {
		delivered, lost, _ := tr.TakeWindow()
		syncTracker()
		if delivered+lost == 0 {
			return 0
		}
		return float64(lost) / float64(delivered+lost)
	}

	buf := make([]byte, transport.MaxDatagram)
	var hdr transport.Header
	established := false
	// handleDatagram classifies and (when fresh) decodes one datagram.
	handleDatagram := func(n int) {
		payload, perr := transport.ParseHeader(buf[:n], &hdr)
		if perr != nil || hdr.Kind != transport.DgramFrame || hdr.Token != rep.Token {
			return
		}
		switch tr.Track(hdr.Epoch, hdr.Seq) {
		case transport.Fresh:
			established = true
			p.decodeFrame(st, payload, true)
			p.maybeAdapt(st, conn, lossFn)
		case transport.Duplicate:
			p.mu.Lock()
			p.dgDups++
			p.mu.Unlock()
		default: // Stale: arrived behind a delivered frame — drop it.
			p.mu.Lock()
			p.dgStale++
			p.mu.Unlock()
		}
	}

	//lint:ignore epochstamp hello carries identity only; Seq/Tick are per-frame stamps the session assigns after upgrade
	hello := transport.Header{Kind: transport.DgramHello, Token: rep.Token, Epoch: rep.Epoch}
	helloBuf := hello.AppendTo(make([]byte, 0, transport.HeaderLen))
	attemptInterval := p.cfg.VideoReadTimeout / 4
	for attempt := 0; attempt < dgHelloAttempts && !established; attempt++ {
		select {
		case <-p.stop:
			return dgClosed
		default:
		}
		dc.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
		if _, werr := dc.WriteToUDPAddrPort(helloBuf, raddr); werr != nil {
			return dgNoUpgrade
		}
		deadline := time.Now().Add(attemptInterval)
		for !established && time.Now().Before(deadline) {
			dc.SetReadDeadline(deadline)
			n, _, rerr := dc.ReadFromUDPAddrPort(buf)
			if rerr != nil {
				break // timeout or closed: resend the hello
			}
			handleDatagram(n)
		}
	}
	if !established {
		select {
		case <-p.stop:
			return dgClosed
		default:
		}
		return dgNoUpgrade
	}
	p.mu.Lock()
	p.dgSessions++
	p.mu.Unlock()

	for {
		select {
		case <-p.stop:
			syncTracker()
			return dgClosed
		default:
		}
		dc.SetReadDeadline(time.Now().Add(p.cfg.VideoReadTimeout))
		n, _, rerr := dc.ReadFromUDPAddrPort(buf)
		if rerr != nil {
			syncTracker()
			select {
			case <-p.stop:
				return dgClosed
			default:
			}
			return dgStall
		}
		handleDatagram(n)
	}
}
