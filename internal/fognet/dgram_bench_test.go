package fognet

import (
	"net/netip"
	"testing"

	"cloudfog/internal/game"
	"cloudfog/internal/render"
	"cloudfog/internal/transport"
	"cloudfog/internal/videocodec"
	"cloudfog/internal/virtualworld"
)

// benchEncodedFrame renders and encodes one realistic frame, the payload
// both datagram-path benchmarks carry.
func benchEncodedFrame(level int) *videocodec.EncodedFrame {
	w := virtualworld.New(400, 400)
	w.SpawnAvatar(1, 100, 100)
	for i := 0; i < 5; i++ {
		w.Step([]virtualworld.Action{{Player: 1, Kind: virtualworld.ActMove, TargetX: 300, TargetY: 300}})
	}
	snap := w.Snapshot()
	renderer := render.NewRenderer(render.ResolutionForLevel(level))
	encoder := videocodec.NewEncoder(game.MustQuality(game.QualityLevel(level)).BitrateKbps)
	frame := render.NewFrame(renderer.Resolution())
	renderer.RenderInto(snap, render.ViewportFor(snap, 1), frame)
	var ef videocodec.EncodedFrame
	encoder.EncodeInto(frame, &ef)
	return &ef
}

// benchDgramSession builds a live (hello-received) datagram session over
// a Discard socket, exactly the state sendFrame runs in per frame.
func benchDgramSession() *dgramSession {
	dg := &fogDatagram{pc: transport.Discard}
	s := &dgramSession{dg: dg, token: 0x1234, epoch: 1}
	s.setRemote(netip.AddrPortFrom(netip.AddrFrom4([4]byte{127, 0, 0, 1}), 9), dg)
	return s
}

// BenchmarkDatagramSendFrame measures the fog's per-frame UDP send path
// as the 30 fps loop runs it: the 33-byte header append, the encoded
// frame append, and one datagram write, all into the session's reused
// buffer. Steady state: 0 allocs/op.
func BenchmarkDatagramSendFrame(b *testing.B) {
	ef := benchEncodedFrame(3)
	sess := benchDgramSession()
	buf := make([]byte, 0, transport.MaxDatagram)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sent bool
		buf, sent = sess.sendFrame(buf, ef, uint64(i))
		if !sent {
			b.Fatal("frame not sent")
		}
	}
}

// BenchmarkDatagramRecvFrame measures the player's per-datagram receive
// path: parse the header, classify against the tracker, unmarshal the
// frame (aliasing the receive buffer), and decode into the reused
// reference frame. Steady state: 0 allocs/op.
func BenchmarkDatagramRecvFrame(b *testing.B) {
	ef := benchEncodedFrame(3)
	dgram := transport.Header{Kind: transport.DgramFrame, Token: 1, Epoch: 1, Seq: 0}.
		AppendTo(make([]byte, 0, transport.MaxDatagram))
	dgram = ef.AppendTo(dgram)
	var hdr transport.Header
	var tr transport.RecvTracker
	var dec videocodec.Decoder
	var rx videocodec.EncodedFrame
	var frame render.Frame
	// Warm-up: the first decode sizes the reference frame's pixel buffers.
	if _, err := transport.ParseHeader(dgram, &hdr); err != nil {
		b.Fatal(err)
	}
	if err := videocodec.UnmarshalFrameInto(dgram[transport.HeaderLen:], &rx); err != nil {
		b.Fatal(err)
	}
	if err := dec.DecodeInto(&rx, &frame); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Advance the sequence in place so every datagram is fresh.
		seq := uint64(i + 1)
		for j := 0; j < 8; j++ {
			dgram[17+j] = byte(seq >> (56 - 8*j))
		}
		payload, err := transport.ParseHeader(dgram, &hdr)
		if err != nil {
			b.Fatal(err)
		}
		if v := tr.Track(hdr.Epoch, hdr.Seq); v != transport.Fresh {
			b.Fatalf("verdict %v at seq %d", v, seq)
		}
		if err := videocodec.UnmarshalFrameInto(payload, &rx); err != nil {
			b.Fatal(err)
		}
		if err := dec.DecodeInto(&rx, &frame); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDatagramSendSteadyStateAllocs pins the send benchmark's property as
// a regression test, the same bar as the TCP wire path: after warm-up,
// one frame datagram costs zero allocations.
func TestDatagramSendSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts only hold without the race detector")
	}
	ef := benchEncodedFrame(3)
	sess := benchDgramSession()
	buf := make([]byte, 0, transport.MaxDatagram)
	tick := uint64(0)
	cycle := func() {
		tick++
		var sent bool
		buf, sent = sess.sendFrame(buf, ef, tick)
		if !sent {
			t.Fatal("frame not sent")
		}
	}
	for i := 0; i < 8; i++ {
		cycle()
	}
	if n := testing.AllocsPerRun(64, cycle); n != 0 {
		t.Fatalf("datagram send allocates %.1f/op in steady state, want 0", n)
	}
}

// TestDatagramRecvSteadyStateAllocs pins the receive path: parse, track,
// unmarshal, decode — zero allocations per datagram after warm-up.
func TestDatagramRecvSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts only hold without the race detector")
	}
	ef := benchEncodedFrame(3)
	dgram := transport.Header{Kind: transport.DgramFrame, Token: 1, Epoch: 1, Seq: 0}.
		AppendTo(make([]byte, 0, transport.MaxDatagram))
	dgram = ef.AppendTo(dgram)
	var hdr transport.Header
	var tr transport.RecvTracker
	var dec videocodec.Decoder
	var rx videocodec.EncodedFrame
	var frame render.Frame
	seq := uint64(0)
	cycle := func() {
		seq++
		for j := 0; j < 8; j++ {
			dgram[17+j] = byte(seq >> (56 - 8*j))
		}
		payload, err := transport.ParseHeader(dgram, &hdr)
		if err != nil {
			t.Fatal(err)
		}
		if v := tr.Track(hdr.Epoch, hdr.Seq); v != transport.Fresh {
			t.Fatalf("verdict %v at seq %d", v, seq)
		}
		if err := videocodec.UnmarshalFrameInto(payload, &rx); err != nil {
			t.Fatal(err)
		}
		if err := dec.DecodeInto(&rx, &frame); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		cycle()
	}
	if n := testing.AllocsPerRun(64, cycle); n != 0 {
		t.Fatalf("datagram receive allocates %.1f/op in steady state, want 0", n)
	}
}
