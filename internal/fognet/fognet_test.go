package fognet

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"cloudfog/internal/faultnet"
	"cloudfog/internal/game"
	"cloudfog/internal/protocol"
	"cloudfog/internal/rng"
	"cloudfog/internal/selection"
)

// startCloud creates a fast-ticking cloud server for tests.
func startCloud(t *testing.T) *CloudServer {
	t.Helper()
	cloud, err := NewCloudServer(CloudConfig{
		TickInterval: 5 * time.Millisecond,
		NPCs:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cloud.Close() })
	return cloud
}

func startFog(t *testing.T, cloud *CloudServer, name string, capacity int) *FogNode {
	t.Helper()
	fog, err := NewFogNode(FogConfig{
		Name:          name,
		CloudAddr:     cloud.Addr(),
		Capacity:      capacity,
		FrameInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fog.Close() })
	return fog
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestSupernodeRegistration(t *testing.T) {
	cloud := startCloud(t)
	fog := startFog(t, cloud, "fog-1", 4)
	if fog.ID() == 0 {
		t.Error("no supernode ID assigned")
	}
	stats := cloud.Stats()
	if stats.Supernodes != 1 {
		t.Errorf("registered supernodes = %d", stats.Supernodes)
	}
	// The replica was seeded with the NPCs.
	if got := fog.Stats(); got.ReplicaTick != 0 && got.AppliedDeltas == 0 {
		t.Errorf("replica not seeded: %+v", got)
	}
}

func TestSupernodeLeaveUnregisters(t *testing.T) {
	cloud := startCloud(t)
	fog := startFog(t, cloud, "fog-1", 4)
	fog.Close()
	waitFor(t, 2*time.Second, "unregistration", func() bool {
		return cloud.Stats().Supernodes == 0
	})
}

func TestEndToEndStreaming(t *testing.T) {
	cloud := startCloud(t)
	startFog(t, cloud, "fog-1", 4)

	player, err := NewPlayerClient(PlayerConfig{
		PlayerID:       7,
		CloudAddr:      cloud.Addr(),
		Game:           game.Catalog()[2],
		ActionInterval: 10 * time.Millisecond,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()

	// The full loop must close: actions reach the cloud, the world
	// advances, deltas reach the fog replica, frames reach the player,
	// and the frames depict a recent world tick.
	waitFor(t, 5*time.Second, "decoded frames", func() bool {
		s := player.Stats()
		return s.Frames >= 10 && s.LastTick > 0
	})
	stats := player.Stats()
	if stats.DecodeErrors > stats.Frames/10 {
		t.Errorf("decode errors: %d of %d frames", stats.DecodeErrors, stats.Frames)
	}
	if stats.VideoBits == 0 {
		t.Error("no video volume counted")
	}
	cs := cloud.Stats()
	if cs.Players != 1 || cs.UpdateBits == 0 {
		t.Errorf("cloud stats: %+v", cs)
	}
}

func TestReplicaTracksWorld(t *testing.T) {
	cloud := startCloud(t)
	fog := startFog(t, cloud, "fog-1", 4)
	player, err := NewPlayerClient(PlayerConfig{
		PlayerID: 3, CloudAddr: cloud.Addr(),
		ActionInterval: 5 * time.Millisecond, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 5*time.Second, "replica deltas", func() bool {
		s := fog.Stats()
		return s.AppliedDeltas > 5 && s.ReplicaTick > 0
	})
}

func TestCapacityProbingFallsThrough(t *testing.T) {
	cloud := startCloud(t)
	full := startFog(t, cloud, "fog-full", 1)
	// Fill the first supernode.
	p1, err := NewPlayerClient(PlayerConfig{PlayerID: 1, CloudAddr: cloud.Addr(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	waitFor(t, 2*time.Second, "first attach", func() bool {
		return full.Stats().Attached == 1
	})
	// The second supernode takes the overflow (sequential probing).
	spare := startFog(t, cloud, "fog-spare", 4)
	p2, err := NewPlayerClient(PlayerConfig{PlayerID: 2, CloudAddr: cloud.Addr(), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	waitFor(t, 2*time.Second, "overflow attach", func() bool {
		return spare.Stats().Attached == 1
	})
	if full.Stats().Attached != 1 {
		t.Error("full supernode accepted beyond capacity")
	}
}

func TestCloudFallbackWithoutSupernodes(t *testing.T) {
	// With no fog at all, players stream from the cloud itself — the
	// paper's fallback path, and the bandwidth bill CloudFog eliminates.
	cloud := startCloud(t)
	player, err := NewPlayerClient(PlayerConfig{PlayerID: 1, CloudAddr: cloud.Addr(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 5*time.Second, "cloud-streamed frames", func() bool {
		return player.Stats().Frames >= 5
	})
	cs := cloud.Stats()
	if cs.FallbackPlayers != 1 {
		t.Errorf("fallback players = %d", cs.FallbackPlayers)
	}
	if cs.FallbackBits == 0 {
		t.Error("fallback egress not counted")
	}
}

func TestFogOffloadsCloudEgress(t *testing.T) {
	// With a supernode present, the cloud streams no fallback video at
	// all: the fog carries it (the core claim of the paper).
	cloud := startCloud(t)
	startFog(t, cloud, "fog-1", 4)
	player, err := NewPlayerClient(PlayerConfig{PlayerID: 2, CloudAddr: cloud.Addr(), Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 5*time.Second, "frames", func() bool { return player.Stats().Frames >= 5 })
	if cs := cloud.Stats(); cs.FallbackBits != 0 || cs.FallbackPlayers != 0 {
		t.Errorf("cloud streamed video despite available fog: %+v", cs)
	}
}

func TestRateAdaptationSignalsSupernode(t *testing.T) {
	cloud := startCloud(t)
	fog := startFog(t, cloud, "fog-1", 4)
	_ = fog
	// A top-rung game over a loopback link: the measured delivery rate is
	// whatever the encoder emits, typically below the 1800 kbps target, so
	// the controller sheds levels — the signal must reach the supernode
	// without breaking the stream.
	player, err := NewPlayerClient(PlayerConfig{
		PlayerID: 9, CloudAddr: cloud.Addr(),
		Game:  game.Catalog()[4],
		Adapt: true,
		Seed:  6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 8*time.Second, "frames with adaptation", func() bool {
		return player.Stats().Frames >= 20
	})
	// Whatever the adaptation decided, the stream must have stayed
	// decodable through any level switches.
	s := player.Stats()
	if s.DecodeErrors > s.Frames/5 {
		t.Errorf("stream broke across rate changes: %d errors / %d frames",
			s.DecodeErrors, s.Frames)
	}
	if s.Level < 1 || s.Level > game.NumQualityLevels {
		t.Errorf("level out of range: %d", s.Level)
	}
}

func TestPlayerLeaveFreesSlotAndAvatar(t *testing.T) {
	cloud := startCloud(t)
	fog := startFog(t, cloud, "fog-1", 1)
	player, err := NewPlayerClient(PlayerConfig{PlayerID: 4, CloudAddr: cloud.Addr(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "attach", func() bool { return fog.Stats().Attached == 1 })
	player.Close()
	waitFor(t, 2*time.Second, "slot release", func() bool { return fog.Stats().Attached == 0 })
	waitFor(t, 2*time.Second, "avatar despawn", func() bool { return cloud.Stats().Players == 0 })
	// The slot is reusable.
	p2, err := NewPlayerClient(PlayerConfig{PlayerID: 5, CloudAddr: cloud.Addr(), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	waitFor(t, 2*time.Second, "reattach", func() bool { return fog.Stats().Attached == 1 })
}

func TestUpdateStreamIsCompact(t *testing.T) {
	// The point of CloudFog: the cloud's per-supernode update stream (Λ)
	// is far smaller than the video the supernode streams out.
	cloud := startCloud(t)
	fog := startFog(t, cloud, "fog-1", 4)
	player, err := NewPlayerClient(PlayerConfig{
		PlayerID: 6, CloudAddr: cloud.Addr(),
		ActionInterval: 10 * time.Millisecond, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 5*time.Second, "traffic", func() bool {
		return fog.Stats().VideoBits > 0 && cloud.Stats().UpdateBits > 0
	})
	time.Sleep(300 * time.Millisecond)
	video := fog.Stats().VideoBits
	update := cloud.Stats().UpdateBits
	if update >= video {
		t.Errorf("update stream (%d bits) not smaller than video (%d bits)", update, video)
	}
}

func TestCloseIdempotent(t *testing.T) {
	cloud := startCloud(t)
	fog := startFog(t, cloud, "fog-1", 2)
	if err := fog.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fog.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cloud.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cloud.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplePlayersMultipleFogs(t *testing.T) {
	cloud := startCloud(t)
	fogA := startFog(t, cloud, "fog-a", 2)
	fogB := startFog(t, cloud, "fog-b", 2)
	var players []*PlayerClient
	for i := int32(10); i < 14; i++ {
		p, err := NewPlayerClient(PlayerConfig{
			PlayerID: i, CloudAddr: cloud.Addr(),
			ActionInterval: 20 * time.Millisecond, Seed: uint64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		players = append(players, p)
	}
	defer func() {
		for _, p := range players {
			p.Close()
		}
	}()
	waitFor(t, 5*time.Second, "all attached", func() bool {
		return fogA.Stats().Attached+fogB.Stats().Attached == 4
	})
	waitFor(t, 8*time.Second, "everyone streams", func() bool {
		for _, p := range players {
			if p.Stats().Frames < 5 {
				return false
			}
		}
		return true
	})
	if cloud.Stats().Players != 4 {
		t.Errorf("cloud players = %d", cloud.Stats().Players)
	}
}

func TestPlayerMigratesOnSupernodeFailure(t *testing.T) {
	cloud := startCloud(t)
	primary := startFog(t, cloud, "fog-primary", 4)
	backup := startFog(t, cloud, "fog-backup", 4)

	player, err := NewPlayerClient(PlayerConfig{
		PlayerID: 21, CloudAddr: cloud.Addr(),
		ActionInterval: 10 * time.Millisecond, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	// The player attaches to exactly one fog node; find which.
	waitFor(t, 3*time.Second, "initial attach", func() bool {
		return primary.Stats().Attached+backup.Stats().Attached == 1
	})
	serving, spare := primary, backup
	if backup.Stats().Attached == 1 {
		serving, spare = backup, primary
	}
	waitFor(t, 3*time.Second, "first frames", func() bool {
		return player.Stats().Frames > 3
	})

	// Kill the serving supernode: the player must migrate to the spare
	// and keep decoding frames (§3.2.2 — no game state transfers, the
	// stream simply resumes).
	serving.Close()
	waitFor(t, 5*time.Second, "migration", func() bool {
		return player.Stats().Migrations >= 1 && spare.Stats().Attached == 1
	})
	framesAtMigration := player.Stats().Frames
	waitFor(t, 5*time.Second, "frames after migration", func() bool {
		return player.Stats().Frames > framesAtMigration+5
	})
	s := player.Stats()
	if s.DecodeErrors > s.Frames/5 {
		t.Errorf("stream did not resume cleanly: %d errors / %d frames",
			s.DecodeErrors, s.Frames)
	}
}

func TestPlayerFallsBackToCloudWhenAllSupernodesGone(t *testing.T) {
	cloud := startCloud(t)
	only := startFog(t, cloud, "fog-only", 4)
	player, err := NewPlayerClient(PlayerConfig{PlayerID: 22, CloudAddr: cloud.Addr(), Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 3*time.Second, "attach", func() bool { return only.Stats().Attached == 1 })
	only.Close()
	// The last candidate is the cloud itself: the migration lands there
	// and frames keep flowing (at cloud expense).
	waitFor(t, 5*time.Second, "cloud fallback migration", func() bool {
		s := player.Stats()
		return s.Migrations >= 1 && cloud.Stats().FallbackPlayers == 1
	})
	if err := player.Close(); err != nil {
		t.Fatal(err)
	}
}

// --- chaos tests: deterministic fault injection via internal/faultnet ------

// startChaosCloud creates a cloud with fast heartbeats for eviction tests.
// The tolerance (interval x misses = 250ms) is short enough to evict dead
// links quickly but wide enough that race-detector scheduling pauses never
// evict a healthy fog — spurious evictions empty the candidate ladder and
// strand players on the cloud fallback.
func startChaosCloud(t *testing.T, wrap func(net.Conn) net.Conn) *CloudServer {
	t.Helper()
	cloud, err := NewCloudServer(CloudConfig{
		TickInterval:      5 * time.Millisecond,
		NPCs:              4,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatMisses:   5,
		WriteTimeout:      200 * time.Millisecond,
		SendQueueLen:      4,
		WrapConn:          wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cloud.Close() })
	return cloud
}

func TestCloudEvictsSilentSupernode(t *testing.T) {
	cloud := startChaosCloud(t, nil)
	inj := faultnet.NewInjector(faultnet.Profile{Seed: 100})
	fog, err := NewFogNode(FogConfig{
		Name: "fog-silent", CloudAddr: cloud.Addr(),
		Capacity: 4, FrameInterval: 10 * time.Millisecond,
		Dial: inj.Dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fog.Close()
	waitFor(t, 2*time.Second, "registration", func() bool {
		return cloud.Stats().Supernodes == 1
	})
	// Blackhole the fog's cloud link: its heartbeat acks vanish, its reads
	// stall. Only the liveness protocol can notice this failure mode.
	inj.SetMode(faultnet.Blackhole)
	waitFor(t, 5*time.Second, "eviction", func() bool {
		s := cloud.Stats()
		return s.Supernodes == 0 && s.Resilience.Evictions >= 1
	})
	// The tick loop must have kept running throughout.
	before := cloud.Stats().Ticks
	waitFor(t, 2*time.Second, "ticks advancing post-eviction", func() bool {
		return cloud.Stats().Ticks > before+5
	})
}

func TestTickLoopSurvivesStalledSupernode(t *testing.T) {
	// The dangerous failure: a supernode that stops draining its TCP
	// stream. The bounded send queue and per-write deadlines must keep the
	// tick fan-out alive, then the stalled conn is torn down and the fog
	// reconnects with a fresh replica.
	inj := faultnet.NewInjector(faultnet.Profile{Seed: 101})
	// Wrap only the first accepted conn (the fog's registration): the
	// player's control conn and the fog's reconnect must stay healthy.
	// Heartbeat eviction is effectively disabled so the slow-consumer
	// defences (bounded queue + write deadline), not the liveness protocol,
	// must be what keeps the tick loop alive and tears the conn down.
	var accepted atomic.Int32
	cloud, err := NewCloudServer(CloudConfig{
		TickInterval:      5 * time.Millisecond,
		NPCs:              4,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   1 << 20,
		WriteTimeout:      200 * time.Millisecond,
		SendQueueLen:      4,
		WrapConn: func(c net.Conn) net.Conn {
			if accepted.Add(1) == 1 {
				return inj.WrapConn(c)
			}
			return c
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cloud.Close() })
	fog, ferr := NewFogNode(FogConfig{
		Name: "fog-frozen", CloudAddr: cloud.Addr(),
		Capacity: 4, FrameInterval: 10 * time.Millisecond,
		ReconnectBackoff: 20 * time.Millisecond, Seed: 101,
	})
	if ferr != nil {
		t.Fatal(ferr)
	}
	defer fog.Close()
	// A player keeps the world changing so update batches flow every tick.
	player, err := NewPlayerClient(PlayerConfig{
		PlayerID: 31, CloudAddr: cloud.Addr(),
		ActionInterval: 5 * time.Millisecond, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 2*time.Second, "streaming", func() bool {
		return player.Stats().Frames > 3
	})

	inj.SetMode(faultnet.Stall)
	before := cloud.Stats().Ticks
	// Ticks must keep advancing while the frozen supernode's queue fills.
	waitFor(t, 5*time.Second, "ticks advancing during stall", func() bool {
		return cloud.Stats().Ticks > before+20
	})
	waitFor(t, 5*time.Second, "queue drops counted", func() bool {
		return cloud.Stats().Resilience.SendQueueDrops > 0
	})
	// The stalled conn is torn down; the fog reconnects (new conns through
	// the wrap start healthy) and resyncs its replica.
	waitFor(t, 10*time.Second, "fog reconnects", func() bool {
		return fog.Stats().Resilience.Reconnects >= 1 && cloud.Stats().Supernodes == 1
	})
	tickAtResync := fog.Stats().ReplicaTick
	waitFor(t, 5*time.Second, "replica advances after resync", func() bool {
		return fog.Stats().ReplicaTick > tickAtResync
	})
}

func TestPlayerMigratesOnSilentStream(t *testing.T) {
	// A supernode that freezes without closing its sockets: frames simply
	// stop. The player's read deadline must notice and walk the ladder.
	cloud := startChaosCloud(t, nil)
	primary := startFog(t, cloud, "fog-primary", 4)

	inj := faultnet.NewInjector(faultnet.Profile{Seed: 102})
	primaryAddr := primary.StreamAddr()
	// While frozen, every conn to the primary (existing or new) is
	// blackholed — the box is down, re-dialing it cannot help.
	var frozen atomic.Bool
	dial := func(network, addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout(network, addr, timeout)
		if err != nil {
			return nil, err
		}
		if addr == primaryAddr {
			fc := inj.WrapConn(c)
			if frozen.Load() {
				fc.SetMode(faultnet.Blackhole)
			}
			return fc, nil
		}
		return c, nil
	}
	player, err := NewPlayerClient(PlayerConfig{
		PlayerID: 41, CloudAddr: cloud.Addr(),
		ActionInterval:   10 * time.Millisecond,
		VideoReadTimeout: 100 * time.Millisecond,
		// Short handshake budget: probing the blackholed primary must fail
		// fast so the ladder reaches the backup promptly.
		DialTimeout: 200 * time.Millisecond,
		Seed:        41,
		Dial:        dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 2*time.Second, "attach to primary", func() bool {
		return primary.Stats().Attached == 1
	})
	// A backup joins after the player: only the candidate-update push can
	// teach the player about it.
	backup := startFog(t, cloud, "fog-backup", 4)
	waitFor(t, 2*time.Second, "candidate update received", func() bool {
		return player.Stats().CandidateUpdates >= 1
	})
	waitFor(t, 2*time.Second, "frames from primary", func() bool {
		return player.Stats().Frames > 3
	})

	// Freeze the stream: bytes stop, sockets stay open.
	frozen.Store(true)
	inj.SetMode(faultnet.Blackhole)
	waitFor(t, 5*time.Second, "migration to backup", func() bool {
		s := player.Stats()
		return s.Migrations >= 1 && backup.Stats().Attached == 1
	})
	s := player.Stats()
	if s.StallMs <= 0 {
		t.Errorf("stall time not accounted: %+v", s)
	}
	framesAtMigration := s.Frames
	waitFor(t, 5*time.Second, "frames resume", func() bool {
		return player.Stats().Frames > framesAtMigration+5
	})
	if got := player.Stats(); got.FallbackTransitions != 0 {
		t.Errorf("player fell back to cloud despite live backup: %+v", got)
	}
}

func TestFogReconnectsAfterConnReset(t *testing.T) {
	cloud := startChaosCloud(t, nil)
	inj := faultnet.NewInjector(faultnet.Profile{Seed: 103})
	fog, err := NewFogNode(FogConfig{
		Name: "fog-reset", CloudAddr: cloud.Addr(),
		Capacity: 4, FrameInterval: 10 * time.Millisecond,
		Dial:             inj.Dial,
		ReconnectBackoff: 20 * time.Millisecond,
		Seed:             103,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fog.Close()
	waitFor(t, 2*time.Second, "registration", func() bool {
		return cloud.Stats().Supernodes == 1
	})
	// A player keeps the world changing so the replica has deltas to apply.
	player, err := NewPlayerClient(PlayerConfig{
		PlayerID: 42, CloudAddr: cloud.Addr(),
		ActionInterval: 5 * time.Millisecond, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	oldID := fog.ID()

	// Abruptly reset the cloud link; the fog must redial (new conns start
	// healthy), re-register under a fresh ID, and resync its replica.
	inj.SetMode(faultnet.Reset)
	waitFor(t, 5*time.Second, "reconnect", func() bool {
		return fog.Stats().Resilience.Reconnects >= 1
	})
	waitFor(t, 2*time.Second, "re-registration", func() bool {
		return cloud.Stats().Supernodes == 1 && fog.ID() != oldID
	})
	if d := cloud.Stats().Resilience.Departures + cloud.Stats().Resilience.Evictions; d < 1 {
		t.Errorf("old registration never cleaned up: %+v", cloud.Stats().Resilience)
	}
	tick := fog.Stats().ReplicaTick
	waitFor(t, 5*time.Second, "replica advances after resync", func() bool {
		return fog.Stats().ReplicaTick > tick
	})
}

func TestChaosChurnPlayerSurvives(t *testing.T) {
	// The ISSUE acceptance scenario, seeded end to end: latency-injected
	// links, a fog node killed mid-stream, and the player must resume
	// frame delivery via migration or cloud fallback within bounded time
	// while the cloud tick loop never misses a beat.
	cloud := startChaosCloud(t, nil)
	inj := faultnet.NewInjector(faultnet.Profile{
		Seed:          7,
		AddedLatency:  2 * time.Millisecond,
		LatencyJitter: 3 * time.Millisecond,
	})
	fogA := startFog(t, cloud, "fog-a", 4)
	fogB := startFog(t, cloud, "fog-b", 4)
	player, err := NewPlayerClient(PlayerConfig{
		PlayerID: 51, CloudAddr: cloud.Addr(),
		ActionInterval:   10 * time.Millisecond,
		VideoReadTimeout: 200 * time.Millisecond,
		Seed:             7,
		Dial:             inj.Dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 3*time.Second, "initial attach", func() bool {
		return fogA.Stats().Attached+fogB.Stats().Attached == 1
	})
	serving := fogA
	if fogB.Stats().Attached == 1 {
		serving = fogB
	}
	waitFor(t, 3*time.Second, "first frames", func() bool {
		return player.Stats().Frames > 3
	})

	ticksBefore := cloud.Stats().Ticks
	serving.Close()
	waitFor(t, 5*time.Second, "migration", func() bool {
		return player.Stats().Migrations >= 1
	})
	framesAtMigration := player.Stats().Frames
	waitFor(t, 5*time.Second, "frames resume", func() bool {
		return player.Stats().Frames > framesAtMigration+5
	})
	// The dead supernode never blocked the cloud: the tick loop keeps
	// advancing right through the churn.
	waitFor(t, 2*time.Second, "ticks advancing through churn", func() bool {
		return cloud.Stats().Ticks > ticksBefore+20
	})
	s := player.Stats()
	if s.DecodeErrors > s.Frames/5 {
		t.Errorf("stream did not resume cleanly: %d errors / %d frames",
			s.DecodeErrors, s.Frames)
	}
}

// --- selection control plane: ranked ladders and QoE feedback --------------

func TestBuildLadderFiltersAndRanks(t *testing.T) {
	cands := []protocol.CandidateInfo{
		{Addr: "a:1", Load: 4, Capacity: 4, MeasuredRTTMs: -1, Score: 0.9}, // full
		{Addr: "b:1", Load: 0, Capacity: 4, MeasuredRTTMs: -1, Score: 0.2},
		{Addr: "c:1", Load: 0, Capacity: 4, MeasuredRTTMs: -1, Score: 0.8},
		{Addr: "d:1", Load: 0, Capacity: 4, MeasuredRTTMs: -1, Score: 0.5}, // too far
	}
	rtts := map[string]float64{"d:1": 500}
	r := rng.New(1).SplitNamed("ladder-rank")
	got := buildLadder(cands, rtts, selection.PolicyReputation, 200, "cloud:1", r)
	want := []string{"c:1", "b:1", "a:1", "cloud:1"}
	if len(got) != len(want) {
		t.Fatalf("ladder = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ladder = %v, want %v (RTT filter, score order, full-last, cloud tail)", got, want)
		}
	}
}

func TestLadderPrefersRankedOverAlphabetical(t *testing.T) {
	// Reserve two ephemeral ports so the OVERLOADED supernode gets the
	// alphabetically-smaller address: the sort.Strings ladder this PR
	// replaced would probe it first; the ranked ladder must not.
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lowAddr, highAddr := ln1.Addr().String(), ln2.Addr().String()
	if lowAddr > highAddr {
		lowAddr, highAddr = highAddr, lowAddr
	}
	ln1.Close()
	ln2.Close()

	cloud := startChaosCloud(t, nil) // fast heartbeats: load reports flow quickly
	overloaded, err := NewFogNode(FogConfig{
		Name: "fog-overloaded", CloudAddr: cloud.Addr(),
		StreamAddr: lowAddr, Capacity: 1,
		FrameInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { overloaded.Close() })

	// Player 1 fills the only supernode.
	p1, err := NewPlayerClient(PlayerConfig{PlayerID: 61, CloudAddr: cloud.Addr(), Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	waitFor(t, 2*time.Second, "first attach", func() bool {
		return overloaded.Stats().Attached == 1
	})

	spare, err := NewFogNode(FogConfig{
		Name: "fog-spare", CloudAddr: cloud.Addr(),
		StreamAddr: highAddr, Capacity: 4,
		FrameInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { spare.Close() })

	// Wait until a heartbeat ack taught the cloud the first supernode is
	// full, and the ranked ladder leads with the spare.
	waitFor(t, 3*time.Second, "ladder re-ranked on load", func() bool {
		cands := cloud.Candidates()
		return len(cands) == 2 && cands[0].Addr == highAddr && cands[1].Load >= 1
	})

	probesBefore := overloaded.Stats().Probes
	p2, err := NewPlayerClient(PlayerConfig{PlayerID: 62, CloudAddr: cloud.Addr(), Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	waitFor(t, 2*time.Second, "second attach on spare", func() bool {
		return spare.Stats().Attached == 1
	})
	// The ranked ladder sent player 2 straight to the spare: the full,
	// alphabetically-first supernode was never even probed.
	if got := overloaded.Stats().Probes; got != probesBefore {
		t.Errorf("overloaded supernode probed %d more times despite ranked ladder",
			got-probesBefore)
	}
}

func TestStallReportsDemoteSupernode(t *testing.T) {
	// A supernode that freezes mid-stream gets reported by the migrating
	// player, and the cloud's reputation book pushes it below the healthy
	// spare in every subsequent ladder.
	cloud := startChaosCloud(t, nil)
	faulty := startFog(t, cloud, "fog-faulty", 4)
	faultyAddr := faulty.StreamAddr()

	inj := faultnet.NewInjector(faultnet.Profile{Seed: 104})
	var frozen atomic.Bool
	dial := func(network, addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout(network, addr, timeout)
		if err != nil {
			return nil, err
		}
		if addr == faultyAddr {
			fc := inj.WrapConn(c)
			if frozen.Load() {
				fc.SetMode(faultnet.Blackhole)
			}
			return fc, nil
		}
		return c, nil
	}
	player, err := NewPlayerClient(PlayerConfig{
		PlayerID: 71, CloudAddr: cloud.Addr(),
		ActionInterval:   10 * time.Millisecond,
		VideoReadTimeout: 100 * time.Millisecond,
		DialTimeout:      200 * time.Millisecond,
		QoEInterval:      -1, // only failure reports: keep the book unambiguous
		Seed:             71,
		Dial:             dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 2*time.Second, "attach to faulty", func() bool {
		return faulty.Stats().Attached == 1
	})
	healthy := startFog(t, cloud, "fog-healthy", 4)
	waitFor(t, 2*time.Second, "candidate update received", func() bool {
		return player.Stats().CandidateUpdates >= 1
	})
	waitFor(t, 2*time.Second, "frames from faulty", func() bool {
		return player.Stats().Frames > 3
	})

	frozen.Store(true)
	inj.SetMode(faultnet.Blackhole)
	waitFor(t, 5*time.Second, "migration to healthy spare", func() bool {
		return player.Stats().Migrations >= 1 && healthy.Stats().Attached == 1
	})
	// The stall report reached the book...
	waitFor(t, 2*time.Second, "QoE report absorbed", func() bool {
		return cloud.Stats().Resilience.QoEReports >= 1
	})
	if got := player.Stats().QoEReports; got < 1 {
		t.Errorf("player sent %d QoE reports, want >= 1", got)
	}
	// ...and demoted the faulty supernode below the healthy one (score 0
	// vs the unknown prior), whatever the addresses sort like.
	cands := cloud.Candidates()
	if len(cands) != 2 {
		t.Fatalf("ladder has %d candidates, want 2", len(cands))
	}
	if cands[0].Addr != healthy.StreamAddr() {
		t.Errorf("ladder leads with the stalled supernode: %+v", cands)
	}
	if !(cands[1].Score < cands[0].Score) {
		t.Errorf("stalled supernode not demoted by score: %+v", cands)
	}
}
