package fognet

import (
	"testing"
	"time"

	"cloudfog/internal/game"
)

// startCloud creates a fast-ticking cloud server for tests.
func startCloud(t *testing.T) *CloudServer {
	t.Helper()
	cloud, err := NewCloudServer(CloudConfig{
		TickInterval: 5 * time.Millisecond,
		NPCs:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cloud.Close() })
	return cloud
}

func startFog(t *testing.T, cloud *CloudServer, name string, capacity int) *FogNode {
	t.Helper()
	fog, err := NewFogNode(FogConfig{
		Name:          name,
		CloudAddr:     cloud.Addr(),
		Capacity:      capacity,
		FrameInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fog.Close() })
	return fog
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestSupernodeRegistration(t *testing.T) {
	cloud := startCloud(t)
	fog := startFog(t, cloud, "fog-1", 4)
	if fog.ID() == 0 {
		t.Error("no supernode ID assigned")
	}
	stats := cloud.Stats()
	if stats.Supernodes != 1 {
		t.Errorf("registered supernodes = %d", stats.Supernodes)
	}
	// The replica was seeded with the NPCs.
	if got := fog.Stats(); got.ReplicaTick != 0 && got.AppliedDeltas == 0 {
		t.Errorf("replica not seeded: %+v", got)
	}
}

func TestSupernodeLeaveUnregisters(t *testing.T) {
	cloud := startCloud(t)
	fog := startFog(t, cloud, "fog-1", 4)
	fog.Close()
	waitFor(t, 2*time.Second, "unregistration", func() bool {
		return cloud.Stats().Supernodes == 0
	})
}

func TestEndToEndStreaming(t *testing.T) {
	cloud := startCloud(t)
	startFog(t, cloud, "fog-1", 4)

	player, err := NewPlayerClient(PlayerConfig{
		PlayerID:       7,
		CloudAddr:      cloud.Addr(),
		Game:           game.Catalog()[2],
		ActionInterval: 10 * time.Millisecond,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()

	// The full loop must close: actions reach the cloud, the world
	// advances, deltas reach the fog replica, frames reach the player,
	// and the frames depict a recent world tick.
	waitFor(t, 5*time.Second, "decoded frames", func() bool {
		s := player.Stats()
		return s.Frames >= 10 && s.LastTick > 0
	})
	stats := player.Stats()
	if stats.DecodeErrors > stats.Frames/10 {
		t.Errorf("decode errors: %d of %d frames", stats.DecodeErrors, stats.Frames)
	}
	if stats.VideoBits == 0 {
		t.Error("no video volume counted")
	}
	cs := cloud.Stats()
	if cs.Players != 1 || cs.UpdateBits == 0 {
		t.Errorf("cloud stats: %+v", cs)
	}
}

func TestReplicaTracksWorld(t *testing.T) {
	cloud := startCloud(t)
	fog := startFog(t, cloud, "fog-1", 4)
	player, err := NewPlayerClient(PlayerConfig{
		PlayerID: 3, CloudAddr: cloud.Addr(),
		ActionInterval: 5 * time.Millisecond, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 5*time.Second, "replica deltas", func() bool {
		s := fog.Stats()
		return s.AppliedDeltas > 5 && s.ReplicaTick > 0
	})
}

func TestCapacityProbingFallsThrough(t *testing.T) {
	cloud := startCloud(t)
	full := startFog(t, cloud, "fog-full", 1)
	// Fill the first supernode.
	p1, err := NewPlayerClient(PlayerConfig{PlayerID: 1, CloudAddr: cloud.Addr(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	waitFor(t, 2*time.Second, "first attach", func() bool {
		return full.Stats().Attached == 1
	})
	// The second supernode takes the overflow (sequential probing).
	spare := startFog(t, cloud, "fog-spare", 4)
	p2, err := NewPlayerClient(PlayerConfig{PlayerID: 2, CloudAddr: cloud.Addr(), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	waitFor(t, 2*time.Second, "overflow attach", func() bool {
		return spare.Stats().Attached == 1
	})
	if full.Stats().Attached != 1 {
		t.Error("full supernode accepted beyond capacity")
	}
}

func TestCloudFallbackWithoutSupernodes(t *testing.T) {
	// With no fog at all, players stream from the cloud itself — the
	// paper's fallback path, and the bandwidth bill CloudFog eliminates.
	cloud := startCloud(t)
	player, err := NewPlayerClient(PlayerConfig{PlayerID: 1, CloudAddr: cloud.Addr(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 5*time.Second, "cloud-streamed frames", func() bool {
		return player.Stats().Frames >= 5
	})
	cs := cloud.Stats()
	if cs.FallbackPlayers != 1 {
		t.Errorf("fallback players = %d", cs.FallbackPlayers)
	}
	if cs.FallbackBits == 0 {
		t.Error("fallback egress not counted")
	}
}

func TestFogOffloadsCloudEgress(t *testing.T) {
	// With a supernode present, the cloud streams no fallback video at
	// all: the fog carries it (the core claim of the paper).
	cloud := startCloud(t)
	startFog(t, cloud, "fog-1", 4)
	player, err := NewPlayerClient(PlayerConfig{PlayerID: 2, CloudAddr: cloud.Addr(), Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 5*time.Second, "frames", func() bool { return player.Stats().Frames >= 5 })
	if cs := cloud.Stats(); cs.FallbackBits != 0 || cs.FallbackPlayers != 0 {
		t.Errorf("cloud streamed video despite available fog: %+v", cs)
	}
}

func TestRateAdaptationSignalsSupernode(t *testing.T) {
	cloud := startCloud(t)
	fog := startFog(t, cloud, "fog-1", 4)
	_ = fog
	// A top-rung game over a loopback link: the measured delivery rate is
	// whatever the encoder emits, typically below the 1800 kbps target, so
	// the controller sheds levels — the signal must reach the supernode
	// without breaking the stream.
	player, err := NewPlayerClient(PlayerConfig{
		PlayerID: 9, CloudAddr: cloud.Addr(),
		Game:  game.Catalog()[4],
		Adapt: true,
		Seed:  6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 8*time.Second, "frames with adaptation", func() bool {
		return player.Stats().Frames >= 20
	})
	// Whatever the adaptation decided, the stream must have stayed
	// decodable through any level switches.
	s := player.Stats()
	if s.DecodeErrors > s.Frames/5 {
		t.Errorf("stream broke across rate changes: %d errors / %d frames",
			s.DecodeErrors, s.Frames)
	}
	if s.Level < 1 || s.Level > game.NumQualityLevels {
		t.Errorf("level out of range: %d", s.Level)
	}
}

func TestPlayerLeaveFreesSlotAndAvatar(t *testing.T) {
	cloud := startCloud(t)
	fog := startFog(t, cloud, "fog-1", 1)
	player, err := NewPlayerClient(PlayerConfig{PlayerID: 4, CloudAddr: cloud.Addr(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "attach", func() bool { return fog.Stats().Attached == 1 })
	player.Close()
	waitFor(t, 2*time.Second, "slot release", func() bool { return fog.Stats().Attached == 0 })
	waitFor(t, 2*time.Second, "avatar despawn", func() bool { return cloud.Stats().Players == 0 })
	// The slot is reusable.
	p2, err := NewPlayerClient(PlayerConfig{PlayerID: 5, CloudAddr: cloud.Addr(), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	waitFor(t, 2*time.Second, "reattach", func() bool { return fog.Stats().Attached == 1 })
}

func TestUpdateStreamIsCompact(t *testing.T) {
	// The point of CloudFog: the cloud's per-supernode update stream (Λ)
	// is far smaller than the video the supernode streams out.
	cloud := startCloud(t)
	fog := startFog(t, cloud, "fog-1", 4)
	player, err := NewPlayerClient(PlayerConfig{
		PlayerID: 6, CloudAddr: cloud.Addr(),
		ActionInterval: 10 * time.Millisecond, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 5*time.Second, "traffic", func() bool {
		return fog.Stats().VideoBits > 0 && cloud.Stats().UpdateBits > 0
	})
	time.Sleep(300 * time.Millisecond)
	video := fog.Stats().VideoBits
	update := cloud.Stats().UpdateBits
	if update >= video {
		t.Errorf("update stream (%d bits) not smaller than video (%d bits)", update, video)
	}
}

func TestCloseIdempotent(t *testing.T) {
	cloud := startCloud(t)
	fog := startFog(t, cloud, "fog-1", 2)
	if err := fog.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fog.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cloud.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cloud.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplePlayersMultipleFogs(t *testing.T) {
	cloud := startCloud(t)
	fogA := startFog(t, cloud, "fog-a", 2)
	fogB := startFog(t, cloud, "fog-b", 2)
	var players []*PlayerClient
	for i := int32(10); i < 14; i++ {
		p, err := NewPlayerClient(PlayerConfig{
			PlayerID: i, CloudAddr: cloud.Addr(),
			ActionInterval: 20 * time.Millisecond, Seed: uint64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		players = append(players, p)
	}
	defer func() {
		for _, p := range players {
			p.Close()
		}
	}()
	waitFor(t, 5*time.Second, "all attached", func() bool {
		return fogA.Stats().Attached+fogB.Stats().Attached == 4
	})
	waitFor(t, 8*time.Second, "everyone streams", func() bool {
		for _, p := range players {
			if p.Stats().Frames < 5 {
				return false
			}
		}
		return true
	})
	if cloud.Stats().Players != 4 {
		t.Errorf("cloud players = %d", cloud.Stats().Players)
	}
}

func TestPlayerMigratesOnSupernodeFailure(t *testing.T) {
	cloud := startCloud(t)
	primary := startFog(t, cloud, "fog-primary", 4)
	backup := startFog(t, cloud, "fog-backup", 4)

	player, err := NewPlayerClient(PlayerConfig{
		PlayerID: 21, CloudAddr: cloud.Addr(),
		ActionInterval: 10 * time.Millisecond, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	// The player attaches to exactly one fog node; find which.
	waitFor(t, 3*time.Second, "initial attach", func() bool {
		return primary.Stats().Attached+backup.Stats().Attached == 1
	})
	serving, spare := primary, backup
	if backup.Stats().Attached == 1 {
		serving, spare = backup, primary
	}
	waitFor(t, 3*time.Second, "first frames", func() bool {
		return player.Stats().Frames > 3
	})

	// Kill the serving supernode: the player must migrate to the spare
	// and keep decoding frames (§3.2.2 — no game state transfers, the
	// stream simply resumes).
	serving.Close()
	waitFor(t, 5*time.Second, "migration", func() bool {
		return player.Stats().Migrations >= 1 && spare.Stats().Attached == 1
	})
	framesAtMigration := player.Stats().Frames
	waitFor(t, 5*time.Second, "frames after migration", func() bool {
		return player.Stats().Frames > framesAtMigration+5
	})
	s := player.Stats()
	if s.DecodeErrors > s.Frames/5 {
		t.Errorf("stream did not resume cleanly: %d errors / %d frames",
			s.DecodeErrors, s.Frames)
	}
}

func TestPlayerFallsBackToCloudWhenAllSupernodesGone(t *testing.T) {
	cloud := startCloud(t)
	only := startFog(t, cloud, "fog-only", 4)
	player, err := NewPlayerClient(PlayerConfig{PlayerID: 22, CloudAddr: cloud.Addr(), Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 3*time.Second, "attach", func() bool { return only.Stats().Attached == 1 })
	only.Close()
	// The last candidate is the cloud itself: the migration lands there
	// and frames keep flowing (at cloud expense).
	waitFor(t, 5*time.Second, "cloud fallback migration", func() bool {
		s := player.Stats()
		return s.Migrations >= 1 && cloud.Stats().FallbackPlayers == 1
	})
	if err := player.Close(); err != nil {
		t.Fatal(err)
	}
}
