package fognet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/protocol"
	"cloudfog/internal/virtualworld"
)

// DefaultFrameInterval is the streaming frame period. The paper streams at
// 30 fps; the prototype default matches, and tests lower it.
const DefaultFrameInterval = time.Second / 30

// FogConfig parameterizes a FogNode.
type FogConfig struct {
	// Name labels the supernode.
	Name string
	// CloudAddr is the cloud server to register with.
	CloudAddr string
	// StreamAddr is the listen address for player video sessions
	// ("127.0.0.1:0" for an ephemeral port).
	StreamAddr string
	// Capacity is the maximum concurrent players (the supernode capacity
	// of §3.2.1).
	Capacity int
	// FrameInterval is the video frame period. Defaults to
	// DefaultFrameInterval.
	FrameInterval time.Duration
}

// FogNode is one supernode: it replicates the world and renders/streams
// per-player video.
type FogNode struct {
	cfg      FogConfig
	cloud    net.Conn
	listener net.Listener
	id       uint32

	mu        sync.Mutex
	replica   *virtualworld.Replica
	attached  map[int32]struct{}
	videoBits int64
	frames    int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewFogNode connects to the cloud, registers, seeds its replica, and
// starts serving players on StreamAddr.
func NewFogNode(cfg FogConfig) (*FogNode, error) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8
	}
	if cfg.FrameInterval <= 0 {
		cfg.FrameInterval = DefaultFrameInterval
	}
	if cfg.StreamAddr == "" {
		cfg.StreamAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.StreamAddr)
	if err != nil {
		return nil, fmt.Errorf("fog listen: %w", err)
	}
	cloud, err := net.Dial("tcp", cfg.CloudAddr)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("fog dial cloud: %w", err)
	}
	f := &FogNode{
		cfg:      cfg,
		cloud:    cloud,
		listener: ln,
		attached: make(map[int32]struct{}),
		stop:     make(chan struct{}),
	}
	hello := protocol.SupernodeHello{
		Name:       cfg.Name,
		Capacity:   cfg.Capacity,
		StreamAddr: ln.Addr().String(),
	}
	if err := protocol.WriteMessage(cloud, protocol.MsgSupernodeHello, hello.Marshal()); err != nil {
		f.closeAll()
		return nil, fmt.Errorf("fog register: %w", err)
	}
	typ, payload, err := protocol.ReadMessage(cloud)
	if err != nil || typ != protocol.MsgSupernodeWelcome {
		f.closeAll()
		return nil, fmt.Errorf("fog welcome: %v %w", typ, err)
	}
	welcome, err := protocol.UnmarshalSupernodeWelcome(payload)
	if err != nil {
		f.closeAll()
		return nil, fmt.Errorf("fog welcome decode: %w", err)
	}
	f.id = welcome.SupernodeID
	f.replica = virtualworld.NewReplica(welcome.Snapshot.Width, welcome.Snapshot.Height)
	f.replica.Seed(welcome.Snapshot)

	f.wg.Add(2)
	go f.updateLoop()
	go f.acceptLoop()
	return f, nil
}

// StreamAddr returns the address players connect to for video.
func (f *FogNode) StreamAddr() string { return f.listener.Addr().String() }

// ID returns the cloud-assigned supernode ID.
func (f *FogNode) ID() uint32 { return f.id }

func (f *FogNode) closeAll() {
	f.listener.Close()
	f.cloud.Close()
}

// Close stops the fog node and waits for its goroutines.
func (f *FogNode) Close() error {
	select {
	case <-f.stop:
		return nil
	default:
	}
	close(f.stop)
	f.closeAll()
	f.wg.Wait()
	return nil
}

// FogStats reports supernode counters.
type FogStats struct {
	// ReplicaTick is the latest applied world tick.
	ReplicaTick uint64
	// Attached is the number of streaming players.
	Attached int
	// Frames is the total video frames streamed.
	Frames int64
	// VideoBits is the total video egress.
	VideoBits int64
	// AppliedDeltas / StaleDeltas are replica counters.
	AppliedDeltas int
	StaleDeltas   int
}

// Stats snapshots the counters.
func (f *FogNode) Stats() FogStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FogStats{
		ReplicaTick:   f.replica.Tick(),
		Attached:      len(f.attached),
		Frames:        f.frames,
		VideoBits:     f.videoBits,
		AppliedDeltas: f.replica.AppliedDeltas(),
		StaleDeltas:   f.replica.StaleDeltas(),
	}
}

// updateLoop applies the cloud's update stream to the replica.
func (f *FogNode) updateLoop() {
	defer f.wg.Done()
	for {
		typ, payload, err := protocol.ReadMessage(f.cloud)
		if err != nil {
			return // cloud gone or Close()
		}
		if typ != protocol.MsgUpdateBatch {
			continue
		}
		batch, err := protocol.UnmarshalUpdateBatch(payload)
		if err != nil {
			continue
		}
		f.mu.Lock()
		f.replica.Apply(batch.Tick, batch.Deltas)
		f.mu.Unlock()
	}
}

func (f *FogNode) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.listener.Accept()
		if err != nil {
			return
		}
		f.wg.Add(1)
		go f.servePlayer(conn)
	}
}

// available returns the free player slots.
func (f *FogNode) available() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg.Capacity - len(f.attached)
}

// servePlayer answers capacity probes and runs one player's video session.
func (f *FogNode) servePlayer(conn net.Conn) {
	defer f.wg.Done()
	defer conn.Close()

	var playerID int32
	var level game.QualityLevel
	attached := false
	for !attached {
		typ, payload, err := protocol.ReadMessage(conn)
		if err != nil {
			return
		}
		switch typ {
		case protocol.MsgProbe:
			reply := protocol.ProbeReply{Available: f.available()}
			if protocol.WriteMessage(conn, protocol.MsgProbeReply, reply.Marshal()) != nil {
				return
			}
		case protocol.MsgPlayerAttach:
			attach, aerr := protocol.UnmarshalPlayerAttach(payload)
			if aerr != nil {
				return
			}
			f.mu.Lock()
			ok := len(f.attached) < f.cfg.Capacity
			if ok {
				f.attached[attach.PlayerID] = struct{}{}
			}
			f.mu.Unlock()
			reply := protocol.AttachReply{OK: ok}
			if !ok {
				reply.Reason = "at capacity"
			}
			if protocol.WriteMessage(conn, protocol.MsgAttachReply, reply.Marshal()) != nil || !ok {
				return
			}
			playerID = attach.PlayerID
			level = game.QualityLevel(attach.QualityLevel)
			attached = true
		default:
			return
		}
	}
	defer func() {
		f.mu.Lock()
		delete(f.attached, playerID)
		f.mu.Unlock()
	}()
	runVideoSession(conn, playerID, level, f.cfg.FrameInterval, f, f, f.stop, &f.wg)
}

// currentSnapshot implements snapshotSource over the replica.
func (f *FogNode) currentSnapshot() virtualworld.Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.replica.Snapshot()
}

// addFrame implements streamCounters.
func (f *FogNode) addFrame(bits int) {
	f.mu.Lock()
	f.frames++
	f.videoBits += int64(bits)
	f.mu.Unlock()
}
