package fognet

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/protocol"
	"cloudfog/internal/rng"
	"cloudfog/internal/transport"
	"cloudfog/internal/virtualworld"
)

// DefaultFrameInterval is the streaming frame period. The paper streams at
// 30 fps; the prototype default matches, and tests lower it.
const DefaultFrameInterval = time.Second / 30

// Reconnect backoff defaults: jittered exponential, so a cloud restart is
// not greeted by a synchronized stampede of supernodes.
const (
	DefaultReconnectBackoff    = 200 * time.Millisecond
	DefaultReconnectBackoffMax = 5 * time.Second
)

// FogConfig parameterizes a FogNode.
type FogConfig struct {
	// Name labels the supernode.
	Name string
	// CloudAddr is the cloud server to register with.
	CloudAddr string
	// StreamAddr is the listen address for player video sessions
	// ("127.0.0.1:0" for an ephemeral port).
	StreamAddr string
	// Capacity is the maximum concurrent players (the supernode capacity
	// of §3.2.1).
	Capacity int
	// FrameInterval is the video frame period. Defaults to
	// DefaultFrameInterval.
	FrameInterval time.Duration
	// DialTimeout bounds the cloud dial. Defaults to DefaultDialTimeout.
	DialTimeout time.Duration
	// WriteTimeout bounds protocol writes (heartbeat acks, video frames).
	// Defaults to DefaultWriteTimeout.
	WriteTimeout time.Duration
	// ReconnectBackoff is the initial delay before redialing a lost
	// cloud connection; it doubles per attempt up to
	// ReconnectBackoffMax, with ±50% deterministic jitter.
	ReconnectBackoff    time.Duration
	ReconnectBackoffMax time.Duration
	// Seed drives the reconnect jitter deterministically.
	Seed uint64
	// Dial, when set, replaces net.DialTimeout — the faultnet injection
	// point for chaos tests.
	Dial DialFunc
	// Datagram enables the unreliable UDP video path: the node opens a
	// UDP socket next to the stream listener and offers it to players
	// that send MsgDatagramRequest after attaching. TCP stays the
	// default and the fallback — a player that never requests (or whose
	// hello never arrives) streams over the session connection exactly
	// as before.
	Datagram bool
	// DatagramAddr is the UDP listen address for the datagram video
	// path. Defaults to the stream listener's host with an ephemeral
	// port.
	DatagramAddr string
	// WrapDatagram, when set, wraps the UDP socket — the faultnet
	// injection point for lossy-path chaos tests.
	WrapDatagram transport.WrapDatagramFunc
	// AoI enables interest management: the node reports the grid cells
	// its attached players can see (plus a hysteresis margin) and the
	// cloud sends per-cell batches for just those cells instead of the
	// full-world update stream. Off by default — a node that never
	// reports interest behaves exactly as before.
	AoI bool
	// AoIMargin is the hysteresis margin in world units around each
	// player's viewport. Defaults to DefaultAoIMargin.
	AoIMargin float64
}

// FogResilience groups the supernode's failure-handling counters.
type FogResilience struct {
	// Reconnects counts successful cloud re-registrations after a lost
	// connection (each one also resyncs the replica).
	Reconnects int64
	// ReconnectAttempts counts dial attempts, successful or not.
	ReconnectAttempts int64
	// HeartbeatAcks counts liveness replies sent to the cloud.
	HeartbeatAcks int64
	// Resumes counts reconnections that went through MsgResume — after a
	// cloud failover, re-admissions on the promoted standby.
	Resumes int64
	// DiscardedResyncs counts resume replies that flagged the replica as
	// ahead of the restored history (those ticks are authoritatively
	// gone; the snapshot reseed erases them).
	DiscardedResyncs int64
	// BufferedActions / ForwardedActions / DroppedActions account the
	// outage-window input path: player actions queued while the cloud
	// link was down, flushed upstream after recovery, or dropped because
	// a per-player queue was full.
	BufferedActions  int64
	ForwardedActions int64
	DroppedActions   int64
}

// maxBufferedActionsPerPlayer bounds each player's outage-window action
// queue on the fog node; beyond it the oldest intent is the one worth
// keeping least, so new arrivals are dropped and counted.
const maxBufferedActionsPerPlayer = 64

// FogNode is one supernode: it replicates the world and renders/streams
// per-player video.
type FogNode struct {
	cfg FogConfig
	// tc/tp are the transport seam: every dial, handshake deadline, and
	// write bound the node applies flows from this one policy.
	tc       transport.Config
	tp       transport.TCP
	listener net.Listener
	// dgram is the UDP video path, nil unless cfg.Datagram is set.
	dgram *fogDatagram

	mu        sync.Mutex
	cloud     net.Conn
	id        uint32
	replica   *virtualworld.Replica
	attached  map[int32]struct{} // guarded by mu
	videoBits int64
	frames    int64
	probes    int64
	resil     FogResilience
	// aoi is the interest-management tracker, nil unless cfg.AoI. The
	// pointer itself is immutable — set before the node's goroutines
	// start — so nil checks need no lock; its mutable fields have their
	// own locking discipline (see fogInterest).
	aoi              *fogInterest
	interestSent     int64 // guarded by mu
	cellBatches      int64 // guarded by mu
	keyframesApplied int64 // guarded by mu

	// The failover view: the authority epoch of the cloud currently
	// followed, its address, and the advertised standby. reconnect walks
	// authority → standby and a successful resume rebinds all three.
	epoch       uint64 // guarded by mu
	authority   string // guarded by mu
	standbyAddr string // guarded by mu
	// actionQ buffers per-player inputs received on video sessions while
	// the cloud link is down (bounded by maxBufferedActionsPerPlayer);
	// guarded by mu.
	actionQ map[int32][]virtualworld.Action

	// cloudWMu serializes writes on the cloud connection: heartbeat acks
	// from the update loop and forwarded player actions from video
	// sessions share it.
	cloudWMu sync.Mutex
	actBuf   []byte // forward-path encode scratch; guarded by cloudWMu

	jitter *rng.Rand // reconnect jitter; guarded by mu

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewFogNode connects to the cloud, registers, seeds its replica, and
// starts serving players on StreamAddr. If the cloud connection later
// drops, the node redials with jittered exponential backoff and resyncs
// its replica from the fresh welcome snapshot; players stay attached and
// stream (increasingly stale) frames throughout.
func NewFogNode(cfg FogConfig) (*FogNode, error) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8
	}
	if cfg.FrameInterval <= 0 {
		cfg.FrameInterval = DefaultFrameInterval
	}
	if cfg.StreamAddr == "" {
		cfg.StreamAddr = "127.0.0.1:0"
	}
	tc := transport.Config{
		DialTimeout:  cfg.DialTimeout,
		WriteTimeout: cfg.WriteTimeout,
	}.WithDefaults()
	cfg.DialTimeout = tc.DialTimeout
	cfg.WriteTimeout = tc.WriteTimeout
	if cfg.ReconnectBackoff <= 0 {
		cfg.ReconnectBackoff = DefaultReconnectBackoff
	}
	if cfg.ReconnectBackoffMax <= 0 {
		cfg.ReconnectBackoffMax = DefaultReconnectBackoffMax
	}
	if cfg.AoI && cfg.AoIMargin <= 0 {
		cfg.AoIMargin = DefaultAoIMargin
	}
	tp := transport.TCP{Config: tc, DialFunc: cfg.Dial}
	ln, err := tp.Listen(cfg.StreamAddr)
	if err != nil {
		return nil, fmt.Errorf("fog listen: %w", err)
	}
	f := &FogNode{
		cfg:       cfg,
		tc:        tc,
		tp:        tp,
		listener:  ln,
		attached:  make(map[int32]struct{}),
		actionQ:   make(map[int32][]virtualworld.Action),
		authority: cfg.CloudAddr,
		jitter:    rng.New(cfg.Seed).SplitNamed("fog-reconnect-" + cfg.Name),
		stop:      make(chan struct{}),
	}
	if cfg.Datagram {
		f.dgram, err = newFogDatagram(cfg.DatagramAddr, ln.Addr().String(),
			cfg.WrapDatagram, tc.WriteTimeout, cfg.Seed)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("fog datagram listen: %w", err)
		}
	}
	conn, welcome, err := f.connectCloud()
	if err != nil {
		if f.dgram != nil {
			f.dgram.close()
		}
		ln.Close()
		return nil, err
	}
	f.mu.Lock()
	f.cloud = conn
	f.id = welcome.SupernodeID
	f.epoch = welcome.Epoch
	f.standbyAddr = welcome.StandbyAddr
	f.replica = virtualworld.NewReplica(welcome.Snapshot.Width, welcome.Snapshot.Height)
	f.replica.Seed(welcome.Snapshot)
	if cfg.AoI {
		f.aoi = &fogInterest{margin: cfg.AoIMargin}
		f.resetInterestLocked()
	}
	f.mu.Unlock()

	f.wg.Add(2)
	go f.updateLoop()
	go f.acceptLoop()
	// Report the initial (typically empty) footprint so an idle node
	// drops off the full-world stream right away.
	f.refreshInterest()
	return f, nil
}

// connectCloud dials the cloud, registers, and returns the connection and
// welcome (with the snapshot to seed/resync the replica from). The whole
// handshake runs under deadlines.
func (f *FogNode) connectCloud() (net.Conn, protocol.SupernodeWelcome, error) {
	var zero protocol.SupernodeWelcome
	conn, err := f.tp.Dial(f.cfg.CloudAddr)
	if err != nil {
		return nil, zero, fmt.Errorf("fog dial cloud: %w", err)
	}
	hello := protocol.SupernodeHello{
		Name:       f.cfg.Name,
		Capacity:   f.cfg.Capacity,
		StreamAddr: f.listener.Addr().String(),
	}
	conn.SetDeadline(time.Now().Add(f.tc.HandshakeTimeout))
	if err := protocol.WriteMessage(conn, protocol.MsgSupernodeHello, hello.Marshal()); err != nil {
		conn.Close()
		return nil, zero, fmt.Errorf("fog register: %w", err)
	}
	typ, payload, err := protocol.ReadMessage(conn)
	if err != nil || typ != protocol.MsgSupernodeWelcome {
		conn.Close()
		return nil, zero, fmt.Errorf("fog welcome: %v %w", typ, err)
	}
	welcome, err := protocol.UnmarshalSupernodeWelcome(payload)
	if err != nil {
		conn.Close()
		return nil, zero, fmt.Errorf("fog welcome decode: %w", err)
	}
	conn.SetDeadline(time.Time{})
	return conn, welcome, nil
}

// StreamAddr returns the address players connect to for video.
func (f *FogNode) StreamAddr() string { return f.listener.Addr().String() }

// ID returns the cloud-assigned supernode ID (it changes on reconnect).
func (f *FogNode) ID() uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.id
}

func (f *FogNode) closeAll() {
	f.listener.Close()
	if f.dgram != nil {
		f.dgram.close()
	}
	f.mu.Lock()
	cloud := f.cloud
	f.mu.Unlock()
	if cloud != nil {
		cloud.Close()
	}
}

// Close stops the fog node and waits for its goroutines.
func (f *FogNode) Close() error {
	select {
	case <-f.stop:
		return nil
	default:
	}
	close(f.stop)
	f.closeAll()
	f.wg.Wait()
	return nil
}

// Shutdown is the graceful SIGTERM path: it drains any outage-window
// action buffers upstream, tells the cloud this supernode is departing
// (MsgBye, so the eviction is a clean departure rather than a heartbeat
// timeout), and then closes. Streaming players see their session end and
// migrate via the candidate ladder as usual.
func (f *FogNode) Shutdown() error {
	f.flushActions()
	f.mu.Lock()
	conn := f.cloud
	f.mu.Unlock()
	if conn != nil {
		f.cloudWMu.Lock()
		conn.SetWriteDeadline(time.Now().Add(f.cfg.WriteTimeout))
		protocol.WriteMessage(conn, protocol.MsgBye, nil)
		f.cloudWMu.Unlock()
	}
	return f.Close()
}

// FogStats reports supernode counters.
type FogStats struct {
	// ReplicaTick is the latest applied world tick.
	ReplicaTick uint64
	// Epoch is the authority epoch of the cloud currently followed.
	Epoch uint64
	// BufferedNow is the number of outage-window actions currently held.
	BufferedNow int
	// Attached is the number of streaming players.
	Attached int
	// Frames is the total video frames streamed.
	Frames int64
	// VideoBits is the total video egress.
	VideoBits int64
	// Probes counts capacity probes answered — how often this supernode
	// was tried during §3.2 selection, whether or not a player attached.
	Probes int64
	// DatagramSessions counts video sessions that went live over UDP (a
	// hello arrived and frames switched to datagrams).
	DatagramSessions int64
	// DatagramFrames counts video frames sent as datagrams; the TCP
	// frame count is Frames minus this.
	DatagramFrames int64
	// DatagramHellos / DatagramUnknown count hello datagrams registered
	// and datagrams dropped for a bad header, kind, token, or epoch.
	DatagramHellos  int64
	DatagramUnknown int64
	// AppliedDeltas / StaleDeltas are replica counters.
	AppliedDeltas int
	StaleDeltas   int
	// InterestUpdatesSent counts AoI subscription reports sent upstream;
	// InterestCells is the current footprint size in cells. Both are zero
	// when AoI is off.
	InterestUpdatesSent int64
	InterestCells       int
	// CellBatches / KeyframesApplied count the AoI update stream: per-cell
	// delta batches applied, and how many of them were cell-enter
	// keyframes.
	CellBatches      int64
	KeyframesApplied int64
	// Resilience groups the failure-handling counters.
	Resilience FogResilience
}

// Stats snapshots the counters.
func (f *FogNode) Stats() FogStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	buffered := 0
	for _, q := range f.actionQ {
		buffered += len(q)
	}
	st := FogStats{
		ReplicaTick:         f.replica.Tick(),
		Epoch:               f.epoch,
		BufferedNow:         buffered,
		Attached:            len(f.attached),
		Frames:              f.frames,
		VideoBits:           f.videoBits,
		Probes:              f.probes,
		AppliedDeltas:       f.replica.AppliedDeltas(),
		StaleDeltas:         f.replica.StaleDeltas(),
		InterestUpdatesSent: f.interestSent,
		CellBatches:         f.cellBatches,
		KeyframesApplied:    f.keyframesApplied,
		Resilience:          f.resil,
	}
	if f.aoi != nil {
		st.InterestCells = len(f.aoi.cells)
	}
	if f.dgram != nil {
		st.DatagramSessions = f.dgram.sessOpen.Load()
		st.DatagramFrames = f.dgram.frames.Load()
		st.DatagramHellos = f.dgram.hellos.Load()
		st.DatagramUnknown = f.dgram.unknown.Load()
	}
	return st
}

// updateLoop applies the cloud's update stream to the replica, answers
// heartbeats, and — when the connection dies — reconnects with jittered
// exponential backoff and resyncs the replica.
//
// This is the fog side of the Λ stream, so it is allocation-free in steady
// state: the frame reader reuses one receive buffer per connection, the
// update batch reuses its delta slice across ticks (the replica copies
// what it keeps), and heartbeat acks are framed into a reused scratch
// buffer and flushed with a single Write.
func (f *FogNode) updateLoop() {
	defer f.wg.Done()
	var batch protocol.UpdateBatch
	var cellBatch protocol.CellBatch
	var ackBuf []byte
	for {
		f.mu.Lock()
		conn := f.cloud
		f.mu.Unlock()
		// One reader per connection: reconnecting swaps the conn, so the
		// reader (and its buffered stream position) must be rebuilt.
		fr := protocol.NewFrameReader(conn)
	readLoop:
		for {
			typ, payload, err := fr.Next()
			if err != nil {
				break readLoop
			}
			switch typ {
			case protocol.MsgUpdateBatch:
				if berr := protocol.DecodeUpdateBatch(payload, &batch); berr != nil {
					continue
				}
				f.mu.Lock()
				// The authority failed over while this conn survived; its
				// stamp is the fastest notification there is.
				//lint:ignore epochstamp epoch adoption, not a discard decision: the fog follows the highest epoch it has seen
				if batch.Epoch > f.epoch {
					f.epoch = batch.Epoch
				}
				f.replica.Apply(batch.Tick, batch.Deltas)
				f.mu.Unlock()
				f.refreshInterest()
			case protocol.MsgCellBatch:
				if berr := protocol.DecodeCellBatch(payload, &cellBatch); berr != nil {
					continue
				}
				f.mu.Lock()
				//lint:ignore epochstamp epoch adoption, not a discard decision: the fog follows the highest epoch it has seen
				if cellBatch.Epoch > f.epoch {
					f.epoch = cellBatch.Epoch
				}
				if cellBatch.Keyframe && f.aoi != nil && f.aoi.ready {
					// Cell-enter seed: prune in-cell entities the batch does
					// not mention, then apply its full population.
					f.replica.ApplyCellKeyframe(cellBatch.Tick, f.aoi.geo, cellBatch.Cell, cellBatch.Deltas)
					f.keyframesApplied++
				} else {
					// Ordinary cell deltas — including the CellNone global
					// bucket (removals, session events) — apply as-is.
					f.replica.Apply(cellBatch.Tick, cellBatch.Deltas)
				}
				f.cellBatches++
				f.mu.Unlock()
				f.refreshInterest()
			case protocol.MsgHeartbeat:
				hb, herr := protocol.UnmarshalHeartbeat(payload)
				if herr != nil {
					continue
				}
				f.mu.Lock()
				ack := protocol.HeartbeatAck{
					Seq:         hb.Seq,
					ReplicaTick: f.replica.Tick(),
					Attached:    uint16(len(f.attached)),
				}
				f.mu.Unlock()
				var aerr error
				ackBuf, aerr = protocol.AppendMessage(ackBuf[:0], protocol.MsgHeartbeatAck, &ack)
				if aerr != nil {
					continue
				}
				// The ack shares the connection with forwarded player
				// actions; one writer at a time.
				f.cloudWMu.Lock()
				conn.SetWriteDeadline(time.Now().Add(f.cfg.WriteTimeout))
				_, werr := conn.Write(ackBuf)
				conn.SetWriteDeadline(time.Time{})
				f.cloudWMu.Unlock()
				if werr != nil {
					continue // the read side will observe the dead conn
				}
				f.mu.Lock()
				f.resil.HeartbeatAcks++
				f.mu.Unlock()
			case protocol.MsgCandidateUpdate:
				// The cloud keeps supernodes' failover view current too:
				// the advertised standby is the second rung of this
				// node's own reconnect ladder.
				upd, uerr := protocol.UnmarshalCandidateUpdate(payload)
				if uerr != nil {
					continue
				}
				f.mu.Lock()
				f.standbyAddr = upd.StandbyAddr
				f.mu.Unlock()
			case protocol.MsgBye:
				// Graceful cloud shutdown: stop reading and head into the
				// redial/resume ladder (the standby, if any, is about to
				// take over).
				break readLoop
			}
		}
		if !f.reconnect() {
			return // closing
		}
	}
}

// reconnect re-establishes the cloud link after it broke, walking the
// failover ladder authority → standby with jittered, capped exponential
// backoff. Every rung goes through MsgResume: it re-registers on the
// same primary after a network blip and re-admits on a promoted standby
// after a crash, and either way the reply's snapshot resyncs the
// replica. On success, buffered outage-window player actions are
// flushed upstream.
func (f *FogNode) reconnect() bool {
	f.mu.Lock()
	old := f.cloud
	f.mu.Unlock()
	old.Close()
	backoff := f.cfg.ReconnectBackoff
	for {
		select {
		case <-f.stop:
			return false
		default:
		}
		f.mu.Lock()
		sleep, next := nextBackoff(f.jitter, backoff, f.cfg.ReconnectBackoffMax)
		ladder := []string{f.authority}
		if f.standbyAddr != "" && f.standbyAddr != f.authority {
			ladder = append(ladder, f.standbyAddr)
		}
		f.mu.Unlock()
		backoff = next
		t := time.NewTimer(sleep)
		select {
		case <-f.stop:
			t.Stop()
			return false
		case <-t.C:
		}
		for _, addr := range ladder {
			f.mu.Lock()
			f.resil.ReconnectAttempts++
			f.mu.Unlock()
			conn, reply, err := f.resumeCloud(addr)
			if err != nil {
				continue
			}
			f.mu.Lock()
			f.cloud = conn
			f.id = reply.SupernodeID
			f.epoch = reply.Epoch
			f.authority = addr
			f.standbyAddr = reply.StandbyAddr
			f.replica.Seed(reply.Snapshot) // resync: drop stale state wholesale
			// The new connection has no subscription; rearm AoI so the
			// footprint is recomputed and re-reported from scratch.
			f.resetInterestLocked()
			if reply.Discard {
				f.resil.DiscardedResyncs++
			}
			f.resil.Reconnects++
			f.resil.Resumes++
			closing := false
			select {
			case <-f.stop:
				closing = true
			default:
			}
			f.mu.Unlock()
			if closing {
				conn.Close()
				return false
			}
			f.flushActions()
			f.refreshInterest()
			return true
		}
	}
}

// resumeCloud dials addr and performs the epoch-stamped resume
// handshake, returning the connection and the reply holding the new
// epoch, authoritative tick, and reseed snapshot. The whole handshake
// runs under deadlines.
func (f *FogNode) resumeCloud(addr string) (net.Conn, protocol.ResumeReply, error) {
	var zero protocol.ResumeReply
	conn, err := f.tp.Dial(addr)
	if err != nil {
		return nil, zero, err
	}
	f.mu.Lock()
	req := protocol.Resume{
		Kind:       protocol.ResumeSupernode,
		Epoch:      f.epoch,
		Tick:       f.replica.Tick(),
		Name:       f.cfg.Name,
		Capacity:   f.cfg.Capacity,
		StreamAddr: f.listener.Addr().String(),
	}
	f.mu.Unlock()
	conn.SetDeadline(time.Now().Add(f.tc.HandshakeTimeout))
	if werr := protocol.WriteMessage(conn, protocol.MsgResume, req.Marshal()); werr != nil {
		conn.Close()
		return nil, zero, fmt.Errorf("fog resume: %w", werr)
	}
	typ, payload, rerr := protocol.ReadMessage(conn)
	if rerr != nil || typ != protocol.MsgResumeReply {
		conn.Close()
		return nil, zero, fmt.Errorf("fog resume reply: %v %w", typ, rerr)
	}
	reply, derr := protocol.UnmarshalResumeReply(payload)
	if derr != nil || !reply.OK || !reply.HasSnapshot {
		conn.Close()
		return nil, zero, fmt.Errorf("fog resume rejected: %s %w", reply.Reason, derr)
	}
	conn.SetDeadline(time.Time{})
	return conn, reply, nil
}

// submitAction implements actionSink: a player whose cloud control link
// is down sent an input over its video session. The fog forwards it
// upstream immediately when its own cloud link is up, and otherwise
// buffers it (bounded per player) for the outage window.
func (f *FogNode) submitAction(a virtualworld.Action) bool {
	f.mu.Lock()
	conn := f.cloud
	f.mu.Unlock()
	if conn != nil && f.forwardAction(conn, a) {
		f.mu.Lock()
		f.resil.ForwardedActions++
		f.mu.Unlock()
		return true
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	q := f.actionQ[int32(a.Player)]
	if len(q) >= maxBufferedActionsPerPlayer {
		f.resil.DroppedActions++
		return false
	}
	f.actionQ[int32(a.Player)] = append(q, a)
	f.resil.BufferedActions++
	return true
}

// forwardAction frames and writes one action upstream under the shared
// cloud-write mutex; false means the link is (now) broken.
func (f *FogNode) forwardAction(conn net.Conn, a virtualworld.Action) bool {
	msg := protocol.ActionMsg{Action: a}
	f.cloudWMu.Lock()
	defer f.cloudWMu.Unlock()
	var err error
	f.actBuf, err = protocol.AppendMessage(f.actBuf[:0], protocol.MsgAction, &msg)
	if err != nil {
		return false
	}
	conn.SetWriteDeadline(time.Now().Add(f.cfg.WriteTimeout))
	_, werr := conn.Write(f.actBuf)
	conn.SetWriteDeadline(time.Time{})
	return werr == nil
}

// flushActions drains the outage-window buffers upstream after a
// reconnect, in player order so the flush is deterministic for a given
// buffered set.
func (f *FogNode) flushActions() {
	f.mu.Lock()
	conn := f.cloud
	var all []virtualworld.Action
	if conn != nil && len(f.actionQ) > 0 {
		ids := make([]int32, 0, len(f.actionQ))
		for id := range f.actionQ {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			all = append(all, f.actionQ[id]...)
			delete(f.actionQ, id)
		}
	}
	f.mu.Unlock()
	for _, a := range all {
		if !f.forwardAction(conn, a) {
			return // the read side will observe the dead conn
		}
		f.mu.Lock()
		f.resil.ForwardedActions++
		f.mu.Unlock()
	}
}

func (f *FogNode) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.listener.Accept()
		if err != nil {
			return
		}
		f.wg.Add(1)
		go f.servePlayer(conn)
	}
}

// available returns the free player slots.
func (f *FogNode) available() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg.Capacity - len(f.attached)
}

// servePlayer answers capacity probes and runs one player's video session.
func (f *FogNode) servePlayer(conn net.Conn) {
	defer f.wg.Done()
	defer conn.Close()

	var playerID int32
	var level game.QualityLevel
	attached := false
	for !attached {
		conn.SetReadDeadline(time.Now().Add(f.tc.HandshakeTimeout))
		typ, payload, err := protocol.ReadMessage(conn)
		if err != nil {
			return
		}
		switch typ {
		case protocol.MsgProbe:
			f.mu.Lock()
			f.probes++
			f.mu.Unlock()
			reply := protocol.ProbeReply{Available: f.available()}
			conn.SetWriteDeadline(time.Now().Add(f.cfg.WriteTimeout))
			if protocol.WriteMessage(conn, protocol.MsgProbeReply, reply.Marshal()) != nil {
				return
			}
		case protocol.MsgPlayerAttach:
			attach, aerr := protocol.UnmarshalPlayerAttach(payload)
			if aerr != nil {
				return
			}
			f.mu.Lock()
			ok := len(f.attached) < f.cfg.Capacity
			if ok {
				f.attached[attach.PlayerID] = struct{}{}
			}
			f.mu.Unlock()
			reply := protocol.AttachReply{OK: ok}
			if !ok {
				reply.Reason = "at capacity"
			}
			conn.SetWriteDeadline(time.Now().Add(f.cfg.WriteTimeout))
			if protocol.WriteMessage(conn, protocol.MsgAttachReply, reply.Marshal()) != nil {
				if ok {
					f.mu.Lock()
					delete(f.attached, attach.PlayerID)
					f.mu.Unlock()
				}
				return
			}
			if !ok {
				return
			}
			playerID = attach.PlayerID
			level = game.QualityLevel(attach.QualityLevel)
			attached = true
		default:
			return
		}
	}
	conn.SetDeadline(time.Time{}) // handshake read+write deadlines no longer apply
	// The attach set changed: the AoI footprint must cover the new
	// player's surroundings before its first frames render.
	f.interestDirty()
	f.refreshInterest()
	defer func() {
		f.mu.Lock()
		delete(f.attached, playerID)
		f.mu.Unlock()
		// Departure shrinks the footprint (after hysteresis).
		f.interestDirty()
		f.refreshInterest()
	}()
	runVideoSession(conn, playerID, level, f.cfg.FrameInterval, f.cfg.WriteTimeout,
		f, f, f, f, f.stop, &f.wg)
}

// currentSnapshot implements snapshotSource over the replica.
func (f *FogNode) currentSnapshot() virtualworld.Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.replica.Snapshot()
}

// addFrame implements streamCounters.
func (f *FogNode) addFrame(bits int) {
	f.mu.Lock()
	f.frames++
	f.videoBits += int64(bits)
	f.mu.Unlock()
}
