package fognet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/protocol"
	"cloudfog/internal/rng"
	"cloudfog/internal/virtualworld"
)

// DefaultFrameInterval is the streaming frame period. The paper streams at
// 30 fps; the prototype default matches, and tests lower it.
const DefaultFrameInterval = time.Second / 30

// Reconnect backoff defaults: jittered exponential, so a cloud restart is
// not greeted by a synchronized stampede of supernodes.
const (
	DefaultReconnectBackoff    = 200 * time.Millisecond
	DefaultReconnectBackoffMax = 5 * time.Second
)

// FogConfig parameterizes a FogNode.
type FogConfig struct {
	// Name labels the supernode.
	Name string
	// CloudAddr is the cloud server to register with.
	CloudAddr string
	// StreamAddr is the listen address for player video sessions
	// ("127.0.0.1:0" for an ephemeral port).
	StreamAddr string
	// Capacity is the maximum concurrent players (the supernode capacity
	// of §3.2.1).
	Capacity int
	// FrameInterval is the video frame period. Defaults to
	// DefaultFrameInterval.
	FrameInterval time.Duration
	// DialTimeout bounds the cloud dial. Defaults to DefaultDialTimeout.
	DialTimeout time.Duration
	// WriteTimeout bounds protocol writes (heartbeat acks, video frames).
	// Defaults to DefaultWriteTimeout.
	WriteTimeout time.Duration
	// ReconnectBackoff is the initial delay before redialing a lost
	// cloud connection; it doubles per attempt up to
	// ReconnectBackoffMax, with ±50% deterministic jitter.
	ReconnectBackoff    time.Duration
	ReconnectBackoffMax time.Duration
	// Seed drives the reconnect jitter deterministically.
	Seed uint64
	// Dial, when set, replaces net.DialTimeout — the faultnet injection
	// point for chaos tests.
	Dial DialFunc
}

// FogResilience groups the supernode's failure-handling counters.
type FogResilience struct {
	// Reconnects counts successful cloud re-registrations after a lost
	// connection (each one also resyncs the replica).
	Reconnects int64
	// ReconnectAttempts counts dial attempts, successful or not.
	ReconnectAttempts int64
	// HeartbeatAcks counts liveness replies sent to the cloud.
	HeartbeatAcks int64
}

// FogNode is one supernode: it replicates the world and renders/streams
// per-player video.
type FogNode struct {
	cfg      FogConfig
	listener net.Listener

	mu        sync.Mutex
	cloud     net.Conn
	id        uint32
	replica   *virtualworld.Replica
	attached  map[int32]struct{} // guarded by mu
	videoBits int64
	frames    int64
	probes    int64
	resil     FogResilience

	jitter *rng.Rand // reconnect jitter; guarded by mu

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewFogNode connects to the cloud, registers, seeds its replica, and
// starts serving players on StreamAddr. If the cloud connection later
// drops, the node redials with jittered exponential backoff and resyncs
// its replica from the fresh welcome snapshot; players stay attached and
// stream (increasingly stale) frames throughout.
func NewFogNode(cfg FogConfig) (*FogNode, error) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8
	}
	if cfg.FrameInterval <= 0 {
		cfg.FrameInterval = DefaultFrameInterval
	}
	if cfg.StreamAddr == "" {
		cfg.StreamAddr = "127.0.0.1:0"
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.ReconnectBackoff <= 0 {
		cfg.ReconnectBackoff = DefaultReconnectBackoff
	}
	if cfg.ReconnectBackoffMax <= 0 {
		cfg.ReconnectBackoffMax = DefaultReconnectBackoffMax
	}
	if cfg.Dial == nil {
		cfg.Dial = net.DialTimeout
	}
	ln, err := net.Listen("tcp", cfg.StreamAddr)
	if err != nil {
		return nil, fmt.Errorf("fog listen: %w", err)
	}
	f := &FogNode{
		cfg:      cfg,
		listener: ln,
		attached: make(map[int32]struct{}),
		jitter:   rng.New(cfg.Seed).SplitNamed("fog-reconnect-" + cfg.Name),
		stop:     make(chan struct{}),
	}
	conn, welcome, err := f.connectCloud()
	if err != nil {
		ln.Close()
		return nil, err
	}
	f.cloud = conn
	f.id = welcome.SupernodeID
	f.replica = virtualworld.NewReplica(welcome.Snapshot.Width, welcome.Snapshot.Height)
	f.replica.Seed(welcome.Snapshot)

	f.wg.Add(2)
	go f.updateLoop()
	go f.acceptLoop()
	return f, nil
}

// connectCloud dials the cloud, registers, and returns the connection and
// welcome (with the snapshot to seed/resync the replica from). The whole
// handshake runs under deadlines.
func (f *FogNode) connectCloud() (net.Conn, protocol.SupernodeWelcome, error) {
	var zero protocol.SupernodeWelcome
	conn, err := f.cfg.Dial("tcp", f.cfg.CloudAddr, f.cfg.DialTimeout)
	if err != nil {
		return nil, zero, fmt.Errorf("fog dial cloud: %w", err)
	}
	hello := protocol.SupernodeHello{
		Name:       f.cfg.Name,
		Capacity:   f.cfg.Capacity,
		StreamAddr: f.listener.Addr().String(),
	}
	conn.SetDeadline(time.Now().Add(f.cfg.DialTimeout))
	if err := protocol.WriteMessage(conn, protocol.MsgSupernodeHello, hello.Marshal()); err != nil {
		conn.Close()
		return nil, zero, fmt.Errorf("fog register: %w", err)
	}
	typ, payload, err := protocol.ReadMessage(conn)
	if err != nil || typ != protocol.MsgSupernodeWelcome {
		conn.Close()
		return nil, zero, fmt.Errorf("fog welcome: %v %w", typ, err)
	}
	welcome, err := protocol.UnmarshalSupernodeWelcome(payload)
	if err != nil {
		conn.Close()
		return nil, zero, fmt.Errorf("fog welcome decode: %w", err)
	}
	conn.SetDeadline(time.Time{})
	return conn, welcome, nil
}

// StreamAddr returns the address players connect to for video.
func (f *FogNode) StreamAddr() string { return f.listener.Addr().String() }

// ID returns the cloud-assigned supernode ID (it changes on reconnect).
func (f *FogNode) ID() uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.id
}

func (f *FogNode) closeAll() {
	f.listener.Close()
	f.mu.Lock()
	cloud := f.cloud
	f.mu.Unlock()
	if cloud != nil {
		cloud.Close()
	}
}

// Close stops the fog node and waits for its goroutines.
func (f *FogNode) Close() error {
	select {
	case <-f.stop:
		return nil
	default:
	}
	close(f.stop)
	f.closeAll()
	f.wg.Wait()
	return nil
}

// FogStats reports supernode counters.
type FogStats struct {
	// ReplicaTick is the latest applied world tick.
	ReplicaTick uint64
	// Attached is the number of streaming players.
	Attached int
	// Frames is the total video frames streamed.
	Frames int64
	// VideoBits is the total video egress.
	VideoBits int64
	// Probes counts capacity probes answered — how often this supernode
	// was tried during §3.2 selection, whether or not a player attached.
	Probes int64
	// AppliedDeltas / StaleDeltas are replica counters.
	AppliedDeltas int
	StaleDeltas   int
	// Resilience groups the failure-handling counters.
	Resilience FogResilience
}

// Stats snapshots the counters.
func (f *FogNode) Stats() FogStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FogStats{
		ReplicaTick:   f.replica.Tick(),
		Attached:      len(f.attached),
		Frames:        f.frames,
		VideoBits:     f.videoBits,
		Probes:        f.probes,
		AppliedDeltas: f.replica.AppliedDeltas(),
		StaleDeltas:   f.replica.StaleDeltas(),
		Resilience:    f.resil,
	}
}

// updateLoop applies the cloud's update stream to the replica, answers
// heartbeats, and — when the connection dies — reconnects with jittered
// exponential backoff and resyncs the replica.
//
// This is the fog side of the Λ stream, so it is allocation-free in steady
// state: the frame reader reuses one receive buffer per connection, the
// update batch reuses its delta slice across ticks (the replica copies
// what it keeps), and heartbeat acks are framed into a reused scratch
// buffer and flushed with a single Write.
func (f *FogNode) updateLoop() {
	defer f.wg.Done()
	var batch protocol.UpdateBatch
	var ackBuf []byte
	for {
		f.mu.Lock()
		conn := f.cloud
		f.mu.Unlock()
		// One reader per connection: reconnecting swaps the conn, so the
		// reader (and its buffered stream position) must be rebuilt.
		fr := protocol.NewFrameReader(conn)
	readLoop:
		for {
			typ, payload, err := fr.Next()
			if err != nil {
				break readLoop
			}
			switch typ {
			case protocol.MsgUpdateBatch:
				if berr := protocol.DecodeUpdateBatch(payload, &batch); berr != nil {
					continue
				}
				f.mu.Lock()
				f.replica.Apply(batch.Tick, batch.Deltas)
				f.mu.Unlock()
			case protocol.MsgHeartbeat:
				hb, herr := protocol.UnmarshalHeartbeat(payload)
				if herr != nil {
					continue
				}
				f.mu.Lock()
				ack := protocol.HeartbeatAck{
					Seq:         hb.Seq,
					ReplicaTick: f.replica.Tick(),
					Attached:    uint16(len(f.attached)),
				}
				f.mu.Unlock()
				var aerr error
				ackBuf, aerr = protocol.AppendMessage(ackBuf[:0], protocol.MsgHeartbeatAck, &ack)
				if aerr != nil {
					continue
				}
				conn.SetWriteDeadline(time.Now().Add(f.cfg.WriteTimeout))
				_, werr := conn.Write(ackBuf)
				conn.SetWriteDeadline(time.Time{})
				if werr != nil {
					continue // the read side will observe the dead conn
				}
				f.mu.Lock()
				f.resil.HeartbeatAcks++
				f.mu.Unlock()
			}
		}
		if !f.reconnect() {
			return // closing
		}
	}
}

// reconnect redials the cloud until it succeeds or the node closes,
// doubling a jittered backoff each attempt. On success it installs the
// new connection and resyncs the replica from the welcome snapshot.
func (f *FogNode) reconnect() bool {
	f.mu.Lock()
	old := f.cloud
	f.mu.Unlock()
	old.Close()
	backoff := f.cfg.ReconnectBackoff
	for {
		select {
		case <-f.stop:
			return false
		default:
		}
		// ±50% deterministic jitter around the current backoff.
		f.mu.Lock()
		sleep := time.Duration(f.jitter.Uniform(0.5, 1.5) * float64(backoff))
		f.mu.Unlock()
		t := time.NewTimer(sleep)
		select {
		case <-f.stop:
			t.Stop()
			return false
		case <-t.C:
		}
		f.mu.Lock()
		f.resil.ReconnectAttempts++
		f.mu.Unlock()
		conn, welcome, err := f.connectCloud()
		if err != nil {
			backoff *= 2
			if backoff > f.cfg.ReconnectBackoffMax {
				backoff = f.cfg.ReconnectBackoffMax
			}
			continue
		}
		f.mu.Lock()
		f.cloud = conn
		f.id = welcome.SupernodeID
		f.replica.Seed(welcome.Snapshot) // resync: drop stale state wholesale
		f.resil.Reconnects++
		closing := false
		select {
		case <-f.stop:
			closing = true
		default:
		}
		f.mu.Unlock()
		if closing {
			conn.Close()
			return false
		}
		return true
	}
}

func (f *FogNode) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.listener.Accept()
		if err != nil {
			return
		}
		f.wg.Add(1)
		go f.servePlayer(conn)
	}
}

// available returns the free player slots.
func (f *FogNode) available() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg.Capacity - len(f.attached)
}

// servePlayer answers capacity probes and runs one player's video session.
func (f *FogNode) servePlayer(conn net.Conn) {
	defer f.wg.Done()
	defer conn.Close()

	var playerID int32
	var level game.QualityLevel
	attached := false
	for !attached {
		conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
		typ, payload, err := protocol.ReadMessage(conn)
		if err != nil {
			return
		}
		switch typ {
		case protocol.MsgProbe:
			f.mu.Lock()
			f.probes++
			f.mu.Unlock()
			reply := protocol.ProbeReply{Available: f.available()}
			conn.SetWriteDeadline(time.Now().Add(f.cfg.WriteTimeout))
			if protocol.WriteMessage(conn, protocol.MsgProbeReply, reply.Marshal()) != nil {
				return
			}
		case protocol.MsgPlayerAttach:
			attach, aerr := protocol.UnmarshalPlayerAttach(payload)
			if aerr != nil {
				return
			}
			f.mu.Lock()
			ok := len(f.attached) < f.cfg.Capacity
			if ok {
				f.attached[attach.PlayerID] = struct{}{}
			}
			f.mu.Unlock()
			reply := protocol.AttachReply{OK: ok}
			if !ok {
				reply.Reason = "at capacity"
			}
			conn.SetWriteDeadline(time.Now().Add(f.cfg.WriteTimeout))
			if protocol.WriteMessage(conn, protocol.MsgAttachReply, reply.Marshal()) != nil {
				if ok {
					f.mu.Lock()
					delete(f.attached, attach.PlayerID)
					f.mu.Unlock()
				}
				return
			}
			if !ok {
				return
			}
			playerID = attach.PlayerID
			level = game.QualityLevel(attach.QualityLevel)
			attached = true
		default:
			return
		}
	}
	conn.SetDeadline(time.Time{}) // handshake read+write deadlines no longer apply
	defer func() {
		f.mu.Lock()
		delete(f.attached, playerID)
		f.mu.Unlock()
	}()
	runVideoSession(conn, playerID, level, f.cfg.FrameInterval, f.cfg.WriteTimeout,
		f, f, f.stop, &f.wg)
}

// currentSnapshot implements snapshotSource over the replica.
func (f *FogNode) currentSnapshot() virtualworld.Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.replica.Snapshot()
}

// addFrame implements streamCounters.
func (f *FogNode) addFrame(bits int) {
	f.mu.Lock()
	f.frames++
	f.videoBits += int64(bits)
	f.mu.Unlock()
}
