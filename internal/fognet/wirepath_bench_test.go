package fognet

import (
	"io"
	"testing"

	"cloudfog/internal/game"
	"cloudfog/internal/protocol"
	"cloudfog/internal/render"
	"cloudfog/internal/videocodec"
	"cloudfog/internal/virtualworld"
)

// fanoutBatch builds the tick payload the cloud fans out: n entity deltas
// with a sprinkling of removals, like a busy world tick.
func fanoutBatch(n int) protocol.UpdateBatch {
	deltas := make([]virtualworld.Delta, n)
	for i := range deltas {
		deltas[i] = virtualworld.Delta{
			ID:      virtualworld.EntityID(i + 1),
			Removed: i%7 == 3,
			Entity: virtualworld.Entity{
				ID: virtualworld.EntityID(i + 1), Kind: virtualworld.KindNPC,
				Owner: -1, X: float64(i), Y: float64(2 * i), HP: 80,
			},
		}
	}
	return protocol.UpdateBatch{Tick: 42, Deltas: deltas}
}

// fanoutWidth is the supernode count both tick fan-out benchmarks serve.
const fanoutWidth = 8

// BenchmarkTickFanout measures the zero-allocation fan-out path end to
// end, exactly as tickOnce + snWriter run it: one append-encode of the
// tick batch into a pooled reference-counted buffer, an enqueue per
// supernode, then each writer draining its queue into a pooled coalescing
// buffer flushed with a single write. Steady state: 0 allocs/op for the
// whole 8-wide fan-out.
func BenchmarkTickFanout(b *testing.B) {
	batch := fanoutBatch(64)
	queues := make([]chan outMsg, fanoutWidth)
	for i := range queues {
		queues[i] = make(chan outMsg, DefaultSendQueueLen)
	}
	var pending []outMsg // reused drain list, as in snWriter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// tickOnce side: encode once, arm one reference per recipient.
		sp := newSharedPayload(len(queues))
		sp.buf.B = batch.AppendTo(sp.buf.B[:0])
		for _, q := range queues {
			q <- outMsg{typ: protocol.MsgUpdateBatch, payload: sp.buf.B, shared: sp}
		}
		// snWriter side: drain, coalesce into a pooled buffer, flush once.
		for _, q := range queues {
			pending = pending[:0]
		drain:
			for {
				select {
				case m := <-q:
					pending = append(pending, m)
				default:
					break drain
				}
			}
			buf := protocol.GetBuffer()
			for _, m := range pending {
				var err error
				if buf.B, err = protocol.AppendFrame(buf.B, m.typ, m.payload); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := io.Discard.Write(buf.B); err != nil {
				b.Fatal(err)
			}
			for j := range pending {
				pending[j].shared.release()
				pending[j] = outMsg{}
			}
			protocol.PutBuffer(buf)
		}
	}
}

// BenchmarkTickFanoutLegacy is the pre-change baseline kept for
// comparison: the old tick loop marshaled the batch once per supernode and
// framed it through WriteMessage, allocating payload + header every time.
// Compare against BenchmarkTickFanout in the same -benchmem run.
func BenchmarkTickFanoutLegacy(b *testing.B) {
	batch := fanoutBatch(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < fanoutWidth; j++ {
			if err := protocol.WriteMessage(io.Discard, protocol.MsgUpdateBatch, batch.Marshal()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFrameStream measures one iteration of the fog tier's 30 fps
// streaming loop as runVideoSession runs it: rasterize the snapshot into a
// reused framebuffer, compress into reused encoder scratch, frame the
// result into a pooled buffer, flush with a single write. Steady state:
// 0 allocs/op.
func BenchmarkFrameStream(b *testing.B) {
	w := virtualworld.New(400, 400)
	w.SpawnAvatar(1, 100, 100)
	for i := 0; i < 5; i++ {
		w.Step([]virtualworld.Action{{Player: 1, Kind: virtualworld.ActMove, TargetX: 300, TargetY: 300}})
	}
	snap := w.Snapshot()
	level := 3
	renderer := render.NewRenderer(render.ResolutionForLevel(level))
	encoder := videocodec.NewEncoder(game.MustQuality(game.QualityLevel(level)).BitrateKbps)
	frame := render.NewFrame(renderer.Resolution())
	var ef videocodec.EncodedFrame
	out := protocol.GetBuffer()
	defer protocol.PutBuffer(out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		renderer.RenderInto(snap, render.ViewportFor(snap, 1), frame)
		encoder.EncodeInto(frame, &ef)
		var err error
		out.B, err = protocol.AppendMessage(out.B[:0], protocol.MsgVideoFrame, &ef)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Discard.Write(out.B); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTickFanoutSteadyStateAllocs pins the fan-out benchmark's property as
// a regression test: after warm-up the shared-encode + coalesced-drain
// cycle allocates nothing.
func TestTickFanoutSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes caching under -race; allocation counts only hold without it")
	}
	batch := fanoutBatch(64)
	q := make(chan outMsg, DefaultSendQueueLen)
	var pending []outMsg
	cycle := func() {
		sp := newSharedPayload(1)
		sp.buf.B = batch.AppendTo(sp.buf.B[:0])
		q <- outMsg{typ: protocol.MsgUpdateBatch, payload: sp.buf.B, shared: sp}
		pending = pending[:0]
	drain:
		for {
			select {
			case m := <-q:
				pending = append(pending, m)
			default:
				break drain
			}
		}
		buf := protocol.GetBuffer()
		for _, m := range pending {
			var err error
			if buf.B, err = protocol.AppendFrame(buf.B, m.typ, m.payload); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := io.Discard.Write(buf.B); err != nil {
			t.Fatal(err)
		}
		for j := range pending {
			pending[j].shared.release()
			pending[j] = outMsg{}
		}
		protocol.PutBuffer(buf)
	}
	for i := 0; i < 8; i++ { // warm-up: grow pools and scratch
		cycle()
	}
	if n := testing.AllocsPerRun(64, cycle); n != 0 {
		t.Fatalf("tick fan-out allocates %.1f/op in steady state, want 0", n)
	}
}
