package fognet

import (
	"net/netip"
	"testing"
	"time"

	"cloudfog/internal/adaptation"
	"cloudfog/internal/faultnet"
	"cloudfog/internal/game"
	"cloudfog/internal/transport"
)

// startDgramFog creates a fog node with the UDP video path enabled,
// optionally behind a faultnet datagram wrapper.
func startDgramFog(t *testing.T, cloud *CloudServer, name string, wrap transport.WrapDatagramFunc) *FogNode {
	t.Helper()
	fog, err := NewFogNode(FogConfig{
		Name:          name,
		CloudAddr:     cloud.Addr(),
		Capacity:      4,
		FrameInterval: 10 * time.Millisecond,
		Datagram:      true,
		WrapDatagram:  wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fog.Close() })
	return fog
}

func TestDatagramVideoEndToEnd(t *testing.T) {
	cloud := startCloud(t)
	fog := startDgramFog(t, cloud, "fog-1", nil)

	player, err := NewPlayerClient(PlayerConfig{
		PlayerID:       31,
		CloudAddr:      cloud.Addr(),
		ActionInterval: 10 * time.Millisecond,
		Datagram:       true,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()

	// The upgrade must complete and the frames must actually ride UDP:
	// session counted on both ends, datagram frames flowing, and the
	// decoded stream depicting a recent world tick — proof the cloud →
	// fog → UDP → decoder loop closed.
	waitFor(t, 8*time.Second, "datagram video", func() bool {
		s := player.Stats()
		return s.DatagramSessions >= 1 && s.DatagramFrames >= 20 && s.LastTick > 0
	})
	s := player.Stats()
	if s.DecodeErrors > s.Frames/10 {
		t.Errorf("decode errors over UDP: %d of %d frames", s.DecodeErrors, s.Frames)
	}
	fs := fog.Stats()
	if fs.DatagramSessions < 1 || fs.DatagramHellos < 1 || fs.DatagramFrames < 20 {
		t.Errorf("fog datagram stats: %+v", fs)
	}
	// Control stays on TCP: the goodbye must still tear the session down
	// cleanly (the fog sees the Bye on the stream connection and drops
	// the datagram session with it).
	player.Close()
	waitFor(t, 2*time.Second, "session teardown", func() bool {
		return fog.Stats().Attached == 0
	})
}

func TestDatagramRefusedFallsBackToTCP(t *testing.T) {
	cloud := startCloud(t)
	// This fog never opened a UDP socket: the request must be refused and
	// the session must keep streaming over TCP as if nothing happened.
	startFog(t, cloud, "fog-1", 4)

	player, err := NewPlayerClient(PlayerConfig{
		PlayerID:       32,
		CloudAddr:      cloud.Addr(),
		ActionInterval: 10 * time.Millisecond,
		Datagram:       true,
		Seed:           4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()

	waitFor(t, 8*time.Second, "TCP frames after refusal", func() bool {
		s := player.Stats()
		return s.Frames >= 20 && s.DatagramFallbacks >= 1
	})
	s := player.Stats()
	if s.DatagramSessions != 0 || s.DatagramFrames != 0 {
		t.Errorf("refused upgrade still delivered datagrams: %+v", s)
	}
}

func TestDatagramCloudFallbackStaysTCP(t *testing.T) {
	cloud := startCloud(t)
	// No supernodes at all: the player lands on the cloud's own stream,
	// which never upgrades — the request is not even sent.
	player, err := NewPlayerClient(PlayerConfig{
		PlayerID:       33,
		CloudAddr:      cloud.Addr(),
		ActionInterval: 10 * time.Millisecond,
		Datagram:       true,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()

	waitFor(t, 8*time.Second, "cloud fallback frames", func() bool {
		return player.Stats().Frames >= 10
	})
	s := player.Stats()
	if s.FallbackTransitions < 1 {
		t.Errorf("expected a cloud fallback, got %+v", s)
	}
	if s.DatagramSessions != 0 || s.DatagramFrames != 0 {
		t.Errorf("cloud stream upgraded to datagrams: %+v", s)
	}
}

// TestDatagramChaosStaleNeverDelivered runs the UDP video path through a
// faultnet profile that drops, reorders, and duplicates datagrams. The
// receiver's ordering discipline must hold: late and duplicated frames
// are dropped at the tracker (DatagramStale / DatagramDuplicates), every
// reordered frame is a dropped frame (Reordered ⊆ Stale), and the
// decoded stream stays clean — the decoder only ever sees frames in
// order, so chaos shows up as skipped frames, not corruption.
func TestDatagramChaosStaleNeverDelivered(t *testing.T) {
	in := faultnet.NewInjector(faultnet.Profile{
		Seed:                11,
		DatagramDropRate:    0.10,
		DatagramReorderRate: 0.15,
		DatagramDupRate:     0.05,
	})
	cloud := startCloud(t)
	startDgramFog(t, cloud, "fog-1", func(dc transport.DatagramConn) transport.DatagramConn {
		return in.WrapPacketConn(dc)
	})

	player, err := NewPlayerClient(PlayerConfig{
		PlayerID:       34,
		CloudAddr:      cloud.Addr(),
		ActionInterval: 10 * time.Millisecond,
		Datagram:       true,
		Adapt:          true,
		Seed:           6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()

	waitFor(t, 10*time.Second, "chaos datagram stream", func() bool {
		s := player.Stats()
		return s.DatagramFrames >= 60 && s.DatagramStale+s.DatagramDuplicates >= 1
	})
	s := player.Stats()
	ist := in.Stats()
	if ist.DroppedDatagrams == 0 || ist.ReorderedDatagrams == 0 {
		t.Fatalf("chaos profile did not bite: %+v", ist)
	}
	// Reordered is the subset of stale drops that did arrive late: it can
	// never exceed the stale count, because a reordered frame is always
	// dropped rather than delivered.
	if s.DatagramReordered > s.DatagramStale {
		t.Errorf("reordered (%d) > stale (%d): a late frame was not dropped",
			s.DatagramReordered, s.DatagramStale)
	}
	// The decoder only saw in-order frames, so the stream stayed
	// decodable despite the chaos.
	if s.DecodeErrors > s.Frames/5 {
		t.Errorf("decode errors under chaos: %d of %d frames", s.DecodeErrors, s.Frames)
	}
	if s.LastTick == 0 {
		t.Error("no world progress decoded under chaos")
	}
}

// TestAdaptationUnderDatagramLossEndToEnd wires the loss signal through
// the whole stack: faultnet drops 20% of the fog's frame datagrams, the
// player's tracker measures it, the controller sheds levels, and the
// smoothed loss feeds the QoE accounting. Healing the link clears the
// signal.
func TestAdaptationUnderDatagramLossEndToEnd(t *testing.T) {
	in := faultnet.NewInjector(faultnet.Profile{Seed: 13, DatagramDropRate: 0.20})
	cloud := startCloud(t)
	startDgramFog(t, cloud, "fog-1", func(dc transport.DatagramConn) transport.DatagramConn {
		return in.WrapPacketConn(dc)
	})

	player, err := NewPlayerClient(PlayerConfig{
		PlayerID:       35,
		CloudAddr:      cloud.Addr(),
		ActionInterval: 10 * time.Millisecond,
		Datagram:       true,
		Adapt:          true,
		Game:           game.Catalog()[4],
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()

	initial := game.Catalog()[4].DefaultQuality
	waitFor(t, 10*time.Second, "loss-driven down-switch", func() bool {
		s := player.Stats()
		return s.DatagramSessions >= 1 && s.Level < initial &&
			s.DatagramLost > 0 && s.LossEWMA > 0
	})
	if in.Stats().DroppedDatagrams == 0 {
		t.Fatal("faultnet dropped nothing; the loss came from elsewhere")
	}

	// Heal the link: the measured loss decays below the down threshold
	// and the stream keeps delivering.
	in.SetProfile(faultnet.Profile{})
	before := player.Stats().Frames
	waitFor(t, 10*time.Second, "loss signal decay after heal", func() bool {
		s := player.Stats()
		return s.LossEWMA < adaptation.DefaultLossDownThreshold && s.Frames > before+20
	})
}

// TestAdaptationStepsDownAndRecoversUnderFaultnetLoss is the
// deterministic half of the loss coverage: real faultnet drops on a
// datagram pipe, a real RecvTracker measuring them, and the §3.3
// controller reacting — no sockets, no timers, no flakes. The controller
// must shed a level while ~15% of datagrams vanish and climb back once
// the link heals.
func TestAdaptationStepsDownAndRecoversUnderFaultnetLoss(t *testing.T) {
	in := faultnet.NewInjector(faultnet.Profile{Seed: 21, DatagramDropRate: 0.15})
	a, b := transport.NewDatagramPipe(256)
	defer a.Close()
	defer b.Close()
	send := in.WrapPacketConn(a)

	ctrl := adaptation.NewController(adaptation.Config{Debounce: 2}, 5)
	var tr transport.RecvTracker
	var hdr transport.Header
	buf := make([]byte, 0, transport.HeaderLen)
	recv := make([]byte, transport.HeaderLen)
	seq := uint64(0)
	to := netip.AddrPortFrom(netip.AddrFrom4([4]byte{127, 0, 0, 1}), 2)

	// window pushes n datagrams through the faulty link, tracks what
	// survives, and returns the measured loss fraction.
	window := func(n int) float64 {
		for i := 0; i < n; i++ {
			seq++
			h := transport.Header{Kind: transport.DgramFrame, Token: 1, Epoch: 1, Seq: seq}
			buf = h.AppendTo(buf[:0])
			if _, err := send.WriteToUDPAddrPort(buf, to); err != nil {
				t.Fatal(err)
			}
		}
		for {
			b.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
			n, _, err := b.ReadFromUDPAddrPort(recv)
			if err != nil {
				break // drained
			}
			if _, perr := transport.ParseHeader(recv[:n], &hdr); perr != nil {
				t.Fatal(perr)
			}
			tr.Track(hdr.Epoch, hdr.Seq)
		}
		delivered, lost, _ := tr.TakeWindow()
		if delivered+lost == 0 {
			return 0
		}
		return float64(lost) / float64(delivered+lost)
	}

	// Build a comfortable buffer so the down-pressure is loss-driven.
	now := 0.0
	for i := 0; i < 20; i++ {
		now += 1
		ctrl.NoteLoss(window(50))
		ctrl.Observe(now, ctrl.BitrateKbps()*2)
	}
	if ctrl.Level() >= 5 && !ctrl.Lossy() {
		t.Fatalf("15%% faultnet drop not measured as loss: level=%d", ctrl.Level())
	}
	for i := 0; i < 10 && ctrl.Level() > 3; i++ {
		now += 1
		ctrl.NoteLoss(window(50))
		ctrl.Observe(now, ctrl.BitrateKbps())
	}
	if ctrl.Level() >= 5 {
		t.Fatalf("level = %d, want a down-step under measured loss", ctrl.Level())
	}
	if tr.Stats().Lost == 0 {
		t.Fatal("tracker measured no loss")
	}
	dropped := in.Stats().DroppedDatagrams
	if dropped == 0 {
		t.Fatal("injector dropped nothing")
	}
	// The tracker can only see gaps in front of a later arrival, so its
	// loss count is bounded by what faultnet actually ate.
	if got := tr.Stats().Lost; int64(got) > dropped {
		t.Errorf("tracker lost %d > injector dropped %d", got, dropped)
	}

	// Heal: loss clears and headroom climbs the ladder back.
	in.SetProfile(faultnet.Profile{})
	for i := 0; i < 200 && ctrl.Level() < 5; i++ {
		now += 1
		ctrl.NoteLoss(window(50))
		ctrl.Observe(now, ctrl.BitrateKbps()*3)
	}
	if ctrl.Level() != 5 {
		t.Errorf("level = %d after heal, want 5", ctrl.Level())
	}
	if ctrl.Lossy() {
		t.Error("Lossy() still true after heal")
	}
}
