package fognet

import (
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"cloudfog/internal/protocol"
	"cloudfog/internal/rng"
	"cloudfog/internal/transport"
	"cloudfog/internal/videocodec"
)

// dgramOffer is the optional datagram upgrade a video session can grant:
// the fog node implements it over its UDP socket, the cloud's fallback
// sessions pass nil so every MsgDatagramRequest is refused — the cloud
// rung of the ladder stays TCP-only.
type dgramOffer interface {
	// offerDatagram registers a new datagram session and returns the
	// reply to send plus the live session handle; reply.OK false means
	// refusal (nil handle).
	offerDatagram() (protocol.DatagramReply, *dgramSession)
	// endDatagram releases the session when the video session ends.
	endDatagram(*dgramSession)
}

// fogDatagram owns a fog node's UDP video socket: one receive loop
// registers player hellos, and every datagram-upgraded video session
// sends its frames through the shared socket. Tokens authenticate
// hellos — a datagram session is addressed to whoever proves knowledge
// of the token the TCP reply carried, which is also how the fog learns
// the player's NAT-visible source address.
type fogDatagram struct {
	pc   transport.DatagramConn
	addr string // advertised in MsgDatagramReply

	writeTimeout time.Duration

	mu       sync.Mutex
	sessions map[uint64]*dgramSession // token → session; guarded by mu
	tokens   *rng.Rand                // token stream; guarded by mu

	// Counters (atomic: the send path is the 30 fps hot loop).
	frames   atomic.Int64 // video frames sent as datagrams
	hellos   atomic.Int64 // valid hellos registered
	unknown  atomic.Int64 // datagrams with no matching token/kind
	sessOpen atomic.Int64 // sessions that went live (hello arrived)

	wg sync.WaitGroup
}

// newFogDatagram binds the UDP socket and starts the hello receive loop.
// addr defaults to the stream listener's host with an ephemeral port, so
// the advertised datagram endpoint is reachable wherever the TCP one is.
func newFogDatagram(addr, streamAddr string, wrap transport.WrapDatagramFunc,
	writeTimeout time.Duration, seed uint64) (*fogDatagram, error) {
	if addr == "" {
		host, _, err := net.SplitHostPort(streamAddr)
		if err != nil {
			host = "127.0.0.1"
		}
		addr = net.JoinHostPort(host, "0")
	}
	uc, err := transport.ListenDatagram(addr)
	if err != nil {
		return nil, err
	}
	var pc transport.DatagramConn = uc
	if wrap != nil {
		pc = wrap(pc)
	}
	dg := &fogDatagram{
		pc:           pc,
		addr:         uc.LocalAddr().String(),
		writeTimeout: writeTimeout,
		sessions:     make(map[uint64]*dgramSession),
		tokens:       rng.New(seed).SplitNamed("fog-dgram-tokens"),
	}
	dg.wg.Add(1)
	go dg.readLoop()
	return dg, nil
}

func (dg *fogDatagram) close() {
	dg.pc.Close()
	dg.wg.Wait()
}

// readLoop is the fog's only datagram reader: it registers hellos and
// drops everything else. Payload bytes past the header are ignored, so
// the receive buffer is reused for every datagram.
func (dg *fogDatagram) readLoop() {
	defer dg.wg.Done()
	buf := make([]byte, transport.MaxDatagram)
	var hdr transport.Header
	for {
		//lint:ignore conndeadline the read must block indefinitely: hellos arrive whenever a player upgrades, and close unblocks it
		n, src, err := dg.pc.ReadFromUDPAddrPort(buf)
		if err != nil {
			return // socket closed
		}
		if _, perr := transport.ParseHeader(buf[:n], &hdr); perr != nil || hdr.Kind != transport.DgramHello {
			dg.unknown.Add(1)
			continue
		}
		dg.mu.Lock()
		sess := dg.sessions[hdr.Token]
		dg.mu.Unlock()
		if sess == nil || hdr.Epoch != sess.epoch {
			dg.unknown.Add(1)
			continue
		}
		dg.hellos.Add(1)
		sess.setRemote(src, dg)
	}
}

// newSession registers a datagram session and returns the accepting
// reply. The session is inert until the player's hello arrives.
func (dg *fogDatagram) newSession(epoch uint64) (protocol.DatagramReply, *dgramSession) {
	dg.mu.Lock()
	tok := uint64(dg.tokens.Int63())
	for tok == 0 || dg.sessions[tok] != nil {
		tok = uint64(dg.tokens.Int63())
	}
	sess := &dgramSession{dg: dg, token: tok, epoch: epoch}
	dg.sessions[tok] = sess
	dg.mu.Unlock()
	return protocol.DatagramReply{
		OK:    true,
		Addr:  dg.addr,
		Token: tok,
		Epoch: epoch,
	}, sess
}

func (dg *fogDatagram) drop(sess *dgramSession) {
	if sess == nil {
		return
	}
	dg.mu.Lock()
	delete(dg.sessions, sess.token)
	dg.mu.Unlock()
}

// dgramSession is one player's datagram video state, owned by that
// player's video-session goroutine except for the remote address, which
// the shared read loop sets when the hello arrives.
type dgramSession struct {
	dg    *fogDatagram
	token uint64
	epoch uint64
	seq   uint64 // per-frame sequence; touched only by the frame loop

	mu    sync.Mutex
	raddr netip.AddrPort // guarded by mu
	ready bool           // guarded by mu
}

// setRemote records the player's hello source address. Only the first
// hello flips the session live (counted once); repeats refresh the
// address, which follows the player across a NAT rebinding.
func (s *dgramSession) setRemote(addr netip.AddrPort, dg *fogDatagram) {
	s.mu.Lock()
	first := !s.ready
	s.raddr = addr
	s.ready = true
	s.mu.Unlock()
	if first {
		dg.sessOpen.Add(1)
	}
}

// remote returns the player's datagram address once the hello arrived.
func (s *dgramSession) remote() (netip.AddrPort, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.raddr, s.ready
}

// sendFrame encodes one video frame into buf (per-frame header plus the
// same EncodedFrame payload the TCP path carries) and sends it as a
// single datagram. It reports whether the frame went out over UDP; false
// (no hello yet, frame too large for a datagram, or a socket error)
// means the caller must fall back to the TCP write for this frame. buf
// is the session's pooled scratch: with enough capacity the whole path
// is allocation-free.
//
//cfg:allocfree
func (s *dgramSession) sendFrame(buf []byte, ef *videocodec.EncodedFrame, tick uint64) ([]byte, bool) {
	addr, ok := s.remote()
	if !ok {
		return buf, false
	}
	hdr := transport.Header{
		Kind:  transport.DgramFrame,
		Token: s.token,
		Epoch: s.epoch,
		Seq:   s.seq,
		Tick:  tick,
	}
	buf = hdr.AppendTo(buf[:0])
	buf = ef.AppendTo(buf)
	if len(buf) > transport.MaxDatagram {
		// A frame too large for one datagram rides the reliable stream;
		// the sequence number is not consumed, so the receiver sees no
		// artificial gap.
		return buf, false
	}
	s.seq++
	if s.dg.writeTimeout > 0 {
		s.dg.pc.SetWriteDeadline(time.Now().Add(s.dg.writeTimeout))
	}
	if _, err := s.dg.pc.WriteToUDPAddrPort(buf, addr); err != nil {
		return buf, false
	}
	s.dg.frames.Add(1)
	return buf, true
}

// offerDatagram implements dgramOffer for the fog node: refuse when the
// UDP path is disabled, otherwise register a session under the epoch of
// the cloud currently followed.
func (f *FogNode) offerDatagram() (protocol.DatagramReply, *dgramSession) {
	if f.dgram == nil {
		//lint:ignore epochstamp refusal reply: OK=false carries no orderable state, the player stays on the TCP stream
		return protocol.DatagramReply{Reason: "datagram video disabled"}, nil
	}
	return f.dgram.newSession(f.currentEpoch())
}

// endDatagram implements dgramOffer.
func (f *FogNode) endDatagram(s *dgramSession) {
	if f.dgram != nil {
		f.dgram.drop(s)
	}
}

// currentEpoch reports the authority epoch of the cloud currently
// followed — stamped into datagram offers so a receiver can discard
// frames from a pre-failover session wholesale.
func (f *FogNode) currentEpoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}
