package fognet

import (
	"fmt"
	"testing"

	"cloudfog/internal/protocol"
	"cloudfog/internal/rng"
	"cloudfog/internal/selection"
)

// BenchmarkCandidateLadder measures the player-side ladder build: overlaying
// measured RTTs, the L_max filter, and the §3.2 policy ranking over a
// cloud-provided candidate list. This runs on every migration attempt, so it
// must stay cheap even with a large fog deployment.
func BenchmarkCandidateLadder(b *testing.B) {
	const n = 64
	cands := make([]protocol.CandidateInfo, n)
	rtts := make(map[string]float64, n/2)
	for i := range cands {
		addr := fmt.Sprintf("10.0.%d.%d:9000", i/8, i%8)
		cands[i] = protocol.CandidateInfo{
			Addr:          addr,
			Load:          uint16(i % 5),
			Capacity:      4,
			MeasuredRTTMs: -1,
			Score:         float64(i%10) / 10,
		}
		if i%2 == 0 {
			rtts[addr] = float64(10 + i*3)
		}
	}
	r := rng.New(1).SplitNamed("ladder-rank")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ladder := buildLadder(cands, rtts, selection.PolicyReputation, 120, "cloud:1", r)
		if len(ladder) == 0 {
			b.Fatal("empty ladder")
		}
	}
}
