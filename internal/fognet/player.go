package fognet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"cloudfog/internal/adaptation"
	"cloudfog/internal/game"
	"cloudfog/internal/protocol"
	"cloudfog/internal/render"
	"cloudfog/internal/rng"
	"cloudfog/internal/selection"
	"cloudfog/internal/transport"
	"cloudfog/internal/videocodec"
	"cloudfog/internal/virtualworld"
)

// DefaultVideoReadTimeout is how long the player waits for the next video
// message before declaring the stream stalled and migrating (§3.2.2: the
// serving supernode may have silently vanished).
const DefaultVideoReadTimeout = 2 * time.Second

// migrateAttempts bounds how many times the failover ladder is retried
// (with jittered backoff) before the player gives up.
const migrateAttempts = 5

// DefaultQoEInterval is how often the player reports a healthy serving
// supernode to the cloud's reputation book.
const DefaultQoEInterval = 5 * time.Second

// rttEWMAAlpha is the weight of the newest probe round-trip in the
// player's per-address RTT estimate.
const rttEWMAAlpha = 0.5

// PlayerConfig parameterizes a PlayerClient.
type PlayerConfig struct {
	// PlayerID identifies the player.
	PlayerID int32
	// CloudAddr is the cloud server for admission and inputs.
	CloudAddr string
	// Game selects the title (Table 2 catalog); its default quality level
	// starts the session.
	Game game.Game
	// ActionInterval is how often the client sends an input. Defaults to
	// 100 ms.
	ActionInterval time.Duration
	// Adapt enables the receiver-driven rate adaptation of §3.3.
	Adapt bool
	// Seed drives the client's synthetic input generator and its
	// migration backoff jitter.
	Seed uint64
	// DialTimeout bounds every dial and attach handshake. Defaults to
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// VideoReadTimeout is the stall detector: the longest silence
	// tolerated on the video stream before failing over. Defaults to
	// DefaultVideoReadTimeout.
	VideoReadTimeout time.Duration
	// WriteTimeout bounds protocol writes. Defaults to
	// DefaultWriteTimeout.
	WriteTimeout time.Duration
	// Dial, when set, replaces net.DialTimeout — the faultnet injection
	// point for chaos tests.
	Dial DialFunc
	// Datagram requests the unreliable UDP video path after every attach
	// to a supernode: frames arrive as datagrams with stale-frame drop
	// while the TCP session keeps carrying control (rate changes,
	// rerouted actions, bye). TCP remains the fallback — a refusal or a
	// failed hello handshake leaves the session streaming exactly as
	// before. The cloud's own stream is never upgraded.
	Datagram bool
	// WrapDatagram, when set, wraps the player's UDP socket — the
	// faultnet injection point for lossy-path chaos tests.
	WrapDatagram transport.WrapDatagramFunc
	// Policy ranks the failover ladder locally (§3.2 via
	// internal/selection), using the cloud's per-candidate scores plus
	// the player's own measured RTTs. Defaults to
	// selection.PolicyReputation.
	Policy selection.Policy
	// MaxCandidateRTTMs drops candidates whose measured round-trip
	// exceeds this bound (the L_max delay filter of §3.2, expressed as an
	// RTT). Zero disables the filter; unmeasured candidates always pass.
	MaxCandidateRTTMs float64
	// QoEInterval is how often a healthy serving supernode is reported to
	// the cloud. Zero means DefaultQoEInterval; negative disables
	// reporting entirely.
	QoEInterval time.Duration
}

// maxPendingActions bounds the player's local outage buffer: inputs
// that could reach neither the cloud nor the serving supernode wait
// here for the control-plane resume.
const maxPendingActions = 256

// PlayerClient is a thin client: it sends inputs to the cloud and receives
// a video stream from a supernode.
type PlayerClient struct {
	cfg PlayerConfig
	// tc/tp are the transport seam: every dial, handshake deadline, and
	// write bound the client applies flows from this one policy.
	tc transport.Config
	tp transport.TCP

	mu         sync.Mutex
	video      net.Conn
	frames     int64
	videoBits  int64
	decodeErrs int64
	lastTick   uint64
	level      game.QualityLevel
	switches   int
	migrations int
	fallbacks  int
	stallMs    int64
	candUpd    int64

	// The datagram video path. videoDgram is the live UDP socket (nil
	// while streaming over TCP) so Close can unblock its reader; the dg*
	// counters account delivered, dropped, and reclassified datagrams,
	// and lossEWMA smooths the per-window loss fraction into the QoE
	// rating the action loop reports.
	videoDgram  transport.DatagramConn // guarded by mu
	dgSessions  int64                  // guarded by mu
	dgFrames    int64                  // guarded by mu
	dgStale     int64                  // guarded by mu
	dgDups      int64                  // guarded by mu
	dgLost      int64                  // guarded by mu
	dgReordered int64                  // guarded by mu
	dgFallbacks int64                  // guarded by mu
	lossEWMA    float64                // guarded by mu

	// The failover view of the control plane: the authority epoch, the
	// control address currently spoken to, and the advertised standby.
	// A broken control link resumes ctrlAddr → standbyAddr with the
	// epoch-stamped MsgResume handshake.
	epoch       uint64 // guarded by mu
	ctrlAddr    string // guarded by mu
	standbyAddr string // guarded by mu
	// pendingActs buffers inputs that could reach neither the cloud nor
	// the serving supernode, flushed (or discarded, on an epoch
	// regression) after the control-plane resume. Guarded by mu.
	pendingActs  []virtualworld.Action
	ctrlResumes  int64 // guarded by mu
	bufferedActs int64 // guarded by mu
	reroutedActs int64 // guarded by mu
	droppedActs  int64 // guarded by mu
	discardedAct int64 // guarded by mu

	// candidates is the cloud-provided ladder — addresses plus load,
	// capacity, and reputation score — kept fresh by MsgCandidateUpdate
	// pushes, for the migration of §3.2.2: when the serving supernode
	// fails, the player walks the ladder candidates → cloud fallback
	// before giving up. rttMs overlays the player's own probe
	// measurements (EWMA per address), which outrank the cloud's view of
	// network distance when ranking.
	candidates  []protocol.CandidateInfo // guarded by mu
	rttMs       map[string]float64       // guarded by mu
	cloudAddr   string                   // the cloud's own stream endpoint (ladder tail)
	servingAddr string                   // the address currently streaming video
	qoeReports  int64

	jitter *rng.Rand // migration backoff jitter; guarded by mu
	rank   *rng.Rand // ladder tie-break shuffle; guarded by mu

	// cloudMu serializes writes on the cloud control connection, which
	// carries QoE reports alongside the action stream — and guards the
	// connection itself, which a control-plane resume swaps.
	cloudMu sync.Mutex
	cloud   net.Conn // guarded by cloudMu

	// videoWMu serializes writes on the video connection: rate changes
	// from the video loop and rerouted actions from the action loop.
	videoWMu sync.Mutex

	ctrl *adaptation.Controller

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewPlayerClient joins the game: it registers with the cloud, probes the
// candidate supernodes in order, and attaches to the first with capacity
// (the sequential capacity probing of §3.2.2), falling back to the cloud's
// own stream when no supernode accepts. If the serving supernode later
// fails — connection error or a stream silent past VideoReadTimeout — the
// client walks the failover ladder automatically.
func NewPlayerClient(cfg PlayerConfig) (*PlayerClient, error) {
	if cfg.ActionInterval <= 0 {
		cfg.ActionInterval = 100 * time.Millisecond
	}
	if cfg.Game.ID == 0 {
		cfg.Game = game.Catalog()[2]
	}
	tc := transport.Config{
		DialTimeout:  cfg.DialTimeout,
		WriteTimeout: cfg.WriteTimeout,
	}.WithDefaults()
	cfg.DialTimeout = tc.DialTimeout
	cfg.WriteTimeout = tc.WriteTimeout
	if cfg.VideoReadTimeout <= 0 {
		cfg.VideoReadTimeout = DefaultVideoReadTimeout
	}
	if cfg.Policy == 0 {
		cfg.Policy = selection.PolicyReputation
	}
	if cfg.QoEInterval == 0 {
		cfg.QoEInterval = DefaultQoEInterval
	}
	tp := transport.TCP{Config: tc, DialFunc: cfg.Dial}
	cloud, err := tp.Dial(cfg.CloudAddr)
	if err != nil {
		return nil, fmt.Errorf("player dial cloud: %w", err)
	}
	r := rng.New(cfg.Seed + uint64(cfg.PlayerID))
	p := &PlayerClient{
		cfg:    cfg,
		tc:     tc,
		tp:     tp,
		cloud:  cloud,
		level:  cfg.Game.DefaultQuality,
		rttMs:  make(map[string]float64),
		stop:   make(chan struct{}),
		jitter: r.SplitNamed("migrate-jitter"),
		rank:   r.SplitNamed("ladder-rank"),
	}
	join := protocol.PlayerJoin{
		PlayerID: cfg.PlayerID,
		GameID:   uint8(cfg.Game.ID),
		SpawnX:   r.Uniform(50, 400),
		SpawnY:   r.Uniform(50, 400),
	}
	cloud.SetDeadline(time.Now().Add(tc.HandshakeTimeout))
	if err := protocol.WriteMessage(cloud, protocol.MsgPlayerJoin, join.Marshal()); err != nil {
		cloud.Close()
		return nil, fmt.Errorf("player join: %w", err)
	}
	typ, payload, err := protocol.ReadMessage(cloud)
	if err != nil || typ != protocol.MsgJoinReply {
		cloud.Close()
		return nil, fmt.Errorf("player join reply: %v %w", typ, err)
	}
	cloud.SetDeadline(time.Time{})
	reply, err := protocol.UnmarshalJoinReply(payload)
	if err != nil || !reply.OK {
		cloud.Close()
		return nil, fmt.Errorf("player join rejected: %s %w", reply.Reason, err)
	}

	p.mu.Lock()
	p.candidates = reply.Candidates
	p.cloudAddr = reply.CloudStreamAddr
	p.epoch = reply.Epoch
	p.ctrlAddr = cfg.CloudAddr
	p.standbyAddr = reply.StandbyAddr
	p.mu.Unlock()
	video, err := p.attachToAny(p.ladder())
	if err != nil {
		cloud.Close()
		return nil, err
	}
	p.video = video
	if cfg.Adapt {
		p.ctrl = adaptation.NewController(adaptation.Config{
			Rho:      cfg.Game.ToleranceDegree,
			MaxLevel: cfg.Game.DefaultQuality,
			Debounce: 2,
		}, cfg.Game.DefaultQuality)
	}

	p.wg.Add(3)
	go p.actionLoop(r)
	go p.cloudLoop()
	go p.videoLoop()
	return p, nil
}

// ladder returns the current failover ladder: candidate supernodes ranked
// by the shared §3.2 pipeline, the cloud's own stream endpoint last (§3.2:
// players that cannot find nearby supernodes connect directly to the
// cloud).
func (p *PlayerClient) ladder() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return buildLadder(p.candidates, p.rttMs, p.cfg.Policy,
		p.cfg.MaxCandidateRTTMs, p.cloudAddr, p.rank)
}

// buildLadder ranks the cloud-provided candidates into a dial order. The
// player's own measured RTT for an address overrides the cloud's estimate
// (the cloud cannot ping on the player's behalf), maxRTTMs applies the
// L_max delay filter of §3.2, and the ranking policy orders the rest by
// availability and score — replacing the list-position order players used
// before. Pure so it can be tested and benchmarked without a live client.
func buildLadder(cands []protocol.CandidateInfo, rtts map[string]float64,
	policy selection.Policy, maxRTTMs float64, cloudAddr string, r *rng.Rand) []string {
	sel := make([]selection.Candidate, len(cands))
	for i, c := range cands {
		rtt := c.MeasuredRTTMs
		if m, ok := rtts[c.Addr]; ok {
			rtt = m
		}
		sel[i] = selection.Candidate{
			ID:       i,
			Addr:     c.Addr,
			Load:     int(c.Load),
			Capacity: int(c.Capacity),
			RTTMs:    rtt,
			Score:    c.Score,
		}
	}
	if maxRTTMs > 0 {
		sel = selection.FilterByDelay(sel, maxRTTMs/2)
	}
	ranker := selection.PolicyRanker{Policy: policy} // nil Scorer: cloud scores stand
	ranker.Rank(sel, 0, r)
	out := make([]string, 0, len(sel)+1)
	for _, c := range sel {
		out = append(out, c.Addr)
	}
	if cloudAddr != "" {
		out = append(out, cloudAddr)
	}
	return out
}

// noteRTT folds a fresh probe round-trip into the per-address EWMA.
func (p *PlayerClient) noteRTT(addr string, ms float64) {
	p.mu.Lock()
	if old, ok := p.rttMs[addr]; ok {
		ms = rttEWMAAlpha*ms + (1-rttEWMAAlpha)*old
	}
	p.rttMs[addr] = ms
	p.mu.Unlock()
}

// attachToAny probes the candidate supernodes in order and attaches to the
// first that accepts. The whole per-candidate handshake runs under a
// deadline so a hung supernode costs at most the dial timeout plus the
// handshake timeout.
func (p *PlayerClient) attachToAny(addrs []string) (net.Conn, error) {
	for _, addr := range addrs {
		conn, err := p.tp.Dial(addr)
		if err != nil {
			continue
		}
		conn.SetDeadline(time.Now().Add(p.tc.HandshakeTimeout))
		// Probe for capacity first; the probe round-trip doubles as the
		// player's RTT measurement for ladder ranking.
		probeSent := time.Now()
		if err := protocol.WriteMessage(conn, protocol.MsgProbe, nil); err != nil {
			conn.Close()
			continue
		}
		typ, payload, err := protocol.ReadMessage(conn)
		if err != nil || typ != protocol.MsgProbeReply {
			conn.Close()
			continue
		}
		p.noteRTT(addr, float64(time.Since(probeSent).Microseconds())/1000)
		probe, err := protocol.UnmarshalProbeReply(payload)
		if err != nil || probe.Available <= 0 {
			conn.Close()
			continue
		}
		attach := protocol.PlayerAttach{
			PlayerID:     p.cfg.PlayerID,
			QualityLevel: uint8(p.level),
		}
		if err := protocol.WriteMessage(conn, protocol.MsgPlayerAttach, attach.Marshal()); err != nil {
			conn.Close()
			continue
		}
		typ, payload, err = protocol.ReadMessage(conn)
		if err != nil || typ != protocol.MsgAttachReply {
			conn.Close()
			continue
		}
		ack, err := protocol.UnmarshalAttachReply(payload)
		if err != nil || !ack.OK {
			conn.Close()
			continue
		}
		p.mu.Lock()
		isCloud := addr == p.cloudAddr
		p.mu.Unlock()
		if p.cfg.Datagram && !isCloud {
			// Ask for the UDP video path; the reply arrives on the
			// stream and the video loop completes (or abandons) the
			// upgrade. Frames keep flowing over TCP until the hello
			// lands, so a refusal costs nothing.
			req := protocol.DatagramRequest{PlayerID: p.cfg.PlayerID}
			if protocol.WriteMessage(conn, protocol.MsgDatagramRequest, req.Marshal()) != nil {
				conn.Close()
				continue
			}
		}
		conn.SetDeadline(time.Time{})
		p.mu.Lock()
		if isCloud {
			p.fallbacks++
		}
		p.servingAddr = addr
		p.mu.Unlock()
		return conn, nil
	}
	return nil, fmt.Errorf("fognet: no supernode accepted player %d (candidates: %d)",
		p.cfg.PlayerID, len(addrs))
}

// Close leaves the game and waits for the client's goroutines.
func (p *PlayerClient) Close() error {
	select {
	case <-p.stop:
		return nil
	default:
	}
	close(p.stop)
	// Best-effort goodbyes; the connections close regardless.
	p.mu.Lock()
	video := p.video
	dgram := p.videoDgram
	p.mu.Unlock()
	if dgram != nil {
		dgram.Close() // unblock the datagram receive loop
	}
	p.cloudMu.Lock()
	cloud := p.cloud
	cloud.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
	protocol.WriteMessage(cloud, protocol.MsgBye, nil)
	p.cloudMu.Unlock()
	if video != nil {
		p.videoWMu.Lock()
		video.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
		protocol.WriteMessage(video, protocol.MsgBye, nil)
		p.videoWMu.Unlock()
		video.Close()
	}
	cloud.Close()
	p.wg.Wait()
	return nil
}

// PlayerStats reports client-side counters.
type PlayerStats struct {
	// Frames is the number of decoded video frames.
	Frames int64
	// VideoBits is the received video volume.
	VideoBits int64
	// DecodeErrors counts undecodable frames.
	DecodeErrors int64
	// LastTick is the newest world tick seen in the video.
	LastTick uint64
	// Level is the current quality level.
	Level game.QualityLevel
	// RateSwitches counts receiver-driven level changes.
	RateSwitches int
	// Migrations counts reconnections to a new supernode after failures.
	Migrations int
	// FallbackTransitions counts attaches that landed on the cloud's own
	// stream — the expensive last rung of the ladder.
	FallbackTransitions int
	// StallMs is the cumulative time the video stream was down across
	// failures, from detection to resumption.
	StallMs int64
	// CandidateUpdates counts failover-ladder refreshes received from
	// the cloud.
	CandidateUpdates int64
	// QoEReports counts ratings this player sent to the cloud's
	// reputation book.
	QoEReports int64
	// Epoch is the authority epoch of the cloud currently spoken to; a
	// jump means the session survived a failover.
	Epoch uint64
	// CtrlResumes counts control-plane resumes (MsgResume re-admissions
	// after the cloud link broke).
	CtrlResumes int64
	// BufferedActions / ReroutedActions / DroppedActions / DiscardedActions
	// account the outage-window input path: held locally, rerouted via
	// the serving supernode, dropped at the bounded buffer, or discarded
	// on resume because the restored world never saw their ticks.
	BufferedActions  int64
	ReroutedActions  int64
	DroppedActions   int64
	DiscardedActions int64
	// DatagramSessions counts completed UDP upgrades (hello acknowledged
	// by a first frame); DatagramFrames is the subset of Frames that
	// arrived as datagrams.
	DatagramSessions int64
	DatagramFrames   int64
	// DatagramStale / DatagramDuplicates / DatagramLost /
	// DatagramReordered account the unreliable path's discipline: late
	// arrivals dropped at the receiver (never delivered out of order),
	// duplicates dropped, gaps never filled, and gaps that were filled
	// late (reclassified from lost, still dropped).
	DatagramStale      int64
	DatagramDuplicates int64
	DatagramLost       int64
	DatagramReordered  int64
	// DatagramFallbacks counts upgrade attempts that ended back on TCP:
	// refusals from the serving node and hello handshakes that never
	// completed.
	DatagramFallbacks int64
	// LossEWMA is the smoothed datagram loss fraction feeding the QoE
	// rating (zero while streaming over TCP).
	LossEWMA float64
}

// Stats snapshots the counters.
func (p *PlayerClient) Stats() PlayerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PlayerStats{
		Frames:              p.frames,
		VideoBits:           p.videoBits,
		DecodeErrors:        p.decodeErrs,
		LastTick:            p.lastTick,
		Level:               p.level,
		RateSwitches:        p.switches,
		Migrations:          p.migrations,
		FallbackTransitions: p.fallbacks,
		StallMs:             p.stallMs,
		CandidateUpdates:    p.candUpd,
		QoEReports:          p.qoeReports,
		Epoch:               p.epoch,
		CtrlResumes:         p.ctrlResumes,
		BufferedActions:     p.bufferedActs,
		ReroutedActions:     p.reroutedActs,
		DroppedActions:      p.droppedActs,
		DiscardedActions:    p.discardedAct,
		DatagramSessions:    p.dgSessions,
		DatagramFrames:      p.dgFrames,
		DatagramStale:       p.dgStale,
		DatagramDuplicates:  p.dgDups,
		DatagramLost:        p.dgLost,
		DatagramReordered:   p.dgReordered,
		DatagramFallbacks:   p.dgFallbacks,
		LossEWMA:            p.lossEWMA,
	}
}

// reportQoE sends one rating for addr over the control connection,
// best-effort: a broken cloud link surfaces in the loops that own it.
func (p *PlayerClient) reportQoE(addr string, rating float64, stalled, fallback bool) {
	rep := protocol.QoEReport{
		PlayerID: p.cfg.PlayerID,
		Addr:     addr,
		Rating:   rating,
		Stalled:  stalled,
		Fallback: fallback,
	}
	p.cloudMu.Lock()
	p.cloud.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
	err := protocol.WriteMessage(p.cloud, protocol.MsgQoEReport, rep.Marshal())
	p.cloud.SetWriteDeadline(time.Time{})
	p.cloudMu.Unlock()
	if err == nil {
		p.mu.Lock()
		p.qoeReports++
		p.mu.Unlock()
	}
}

// actionLoop streams synthetic inputs to the cloud (the player wanders
// between random waypoints) and, on a slower ticker, reports the serving
// supernode healthy — the positive half of the reputation feedback loop;
// migrate sends the negative half.
func (p *PlayerClient) actionLoop(r *rng.Rand) {
	defer p.wg.Done()
	var actBuf []byte
	ticker := time.NewTicker(p.cfg.ActionInterval)
	defer ticker.Stop()
	var qoeC <-chan time.Time
	if p.cfg.QoEInterval > 0 {
		qoeTicker := time.NewTicker(p.cfg.QoEInterval)
		defer qoeTicker.Stop()
		qoeC = qoeTicker.C
	}
	tx, ty := r.Uniform(0, 400), r.Uniform(0, 400)
	for {
		select {
		case <-p.stop:
			return
		case <-qoeC:
			p.mu.Lock()
			addr := p.servingAddr
			isCloud := addr == p.cloudAddr
			// Datagram loss degrades the reported experience: a supernode
			// behind a lossy path earns less reputation than a clean one.
			rating := 1 - p.lossEWMA
			p.mu.Unlock()
			if rating < 0 {
				rating = 0
			}
			if addr != "" && !isCloud {
				p.reportQoE(addr, rating, false, false)
			}
		case <-ticker.C:
			if r.Bool(0.1) {
				tx, ty = r.Uniform(0, 400), r.Uniform(0, 400)
			}
			msg := protocol.ActionMsg{Action: virtualworld.Action{
				Player: int(p.cfg.PlayerID), Kind: virtualworld.ActMove,
				TargetX: tx, TargetY: ty,
			}}
			// Frame into the loop-owned scratch buffer and flush with a
			// single Write: the 10 Hz input stream allocates nothing.
			var aerr error
			actBuf, aerr = protocol.AppendMessage(actBuf[:0], protocol.MsgAction, &msg)
			if aerr != nil {
				return
			}
			p.cloudMu.Lock()
			conn := p.cloud
			conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
			_, err := conn.Write(actBuf)
			p.cloudMu.Unlock()
			if err != nil {
				// Cloud control link down: reroute the input through the
				// serving supernode (which forwards or buffers it) or
				// hold it locally until the control-plane resume. The
				// loop keeps running — the link is cloudLoop's to heal.
				p.rerouteAction(actBuf, msg.Action)
			}
		}
	}
}

// cloudLoop receives the cloud's pushes on the control connection —
// candidate-ladder refreshes and standby-address updates — and owns
// healing that connection: when it breaks (crash or graceful Bye), the
// loop resumes the session on the failover ladder and flushes any
// inputs buffered through the outage.
func (p *PlayerClient) cloudLoop() {
	defer p.wg.Done()
	p.cloudMu.Lock()
	conn := p.cloud
	p.cloudMu.Unlock()
	for {
		fr := protocol.NewFrameReader(conn)
	readLoop:
		for {
			typ, payload, err := fr.Next()
			if err != nil {
				break readLoop // cloud gone or Close()
			}
			switch typ {
			case protocol.MsgCandidateUpdate:
				upd, uerr := protocol.UnmarshalCandidateUpdate(payload)
				if uerr != nil {
					continue
				}
				p.mu.Lock()
				p.candidates = upd.Candidates
				if upd.CloudStreamAddr != "" {
					p.cloudAddr = upd.CloudStreamAddr
				}
				p.standbyAddr = upd.StandbyAddr
				p.candUpd++
				p.mu.Unlock()
			case protocol.MsgBye:
				// Graceful cloud shutdown: head straight into the resume
				// ladder; the standby is about to take over.
				break readLoop
			}
		}
		next, ok := p.resumeCtrl()
		if !ok {
			return
		}
		conn = next
	}
}

// resumeCtrl re-establishes the control session after the cloud link
// broke, walking the ladder ctrlAddr → standbyAddr with jittered,
// capped backoff and the epoch-stamped MsgResume handshake. On success
// the avatar continues where the recovered authority has it — no
// rejoin, no respawn — and locally buffered inputs are flushed (or
// discarded when the reply says the client's history ran ahead of the
// restored world). It reports false when the client is closing or every
// attempt was refused.
func (p *PlayerClient) resumeCtrl() (net.Conn, bool) {
	backoff := DefaultMigrateBackoff
	for attempt := 0; attempt < migrateAttempts; attempt++ {
		select {
		case <-p.stop:
			return nil, false
		default:
		}
		p.mu.Lock()
		ladder := []string{p.ctrlAddr}
		if p.standbyAddr != "" && p.standbyAddr != p.ctrlAddr {
			ladder = append(ladder, p.standbyAddr)
		}
		req := protocol.Resume{
			Kind:     protocol.ResumePlayer,
			PlayerID: p.cfg.PlayerID,
			Epoch:    p.epoch,
			Tick:     p.lastTick,
		}
		p.mu.Unlock()
		for _, addr := range ladder {
			conn, reply, err := p.dialResume(addr, req)
			if err != nil {
				continue
			}
			p.cloudMu.Lock()
			old := p.cloud
			p.cloud = conn
			p.cloudMu.Unlock()
			if old != nil {
				old.Close()
			}
			p.mu.Lock()
			p.epoch = reply.Epoch
			p.ctrlAddr = addr
			p.standbyAddr = reply.StandbyAddr
			if len(reply.Candidates) > 0 {
				p.candidates = reply.Candidates
			}
			if reply.CloudStreamAddr != "" {
				p.cloudAddr = reply.CloudStreamAddr
			}
			p.ctrlResumes++
			var flush []virtualworld.Action
			if reply.Discard {
				// The inputs were aimed at ticks the crashed primary
				// never durably committed; replaying them against the
				// rewound world would double-apply intent.
				p.discardedAct += int64(len(p.pendingActs))
			} else {
				flush = append(flush, p.pendingActs...)
			}
			p.pendingActs = p.pendingActs[:0]
			p.mu.Unlock()
			p.flushPending(conn, flush)
			return conn, true
		}
		p.mu.Lock()
		sleep, next := nextBackoff(p.jitter, backoff, DefaultMigrateBackoffMax)
		p.mu.Unlock()
		backoff = next
		t := time.NewTimer(sleep)
		select {
		case <-p.stop:
			t.Stop()
			return nil, false
		case <-t.C:
		}
	}
	return nil, false
}

// dialResume performs one resume handshake under deadlines.
func (p *PlayerClient) dialResume(addr string, req protocol.Resume) (net.Conn, protocol.ResumeReply, error) {
	var zero protocol.ResumeReply
	conn, err := p.tp.Dial(addr)
	if err != nil {
		return nil, zero, err
	}
	conn.SetDeadline(time.Now().Add(p.tc.HandshakeTimeout))
	if werr := protocol.WriteMessage(conn, protocol.MsgResume, req.Marshal()); werr != nil {
		conn.Close()
		return nil, zero, werr
	}
	typ, payload, rerr := protocol.ReadMessage(conn)
	if rerr != nil || typ != protocol.MsgResumeReply {
		conn.Close()
		return nil, zero, fmt.Errorf("player resume reply: %v %w", typ, rerr)
	}
	reply, derr := protocol.UnmarshalResumeReply(payload)
	if derr != nil || !reply.OK {
		conn.Close()
		return nil, zero, fmt.Errorf("player resume rejected: %s %w", reply.Reason, derr)
	}
	conn.SetDeadline(time.Time{})
	return conn, reply, nil
}

// flushPending replays outage-buffered inputs on the resumed control
// connection, oldest first.
func (p *PlayerClient) flushPending(conn net.Conn, acts []virtualworld.Action) {
	var buf []byte
	for i := range acts {
		msg := protocol.ActionMsg{Action: acts[i]}
		var err error
		buf, err = protocol.AppendMessage(buf[:0], protocol.MsgAction, &msg)
		if err != nil {
			return
		}
		p.cloudMu.Lock()
		conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
		_, werr := conn.Write(buf)
		conn.SetWriteDeadline(time.Time{})
		p.cloudMu.Unlock()
		if werr != nil {
			return // the read side will observe the dead conn
		}
	}
}

// rerouteAction handles an input the cloud write refused: first try the
// serving supernode over the video session (frame is the already-framed
// MsgAction; the fog forwards or buffers it), then fall back to the
// local pending buffer, bounded so an extended outage cannot grow
// memory without limit.
func (p *PlayerClient) rerouteAction(frame []byte, a virtualworld.Action) {
	p.mu.Lock()
	video := p.video
	isCloudStream := p.servingAddr == p.cloudAddr
	p.mu.Unlock()
	// A cloud-fallback video session dies with the cloud; don't bother.
	if video != nil && !isCloudStream {
		p.videoWMu.Lock()
		video.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
		_, err := video.Write(frame)
		video.SetWriteDeadline(time.Time{})
		p.videoWMu.Unlock()
		if err == nil {
			p.mu.Lock()
			p.reroutedActs++
			p.mu.Unlock()
			return
		}
	}
	p.mu.Lock()
	if len(p.pendingActs) >= maxPendingActions {
		p.droppedActs++
	} else {
		p.pendingActs = append(p.pendingActs, a)
		p.bufferedActs++
	}
	p.mu.Unlock()
}

// videoRecvState is the per-stream decode and adaptation state shared by
// the TCP receive loop and the datagram receive loop: the decoder (and
// its reference frame), the reused EncodedFrame and output frame, the
// rate-change scratch buffer, and the adaptation window accumulators.
// One stream, one state — the datagram path continues the TCP path's
// window rather than starting its own.
type videoRecvState struct {
	dec         videocodec.Decoder
	ef          videocodec.EncodedFrame
	frame       render.Frame
	rcBuf       []byte
	start       time.Time
	windowBits  int64
	windowStart time.Time
}

// decodeFrame decodes one received frame payload (the wire form of
// MsgVideoFrame, which is also the datagram payload) into the shared
// state and accounts it. viaDgram marks frames that arrived on the
// unreliable path.
func (p *PlayerClient) decodeFrame(st *videoRecvState, payload []byte, viaDgram bool) {
	if uerr := videocodec.UnmarshalFrameInto(payload, &st.ef); uerr != nil {
		p.mu.Lock()
		p.decodeErrs++
		p.mu.Unlock()
		return
	}
	derr := st.dec.DecodeInto(&st.ef, &st.frame)
	p.mu.Lock()
	if derr != nil {
		p.decodeErrs++
	} else {
		p.frames++
		p.videoBits += int64(st.ef.SizeBits())
		if viaDgram {
			p.dgFrames++
		}
		if st.frame.Tick > p.lastTick {
			p.lastTick = st.frame.Tick
		}
	}
	p.mu.Unlock()
	st.windowBits += int64(st.ef.SizeBits())
}

// maybeAdapt runs the receiver-driven adaptation on ~250 ms windows: the
// observed delivery rate feeds the buffer model, and level switches go
// back to the supernode as RateChange on the session's TCP connection
// (reliable even when frames ride UDP). lossFn, when non-nil, reports
// the window's datagram loss fraction — it both biases the controller
// (§3.3 under loss: no up-switches, down-pressure past the threshold)
// and feeds the smoothed loss the QoE reports carry. On the TCP path
// lossFn is nil: the transport hides loss as latency, so the controller
// sees none and the EWMA decays.
func (p *PlayerClient) maybeAdapt(st *videoRecvState, conn net.Conn, lossFn func() float64) {
	if p.ctrl == nil {
		return
	}
	win := time.Since(st.windowStart)
	if win < 250*time.Millisecond {
		return
	}
	loss := 0.0
	if lossFn != nil {
		loss = lossFn()
	}
	p.ctrl.NoteLoss(loss)
	p.mu.Lock()
	p.lossEWMA = 0.5*loss + 0.5*p.lossEWMA
	p.mu.Unlock()
	kbps := float64(st.windowBits) / win.Seconds() / 1000
	now := time.Since(st.start).Seconds()
	decision := p.ctrl.Observe(now, kbps)
	st.windowBits, st.windowStart = 0, time.Now()
	if decision == adaptation.Hold {
		return
	}
	rc := protocol.RateChange{QualityLevel: uint8(p.ctrl.Level())}
	var rerr error
	st.rcBuf, rerr = protocol.AppendMessage(st.rcBuf[:0], protocol.MsgRateChange, &rc)
	if rerr != nil {
		return
	}
	p.videoWMu.Lock()
	conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
	_, werr := conn.Write(st.rcBuf)
	conn.SetWriteDeadline(time.Time{})
	p.videoWMu.Unlock()
	if werr != nil {
		return // the next read will fail over
	}
	p.mu.Lock()
	p.level = p.ctrl.Level()
	p.switches++
	p.mu.Unlock()
}

// videoLoop receives and decodes the video stream, and drives the
// receiver-driven adaptation: the observed delivery rate feeds the buffer
// model, and level switches go back to the supernode as RateChange. Every
// read carries the stall-detector deadline; a silent or broken stream
// triggers the failover ladder. A MsgDatagramReply hands the stream to
// the UDP receive loop; it hands back when the upgrade fizzles (keep
// reading the same TCP stream) or when the datagram path stalls
// (migrate, like any other failure).
//
// The 30 fps receive path is the thin client's hot loop, so it reuses
// everything: the frame reader's connection buffer, the EncodedFrame
// whose Data aliases that buffer (consumed before the next read), the
// decoder's internal reference frame, and the output frame whose pixels
// alias decoder memory. Steady state allocates nothing per frame.
func (p *PlayerClient) videoLoop() {
	defer p.wg.Done()
	st := videoRecvState{start: time.Now()}
	st.windowStart = st.start
	p.mu.Lock()
	conn := p.video
	p.mu.Unlock()
	fr := protocol.NewFrameReader(conn)
	for {
		conn.SetReadDeadline(time.Now().Add(p.cfg.VideoReadTimeout))
		typ, payload, err := fr.Next()
		if err != nil {
			// The serving supernode failed, left, or went silent:
			// migrate down the ladder (§3.2.2). No game state
			// transfers — the cloud holds it all — so the stream
			// resumes with a fresh decoder.
			next, ok := p.migrate(&st.dec)
			if !ok {
				return
			}
			conn = next
			// New connection, new stream position: rebuild the reader.
			fr = protocol.NewFrameReader(conn)
			continue
		}
		switch typ {
		case protocol.MsgVideoFrame:
			p.decodeFrame(&st, payload, false)
			p.maybeAdapt(&st, conn, nil)
		case protocol.MsgDatagramReply:
			rep, derr := protocol.UnmarshalDatagramReply(payload)
			if derr != nil || !rep.OK {
				p.mu.Lock()
				p.dgFallbacks++
				p.mu.Unlock()
				continue // refused: the TCP stream simply continues
			}
			switch p.runDatagramVideo(conn, rep, &st) {
			case dgClosed:
				return
			case dgStall:
				next, ok := p.migrate(&st.dec)
				if !ok {
					return
				}
				conn = next
				fr = protocol.NewFrameReader(conn)
			case dgNoUpgrade:
				// The hello never registered, so the fog still streams
				// over this TCP connection; keep reading it.
				p.mu.Lock()
				p.dgFallbacks++
				p.mu.Unlock()
			}
		}
	}
}

// migrate walks the failover ladder after the serving connection failed,
// retrying with jittered backoff, and returns the new connection. It
// reports false when the client is closing or the ladder stays dry. The
// downtime from detection to resumption is accounted as stall time. The
// failed supernode is reported to the cloud's reputation book (rating 0,
// stalled), and again with the fallback flag if the migration ends on the
// cloud's own stream — every escape to the expensive rung demotes whoever
// caused it.
func (p *PlayerClient) migrate(dec *videocodec.Decoder) (net.Conn, bool) {
	stallStart := time.Now()
	p.mu.Lock()
	failed := p.servingAddr
	if failed == p.cloudAddr {
		failed = "" // the cloud rates supernodes, not itself
	}
	p.mu.Unlock()
	if failed != "" {
		p.reportQoE(failed, 0, true, false)
	}
	backoff := DefaultMigrateBackoff
	for attempt := 0; attempt < migrateAttempts; attempt++ {
		select {
		case <-p.stop:
			return nil, false
		default:
		}
		conn, err := p.attachToAny(p.ladder())
		if err == nil {
			p.mu.Lock()
			old := p.video
			p.video = conn
			p.migrations++
			p.stallMs += time.Since(stallStart).Milliseconds()
			landedOnCloud := p.servingAddr == p.cloudAddr
			p.mu.Unlock()
			if landedOnCloud && failed != "" {
				p.reportQoE(failed, 0, false, true)
			}
			if old != nil {
				old.Close()
			}
			*dec = videocodec.Decoder{} // the new stream starts with an I-frame
			return conn, true
		}
		// The ladder may be mid-refresh (the cloud broadcasts after an
		// eviction); back off with deterministic jitter and retry.
		p.mu.Lock()
		sleep, next := nextBackoff(p.jitter, backoff, DefaultMigrateBackoffMax)
		p.mu.Unlock()
		backoff = next
		t := time.NewTimer(sleep)
		select {
		case <-p.stop:
			t.Stop()
			return nil, false
		case <-t.C:
		}
	}
	return nil, false
}
