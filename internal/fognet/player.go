package fognet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"cloudfog/internal/adaptation"
	"cloudfog/internal/game"
	"cloudfog/internal/protocol"
	"cloudfog/internal/rng"
	"cloudfog/internal/videocodec"
	"cloudfog/internal/virtualworld"
)

// PlayerConfig parameterizes a PlayerClient.
type PlayerConfig struct {
	// PlayerID identifies the player.
	PlayerID int32
	// CloudAddr is the cloud server for admission and inputs.
	CloudAddr string
	// Game selects the title (Table 2 catalog); its default quality level
	// starts the session.
	Game game.Game
	// ActionInterval is how often the client sends an input. Defaults to
	// 100 ms.
	ActionInterval time.Duration
	// Adapt enables the receiver-driven rate adaptation of §3.3.
	Adapt bool
	// Seed drives the client's synthetic input generator.
	Seed uint64
}

// PlayerClient is a thin client: it sends inputs to the cloud and receives
// a video stream from a supernode.
type PlayerClient struct {
	cfg   PlayerConfig
	cloud net.Conn
	video net.Conn

	mu         sync.Mutex
	frames     int64
	videoBits  int64
	decodeErrs int64
	lastTick   uint64
	level      game.QualityLevel
	switches   int
	migrations int

	// candidates is the cloud-provided supernode list, kept for the
	// migration of §3.2.2: when the serving supernode fails, the player
	// first tries its known candidates before giving up.
	candidates []string

	ctrl *adaptation.Controller

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewPlayerClient joins the game: it registers with the cloud, probes the
// candidate supernodes in order, and attaches to the first with capacity
// (the sequential capacity probing of §3.2.2), falling back to the cloud's
// own stream when no supernode accepts. If the serving supernode later
// fails, the client migrates to another candidate automatically.
func NewPlayerClient(cfg PlayerConfig) (*PlayerClient, error) {
	if cfg.ActionInterval <= 0 {
		cfg.ActionInterval = 100 * time.Millisecond
	}
	if cfg.Game.ID == 0 {
		cfg.Game = game.Catalog()[2]
	}
	cloud, err := net.Dial("tcp", cfg.CloudAddr)
	if err != nil {
		return nil, fmt.Errorf("player dial cloud: %w", err)
	}
	p := &PlayerClient{
		cfg:   cfg,
		cloud: cloud,
		level: cfg.Game.DefaultQuality,
		stop:  make(chan struct{}),
	}
	r := rng.New(cfg.Seed + uint64(cfg.PlayerID))
	join := protocol.PlayerJoin{
		PlayerID: cfg.PlayerID,
		GameID:   uint8(cfg.Game.ID),
		SpawnX:   r.Uniform(50, 400),
		SpawnY:   r.Uniform(50, 400),
	}
	if err := protocol.WriteMessage(cloud, protocol.MsgPlayerJoin, join.Marshal()); err != nil {
		cloud.Close()
		return nil, fmt.Errorf("player join: %w", err)
	}
	typ, payload, err := protocol.ReadMessage(cloud)
	if err != nil || typ != protocol.MsgJoinReply {
		cloud.Close()
		return nil, fmt.Errorf("player join reply: %v %w", typ, err)
	}
	reply, err := protocol.UnmarshalJoinReply(payload)
	if err != nil || !reply.OK {
		cloud.Close()
		return nil, fmt.Errorf("player join rejected: %s %w", reply.Reason, err)
	}

	p.candidates = reply.SupernodeAddrs
	if reply.CloudStreamAddr != "" {
		// The cloud itself is the last-resort candidate (§3.2: players
		// that cannot find nearby supernodes connect to the cloud).
		p.candidates = append(p.candidates, reply.CloudStreamAddr)
	}
	video, err := p.attachToAny(p.candidates)
	if err != nil {
		cloud.Close()
		return nil, err
	}
	p.video = video
	if cfg.Adapt {
		p.ctrl = adaptation.NewController(adaptation.Config{
			Rho:      cfg.Game.ToleranceDegree,
			MaxLevel: cfg.Game.DefaultQuality,
			Debounce: 2,
		}, cfg.Game.DefaultQuality)
	}

	p.wg.Add(2)
	go p.actionLoop(r)
	go p.videoLoop()
	return p, nil
}

// attachToAny probes the candidate supernodes in order and attaches to the
// first that accepts.
func (p *PlayerClient) attachToAny(addrs []string) (net.Conn, error) {
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			continue
		}
		// Probe for capacity first.
		if err := protocol.WriteMessage(conn, protocol.MsgProbe, nil); err != nil {
			conn.Close()
			continue
		}
		typ, payload, err := protocol.ReadMessage(conn)
		if err != nil || typ != protocol.MsgProbeReply {
			conn.Close()
			continue
		}
		probe, err := protocol.UnmarshalProbeReply(payload)
		if err != nil || probe.Available <= 0 {
			conn.Close()
			continue
		}
		attach := protocol.PlayerAttach{
			PlayerID:     p.cfg.PlayerID,
			QualityLevel: uint8(p.level),
		}
		if err := protocol.WriteMessage(conn, protocol.MsgPlayerAttach, attach.Marshal()); err != nil {
			conn.Close()
			continue
		}
		typ, payload, err = protocol.ReadMessage(conn)
		if err != nil || typ != protocol.MsgAttachReply {
			conn.Close()
			continue
		}
		ack, err := protocol.UnmarshalAttachReply(payload)
		if err != nil || !ack.OK {
			conn.Close()
			continue
		}
		return conn, nil
	}
	return nil, fmt.Errorf("fognet: no supernode accepted player %d (candidates: %d)",
		p.cfg.PlayerID, len(addrs))
}

// Close leaves the game and waits for the client's goroutines.
func (p *PlayerClient) Close() error {
	select {
	case <-p.stop:
		return nil
	default:
	}
	close(p.stop)
	// Best-effort goodbyes; the connections close regardless.
	p.mu.Lock()
	video := p.video
	p.mu.Unlock()
	protocol.WriteMessage(p.cloud, protocol.MsgBye, nil)
	protocol.WriteMessage(video, protocol.MsgBye, nil)
	p.cloud.Close()
	video.Close()
	p.wg.Wait()
	return nil
}

// PlayerStats reports client-side counters.
type PlayerStats struct {
	// Frames is the number of decoded video frames.
	Frames int64
	// VideoBits is the received video volume.
	VideoBits int64
	// DecodeErrors counts undecodable frames.
	DecodeErrors int64
	// LastTick is the newest world tick seen in the video.
	LastTick uint64
	// Level is the current quality level.
	Level game.QualityLevel
	// RateSwitches counts receiver-driven level changes.
	RateSwitches int
	// Migrations counts reconnections to a new supernode after failures.
	Migrations int
}

// Stats snapshots the counters.
func (p *PlayerClient) Stats() PlayerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PlayerStats{
		Frames:       p.frames,
		VideoBits:    p.videoBits,
		DecodeErrors: p.decodeErrs,
		LastTick:     p.lastTick,
		Level:        p.level,
		RateSwitches: p.switches,
		Migrations:   p.migrations,
	}
}

// actionLoop streams synthetic inputs to the cloud: the player wanders
// between random waypoints.
func (p *PlayerClient) actionLoop(r *rng.Rand) {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.ActionInterval)
	defer ticker.Stop()
	tx, ty := r.Uniform(0, 400), r.Uniform(0, 400)
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			if r.Bool(0.1) {
				tx, ty = r.Uniform(0, 400), r.Uniform(0, 400)
			}
			msg := protocol.ActionMsg{Action: virtualworld.Action{
				Player: int(p.cfg.PlayerID), Kind: virtualworld.ActMove,
				TargetX: tx, TargetY: ty,
			}}
			if protocol.WriteMessage(p.cloud, protocol.MsgAction, msg.Marshal()) != nil {
				return
			}
		}
	}
}

// videoLoop receives and decodes the video stream, and drives the
// receiver-driven adaptation: the observed delivery rate feeds the buffer
// model, and level switches go back to the supernode as RateChange.
func (p *PlayerClient) videoLoop() {
	defer p.wg.Done()
	var dec videocodec.Decoder
	start := time.Now()
	var windowBits int64
	windowStart := start
	p.mu.Lock()
	conn := p.video
	p.mu.Unlock()
	for {
		typ, payload, err := protocol.ReadMessage(conn)
		if err != nil {
			// The serving supernode failed or left: migrate to another
			// candidate (§3.2.2). No game state transfers — the cloud
			// holds it all — so the stream resumes with a fresh decoder.
			next, ok := p.migrate(&dec)
			if !ok {
				return
			}
			conn = next
			continue
		}
		if typ != protocol.MsgVideoFrame {
			continue
		}
		ef, err := videocodec.UnmarshalFrame(payload)
		if err != nil {
			p.mu.Lock()
			p.decodeErrs++
			p.mu.Unlock()
			continue
		}
		frame, err := dec.Decode(ef)
		p.mu.Lock()
		if err != nil {
			p.decodeErrs++
		} else {
			p.frames++
			p.videoBits += int64(ef.SizeBits())
			if frame.Tick > p.lastTick {
				p.lastTick = frame.Tick
			}
		}
		p.mu.Unlock()
		windowBits += int64(ef.SizeBits())

		// Receiver-driven adaptation on ~250 ms windows.
		if p.ctrl != nil {
			if win := time.Since(windowStart); win >= 250*time.Millisecond {
				kbps := float64(windowBits) / win.Seconds() / 1000
				now := time.Since(start).Seconds()
				decision := p.ctrl.Observe(now, kbps)
				windowBits, windowStart = 0, time.Now()
				if decision != adaptation.Hold {
					rc := protocol.RateChange{QualityLevel: uint8(p.ctrl.Level())}
					if protocol.WriteMessage(conn, protocol.MsgRateChange, rc.Marshal()) != nil {
						return
					}
					p.mu.Lock()
					p.level = p.ctrl.Level()
					p.switches++
					p.mu.Unlock()
				}
			}
		}
	}
}

// migrate reconnects the video session to another candidate supernode
// after the serving one failed, returning the new connection. It reports
// false when the client is closing or no candidate accepts.
func (p *PlayerClient) migrate(dec *videocodec.Decoder) (net.Conn, bool) {
	select {
	case <-p.stop:
		return nil, false
	default:
	}
	conn, err := p.attachToAny(p.candidates)
	if err != nil {
		return nil, false
	}
	p.mu.Lock()
	old := p.video
	p.video = conn
	p.migrations++
	p.mu.Unlock()
	old.Close()
	*dec = videocodec.Decoder{} // the new stream starts with an I-frame
	return conn, true
}
