package fognet

import (
	"net"
	"sync"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/protocol"
	"cloudfog/internal/render"
	"cloudfog/internal/videocodec"
	"cloudfog/internal/virtualworld"
)

// snapshotSource yields the world state a video session renders from: a
// fog node serves its replica, the cloud serves the authoritative world
// (the fallback path for players without a nearby supernode).
type snapshotSource interface {
	currentSnapshot() virtualworld.Snapshot
}

// streamCounters receives the session's egress accounting.
type streamCounters interface {
	addFrame(bits int)
}

// runVideoSession streams rendered, encoded frames for one attached player
// until the connection breaks, a Bye arrives, or stop closes. It handles
// the receiver-driven RateChange messages of §3.3. Every frame write
// carries writeTimeout as a deadline, so a player that stops reading
// cannot pin the session goroutine. The caller owns conn and the attach
// handshake; wg tracks the internal reader goroutine.
func runVideoSession(
	conn net.Conn,
	playerID int32,
	level game.QualityLevel,
	frameInterval time.Duration,
	writeTimeout time.Duration,
	source snapshotSource,
	counters streamCounters,
	stop <-chan struct{},
	wg *sync.WaitGroup,
) {
	if level < 1 || level > game.NumQualityLevels {
		level = 3
	}
	// Rate-change messages arrive asynchronously with the frame clock.
	rateCh := make(chan game.QualityLevel, 1)
	readDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(readDone)
		for {
			typ, payload, err := protocol.ReadMessage(conn)
			if err != nil {
				return
			}
			switch typ {
			case protocol.MsgRateChange:
				rc, rerr := protocol.UnmarshalRateChange(payload)
				if rerr == nil && rc.QualityLevel >= 1 && rc.QualityLevel <= game.NumQualityLevels {
					select {
					case rateCh <- game.QualityLevel(rc.QualityLevel):
					default:
					}
				}
			case protocol.MsgBye:
				return
			}
		}
	}()

	renderer := render.NewRenderer(render.ResolutionForLevel(int(level)))
	encoder := videocodec.NewEncoder(game.MustQuality(level).BitrateKbps)
	ticker := time.NewTicker(frameInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-readDone:
			return
		case newLevel := <-rateCh:
			if newLevel != level {
				level = newLevel
				renderer = render.NewRenderer(render.ResolutionForLevel(int(level)))
				encoder = videocodec.NewEncoder(game.MustQuality(level).BitrateKbps)
			}
		case <-ticker.C:
			snap := source.currentSnapshot()
			frame := renderer.Render(snap, render.ViewportFor(snap, int(playerID)))
			ef := encoder.Encode(frame)
			if writeTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			}
			if protocol.WriteMessage(conn, protocol.MsgVideoFrame, ef.Marshal()) != nil {
				return
			}
			counters.addFrame(ef.SizeBits())
		}
	}
}
