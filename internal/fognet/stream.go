package fognet

import (
	"net"
	"sync"
	"time"

	"cloudfog/internal/game"
	"cloudfog/internal/protocol"
	"cloudfog/internal/render"
	"cloudfog/internal/videocodec"
	"cloudfog/internal/virtualworld"
)

// snapshotSource yields the world state a video session renders from: a
// fog node serves its replica, the cloud serves the authoritative world
// (the fallback path for players without a nearby supernode).
type snapshotSource interface {
	currentSnapshot() virtualworld.Snapshot
}

// streamCounters receives the session's egress accounting.
type streamCounters interface {
	addFrame(bits int)
}

// actionSink accepts player inputs that arrive on a video session — the
// outage escape hatch: a player whose cloud control link is down routes
// actions through its serving supernode, which forwards them upstream
// immediately or buffers them (bounded) until its own cloud link
// recovers. The cloud's fallback sessions feed the authoritative world
// directly. Returns false when the action was dropped.
type actionSink interface {
	submitAction(a virtualworld.Action) bool
}

// runVideoSession streams rendered, encoded frames for one attached player
// until the connection breaks, a Bye arrives, or stop closes. It handles
// the receiver-driven RateChange messages of §3.3 and the optional
// datagram upgrade: a MsgDatagramRequest is answered (via offer, or
// refused when offer is nil) on the session connection, and once the
// player's hello registers, frames ride UDP while this connection keeps
// carrying control. Every frame write carries writeTimeout as a deadline,
// so a player that stops reading cannot pin the session goroutine. The
// caller owns conn and the attach handshake; wg tracks the internal
// reader goroutine.
//
// The 30 fps loop is the fog tier's hot path, so it is allocation-free in
// steady state: the renderer rasterizes into one reused framebuffer, the
// encoder compresses into reused scratch (EncodeInto), and the encoded
// frame plus its header — the 5-byte stream header or the 33-byte
// datagram header — are appended into one pooled buffer flushed with a
// single Write. The pooled buffer is returned only after the session
// ends — per-frame it is simply truncated and refilled, never handed to
// another goroutine.
func runVideoSession(
	conn net.Conn,
	playerID int32,
	level game.QualityLevel,
	frameInterval time.Duration,
	writeTimeout time.Duration,
	source snapshotSource,
	counters streamCounters,
	actions actionSink,
	offer dgramOffer,
	stop <-chan struct{},
	wg *sync.WaitGroup,
) {
	if level < 1 || level > game.NumQualityLevels {
		level = 3
	}
	// Rate-change and datagram-request messages arrive asynchronously
	// with the frame clock; the frame loop owns all writes on conn, so
	// the reader only signals.
	rateCh := make(chan game.QualityLevel, 1)
	dgramCh := make(chan struct{}, 1)
	readDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(readDone)
		fr := protocol.NewFrameReader(conn)
		for {
			typ, payload, err := fr.Next()
			if err != nil {
				return
			}
			switch typ {
			case protocol.MsgRateChange:
				rc, rerr := protocol.UnmarshalRateChange(payload)
				if rerr == nil && rc.QualityLevel >= 1 && rc.QualityLevel <= game.NumQualityLevels {
					select {
					case rateCh <- game.QualityLevel(rc.QualityLevel):
					default:
					}
				}
			case protocol.MsgAction:
				// Outage-window input rerouting: only the attached
				// player's own actions are accepted.
				am, aerr := protocol.UnmarshalActionMsg(payload)
				if aerr != nil || am.Action.Player != int(playerID) {
					continue
				}
				actions.submitAction(am.Action)
			case protocol.MsgDatagramRequest:
				req, derr := protocol.UnmarshalDatagramRequest(payload)
				if derr != nil || req.PlayerID != playerID {
					continue
				}
				select {
				case dgramCh <- struct{}{}:
				default:
				}
			case protocol.MsgBye:
				return
			}
		}
	}()

	renderer := render.NewRenderer(render.ResolutionForLevel(int(level)))
	encoder := videocodec.NewEncoder(game.MustQuality(level).BitrateKbps)
	frame := render.NewFrame(renderer.Resolution())
	var ef videocodec.EncodedFrame
	out := protocol.GetBuffer()
	defer protocol.PutBuffer(out)
	// sess is the live datagram upgrade, nil until a request is granted;
	// dgramLive flips when the player's hello lands and frames actually
	// switch to UDP.
	var sess *dgramSession
	dgramLive := false
	defer func() {
		if sess != nil {
			offer.endDatagram(sess)
		}
	}()
	ticker := time.NewTicker(frameInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-readDone:
			return
		case newLevel := <-rateCh:
			if newLevel != level {
				level = newLevel
				renderer = render.NewRenderer(render.ResolutionForLevel(int(level)))
				encoder = videocodec.NewEncoder(game.MustQuality(level).BitrateKbps)
			}
		case <-dgramCh:
			//lint:ignore epochstamp refusal default: overwritten by the stamped offer when the datagram path is up
			reply := protocol.DatagramReply{Reason: "datagram video unavailable"}
			if offer != nil && sess == nil {
				reply, sess = offer.offerDatagram()
			}
			var err error
			out.B, err = protocol.AppendFrame(out.B[:0], protocol.MsgDatagramReply, reply.Marshal())
			if err != nil {
				return
			}
			if writeTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			}
			if _, err := conn.Write(out.B); err != nil {
				return
			}
		case <-ticker.C:
			snap := source.currentSnapshot()
			if sess != nil && !dgramLive {
				if _, ok := sess.remote(); ok {
					// The hello landed: this frame is the first to ride
					// UDP. Restart the GOP so the receiver — which read
					// none of the TCP frames in flight during the
					// handshake — decodes from the very first datagram.
					dgramLive = true
					encoder.ForceKeyframe()
				}
			}
			renderer.RenderInto(snap, render.ViewportFor(snap, int(playerID)), frame)
			encoder.EncodeInto(frame, &ef)
			if sess != nil {
				var sent bool
				out.B, sent = sess.sendFrame(out.B, &ef, snap.Tick)
				if sent {
					counters.addFrame(ef.SizeBits())
					continue
				}
				// No hello yet, oversized frame, or a socket error:
				// this frame rides the reliable stream instead.
			}
			var err error
			out.B, err = protocol.AppendMessage(out.B[:0], protocol.MsgVideoFrame, &ef)
			if err != nil {
				return
			}
			if writeTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			}
			if _, err := conn.Write(out.B); err != nil {
				return
			}
			counters.addFrame(ef.SizeBits())
		}
	}
}
