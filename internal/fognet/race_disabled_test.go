//go:build !race

package fognet

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
