package fognet

import (
	"io"
	"testing"

	"cloudfog/internal/protocol"
	"cloudfog/internal/render"
	"cloudfog/internal/rng"
	"cloudfog/internal/virtualworld"
)

// aoiBenchFixture is the tick fan-out fixture: one tick's delta stream
// over a world×world map, fanoutWidth subscribers each watching a
// viewport-sized footprint around its player. The first `visible` deltas
// land inside those footprints; the rest are spread uniformly over the
// whole world (background activity no subscriber cares about).
type aoiBenchFixture struct {
	geo     virtualworld.GridGeom
	deltas  []virtualworld.Delta
	sets    []*interestSet
	queues  []chan outMsg
	plan    aoiPlan
	pending []outMsg
}

func newAoIBenchFixture(total, visible int, world float64) *aoiBenchFixture {
	f := &aoiBenchFixture{geo: virtualworld.Geometry(world, world, virtualworld.DefaultCellSize)}
	r := rng.New(uint64(total)*31 + uint64(visible)).SplitNamed("aoi-bench")
	type pt struct{ x, y float64 }
	players := make([]pt, fanoutWidth)
	halfW := render.ViewHalfWidth + DefaultAoIMargin
	halfH := render.ViewHalfHeight + DefaultAoIMargin
	var cells []uint32
	for i := range players {
		players[i] = pt{
			x: world * float64(i+1) / float64(fanoutWidth+1),
			y: world / 2,
		}
		is := newInterestSet(1, f.geo.NumCells())
		cells = f.geo.AppendCellsInRect(cells[:0],
			players[i].x-halfW, players[i].y-halfH, players[i].x+halfW, players[i].y+halfH)
		for _, c := range cells {
			is.add(c)
		}
		f.sets = append(f.sets, is)
		f.queues = append(f.queues, make(chan outMsg, 2*DefaultSendQueueLen))
	}
	f.deltas = make([]virtualworld.Delta, total)
	for i := range f.deltas {
		var x, y float64
		if i < visible {
			// Inside the cycling player's viewport: guaranteed subscribed.
			p := players[i%len(players)]
			x = p.x + (r.Float64()*2-1)*render.ViewHalfWidth
			y = p.y + (r.Float64()*2-1)*render.ViewHalfHeight
		} else {
			x = r.Float64() * world
			y = r.Float64() * world
		}
		id := virtualworld.EntityID(i + 1)
		f.deltas[i] = virtualworld.Delta{ID: id, Entity: virtualworld.Entity{
			ID: id, Kind: virtualworld.KindNPC, Owner: -1, X: x, Y: y, HP: 80, Version: 7,
		}}
	}
	return f
}

// tickAoI runs one AoI fan-out cycle exactly as tickOnce + snWriter do:
// bucket the deltas by cell, encode each subscribed dirty cell once into a
// pooled reference-counted payload, enqueue to its subscribers, then drain
// every queue through the coalescing writer path. Returns the egress bytes
// this tick put on the wire.
func (f *aoiBenchFixture) tickAoI(tb testing.TB) int64 {
	f.plan.build(f.geo, f.deltas, 0)
	var bytes int64
	for i := 0; i < f.plan.numDirty(); i++ {
		cell := f.plan.cell(i)
		subs := 0
		for _, is := range f.sets {
			if is.has(cell) {
				subs++
			}
		}
		if subs == 0 {
			continue
		}
		_, cd := f.plan.cellDeltas(i)
		cb := protocol.CellBatch{Tick: 42, Cell: cell, Deltas: cd}
		sp := newSharedPayload(subs)
		sp.buf.B = cb.AppendTo(sp.buf.B[:0])
		for j, is := range f.sets {
			if is.has(cell) {
				f.queues[j] <- outMsg{typ: protocol.MsgCellBatch, payload: sp.buf.B, shared: sp}
				bytes += int64(len(sp.buf.B) + protocol.HeaderLen)
			}
		}
	}
	f.drain(tb)
	return bytes
}

// tickLegacy is the pre-AoI baseline on the same fixture: the full batch
// encoded once and fanned to every subscriber, regardless of interest.
func (f *aoiBenchFixture) tickLegacy(tb testing.TB) int64 {
	batch := protocol.UpdateBatch{Tick: 42, Deltas: f.deltas}
	sp := newSharedPayload(len(f.queues))
	sp.buf.B = batch.AppendTo(sp.buf.B[:0])
	var bytes int64
	for _, q := range f.queues {
		q <- outMsg{typ: protocol.MsgUpdateBatch, payload: sp.buf.B, shared: sp}
		bytes += int64(len(sp.buf.B) + protocol.HeaderLen)
	}
	f.drain(tb)
	return bytes
}

func (f *aoiBenchFixture) drain(tb testing.TB) {
	for _, q := range f.queues {
		f.pending = f.pending[:0]
	drain:
		for {
			select {
			case m := <-q:
				f.pending = append(f.pending, m)
			default:
				break drain
			}
		}
		buf := protocol.GetBuffer()
		for _, m := range f.pending {
			var err error
			if buf.B, err = protocol.AppendFrame(buf.B, m.typ, m.payload); err != nil {
				tb.Fatal(err)
			}
		}
		if _, err := io.Discard.Write(buf.B); err != nil {
			tb.Fatal(err)
		}
		for j := range f.pending {
			f.pending[j].shared.release()
			f.pending[j] = outMsg{}
		}
		protocol.PutBuffer(buf)
	}
}

// aoiBenchCases: the world-scaling rows hold the visible set fixed while
// the world (entities and area, constant density) grows — AoI cost must
// stay flat where the legacy full-world fan-out grows linearly. The
// visible-scaling rows hold the world fixed while the in-footprint share
// grows — AoI cost must grow linearly with it.
var aoiBenchCases = []struct {
	name    string
	total   int
	visible int
	world   float64
}{
	{"world=2k/visible=512", 2_000, 512, 1400},
	{"world=10k/visible=512", 10_000, 512, 3200},
	{"world=40k/visible=512", 40_000, 512, 6400},
	{"world=16k/visible=1k", 16_000, 1_000, 4000},
	{"world=16k/visible=4k", 16_000, 4_000, 4000},
	{"world=16k/visible=16k", 16_000, 16_000, 4000},
}

// BenchmarkAoITickFanout measures the interest-managed tick fan-out.
// Alongside ns/op it reports fanoutB/tick — the Λ egress one tick puts on
// the wire — which is the number the AoI layer exists to bound.
func BenchmarkAoITickFanout(b *testing.B) {
	for _, tc := range aoiBenchCases {
		b.Run(tc.name, func(b *testing.B) {
			f := newAoIBenchFixture(tc.total, tc.visible, tc.world)
			f.tickAoI(b) // warm pools and plan scratch
			b.ReportAllocs()
			b.ResetTimer()
			var bytes int64
			for i := 0; i < b.N; i++ {
				bytes += f.tickAoI(b)
			}
			b.ReportMetric(float64(bytes)/float64(b.N), "fanoutB/tick")
		})
	}
}

// BenchmarkLegacyTickFanout is the full-world baseline on the identical
// fixture: egress is total-entity- (and supernode-) proportional no matter
// what the players can see.
func BenchmarkLegacyTickFanout(b *testing.B) {
	for _, tc := range aoiBenchCases {
		b.Run(tc.name, func(b *testing.B) {
			f := newAoIBenchFixture(tc.total, tc.visible, tc.world)
			f.tickLegacy(b)
			b.ReportAllocs()
			b.ResetTimer()
			var bytes int64
			for i := 0; i < b.N; i++ {
				bytes += f.tickLegacy(b)
			}
			b.ReportMetric(float64(bytes)/float64(b.N), "fanoutB/tick")
		})
	}
}

// TestAoIFanoutSteadyStateAllocs pins the AoI fan-out's allocation
// discipline as a regression test: after warm-up, bucketing + per-cell
// encode + enqueue + coalesced drain allocate nothing.
func TestAoIFanoutSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes caching under -race; allocation counts only hold without it")
	}
	f := newAoIBenchFixture(2048, 512, 1400)
	// Convergence needs more warm-up than the single-payload fan-out test:
	// the cycle keeps ~one pooled buffer per dirty cell, and buffers trade
	// roles (cell payload vs coalesced frame) between ticks, so each tick
	// can grow at most one more pool member to the high-water mark.
	for i := 0; i < 512; i++ {
		f.tickAoI(t)
	}
	if n := testing.AllocsPerRun(64, func() { f.tickAoI(t) }); n != 0 {
		t.Fatalf("AoI fan-out allocates %.1f/op in steady state, want 0", n)
	}
}
