package fognet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"cloudfog/internal/checkpoint"
	"cloudfog/internal/protocol"
	"cloudfog/internal/rng"
	"cloudfog/internal/transport"
)

// DefaultPromoteAfter is how long the checkpoint/log stream may stay
// silent before the standby declares the primary dead and promotes
// itself. The per-tick delta log doubles as the liveness signal, so at
// the default 20 Hz tick this is forty missed entries.
const DefaultPromoteAfter = 2 * time.Second

// StandbyConfig parameterizes a warm standby.
type StandbyConfig struct {
	// Addr is the standby's listen address ("127.0.0.1:0" for an
	// ephemeral port). It is bound immediately and advertised to the
	// primary, which stamps it into every client's failover view; on
	// promotion the same listener starts serving, so clients resume on
	// exactly the address they were told before the crash.
	Addr string
	// PrimaryAddr is the primary cloud to follow.
	PrimaryAddr string
	// PromoteAfter is the silence threshold on the checkpoint/log stream
	// after which the standby promotes itself. Defaults to
	// DefaultPromoteAfter.
	PromoteAfter time.Duration
	// ReconnectBackoff / ReconnectBackoffMax shape the jittered redial
	// loop while the primary is unreachable but promotion is not yet
	// due. Defaults match the fog node's.
	ReconnectBackoff    time.Duration
	ReconnectBackoffMax time.Duration
	// DialTimeout bounds the primary dial and hello. Defaults to
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// WriteTimeout bounds protocol writes. Defaults to
	// DefaultWriteTimeout.
	WriteTimeout time.Duration
	// Seed drives the redial jitter deterministically.
	Seed uint64
	// Dial, when set, replaces net.DialTimeout — the faultnet injection
	// point for chaos tests.
	Dial DialFunc
	// Cloud is the configuration template for the promoted server (tick
	// and heartbeat intervals, selection policy, queue sizes). Its Addr,
	// Listener, Epoch, and Restore fields are overwritten by the
	// promotion itself.
	Cloud CloudConfig
}

// StandbyStats reports the follower's counters.
type StandbyStats struct {
	// Checkpoints / LogEntries count what the follower absorbed.
	Checkpoints int64
	LogEntries  int64
	// Epoch / LastTick describe the newest durable state held.
	Epoch    uint64
	LastTick uint64
	// Attaches counts successful registrations with the primary.
	Attaches int64
	// Promoted reports whether this standby took over.
	Promoted bool
}

// Standby is a warm standby for the cloud tier: it follows the primary's
// checkpoint stream and per-tick delta log, and when the primary goes
// silent past PromoteAfter it replays checkpoint+log into a bit-exact
// copy of the last durable world and starts a CloudServer of its own —
// epoch bumped, on the listener it advertised all along — so supernodes
// and players resume without a full rejoin (DESIGN.md §12).
type Standby struct {
	cfg StandbyConfig
	// tp is the transport seam the primary dial goes through.
	tp       transport.TCP
	listener net.Listener

	mu sync.Mutex
	// state is the last decoded checkpoint; entries the delta-log suffix
	// past it. Both guarded by mu. Entries older than a newly arrived
	// checkpoint are pruned — the checkpoint subsumes them.
	state   *checkpoint.State
	entries []checkpoint.LogEntry
	// lastMsg is when the stream last proved the primary alive; the
	// promotion timer measures silence from here. Guarded by mu.
	lastMsg time.Time
	// promoted is the post-failover CloudServer, nil until promotion.
	// Guarded by mu.
	promoted    *CloudServer
	checkpoints int64 // guarded by mu
	logEntries  int64 // guarded by mu
	attaches    int64 // guarded by mu

	jitter *rng.Rand // redial jitter; guarded by mu

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewStandby binds the standby's listener and starts following the
// primary. The listener accepts no connections until promotion — dials
// queue in the kernel backlog, which is exactly the grace a resuming
// client needs while the takeover completes.
func NewStandby(cfg StandbyConfig) (*Standby, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.PromoteAfter <= 0 {
		cfg.PromoteAfter = DefaultPromoteAfter
	}
	if cfg.ReconnectBackoff <= 0 {
		cfg.ReconnectBackoff = DefaultReconnectBackoff
	}
	if cfg.ReconnectBackoffMax <= 0 {
		cfg.ReconnectBackoffMax = DefaultReconnectBackoffMax
	}
	tc := transport.Config{
		DialTimeout:  cfg.DialTimeout,
		WriteTimeout: cfg.WriteTimeout,
	}.WithDefaults()
	cfg.DialTimeout = tc.DialTimeout
	cfg.WriteTimeout = tc.WriteTimeout
	tp := transport.TCP{Config: tc, DialFunc: cfg.Dial}
	ln, err := tp.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("standby listen: %w", err)
	}
	sb := &Standby{
		cfg:      cfg,
		tp:       tp,
		listener: ln,
		jitter:   rng.New(cfg.Seed).SplitNamed("standby-redial"),
		stop:     make(chan struct{}),
	}
	sb.wg.Add(1)
	go sb.run()
	return sb, nil
}

// Addr returns the standby's advertised (and post-promotion serving)
// address.
func (sb *Standby) Addr() string { return sb.listener.Addr().String() }

// Promoted returns the post-failover CloudServer, or nil while the
// primary is still alive.
func (sb *Standby) Promoted() *CloudServer {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.promoted
}

// Stats snapshots the follower's counters.
func (sb *Standby) Stats() StandbyStats {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	st := StandbyStats{
		Checkpoints: sb.checkpoints,
		LogEntries:  sb.logEntries,
		Attaches:    sb.attaches,
		Promoted:    sb.promoted != nil,
	}
	if sb.state != nil {
		st.Epoch = sb.state.Epoch
		st.LastTick = sb.state.World.Tick
		for i := range sb.entries {
			if e := &sb.entries[i]; e.Epoch == sb.state.Epoch && e.Tick > st.LastTick {
				st.LastTick = e.Tick
			}
		}
	}
	return st
}

// Close stops the follower; if the standby promoted, the recovered
// CloudServer (which owns the listener by then) is closed too.
func (sb *Standby) Close() error {
	select {
	case <-sb.stop:
		return nil
	default:
	}
	close(sb.stop)
	sb.wg.Wait()
	sb.mu.Lock()
	srv := sb.promoted
	sb.mu.Unlock()
	if srv != nil {
		return srv.Close() // closes the handed-over listener
	}
	return sb.listener.Close()
}

// run is the follower's lifecycle: follow the primary until the stream
// dies, then either promote (silence past PromoteAfter with a durable
// checkpoint in hand) or redial with jittered, capped backoff.
func (sb *Standby) run() {
	defer sb.wg.Done()
	backoff := sb.cfg.ReconnectBackoff
	for {
		select {
		case <-sb.stop:
			return
		default:
		}
		bye := sb.follow()
		if sb.shouldPromote(bye) {
			sb.promote()
			return
		}
		sb.mu.Lock()
		sleep, next := nextBackoff(sb.jitter, backoff, sb.cfg.ReconnectBackoffMax)
		sb.mu.Unlock()
		backoff = next
		t := time.NewTimer(sleep)
		select {
		case <-sb.stop:
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// follow attaches to the primary and absorbs its checkpoint/log stream
// until the connection breaks or goes silent past the promotion
// deadline. It reports whether the primary said a graceful goodbye
// (which authorizes immediate promotion — the final checkpoint is
// already in hand).
func (sb *Standby) follow() (bye bool) {
	conn, err := sb.tp.Dial(sb.cfg.PrimaryAddr)
	if err != nil {
		return false
	}
	defer conn.Close()
	// Unblock the read below when the standby closes mid-follow.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-sb.stop:
			conn.Close()
		case <-done:
		}
	}()
	hello := protocol.StandbyHello{Addr: sb.listener.Addr().String()}
	conn.SetWriteDeadline(time.Now().Add(sb.cfg.WriteTimeout))
	if protocol.WriteMessage(conn, protocol.MsgStandbyHello, hello.Marshal()) != nil {
		return false
	}
	conn.SetWriteDeadline(time.Time{})
	sb.mu.Lock()
	sb.attaches++
	// The attach itself proves the primary alive: the silence window
	// restarts now, giving the first checkpoint time to arrive.
	sb.lastMsg = time.Now()
	sb.mu.Unlock()

	fr := protocol.NewFrameReader(conn)
	for {
		// Every read is bounded by the promotion deadline: a primary
		// that stops producing log entries (one per tick, even idle
		// ones) is indistinguishable from a dead one.
		sb.mu.Lock()
		deadline := sb.lastMsg.Add(sb.cfg.PromoteAfter)
		sb.mu.Unlock()
		conn.SetReadDeadline(deadline)
		typ, payload, rerr := fr.Next()
		if rerr != nil {
			return false
		}
		switch typ {
		case protocol.MsgCheckpoint:
			st := new(checkpoint.State)
			if derr := checkpoint.DecodeState(payload, st); derr != nil {
				continue
			}
			sb.mu.Lock()
			sb.state = st
			// The checkpoint subsumes every logged tick it covers; keep
			// only the suffix past it (entries can arrive slightly ahead
			// of the checkpoint that was encoded before them).
			kept := sb.entries[:0]
			for i := range sb.entries {
				if e := sb.entries[i]; e.Epoch == st.Epoch && e.Tick > st.World.Tick {
					kept = append(kept, e)
				}
			}
			sb.entries = kept
			sb.checkpoints++
			sb.lastMsg = time.Now()
			sb.mu.Unlock()
		case protocol.MsgLogEntry:
			var e checkpoint.LogEntry
			if derr := checkpoint.DecodeLogEntry(payload, &e); derr != nil {
				continue
			}
			sb.mu.Lock()
			sb.entries = append(sb.entries, e)
			sb.logEntries++
			sb.lastMsg = time.Now()
			sb.mu.Unlock()
		case protocol.MsgBye:
			return true
		}
	}
}

// shouldPromote decides whether the follower's view authorizes a
// takeover: there must be a durable checkpoint, and either the primary
// said goodbye or its stream has been silent past PromoteAfter.
func (sb *Standby) shouldPromote(bye bool) bool {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.state == nil || sb.promoted != nil {
		return false
	}
	if bye {
		return true
	}
	return time.Since(sb.lastMsg) >= sb.cfg.PromoteAfter
}

// promote replays checkpoint+log into the exact world the primary last
// made durable and starts the recovered CloudServer on the advertised
// listener, one epoch up.
func (sb *Standby) promote() {
	sb.mu.Lock()
	st := sb.state
	entries := sb.entries
	sb.entries = nil
	sb.mu.Unlock()

	w := checkpoint.Replay(st, entries)
	w.SnapshotInto(&st.World)
	st.NextID = w.NextID()
	st.Canonicalize()

	cfg := sb.cfg.Cloud
	cfg.Addr = sb.listener.Addr().String()
	cfg.Listener = sb.listener
	cfg.Epoch = st.Epoch + 1
	cfg.Restore = st
	srv, err := NewCloudServer(cfg)
	if err != nil {
		// The listener is gone (closed underneath us); nothing to serve.
		return
	}
	sb.mu.Lock()
	sb.promoted = srv
	sb.mu.Unlock()
}
