package fognet

import (
	"encoding/json"
	"net"
	"os"
	"testing"
	"time"

	"cloudfog/internal/checkpoint"
	"cloudfog/internal/faultnet"
	"cloudfog/internal/rng"
)

// TestNextBackoffCapped is the regression for the shared retry helper:
// the doubling must stop at the cap, the jitter must stay inside ±50% of
// the (clamped) base, and the same seed must replay the same schedule.
func TestNextBackoffCapped(t *testing.T) {
	const max = 400 * time.Millisecond
	j := rng.New(1).SplitNamed("backoff-test")
	cur := 50 * time.Millisecond
	for i := 0; i < 20; i++ {
		base := cur
		if base > max {
			base = max
		}
		sleep, next := nextBackoff(j, cur, max)
		if sleep < base/2 || sleep > base+base/2 {
			t.Fatalf("round %d: sleep %v outside [%v, %v]", i, sleep, base/2, base+base/2)
		}
		if next > max {
			t.Fatalf("round %d: next %v exceeds cap %v", i, next, max)
		}
		cur = next
	}
	if cur != max {
		t.Fatalf("backoff settled at %v, want cap %v", cur, max)
	}
	// Even a pathological caller that feeds a base above the cap must get
	// a clamped sleep back.
	sleep, next := nextBackoff(j, time.Hour, max)
	if sleep > max+max/2 || next != max {
		t.Fatalf("over-cap input: sleep=%v next=%v, want <=%v and %v", sleep, next, max+max/2, max)
	}
	// Same seed, same schedule.
	a, b := rng.New(9).SplitNamed("backoff-test"), rng.New(9).SplitNamed("backoff-test")
	ca, cb := 50*time.Millisecond, 50*time.Millisecond
	for i := 0; i < 10; i++ {
		sa, na := nextBackoff(a, ca, max)
		sbs, nb := nextBackoff(b, cb, max)
		if sa != sbs || na != nb {
			t.Fatalf("round %d: same seed diverged (%v,%v) vs (%v,%v)", i, sa, na, sbs, nb)
		}
		ca, cb = na, nb
	}
}

// TestCheckpointEncodeSteadyStateAllocs pins the tentpole's zero-alloc
// claim: capturing and encoding a full checkpoint on the tick path reuses
// the server's scratch State, the pooled payload buffer, and the shared
// wrapper — zero allocations per checkpoint once warm.
func TestCheckpointEncodeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes caching under -race; allocation counts only hold without it")
	}
	cloud := startCloud(t)
	cycle := func() {
		cloud.mu.Lock()
		sp := cloud.encodeCheckpointLocked(1)
		cloud.mu.Unlock()
		sp.release()
	}
	for i := 0; i < 8; i++ { // warm-up: grow scratch and pools
		cycle()
	}
	if n := testing.AllocsPerRun(64, cycle); n != 0 {
		t.Fatalf("checkpoint encode allocates %.1f/op in steady state, want 0", n)
	}
}

// standbyLinkFixture starts a cloud whose accepted connections pass
// through a faultnet injector, with an attached standby, a small send
// queue, and a short write timeout — the rig for exercising the
// coalescing snWriter's drop-and-release path on the checkpoint stream.
func standbyLinkFixture(t *testing.T, seed uint64) (*faultnet.Injector, *CloudServer, *Standby) {
	t.Helper()
	inj := faultnet.NewInjector(faultnet.Profile{Seed: seed})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := NewCloudServer(CloudConfig{
		Listener:        inj.WrapListener(ln),
		TickInterval:    2 * time.Millisecond,
		CheckpointEvery: 2,
		NPCs:            4,
		WriteTimeout:    200 * time.Millisecond,
		SendQueueLen:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cloud.Close() })
	sb, err := NewStandby(StandbyConfig{
		PrimaryAddr:      cloud.Addr(),
		PromoteAfter:     time.Hour, // follower only: promotion is not under test
		ReconnectBackoff: 10 * time.Millisecond,
		Seed:             seed,
		Cloud:            CloudConfig{TickInterval: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sb.Close() })
	waitFor(t, 5*time.Second, "standby attach", func() bool {
		return cloud.Stats().StandbyAttached
	})
	waitFor(t, 5*time.Second, "first checkpoint", func() bool {
		return sb.Stats().Checkpoints >= 1
	})
	return inj, cloud, sb
}

// TestStandbyLinkStallDropsAndDetaches: a stalled (zero-window) standby
// link must not stall the tick loop. The bounded send queue fills, the
// enqueue path drops and releases the overflow (refcounted payloads go
// back to the pool), and once the coalescing writer's deadline fires the
// dead follower is detached — then the real standby redials and
// re-attaches through the same injector.
func TestStandbyLinkStallDropsAndDetaches(t *testing.T) {
	inj, cloud, sb := standbyLinkFixture(t, 31)
	drops0 := cloud.Stats().Resilience.SendQueueDrops
	attaches0 := sb.Stats().Attaches
	tick0 := cloud.Stats().Tick

	inj.SetMode(faultnet.Stall)
	waitFor(t, 5*time.Second, "queue overflow drops", func() bool {
		return cloud.Stats().Resilience.SendQueueDrops > drops0
	})
	waitFor(t, 5*time.Second, "stalled follower detached", func() bool {
		return !cloud.Stats().StandbyAttached
	})
	// The authority never stopped ticking while its follower was stuck.
	if tickNow := cloud.Stats().Tick; tickNow <= tick0 {
		t.Fatalf("tick loop stalled with the follower: tick %d -> %d", tick0, tickNow)
	}
	// New connections are healthy (SetMode only flips existing conns), so
	// the follower recovers on its own.
	waitFor(t, 10*time.Second, "standby re-attach", func() bool {
		return sb.Stats().Attaches > attaches0 && cloud.Stats().StandbyAttached
	})
}

// TestStandbyLinkResetDetachesAndRecovers: an abrupt reset on the standby
// link fails the coalescing writer immediately; the follower must be
// detached without disturbing the tick loop and the standby must redial
// and resume absorbing checkpoints.
func TestStandbyLinkResetDetachesAndRecovers(t *testing.T) {
	inj, cloud, sb := standbyLinkFixture(t, 32)
	attaches0 := sb.Stats().Attaches
	inj.SetMode(faultnet.Reset)
	waitFor(t, 5*time.Second, "reset follower detached", func() bool {
		return !cloud.Stats().StandbyAttached || sb.Stats().Attaches > attaches0
	})
	waitFor(t, 10*time.Second, "standby re-attach after reset", func() bool {
		return sb.Stats().Attaches > attaches0 && cloud.Stats().StandbyAttached
	})
	ck0 := sb.Stats().Checkpoints
	waitFor(t, 5*time.Second, "checkpoints resume", func() bool {
		return sb.Stats().Checkpoints > ck0
	})
}

// TestPrimaryFailoverResume is the tentpole chaos test: kill the primary
// cloud mid-run and assert that
//
//   - the warm standby promotes within its silence threshold,
//   - the restored world is BIT-IDENTICAL to an independent replay of the
//     final durable checkpoint+log stream (hash equality),
//   - nothing durable is lost: the player's session and avatar survive,
//   - the supernode and the player resume via MsgResume (no rejoin) and
//     the resume lands within a bounded number of ticks of the restore
//     point, and
//   - video frames keep flowing afterwards.
//
// When RECOVERY_LATENCY_JSON names a file, the measured recovery
// latencies are written there for the CI artifact.
func TestPrimaryFailoverResume(t *testing.T) {
	primary, err := NewCloudServer(CloudConfig{
		TickInterval:      5 * time.Millisecond,
		NPCs:              4,
		CheckpointEvery:   4,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	sb, err := NewStandby(StandbyConfig{
		PrimaryAddr:      primary.Addr(),
		PromoteAfter:     400 * time.Millisecond,
		ReconnectBackoff: 20 * time.Millisecond,
		Seed:             11,
		Cloud: CloudConfig{
			TickInterval:      5 * time.Millisecond,
			HeartbeatInterval: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	// The standby attaches before anyone else joins, so every welcome and
	// join reply advertises its address as the failover rung.
	waitFor(t, 5*time.Second, "standby attach", func() bool {
		return primary.Stats().StandbyAttached
	})

	fog := startFog(t, primary, "fog-recovery", 4)
	player, err := NewPlayerClient(PlayerConfig{
		PlayerID: 1, CloudAddr: primary.Addr(),
		ActionInterval: 10 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	waitFor(t, 5*time.Second, "player streaming", func() bool {
		return player.Stats().Frames > 5
	})
	// Wait for a checkpoint that covers the player's session, so the
	// durable state we are about to lose the primary from includes it.
	ckAtJoin := sb.Stats().Checkpoints
	waitFor(t, 5*time.Second, "post-join checkpoint", func() bool {
		return sb.Stats().Checkpoints > ckAtJoin
	})

	// CRASH: hard close, no goodbye, no drain. In-flight tick state past
	// the last log entry is legitimately gone; everything durable must
	// survive.
	primary.Close()
	killedAt := time.Now()
	// The follower's connection dies with the primary; give the dust an
	// instant to settle and the stream is final.
	time.Sleep(50 * time.Millisecond)

	// Deep-copy the standby's durable view (codec round-trip = deep copy)
	// and replay it INDEPENDENTLY of the standby's own promotion.
	sb.mu.Lock()
	if sb.state == nil {
		sb.mu.Unlock()
		t.Fatal("standby holds no checkpoint at kill time")
	}
	var expSt checkpoint.State
	if derr := checkpoint.DecodeState(sb.state.AppendTo(nil), &expSt); derr != nil {
		sb.mu.Unlock()
		t.Fatalf("clone checkpoint: %v", derr)
	}
	entries := make([]checkpoint.LogEntry, len(sb.entries))
	for i := range sb.entries {
		if derr := checkpoint.DecodeLogEntry(sb.entries[i].AppendTo(nil), &entries[i]); derr != nil {
			sb.mu.Unlock()
			t.Fatalf("clone log entry %d: %v", i, derr)
		}
	}
	sb.mu.Unlock()

	w := checkpoint.Replay(&expSt, entries)
	w.SnapshotInto(&expSt.World)
	expSt.NextID = w.NextID()
	expSt.Canonicalize()
	expHash := checkpoint.Hash(expSt.AppendTo(nil))
	expTick := expSt.World.Tick
	sessionSurvived := false
	for _, id := range expSt.Sessions {
		if id == 1 {
			sessionSurvived = true
		}
	}
	if !sessionSurvived {
		t.Fatal("durable state at kill time lost player 1's session")
	}

	waitFor(t, 10*time.Second, "promotion", func() bool {
		return sb.Promoted() != nil
	})
	promoted := sb.Promoted()
	promoteMs := time.Since(killedAt).Milliseconds()
	ps := promoted.Stats()
	if ps.RestoredHash != expHash {
		t.Fatalf("restored state hash %#x != independent replay %#x — restore is not bit-identical",
			ps.RestoredHash, expHash)
	}
	if ps.RestoredTick != expTick {
		t.Fatalf("restored tick %d != replayed tick %d", ps.RestoredTick, expTick)
	}
	if want := expSt.Epoch + 1; ps.Epoch != want {
		t.Fatalf("promoted epoch %d, want %d", ps.Epoch, want)
	}

	waitFor(t, 10*time.Second, "supernode resume", func() bool {
		return fog.Stats().Resilience.Resumes >= 1
	})
	fogResumeMs := time.Since(killedAt).Milliseconds()
	waitFor(t, 10*time.Second, "player control-plane resume", func() bool {
		st := player.Stats()
		return st.CtrlResumes >= 1 && st.Epoch == ps.Epoch
	})
	playerResumeMs := time.Since(killedAt).Milliseconds()

	// Bounded-tick resume: the promoted authority had ticked only as far
	// as the recovery window allows when both tiers were back.
	resumeTick := promoted.Stats().Tick
	const maxResumeTicks = 4000 // 5ms ticks: 20s, the waitFor budget
	if resumeTick-expTick > maxResumeTicks {
		t.Fatalf("resume landed %d ticks after restore, want <= %d", resumeTick-expTick, maxResumeTicks)
	}

	// Zero lost durable state: the avatar the session owned is alive on
	// the promoted authority.
	promoted.mu.Lock()
	av := promoted.world.Avatar(1)
	promoted.mu.Unlock()
	if av == nil {
		t.Fatal("player 1's avatar did not survive the failover")
	}

	// And the player is actually playing again.
	f0 := player.Stats().Frames
	waitFor(t, 10*time.Second, "frames after failover", func() bool {
		return player.Stats().Frames > f0+5
	})

	if path := os.Getenv("RECOVERY_LATENCY_JSON"); path != "" {
		art := map[string]interface{}{
			"promote_ms":       promoteMs,
			"fog_resume_ms":    fogResumeMs,
			"player_resume_ms": playerResumeMs,
			"restored_tick":    expTick,
			"resume_tick":      resumeTick,
			"restored_hash":    expHash,
			"epoch":            ps.Epoch,
		}
		data, jerr := json.MarshalIndent(art, "", "  ")
		if jerr == nil {
			if werr := os.WriteFile(path, data, 0o644); werr != nil {
				t.Logf("recovery artifact: %v", werr)
			}
		}
	}
}
