package fognet

import (
	"time"

	"cloudfog/internal/rng"
)

// Failover retry defaults shared by the player's migration ladder and
// control-plane resume. The cap matters: an uncapped doubling backoff
// turns a minute-long outage into a client that is effectively gone.
const (
	DefaultMigrateBackoff    = 50 * time.Millisecond
	DefaultMigrateBackoffMax = 2 * time.Second
)

// nextBackoff advances one step of a jittered, capped exponential
// backoff: it returns the sleep for the current attempt (the base with
// ±50% deterministic jitter from the caller's split RNG stream) and the
// doubled base for the next attempt, clamped to max. Every redial loop
// in the package — fog reconnect, player migration, player resume,
// standby redial — shares this shape so none of them can reintroduce an
// uncapped doubling.
func nextBackoff(j *rng.Rand, cur, max time.Duration) (sleep, next time.Duration) {
	if cur > max {
		cur = max
	}
	sleep = time.Duration(j.Uniform(0.5, 1.5) * float64(cur))
	next = cur * 2
	if next > max {
		next = max
	}
	return sleep, next
}
