package fognet

import (
	"math"
	"testing"
	"time"

	"cloudfog/internal/faultnet"
	"cloudfog/internal/game"
	"cloudfog/internal/protocol"
	"cloudfog/internal/rng"
	"cloudfog/internal/virtualworld"
)

// startAoIFog is startFog with interest management on.
func startAoIFog(t *testing.T, cloud *CloudServer, name string, capacity int) *FogNode {
	t.Helper()
	fog, err := NewFogNode(FogConfig{
		Name:          name,
		CloudAddr:     cloud.Addr(),
		Capacity:      capacity,
		FrameInterval: 10 * time.Millisecond,
		AoI:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fog.Close() })
	return fog
}

// TestAoIEndToEndStreaming runs the full loop over the interest-managed
// stream: the fog reports its footprint, the cloud switches it to per-cell
// batches (with a keyframe per gained cell), and the player still gets
// frames that track the world.
func TestAoIEndToEndStreaming(t *testing.T) {
	cloud := startCloud(t)
	fog := startAoIFog(t, cloud, "fog-aoi", 4)

	// Even before any player, the fog's (empty) report moves it off the
	// full-world stream.
	waitFor(t, 2*time.Second, "AoI switchover", func() bool {
		return cloud.Stats().AoISupernodes == 1
	})

	player, err := NewPlayerClient(PlayerConfig{
		PlayerID:       7,
		CloudAddr:      cloud.Addr(),
		Game:           game.Catalog()[2],
		ActionInterval: 10 * time.Millisecond,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()

	waitFor(t, 5*time.Second, "decoded frames", func() bool {
		s := player.Stats()
		return s.Frames >= 10 && s.LastTick > 0
	})
	fs := fog.Stats()
	if fs.InterestUpdatesSent == 0 {
		t.Error("no interest updates sent")
	}
	if fs.InterestCells == 0 {
		t.Error("empty footprint with an attached player")
	}
	if fs.CellBatches == 0 {
		t.Error("no cell batches applied")
	}
	if fs.KeyframesApplied == 0 {
		t.Error("no cell-enter keyframes applied")
	}
	cs := cloud.Stats()
	if cs.InterestUpdates == 0 || cs.KeyframeCells == 0 {
		t.Errorf("cloud AoI counters: %+v", cs)
	}
	if cs.UpdateBits == 0 {
		t.Error("no update egress counted for cell batches")
	}
}

// TestAoIReplicaTracksAvatar asserts the partial view is exact where it
// matters: the fog's replica position for an attached, moving player
// converges to the cloud's authoritative one.
func TestAoIReplicaTracksAvatar(t *testing.T) {
	cloud := startCloud(t)
	fog := startAoIFog(t, cloud, "fog-aoi", 4)

	player, err := NewPlayerClient(PlayerConfig{
		PlayerID:       9,
		CloudAddr:      cloud.Addr(),
		ActionInterval: 10 * time.Millisecond,
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()

	waitFor(t, 5*time.Second, "replica tracks the avatar", func() bool {
		ax, ay, ok := func() (float64, float64, bool) {
			snap := cloud.currentSnapshot()
			for _, e := range snap.Entities {
				if e.Kind == virtualworld.KindAvatar && e.Owner == 9 {
					return e.X, e.Y, true
				}
			}
			return 0, 0, false
		}()
		if !ok {
			return false
		}
		fog.mu.Lock()
		rx, ry, rok := fog.replica.AvatarPos(9)
		fog.mu.Unlock()
		// Within a couple of ticks of movement (MoveSpeed 8/tick).
		return rok && math.Abs(rx-ax) < 32 && math.Abs(ry-ay) < 32
	})
}

// decodeCellBatchInto round-trips a cell batch through the wire encoding
// before applying it, so parity covers the codec as well as the bucketing.
func applyCellBatchWire(t testing.TB, r *virtualworld.Replica, geo virtualworld.GridGeom, cb protocol.CellBatch) {
	t.Helper()
	var got protocol.CellBatch
	if err := protocol.DecodeCellBatch(cb.Marshal(), &got); err != nil {
		t.Fatalf("cell batch round trip: %v", err)
	}
	if got.Keyframe {
		r.ApplyCellKeyframe(got.Tick, geo, got.Cell, got.Deltas)
	} else {
		r.Apply(got.Tick, got.Deltas)
	}
}

// FuzzAoIPartitionParity is the fan-out equivalence property: for any
// delta stream, the union of the per-cell batches (global bucket plus
// every dirty cell, i.e. a subscriber interested in everything) applied
// to a replica produces exactly the same state as the legacy full-world
// batch.
func FuzzAoIPartitionParity(f *testing.F) {
	f.Add(uint64(1), uint(40), uint(8))
	f.Add(uint64(7), uint(0), uint(0))
	f.Add(uint64(99), uint(200), uint(3))
	f.Add(uint64(12345), uint(1), uint(1))
	f.Fuzz(func(t *testing.T, seed uint64, nDeltas, nSession uint) {
		if nDeltas > 2048 {
			nDeltas = nDeltas % 2048
		}
		if nSession > nDeltas {
			nSession = nSession % (nDeltas + 1)
		}
		const width, height = 1000, 700
		geo := virtualworld.Geometry(width, height, virtualworld.DefaultCellSize)
		r := rng.New(seed).SplitNamed("aoi-parity")

		// A shared base population both replicas start from.
		base := virtualworld.NewReplica(width, height)
		full := virtualworld.NewReplica(width, height)
		var seedDeltas []virtualworld.Delta
		for i := 0; i < 32; i++ {
			id := virtualworld.EntityID(i + 1)
			seedDeltas = append(seedDeltas, virtualworld.Delta{ID: id, Entity: virtualworld.Entity{
				ID: id, Kind: virtualworld.KindNPC, Owner: -1,
				X: r.Float64() * width, Y: r.Float64() * height, HP: 50, Version: 1,
			}})
		}
		base.Apply(1, seedDeltas)
		full.Apply(1, seedDeltas)

		// One tick's worth of deltas: the first nSession are session events
		// (spawns/removals without positions guaranteed meaningful), the
		// rest positioned updates; a sprinkling of removals throughout.
		// The generator keeps the real per-tick invariant — an entity is
		// either removed or updated within one tick, never both — because
		// the AoI partition only preserves ordering across buckets per
		// entity, not between a removal and a same-tick resurrection (a
		// stream Step cannot emit).
		const (
			stateUpdated = 1
			stateRemoved = 2
		)
		idState := make(map[virtualworld.EntityID]byte)
		deltas := make([]virtualworld.Delta, 0, nDeltas)
		for i := uint(0); i < nDeltas; i++ {
			id := virtualworld.EntityID(r.Intn(64) + 1)
			if r.Float64() < 0.15 && idState[id] == 0 {
				idState[id] = stateRemoved
				deltas = append(deltas, virtualworld.Delta{ID: id, Removed: true})
				continue
			}
			if idState[id] == stateRemoved {
				continue
			}
			idState[id] = stateUpdated
			deltas = append(deltas, virtualworld.Delta{ID: id, Entity: virtualworld.Entity{
				ID: id, Kind: virtualworld.KindNPC, Owner: -1,
				X: r.Float64() * width, Y: r.Float64() * height,
				HP: int16(r.Intn(100)), Version: uint32(i) + 2,
			}})
		}

		var plan aoiPlan
		plan.build(geo, deltas, int(nSession))

		// Full-world replica applies the legacy batch.
		full.Apply(2, deltas)

		// AoI replica applies the partition: global bucket first (session
		// events and removals), then each dirty cell, as a fully-subscribed
		// supernode would receive them.
		applyCellBatchWire(t, base, geo, protocol.CellBatch{
			Tick: 2, Cell: virtualworld.CellNone, Deltas: plan.global})
		for i := 0; i < plan.numDirty(); i++ {
			cell, cd := plan.cellDeltas(i)
			applyCellBatchWire(t, base, geo, protocol.CellBatch{Tick: 2, Cell: cell, Deltas: cd})
		}

		if got, want := base.Snapshot(), full.Snapshot(); !got.Equal(want) {
			t.Fatalf("partition parity broken (seed=%d n=%d s=%d):\naoi:  %+v\nfull: %+v",
				seed, nDeltas, nSession, got, want)
		}
	})
}

// TestAoIInterestSurvivesBlackhole is the chaos case: the fog's cloud link
// blackholes mid-session while the player keeps moving, so the footprint
// the cloud holds goes stale and interest updates vanish in flight. After
// the fog reconnects, AoI must rearm from scratch — fresh report, fresh
// keyframes — and the replica must converge back to the authoritative
// avatar position instead of serving stale-cell state.
func TestAoIInterestSurvivesBlackhole(t *testing.T) {
	cloud := startChaosCloud(t, nil)
	inj := faultnet.NewInjector(faultnet.Profile{Seed: 200})
	fog, err := NewFogNode(FogConfig{
		Name: "fog-aoi-chaos", CloudAddr: cloud.Addr(),
		Capacity: 4, FrameInterval: 10 * time.Millisecond,
		AoI:              true,
		Dial:             inj.Dial,
		ReconnectBackoff: 20 * time.Millisecond,
		WriteTimeout:     200 * time.Millisecond,
		Seed:             200,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fog.Close()
	waitFor(t, 2*time.Second, "AoI registration", func() bool {
		return cloud.Stats().AoISupernodes == 1
	})

	player, perr := NewPlayerClient(PlayerConfig{
		PlayerID: 41, CloudAddr: cloud.Addr(),
		ActionInterval: 5 * time.Millisecond, Seed: 41,
	})
	if perr != nil {
		t.Fatal(perr)
	}
	defer player.Close()
	waitFor(t, 5*time.Second, "streaming with a footprint", func() bool {
		fs := fog.Stats()
		return fs.InterestCells > 0 && fs.KeyframesApplied > 0 && player.Stats().Frames > 3
	})
	sentBefore := fog.Stats().InterestUpdatesSent
	keyframesBefore := fog.Stats().KeyframesApplied

	// Blackhole the fog↔cloud link. The player keeps acting (its control
	// connection is separate), so the authoritative avatar walks away from
	// whatever cells the cloud last heard the fog wanted.
	inj.SetMode(faultnet.Blackhole)
	time.Sleep(300 * time.Millisecond)
	inj.SetMode(faultnet.Healthy)

	// The fog reconnects (eviction or dead-conn detection), rearms AoI,
	// re-reports, and gets keyframes for the re-entered cells.
	waitFor(t, 10*time.Second, "AoI rearmed after reconnect", func() bool {
		fs := fog.Stats()
		return fs.Resilience.Reconnects >= 1 &&
			fs.InterestUpdatesSent > sentBefore &&
			fs.KeyframesApplied > keyframesBefore
	})
	// No stale-cell state reaches the player: the replica's avatar view
	// reconverges to the authoritative position.
	waitFor(t, 5*time.Second, "replica reconverged", func() bool {
		snap := cloud.currentSnapshot()
		var ax, ay float64
		found := false
		for _, e := range snap.Entities {
			if e.Kind == virtualworld.KindAvatar && e.Owner == 41 {
				ax, ay, found = e.X, e.Y, true
				break
			}
		}
		if !found {
			return false
		}
		fog.mu.Lock()
		rx, ry, rok := fog.replica.AvatarPos(41)
		fog.mu.Unlock()
		return rok && math.Abs(rx-ax) < 32 && math.Abs(ry-ay) < 32
	})
}

// TestAoIBackCompat pins the opt-in contract: a fog that never reports
// interest keeps receiving the legacy full-world stream, byte for byte the
// same message type as before the AoI layer existed.
func TestAoIBackCompat(t *testing.T) {
	cloud := startCloud(t)
	legacy := startFog(t, cloud, "fog-legacy", 4)
	aoi := startAoIFog(t, cloud, "fog-aoi", 4)

	player, err := NewPlayerClient(PlayerConfig{
		PlayerID: 11, CloudAddr: cloud.Addr(),
		ActionInterval: 10 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()

	// The legacy fog tracks every tick. The AoI fog has no players, so its
	// footprint is empty and it receives only the global bucket — the
	// player's join (a session delta) is broadcast to it, and that is all
	// the traffic an idle subscriber costs.
	waitFor(t, 5*time.Second, "replicas see their streams", func() bool {
		return legacy.Stats().ReplicaTick > 10 && aoi.Stats().CellBatches >= 1
	})
	cs := cloud.Stats()
	if cs.Supernodes != 2 || cs.AoISupernodes != 1 {
		t.Errorf("supernode split: %+v", cs)
	}
	ls := legacy.Stats()
	if ls.CellBatches != 0 || ls.InterestUpdatesSent != 0 {
		t.Errorf("legacy fog saw AoI traffic: %+v", ls)
	}
	// Both replicas track the same world; the legacy one applies full
	// batches, so its applied-delta counter keeps climbing.
	if ls.AppliedDeltas == 0 {
		t.Error("legacy fog applied nothing")
	}
}
