//go:build race

package fognet

// raceEnabled reports whether the race detector is compiled in. Under
// -race, sync.Pool intentionally randomizes caching to widen interleaving
// coverage, so pooled paths allocate; allocation-count tests skip.
const raceEnabled = true
