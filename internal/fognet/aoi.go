package fognet

import (
	"math/bits"
	"slices"
	"sync"
	"time"

	"cloudfog/internal/protocol"
	"cloudfog/internal/render"
	"cloudfog/internal/virtualworld"
)

// This file is the interest-management (AoI) layer of DESIGN.md §14. The
// cloud keeps a per-supernode interest set — the grid cells the fog's
// attached players can see, reported upstream via MsgInterestUpdate — and
// the tick loop buckets each tick's deltas by grid cell once, encodes
// each dirty cell once into a refcounted pooled payload, and enqueues it
// only to the supernodes subscribed to that cell. Fan-out cost becomes
// O(relevant deltas × subscribers), not O(world × supernodes). Supernodes
// that never report interest stay on the legacy full-world MsgUpdateBatch
// stream, so every pre-AoI client keeps working unmodified.

// DefaultAoIMargin is the hysteresis margin, in world units, added around
// a player's viewport when a fog computes its interest footprint. Cells
// are entered at viewport+margin and only dropped beyond viewport+2×margin,
// so an avatar oscillating on a cell boundary does not flap its
// subscription (and the keyframe traffic that comes with re-entry).
const DefaultAoIMargin = 64.0

// --- cloud side: per-supernode interest sets and per-tick bucketing ---------

// interestSet is one supernode's cell subscription: a bitmap over the
// world grid. It is immutable once installed on a supernodeConn (updates
// swap in a freshly built set under the cloud mutex), so the tick loop
// may read a captured pointer after releasing the lock.
type interestSet struct {
	// gen is the fog-reported generation; updates that do not advance it
	// are dropped, so a duplicated MsgInterestUpdate can never roll the
	// subscription back.
	gen   uint32
	words []uint64
	count int
}

func newInterestSet(gen uint32, numCells int) *interestSet {
	return &interestSet{gen: gen, words: make([]uint64, (numCells+63)/64)}
}

func (is *interestSet) add(c uint32) {
	w := int(c) / 64
	if w >= len(is.words) {
		return
	}
	bit := uint64(1) << (uint(c) % 64)
	if is.words[w]&bit == 0 {
		is.words[w] |= bit
		is.count++
	}
}

func (is *interestSet) has(c uint32) bool {
	w := int(c) / 64
	return w < len(is.words) && is.words[w]&(uint64(1)<<(uint(c)%64)) != 0
}

// fanSN is the tick loop's capture of one supernode and the interest set
// it had when the tick started (nil = full-world).
type fanSN struct {
	sn       *supernodeConn
	interest *interestSet
}

// keyItem is one pending cell-enter keyframe: supernode sn gains cell
// cell, and keyDeltas[off:off+n] holds the cell's full entity state.
type keyItem struct {
	sn     *supernodeConn
	cell   uint32
	off, n int32
}

// aoiPlan is the tick loop's per-cell bucketing scratch: one pass over
// the tick's deltas scatters their indices into cell-major order, so each
// dirty cell's deltas can be gathered contiguously on demand. Only
// 4-byte indices move during the O(deltas) scatter; the ~90-byte Delta
// structs are copied solely for cells that actually have a subscriber.
// Everything is reused across ticks — zero steady-state allocations.
type aoiPlan struct {
	geo virtualworld.GridGeom
	// src is the delta slice build was last called with; idx entries point
	// into it. Valid until the next build.
	src []virtualworld.Delta
	// count is a per-cell delta counter, zeroed via the dirty list after
	// every build (never rescanned in full).
	count []int32
	// slot maps a dirty cell to its index in ranges; valid only for cells
	// in the current dirty list.
	slot   []int32
	dirty  []uint32
	ranges []cellRange
	// idx holds indices into src for the tick's positional deltas,
	// scattered cell-major.
	idx []int32
	// cellID is per-delta scratch: the cell each positional delta maps to
	// (CellNone for global-bucket deltas), computed in the counting pass so
	// the scatter pass runs over 4-byte entries instead of re-deriving
	// cells from the ~90-byte delta records.
	cellID []uint32
	// gather is cellDeltas's reusable output slice; each call overwrites
	// the previous one's contents.
	gather []virtualworld.Delta
	// global holds the position-less deltas — removals and session
	// (membership) events — broadcast to every subscriber under the
	// virtualworld.CellNone sentinel. Removals carry no position, and
	// spawn events must reach a fog before it can possibly subscribe to
	// the newcomer's cell.
	global []virtualworld.Delta
}

type cellRange struct {
	cell  uint32
	start int32
	n     int32
}

// build buckets one tick's deltas. The first nSession deltas are session
// events (the cloud folds membership changes in ahead of Step's output)
// and join the global bucket along with every removal; the rest land in
// the cell their post-change position maps to.
//
//cfg:allocfree
func (p *aoiPlan) build(geo virtualworld.GridGeom, deltas []virtualworld.Delta, nSession int) {
	if p.geo != geo || len(p.count) != geo.NumCells() {
		p.geo = geo
		p.count = make([]int32, geo.NumCells())
		p.slot = make([]int32, geo.NumCells())
	}
	p.src = deltas
	p.dirty = p.dirty[:0]
	p.ranges = p.ranges[:0]
	p.global = p.global[:0]
	if cap(p.cellID) < len(deltas) {
		p.cellID = make([]uint32, len(deltas))
	} else {
		p.cellID = p.cellID[:len(deltas)]
	}
	for i := range deltas {
		d := &deltas[i]
		if i < nSession || d.Removed {
			p.global = append(p.global, *d)
			p.cellID[i] = virtualworld.CellNone
			continue
		}
		c := geo.CellOf(d.Entity.X, d.Entity.Y)
		p.cellID[i] = c
		if p.count[c] == 0 {
			p.dirty = append(p.dirty, c)
		}
		p.count[c]++
	}
	// p.dirty keeps first-touch order. That is already deterministic (the
	// delta stream is the deterministic Step output), and cells partition
	// the entities, so emission order across cells carries no semantics —
	// sorting ~every-occupied-cell each tick would be the single largest
	// cost of the whole fan-out at large worlds.
	total := int32(0)
	for i, c := range p.dirty {
		p.ranges = append(p.ranges, cellRange{cell: c, start: total})
		p.slot[c] = int32(i)
		total += p.count[c]
	}
	if cap(p.idx) < int(total) {
		p.idx = make([]int32, total)
	} else {
		p.idx = p.idx[:total]
	}
	for i, c := range p.cellID {
		if c == virtualworld.CellNone {
			continue
		}
		r := &p.ranges[p.slot[c]]
		p.idx[r.start+r.n] = int32(i)
		r.n++
	}
	for _, c := range p.dirty {
		p.count[c] = 0
	}
}

// numDirty returns how many cells received deltas this tick.
func (p *aoiPlan) numDirty() int { return len(p.ranges) }

// cell returns the i-th dirty cell's ID without gathering its deltas —
// the tick loop checks for subscribers first and only pays the gather for
// cells somebody watches.
func (p *aoiPlan) cell(i int) uint32 { return p.ranges[i].cell }

// cellDeltas returns the i-th dirty cell and its deltas, gathered into a
// scratch slice reused (and overwritten) by the next call. The gathered
// order preserves the delta stream's order — Step emits deltas sorted by
// entity ID, and the scatter is order-preserving. Callers must finish
// with the slice before asking for another cell; the tick loop encodes
// each cell immediately, so this never bites.
//
//cfg:allocfree
func (p *aoiPlan) cellDeltas(i int) (uint32, []virtualworld.Delta) {
	r := p.ranges[i]
	if cap(p.gather) < int(r.n) {
		p.gather = make([]virtualworld.Delta, r.n)
	} else {
		p.gather = p.gather[:r.n]
	}
	for j, di := range p.idx[r.start : r.start+r.n] {
		p.gather[j] = p.src[di]
	}
	return r.cell, p.gather
}

// applyInterest installs a fog's reported AoI footprint on its connection
// and schedules cell-enter keyframes for every newly gained cell. The
// reported cell set is widened with the cells around each attached
// player's authoritative avatar position: a fog that just gained a player
// may only know a stale position for it (its replica last saw the avatar
// when the welcome snapshot was cut), and the widening guarantees the
// avatar's real surroundings flow even before the fog's view catches up.
func (s *CloudServer) applyInterest(sn *supernodeConn, iu *protocol.InterestUpdate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	geo := s.world.Grid().Geom()
	if iu.CellSize != geo.CellSize {
		// Geometry mismatch: cell IDs would map to the wrong rectangles.
		// Leave the supernode on the full-world stream.
		return
	}
	if sn.interest != nil && iu.Gen <= sn.interest.gen {
		return // duplicate or reordered update
	}
	ns := newInterestSet(iu.Gen, geo.NumCells())
	for _, c := range iu.Cells {
		ns.add(c)
	}
	halfW := render.ViewHalfWidth + DefaultAoIMargin
	halfH := render.ViewHalfHeight + DefaultAoIMargin
	for _, p := range iu.Players {
		av := s.world.Avatar(int(p))
		if av == nil {
			continue
		}
		s.aoiCellScratch = geo.AppendCellsInRect(s.aoiCellScratch[:0],
			av.X-halfW, av.Y-halfH, av.X+halfW, av.Y+halfH)
		for _, c := range s.aoiCellScratch {
			ns.add(c)
		}
	}
	// Cell-enter keyframing: a gained cell is seeded with its full entity
	// state on the next tick, so the fog's partial view of it starts
	// complete instead of delta-only. The very first interest update
	// keyframes every subscribed cell — the fog may have resumed with a
	// replica that drifted while it was away, and a redundant keyframe is
	// idempotent (entity versions discard stale state).
	for w, word := range ns.words {
		var oldw uint64
		if sn.interest != nil && w < len(sn.interest.words) {
			oldw = sn.interest.words[w]
		}
		added := word &^ oldw
		for added != 0 {
			b := bits.TrailingZeros64(added)
			added &^= uint64(1) << b
			sn.pendingKey = append(sn.pendingKey, uint32(w*64+b))
		}
	}
	sn.interest = ns
	s.interestUpdates++
}

// appendCellStateLocked appends a keyframe's payload — one delta per
// entity currently in cell c, sorted by ID — to dst. Caller holds mu.
func (s *CloudServer) appendCellStateLocked(dst []virtualworld.Delta, c uint32) []virtualworld.Delta {
	s.aoiIDScratch = s.world.Grid().AppendCell(s.aoiIDScratch[:0], c)
	for _, id := range s.aoiIDScratch {
		if e := s.world.Entity(id); e != nil {
			dst = append(dst, virtualworld.Delta{ID: id, Entity: *e})
		}
	}
	return dst
}

// --- fog side: footprint computation with hysteresis ------------------------

// fogInterest tracks the cells a fog node subscribes to. Field access
// follows a two-lock discipline: state is mutated only while holding BOTH
// sendMu and the node mutex (compute runs under the node mutex inside a
// sendMu section), so holders of either lock may read it consistently —
// Stats reads under the node mutex, the send path reads after releasing
// it while still inside sendMu.
type fogInterest struct {
	// sendMu serializes whole refresh operations (recompute + send).
	sendMu sync.Mutex
	margin float64
	geo    virtualworld.GridGeom
	ready  bool
	gen    uint32
	// cells/words are the current subscription (ascending list + bitmap).
	cells []uint32
	words []uint64
	// players is the attached-player list sent with the last update.
	players []int32
	// lastTick/dirty gate recomputation: once per applied replica tick,
	// or immediately when the attach set changes. sentOnce is whether any
	// report reached the current cloud connection.
	lastTick uint64
	dirty    bool
	sentOnce bool
	// enterWords/keepWords/newCells/cellScratch are compute scratch;
	// buf is the wire-encode scratch used under the cloud-write mutex.
	enterWords  []uint64
	keepWords   []uint64
	newCells    []uint32
	cellScratch []uint32
	buf         []byte
}

// resetInterestLocked (re)arms the AoI tracker against a freshly seeded
// replica: geometry from the replica's world dimensions, empty current
// subscription (a new cloud connection starts unsubscribed), and a forced
// recompute. Caller holds f.mu; the next refreshInterest sends.
func (f *FogNode) resetInterestLocked() {
	ai := f.aoi
	if ai == nil {
		return
	}
	w, h := f.replica.Size()
	ai.geo = virtualworld.Geometry(w, h, virtualworld.DefaultCellSize)
	ai.ready = true
	ai.cells = ai.cells[:0]
	for i := range ai.words {
		ai.words[i] = 0
	}
	ai.dirty = true
	ai.sentOnce = false
}

// computeInterestLocked recomputes the footprint from the replica's view
// of the attached players' avatars, with enter/keep hysteresis: a cell is
// entered when it overlaps a player's viewport grown by margin, and a
// currently held cell is kept while it still overlaps the viewport grown
// by 2×margin. Returns whether the subscription changed. Caller holds
// f.mu (and, transitively, ai's sendMu — see refreshInterest).
func (f *FogNode) computeInterestLocked() bool {
	ai := f.aoi
	nw := (ai.geo.NumCells() + 63) / 64
	if len(ai.enterWords) != nw {
		ai.enterWords = make([]uint64, nw)
		ai.keepWords = make([]uint64, nw)
	}
	for i := 0; i < nw; i++ {
		ai.enterWords[i] = 0
		ai.keepWords[i] = 0
	}
	if len(ai.words) != nw {
		ai.words = append(ai.words[:0], make([]uint64, nw)...)
	}
	ai.players = ai.players[:0]
	for id := range f.attached {
		ai.players = append(ai.players, id)
	}
	slices.Sort(ai.players)
	enterW := render.ViewHalfWidth + ai.margin
	enterH := render.ViewHalfHeight + ai.margin
	keepW := render.ViewHalfWidth + 2*ai.margin
	keepH := render.ViewHalfHeight + 2*ai.margin
	mark := func(words []uint64, x, y, hw, hh float64) {
		ai.cellScratch = ai.geo.AppendCellsInRect(ai.cellScratch[:0], x-hw, y-hh, x+hw, y+hh)
		for _, c := range ai.cellScratch {
			words[int(c)/64] |= uint64(1) << (uint(c) % 64)
		}
	}
	for _, id := range ai.players {
		x, y, ok := f.replica.AvatarPos(int(id))
		if !ok {
			// The avatar is not in the replica yet (spawn event still in
			// flight — those are broadcast, so it will arrive). The cloud
			// widens the set server-side from the player list meanwhile.
			continue
		}
		mark(ai.enterWords, x, y, enterW, enterH)
		mark(ai.keepWords, x, y, keepW, keepH)
	}
	changed := false
	ai.newCells = ai.newCells[:0]
	for w := 0; w < nw; w++ {
		nword := ai.enterWords[w] | (ai.words[w] & ai.keepWords[w])
		if nword != ai.words[w] {
			changed = true
		}
		ai.enterWords[w] = nword
		for word := nword; word != 0; {
			b := bits.TrailingZeros64(word)
			word &^= uint64(1) << b
			ai.newCells = append(ai.newCells, uint32(w*64+b))
		}
	}
	if !changed {
		return false
	}
	ai.words, ai.enterWords = ai.enterWords, ai.words
	ai.cells, ai.newCells = ai.newCells, ai.cells
	ai.gen++
	return true
}

// interestDirty marks the footprint stale (the attach set changed) so the
// next refreshInterest recomputes regardless of replica tick. f.aoi is
// set once before the node's goroutines start, so the nil check needs no
// lock.
func (f *FogNode) interestDirty() {
	if f.aoi == nil {
		return
	}
	f.mu.Lock()
	f.aoi.dirty = true
	f.mu.Unlock()
}

// refreshInterest recomputes the AoI footprint and, when it changed (or
// was never reported on this connection), sends it upstream. Throttled to
// once per applied replica tick unless the attach set is dirty. Safe for
// concurrent callers (update loop and player sessions): sendMu serializes
// the whole recompute+send, so the cells/players slices the encoder reads
// after the node mutex is released cannot be swapped underneath it.
func (f *FogNode) refreshInterest() {
	ai := f.aoi
	if ai == nil {
		return
	}
	ai.sendMu.Lock()
	defer ai.sendMu.Unlock()
	f.mu.Lock()
	conn := f.cloud
	if !ai.ready || conn == nil {
		f.mu.Unlock()
		return
	}
	tick := f.replica.Tick()
	if ai.sentOnce && !ai.dirty && tick == ai.lastTick {
		f.mu.Unlock()
		return
	}
	ai.dirty = false
	ai.lastTick = tick
	changed := f.computeInterestLocked()
	if !changed && ai.sentOnce {
		f.mu.Unlock()
		return
	}
	if !changed {
		// First report on this connection, even if the footprint is empty:
		// it moves the supernode off the full-world stream. The generation
		// still has to advance for the cloud to accept it.
		ai.gen++
	}
	f.mu.Unlock()
	iu := protocol.InterestUpdate{Gen: ai.gen, CellSize: ai.geo.CellSize,
		Players: ai.players, Cells: ai.cells}
	var err error
	ai.buf, err = protocol.AppendMessage(ai.buf[:0], protocol.MsgInterestUpdate, &iu)
	if err != nil {
		return
	}
	// The update shares the connection with heartbeat acks and forwarded
	// actions; one writer at a time.
	f.cloudWMu.Lock()
	conn.SetWriteDeadline(time.Now().Add(f.cfg.WriteTimeout))
	_, werr := conn.Write(ai.buf)
	conn.SetWriteDeadline(time.Time{})
	f.cloudWMu.Unlock()
	if werr != nil {
		return // the update loop's read side will observe the dead conn
	}
	f.noteInterestSent(ai)
}

// noteInterestSent records a successfully shipped interest report.
func (f *FogNode) noteInterestSent(ai *fogInterest) {
	f.mu.Lock()
	ai.sentOnce = true
	f.interestSent++
	f.mu.Unlock()
}
