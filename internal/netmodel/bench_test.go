package netmodel

import (
	"testing"

	"cloudfog/internal/geo"
	"cloudfog/internal/rng"
)

// BenchmarkPathRTT measures one deterministic pairwise-latency evaluation,
// the hottest call of the simulator.
func BenchmarkPathRTT(b *testing.B) {
	r := rng.New(1)
	m := NewModel(Params{}, 1)
	p := NewPlayerEndpoint(1, geo.Point{X: 1000, Y: 1000}, r)
	sn := NewSupernodeEndpoint(2, geo.Point{X: 1100, Y: 1050}, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PathRTTMs(p, sn)
	}
}

// BenchmarkCongestionFactor measures the deterministic per-link congestion
// draw.
func BenchmarkCongestionFactor(b *testing.B) {
	m := NewModel(Params{}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CongestionFactor(i, i/24, i%24+1)
	}
}
