// Package netmodel implements the end-to-end network model underlying the
// CloudFog simulator: per-endpoint access links, distance-based propagation,
// trace-driven path jitter, access bandwidth distributions, and a congestion
// process.
//
// The model follows the paper's experimental settings:
//
//   - pairwise latency is sampled from a ping-latency trace by occurrence
//     frequency (internal/trace), scaled by path distance so that nearby
//     supernodes really are "close in network distance";
//   - download bandwidth follows the empirical distributions of the VoD /
//     P2P measurement studies the paper cites, and upload capacity is set
//     to 1/3 of download, "to simulate real-world internet connections";
//   - supernode capacities (max supported players) follow a Pareto
//     distribution with shape alpha = 2.
//
// All sampling is deterministic: path jitter is derived by hashing the two
// endpoint IDs with the model seed, so the same pair always observes the
// same path quality within a run, exactly like a static trace lookup.
package netmodel

import (
	"math"

	"cloudfog/internal/geo"
	"cloudfog/internal/rng"
	"cloudfog/internal/trace"
)

// NodeClass distinguishes endpoint roles; access-link quality depends on it.
type NodeClass int

const (
	// ClassPlayer is a thin-client end user on a consumer access link.
	ClassPlayer NodeClass = iota + 1
	// ClassSupernode is a contributed fog machine with a superior
	// connection (a supernode requirement in §3.1.1 of the paper).
	ClassSupernode
	// ClassDatacenter is a cloud datacenter with a backbone connection.
	ClassDatacenter
)

// String returns the class name.
func (c NodeClass) String() string {
	switch c {
	case ClassPlayer:
		return "player"
	case ClassSupernode:
		return "supernode"
	case ClassDatacenter:
		return "datacenter"
	default:
		return "unknown"
	}
}

// Endpoint is a network-attached entity: a player, supernode, or datacenter.
type Endpoint struct {
	// ID uniquely identifies the endpoint within a simulation.
	ID int
	// Class is the endpoint role.
	Class NodeClass
	// Loc is the endpoint's position on the continental plane.
	Loc geo.Point
	// AccessRTTMs is the round-trip latency of the endpoint's access link.
	AccessRTTMs float64
	// DownloadKbps is the downstream access capacity.
	DownloadKbps float64
	// UploadKbps is the upstream access capacity (download/3 for players).
	UploadKbps float64
}

// Params are the tunable constants of the network model. Zero values are
// replaced by defaults in NewModel.
type Params struct {
	// PropagationMsPerKm is the round-trip propagation+routing delay per
	// kilometer of geographic distance (defaults to 0.06 ms/km RTT,
	// i.e. ~270 ms RTT coast-to-coast including routing inflation).
	PropagationMsPerKm float64
	// JitterScaleMinimum is the fraction of a trace jitter sample applied
	// to zero-distance paths (default 0.10).
	JitterScaleMinimum float64
	// JitterFullDistanceKm is the distance at which the full trace jitter
	// applies (default 2000 km).
	JitterFullDistanceKm float64
	// CongestionDipProbability is the per-link-per-subcycle probability of
	// a congestion event (default 0.10).
	CongestionDipProbability float64
	// CongestionDipFactor is the bandwidth multiplier during a congestion
	// event (default 0.35).
	CongestionDipFactor float64
	// Trace is the path-jitter distribution (defaults to the
	// League-of-Legends stand-in trace).
	Trace *trace.PingTrace
}

func (p Params) withDefaults() Params {
	if p.PropagationMsPerKm == 0 {
		p.PropagationMsPerKm = 0.06
	}
	if p.JitterScaleMinimum == 0 {
		p.JitterScaleMinimum = 0.10
	}
	if p.JitterFullDistanceKm == 0 {
		p.JitterFullDistanceKm = 2000
	}
	if p.CongestionDipProbability == 0 {
		p.CongestionDipProbability = 0.10
	}
	if p.CongestionDipFactor == 0 {
		p.CongestionDipFactor = 0.35
	}
	if p.Trace == nil {
		p.Trace = trace.LeagueOfLegends()
	}
	return p
}

// Model computes latencies and bandwidth between endpoints.
type Model struct {
	params Params
	seed   uint64
}

// NewModel builds a network model with the given parameters and a seed for
// the deterministic per-pair jitter derivation.
func NewModel(params Params, seed uint64) *Model {
	return &Model{params: params.withDefaults(), seed: seed}
}

// Params returns the effective (defaulted) parameters of the model.
func (m *Model) Params() Params { return m.params }

// pairRand returns a deterministic RNG for an unordered endpoint pair.
func (m *Model) pairRand(a, b int) *rng.Rand {
	return rng.New(m.pairKey(a, b))
}

// pairKey is the hash behind pairRand; the scratch-Rand variants reseed
// with it instead of allocating.
func (m *Model) pairKey(a, b int) uint64 {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	h := m.seed
	h = (h ^ uint64(lo)) * 0x100000001b3
	h = (h ^ uint64(hi)) * 0x100000001b3
	return h
}

// PathRTTMs returns the round-trip network latency between two endpoints in
// milliseconds: both access links, distance-proportional propagation, and a
// trace-sampled jitter term scaled by distance. The value is deterministic
// for a given pair within one model.
func (m *Model) PathRTTMs(a, b *Endpoint) float64 {
	return m.PathRTTMsR(m.pairRand(a.ID, b.ID), a, b)
}

// PathRTTMsR is PathRTTMs drawing from the caller's scratch Rand (reseeded
// in place) — identical values, no allocation.
func (m *Model) PathRTTMsR(r *rng.Rand, a, b *Endpoint) float64 {
	r.Reseed(m.pairKey(a.ID, b.ID))
	dist := geo.Distance(a.Loc, b.Loc)
	prop := m.params.PropagationMsPerKm * dist
	scale := m.params.JitterScaleMinimum +
		(1-m.params.JitterScaleMinimum)*math.Min(1, dist/m.params.JitterFullDistanceKm)
	jitter := m.params.Trace.Sample(r) * scale
	return a.AccessRTTMs + b.AccessRTTMs + prop + jitter
}

// OneWayMs returns the one-way network latency between two endpoints,
// approximated as half the path RTT.
func (m *Model) OneWayMs(a, b *Endpoint) float64 {
	return m.PathRTTMs(a, b) / 2
}

// OneWayMsR is OneWayMs drawing from the caller's scratch Rand.
func (m *Model) OneWayMsR(r *rng.Rand, a, b *Endpoint) float64 {
	return m.PathRTTMsR(r, a, b) / 2
}

// CongestionFactor returns the effective-bandwidth multiplier for the link
// identified by linkID during the given subcycle: 1.0 normally, mildly
// degraded at random, and sharply degraded during a congestion dip. The
// value is deterministic per (link, subcycle).
func (m *Model) CongestionFactor(linkID, cycle, subcycle int) float64 {
	return m.congestionDraw(rng.New(m.congestionKey(linkID, cycle, subcycle)))
}

// CongestionFactorR computes the same value as CongestionFactor but draws
// from the caller's scratch Rand, reseeded in place — the allocation-free
// path for hot loops that evaluate one link per player-tick. The scratch
// must not be shared across goroutines.
func (m *Model) CongestionFactorR(r *rng.Rand, linkID, cycle, subcycle int) float64 {
	r.Reseed(m.congestionKey(linkID, cycle, subcycle))
	return m.congestionDraw(r)
}

func (m *Model) congestionKey(linkID, cycle, subcycle int) uint64 {
	return m.seed ^ (uint64(linkID)*0x9e3779b97f4a7c15 +
		uint64(cycle)*0x85ebca77c2b2ae63 + uint64(subcycle)*0xc2b2ae3d27d4eb4f)
}

func (m *Model) congestionDraw(r *rng.Rand) float64 {
	if r.Bool(m.params.CongestionDipProbability) {
		return m.params.CongestionDipFactor
	}
	return r.Uniform(0.75, 1.0)
}

// TransmissionMs returns the time to push payloadBits through a link of
// effective bandwidth kbps (kilobits per second). It returns +Inf for a
// non-positive bandwidth.
func (m *Model) TransmissionMs(payloadBits float64, kbps float64) float64 {
	if kbps <= 0 {
		return math.Inf(1)
	}
	return payloadBits / kbps // bits / (kbit/s) = ms
}

// --- Endpoint factories -----------------------------------------------

// accessRTT tiers for consumer players: a bulk of cable/fiber users and a
// congested DSL/wireless tail. The tail is what caps supernode coverage
// below 100% in Fig. 4(b)/5(b).
var playerAccessRTT = rng.NewWeighted(
	[]float64{2, 4, 6, 9, 12, 16, 24, 35, 60},
	[]float64{0.14, 0.22, 0.22, 0.16, 0.10, 0.07, 0.05, 0.03, 0.01},
)

// Download tiers (kbps) patterned on the VoD / P2P bandwidth measurement
// studies the paper cites ([42], [43]): a spread from ~2 Mbps DSL to 30 Mbps
// fiber. Even the lowest tier sustains the bottom rungs of the Table 2
// ladder, as the receiver-driven adaptation assumes.
var playerDownloadKbps = rng.NewWeighted(
	[]float64{2000, 3000, 5000, 8000, 12000, 20000, 30000},
	[]float64{0.08, 0.15, 0.20, 0.22, 0.18, 0.12, 0.05},
)

// NewPlayerEndpoint samples a player endpoint at the given location.
// Upload capacity is download/3, matching the paper's setting.
func NewPlayerEndpoint(id int, loc geo.Point, r *rng.Rand) *Endpoint {
	down := playerDownloadKbps.Sample(r)
	return &Endpoint{
		ID:           id,
		Class:        ClassPlayer,
		Loc:          loc,
		AccessRTTMs:  playerAccessRTT.Sample(r) * r.Uniform(0.9, 1.1),
		DownloadKbps: down,
		UploadKbps:   down / 3,
	}
}

// NewSupernodeEndpoint samples a supernode endpoint: low access latency and
// a superior upload link (a deployment requirement from §3.1.1).
func NewSupernodeEndpoint(id int, loc geo.Point, r *rng.Rand) *Endpoint {
	up := r.Uniform(60000, 200000)
	return &Endpoint{
		ID:           id,
		Class:        ClassSupernode,
		Loc:          loc,
		AccessRTTMs:  r.Uniform(1, 4),
		DownloadKbps: up * 2,
		UploadKbps:   up,
	}
}

// NewDatacenterEndpoint creates a datacenter endpoint with a backbone-grade
// access link.
func NewDatacenterEndpoint(id int, loc geo.Point) *Endpoint {
	return &Endpoint{
		ID:           id,
		Class:        ClassDatacenter,
		Loc:          loc,
		AccessRTTMs:  2,
		DownloadKbps: 10e6,
		UploadKbps:   10e6,
	}
}

// SupernodeCapacity samples the maximum number of players a supernode can
// support: Pareto with shape alpha = 2 per the paper, clamped to
// [minCap, maxCap].
func SupernodeCapacity(r *rng.Rand, minCap, maxCap int) int {
	c := int(r.Pareto(float64(minCap), 2))
	if c < minCap {
		c = minCap
	}
	if c > maxCap {
		c = maxCap
	}
	return c
}
