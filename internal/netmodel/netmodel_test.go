package netmodel

import (
	"math"
	"testing"
	"testing/quick"

	"cloudfog/internal/geo"
	"cloudfog/internal/rng"
)

func testEndpoints(t *testing.T) (player, supernode, dc *Endpoint) {
	t.Helper()
	r := rng.New(1)
	player = NewPlayerEndpoint(1, geo.Point{X: 1000, Y: 1000}, r)
	supernode = NewSupernodeEndpoint(2, geo.Point{X: 1050, Y: 1020}, r)
	dc = NewDatacenterEndpoint(3, geo.Point{X: 4000, Y: 1950})
	return
}

func TestEndpointFactories(t *testing.T) {
	p, sn, dc := testEndpoints(t)
	if p.Class != ClassPlayer || sn.Class != ClassSupernode || dc.Class != ClassDatacenter {
		t.Error("wrong endpoint classes")
	}
	if p.UploadKbps*3 != p.DownloadKbps {
		t.Errorf("player upload %v is not download/3 (%v)", p.UploadKbps, p.DownloadKbps)
	}
	if p.AccessRTTMs <= 0 || p.DownloadKbps <= 0 {
		t.Error("player endpoint has non-positive link parameters")
	}
	if sn.UploadKbps < 20000 {
		t.Errorf("supernode upload %v below the superior-connection floor", sn.UploadKbps)
	}
	if dc.AccessRTTMs > 5 {
		t.Errorf("datacenter access RTT %v too large", dc.AccessRTTMs)
	}
}

func TestClassString(t *testing.T) {
	if ClassPlayer.String() != "player" || ClassSupernode.String() != "supernode" ||
		ClassDatacenter.String() != "datacenter" || NodeClass(0).String() != "unknown" {
		t.Error("NodeClass.String mismatch")
	}
}

func TestPathRTTDeterministicPerPair(t *testing.T) {
	m := NewModel(Params{}, 42)
	p, sn, _ := testEndpoints(t)
	a := m.PathRTTMs(p, sn)
	b := m.PathRTTMs(p, sn)
	c := m.PathRTTMs(sn, p)
	if a != b {
		t.Errorf("RTT not stable: %v vs %v", a, b)
	}
	if a != c {
		t.Errorf("RTT not symmetric: %v vs %v", a, c)
	}
}

func TestPathRTTComponents(t *testing.T) {
	m := NewModel(Params{}, 42)
	p, sn, dc := testEndpoints(t)
	rtt := m.PathRTTMs(p, sn)
	if rtt < p.AccessRTTMs+sn.AccessRTTMs {
		t.Errorf("RTT %v below sum of access RTTs", rtt)
	}
	// A remote datacenter must be slower than the nearby supernode in the
	// typical case (this pair is ~3000 km vs ~54 km).
	if m.PathRTTMs(p, dc) <= rtt {
		t.Errorf("remote DC RTT %v not larger than nearby supernode RTT %v",
			m.PathRTTMs(p, dc), rtt)
	}
}

func TestPathRTTGrowsWithDistanceOnAverage(t *testing.T) {
	m := NewModel(Params{}, 7)
	r := rng.New(9)
	var nearSum, farSum float64
	const n = 300
	for i := 0; i < n; i++ {
		base := geo.Point{X: 1000, Y: 1000}
		p := NewPlayerEndpoint(10+2*i, base, r)
		near := NewSupernodeEndpoint(11+2*i, geo.Point{X: 1030, Y: 1010}, r)
		far := NewSupernodeEndpoint(100000+i, geo.Point{X: 4200, Y: 2500}, r)
		nearSum += m.PathRTTMs(p, near)
		farSum += m.PathRTTMs(p, far)
	}
	if farSum <= nearSum*1.5 {
		t.Errorf("distance barely affects RTT: near %v far %v", nearSum/n, farSum/n)
	}
}

func TestOneWayIsHalfRTT(t *testing.T) {
	m := NewModel(Params{}, 42)
	p, sn, _ := testEndpoints(t)
	if got, want := m.OneWayMs(p, sn), m.PathRTTMs(p, sn)/2; got != want {
		t.Errorf("OneWayMs = %v, want %v", got, want)
	}
}

func TestCongestionFactorRangeProperty(t *testing.T) {
	m := NewModel(Params{}, 3)
	f := func(link uint16, cycle, sub uint8) bool {
		c := m.CongestionFactor(int(link), int(cycle), int(sub)%24+1)
		return c == m.Params().CongestionDipFactor || (c >= 0.75 && c <= 1.0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCongestionDeterministic(t *testing.T) {
	m := NewModel(Params{}, 3)
	if m.CongestionFactor(5, 2, 7) != m.CongestionFactor(5, 2, 7) {
		t.Error("congestion factor not deterministic")
	}
	// Different subcycles should vary over time.
	same := true
	base := m.CongestionFactor(5, 2, 1)
	for sub := 2; sub <= 24; sub++ {
		if m.CongestionFactor(5, 2, sub) != base {
			same = false
			break
		}
	}
	if same {
		t.Error("congestion factor constant across subcycles")
	}
}

func TestCongestionDipFrequency(t *testing.T) {
	m := NewModel(Params{}, 4)
	dips := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.CongestionFactor(i, i/24, i%24+1) == m.Params().CongestionDipFactor {
			dips++
		}
	}
	p := float64(dips) / n
	if math.Abs(p-m.Params().CongestionDipProbability) > 0.01 {
		t.Errorf("dip frequency %v, want ~%v", p, m.Params().CongestionDipProbability)
	}
}

func TestTransmissionMs(t *testing.T) {
	m := NewModel(Params{}, 1)
	if got := m.TransmissionMs(1000, 1000); got != 1 {
		t.Errorf("1000 bits over 1000 kbps = %v ms, want 1", got)
	}
	if got := m.TransmissionMs(1000, 0); !math.IsInf(got, 1) {
		t.Errorf("zero bandwidth transmission = %v, want +Inf", got)
	}
}

func TestParamsDefaults(t *testing.T) {
	m := NewModel(Params{}, 1)
	p := m.Params()
	if p.PropagationMsPerKm <= 0 || p.JitterScaleMinimum <= 0 ||
		p.JitterFullDistanceKm <= 0 || p.CongestionDipProbability <= 0 ||
		p.CongestionDipFactor <= 0 || p.Trace == nil {
		t.Errorf("defaults not filled: %+v", p)
	}
}

func TestParamsOverridesKept(t *testing.T) {
	m := NewModel(Params{PropagationMsPerKm: 0.02, CongestionDipProbability: 0.5}, 1)
	if m.Params().PropagationMsPerKm != 0.02 {
		t.Error("override lost")
	}
	if m.Params().CongestionDipProbability != 0.5 {
		t.Error("override lost")
	}
}

func TestSupernodeCapacity(t *testing.T) {
	r := rng.New(5)
	for i := 0; i < 5000; i++ {
		c := SupernodeCapacity(r, 5, 40)
		if c < 5 || c > 40 {
			t.Fatalf("capacity %d outside [5,40]", c)
		}
	}
}

func TestSupernodeCapacityParetoShape(t *testing.T) {
	// Small capacities must dominate large ones under Pareto(α=2).
	r := rng.New(6)
	small, large := 0, 0
	for i := 0; i < 20000; i++ {
		c := SupernodeCapacity(r, 5, 1000)
		if c <= 10 {
			small++
		}
		if c >= 50 {
			large++
		}
	}
	if small <= large*5 {
		t.Errorf("Pareto shape wrong: small=%d large=%d", small, large)
	}
}

func TestModelSeedChangesJitter(t *testing.T) {
	p, sn, _ := testEndpoints(t)
	a := NewModel(Params{}, 1).PathRTTMs(p, sn)
	b := NewModel(Params{}, 2).PathRTTMs(p, sn)
	if a == b {
		t.Error("different model seeds produced identical jitter")
	}
}
