package transport

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"time"
)

// errPipeTimeout implements net.Error with Timeout() == true, matching
// what deadline-aware receive loops expect from a real socket.
type errPipeTimeout struct{}

func (errPipeTimeout) Error() string   { return "transport: i/o timeout" }
func (errPipeTimeout) Timeout() bool   { return true }
func (errPipeTimeout) Temporary() bool { return true }

// ErrPipeTimeout is the deadline-exceeded error for pipe operations.
var ErrPipeTimeout net.Error = errPipeTimeout{}

// ErrPipeClosed is returned by operations on a closed pipe end.
var ErrPipeClosed = errors.New("transport: datagram pipe closed")

// NewDatagramPipe returns two connected in-memory DatagramConn ends with
// UDP-like semantics: message-oriented, unordered only through explicit
// injection (faultnet wraps an end), and lossy when the receive queue is
// full — a write to a full queue drops the datagram silently instead of
// blocking, exactly like a kernel socket buffer. queue is the per-end
// receive capacity in datagrams (<= 0 means 64).
//
// The pipe exists for deterministic tests and benchmarks (and is the
// embryo of an in-process sim transport): no kernel, no ports, no
// scheduler-dependent batching.
func NewDatagramPipe(queue int) (a, b DatagramConn) {
	if queue <= 0 {
		queue = 64
	}
	pa := &pipeEnd{
		recv:  make(chan []byte, queue),
		local: netip.AddrPortFrom(netip.AddrFrom4([4]byte{127, 0, 0, 1}), 1),
	}
	pb := &pipeEnd{
		recv:  make(chan []byte, queue),
		local: netip.AddrPortFrom(netip.AddrFrom4([4]byte{127, 0, 0, 1}), 2),
	}
	pa.peer, pb.peer = pb, pa
	return pa, pb
}

type pipeEnd struct {
	peer  *pipeEnd
	recv  chan []byte
	local netip.AddrPort

	mu     sync.Mutex
	rdl    time.Time     // guarded by mu
	closed chan struct{} // lazily created close signal; guarded by mu
	done   bool          // guarded by mu
}

func (p *pipeEnd) closedCh() chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed == nil {
		p.closed = make(chan struct{})
	}
	return p.closed
}

// WriteToUDPAddrPort copies b into the peer's receive queue; a full
// queue or closed peer drops the datagram (the unreliable contract).
// addr is ignored: a pipe has exactly one peer.
func (p *pipeEnd) WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error) {
	p.mu.Lock()
	done := p.done
	p.mu.Unlock()
	if done {
		return 0, ErrPipeClosed
	}
	peer := p.peer
	peer.mu.Lock()
	if peer.done {
		peer.mu.Unlock()
		return len(b), nil // peer gone: the network ate it
	}
	msg := append([]byte(nil), b...)
	select {
	case peer.recv <- msg:
	default: // queue full: drop, like a kernel socket buffer
	}
	peer.mu.Unlock()
	return len(b), nil
}

// ReadFromUDPAddrPort blocks for the next datagram, bounded by the read
// deadline.
func (p *pipeEnd) ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error) {
	p.mu.Lock()
	rdl := p.rdl
	done := p.done
	p.mu.Unlock()
	if done {
		// Drain what was queued before the close, then fail.
		select {
		case msg := <-p.recv:
			return copy(b, msg), p.peer.local, nil
		default:
			return 0, netip.AddrPort{}, ErrPipeClosed
		}
	}
	var timer <-chan time.Time
	if !rdl.IsZero() {
		d := time.Until(rdl)
		if d <= 0 {
			return 0, netip.AddrPort{}, ErrPipeTimeout
		}
		t := time.NewTimer(d)
		defer t.Stop()
		timer = t.C
	}
	select {
	case msg := <-p.recv:
		return copy(b, msg), p.peer.local, nil
	case <-timer:
		return 0, netip.AddrPort{}, ErrPipeTimeout
	case <-p.closedCh():
		return 0, netip.AddrPort{}, ErrPipeClosed
	}
}

// LocalAddr returns the end's synthetic address.
func (p *pipeEnd) LocalAddr() net.Addr {
	return net.UDPAddrFromAddrPort(p.local)
}

// SetReadDeadline bounds blocking reads.
func (p *pipeEnd) SetReadDeadline(t time.Time) error {
	p.mu.Lock()
	p.rdl = t
	p.mu.Unlock()
	return nil
}

// SetWriteDeadline is a no-op: pipe writes never block.
func (p *pipeEnd) SetWriteDeadline(t time.Time) error { return nil }

// Close marks the end closed and wakes blocked readers.
func (p *pipeEnd) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return nil
	}
	p.done = true
	if p.closed == nil {
		p.closed = make(chan struct{})
	}
	close(p.closed)
	return nil
}

// Discard is a DatagramConn that accepts every write and delivers
// nothing — the datagram-path equivalent of io.Discard, for send-path
// benchmarks and allocation regression tests.
var Discard DatagramConn = discardConn{}

type discardConn struct{}

func (discardConn) WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error) {
	return len(b), nil
}

func (discardConn) ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error) {
	return 0, netip.AddrPort{}, ErrPipeClosed
}

func (discardConn) LocalAddr() net.Addr {
	return net.UDPAddrFromAddrPort(netip.AddrPortFrom(netip.AddrFrom4([4]byte{127, 0, 0, 1}), 0))
}

func (discardConn) SetReadDeadline(t time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(t time.Time) error { return nil }
func (discardConn) Close() error                       { return nil }
