package transport

import (
	"bytes"
	"testing"
)

// FuzzDatagramHeader is the datagram-path twin of protocol.FuzzReadMessage:
// any bytes that parse as a header must re-encode to the identical prefix,
// and any valid header must survive an append/parse round trip bit-for-bit.
func FuzzDatagramHeader(f *testing.F) {
	f.Add(Header{Kind: DgramFrame, Token: 1, Epoch: 2, Seq: 3, Tick: 4}.AppendTo(nil))
	f.Add(Header{Kind: DgramHello, Token: ^uint64(0)}.AppendTo(nil))
	f.Add([]byte{})
	f.Add(make([]byte, HeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		var h Header
		payload, err := ParseHeader(data, &h)
		if err != nil {
			// Must only reject short or unknown-kind datagrams.
			if err != ErrShortDatagram && err != ErrBadKind {
				t.Fatalf("unexpected parse error: %v", err)
			}
			return
		}
		// Re-encode: the header must reproduce the input prefix exactly,
		// and the payload view must alias the remainder.
		re := h.AppendTo(nil)
		if !bytes.Equal(re, data[:HeaderLen]) {
			t.Fatalf("re-encoded header %x differs from input prefix %x", re, data[:HeaderLen])
		}
		if !bytes.Equal(payload, data[HeaderLen:]) {
			t.Fatalf("payload view mismatch")
		}
		// Parse of the re-encoding must agree.
		var h2 Header
		if _, err := ParseHeader(re, &h2); err != nil || h2 != h {
			t.Fatalf("reparse: %+v vs %+v err=%v", h2, h, err)
		}
	})
}
