package transport

import "testing"

func track(t *testing.T, tr *RecvTracker, epoch, seq uint64, want Verdict) {
	t.Helper()
	if got := tr.Track(epoch, seq); got != want {
		t.Fatalf("Track(%d,%d) = %v, want %v (stats %+v)", epoch, seq, got, want, tr.Stats())
	}
}

func TestTrackerInOrder(t *testing.T) {
	var tr RecvTracker
	for seq := uint64(10); seq < 20; seq++ {
		track(t, &tr, 1, seq, Fresh)
	}
	s := tr.Stats()
	if s.Delivered != 10 || s.Lost != 0 || s.Stale != 0 || s.Duplicates != 0 {
		t.Errorf("stats %+v", s)
	}
	if tr.LossFraction() != 0 {
		t.Errorf("loss fraction %v", tr.LossFraction())
	}
}

func TestTrackerGapCountsLost(t *testing.T) {
	var tr RecvTracker
	track(t, &tr, 1, 1, Fresh)
	track(t, &tr, 1, 5, Fresh) // 2,3,4 lost
	s := tr.Stats()
	if s.Lost != 3 || s.Delivered != 2 {
		t.Errorf("stats %+v", s)
	}
	if got := tr.LossFraction(); got != 0.6 {
		t.Errorf("loss fraction %v, want 0.6", got)
	}
}

func TestTrackerLateArrivalReclassified(t *testing.T) {
	var tr RecvTracker
	track(t, &tr, 1, 1, Fresh)
	track(t, &tr, 1, 4, Fresh)     // 2,3 provisionally lost
	track(t, &tr, 1, 3, Stale)     // late: dropped, reclassified
	track(t, &tr, 1, 3, Duplicate) // seen twice
	track(t, &tr, 1, 2, Stale)
	s := tr.Stats()
	if s.Lost != 0 {
		t.Errorf("lost %d after all gaps filled late, want 0", s.Lost)
	}
	if s.Reordered != 2 || s.Stale != 2 || s.Duplicates != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestTrackerDuplicateOfDelivered(t *testing.T) {
	var tr RecvTracker
	track(t, &tr, 1, 7, Fresh)
	track(t, &tr, 1, 7, Duplicate)
	track(t, &tr, 1, 8, Fresh)
	track(t, &tr, 1, 7, Duplicate)
}

func TestTrackerEpochs(t *testing.T) {
	var tr RecvTracker
	track(t, &tr, 3, 100, Fresh)
	// An older epoch's datagram is stale no matter its sequence.
	track(t, &tr, 2, 900, Stale)
	// A newer epoch resets the order: the failed-over sender restarts
	// sequencing and must not be punished by the old stream's position.
	track(t, &tr, 4, 1, Fresh)
	track(t, &tr, 4, 2, Fresh)
	s := tr.Stats()
	if s.Delivered != 3 || s.Stale != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestTrackerLargeJumpResetsWindow(t *testing.T) {
	var tr RecvTracker
	track(t, &tr, 1, 1, Fresh)
	track(t, &tr, 1, 200, Fresh)
	s := tr.Stats()
	if s.Lost != 198 {
		t.Errorf("lost %d, want 198", s.Lost)
	}
	// Sequences that fell out of the 64-wide memory stay classified as
	// they were; a very late arrival is stale but not reclassified.
	track(t, &tr, 1, 10, Stale)
	if got := tr.Stats(); got.Lost != 198 || got.Reordered != 0 {
		t.Errorf("stats %+v", got)
	}
}

func TestTrackerTakeWindow(t *testing.T) {
	var tr RecvTracker
	track(t, &tr, 1, 1, Fresh)
	track(t, &tr, 1, 4, Fresh)
	d, l, st := tr.TakeWindow()
	if d != 2 || l != 2 || st != 0 {
		t.Errorf("window = %d,%d,%d", d, l, st)
	}
	// Reset: a fresh window starts clean.
	d, l, st = tr.TakeWindow()
	if d != 0 || l != 0 || st != 0 {
		t.Errorf("second window = %d,%d,%d", d, l, st)
	}
	track(t, &tr, 1, 3, Stale) // late fill: window lost cannot go negative
	d, l, st = tr.TakeWindow()
	if d != 0 || l != 0 || st != 1 {
		t.Errorf("third window = %d,%d,%d", d, l, st)
	}
}

func TestTrackerTrackAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	var tr RecvTracker
	seq := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		seq += 2 // every other datagram lost: worst-case bookkeeping
		tr.Track(1, seq)
	})
	if allocs != 0 {
		t.Errorf("Track allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkDatagramHeader(b *testing.B) {
	h := Header{Kind: DgramFrame, Token: 1, Epoch: 2, Seq: 3, Tick: 4}
	buf := make([]byte, 0, HeaderLen)
	var out Header
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Seq++
		buf = h.AppendTo(buf[:0])
		if _, err := ParseHeader(buf, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrackerTrack(b *testing.B) {
	var tr RecvTracker
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Track(1, uint64(i))
	}
}
