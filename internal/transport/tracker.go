package transport

// Verdict classifies one received datagram against the session's
// delivery order.
type Verdict int

const (
	// Fresh advances the stream: deliver the datagram.
	Fresh Verdict = iota
	// Stale arrived behind the newest delivered sequence (or under an
	// older epoch): drop it — frames are never delivered out of order.
	Stale
	// Duplicate was already delivered (or already dropped as stale once):
	// drop it.
	Duplicate
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Fresh:
		return "fresh"
	case Stale:
		return "stale"
	case Duplicate:
		return "duplicate"
	default:
		return "unknown"
	}
}

// TrackerStats snapshots a tracker's accounting.
type TrackerStats struct {
	// Delivered counts datagrams accepted in order.
	Delivered uint64
	// Stale counts late arrivals dropped at the receiver (a newer
	// sequence had already been delivered).
	Stale uint64
	// Duplicates counts datagrams seen more than once.
	Duplicates uint64
	// Reordered is the subset of Stale that did eventually arrive — gaps
	// first counted lost, then reclassified when the datagram showed up
	// late (and was dropped anyway).
	Reordered uint64
	// Lost counts sequence gaps never filled: datagrams the network ate.
	Lost uint64
}

// RecvTracker orders one unreliable datagram stream at the receiver: it
// decides, per (epoch, seq), whether a datagram is fresh, stale, or a
// duplicate, and keeps the loss/reorder accounting that feeds the QoE
// reports and the §3.3 adaptation controller.
//
// The tracker is single-goroutine (the receive loop owns it); callers
// that publish its stats elsewhere copy them under their own lock. It
// performs no allocation: recent-sequence memory is a 64-bit bitmap
// relative to the newest delivered sequence, RTP receiver style.
type RecvTracker struct {
	started bool
	epoch   uint64
	maxSeq  uint64
	// window bit i records whether sequence maxSeq-i already arrived
	// (delivered, or dropped late). Bit 0 is maxSeq itself.
	window uint64

	stats TrackerStats

	// Window accounting for the adaptation loop: deltas since the last
	// TakeWindow call.
	wDelivered uint64
	wLost      uint64
	wStale     uint64
}

// Track classifies one datagram. Fresh means deliver; anything else must
// be dropped. A gap below a fresh sequence is provisionally counted lost;
// a late arrival inside the 64-sequence memory is reclassified from lost
// to reordered (and still dropped).
//
//cfg:allocfree
func (t *RecvTracker) Track(epoch, seq uint64) Verdict {
	if !t.started || epoch > t.epoch {
		// First datagram, or the sender moved to a newer authority epoch:
		// adopt its order wholesale.
		t.started = true
		t.epoch = epoch
		t.maxSeq = seq
		t.window = 1
		t.stats.Delivered++
		t.wDelivered++
		return Fresh
	}
	if epoch < t.epoch {
		t.stats.Stale++
		t.wStale++
		return Stale
	}
	switch {
	case seq > t.maxSeq:
		delta := seq - t.maxSeq
		gap := delta - 1
		t.stats.Lost += gap
		t.wLost += gap
		if delta >= 64 {
			t.window = 1
		} else {
			t.window = t.window<<delta | 1
		}
		t.maxSeq = seq
		t.stats.Delivered++
		t.wDelivered++
		return Fresh
	case seq == t.maxSeq:
		t.stats.Duplicates++
		return Duplicate
	default:
		d := t.maxSeq - seq
		if d < 64 {
			bit := uint64(1) << d
			if t.window&bit != 0 {
				t.stats.Duplicates++
				return Duplicate
			}
			t.window |= bit
			// It was counted lost when the gap opened; it arrived after
			// all — late, so still dropped, but reclassified.
			t.stats.Reordered++
			if t.stats.Lost > 0 {
				t.stats.Lost--
			}
			if t.wLost > 0 {
				t.wLost--
			}
		}
		t.stats.Stale++
		t.wStale++
		return Stale
	}
}

// Stats snapshots the cumulative accounting.
func (t *RecvTracker) Stats() TrackerStats { return t.stats }

// TakeWindow returns the datagrams delivered, lost, and dropped-stale
// since the previous call, and resets the window — one call per
// adaptation observation window.
func (t *RecvTracker) TakeWindow() (delivered, lost, stale uint64) {
	delivered, lost, stale = t.wDelivered, t.wLost, t.wStale
	t.wDelivered, t.wLost, t.wStale = 0, 0, 0
	return delivered, lost, stale
}

// LossFraction reports the fraction of datagrams lost over the stream's
// lifetime: lost / (delivered + lost). Zero before any arrival.
func (t *RecvTracker) LossFraction() float64 {
	total := t.stats.Delivered + t.stats.Lost
	if total == 0 {
		return 0
	}
	return float64(t.stats.Lost) / float64(total)
}
