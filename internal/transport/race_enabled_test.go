//go:build race

package transport

// raceEnabled reports whether the race detector is compiled in. Under
// -race, allocation behavior shifts, so allocation-count tests skip.
const raceEnabled = true
