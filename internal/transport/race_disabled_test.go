//go:build !race

package transport

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
