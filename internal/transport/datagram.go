package transport

import (
	"errors"
	"net"
	"net/netip"
	"time"
)

// MaxDatagram bounds one datagram including its header. It stays under
// the conventional UDP payload ceiling (65507 bytes on IPv4); a video
// frame that would exceed it is sent over the session's TCP stream
// instead of being fragmented.
const MaxDatagram = 64 << 10

// DatagramConn is the unreliable, message-oriented half of the seam: the
// fog→player video path when both ends opt into UDP. The AddrPort forms
// are used (rather than net.PacketConn's net.Addr ones) because they keep
// the per-frame send and receive paths allocation-free — *net.UDPConn
// implements this interface directly.
type DatagramConn interface {
	// ReadFromUDPAddrPort reads one datagram and its source address.
	ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error)
	// WriteToUDPAddrPort sends one datagram to addr.
	WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error)
	// LocalAddr returns the bound address.
	LocalAddr() net.Addr
	// SetReadDeadline bounds blocking reads.
	SetReadDeadline(t time.Time) error
	// SetWriteDeadline bounds blocking writes.
	SetWriteDeadline(t time.Time) error
	// Close releases the socket and unblocks pending I/O.
	Close() error
}

var _ DatagramConn = (*net.UDPConn)(nil)

// WrapDatagramFunc wraps a datagram socket — the faultnet injection point
// for datagram loss, reordering, and duplication in chaos tests.
type WrapDatagramFunc func(DatagramConn) DatagramConn

// ListenDatagram opens a UDP datagram socket on addr ("127.0.0.1:0" for
// an ephemeral port).
func ListenDatagram(addr string) (*net.UDPConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	return net.ListenUDP("udp", ua)
}

// Datagram kinds.
const (
	// DgramHello announces the receiver: the player sends it to the fog's
	// datagram socket after the TCP-side offer, and its source address is
	// where the session's frames will be sent. Repeated until the first
	// frame arrives (hellos are datagrams too — they can be lost).
	DgramHello uint8 = 1
	// DgramFrame carries one encoded video frame.
	DgramFrame uint8 = 2
)

// HeaderLen is the fixed size of a datagram header: kind (1), session
// token (8), epoch (8), sequence (8), world tick (8).
const HeaderLen = 33

// ErrShortDatagram is returned when a datagram cannot hold a header.
var ErrShortDatagram = errors.New("transport: datagram shorter than header")

// ErrBadKind is returned for an unknown datagram kind byte.
var ErrBadKind = errors.New("transport: unknown datagram kind")

// Header is the per-datagram header of the unreliable video path.
//
// Token identifies the session (minted by the sender during the TCP-side
// offer, echoed by the receiver's hello) so a datagram socket serving
// many players can route without trusting source addresses alone. Epoch
// is the cloud authority epoch the sender streams under, and Seq is the
// per-session datagram sequence — together they give the receiver a
// total order to drop stale or duplicated frames against. Tick is the
// world tick of the carried frame, for observability; staleness is
// decided on (Epoch, Seq) alone.
type Header struct {
	Kind  uint8
	Token uint64
	Epoch uint64
	Seq   uint64
	Tick  uint64
}

// AppendTo appends the fixed-size header to buf and returns the extended
// slice, PR 3 append-encoder style: no intermediate allocation, caller
// owns the buffer.
//
//cfg:allocfree
func (h Header) AppendTo(buf []byte) []byte {
	return append(buf,
		h.Kind,
		byte(h.Token>>56), byte(h.Token>>48), byte(h.Token>>40), byte(h.Token>>32),
		byte(h.Token>>24), byte(h.Token>>16), byte(h.Token>>8), byte(h.Token),
		byte(h.Epoch>>56), byte(h.Epoch>>48), byte(h.Epoch>>40), byte(h.Epoch>>32),
		byte(h.Epoch>>24), byte(h.Epoch>>16), byte(h.Epoch>>8), byte(h.Epoch),
		byte(h.Seq>>56), byte(h.Seq>>48), byte(h.Seq>>40), byte(h.Seq>>32),
		byte(h.Seq>>24), byte(h.Seq>>16), byte(h.Seq>>8), byte(h.Seq),
		byte(h.Tick>>56), byte(h.Tick>>48), byte(h.Tick>>40), byte(h.Tick>>32),
		byte(h.Tick>>24), byte(h.Tick>>16), byte(h.Tick>>8), byte(h.Tick),
	)
}

func be64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// ParseHeader decodes the header at the front of a received datagram into
// h and returns the payload that follows, aliasing b (valid until the
// receive buffer is reused — the same contract as protocol.FrameReader).
//
//cfg:allocfree
func ParseHeader(b []byte, h *Header) ([]byte, error) {
	if len(b) < HeaderLen {
		return nil, ErrShortDatagram
	}
	h.Kind = b[0]
	if h.Kind != DgramHello && h.Kind != DgramFrame {
		return nil, ErrBadKind
	}
	h.Token = be64(b[1:])
	h.Epoch = be64(b[9:])
	h.Seq = be64(b[17:])
	h.Tick = be64(b[25:])
	return b[HeaderLen:], nil
}
