package transport

import (
	"bytes"
	"net"
	"net/netip"
	"testing"
	"time"
)

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.DialTimeout != DefaultDialTimeout || c.WriteTimeout != DefaultWriteTimeout {
		t.Errorf("defaults not applied: %+v", c)
	}
	if c.HandshakeTimeout != DefaultDialTimeout {
		t.Errorf("handshake timeout should follow dial timeout: %+v", c)
	}
	// An explicit dial timeout governs the handshake too: that is the
	// -dial-timeout flag reaching every handshake read.
	c = Config{DialTimeout: 123 * time.Millisecond}.WithDefaults()
	if c.HandshakeTimeout != 123*time.Millisecond {
		t.Errorf("handshake timeout should inherit explicit dial timeout: %+v", c)
	}
	c = Config{HandshakeTimeout: time.Second, DialTimeout: time.Minute}.WithDefaults()
	if c.HandshakeTimeout != time.Second {
		t.Errorf("explicit handshake timeout overridden: %+v", c)
	}
}

func TestTCPDialListen(t *testing.T) {
	tr := TCP{Config: Config{DialTimeout: 2 * time.Second}}
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan []byte, 1)
	go func() {
		c, aerr := ln.Accept()
		if aerr != nil {
			done <- nil
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, _ := c.Read(buf)
		done <- buf[:n]
	}()
	conn, err := tr.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := <-done; string(got) != "hello" {
		t.Errorf("accepted read = %q", got)
	}
}

func TestTCPListenWrapConn(t *testing.T) {
	wrapped := 0
	tr := TCP{WrapConn: func(c net.Conn) net.Conn { wrapped++; return c }}
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, aerr := ln.Accept()
		if aerr == nil {
			c.Close()
		}
	}()
	conn, err := TCP{}.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for wrapped == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if wrapped != 1 {
		t.Errorf("WrapConn applied %d times, want 1", wrapped)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Kind: DgramFrame, Token: 0xdeadbeefcafe, Epoch: 7, Seq: 1 << 40, Tick: 12345}
	buf := h.AppendTo(nil)
	if len(buf) != HeaderLen {
		t.Fatalf("header length %d, want %d", len(buf), HeaderLen)
	}
	payload := []byte("frame-bytes")
	buf = append(buf, payload...)
	var got Header
	rest, err := ParseHeader(buf, &got)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("parsed %+v, want %+v", got, h)
	}
	if !bytes.Equal(rest, payload) {
		t.Errorf("payload %q, want %q", rest, payload)
	}
}

func TestParseHeaderRejectsShortAndUnknown(t *testing.T) {
	var h Header
	if _, err := ParseHeader(make([]byte, HeaderLen-1), &h); err != ErrShortDatagram {
		t.Errorf("short datagram error = %v", err)
	}
	bad := Header{Kind: DgramFrame}.AppendTo(nil)
	bad[0] = 99
	if _, err := ParseHeader(bad, &h); err != ErrBadKind {
		t.Errorf("unknown kind error = %v", err)
	}
}

func TestHeaderPathAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	h := Header{Kind: DgramFrame, Token: 1, Epoch: 2, Seq: 3, Tick: 4}
	buf := make([]byte, 0, HeaderLen)
	var out Header
	allocs := testing.AllocsPerRun(1000, func() {
		buf = h.AppendTo(buf[:0])
		if _, err := ParseHeader(buf, &out); err != nil {
			t.Fatal(err)
		}
		h.Seq++
	})
	if allocs != 0 {
		t.Errorf("header append+parse allocates %.1f/op, want 0", allocs)
	}
}

func TestDatagramPipeDeliversAndDrops(t *testing.T) {
	a, b := NewDatagramPipe(2)
	defer a.Close()
	defer b.Close()
	for i := 0; i < 5; i++ {
		if _, err := a.WriteToUDPAddrPort([]byte{byte(i)}, netip.AddrPort{}); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2: exactly the first two datagrams survive, the rest were
	// dropped silently — the unreliable contract.
	buf := make([]byte, 16)
	for i := 0; i < 2; i++ {
		b.SetReadDeadline(time.Now().Add(time.Second))
		n, _, err := b.ReadFromUDPAddrPort(buf)
		if err != nil || n != 1 || buf[0] != byte(i) {
			t.Fatalf("read %d: n=%d b=%v err=%v", i, n, buf[:n], err)
		}
	}
	b.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	if _, _, err := b.ReadFromUDPAddrPort(buf); err == nil {
		t.Error("expected timeout after queue drained")
	} else if nerr, ok := err.(net.Error); !ok || !nerr.Timeout() {
		t.Errorf("timeout error = %v", err)
	}
}

func TestDatagramPipeCloseUnblocksReader(t *testing.T) {
	a, b := NewDatagramPipe(1)
	defer b.Close()
	errCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		//lint:ignore conndeadline the test asserts Close unblocks a deadline-free read
		_, _, err := a.ReadFromUDPAddrPort(buf)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-errCh:
		if err != ErrPipeClosed {
			t.Errorf("read after close = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader not unblocked by Close")
	}
}

func TestUDPConnImplementsDatagramConn(t *testing.T) {
	uc, err := ListenDatagram("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer uc.Close()
	var dc DatagramConn = uc
	if dc.LocalAddr() == nil {
		t.Error("no local addr")
	}
}
