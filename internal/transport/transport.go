// Package transport is the wire seam between the CloudFog tiers and the
// network: it owns dialing, listening, timeout policy, and the datagram
// framing that the session layer in internal/fognet builds on.
//
// Two transports exist today. The TCP stream transport carries everything
// that must be reliable and ordered — control messages, checkpoints,
// resume handshakes, and (by default) video — with wire behavior
// byte-for-byte identical to the pre-seam fognet plumbing. The UDP
// datagram path (DatagramConn plus the per-frame Header) carries the
// fog→player video stream when both ends opt in: a lost frame is simply
// skipped instead of retransmitted in front of newer ones, which is what
// lets the §3.3 receiver-driven adaptation controller see real loss
// instead of TCP's hidden retransmits.
//
// Timeout policy lives in Config so every dial, handshake, and write in
// the live networking packages flows through one place instead of
// scattered per-call constants.
package transport

import (
	"net"
	"time"
)

// Timeout defaults. These were previously package constants inside fognet
// (and a hardcoded handshake constant that ignored the -dial-timeout
// flag); they now live on the seam so all tiers share one policy.
const (
	// DefaultDialTimeout bounds connection establishment.
	DefaultDialTimeout = 5 * time.Second
	// DefaultWriteTimeout bounds any single protocol write.
	DefaultWriteTimeout = 2 * time.Second
	// DefaultHandshakeTimeout bounds the first message of a new
	// connection, so a connect-and-hang peer cannot pin a handler
	// goroutine forever.
	DefaultHandshakeTimeout = 5 * time.Second
)

// Config is the shared timeout policy for one component's connections.
// The zero value is usable: WithDefaults fills every unset field.
type Config struct {
	// DialTimeout bounds outbound connection establishment.
	DialTimeout time.Duration
	// WriteTimeout bounds any single protocol write.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds each message of a session-establishing
	// exchange (registration, probe/attach, resume, datagram offer).
	HandshakeTimeout time.Duration
}

// WithDefaults returns the config with unset fields filled in.
// HandshakeTimeout defaults to DialTimeout when that is set — the
// handshake is the tail of the dial, so one flag should govern both.
func (c Config) WithDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = c.DialTimeout
	}
	return c
}

// DialFunc establishes an outbound stream connection; it exists so tests
// and the chaos demo can route dials through faultnet injectors.
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// Conn is the stream connection the session layer speaks over. It is
// exactly net.Conn today; naming it here keeps the session code written
// against the seam rather than against the net package.
type Conn interface {
	net.Conn
}

// Transport establishes and accepts stream connections under one timeout
// policy.
type Transport interface {
	// Name identifies the transport ("tcp").
	Name() string
	// Dial connects to addr, bounded by the config's DialTimeout.
	Dial(addr string) (Conn, error)
	// Listen starts accepting stream connections on addr.
	Listen(addr string) (net.Listener, error)
}

// TCP is the reliable stream transport. Its zero value dials with
// net.DialTimeout under Config defaults; DialFunc and WrapConn are the
// fault-injection hooks chaos tests use.
type TCP struct {
	// Config is the timeout policy; zero fields take package defaults.
	Config Config
	// DialFunc, when set, replaces net.DialTimeout.
	DialFunc DialFunc
	// WrapConn, when set, wraps every accepted connection.
	WrapConn func(net.Conn) net.Conn
}

var _ Transport = TCP{}

// Name implements Transport.
func (t TCP) Name() string { return "tcp" }

// Dial implements Transport: one outbound connection, bounded by
// Config.DialTimeout.
func (t TCP) Dial(addr string) (Conn, error) {
	cfg := t.Config.WithDefaults()
	dial := t.DialFunc
	if dial == nil {
		dial = net.DialTimeout
	}
	return dial("tcp", addr, cfg.DialTimeout)
}

// Listen implements Transport. Accepted connections pass through WrapConn
// when it is set.
func (t TCP) Listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if t.WrapConn == nil {
		return ln, nil
	}
	return &wrapListener{Listener: ln, wrap: t.WrapConn}, nil
}

// wrapListener applies a connection wrapper to every accept.
type wrapListener struct {
	net.Listener
	wrap func(net.Conn) net.Conn
}

func (l *wrapListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.wrap(c), nil
}
