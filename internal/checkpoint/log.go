package checkpoint

import (
	"encoding/binary"
	"fmt"

	"cloudfog/internal/virtualworld"
)

// LogEntry is one tick of the primary's delta log: everything a standby
// must fold into its last checkpoint to track the authoritative world
// exactly. Unlike the supernode update stream, the log also carries
// session-membership changes (avatar spawns and despawns are encoded as
// full-state / removal deltas by the cloud) and the entity ID allocator
// position, so replaying checkpoint+log reproduces the primary's world
// bit-for-bit, not just its visible entities.
//
// The primary emits one entry per tick even when Deltas is empty: the
// stream doubles as the liveness signal the standby's promotion timer
// watches (DESIGN.md §12).
type LogEntry struct {
	// Epoch is the authority epoch the tick was computed in.
	Epoch uint64
	// Tick is the world tick after applying Deltas.
	Tick uint64
	// NextID is the entity ID allocator position after the tick.
	NextID virtualworld.EntityID
	// Deltas are the tick's entity changes, including session spawns and
	// removals, in authoritative order.
	Deltas []virtualworld.Delta
}

// EncodedSize returns the exact AppendTo length in bytes.
func (e *LogEntry) EncodedSize() int {
	n := 8 + 8 + 4 + 4
	for _, d := range e.Deltas {
		n += 4 + 1
		if !d.Removed {
			n += entityBytes
		}
	}
	return n
}

// AppendTo appends the encoded entry to buf and returns the extended
// slice; with enough capacity it does not allocate.
//
//cfg:allocfree
func (e *LogEntry) AppendTo(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, e.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, e.Tick)
	buf = binary.BigEndian.AppendUint32(buf, uint32(e.NextID))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Deltas)))
	for i := range e.Deltas {
		d := &e.Deltas[i]
		buf = binary.BigEndian.AppendUint32(buf, uint32(d.ID))
		if d.Removed {
			buf = append(buf, 1)
			continue
		}
		buf = append(buf, 0)
		buf = appendEntity(buf, &d.Entity)
	}
	return buf
}

// DecodeLogEntry decodes buf into e, reusing e.Deltas' capacity. On error
// e holds partially decoded data and must not be used.
func DecodeLogEntry(buf []byte, e *LogEntry) error {
	d := dec{buf: buf}
	e.Epoch = d.u64()
	e.Tick = d.u64()
	e.NextID = virtualworld.EntityID(d.u32())
	n := int(d.u32())
	if !d.fits(n, 4+1) {
		return ErrTruncated
	}
	e.Deltas = e.Deltas[:0]
	for i := 0; i < n; i++ {
		id := virtualworld.EntityID(d.u32())
		if d.u8() != 0 {
			e.Deltas = append(e.Deltas, virtualworld.Delta{ID: id, Removed: true})
			continue
		}
		e.Deltas = append(e.Deltas, virtualworld.Delta{ID: id, Entity: d.entity()})
	}
	if d.err != nil {
		return d.err
	}
	if d.off != len(buf) {
		return fmt.Errorf("checkpoint: %d trailing bytes", len(buf)-d.off)
	}
	return nil
}

// Apply folds one log entry into a restored world. Entries come from a
// single totally-ordered primary, so deltas are applied unconditionally
// (no version gating, unlike replica convergence).
func (e *LogEntry) Apply(w *virtualworld.World) {
	for i := range e.Deltas {
		d := &e.Deltas[i]
		if d.Removed {
			w.RemoveEntity(d.ID)
			continue
		}
		w.SetEntity(d.Entity)
	}
	w.SetTick(e.Tick)
	w.SetNextID(e.NextID)
}

// Replay rebuilds the authoritative world from a checkpoint plus its
// delta log suffix. Entries belonging to an epoch other than the
// checkpoint's, or to ticks the checkpoint already covers, are skipped —
// the standby buffers log entries concurrently with checkpoint arrival,
// so overlap at the boundary is expected.
func Replay(st *State, entries []LogEntry) *virtualworld.World {
	w := st.RestoreWorld()
	for i := range entries {
		e := &entries[i]
		if e.Epoch != st.Epoch || e.Tick <= w.Tick() {
			continue
		}
		e.Apply(w)
	}
	return w
}
