// Package checkpoint serializes the authoritative cloud-tier state —
// world entities, admitted player sessions, the reputation GlobalBook,
// and RNG stream positions — into a deterministic, versioned binary
// form, and restores it bit-identically.
//
// This is the crash-recovery substrate of DESIGN.md §12: the primary
// encodes a State on a tick-aligned cadence and streams it (plus a
// per-tick delta log) to a warm standby; on promotion the standby
// rebuilds the exact world the primary last committed. Determinism is
// load-bearing: because every simulator input is seeded and the encoding
// is canonical (entities, sessions, address IDs, and book entries in
// sorted order; big-endian fixed-width fields), equality of state is
// equality of bytes, so recovery is testable by hashing.
//
// Encoders follow the zero-allocation append style of the wire path
// (DESIGN.md §10): AppendTo(buf) []byte grows the caller's buffer, and
// decode reuses the destination's backing arrays. A steady-state
// checkpoint encode performs zero allocations.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"

	"cloudfog/internal/reputation"
	"cloudfog/internal/rng"
	"cloudfog/internal/virtualworld"
)

// Magic and Version identify the checkpoint format. Version bumps on any
// layout change; a standby refuses checkpoints from a different version
// rather than guessing.
const (
	Magic   uint32 = 0x43464B50 // "CFKP"
	Version uint16 = 1
)

// Decode errors.
var (
	// ErrBadMagic means the buffer is not a checkpoint.
	ErrBadMagic = errors.New("checkpoint: bad magic")
	// ErrBadVersion means the checkpoint was written by an incompatible
	// format version.
	ErrBadVersion = errors.New("checkpoint: unsupported version")
	// ErrTruncated means the buffer ended mid-field.
	ErrTruncated = errors.New("checkpoint: truncated")
	// ErrNotCanonical means a sorted section was out of order — the bytes
	// could not have been produced by AppendTo, so bit-identity guarantees
	// would not hold.
	ErrNotCanonical = errors.New("checkpoint: non-canonical encoding")
)

// AddrID is one entry of the cloud's stable address→ID assignment, which
// keys the reputation book. It must survive failover or post-promotion
// QoE reports would be credited to fresh IDs.
type AddrID struct {
	// Addr is the supernode's advertised stream address.
	Addr string
	// ID is the stable reputation ID assigned to it.
	ID int32
}

// State is one deterministic snapshot of the authoritative cloud state.
// All slice fields are in canonical (sorted) order; AppendTo encodes them
// as-is and DecodeState verifies the order.
type State struct {
	// Epoch is the authority epoch the snapshot was taken in.
	Epoch uint64
	// World is the entity snapshot (entities ascending by ID).
	World virtualworld.Snapshot
	// NextID is the world's entity ID allocator position.
	NextID virtualworld.EntityID
	// Sessions are the admitted player IDs, ascending.
	Sessions []int32
	// AddrIDs is the address→reputation-ID table, ascending by Addr.
	AddrIDs []AddrID
	// Book is the reputation GlobalBook (entries ascending by supernode ID).
	Book reputation.BookState
	// RNG is the cloud's ladder-ranking stream position.
	RNG rng.State
}

const entityBytes = 4 + 1 + 4 + 8 + 8 + 8 + 2 + 1 + 4 // 40

// EncodedSize returns the exact AppendTo length in bytes, computed
// arithmetically.
func (s *State) EncodedSize() int {
	n := 4 + 2 // magic + version
	n += 8     // epoch
	n += 8 + 8 + 8 + 4 + len(s.World.Entities)*entityBytes
	n += 4 // next ID
	n += 4 + len(s.Sessions)*4
	n += 4
	for _, a := range s.AddrIDs {
		n += 2 + len(a.Addr) + 4
	}
	n += 8 + 4 // lambda + entry count
	for _, e := range s.Book.Entries {
		n += 4 + 4 + len(e.Ratings)*(8+4)
	}
	n += 8 + 8 + 8 // rng seed, splits, draws
	return n
}

// AppendTo appends the canonical encoding of s to buf and returns the
// extended slice; with enough capacity it does not allocate.
//
//cfg:allocfree
func (s *State) AppendTo(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, Magic)
	buf = binary.BigEndian.AppendUint16(buf, Version)
	buf = binary.BigEndian.AppendUint64(buf, s.Epoch)

	buf = binary.BigEndian.AppendUint64(buf, s.World.Tick)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.World.Width))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.World.Height))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.World.Entities)))
	for i := range s.World.Entities {
		buf = appendEntity(buf, &s.World.Entities[i])
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.NextID))

	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Sessions)))
	for _, p := range s.Sessions {
		buf = binary.BigEndian.AppendUint32(buf, uint32(p))
	}

	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.AddrIDs)))
	for _, a := range s.AddrIDs {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(a.Addr)))
		buf = append(buf, a.Addr...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(a.ID))
	}

	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Book.Lambda))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Book.Entries)))
	for _, e := range s.Book.Entries {
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(e.SupernodeID)))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Ratings)))
		for _, r := range e.Ratings {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(r.Value))
			buf = binary.BigEndian.AppendUint32(buf, uint32(int32(r.Day)))
		}
	}

	buf = binary.BigEndian.AppendUint64(buf, s.RNG.Seed)
	buf = binary.BigEndian.AppendUint64(buf, s.RNG.Splits)
	buf = binary.BigEndian.AppendUint64(buf, s.RNG.Draws)
	return buf
}

// DecodeState decodes buf into s, reusing s's backing arrays (entities,
// sessions, address table, book entries and their rating slices). On
// error s holds partially decoded data and must not be used.
func DecodeState(buf []byte, s *State) error {
	d := dec{buf: buf}
	if d.u32() != Magic {
		if d.err != nil {
			return d.err
		}
		return ErrBadMagic
	}
	if v := d.u16(); v != Version {
		if d.err != nil {
			return d.err
		}
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	s.Epoch = d.u64()

	s.World.Tick = d.u64()
	s.World.Width = d.f64()
	s.World.Height = d.f64()
	ne := int(d.u32())
	if !d.fits(ne, entityBytes) {
		return ErrTruncated
	}
	s.World.Entities = s.World.Entities[:0]
	for i := 0; i < ne; i++ {
		s.World.Entities = append(s.World.Entities, d.entity())
		if i > 0 && s.World.Entities[i].ID <= s.World.Entities[i-1].ID {
			return ErrNotCanonical
		}
	}
	s.NextID = virtualworld.EntityID(d.u32())

	ns := int(d.u32())
	if !d.fits(ns, 4) {
		return ErrTruncated
	}
	s.Sessions = s.Sessions[:0]
	for i := 0; i < ns; i++ {
		s.Sessions = append(s.Sessions, d.i32())
		if i > 0 && s.Sessions[i] <= s.Sessions[i-1] {
			return ErrNotCanonical
		}
	}

	na := int(d.u32())
	if !d.fits(na, 2+4) {
		return ErrTruncated
	}
	s.AddrIDs = s.AddrIDs[:0]
	for i := 0; i < na; i++ {
		s.AddrIDs = append(s.AddrIDs, AddrID{Addr: d.str(), ID: d.i32()})
		if i > 0 && s.AddrIDs[i].Addr <= s.AddrIDs[i-1].Addr {
			return ErrNotCanonical
		}
	}

	s.Book.Lambda = d.f64()
	nb := int(d.u32())
	if !d.fits(nb, 4+4) {
		return ErrTruncated
	}
	entries := s.Book.Entries[:0]
	for i := 0; i < nb; i++ {
		if len(entries) < cap(entries) {
			entries = entries[:len(entries)+1]
		} else {
			entries = append(entries, reputation.BookEntry{})
		}
		e := &entries[len(entries)-1]
		e.SupernodeID = int(d.i32())
		nr := int(d.u32())
		if !d.fits(nr, 8+4) {
			return ErrTruncated
		}
		e.Ratings = e.Ratings[:0]
		for k := 0; k < nr; k++ {
			e.Ratings = append(e.Ratings, reputation.Rating{Value: d.f64(), Day: int(d.i32())})
		}
		if i > 0 && entries[i].SupernodeID <= entries[i-1].SupernodeID {
			return ErrNotCanonical
		}
	}
	s.Book.Entries = entries

	s.RNG.Seed = d.u64()
	s.RNG.Splits = d.u64()
	s.RNG.Draws = d.u64()
	if d.err != nil {
		return d.err
	}
	if d.off != len(buf) {
		return fmt.Errorf("checkpoint: %d trailing bytes", len(buf)-d.off)
	}
	return nil
}

// Canonicalize sorts the slice fields of s into canonical order. The
// cloud fills State from map-backed structures whose iteration order is
// arbitrary; this makes the subsequent AppendTo deterministic. It
// allocates nothing.
func (s *State) Canonicalize() {
	slices.SortFunc(s.World.Entities, func(a, b virtualworld.Entity) int {
		return int(int64(a.ID) - int64(b.ID))
	})
	slices.Sort(s.Sessions)
	slices.SortFunc(s.AddrIDs, func(a, b AddrID) int {
		switch {
		case a.Addr < b.Addr:
			return -1
		case a.Addr > b.Addr:
			return 1
		default:
			return 0
		}
	})
	slices.SortFunc(s.Book.Entries, func(a, b reputation.BookEntry) int {
		return a.SupernodeID - b.SupernodeID
	})
}

// RestoreWorld rebuilds an authoritative World from the snapshot —
// bit-identical to the world the checkpoint was taken from.
func (s *State) RestoreWorld() *virtualworld.World {
	return virtualworld.Restore(s.World, s.NextID)
}

// Hash returns the FNV-1a 64 digest of an encoded checkpoint or log
// entry. Because the encoding is canonical, equal hashes over equal-epoch
// states mean bit-identical authoritative state.
func Hash(encoded []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range encoded {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// --- binary helpers ---------------------------------------------------------

func appendEntity(buf []byte, e *virtualworld.Entity) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(e.ID))
	buf = append(buf, uint8(e.Kind))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(e.Owner)))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(e.X))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(e.Y))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(e.Facing))
	buf = binary.BigEndian.AppendUint16(buf, uint16(e.HP))
	buf = append(buf, e.State)
	buf = binary.BigEndian.AppendUint32(buf, e.Version)
	return buf
}

// dec is a bounds-checked cursor over an encoded buffer, mirroring the
// wire protocol's reader idiom.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = ErrTruncated
		return false
	}
	return true
}

// fits sanity-checks a decoded element count against the bytes remaining,
// so a corrupt count fails fast instead of growing a huge slice.
func (d *dec) fits(count, minBytes int) bool {
	if d.err != nil {
		return false
	}
	if count < 0 || count*minBytes > len(d.buf)-d.off {
		d.err = ErrTruncated
		return false
	}
	return true
}

func (d *dec) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *dec) i32() int32   { return int32(d.u32()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := int(d.u16())
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) entity() virtualworld.Entity {
	return virtualworld.Entity{
		ID:      virtualworld.EntityID(d.u32()),
		Kind:    virtualworld.EntityKind(d.u8()),
		Owner:   int(d.i32()),
		X:       d.f64(),
		Y:       d.f64(),
		Facing:  d.f64(),
		HP:      int16(d.u16()),
		State:   d.u8(),
		Version: d.u32(),
	}
}
