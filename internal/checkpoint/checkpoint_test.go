package checkpoint

import (
	"bytes"
	"testing"

	"cloudfog/internal/reputation"
	"cloudfog/internal/rng"
	"cloudfog/internal/virtualworld"
)

// buildState assembles a representative State from live components, the
// way the cloud does on a checkpoint tick.
func buildState(tb testing.TB) (*State, *virtualworld.World, *reputation.GlobalBook, *rng.Rand) {
	tb.Helper()
	w := virtualworld.New(512, 512)
	w.SpawnAvatar(3, 10, 10)
	w.SpawnAvatar(1, 20, 20)
	w.SpawnNPC(100, 100)
	w.SpawnItem(30, 30)
	for i := 0; i < 5; i++ {
		w.Step([]virtualworld.Action{
			{Player: 1, Kind: virtualworld.ActMove, TargetX: 50, TargetY: 50},
			{Player: 3, Kind: virtualworld.ActEmote, StateTag: 2},
		})
	}

	book := reputation.NewGlobalBook(0.9)
	book.Rate(2, 0.8, 0)
	book.Rate(1, 0.6, 1)
	book.Rate(2, 0.9, 1)

	r := rng.New(42).SplitNamed("cloud-ladder")
	for i := 0; i < 17; i++ {
		r.Float64()
	}

	st := &State{Epoch: 7, NextID: w.NextID(), RNG: r.State()}
	w.SnapshotInto(&st.World)
	st.Sessions = append(st.Sessions, 3, 1)
	st.AddrIDs = append(st.AddrIDs,
		AddrID{Addr: "127.0.0.1:9102", ID: 2},
		AddrID{Addr: "127.0.0.1:9101", ID: 1},
	)
	book.StateInto(&st.Book)
	st.Canonicalize()
	return st, w, book, r
}

func TestStateRoundTripBitIdentical(t *testing.T) {
	st, _, _, _ := buildState(t)

	enc := st.AppendTo(nil)
	if len(enc) != st.EncodedSize() {
		t.Fatalf("EncodedSize %d != actual %d", st.EncodedSize(), len(enc))
	}

	var got State
	if err := DecodeState(enc, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	re := got.AppendTo(nil)
	if !bytes.Equal(enc, re) {
		t.Fatal("decode→encode is not bit-identical")
	}
	if Hash(enc) != Hash(re) {
		t.Fatal("hash mismatch on identical bytes")
	}

	// Structural spot checks.
	if got.Epoch != st.Epoch || got.NextID != st.NextID || got.RNG != st.RNG {
		t.Fatalf("scalar fields diverged: %+v vs %+v", got, st)
	}
	if !got.World.Equal(st.World) || got.World.Tick != st.World.Tick {
		t.Fatal("world snapshot diverged")
	}
}

func TestRestoreWorldMatchesSource(t *testing.T) {
	st, w, _, _ := buildState(t)
	enc := st.AppendTo(nil)
	var got State
	if err := DecodeState(enc, &got); err != nil {
		t.Fatal(err)
	}
	rw := got.RestoreWorld()
	if !rw.Snapshot().Equal(w.Snapshot()) || rw.Tick() != w.Tick() || rw.NextID() != w.NextID() {
		t.Fatal("restored world differs from source")
	}
}

func TestRestoredComponentsContinueIdentically(t *testing.T) {
	st, _, book, r := buildState(t)
	enc := st.AppendTo(nil)
	var got State
	if err := DecodeState(enc, &got); err != nil {
		t.Fatal(err)
	}
	rr := rng.Restore(got.RNG)
	for i := 0; i < 20; i++ {
		if a, b := rr.Float64(), r.Float64(); a != b {
			t.Fatalf("rng diverged at %d: %v != %v", i, a, b)
		}
	}
	rb := reputation.RestoreGlobalBook(got.Book)
	for id := 1; id <= 2; id++ {
		if a, b := rb.Score(id, 4), book.Score(id, 4); a != b {
			t.Fatalf("book score %d: %v != %v", id, a, b)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	st, _, _, _ := buildState(t)
	enc := st.AppendTo(nil)

	var s State
	if err := DecodeState(enc[:10], &s); err == nil {
		t.Error("truncated buffer accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xff
	if err := DecodeState(bad, &s); err != ErrBadMagic {
		t.Errorf("bad magic: %v", err)
	}
	bad = append([]byte(nil), enc...)
	bad[5] ^= 0xff // version
	if err := DecodeState(bad, &s); err == nil {
		t.Error("bad version accepted")
	}
	if err := DecodeState(append(append([]byte(nil), enc...), 0), &s); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestDecodeRejectsNonCanonical(t *testing.T) {
	st, _, _, _ := buildState(t)
	// Break session order.
	st.Sessions[0], st.Sessions[1] = st.Sessions[1], st.Sessions[0]
	enc := st.AppendTo(nil)
	var s State
	if err := DecodeState(enc, &s); err != ErrNotCanonical {
		t.Fatalf("unsorted sessions accepted: %v", err)
	}
}

func TestLogEntryRoundTrip(t *testing.T) {
	e := LogEntry{
		Epoch:  3,
		Tick:   991,
		NextID: 57,
		Deltas: []virtualworld.Delta{
			{ID: 4, Entity: virtualworld.Entity{ID: 4, Kind: virtualworld.KindAvatar, Owner: 9, X: 1.5, Y: 2.5, HP: 88, Version: 12}},
			{ID: 9, Removed: true},
			{ID: 11, Entity: virtualworld.Entity{ID: 11, Kind: virtualworld.KindNPC, Owner: -1, X: 7, Y: 8, HP: 40, State: 1, Version: 3}},
		},
	}
	enc := e.AppendTo(nil)
	if len(enc) != e.EncodedSize() {
		t.Fatalf("EncodedSize %d != actual %d", e.EncodedSize(), len(enc))
	}
	var got LogEntry
	if err := DecodeLogEntry(enc, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, got.AppendTo(nil)) {
		t.Fatal("log entry decode→encode not bit-identical")
	}
	if err := DecodeLogEntry(enc[:7], &got); err == nil {
		t.Error("truncated log entry accepted")
	}
}

// TestReplayReproducesPrimary is the heart of the recovery guarantee: a
// checkpoint plus the subsequent delta log rebuilds the exact world the
// primary reached, asserted by hash over the canonical encoding.
func TestReplayReproducesPrimary(t *testing.T) {
	w := virtualworld.New(256, 256)
	w.SpawnAvatar(1, 10, 10)
	w.SpawnAvatar(2, 200, 200)
	w.SpawnNPC(50, 50)

	// Checkpoint at the current tick.
	st := &State{Epoch: 5, NextID: w.NextID()}
	w.SnapshotInto(&st.World)
	st.Canonicalize()

	// The primary keeps ticking; each tick's deltas (plus membership
	// changes, here a mid-log spawn and a removal) are logged.
	var log []LogEntry
	step := func(extra []virtualworld.Delta, acts ...virtualworld.Action) {
		deltas := w.Step(acts)
		deltas = append(deltas, extra...)
		log = append(log, LogEntry{
			Epoch:  5,
			Tick:   w.Tick(),
			NextID: w.NextID(),
			Deltas: append([]virtualworld.Delta(nil), deltas...),
		})
	}
	step(nil, virtualworld.Action{Player: 1, Kind: virtualworld.ActMove, TargetX: 30, TargetY: 30})
	step(nil) // empty tick: still logged (liveness)
	av := w.SpawnAvatar(7, 66, 66)
	step([]virtualworld.Delta{{ID: av.ID, Entity: *av}},
		virtualworld.Action{Player: 2, Kind: virtualworld.ActEmote, StateTag: 3})
	gone := w.Avatar(1).ID
	w.RemovePlayer(1)
	step([]virtualworld.Delta{{ID: gone, Removed: true}})

	// A stale entry from an older epoch must be ignored.
	log = append(log, LogEntry{Epoch: 4, Tick: w.Tick() + 1, NextID: 1})

	got := Replay(st, log)

	want := &State{Epoch: 5, NextID: w.NextID()}
	w.SnapshotInto(&want.World)
	want.Canonicalize()
	have := &State{Epoch: 5, NextID: got.NextID()}
	got.SnapshotInto(&have.World)
	have.Canonicalize()

	ew, eh := want.AppendTo(nil), have.AppendTo(nil)
	if Hash(ew) != Hash(eh) || !bytes.Equal(ew, eh) {
		t.Fatal("replayed world is not bit-identical to the primary's")
	}
	if got.NextID() != w.NextID() {
		t.Fatalf("allocator diverged: %d vs %d", got.NextID(), w.NextID())
	}
}

// TestAppendToSteadyStateAllocs pins the tick-path budget: encoding a
// checkpoint or a log entry into a warmed buffer allocates nothing.
func TestAppendToSteadyStateAllocs(t *testing.T) {
	st, _, _, _ := buildState(t)
	buf := st.AppendTo(nil)
	if a := testing.AllocsPerRun(100, func() { buf = st.AppendTo(buf[:0]) }); a != 0 {
		t.Fatalf("State.AppendTo allocated %v/op at steady state", a)
	}

	e := LogEntry{Epoch: 1, Tick: 2, NextID: 3, Deltas: []virtualworld.Delta{
		{ID: 1, Entity: virtualworld.Entity{ID: 1, Version: 1}},
		{ID: 2, Removed: true},
	}}
	lbuf := e.AppendTo(nil)
	if a := testing.AllocsPerRun(100, func() { lbuf = e.AppendTo(lbuf[:0]) }); a != 0 {
		t.Fatalf("LogEntry.AppendTo allocated %v/op at steady state", a)
	}

	var dst State
	if err := DecodeState(buf, &dst); err != nil {
		t.Fatal(err)
	}
	// Decode reuses arrays except addr strings (interned per decode).
	if a := testing.AllocsPerRun(100, func() {
		if err := DecodeState(buf, &dst); err != nil {
			t.Fatal(err)
		}
	}); a > float64(len(dst.AddrIDs)) {
		t.Fatalf("DecodeState allocated %v/op, want <= %d (addr strings)", a, len(dst.AddrIDs))
	}
}

func BenchmarkCheckpointAppend(b *testing.B) {
	w := virtualworld.New(1024, 1024)
	for i := 0; i < 64; i++ {
		w.SpawnNPC(float64(i), float64(i))
	}
	for p := 0; p < 16; p++ {
		w.SpawnAvatar(p, float64(p*8), float64(p*8))
	}
	book := reputation.NewGlobalBook(0.9)
	for id := 1; id <= 8; id++ {
		book.Rate(id, 0.7, 0)
	}
	r := rng.New(1)
	st := &State{Epoch: 1, NextID: w.NextID(), RNG: r.State()}
	w.SnapshotInto(&st.World)
	for p := 0; p < 16; p++ {
		st.Sessions = append(st.Sessions, int32(p))
	}
	book.StateInto(&st.Book)
	st.Canonicalize()

	buf := st.AppendTo(nil)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = st.AppendTo(buf[:0])
	}
}

func BenchmarkCheckpointDecode(b *testing.B) {
	st, _, _, _ := buildState(b)
	enc := st.AppendTo(nil)
	var dst State
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeState(enc, &dst); err != nil {
			b.Fatal(err)
		}
	}
}
