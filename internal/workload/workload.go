// Package workload generates the player activity driving the CloudFog
// experiments: diurnal session schedules, session-length mixes, Poisson
// arrival bursts for the churn experiments, and friend-driven game choice.
//
// The paper's settings reproduced here:
//
//   - each experiment cycle is one day of 24 one-hour subcycles; subcycles
//     20–24 (8 pm–12 am) are peak hours;
//   - 50% of players play (0,2] hours a day, 30% play (2,5] hours, and 20%
//     play (5,24] hours (after Hellstrom et al.);
//   - a player's start time falls in peak subcycles with probability 70%;
//   - players join in Poisson bursts; churn experiments sweep the peak-hour
//     arrival rate;
//   - a joining player picks the game most of its online friends play, or a
//     uniformly random game when no friend is online.
package workload

import (
	"cloudfog/internal/game"
	"cloudfog/internal/rng"
)

// SubcyclesPerCycle is the number of hourly subcycles per daily cycle.
const SubcyclesPerCycle = 24

// Peak-hour window (1-based subcycles, inclusive): 8 pm to midnight.
const (
	PeakStartSubcycle = 20
	PeakEndSubcycle   = 24
)

// IsPeak reports whether the (1-based) subcycle is a peak hour.
func IsPeak(subcycle int) bool {
	return subcycle >= PeakStartSubcycle && subcycle <= PeakEndSubcycle
}

// BehaviorClass is a player's daily play-time class.
type BehaviorClass int

const (
	// ShortSession players play (0, 2] hours a day (50% of players).
	ShortSession BehaviorClass = iota + 1
	// MediumSession players play (2, 5] hours a day (30%).
	MediumSession
	// LongSession players play (5, 24] hours a day (20%).
	LongSession
)

// String returns the class name.
func (b BehaviorClass) String() string {
	switch b {
	case ShortSession:
		return "short"
	case MediumSession:
		return "medium"
	case LongSession:
		return "long"
	default:
		return "unknown"
	}
}

// SampleBehavior draws a behavior class with the paper's 50/30/20 mix.
func SampleBehavior(r *rng.Rand) BehaviorClass {
	u := r.Float64()
	switch {
	case u < 0.5:
		return ShortSession
	case u < 0.8:
		return MediumSession
	default:
		return LongSession
	}
}

// sessionHours samples the daily play duration for a class.
func sessionHours(class BehaviorClass, r *rng.Rand) int {
	switch class {
	case ShortSession:
		return 1 + r.Intn(2) // 1..2
	case MediumSession:
		return 3 + r.Intn(3) // 3..5
	default:
		return 6 + r.Intn(19) // 6..24
	}
}

// Session is one day's play window for a player, in 1-based subcycles.
// The window is [Start, Start+Duration), clipped to the end of the day.
type Session struct {
	// Start is the first subcycle of play, in [1, 24].
	Start int
	// Duration is the number of subcycles played.
	Duration int
}

// Active reports whether the session covers the (1-based) subcycle.
func (s Session) Active(subcycle int) bool {
	return subcycle >= s.Start && subcycle < s.Start+s.Duration
}

// End returns the first subcycle after the session (clipped to 25).
func (s Session) End() int {
	e := s.Start + s.Duration
	if e > SubcyclesPerCycle+1 {
		e = SubcyclesPerCycle + 1
	}
	return e
}

// ScheduleDay samples a player's session for one cycle: the start subcycle
// lands in peak hours with probability 70%, and the duration follows the
// player's behavior class (clipped to the end of the day).
func ScheduleDay(class BehaviorClass, r *rng.Rand) Session {
	var start int
	if r.Bool(0.7) {
		start = PeakStartSubcycle + r.Intn(PeakEndSubcycle-PeakStartSubcycle+1)
	} else {
		start = 1 + r.Intn(PeakStartSubcycle-1)
	}
	dur := sessionHours(class, r)
	if start+dur > SubcyclesPerCycle+1 {
		dur = SubcyclesPerCycle + 1 - start
	}
	if dur < 1 {
		dur = 1
	}
	return Session{Start: start, Duration: dur}
}

// ArrivalScript describes the Poisson player-arrival process of the churn
// experiments (Fig. 13–15): a low off-peak rate and a swept peak rate, in
// players per minute.
type ArrivalScript struct {
	// OffPeakPerMinute is the arrival rate outside peak hours.
	OffPeakPerMinute float64
	// PeakPerMinute is the arrival rate during peak hours.
	PeakPerMinute float64
}

// RatePerMinute returns the arrival rate in effect during the subcycle.
func (a ArrivalScript) RatePerMinute(subcycle int) float64 {
	if IsPeak(subcycle) {
		return a.PeakPerMinute
	}
	return a.OffPeakPerMinute
}

// ArrivalsInSubcycle samples the number of players arriving during one
// hourly subcycle.
func (a ArrivalScript) ArrivalsInSubcycle(subcycle int, r *rng.Rand) int {
	return r.Poisson(a.RatePerMinute(subcycle) * 60)
}

// ChooseGame implements the paper's friend-driven game choice: "if none of
// its friends is playing, it randomly chooses a game to play; otherwise, it
// chooses the game that has the largest number of its friends playing".
// friendGames holds the game IDs the player's online friends are currently
// playing (with repetition); catalog is the available game list.
func ChooseGame(friendGames []int, catalog []game.Game, r *rng.Rand) game.Game {
	if len(catalog) == 0 {
		return game.Game{}
	}
	if len(friendGames) == 0 {
		return catalog[r.Intn(len(catalog))]
	}
	counts := make(map[int]int)
	for _, id := range friendGames {
		counts[id]++
	}
	bestN := 0
	for _, n := range counts {
		if n > bestN {
			bestN = n
		}
	}
	// Ties are broken uniformly at random: a deterministic tie-break would
	// cascade the whole population onto one title.
	var tied []game.Game
	for _, g := range catalog {
		if counts[g.ID] == bestN && bestN > 0 {
			tied = append(tied, g)
		}
	}
	if len(tied) == 0 {
		return catalog[r.Intn(len(catalog))]
	}
	return tied[r.Intn(len(tied))]
}

// DiurnalOnline returns a smooth expected-online-count curve for the given
// population and subcycle, used to sanity-check forecasts: low overnight,
// rising through the day, peaking in subcycles 20–24. The curve integrates
// the 70/30 start-time split and the 50/30/20 duration mix approximately.
func DiurnalOnline(population int, subcycle int) float64 {
	// Piecewise fractions of the population online, tuned to the schedule
	// generator's empirical output.
	var frac float64
	switch {
	case subcycle >= PeakStartSubcycle:
		frac = 0.45
	case subcycle >= 16:
		frac = 0.20
	case subcycle >= 8:
		frac = 0.12
	default:
		frac = 0.06
	}
	return frac * float64(population)
}
