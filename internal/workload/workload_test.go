package workload

import (
	"math"
	"testing"
	"testing/quick"

	"cloudfog/internal/game"
	"cloudfog/internal/rng"
)

func TestIsPeak(t *testing.T) {
	for sub := 1; sub <= SubcyclesPerCycle; sub++ {
		want := sub >= 20 && sub <= 24
		if IsPeak(sub) != want {
			t.Errorf("IsPeak(%d) = %v", sub, IsPeak(sub))
		}
	}
}

func TestSampleBehaviorMix(t *testing.T) {
	r := rng.New(1)
	counts := map[BehaviorClass]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[SampleBehavior(r)]++
	}
	for class, want := range map[BehaviorClass]float64{
		ShortSession: 0.5, MediumSession: 0.3, LongSession: 0.2,
	} {
		got := float64(counts[class]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%v frequency %v, want ~%v", class, got, want)
		}
	}
}

func TestBehaviorString(t *testing.T) {
	if ShortSession.String() != "short" || MediumSession.String() != "medium" ||
		LongSession.String() != "long" || BehaviorClass(0).String() != "unknown" {
		t.Error("BehaviorClass.String mismatch")
	}
}

func TestScheduleDayValidProperty(t *testing.T) {
	// Property: sessions always fit the day and have positive duration.
	f := func(seed uint64, classRaw uint8) bool {
		r := rng.New(seed)
		class := BehaviorClass(classRaw%3) + 1
		s := ScheduleDay(class, r)
		return s.Start >= 1 && s.Start <= SubcyclesPerCycle &&
			s.Duration >= 1 && s.Start+s.Duration <= SubcyclesPerCycle+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScheduleDayDurationsByClass(t *testing.T) {
	r := rng.New(2)
	maxDur := map[BehaviorClass]int{ShortSession: 2, MediumSession: 5, LongSession: 24}
	for class, bound := range maxDur {
		for i := 0; i < 2000; i++ {
			s := ScheduleDay(class, r)
			if s.Duration > bound {
				t.Fatalf("%v session lasted %d > %d", class, s.Duration, bound)
			}
		}
	}
}

func TestScheduleDayPeakBias(t *testing.T) {
	r := rng.New(3)
	peak := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if IsPeak(ScheduleDay(ShortSession, r).Start) {
			peak++
		}
	}
	p := float64(peak) / n
	if math.Abs(p-0.7) > 0.02 {
		t.Errorf("peak start fraction %v, want ~0.7", p)
	}
}

func TestSessionActive(t *testing.T) {
	s := Session{Start: 10, Duration: 3}
	for sub, want := range map[int]bool{9: false, 10: true, 11: true, 12: true, 13: false} {
		if s.Active(sub) != want {
			t.Errorf("Active(%d) = %v", sub, s.Active(sub))
		}
	}
	if s.End() != 13 {
		t.Errorf("End = %d", s.End())
	}
	late := Session{Start: 23, Duration: 5}
	if late.End() != SubcyclesPerCycle+1 {
		t.Errorf("End clipped = %d", late.End())
	}
	var zero Session
	if zero.Active(1) {
		t.Error("zero session active")
	}
}

func TestArrivalScript(t *testing.T) {
	a := ArrivalScript{OffPeakPerMinute: 2, PeakPerMinute: 10}
	if a.RatePerMinute(10) != 2 {
		t.Error("off-peak rate wrong")
	}
	if a.RatePerMinute(22) != 10 {
		t.Error("peak rate wrong")
	}
	r := rng.New(4)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		sum += float64(a.ArrivalsInSubcycle(22, r))
	}
	mean := sum / n
	if math.Abs(mean-600) > 20 { // 10/min * 60 min
		t.Errorf("peak arrivals mean %v, want ~600", mean)
	}
}

func TestChooseGameNoFriends(t *testing.T) {
	catalog := game.Catalog()
	r := rng.New(5)
	counts := map[int]int{}
	for i := 0; i < 10000; i++ {
		g := ChooseGame(nil, catalog, r)
		counts[g.ID]++
	}
	for _, g := range catalog {
		p := float64(counts[g.ID]) / 10000
		if math.Abs(p-0.2) > 0.03 {
			t.Errorf("game %d chosen with frequency %v, want ~0.2", g.ID, p)
		}
	}
}

func TestChooseGameFollowsMajority(t *testing.T) {
	catalog := game.Catalog()
	r := rng.New(6)
	friendGames := []int{3, 3, 3, 1, 2}
	for i := 0; i < 100; i++ {
		if g := ChooseGame(friendGames, catalog, r); g.ID != 3 {
			t.Fatalf("majority game not chosen: %d", g.ID)
		}
	}
}

func TestChooseGameTiesAreRandom(t *testing.T) {
	catalog := game.Catalog()
	r := rng.New(7)
	counts := map[int]int{}
	for i := 0; i < 4000; i++ {
		g := ChooseGame([]int{1, 2}, catalog, r)
		counts[g.ID]++
	}
	if counts[1] == 0 || counts[2] == 0 {
		t.Fatalf("tie broken deterministically: %v", counts)
	}
	if counts[3]+counts[4]+counts[5] != 0 {
		t.Fatalf("non-tied game chosen: %v", counts)
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("tie not uniform: %v", counts)
	}
}

func TestChooseGameUnknownFriendGames(t *testing.T) {
	catalog := game.Catalog()
	r := rng.New(8)
	// Friend games not in the catalog: falls back to random.
	g := ChooseGame([]int{999}, catalog, r)
	if g.ID < 1 || g.ID > 5 {
		t.Errorf("fallback game %d", g.ID)
	}
}

func TestChooseGameEmptyCatalog(t *testing.T) {
	r := rng.New(9)
	g := ChooseGame([]int{1}, nil, r)
	if g.ID != 0 {
		t.Errorf("empty catalog returned game %d", g.ID)
	}
}

func TestDiurnalOnline(t *testing.T) {
	pop := 10000
	night := DiurnalOnline(pop, 3)
	day := DiurnalOnline(pop, 14)
	evening := DiurnalOnline(pop, 18)
	peak := DiurnalOnline(pop, 22)
	if !(night < day && day < evening && evening < peak) {
		t.Errorf("diurnal curve not increasing toward peak: %v %v %v %v", night, day, evening, peak)
	}
	if peak > float64(pop) {
		t.Error("peak exceeds population")
	}
}
